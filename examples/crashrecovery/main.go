// Crash recovery demonstration: runs the same banking-style workload under
// every recovery scheme of the paper, injecting a server crash mid-stream,
// and verifies that committed transfers survive while the in-flight one is
// rolled back.
//
//	go run ./examples/crashrecovery
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	quickstore "repro"
)

const accounts = 16

func main() {
	for _, scheme := range []quickstore.Scheme{
		quickstore.PDESM, quickstore.SDESM, quickstore.SLESM,
		quickstore.PDREDO, quickstore.WPL,
	} {
		if err := run(scheme); err != nil {
			log.Fatalf("%v: %v", scheme, err)
		}
	}
}

func run(scheme quickstore.Scheme) error {
	store, err := quickstore.Open(quickstore.Options{Scheme: scheme, LogMB: 32})
	if err != nil {
		return err
	}
	defer store.Close()

	// Create accounts, 1000 units each.
	oids := make([]quickstore.OID, accounts)
	err = store.Update(func(tx *quickstore.Tx) error {
		for i := range oids {
			oid, err := tx.Allocate(8)
			if err != nil {
				return err
			}
			oids[i] = oid
			if err := writeBalance(tx, oid, 1000); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Committed transfers: move i+1 units from account i to account i+1.
	for i := 0; i < accounts-1; i++ {
		amount := int64(i + 1)
		err := store.Update(func(tx *quickstore.Tx) error {
			return transfer(tx, oids[i], oids[i+1], amount)
		})
		if err != nil {
			return err
		}
	}

	// An in-flight transfer is interrupted by a crash before commit.
	tx, err := store.Begin()
	if err != nil {
		return err
	}
	if err := transfer(tx, oids[0], oids[accounts-1], 999999); err != nil {
		return err
	}
	if err := store.Crash(); err != nil { // loses the uncommitted transfer
		return err
	}

	// Verify: total conserved, committed transfers present, junk gone.
	return store.View(func(tx *quickstore.Tx) error {
		total := int64(0)
		for i, oid := range oids {
			b, err := readBalance(tx, oid)
			if err != nil {
				return err
			}
			total += b
			_ = i
		}
		if total != accounts*1000 {
			return fmt.Errorf("money not conserved: total %d", total)
		}
		first, _ := readBalance(tx, oids[0])
		if first != 1000-1 {
			return fmt.Errorf("account 0 = %d, want 999", first)
		}
		fmt.Printf("%-8v ok: %d accounts, total %d, committed transfers intact, in-flight transfer rolled back\n",
			scheme, accounts, total)
		return nil
	})
}

func writeBalance(tx *quickstore.Tx, oid quickstore.OID, v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return tx.Write(oid, 0, b[:])
}

func readBalance(tx *quickstore.Tx, oid quickstore.OID) (int64, error) {
	var b [8]byte
	if err := tx.Read(oid, 0, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

func transfer(tx *quickstore.Tx, from, to quickstore.OID, amount int64) error {
	fb, err := readBalance(tx, from)
	if err != nil {
		return err
	}
	tb, err := readBalance(tx, to)
	if err != nil {
		return err
	}
	if err := writeBalance(tx, from, fb-amount); err != nil {
		return err
	}
	return writeBalance(tx, to, tb+amount)
}
