// Quickstart: open an embedded QuickStore, persist a few objects, update
// them transactionally, and read them back — including after a simulated
// server crash.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	quickstore "repro"
)

func main() {
	// An in-memory store using page differencing (PD-ESM), the paper's
	// best general-purpose recovery scheme.
	store, err := quickstore.Open(quickstore.Options{Scheme: quickstore.PDESM, LogMB: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Allocate two objects and link them: the first holds a greeting, the
	// second holds the OID of the first (persistent references are OIDs).
	var greeting, ref quickstore.OID
	err = store.Update(func(tx *quickstore.Tx) error {
		var err error
		greeting, err = tx.Allocate(64)
		if err != nil {
			return err
		}
		if err := tx.Write(greeting, 0, []byte("hello from 1995!")); err != nil {
			return err
		}
		ref, err = tx.Allocate(8)
		if err != nil {
			return err
		}
		var oidBytes [8]byte
		quickstore.EncodeOID(oidBytes[:], greeting)
		return tx.Write(ref, 0, oidBytes[:])
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed objects %v and %v\n", greeting, ref)

	// Update in place. Many writes to the same object become one log record
	// thanks to the differencing scheme.
	err = store.Update(func(tx *quickstore.Tx) error {
		for i := 0; i < 100; i++ {
			if err := tx.Write(greeting, 11, []byte(fmt.Sprintf("%04d!", i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	s := store.Stats()
	fmt.Printf("stats: %d commits, %d updates, %d log records, %d faults\n",
		s.Commits, s.Updates, s.LogRecords, s.Faults)

	// Crash the server. Restart recovery replays the log; committed state
	// survives. (Client-side counters reset with the client cache.)
	if err := store.Crash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server crashed and recovered")

	err = store.View(func(tx *quickstore.Tx) error {
		// Follow the persistent reference.
		var oidBytes [8]byte
		if err := tx.Read(ref, 0, oidBytes[:]); err != nil {
			return err
		}
		target := quickstore.DecodeOID(oidBytes[:])
		data := make([]byte, 16)
		if err := tx.Read(target, 0, data); err != nil {
			return err
		}
		fmt.Printf("after crash, %v -> %v holds %q\n", ref, target, data)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
