// CAD viewer: a miniature OO7-style CAD database on the public API — the
// kind of design application the paper's introduction motivates. Builds a
// small library of "cells" (each a clustered graph of gates wired together),
// runs an engineering-change traversal that re-times every gate it reaches,
// and shows how the recovery scheme batches the flurry of in-place updates
// into a handful of log records.
//
//	go run ./examples/cadviewer
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	quickstore "repro"
)

// A gate is a fixed binary record.
//
//	[0,4)   id
//	[4,8)   delay (ps)
//	[8,16)  fan-out gate OIDs (up to 2; NilOID when absent)
const (
	gateSize  = 24
	gDelay    = 4
	gFanout   = 8
	fanouts   = 2
	gatesPer  = 24
	cellCount = 40
)

// cell is an in-memory handle; persistent structure is all OIDs.
type cell struct {
	root  quickstore.OID
	gates []quickstore.OID
}

func main() {
	store, err := quickstore.Open(quickstore.Options{Scheme: quickstore.PDESM, LogMB: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Build the cell library: each cell's gates are clustered on their own
	// page, like OO7 clusters a composite part's atomic parts.
	cells := make([]cell, cellCount)
	err = store.Update(func(tx *quickstore.Tx) error {
		for c := range cells {
			root, err := tx.AllocateOnFreshPage(gateSize)
			if err != nil {
				return err
			}
			cells[c].root = root
			cells[c].gates = append(cells[c].gates, root)
			for g := 1; g < gatesPer; g++ {
				oid, err := tx.Allocate(gateSize)
				if err != nil {
					return err
				}
				cells[c].gates = append(cells[c].gates, oid)
			}
			// Wire each gate to the next two (a simple DAG) and set delays.
			for g, oid := range cells[c].gates {
				var rec [gateSize]byte
				binary.LittleEndian.PutUint32(rec[0:], uint32(c*gatesPer+g))
				binary.LittleEndian.PutUint32(rec[gDelay:], uint32(50+7*g%90))
				for f := 0; f < fanouts; f++ {
					target := quickstore.NilOID
					if next := g + f + 1; next < gatesPer {
						target = cells[c].gates[next]
					}
					quickstore.EncodeOID(rec[gFanout+8*f:], target)
				}
				if err := tx.Write(oid, 0, rec[:]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d cells, %d gates\n", cellCount, cellCount*gatesPer)

	// Engineering change order: walk every cell from its root, adding 5 ps
	// to every reachable gate — the classic read-intensively-then-update
	// pattern that motivates diff-based recovery (§2 of the paper).
	before := store.Stats()
	err = store.Update(func(tx *quickstore.Tx) error {
		for _, c := range cells {
			if err := retime(tx, c.root, make(map[quickstore.OID]bool)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	after := store.Stats()
	fmt.Printf("ECO: %d gate updates became %d log records (%d bytes shipped)\n",
		after.Updates-before.Updates,
		after.LogRecords-before.LogRecords,
		after.LogBytesShipped-before.LogBytesShipped)

	// Survive a crash and spot-check a gate.
	if err := store.Crash(); err != nil {
		log.Fatal(err)
	}
	err = store.View(func(tx *quickstore.Tx) error {
		var rec [gateSize]byte
		if err := tx.Read(cells[0].root, 0, rec[:]); err != nil {
			return err
		}
		delay := binary.LittleEndian.Uint32(rec[gDelay:])
		fmt.Printf("after crash: cell 0 root gate delay = %d ps (retimed value intact)\n", delay)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// retime does a depth-first traversal over fan-out edges, bumping each
// reachable gate's delay once.
func retime(tx *quickstore.Tx, oid quickstore.OID, seen map[quickstore.OID]bool) error {
	if oid.IsNil() || seen[oid] {
		return nil
	}
	seen[oid] = true
	var rec [gateSize]byte
	if err := tx.Read(oid, 0, rec[:]); err != nil {
		return err
	}
	delay := binary.LittleEndian.Uint32(rec[gDelay:])
	var d [4]byte
	binary.LittleEndian.PutUint32(d[:], delay+5)
	if err := tx.Write(oid, gDelay, d[:]); err != nil {
		return err
	}
	for f := 0; f < fanouts; f++ {
		next := quickstore.DecodeOID(rec[gFanout+8*f:])
		if err := retime(tx, next, seen); err != nil {
			return err
		}
	}
	return nil
}
