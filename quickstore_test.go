package quickstore

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"repro/internal/server"
	"repro/internal/wire"
)

var allSchemes = []Scheme{PDESM, SDESM, SLESM, PDREDO, WPL}

func TestUpdateViewRoundTrip(t *testing.T) {
	for _, sc := range allSchemes {
		t.Run(sc.String(), func(t *testing.T) {
			st, err := Open(Options{Scheme: sc, LogMB: 32})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			var oid OID
			if err := st.Update(func(tx *Tx) error {
				var err error
				oid, err = tx.Allocate(32)
				if err != nil {
					return err
				}
				return tx.Write(oid, 0, []byte("public api data"))
			}); err != nil {
				t.Fatal(err)
			}
			if err := st.View(func(tx *Tx) error {
				got := make([]byte, 15)
				if err := tx.Read(oid, 0, got); err != nil {
					return err
				}
				if string(got) != "public api data" {
					return fmt.Errorf("got %q", got)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUpdateErrorRollsBack(t *testing.T) {
	st, _ := Open(Options{LogMB: 32})
	defer st.Close()
	var oid OID
	st.Update(func(tx *Tx) error {
		oid, _ = tx.Allocate(8)
		return tx.Write(oid, 0, []byte("keepme!!"))
	})
	boom := errors.New("boom")
	err := st.Update(func(tx *Tx) error {
		tx.Write(oid, 0, []byte("discard!"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st.View(func(tx *Tx) error {
		got, _ := tx.ReadObject(oid)
		if string(got) != "keepme!!" {
			t.Fatalf("rollback failed: %q", got)
		}
		return nil
	})
}

func TestViewChangesDiscarded(t *testing.T) {
	st, _ := Open(Options{LogMB: 32})
	defer st.Close()
	var oid OID
	st.Update(func(tx *Tx) error {
		oid, _ = tx.Allocate(4)
		return tx.Write(oid, 0, []byte("base"))
	})
	st.View(func(tx *Tx) error {
		return tx.Write(oid, 0, []byte("temp"))
	})
	st.View(func(tx *Tx) error {
		got, _ := tx.ReadObject(oid)
		if string(got) != "base" {
			t.Fatalf("view leaked a write: %q", got)
		}
		return nil
	})
}

func TestCrashRecoveryThroughPublicAPI(t *testing.T) {
	for _, sc := range allSchemes {
		t.Run(sc.String(), func(t *testing.T) {
			st, err := Open(Options{Scheme: sc, LogMB: 32})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			var oid OID
			st.Update(func(tx *Tx) error {
				oid, _ = tx.Allocate(16)
				return tx.Write(oid, 0, []byte("survives crashes"))
			})
			// Leave an uncommitted transaction hanging at crash time.
			tx, _ := st.Begin()
			tx.Write(oid, 0, []byte("uncommitted junk"))
			if err := st.Crash(); err != nil {
				t.Fatal(err)
			}
			st.View(func(tx *Tx) error {
				got, _ := tx.ReadObject(oid)
				if string(got) != "survives crashes" {
					t.Fatalf("got %q", got)
				}
				return nil
			})
		})
	}
}

func TestFileBackedReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	st, err := Open(Options{Path: path, LogMB: 32})
	if err != nil {
		t.Fatal(err)
	}
	var oid OID
	st.Update(func(tx *Tx) error {
		oid, _ = tx.Allocate(8)
		return tx.Write(oid, 0, []byte("ondisk!!"))
	})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Path: path, LogMB: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.View(func(tx *Tx) error {
		got, err := tx.ReadObject(oid)
		if err != nil {
			return err
		}
		if string(got) != "ondisk!!" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteStoreOverTCP(t *testing.T) {
	srv := server.New(server.Config{Mode: server.ModeESM, LogCapacity: 32 << 20, PoolPages: 256})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go wire.Serve(lis, srv)
	st, err := Dial(lis.Addr().String(), Options{Scheme: PDESM})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var oid OID
	if err := st.Update(func(tx *Tx) error {
		var err error
		oid, err = tx.Allocate(16)
		if err != nil {
			return err
		}
		return tx.Write(oid, 0, []byte("remote quickstor"))
	}); err != nil {
		t.Fatal(err)
	}
	// A second client sees the committed data.
	st2, err := Dial(lis.Addr().String(), Options{Scheme: PDESM})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.View(func(tx *Tx) error {
		got, err := tx.ReadObject(oid)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, []byte("remote quickstor")) {
			return fmt.Errorf("got %q", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Crash(); err == nil {
		t.Fatal("Crash on remote store should fail")
	}
}

func TestAllocateOnFreshPageClusters(t *testing.T) {
	st, _ := Open(Options{LogMB: 32})
	defer st.Close()
	st.Update(func(tx *Tx) error {
		a, err := tx.AllocateOnFreshPage(100)
		if err != nil {
			return err
		}
		b, _ := tx.Allocate(100) // same page
		c, err := tx.AllocateOnFreshPage(100)
		if err != nil {
			return err
		}
		if a.Page != b.Page {
			t.Errorf("a and b not clustered: %v %v", a, b)
		}
		if c.Page == a.Page {
			t.Errorf("fresh page reused: %v %v", a, c)
		}
		return nil
	})
}

func TestFreeThenRead(t *testing.T) {
	st, _ := Open(Options{LogMB: 32})
	defer st.Close()
	var oid OID
	st.Update(func(tx *Tx) error {
		oid, _ = tx.Allocate(8)
		return nil
	})
	st.Update(func(tx *Tx) error { return tx.Free(oid) })
	err := st.View(func(tx *Tx) error {
		_, err := tx.ReadObject(oid)
		return err
	})
	if err == nil {
		t.Fatal("read of freed object succeeded")
	}
}

func TestSizeAndBounds(t *testing.T) {
	st, _ := Open(Options{LogMB: 32})
	defer st.Close()
	st.Update(func(tx *Tx) error {
		oid, _ := tx.Allocate(10)
		n, err := tx.Size(oid)
		if err != nil || n != 10 {
			t.Errorf("Size = %d, %v", n, err)
		}
		if err := tx.Write(oid, 8, []byte("xyz")); err == nil {
			t.Error("out-of-bounds write accepted")
		}
		if _, err := tx.Allocate(MaxObjectSize + 1); err == nil {
			t.Error("oversized allocation accepted")
		}
		return nil
	})
}

func TestStatsProgress(t *testing.T) {
	st, _ := Open(Options{LogMB: 32})
	defer st.Close()
	st.Update(func(tx *Tx) error {
		oid, _ := tx.Allocate(8)
		return tx.Write(oid, 0, []byte{1})
	})
	s := st.Stats()
	if s.Commits != 1 || s.Updates == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, sc := range allSchemes {
		if sc.String() == "" || sc.String()[0] == 'S' && sc == PDESM {
			t.Fatal("bad scheme string")
		}
	}
	if _, err := Open(Options{Scheme: Scheme(42)}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
