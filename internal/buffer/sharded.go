// Sharded buffer pool: the server-side concurrent variant of Pool.
//
// The plain Pool is single-threaded by design (the client owns one). The
// server used to wrap a Pool in its one global mutex; Sharded instead splits
// the frame budget across independently locked shards keyed by page ID, so
// sessions touching different pages latch different shards and proceed in
// parallel. Isolation between transactions is still the lock manager's job —
// a shard latch only protects pool metadata and frame contents during a
// single read/modify step, like a page latch in ARIES.
package buffer

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/page"
)

// DefaultShards is the shard count used when NewSharded is given zero.
const DefaultShards = 16

// PoolShard is one latch-protected slice of a Sharded pool. Server code
// locks the shard (via Sharded.Lock) and then uses the embedded Pool
// directly; every Pool method call requires the shard latch to be held.
type PoolShard struct {
	sync.Mutex
	*Pool
}

// Sharded is a concurrency-safe buffer pool made of independently locked
// shards. A page lives in exactly one shard (pid mod shard count), so LRU
// and the full/eviction decision are per shard: a hot shard evicts while a
// cold one has room. That is the standard trade for removing the global
// latch, and with page IDs allocated sequentially the spread is even.
type Sharded struct {
	shards     []*PoolShard
	contention atomic.Int64 // Lock calls that found the shard latch held
}

// NewSharded creates a sharded pool with room for capacity pages in total,
// split as evenly as possible across nshards shards (DefaultShards if 0;
// clamped so every shard gets at least one frame).
func NewSharded(capacity, nshards int) *Sharded {
	if capacity < 1 {
		panic("buffer: capacity must be positive")
	}
	if nshards <= 0 {
		nshards = DefaultShards
	}
	if nshards > capacity {
		nshards = capacity
	}
	s := &Sharded{shards: make([]*PoolShard, nshards)}
	base, extra := capacity/nshards, capacity%nshards
	for i := range s.shards {
		c := base
		if i < extra {
			c++
		}
		s.shards[i] = &PoolShard{Pool: NewPool(c)}
	}
	return s
}

func (s *Sharded) shardFor(pid page.ID) *PoolShard {
	return s.shards[uint64(pid)%uint64(len(s.shards))]
}

// Lock latches the shard owning pid and returns it; the caller must Unlock
// it. Contention (the latch already held) is counted for observability.
func (s *Sharded) Lock(pid page.ID) *PoolShard {
	sh := s.shardFor(pid)
	if !sh.TryLock() {
		s.contention.Add(1)
		sh.Lock()
	}
	return sh
}

// Contention returns how many Lock calls found their shard latch held.
func (s *Sharded) Contention() int64 { return s.contention.Load() }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i without locking it (for iteration by quiesced
// callers such as checkpoint and crash paths).
func (s *Sharded) Shard(i int) *PoolShard { return s.shards[i] }

// lockAll latches every shard in index order (the canonical multi-shard
// order, preventing latch-latch deadlock) and returns an unlock func.
//
//qslint:allow latch-order: the one sanctioned multi-shard path — every shard latched in ascending index order, only reachable from quiesced callers (DESIGN.md §S9)
func (s *Sharded) lockAll() func() {
	for _, sh := range s.shards {
		sh.Lock()
	}
	return func() {
		for _, sh := range s.shards {
			sh.Unlock()
		}
	}
}

// Len returns the total number of resident pages.
func (s *Sharded) Len() int {
	defer s.lockAll()()
	n := 0
	for _, sh := range s.shards {
		n += sh.Pool.Len()
	}
	return n
}

// Capacity returns the total frame budget across shards.
func (s *Sharded) Capacity() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Pool.Capacity()
	}
	return n
}

// Hits and Misses aggregate Get statistics across shards.
func (s *Sharded) Hits() int64 {
	defer s.lockAll()()
	var n int64
	for _, sh := range s.shards {
		n += sh.Pool.Hits()
	}
	return n
}

func (s *Sharded) Misses() int64 {
	defer s.lockAll()()
	var n int64
	for _, sh := range s.shards {
		n += sh.Pool.Misses()
	}
	return n
}

// DirtyPages returns every resident dirty page id across shards in ascending
// order — the same deterministic ordering contract as Pool.DirtyPages, which
// checkpoint and crash-flush paths (and so the crash-point sweep) rely on.
func (s *Sharded) DirtyPages() []page.ID {
	defer s.lockAll()()
	var out []page.ID
	for _, sh := range s.shards {
		out = append(out, sh.Pool.DirtyPages()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyCount returns the total number of resident dirty pages, latching each
// shard in turn (a point-in-time estimate, not a consistent snapshot — fine
// for pacing and stats, which is all it is used for).
func (s *Sharded) DirtyCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.Lock()
		n += sh.Pool.DirtyCount()
		sh.Unlock()
	}
	return n
}

// Each calls fn for every resident frame, holding each shard's latch in
// turn. fn must not touch other shards.
func (s *Sharded) Each(fn func(*Frame)) {
	for _, sh := range s.shards {
		sh.Lock()
		sh.Pool.Each(fn)
		sh.Unlock()
	}
}

// Clear drops every frame in every shard (volatile memory loss at a crash).
func (s *Sharded) Clear() {
	defer s.lockAll()()
	for _, sh := range s.shards {
		sh.Pool.Clear()
	}
}
