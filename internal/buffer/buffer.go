// Package buffer implements the LRU buffer pool used by both the QuickStore
// client and the storage server. Frames are fixed 8 KB page slots; pages may
// be pinned to keep them resident, marked dirty, and evicted in
// least-recently-used order when a frame is needed.
//
// The pool does no I/O itself: callers look up victims, flush or generate
// log records for them as their recovery scheme requires, and then replace
// them. This keeps the replacement policy identical across the client and
// server roles, matching ESM where both manage their own pools (paper §3.1).
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"

	"repro/internal/page"
)

// Errors returned by the pool.
var (
	ErrNoFrame = errors.New("buffer: no evictable frame")
	ErrPinned  = errors.New("buffer: page is pinned")
	ErrAbsent  = errors.New("buffer: page not resident")
)

// Frame is a resident page.
type Frame struct {
	pid     page.ID
	buf     []byte
	pins    int
	dirty   bool
	lastUse uint64        // pool clock at the last Get/Insert (recency)
	elem    *list.Element // position in the LRU list (nil while pinned)
}

// PID returns the page occupying the frame.
func (f *Frame) PID() page.ID { return f.pid }

// Bytes returns the frame's storage; mutations write through.
func (f *Frame) Bytes() []byte { return f.buf }

// Dirty reports whether the frame is marked dirty.
func (f *Frame) Dirty() bool { return f.dirty }

// LastUse returns the pool's logical clock value at the frame's last
// reference. The page cleaner compares it against Clock to skip hot pages.
func (f *Frame) LastUse() uint64 { return f.lastUse }

// Pool is an LRU buffer pool. It is not safe for concurrent use; callers
// serialize access (the client is single-threaded per workstation and the
// server wraps it in its own lock).
type Pool struct {
	capacity int
	frames   map[page.ID]*Frame
	lru      *list.List // front = least recently used; unpinned frames only
	hits     int64
	misses   int64
	clock    uint64 // logical reference clock: ticks on every Get and Insert
}

// NewPool creates a pool with room for capacity pages.
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		panic("buffer: capacity must be positive")
	}
	return &Pool{
		capacity: capacity,
		frames:   make(map[page.ID]*Frame, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the configured number of frames.
func (p *Pool) Capacity() int { return p.capacity }

// SetCapacity changes the frame budget. When shrinking, the caller is
// responsible for evicting surplus pages (Full reports true until then).
// Capacity never drops below one frame.
func (p *Pool) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	p.capacity = n
}

// Len returns the number of resident pages.
func (p *Pool) Len() int { return len(p.frames) }

// Hits and Misses report Get statistics.
func (p *Pool) Hits() int64   { return p.hits }
func (p *Pool) Misses() int64 { return p.misses }

// Clock returns the pool's logical reference clock: it advances by one on
// every Get and Insert, so Clock - Frame.LastUse is the frame's age in
// references (the cleaner's hot-page measure, immune to wall time).
func (p *Pool) Clock() uint64 { return p.clock }

// Get returns the resident frame for pid, updating recency, or nil.
func (p *Pool) Get(pid page.ID) *Frame {
	f, ok := p.frames[pid]
	if !ok {
		p.misses++
		return nil
	}
	p.hits++
	p.clock++
	f.lastUse = p.clock
	if f.elem != nil {
		p.lru.MoveToBack(f.elem)
	}
	return f
}

// Peek returns the resident frame without touching recency or stats.
func (p *Pool) Peek(pid page.ID) *Frame { return p.frames[pid] }

// Full reports whether inserting a new page requires an eviction.
func (p *Pool) Full() bool { return len(p.frames) >= p.capacity }

// Victim returns the least-recently-used unpinned frame, or nil if every
// frame is pinned. The frame remains resident until Remove is called, so the
// caller can flush it or generate log records first.
func (p *Pool) Victim() *Frame {
	e := p.lru.Front()
	if e == nil {
		return nil
	}
	return e.Value.(*Frame)
}

// Remove evicts pid from the pool. Pinned pages cannot be removed.
func (p *Pool) Remove(pid page.ID) error {
	f, ok := p.frames[pid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrAbsent, pid)
	}
	if f.pins > 0 {
		return fmt.Errorf("%w: %v", ErrPinned, pid)
	}
	p.lru.Remove(f.elem)
	delete(p.frames, pid)
	return nil
}

// Insert adds pid with the given contents (copied into the frame) and
// returns its frame. The pool must not be full and pid must not be resident.
func (p *Pool) Insert(pid page.ID, data []byte) (*Frame, error) {
	if _, ok := p.frames[pid]; ok {
		return nil, fmt.Errorf("buffer: %v already resident", pid)
	}
	if p.Full() {
		return nil, fmt.Errorf("%w: pool full inserting %v", ErrNoFrame, pid)
	}
	p.clock++
	f := &Frame{pid: pid, buf: make([]byte, page.Size), lastUse: p.clock}
	if data != nil {
		copy(f.buf, data)
	}
	f.elem = p.lru.PushBack(f)
	p.frames[pid] = f
	return f, nil
}

// Pin prevents eviction of pid until a matching Unpin. Pins nest.
func (p *Pool) Pin(pid page.ID) error {
	f, ok := p.frames[pid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrAbsent, pid)
	}
	if f.pins == 0 {
		p.lru.Remove(f.elem)
		f.elem = nil
	}
	f.pins++
	return nil
}

// Unpin releases one pin on pid.
func (p *Pool) Unpin(pid page.ID) error {
	f, ok := p.frames[pid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrAbsent, pid)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: %v not pinned", pid)
	}
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushBack(f)
	}
	return nil
}

// MarkDirty flags pid as modified.
func (p *Pool) MarkDirty(pid page.ID) error {
	f, ok := p.frames[pid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrAbsent, pid)
	}
	f.dirty = true
	return nil
}

// MarkClean clears the dirty flag on pid.
func (p *Pool) MarkClean(pid page.ID) error {
	f, ok := p.frames[pid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrAbsent, pid)
	}
	f.dirty = false
	return nil
}

// DirtyPages returns the resident dirty page ids in ascending order. The
// ordering matters for reproducibility: checkpoints and crash-flush paths
// iterate this set, and the crash-point sweep requires the sequence of
// stable-storage writes to be identical run to run.
func (p *Pool) DirtyPages() []page.ID {
	var out []page.ID
	for pid, f := range p.frames {
		if f.dirty {
			out = append(out, pid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyCount returns the number of resident dirty pages (no allocation; the
// cleaner and stats paths poll it).
func (p *Pool) DirtyCount() int {
	n := 0
	for _, f := range p.frames {
		if f.dirty {
			n++
		}
	}
	return n
}

// Each calls fn for every resident frame.
func (p *Pool) Each(fn func(*Frame)) {
	for _, f := range p.frames {
		fn(f)
	}
}

// Clear drops every frame regardless of pins or dirtiness; this models
// volatile memory loss at a crash.
func (p *Pool) Clear() {
	p.frames = make(map[page.ID]*Frame, p.capacity)
	p.lru.Init()
}
