package buffer

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/page"
)

func TestInsertGetRoundTrip(t *testing.T) {
	p := NewPool(4)
	data := bytes.Repeat([]byte{9}, page.Size)
	f, err := p.Insert(1, data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Bytes(), data) {
		t.Fatal("frame contents differ")
	}
	if g := p.Get(1); g != f {
		t.Fatal("Get returned a different frame")
	}
	if p.Get(2) != nil {
		t.Fatal("Get of absent page returned a frame")
	}
	if p.Hits() != 1 || p.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", p.Hits(), p.Misses())
	}
}

func TestInsertCopies(t *testing.T) {
	p := NewPool(2)
	data := make([]byte, page.Size)
	f, _ := p.Insert(1, data)
	data[0] = 42
	if f.Bytes()[0] != 0 {
		t.Fatal("frame aliases caller buffer")
	}
}

func TestDuplicateInsertFails(t *testing.T) {
	p := NewPool(2)
	p.Insert(1, nil)
	if _, err := p.Insert(1, nil); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
}

func TestLRUVictimOrder(t *testing.T) {
	p := NewPool(3)
	p.Insert(1, nil)
	p.Insert(2, nil)
	p.Insert(3, nil)
	// Touch 1 so 2 becomes LRU.
	p.Get(1)
	v := p.Victim()
	if v == nil || v.PID() != 2 {
		t.Fatalf("victim = %v, want P2", v)
	}
	if err := p.Remove(v.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(4, nil); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestFullPoolRejectsInsert(t *testing.T) {
	p := NewPool(1)
	p.Insert(1, nil)
	if _, err := p.Insert(2, nil); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestPinBlocksEviction(t *testing.T) {
	p := NewPool(2)
	p.Insert(1, nil)
	p.Insert(2, nil)
	if err := p.Pin(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(1); !errors.Is(err, ErrPinned) {
		t.Fatalf("Remove of pinned page: %v", err)
	}
	if v := p.Victim(); v == nil || v.PID() != 1+1 {
		t.Fatalf("victim should skip pinned page, got %v", v)
	}
	p.Pin(2)
	if p.Victim() != nil {
		t.Fatal("victim found with all pages pinned")
	}
	p.Unpin(1)
	if v := p.Victim(); v == nil || v.PID() != 1 {
		t.Fatal("unpinned page not evictable")
	}
}

func TestNestedPins(t *testing.T) {
	p := NewPool(1)
	p.Insert(1, nil)
	p.Pin(1)
	p.Pin(1)
	p.Unpin(1)
	if p.Victim() != nil {
		t.Fatal("page evictable with outstanding pin")
	}
	p.Unpin(1)
	if p.Victim() == nil {
		t.Fatal("page not evictable after final unpin")
	}
	if err := p.Unpin(1); err == nil {
		t.Fatal("unbalanced unpin succeeded")
	}
}

func TestDirtyTracking(t *testing.T) {
	p := NewPool(3)
	p.Insert(1, nil)
	p.Insert(2, nil)
	p.MarkDirty(1)
	d := p.DirtyPages()
	if len(d) != 1 || d[0] != 1 {
		t.Fatalf("DirtyPages = %v", d)
	}
	if !p.Peek(1).Dirty() {
		t.Fatal("frame not dirty")
	}
	p.MarkClean(1)
	if len(p.DirtyPages()) != 0 {
		t.Fatal("MarkClean did not clear")
	}
	if err := p.MarkDirty(99); !errors.Is(err, ErrAbsent) {
		t.Fatalf("err = %v", err)
	}
}

func TestClearDropsEverything(t *testing.T) {
	p := NewPool(3)
	p.Insert(1, nil)
	p.Insert(2, nil)
	p.Pin(2)
	p.Clear()
	if p.Len() != 0 {
		t.Fatalf("Len = %d after Clear", p.Len())
	}
	if _, err := p.Insert(1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEachVisitsAll(t *testing.T) {
	p := NewPool(5)
	for i := 1; i <= 4; i++ {
		p.Insert(page.ID(i), nil)
	}
	seen := map[page.ID]bool{}
	p.Each(func(f *Frame) { seen[f.PID()] = true })
	if len(seen) != 4 {
		t.Fatalf("Each visited %d frames", len(seen))
	}
}

func TestScanResistanceNotRequired_CyclicEviction(t *testing.T) {
	// Under a cyclic access pattern larger than the pool, plain LRU evicts
	// everything (this is the paper's big-database thrashing behaviour).
	p := NewPool(4)
	for i := 1; i <= 8; i++ {
		if p.Full() {
			v := p.Victim()
			p.Remove(v.PID())
		}
		p.Insert(page.ID(i), nil)
	}
	for i := 1; i <= 4; i++ {
		if p.Peek(page.ID(i)) != nil {
			t.Fatalf("old page P%d survived cyclic fill", i)
		}
	}
	for i := 5; i <= 8; i++ {
		if p.Peek(page.ID(i)) == nil {
			t.Fatalf("recent page P%d evicted", i)
		}
	}
}
