package disk

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/page"
)

func testStore(t *testing.T, s Store) {
	t.Helper()
	buf := make([]byte, page.Size)
	if err := s.ReadPage(1, buf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read of missing page: %v", err)
	}
	data := bytes.Repeat([]byte{0x5a}, page.Size)
	if err := s.WritePage(1, data); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read back mismatch")
	}
	// Overwrite.
	data2 := bytes.Repeat([]byte{0xa5}, page.Size)
	if err := s.WritePage(1, data2); err != nil {
		t.Fatal(err)
	}
	s.ReadPage(1, buf)
	if !bytes.Equal(buf, data2) {
		t.Fatal("overwrite not visible")
	}
	// Size validation.
	if err := s.WritePage(2, make([]byte, 10)); err == nil {
		t.Fatal("short write accepted")
	}
	if err := s.ReadPage(1, make([]byte, 10)); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if s.Pages() < 1 {
		t.Fatalf("Pages = %d", s.Pages())
	}
}

func TestMemStore(t *testing.T) {
	testStore(t, NewMemStore())
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testStore(t, s)
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, page.Size)
	if err := s.WritePage(5, data); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	buf := make([]byte, page.Size)
	if err := s2.ReadPage(5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost across reopen")
	}
	if s2.Pages() != 6 {
		t.Fatalf("Pages = %d, want 6 (ids 0..5)", s2.Pages())
	}
}

func TestMemStoreWriteCopies(t *testing.T) {
	s := NewMemStore()
	data := make([]byte, page.Size)
	s.WritePage(1, data)
	data[0] = 99 // mutate caller's buffer after write
	buf := make([]byte, page.Size)
	s.ReadPage(1, buf)
	if buf[0] != 0 {
		t.Fatal("store aliases caller's buffer")
	}
}
