package disk

import (
	"time"

	"repro/internal/page"
)

// Delayed wraps a Store and sleeps a fixed duration before each page read or
// write, modeling data-disk latency the same way wal.Log.SetWriteDelay models
// log-device latency. Benchmarks use it to make page flushes cost real time —
// without it a sharp checkpoint "flushes" a memory store in microseconds and
// the stall it imposes on commits is invisible. Not used by any recovery
// path, and never by the crash-point sweeps (which must not observe time).
type Delayed struct {
	inner Store
	read  time.Duration
	write time.Duration
}

// NewDelayed wraps inner with the given per-ReadPage and per-WritePage
// latencies (either may be zero).
func NewDelayed(inner Store, read, write time.Duration) *Delayed {
	return &Delayed{inner: inner, read: read, write: write}
}

// ReadPage implements Store, paying the modeled read latency first.
func (d *Delayed) ReadPage(id page.ID, buf []byte) error {
	if d.read > 0 {
		time.Sleep(d.read)
	}
	return d.inner.ReadPage(id, buf)
}

// WritePage implements Store, paying the modeled write latency first.
func (d *Delayed) WritePage(id page.ID, data []byte) error {
	if d.write > 0 {
		time.Sleep(d.write)
	}
	return d.inner.WritePage(id, data)
}

// Pages implements Store.
func (d *Delayed) Pages() int { return d.inner.Pages() }

// ForEachPage implements Store (no modeled latency: it backs bulk
// maintenance scans, not the per-page protocol paths being measured).
func (d *Delayed) ForEachPage(fn func(id page.ID, data []byte) error) error {
	return d.inner.ForEachPage(fn)
}

// Close implements Store.
func (d *Delayed) Close() error { return d.inner.Close() }
