package disk

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/page"
)

// TestEnvelopeRoundTrip stamps pseudo-random payloads for a spread of page
// ids and checks the envelope properties: a stamped page verifies, any
// single flipped bit fails, the envelope names its page (misdirected
// writes), and the all-zeros never-written page verifies clean.
func TestEnvelopeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := []page.ID{0, 1, 7, 255, 1 << 16, 1<<32 - 1}
	for _, id := range ids {
		buf := make([]byte, page.Size)
		rng.Read(buf)
		StampTrailer(id, buf)
		if err := VerifyPage(id, buf); err != nil {
			t.Fatalf("page %v: stamped page fails verification: %v", id, err)
		}
		// Any single-bit flip — payload, trailer fields, or the CRC itself —
		// must be caught.
		for trial := 0; trial < 64; trial++ {
			bit := rng.Intn(page.Size * 8)
			buf[bit/8] ^= 1 << (bit % 8)
			if err := VerifyPage(id, buf); !errors.Is(err, ErrCorruptPage) {
				t.Fatalf("page %v: flipped bit %d went undetected: %v", id, bit, err)
			}
			buf[bit/8] ^= 1 << (bit % 8)
		}
		if err := VerifyPage(id, buf); err != nil {
			t.Fatalf("page %v: restored page fails verification: %v", id, err)
		}
		// The envelope names its page: reading it back as a different id is a
		// misdirected write.
		if err := VerifyPage(id+1, buf); !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("page %v read back as %v went undetected: %v", id, id+1, err)
		}
	}
	// The never-written state: all zeros verifies for any id.
	zero := make([]byte, page.Size)
	if err := VerifyPage(3, zero); err != nil {
		t.Fatalf("all-zeros page fails verification: %v", err)
	}
	// But a single nonzero byte without an envelope is damage, not absence.
	zero[17] = 1
	if err := VerifyPage(3, zero); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("near-zero page without envelope went undetected: %v", err)
	}
}

// TestChecksummedStore checks the wrapper end to end: transparent round
// trips, counters, detection of damage written below it, and that the
// caller's write buffer is never mutated by stamping.
func TestChecksummedStore(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksummed(mem)
	data := bytes.Repeat([]byte{0x77}, page.Size)
	orig := append([]byte(nil), data...)
	if err := cs.WritePage(9, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("WritePage mutated the caller's buffer")
	}
	buf := make([]byte, page.Size)
	if err := cs.ReadPage(9, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:page.Size-page.TrailerSize], data[:page.Size-page.TrailerSize]) {
		t.Fatal("payload did not round-trip")
	}
	if cs.Verified() == 0 || cs.Failures() != 0 {
		t.Fatalf("counters: verified=%d failures=%d", cs.Verified(), cs.Failures())
	}
	// Rot the stored copy below the wrapper.
	if err := mem.ReadPage(9, buf); err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0x01
	if err := mem.WritePage(9, buf); err != nil {
		t.Fatal(err)
	}
	if err := cs.ReadPage(9, make([]byte, page.Size)); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("rot below the wrapper went undetected: %v", err)
	}
	if err := cs.ForEachPage(func(page.ID, []byte) error { return nil }); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("ForEachPage scanned past a corrupt page: %v", err)
	}
	if cs.Failures() < 2 {
		t.Fatalf("failures counter = %d, want >= 2", cs.Failures())
	}
	// Missing pages are absence, not corruption.
	if err := cs.ReadPage(1000, make([]byte, page.Size)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing page: %v", err)
	}
}

// TestFileStoreTornFinalPage crashes a file store mid-write by truncating
// the file inside its last page: reopening must succeed and reading the
// torn page must fail typed, not return short garbage.
func TestFileStoreTornFinalPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xab}, page.Size)
	for pid := page.ID(0); pid < 3; pid++ {
		if err := fs.WritePage(pid, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn write: only 100 bytes of page 2 reached the platter.
	if err := os.Truncate(path, 2*page.Size+100); err != nil {
		t.Fatal(err)
	}
	fs, err = OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer fs.Close()
	buf := make([]byte, page.Size)
	if err := fs.ReadPage(1, buf); err != nil || !bytes.Equal(buf, data) {
		t.Fatalf("intact page unreadable after torn tail: %v", err)
	}
	if err := fs.ReadPage(2, buf); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("torn final page: err = %v, want ErrCorruptPage", err)
	}
}
