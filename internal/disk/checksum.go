package disk

// Checksum envelope for data pages: a 16-byte trailer carved out of every
// page (page.TrailerSize) carrying a magic, a format epoch, the page id, and
// a CRC-32C of everything before the checksum itself. The Checksummed Store
// wrapper stamps the trailer on every WritePage and verifies it on every
// ReadPage, turning silent media corruption — bit rot, torn page writes,
// misdirected writes landing on the wrong page — into the typed
// ErrCorruptPage before a damaged byte reaches the buffer pool or redo.
//
// Trailer layout, at buf[page.Size-page.TrailerSize:]:
//
//	[0,2)   magic  (uint16, "QC")
//	[2,4)   epoch  (uint16, envelope format version)
//	[4,8)   page id (uint32) — catches misdirected writes
//	[8,12)  reserved (zero)
//	[12,16) CRC-32C (Castagnoli) over buf[0 : Size-4)
//
// A page of all zero bytes is valid by definition: it is the never-written
// state a fresh volume reads back, and stores below the wrapper may
// materialize it (a file store's hole, a torn tail). Every written page gets
// a non-zero trailer, so the all-zeros exemption never masks real damage to
// a stamped page.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"repro/internal/page"
)

// ErrCorruptPage means a data page failed its checksum envelope: the store
// returned bytes that are provably not what was written (bit rot, torn
// write, misdirected write). It is the data-volume sibling of
// logrec.ErrCorrupt and archive.ErrCorruptSegment; match with errors.Is.
var ErrCorruptPage = errors.New("disk: corrupt page")

// EnvelopeEpoch is the current checksum envelope format version.
const EnvelopeEpoch = 1

const (
	envMagic   = 0x5143 // "QC"
	trailerOff = page.Size - page.TrailerSize
	crcOff     = page.Size - 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// StampTrailer writes the checksum envelope for page id into buf, which must
// be page.Size long. The CRC covers everything before the checksum field,
// including the rest of the trailer.
func StampTrailer(id page.ID, buf []byte) {
	tr := buf[trailerOff:]
	putU16(tr[0:], envMagic)
	putU16(tr[2:], EnvelopeEpoch)
	putU32(tr[4:], uint32(id))
	putU32(tr[8:], 0)
	putU32(buf[crcOff:], crc32.Checksum(buf[:crcOff], crcTable))
}

// VerifyPage checks buf's checksum envelope against page id. A page of all
// zero bytes verifies (the never-written state). Failures wrap
// ErrCorruptPage with the reason.
func VerifyPage(id page.ID, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("disk: verify buffer is %d bytes, want %d", len(buf), page.Size)
	}
	tr := buf[trailerOff:]
	if getU16(tr[0:]) != envMagic {
		if allZero(buf) {
			return nil // never-written page
		}
		return fmt.Errorf("%w: %v: missing checksum envelope", ErrCorruptPage, id)
	}
	if e := getU16(tr[2:]); e != EnvelopeEpoch {
		return fmt.Errorf("%w: %v: envelope epoch %d, want %d", ErrCorruptPage, id, e, EnvelopeEpoch)
	}
	if got := page.ID(getU32(tr[4:])); got != id {
		return fmt.Errorf("%w: %v: envelope names page %v (misdirected write)", ErrCorruptPage, id, got)
	}
	if got, want := crc32.Checksum(buf[:crcOff], crcTable), getU32(buf[crcOff:]); got != want {
		return fmt.Errorf("%w: %v: checksum %08x, stored %08x", ErrCorruptPage, id, got, want)
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Checksummed wraps a Store with the checksum envelope: WritePage stamps the
// trailer, ReadPage and ForEachPage verify it. It sits between the server
// and any fault-injecting or physical store, so corruption introduced below
// it — injected rot, torn file tails, real media errors — surfaces as
// ErrCorruptPage instead of silently entering recovery.
type Checksummed struct {
	inner    Store
	verified atomic.Int64
	failures atomic.Int64
}

// NewChecksummed wraps inner.
func NewChecksummed(inner Store) *Checksummed { return &Checksummed{inner: inner} }

// Inner returns the wrapped store (tools and tests that must bypass
// verification, e.g. to inspect raw bytes).
func (c *Checksummed) Inner() Store { return c.inner }

// Verified returns the number of pages that passed verification.
func (c *Checksummed) Verified() int64 { return c.verified.Load() }

// Failures returns the number of checksum verification failures observed.
func (c *Checksummed) Failures() int64 { return c.failures.Load() }

// ReadPage implements Store, verifying the envelope after the inner read.
func (c *Checksummed) ReadPage(id page.ID, buf []byte) error {
	if err := c.inner.ReadPage(id, buf); err != nil {
		return err
	}
	if err := VerifyPage(id, buf); err != nil {
		c.failures.Add(1)
		return err
	}
	c.verified.Add(1)
	return nil
}

// WritePage implements Store, stamping the envelope into a scratch copy so
// the caller's buffer is never mutated.
func (c *Checksummed) WritePage(id page.ID, data []byte) error {
	if len(data) != page.Size {
		return fmt.Errorf("disk: write buffer is %d bytes, want %d", len(data), page.Size)
	}
	var stamped [page.Size]byte
	copy(stamped[:], data)
	StampTrailer(id, stamped[:])
	return c.inner.WritePage(id, stamped[:])
}

// Pages implements Store.
func (c *Checksummed) Pages() int { return c.inner.Pages() }

// ForEachPage implements Store, verifying every page handed to fn. A
// corrupt page stops the scan with ErrCorruptPage — a bulk consumer (online
// backup) must never archive damaged bytes.
func (c *Checksummed) ForEachPage(fn func(id page.ID, data []byte) error) error {
	return c.inner.ForEachPage(func(id page.ID, data []byte) error {
		if err := VerifyPage(id, data); err != nil {
			c.failures.Add(1)
			return err
		}
		c.verified.Add(1)
		return fn(id, data)
	})
}

// Close implements Store.
func (c *Checksummed) Close() error { return c.inner.Close() }

var _ Store = (*Checksummed)(nil)
