// Package disk provides stable page storage for the server's database
// volume. Two implementations are provided: an in-memory store used by tests
// and simulations, and a file-backed store used by the standalone server.
// Contents survive a simulated crash (only buffer pools and other volatile
// state are lost); the file store additionally survives process restarts.
package disk

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/page"
)

// ErrNotFound is returned when reading a page that was never written.
var ErrNotFound = errors.New("disk: page not found")

// Store is stable storage for fixed-size pages.
type Store interface {
	// ReadPage copies the stored page into buf, which must be page.Size long.
	ReadPage(id page.ID, buf []byte) error
	// WritePage durably stores data, which must be page.Size long.
	WritePage(id page.ID, data []byte) error
	// Pages returns the number of distinct pages ever written.
	Pages() int
	// ForEachPage calls fn for every stored page in ascending id order,
	// stopping at the first error. The data slice is valid only for the
	// duration of the callback. The iteration is fuzzy by design: the page
	// set is snapshotted up front but each page is read individually, so
	// pages written concurrently may be observed either before or after
	// their update — the contract online backup needs (each page copy is
	// individually atomic; cross-page consistency comes from log replay).
	ForEachPage(fn func(id page.ID, data []byte) error) error
	// Close releases resources.
	Close() error
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu    sync.RWMutex
	pages map[page.ID][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{pages: make(map[page.ID][]byte)}
}

// ReadPage implements Store.
func (s *MemStore) ReadPage(id page.ID, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("disk: read buffer is %d bytes, want %d", len(buf), page.Size)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	copy(buf, data)
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id page.ID, data []byte) error {
	if len(data) != page.Size {
		return fmt.Errorf("disk: write buffer is %d bytes, want %d", len(data), page.Size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dst, ok := s.pages[id]
	if !ok {
		dst = make([]byte, page.Size)
		s.pages[id] = dst
	}
	copy(dst, data)
	return nil
}

// Pages implements Store.
func (s *MemStore) Pages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// ForEachPage implements Store. The id set is snapshotted under the lock,
// then pages are read one at a time, so concurrent writers are never blocked
// for the whole scan (fuzzy backup reads the volume while transactions run).
func (s *MemStore) ForEachPage(fn func(id page.ID, data []byte) error) error {
	s.mu.RLock()
	ids := make([]page.ID, 0, len(s.pages))
	for id := range s.pages {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var buf [page.Size]byte
	for _, id := range ids {
		if err := s.ReadPage(id, buf[:]); err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // vanished mid-scan; nothing stable to copy
			}
			return err
		}
		if err := fn(id, buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// Clone returns an independent deep copy of the store, including the
// superblock page. The crash sweeps snapshot a frozen volume this way and
// run each candidate recovery against its own copy.
func (s *MemStore) Clone() *MemStore {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewMemStore()
	for id, data := range s.pages {
		c.pages[id] = append([]byte(nil), data...)
	}
	return c
}

// FileStore is a Store backed by a single flat file; page id n lives at byte
// offset n*page.Size. A bitmap of written pages is kept in memory and
// rebuilt lazily: reading an all-zero, never-written page returns
// ErrNotFound only for offsets beyond the file end.
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	size int64 // file length in bytes
}

// OpenFileStore opens or creates the volume file at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{f: f, size: st.Size()}, nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id page.ID, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("disk: read buffer is %d bytes, want %d", len(buf), page.Size)
	}
	off := int64(id) * page.Size
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= s.size {
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	if off+page.Size > s.size {
		// The file ends mid-page: a write was torn by a crash. This is
		// damage, not absence — reporting ErrNotFound here would hand the
		// reader a silent zero page in place of a partially persisted one.
		return fmt.Errorf("%w: %v: volume file ends %d bytes into the page",
			ErrCorruptPage, id, s.size-off)
	}
	_, err := s.f.ReadAt(buf, off)
	return err
}

// WritePage implements Store.
func (s *FileStore) WritePage(id page.ID, data []byte) error {
	if len(data) != page.Size {
		return fmt.Errorf("disk: write buffer is %d bytes, want %d", len(data), page.Size)
	}
	off := int64(id) * page.Size
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(data, off); err != nil {
		return err
	}
	if off+page.Size > s.size {
		s.size = off + page.Size
	}
	return nil
}

// Pages implements Store.
func (s *FileStore) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.size / page.Size)
}

// ForEachPage implements Store. The file length is snapshotted, then pages
// are read one at a time under the lock.
func (s *FileStore) ForEachPage(fn func(id page.ID, data []byte) error) error {
	s.mu.Lock()
	n := s.size / page.Size
	s.mu.Unlock()
	var buf [page.Size]byte
	for id := page.ID(0); int64(id) < n; id++ {
		if err := s.ReadPage(id, buf[:]); err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return err
		}
		if err := fn(id, buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

var (
	_ Store = (*MemStore)(nil)
	_ Store = (*FileStore)(nil)
)
