package server

// The background page cleaner (DESIGN.md §13).
//
// Fuzzy checkpoints log the dirty page table instead of flushing it, so some
// other mechanism must write dirty pages home — otherwise the DPT grows
// without bound, restart redo work grows with it, and log truncation stalls
// at min(recLSN). The cleaner is that mechanism: a paced worker that writes
// cold dirty pages to the volume in recLSN order (oldest redo obligation
// first, which is also what advances the truncation floor fastest),
// enforcing the WAL rule per page. Commits never wait on it; a committer
// past the high watermark (2x Config.DirtyPageTarget) cleans a small
// quantum of pages inline as soft backpressure.
//
// Latch order: each page is handled under gate.R → its shard latch → dptMu,
// exactly the order session operations use, so the cleaner can run
// concurrently with them; Checkpoint/Restart/Crash exclude it per page via
// the gate like any session. The crash-point sweep drives Clean synchronously
// (CleanerEvery = 0, no goroutine) so its fuse points stay deterministic.

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/page"
)

// DefaultCleanerBatch is the per-pass page budget when CleanerBatch is 0.
const DefaultCleanerBatch = 32

// backpressureQuantum is the most pages one backpressured commit cleans
// inline. It is intentionally far below the cleaner's batch size: the point
// of the watermark is that writers collectively pay the draining cost in
// small installments, never that a single commit absorbs a flush storm.
const backpressureQuantum = 4

func (s *Server) cleanerBatch() int {
	if s.cfg.CleanerBatch > 0 {
		return s.cfg.CleanerBatch
	}
	return DefaultCleanerBatch
}

// Clean writes up to limit cold dirty pages home, oldest recLSN first, and
// returns how many it retired. It is the synchronous core of the background
// cleaner, also called inline by commit backpressure and driven directly by
// the crash-point sweep. Under WPL it is a no-op: committed copies reach
// their permanent locations through installs, and uncommitted ones must not.
func (sn *Session) Clean(limit int) (int, error) {
	s := sn.s
	if s.cfg.Mode == ModeWPL || limit <= 0 {
		return 0, nil
	}
	if s.restarting.Load() {
		return 0, ErrRestarting
	}
	defer s.enter()()
	atomic.AddInt64(&s.stats.CleanerPasses, 1)
	// Candidates are a DPT snapshot ordered by recLSN (page id ties broken
	// ascending — a deterministic order the crash-point sweep depends on).
	// Entries added after the snapshot wait for the next pass.
	s.dptMu.Lock()
	cands := make([]ckptDPT, 0, len(s.dpt))
	for pid, e := range s.dpt {
		cands = append(cands, ckptDPT{pid: pid, rec: e.rec})
	}
	s.dptMu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rec != cands[j].rec {
			return cands[i].rec < cands[j].rec
		}
		return cands[i].pid < cands[j].pid
	})
	cleaned := 0
	for _, cand := range cands {
		if cleaned >= limit {
			break
		}
		n, err := s.cleanOne(sn, cand.pid)
		if err != nil {
			return cleaned, err
		}
		cleaned += n
	}
	atomic.AddInt64(&s.stats.CleanerPages, int64(cleaned))
	return cleaned, nil
}

// cleanOne writes one DPT page home if it is resident, dirty and cold,
// returning 1 if a page was written. Caller holds gate.R.
func (s *Server) cleanOne(sn *Session, pid page.ID) (int, error) {
	// Claim the page so concurrent cleaners (the ticker worker plus any
	// backpressured committers) fan out over distinct candidates. Without
	// the claim they all sort the same snapshot and convoy on the oldest
	// page's shard latch, turning backpressure into a global stall.
	s.dptMu.Lock()
	if s.cleaning[pid] {
		s.dptMu.Unlock()
		return 0, nil
	}
	s.cleaning[pid] = true
	s.dptMu.Unlock()
	defer func() {
		s.dptMu.Lock()
		delete(s.cleaning, pid)
		s.dptMu.Unlock()
	}()

	for attempt := 0; ; attempt++ {
		sh := s.pool.Lock(pid)
		f := sh.Peek(pid)
		if f == nil {
			// Not resident: eviction already wrote the then-current image
			// home. The surviving DPT entry means records outran that image
			// (ESM ships pages after their records); the cleaner has nothing
			// newer to write until the page arrives, so leave the entry for
			// redo to cover.
			sh.Unlock()
			return 0, nil
		}
		lsn := page.Wrap(f.Bytes()).LSN()
		if !f.Dirty() {
			// A flush beat us here; just retire the stale entry if the image
			// caught up.
			sh.Unlock()
			s.retireDPT(pid, lsn)
			return 0, nil
		}
		if protect := s.cfg.CleanerProtect; protect > 0 && sh.Clock()-f.LastUse() < protect {
			// Hot page: writing it now buys little (it will re-dirty) and
			// costs a data write; leave it for a later pass or eviction.
			sh.Unlock()
			atomic.AddInt64(&s.stats.CleanerHotSkips, 1)
			return 0, nil
		}
		// WAL before data: the page's newest record must be stable before
		// the image lands on the volume. Never force while holding the shard
		// latch — a force can wait out a whole group-commit batch, and every
		// session whose pages share the shard would wait with it. Force
		// latch-free, re-latch, re-check; a page re-dirtied meanwhile just
		// needs one more force, and one that keeps outracing the forces is
		// too hot to be worth cleaning this pass.
		if lsn != 0 && lsn >= s.log.StableEnd() {
			sh.Unlock()
			if attempt >= 3 {
				atomic.AddInt64(&s.stats.CleanerHotSkips, 1)
				return 0, nil
			}
			sn.meter().LogWrite(s.log.Force())
			continue
		}
		if err := s.store.WritePage(pid, f.Bytes()); err != nil {
			sh.Unlock()
			return 0, err
		}
		sn.meter().DataWriteAsync(1)
		atomic.AddInt64(&s.stats.DataWrites, 1)
		sh.MarkClean(pid)
		sh.Unlock()
		s.retireDPT(pid, lsn)
		return 1, nil
	}
}

// cleanerWorker is the paced background cleaner: every Config.CleanerEvery
// it writes home up to batch cold dirty pages. Mirrors scrubWorker's
// lifecycle (started by New, stopped by Close).
func (s *Server) cleanerWorker(every time.Duration, batch int) {
	defer s.cleanerWG.Done()
	sn := s.NewSession(nil, nil)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.cleanerStop:
			return
		case <-tick.C:
			// Below the target the pool is allowed to stay dirty — writing
			// hot pages early is wasted I/O; at or above it, drain a batch.
			if s.cfg.DirtyPageTarget > 0 {
				s.dptMu.Lock()
				backlog := len(s.dpt)
				s.dptMu.Unlock()
				if backlog <= s.cfg.DirtyPageTarget {
					continue
				}
			}
			// Maintenance: errors (including ErrRestarting) resurface on the
			// eviction and checkpoint paths; keep ticking.
			_, _ = sn.Clean(batch)
		}
	}
}
