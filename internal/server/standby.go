package server

// Hot-standby support (DESIGN.md §14). A standby server's log is a byte-exact
// replica of its primary's stream: ApplyShipped re-appends each shipped
// record at its original LSN (logrec encoding is deterministic, so the bytes
// — CRCs included — are identical) and mirrors the primary's table updates,
// so at every record boundary the standby holds exactly the state a crashed
// primary would recover to at that cut. Promotion is then literally
// crash-then-restart: discard the volatile state and run the scheme's normal
// Restart over the replicated log and volume.
//
// One applier goroutine drives ApplyShipped (records of one log stream are
// inherently sequential); each call holds the read side of the gate, so the
// standby's own cleaner, scrubber and read-only sessions interleave under the
// normal concurrency model, and Promote's Crash/Restart (gate.W) excludes an
// in-flight apply.

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/logrec"
	"repro/internal/page"
)

// standbyTIDBase is the first TID handed to standby read-only sessions. The
// range is disjoint from any TID a primary can realistically assign, so a
// shipped record can never collide with a local reader's ATT entry.
const standbyTIDBase = logrec.TID(1) << 62

// Standby reports whether the server is currently a replication standby.
func (s *Server) Standby() bool { return s.standby.Load() }

// ApplyShipped replays one record of the primary's log stream. Records must
// arrive in LSN order from a single goroutine. The record is appended at its
// original LSN (or recognized as already present, when a cold bootstrap
// restored part of the stream from the archive) and its effect is applied:
// updates run through the same pageLSN-conditional redo as restart, ATT/DPT/
// WPL bookkeeping mirrors the primary's, and checkpoint records additionally
// mirror the master-record write and the primary's log reclamation, so the
// standby's ring never fills. The caller is responsible for forcing the log
// (batch-wise) before reporting the records as applied.
func (sn *Session) ApplyShipped(r *logrec.Record) error {
	s := sn.s
	if s.restarting.Load() {
		return ErrRestarting
	}
	defer s.enter()()
	if !s.standby.Load() {
		return fmt.Errorf("%w: ApplyShipped on a non-standby", ErrModeViolation)
	}
	size := uint64(r.EncodedSize())
	end := s.log.End()
	appendIt := false
	switch {
	case r.LSN+size <= end:
		// Already in the log: the cold-bootstrap replay over a restored
		// stream (archive.Bootstrap re-appended these at identical LSNs).
		// Tables and pages still need the record's effects.
	case r.LSN == end:
		appendIt = true
	default:
		return fmt.Errorf("server: shipped record at LSN %d leaves a gap (log ends at %d)", r.LSN, end)
	}

	switch r.Type {
	case logrec.TypeUpdate, logrec.TypeCLR, logrec.TypePageImage:
		if s.cfg.Mode == ModeWPL && r.Type == logrec.TypePageImage {
			if err := s.applyShippedWPLImage(sn, r, appendIt); err != nil {
				return err
			}
			s.allocMu.Lock()
			s.bumpAllocFor(r)
			s.allocMu.Unlock()
			return nil
		}
		// Append + ATT chain + DPT insert: one attMu section, mirroring
		// ShipLog/undoApply on the primary.
		s.attMu.Lock()
		if appendIt {
			if err := s.appendShippedLocked(r); err != nil {
				s.attMu.Unlock()
				return err
			}
		}
		t := s.shippedTxnLocked(r.TID)
		t.lastLSN = r.LSN
		if t.firstLSN == logrec.NoLSN {
			t.firstLSN = r.LSN
		}
		t.pageLSN[r.Page] = r.LSN
		s.dptMu.Lock()
		e, ok := s.dpt[r.Page]
		if !ok {
			e = dptEntry{rec: r.LSN}
		}
		if r.LSN > e.newest {
			e.newest = r.LSN
		}
		s.dpt[r.Page] = e
		s.dptMu.Unlock()
		s.attMu.Unlock()
		// Track the primary's allocation frontier as analysis would, so the
		// scrubber covers replicated pages and promotion starts from the
		// right counters even before a checkpoint arrives.
		s.allocMu.Lock()
		s.bumpAllocFor(r)
		s.allocMu.Unlock()
		// Repeat history, conditional on the page LSN — identical to restart
		// redo, and idempotent over a bootstrap-restored (possibly newer,
		// fuzzy-backup) image.
		_, err := s.redoApplyOne(sn, r)
		return err

	case logrec.TypeCommit:
		s.attMu.Lock()
		if appendIt {
			if err := s.appendShippedLocked(r); err != nil {
				s.attMu.Unlock()
				return err
			}
		}
		t := s.att[r.TID]
		if t != nil {
			t.lastLSN = r.LSN
		}
		if s.cfg.Mode == ModeWPL && t != nil {
			commitEnd := r.LSN + size
			s.wplMu.Lock()
			for _, pid := range t.wplPages {
				for e := s.wpl[pid]; e != nil; e = e.prev {
					if e.tid == r.TID {
						e.committed = true
						e.commitEnd = commitEnd
					}
				}
			}
			s.wplMu.Unlock()
		}
		s.attMu.Unlock()
		if s.cfg.Mode == ModeWPL && t != nil {
			s.wplCommit(sn, t)
		}
		s.attMu.Lock()
		delete(s.att, r.TID)
		s.attMu.Unlock()
		return nil

	case logrec.TypeAbort:
		s.attMu.Lock()
		if appendIt {
			if err := s.appendShippedLocked(r); err != nil {
				s.attMu.Unlock()
				return err
			}
		}
		t := s.att[r.TID]
		if t != nil {
			t.lastLSN = r.LSN
		}
		s.attMu.Unlock()
		// ESM/REDO: the primary's undo arrives as CLRs in the stream; under
		// WPL abort-by-ignoring unlinks the copies here, as on the primary.
		if s.cfg.Mode == ModeWPL && t != nil {
			s.wplAbort(sn, t)
		}
		return nil

	case logrec.TypeEnd:
		s.attMu.Lock()
		if appendIt {
			if err := s.appendShippedLocked(r); err != nil {
				s.attMu.Unlock()
				return err
			}
		}
		delete(s.att, r.TID)
		s.decMu.Lock()
		delete(s.decided, r.TID) // a forget End retires the mirrored decision
		s.decMu.Unlock()
		s.attMu.Unlock()
		return nil

	case logrec.TypePrepare:
		// Mirror the primary's prepared marking so promotion resurrects the
		// branch in doubt exactly as the primary's own restart would.
		s.attMu.Lock()
		if appendIt {
			if err := s.appendShippedLocked(r); err != nil {
				s.attMu.Unlock()
				return err
			}
		}
		t := s.shippedTxnLocked(r.TID)
		t.lastLSN = r.LSN
		if t.firstLSN == logrec.NoLSN {
			t.firstLSN = r.LSN
		}
		t.prepared = true
		t.prepLSN = r.LSN
		if coord, parts, perr := logrec.DecodePrepareInfo(r.After); perr == nil {
			t.coord = coord
			t.parts = parts
		}
		s.attMu.Unlock()
		s.allocMu.Lock()
		s.bumpAllocFor(r)
		s.allocMu.Unlock()
		return nil

	case logrec.TypeDecide:
		// The decision is not chained into any branch; mirror the decided map
		// so a promoted coordinator can answer resolution requests.
		s.attMu.Lock()
		if appendIt {
			if err := s.appendShippedLocked(r); err != nil {
				s.attMu.Unlock()
				return err
			}
		}
		s.decMu.Lock()
		if _, ok := s.decided[r.TID]; !ok {
			if _, parts, perr := logrec.DecodePrepareInfo(r.After); perr == nil {
				s.decided[r.TID] = decidedTxn{lsn: r.LSN, parts: parts}
			}
		}
		s.decMu.Unlock()
		s.attMu.Unlock()
		s.allocMu.Lock()
		s.bumpAllocFor(r)
		s.allocMu.Unlock()
		return nil

	case logrec.TypeCheckpoint:
		if appendIt {
			s.attMu.Lock()
			err := s.appendShippedLocked(r)
			s.attMu.Unlock()
			if err != nil {
				return err
			}
		}
		return s.applyShippedCheckpoint(sn, r)

	default:
		return fmt.Errorf("server: cannot apply shipped %v record", r.Type)
	}
}

// appendShippedLocked appends r, asserting it lands at its original LSN.
// Caller holds attMu (or is a checkpoint append, where the primary appends
// outside attMu too). Append assigns r.LSN = next and the caller checked
// next == r.LSN, so the assert only fires on a racing local append — which
// the standby guards exist to prevent.
func (s *Server) appendShippedLocked(r *logrec.Record) error {
	want := r.LSN
	got, err := s.log.Append(r)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("server: shipped record for LSN %d appended at %d (log diverged)", want, got)
	}
	return nil
}

// shippedTxnLocked finds or creates the ATT entry for a shipped record's
// transaction. Caller holds attMu.
func (s *Server) shippedTxnLocked(tid logrec.TID) *txn {
	t := s.att[tid]
	if t == nil {
		t = &txn{tid: tid, lastLSN: logrec.NoLSN, firstLSN: logrec.NoLSN, pageLSN: make(map[page.ID]uint64)}
		s.att[tid] = t
	}
	return t
}

// applyShippedWPLImage mirrors wplShip for a shipped whole-page image: ATT
// chain and WPL-table insert in one attMu section. The image is not cached
// or written home — the no-steal rule stands, and reads reload the newest
// copy from the log until its commit record arrives.
func (s *Server) applyShippedWPLImage(sn *Session, r *logrec.Record, appendIt bool) error {
	s.attMu.Lock()
	defer s.attMu.Unlock()
	if appendIt {
		if err := s.appendShippedLocked(r); err != nil {
			return err
		}
	}
	t := s.shippedTxnLocked(r.TID)
	t.lastLSN = r.LSN
	if t.firstLSN == logrec.NoLSN {
		t.firstLSN = r.LSN
	}
	t.wplPages = append(t.wplPages, r.Page)
	s.wplMu.Lock()
	s.wpl[r.Page] = &wplEntry{pid: r.Page, lsn: r.LSN, tid: r.TID, prev: s.wpl[r.Page]}
	s.wplMu.Unlock()
	return nil
}

// applyShippedCheckpoint mirrors the primary's checkpoint side effects from
// the record's payload: the master-record write (so promotion's Restart finds
// the same newest checkpoint a crashed primary's would), the allocation
// counters, and the log reclamation — the same head computation as
// checkpointCore, over the logged snapshot instead of live tables, so the
// standby's ring reclaims in lockstep with the primary's.
func (s *Server) applyShippedCheckpoint(sn *Session, r *logrec.Record) error {
	c, err := decodeCkpt(r.After)
	if err != nil {
		return fmt.Errorf("server: shipped checkpoint at %d: %w", r.LSN, err)
	}
	// The master record must never name an unstable checkpoint record.
	sn.meter().LogWrite(s.log.Force())
	sh := s.pool.Lock(superblockPage)
	err = s.writeSuperblock(sn, superblock{
		checkpointLSN: r.LSN,
		nextPage:      c.nextPage,
		nextTID:       c.nextTID,
		hasCheckpoint: true,
	})
	sh.Unlock()
	if err != nil {
		return err
	}
	atomic.AddInt64(&s.stats.Checkpoints, 1)
	s.allocMu.Lock()
	s.nextPage = maxPID(s.nextPage, c.nextPage)
	s.nextTID = maxTID(s.nextTID, c.nextTID)
	s.allocMu.Unlock()
	if s.cfg.Mode == ModeWPL {
		// Copies committed before the replicated stream began (a cold
		// bootstrap) have no commit record in the stream; the checkpoint's
		// logged table is the only witness. Merge them — unless a newer copy
		// from the stream supersedes — so standby reads reload the committed
		// version; promotion's Restart performs the same merge itself.
		s.wplMu.Lock()
		for _, w := range c.wpl {
			if !w.committed {
				continue
			}
			if cur := s.wpl[w.pid]; cur != nil && cur.lsn >= w.lsn {
				continue
			}
			s.wpl[w.pid] = &wplEntry{pid: w.pid, lsn: w.lsn, tid: w.tid, committed: true}
		}
		s.wplMu.Unlock()
	}
	head := r.LSN
	if c.beginLSN > 0 {
		head = minUint64(head, c.beginLSN)
	}
	for _, t := range c.txns {
		if t.firstLSN != logrec.NoLSN && t.firstLSN < head {
			head = t.firstLSN
		}
	}
	for _, w := range c.wpl {
		if w.lsn < head {
			head = w.lsn
		}
	}
	for _, d := range c.dpt {
		if d.rec < head {
			head = d.rec
		}
	}
	// That head is sound for the primary's volume, not necessarily this one:
	// pages the primary already cleaned are out of its logged DPT, but the
	// standby's flush timing is its own, so the same pages may still be dirty
	// only here, with their redo records below head. Write them home before
	// reclaiming (the standby owes those writes eventually anyway), then pin
	// the truncation floor at whatever remains dirty — hot-skipped or
	// non-resident pages — exactly as the primary pins its own fuzzy head.
	s.dptMu.Lock()
	orphans := make([]page.ID, 0, len(s.dpt))
	for pid, e := range s.dpt {
		if e.rec < head {
			orphans = append(orphans, pid)
		}
	}
	s.dptMu.Unlock()
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, pid := range orphans {
		if _, err := s.cleanOne(sn, pid); err != nil {
			return err
		}
	}
	floor := uint64(0)
	s.dptMu.Lock()
	for _, e := range s.dpt {
		if floor == 0 || e.rec < floor {
			floor = e.rec
		}
	}
	s.dptMu.Unlock()
	s.log.SetTruncateFloor(floor)
	if head > s.log.Head() {
		return s.log.Truncate(head)
	}
	return nil
}

// Promote ends standby mode: the server discards its volatile state and runs
// the normal scheme-specific Restart over the replicated log and volume —
// promotion IS crash-then-restart, which is what makes the promoted state
// byte-equivalent to a single-node restart at the same log cut. The caller
// must have quiesced the applier (no ApplyShipped in flight or after); the
// standby's own background cleaner and scrubber are excluded by Restart's
// gate.W + ErrRestarting fast-fail, like any restart. Unforced shipped
// records are discarded, exactly as a crashed primary would lose them — and
// they were never acknowledged, since acks cover only forced batches.
func (sn *Session) Promote() error {
	s := sn.s
	if !s.standby.Load() {
		return fmt.Errorf("%w: promote on a non-standby", ErrModeViolation)
	}
	s.Crash()
	if err := sn.Restart(); err != nil {
		return err
	}
	s.standby.Store(false)
	return nil
}
