package server

// Checkpointing, crash simulation and restart recovery.
//
// ESM/REDO take sharp ARIES-style checkpoints: all dirty pages are flushed
// (after forcing the log per the write-ahead rule), the active-transaction
// table is logged, and the log is truncated below the oldest LSN any active
// transaction still needs. Restart then runs analysis from the checkpoint,
// redoes history conditionally on page LSNs, and rolls back losers with
// CLRs. Redo is partitioned by page ID across Config.RedoWorkers goroutines
// — per-page record order is preserved because a page belongs to exactly one
// worker; undo stays sequential (CLR LSNs must be deterministic).
//
// WPL checkpoints write the WPL table to the log (paper §3.4.3); restart is
// the paper's single backward pass that builds the committed-transactions
// list, reconstructs the WPL table, and installs the surviving copies.
//
// Every entry point here takes the write side of the quiesce gate, so it
// observes a server with no session operation in flight; the leaf mutexes
// are still taken around map access to keep the lock discipline uniform.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wal"
)

// --- checkpoint payload encoding ------------------------------------------

// ckptTxn is an active-transaction-table entry in a checkpoint record.
type ckptTxn struct {
	tid      logrec.TID
	lastLSN  uint64
	firstLSN uint64
}

// ckptWPL is a WPL-table entry in a checkpoint record.
type ckptWPL struct {
	pid       page.ID
	lsn       uint64
	tid       logrec.TID
	committed bool
}

type ckptPayload struct {
	nextPage page.ID
	nextTID  logrec.TID
	txns     []ckptTxn
	wpl      []ckptWPL
}

func (c *ckptPayload) encode() []byte {
	buf := make([]byte, 0, 32+24*len(c.txns)+24*len(c.wpl))
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put64(uint64(c.nextPage))
	put64(uint64(c.nextTID))
	put64(uint64(len(c.txns)))
	put64(uint64(len(c.wpl)))
	for _, t := range c.txns {
		put64(uint64(t.tid))
		put64(t.lastLSN)
		put64(t.firstLSN)
	}
	for _, w := range c.wpl {
		put64(uint64(w.pid))
		put64(w.lsn)
		committed := uint64(0)
		if w.committed {
			committed = 1
		}
		put64(uint64(w.tid)<<1 | committed)
	}
	return buf
}

func decodeCkpt(b []byte) (*ckptPayload, error) {
	if len(b) < 32 {
		return nil, fmt.Errorf("server: checkpoint payload too short (%d bytes)", len(b))
	}
	get := func(i int) uint64 { return binary.LittleEndian.Uint64(b[8*i:]) }
	c := &ckptPayload{
		nextPage: page.ID(get(0)),
		nextTID:  logrec.TID(get(1)),
	}
	nt, nw := int(get(2)), int(get(3))
	if len(b) != 32+24*nt+24*nw {
		return nil, fmt.Errorf("server: checkpoint payload size mismatch")
	}
	idx := 4
	for i := 0; i < nt; i++ {
		c.txns = append(c.txns, ckptTxn{
			tid:      logrec.TID(get(idx)),
			lastLSN:  get(idx + 1),
			firstLSN: get(idx + 2),
		})
		idx += 3
	}
	for i := 0; i < nw; i++ {
		pid := page.ID(get(idx))
		lsn := get(idx + 1)
		packed := get(idx + 2)
		c.wpl = append(c.wpl, ckptWPL{
			pid:       pid,
			lsn:       lsn,
			tid:       logrec.TID(packed >> 1),
			committed: packed&1 == 1,
		})
		idx += 3
	}
	return c, nil
}

// --- checkpoint ------------------------------------------------------------

// Checkpoint writes a checkpoint record, updates the master record in the
// superblock, and reclaims log space. It quiesces the server for its
// duration (a sharp checkpoint).
func (sn *Session) Checkpoint() error {
	s := sn.s
	s.gate.Lock()
	defer s.gate.Unlock()
	return s.checkpointQuiesced(sn)
}

func (s *Server) checkpointQuiesced(sn *Session) error {
	s.allocMu.Lock()
	c := ckptPayload{nextPage: s.nextPage, nextTID: s.nextTID}
	s.allocMu.Unlock()
	if s.cfg.Mode != ModeWPL {
		// Sharp checkpoint: force the log once, then flush every dirty page
		// (in ascending page order — the sweep's event stream depends on it).
		sn.meter().LogWrite(s.log.Force())
		for _, pid := range s.pool.DirtyPages() {
			sh := s.pool.Lock(pid)
			f := sh.Peek(pid)
			if err := s.store.WritePage(pid, f.Bytes()); err != nil {
				sh.Unlock()
				return err
			}
			sn.meter().DataWriteAsync(1)
			atomic.AddInt64(&s.stats.DataWrites, 1)
			sh.MarkClean(pid)
			sh.Unlock()
			s.dptMu.Lock()
			delete(s.dpt, pid)
			s.dptMu.Unlock()
		}
	}
	s.attMu.Lock()
	for _, t := range s.att {
		c.txns = append(c.txns, ckptTxn{tid: t.tid, lastLSN: t.lastLSN, firstLSN: t.firstLSN})
	}
	s.attMu.Unlock()
	s.wplMu.Lock()
	for _, head := range s.wpl {
		for e := head; e != nil; e = e.prev {
			c.wpl = append(c.wpl, ckptWPL{pid: e.pid, lsn: e.lsn, tid: e.tid, committed: e.committed})
		}
	}
	s.wplMu.Unlock()
	// Map iteration is randomized; sort so the checkpoint record's bytes —
	// and with them every later LSN — are identical run to run, which the
	// crash-point sweep's reproducibility depends on.
	sort.Slice(c.txns, func(i, j int) bool { return c.txns[i].tid < c.txns[j].tid })
	sort.Slice(c.wpl, func(i, j int) bool {
		if c.wpl[i].pid != c.wpl[j].pid {
			return c.wpl[i].pid < c.wpl[j].pid
		}
		return c.wpl[i].lsn < c.wpl[j].lsn
	})
	rec := &logrec.Record{Type: logrec.TypeCheckpoint, PrevLSN: logrec.NoLSN, After: c.encode()}
	ckptLSN, err := s.log.Append(rec)
	if err != nil {
		return err
	}
	sn.meter().LogWrite(s.log.Force())
	if err := s.writeSuperblock(sn, superblock{
		checkpointLSN: ckptLSN,
		nextPage:      c.nextPage,
		nextTID:       c.nextTID,
		hasCheckpoint: true,
	}); err != nil {
		return err
	}
	atomic.AddInt64(&s.stats.Checkpoints, 1)
	// Reclaim: the log is needed from the oldest of the checkpoint itself,
	// any active transaction's first record, and any WPL copy still awaiting
	// install.
	head := ckptLSN
	for _, t := range c.txns {
		if t.firstLSN != logrec.NoLSN && t.firstLSN < head {
			head = t.firstLSN
		}
	}
	for _, w := range c.wpl {
		if w.lsn < head {
			head = w.lsn
		}
	}
	if s.cfg.PreTruncate != nil {
		if err := s.cfg.PreTruncate(head); err != nil {
			// Archiving failed: leave the log unreclaimed (the archive gate
			// would defer the truncation regardless) and report the
			// checkpoint itself as successful.
			return nil
		}
	}
	return s.log.Truncate(head)
}

// --- crash and restart -----------------------------------------------------

// Crash simulates a server failure: every volatile structure (buffer pool,
// transaction tables, WPL table, lock table, unforced log tail) is lost. The
// data volume and the forced log survive. Committers parked in the group-
// commit flusher are woken (their commit outcome is whatever the surviving
// log says), and queued background installs are invalidated by the WPL
// generation bump.
func (s *Server) Crash() {
	s.gate.Lock()
	defer s.gate.Unlock()
	s.pool.Clear()
	s.attMu.Lock()
	s.att = make(map[logrec.TID]*txn)
	s.attMu.Unlock()
	s.dptMu.Lock()
	s.dpt = make(map[page.ID]uint64)
	s.dptMu.Unlock()
	s.wplMu.Lock()
	s.wpl = make(map[page.ID]*wplEntry)
	s.wplGen++
	s.wplMu.Unlock()
	s.locks.Reset()
	s.log.Crash()
}

// Restart recovers the server from stable state after a crash, leaving it
// ready for new transactions.
func (sn *Session) Restart() error {
	s := sn.s
	s.gate.Lock()
	defer s.gate.Unlock()
	s.restarting = true
	defer func() { s.restarting = false }()
	atomic.AddInt64(&s.stats.Restarts, 1)
	sb, err := s.readSuperblock()
	if err != nil {
		return err
	}
	s.allocMu.Lock()
	s.nextPage = maxPID(s.nextPage, sb.nextPage)
	s.nextTID = maxTID(s.nextTID, sb.nextTID)
	s.allocMu.Unlock()
	if _, ok := s.store.(*disk.Checksummed); ok {
		// A checksummed volume is verified before any recovery work: every
		// corrupt page is repaired here (from the live log or the archive),
		// so redo and undo replay over sound pages. This cannot be deferred
		// to redo's own fetches — they run inside a log scan, which holds
		// the log mutex repair itself needs.
		if err := s.verifyVolumeQuiesced(sn); err != nil {
			return err
		}
	}
	start := s.log.Head()
	var ckpt *ckptPayload
	if sb.hasCheckpoint {
		rec, err := s.log.ReadAt(sb.checkpointLSN)
		switch {
		case errors.Is(err, wal.ErrBeyondEnd) || errors.Is(err, wal.ErrTruncated):
			// The log does not contain the checkpoint: this is a process
			// restart with a fresh (in-memory) log rather than a crash. The
			// superblock was written after a sharp checkpoint flushed every
			// page, so the volume is consistent as of that checkpoint; only
			// the allocation counters need restoring.
			return s.checkpointQuiesced(sn)
		case err != nil:
			return fmt.Errorf("server: reading checkpoint: %w", err)
		}
		ckpt, err = decodeCkpt(rec.After)
		if err != nil {
			return err
		}
		start = sb.checkpointLSN
	}
	// Charge the restart log scan.
	sn.meter().LogRead(wal.PagesInRange(start, s.log.StableEnd()))
	if s.cfg.Mode == ModeWPL {
		err = s.wplRestartQuiesced(sn, ckpt, start)
	} else {
		err = s.ariesRestartQuiesced(sn, ckpt, start)
	}
	if err != nil {
		return err
	}
	return s.checkpointQuiesced(sn)
}

func maxPID(a, b page.ID) page.ID {
	if a > b {
		return a
	}
	return b
}

func maxTID(a, b logrec.TID) logrec.TID {
	if a > b {
		return a
	}
	return b
}

// bumpAllocFor advances the allocation counters past a scanned record's ids.
// Caller holds gate.W (restart only).
func (s *Server) bumpAllocFor(r *logrec.Record) {
	if r.TID >= s.nextTID {
		s.nextTID = r.TID + 1
	}
	if r.Page >= s.nextPage {
		s.nextPage = r.Page + 1
	}
}

// ariesRestartQuiesced runs analysis, redo and undo for ESM/REDO.
func (s *Server) ariesRestartQuiesced(sn *Session, ckpt *ckptPayload, start uint64) error {
	// Analysis: rebuild the transaction table and dirty page table.
	att := make(map[logrec.TID]*txn)
	if ckpt != nil {
		for _, ct := range ckpt.txns {
			att[ct.tid] = &txn{
				tid:      ct.tid,
				lastLSN:  ct.lastLSN,
				firstLSN: ct.firstLSN,
				pageLSN:  make(map[page.ID]uint64),
			}
		}
	}
	dpt := make(map[page.ID]uint64)
	scanFrom := start
	if ckpt != nil {
		// Skip the checkpoint record itself.
		rec, err := s.log.ReadAt(start)
		if err != nil {
			return err
		}
		scanFrom = start + uint64(rec.EncodedSize())
	}
	redoFrom := logrec.NoLSN
	err := s.log.Scan(scanFrom, func(r *logrec.Record) bool {
		switch r.Type {
		case logrec.TypeUpdate, logrec.TypePageImage, logrec.TypeCLR:
			t := att[r.TID]
			if t == nil {
				t = &txn{tid: r.TID, lastLSN: logrec.NoLSN, firstLSN: logrec.NoLSN, pageLSN: make(map[page.ID]uint64)}
				att[r.TID] = t
			}
			t.lastLSN = r.LSN
			if t.firstLSN == logrec.NoLSN {
				t.firstLSN = r.LSN
			}
			if _, ok := dpt[r.Page]; !ok {
				dpt[r.Page] = r.LSN
			}
		case logrec.TypeCommit, logrec.TypeEnd, logrec.TypeAbort:
			if r.Type != logrec.TypeAbort {
				delete(att, r.TID)
			}
		}
		s.bumpAllocFor(r)
		return true
	})
	if err != nil {
		return err
	}
	for _, rec := range dpt {
		if redoFrom == logrec.NoLSN || rec < redoFrom {
			redoFrom = rec
		}
	}
	// Redo: repeat history for pages in the DPT, conditional on page LSN,
	// partitioned by page ID across workers.
	if redoFrom != logrec.NoLSN {
		if err := s.redoQuiesced(sn, dpt, redoFrom); err != nil {
			return err
		}
	} else {
		s.redoApplied = nil
	}
	// Undo losers in TID order: undo appends CLRs, and their LSNs must be
	// identical run to run (map iteration is randomized).
	losers := make([]*txn, 0, len(att))
	for _, t := range att {
		losers = append(losers, t)
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i].tid < losers[j].tid })
	for _, t := range losers {
		if err := s.undo(sn, t, logrec.NoLSN); err != nil {
			return err
		}
		e := logrec.NewEnd(t.tid)
		e.PrevLSN = t.lastLSN
		if _, err := s.log.Append(e); err != nil {
			return err
		}
	}
	sn.meter().LogWrite(s.log.Force())
	return nil
}

// redoRelevant reports whether r must be considered by redo given the DPT.
func redoRelevant(r *logrec.Record, dpt map[page.ID]uint64) bool {
	switch r.Type {
	case logrec.TypeUpdate, logrec.TypePageImage, logrec.TypeCLR:
	default:
		return false
	}
	recLSN, ok := dpt[r.Page]
	return ok && r.LSN >= recLSN
}

// redoApplyOne redoes one relevant record if the page's LSN shows it is
// missing, returning 1 if it applied. Safe for concurrent callers on
// different pages (and, via the shard latch, on the same page).
func (s *Server) redoApplyOne(sn *Session, r *logrec.Record) (int64, error) {
	sh := s.pool.Lock(r.Page)
	defer sh.Unlock()
	f, err := s.fetchShardLocked(sn, sh, r.Page, false)
	if err != nil {
		return 0, err
	}
	pg := page.Wrap(f.Bytes())
	if pg.LSN() >= r.LSN && pg.LSN() != 0 {
		return 0, nil // already on disk
	}
	if err := s.applyShardLocked(sn, sh, r); err != nil {
		return 0, err
	}
	return 1, nil
}

// redoQuiesced is the redo pass. With one worker it replays inline, charging
// the session per record as the serial server did. With several, it scans
// once and fans records out by page ID — a page's records all go to the same
// worker, preserving per-page order — then bulk-charges the session for the
// aggregate work. Caller holds gate.W.
func (s *Server) redoQuiesced(sn *Session, dpt map[page.ID]uint64, redoFrom uint64) error {
	nw := s.cfg.RedoWorkers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw == 1 {
		var applied int64
		var redoErr error
		err := s.log.Scan(redoFrom, func(r *logrec.Record) bool {
			if !redoRelevant(r, dpt) {
				return true
			}
			n, err := s.redoApplyOne(sn, r)
			applied += n
			if err != nil {
				redoErr = err
				return false
			}
			return true
		})
		s.redoApplied = []int64{applied}
		if err != nil {
			return err
		}
		return redoErr
	}

	chans := make([]chan *logrec.Record, nw)
	applied := make([]int64, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan *logrec.Record, 64)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := range chans[i] {
				if errs[i] != nil {
					continue // drain after failure
				}
				n, err := s.redoApplyOne(nil, r)
				applied[i] += n
				if err != nil {
					errs[i] = err
				}
			}
		}(i)
	}
	// Snapshot counters so the session can be bulk-charged for work the
	// meterless workers perform.
	preReads := atomic.LoadInt64(&s.stats.DataReads)
	preWrites := atomic.LoadInt64(&s.stats.DataWrites)
	preLogPages := s.log.PagesWritten()
	scanErr := s.log.Scan(redoFrom, func(r *logrec.Record) bool {
		if !redoRelevant(r, dpt) {
			return true
		}
		// Clone: Scan's record aliases its reusable decode buffer, and this
		// one crosses a channel into another goroutine.
		chans[int(uint64(r.Page)%uint64(nw))] <- r.Clone()
		return true
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	s.redoApplied = applied
	var total int64
	for _, n := range applied {
		total += n
	}
	sn.meter().ServerCompute(time.Duration(total) * sn.params().ServerApply)
	sn.meter().DataRead(int(atomic.LoadInt64(&s.stats.DataReads) - preReads))
	sn.meter().DataWriteAsync(int(atomic.LoadInt64(&s.stats.DataWrites) - preWrites))
	sn.meter().LogWrite(int(s.log.PagesWritten() - preLogPages))
	if scanErr != nil {
		return scanErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// wplRestartQuiesced is the paper's §3.4.3 restart: one backward pass from
// the end of the log to the most recent checkpoint building the committed
// transactions list (CTL) and the WPL table, then processing the checkpoint
// record, then installing every recovered copy.
func (s *Server) wplRestartQuiesced(sn *Session, ckpt *ckptPayload, start uint64) error {
	ctl := make(map[logrec.TID]bool)
	table := make(map[page.ID]*wplEntry)
	scanFrom := start
	if ckpt != nil {
		rec, err := s.log.ReadAt(start)
		if err != nil {
			return err
		}
		scanFrom = start + uint64(rec.EncodedSize())
	}
	err := s.log.ScanBackward(scanFrom, func(r *logrec.Record) bool {
		s.bumpAllocFor(r)
		switch r.Type {
		case logrec.TypeCommit:
			ctl[r.TID] = true
		case logrec.TypePageImage:
			if ctl[r.TID] {
				if _, ok := table[r.Page]; !ok {
					// Backward scan: first copy seen is the newest committed.
					table[r.Page] = &wplEntry{pid: r.Page, lsn: r.LSN, tid: r.TID, committed: true}
				}
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	// Entries in the checkpoint record pertaining to CTL members or already
	// marked committed are added (unless superseded).
	if ckpt != nil {
		for _, w := range ckpt.wpl {
			if !w.committed && !ctl[w.tid] {
				continue
			}
			if cur, ok := table[w.pid]; ok && cur.lsn >= w.lsn {
				continue
			}
			table[w.pid] = &wplEntry{pid: w.pid, lsn: w.lsn, tid: w.tid, committed: true}
		}
	}
	// Normal processing could resume here; install everything so the log can
	// be reclaimed by the checkpoint that follows. Installs run in page
	// order for run-to-run reproducibility.
	entries := make([]*wplEntry, 0, len(table))
	for _, e := range table {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pid < entries[j].pid })
	for _, e := range entries {
		rec, err := s.log.ReadAt(e.lsn)
		if err != nil {
			return fmt.Errorf("server: WPL restart install %v: %w", e.pid, err)
		}
		sn.meter().LogRead(1)
		if err := s.store.WritePage(e.pid, rec.After); err != nil {
			return err
		}
		sn.meter().DataWriteAsync(1)
		atomic.AddInt64(&s.stats.DataWrites, 1)
		atomic.AddInt64(&s.stats.WPLInstalls, 1)
	}
	return nil
}

// FlushAll writes every dirty buffered page home (used by orderly shutdown
// in the standalone server; not part of the measured protocols).
func (sn *Session) FlushAll() error {
	s := sn.s
	s.gate.Lock()
	defer s.gate.Unlock()
	if s.cfg.Mode == ModeWPL {
		return nil // installs happen at commit; nothing safe to force early
	}
	sn.meter().LogWrite(s.log.Force())
	for _, pid := range s.pool.DirtyPages() {
		sh := s.pool.Lock(pid)
		f := sh.Peek(pid)
		if err := s.store.WritePage(pid, f.Bytes()); err != nil {
			sh.Unlock()
			return err
		}
		sn.meter().DataWriteAsync(1)
		atomic.AddInt64(&s.stats.DataWrites, 1)
		sh.MarkClean(pid)
		sh.Unlock()
		s.dptMu.Lock()
		delete(s.dpt, pid)
		s.dptMu.Unlock()
	}
	return nil
}
