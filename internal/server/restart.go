package server

// Checkpointing, crash simulation and restart recovery.
//
// ESM/REDO take sharp ARIES-style checkpoints: all dirty pages are flushed
// (after forcing the log per the write-ahead rule), the active-transaction
// table is logged, and the log is truncated below the oldest LSN any active
// transaction still needs. Restart then runs analysis from the checkpoint,
// redoes history conditionally on page LSNs, and rolls back losers with
// CLRs. Redo is partitioned by page ID across Config.RedoWorkers goroutines
// — per-page record order is preserved because a page belongs to exactly one
// worker; undo stays sequential (CLR LSNs must be deterministic).
//
// WPL checkpoints write the WPL table to the log (paper §3.4.3); restart is
// the paper's single backward pass that builds the committed-transactions
// list, reconstructs the WPL table, and installs the surviving copies.
//
// Every entry point here takes the write side of the quiesce gate, so it
// observes a server with no session operation in flight; the leaf mutexes
// are still taken around map access to keep the lock discipline uniform.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wal"
)

// --- checkpoint payload encoding ------------------------------------------

// ckptTxn is an active-transaction-table entry in a checkpoint record.
type ckptTxn struct {
	tid      logrec.TID
	lastLSN  uint64
	firstLSN uint64
}

// ckptWPL is a WPL-table entry in a checkpoint record.
type ckptWPL struct {
	pid       page.ID
	lsn       uint64
	tid       logrec.TID
	committed bool
}

// ckptDPT is a dirty-page-table entry in a checkpoint record: the page and
// the LSN restart redo must scan from for it. Fuzzy checkpoints log the DPT
// instead of flushing it; sharp checkpoints log whatever entries their flush
// could not retire (pages whose logged records outrun the shipped image).
type ckptDPT struct {
	pid page.ID
	rec uint64
}

// ckptPrepared is a prepared (in-doubt-capable) branch in a checkpoint
// record: enough to resurrect the 2PC state even when the PREPARE record
// itself predates the analysis scan window.
type ckptPrepared struct {
	tid     logrec.TID
	prepLSN uint64
	coord   int
	parts   []int
}

// ckptDecided is a coordinator commit decision still awaiting the forget
// protocol. Carrying it in the checkpoint lets truncation reclaim the DECIDE
// record itself without losing the resolution answer.
type ckptDecided struct {
	tid   logrec.TID
	lsn   uint64
	parts []int
}

type ckptPayload struct {
	nextPage page.ID
	nextTID  logrec.TID
	// beginLSN is the log end captured before the ATT/DPT/WPL snapshot was
	// taken. Restart analysis scans from here: a record appended between the
	// snapshot and the checkpoint record's own append is re-analyzed rather
	// than lost. Zero in legacy (pre-DPT) payloads, where analysis falls back
	// to scanning from just past the checkpoint record.
	beginLSN uint64
	txns     []ckptTxn
	wpl      []ckptWPL
	dpt      []ckptDPT
	// 2PC trailer (v3). Both empty on a single-shard server, where encode()
	// emits the byte-identical v2 layout.
	prepared []ckptPrepared
	decided  []ckptDecided
}

// ckptV2Magic marks the extended checkpoint layout (DPT entries + analysis
// begin LSN). The legacy layout's first word is nextPage, a 32-bit page id,
// so a first word with high bits set is unambiguous.
const ckptV2Magic = uint64(0x5153434B50543032) // "QSCKPT02"

// ckptV3Magic marks the 2PC-aware layout: the v2 body followed by a trailer
// of prepared branches and decided-but-unforgotten transactions. Emitted only
// when the trailer would be non-empty, so single-shard deployments keep
// producing byte-identical v2 records.
const ckptV3Magic = uint64(0x5153434B50543033) // "QSCKPT03"

func (c *ckptPayload) encode() []byte {
	buf := make([]byte, 0, 56+24*len(c.txns)+24*len(c.wpl)+16*len(c.dpt))
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	magic := ckptV2Magic
	if len(c.prepared) > 0 || len(c.decided) > 0 {
		magic = ckptV3Magic
	}
	put64(magic)
	put64(uint64(c.nextPage))
	put64(uint64(c.nextTID))
	put64(c.beginLSN)
	put64(uint64(len(c.txns)))
	put64(uint64(len(c.wpl)))
	put64(uint64(len(c.dpt)))
	for _, t := range c.txns {
		put64(uint64(t.tid))
		put64(t.lastLSN)
		put64(t.firstLSN)
	}
	for _, w := range c.wpl {
		put64(uint64(w.pid))
		put64(w.lsn)
		committed := uint64(0)
		if w.committed {
			committed = 1
		}
		put64(uint64(w.tid)<<1 | committed)
	}
	for _, d := range c.dpt {
		put64(uint64(d.pid))
		put64(d.rec)
	}
	if magic == ckptV3Magic {
		put64(uint64(len(c.prepared)))
		for _, p := range c.prepared {
			put64(uint64(p.tid))
			put64(p.prepLSN)
			put64(uint64(p.coord))
			put64(uint64(len(p.parts)))
			for _, sh := range p.parts {
				put64(uint64(sh))
			}
		}
		put64(uint64(len(c.decided)))
		for _, d := range c.decided {
			put64(uint64(d.tid))
			put64(d.lsn)
			put64(uint64(len(d.parts)))
			for _, sh := range d.parts {
				put64(uint64(sh))
			}
		}
	}
	return buf
}

func decodeCkpt(b []byte) (*ckptPayload, error) {
	if len(b) < 32 {
		return nil, fmt.Errorf("server: checkpoint payload too short (%d bytes)", len(b))
	}
	get := func(i int) uint64 { return binary.LittleEndian.Uint64(b[8*i:]) }
	magic := get(0)
	if magic != ckptV2Magic && magic != ckptV3Magic {
		return decodeCkptLegacy(b)
	}
	c := &ckptPayload{
		nextPage: page.ID(get(1)),
		nextTID:  logrec.TID(get(2)),
		beginLSN: get(3),
	}
	nt, nw, nd := int(get(4)), int(get(5)), int(get(6))
	body := 56 + 24*nt + 24*nw + 16*nd
	if nt < 0 || nw < 0 || nd < 0 ||
		(magic == ckptV2Magic && len(b) != body) ||
		(magic == ckptV3Magic && (len(b) < body+16 || len(b)%8 != 0)) {
		return nil, fmt.Errorf("server: checkpoint payload size mismatch")
	}
	idx := 7
	for i := 0; i < nt; i++ {
		c.txns = append(c.txns, ckptTxn{
			tid:      logrec.TID(get(idx)),
			lastLSN:  get(idx + 1),
			firstLSN: get(idx + 2),
		})
		idx += 3
	}
	for i := 0; i < nw; i++ {
		pid := page.ID(get(idx))
		lsn := get(idx + 1)
		packed := get(idx + 2)
		c.wpl = append(c.wpl, ckptWPL{
			pid:       pid,
			lsn:       lsn,
			tid:       logrec.TID(packed >> 1),
			committed: packed&1 == 1,
		})
		idx += 3
	}
	for i := 0; i < nd; i++ {
		c.dpt = append(c.dpt, ckptDPT{pid: page.ID(get(idx)), rec: get(idx + 1)})
		idx += 2
	}
	if magic == ckptV3Magic {
		// The 2PC trailer is variable-length (each entry carries a participant
		// list), so it is parsed with a running cursor and exact-consumption
		// check instead of one closed-form size.
		words := len(b) / 8
		bad := func() (*ckptPayload, error) {
			return nil, fmt.Errorf("server: checkpoint 2PC trailer malformed")
		}
		np := get(idx)
		idx++
		if np > uint64(words) {
			return bad()
		}
		for i := 0; i < int(np); i++ {
			if idx+4 > words {
				return bad()
			}
			p := ckptPrepared{
				tid:     logrec.TID(get(idx)),
				prepLSN: get(idx + 1),
				coord:   int(get(idx + 2)),
			}
			nparts := get(idx + 3)
			idx += 4
			if nparts > uint64(words) || idx+int(nparts) > words {
				return bad()
			}
			for j := 0; j < int(nparts); j++ {
				p.parts = append(p.parts, int(get(idx)))
				idx++
			}
			c.prepared = append(c.prepared, p)
		}
		if idx >= words {
			return bad()
		}
		ndec := get(idx)
		idx++
		if ndec > uint64(words) {
			return bad()
		}
		for i := 0; i < int(ndec); i++ {
			if idx+3 > words {
				return bad()
			}
			d := ckptDecided{tid: logrec.TID(get(idx)), lsn: get(idx + 1)}
			nparts := get(idx + 2)
			idx += 3
			if nparts > uint64(words) || idx+int(nparts) > words {
				return bad()
			}
			for j := 0; j < int(nparts); j++ {
				d.parts = append(d.parts, int(get(idx)))
				idx++
			}
			c.decided = append(c.decided, d)
		}
		if idx != words {
			return bad()
		}
	}
	return c, nil
}

// decodeCkptLegacy reads the pre-DPT layout (no magic, no beginLSN): archived
// logs written before fuzzy checkpoints still replay.
func decodeCkptLegacy(b []byte) (*ckptPayload, error) {
	get := func(i int) uint64 { return binary.LittleEndian.Uint64(b[8*i:]) }
	c := &ckptPayload{
		nextPage: page.ID(get(0)),
		nextTID:  logrec.TID(get(1)),
	}
	nt, nw := int(get(2)), int(get(3))
	if nt < 0 || nw < 0 || len(b) != 32+24*nt+24*nw {
		return nil, fmt.Errorf("server: checkpoint payload size mismatch")
	}
	idx := 4
	for i := 0; i < nt; i++ {
		c.txns = append(c.txns, ckptTxn{
			tid:      logrec.TID(get(idx)),
			lastLSN:  get(idx + 1),
			firstLSN: get(idx + 2),
		})
		idx += 3
	}
	for i := 0; i < nw; i++ {
		pid := page.ID(get(idx))
		lsn := get(idx + 1)
		packed := get(idx + 2)
		c.wpl = append(c.wpl, ckptWPL{
			pid:       pid,
			lsn:       lsn,
			tid:       logrec.TID(packed >> 1),
			committed: packed&1 == 1,
		})
		idx += 3
	}
	return c, nil
}

// --- checkpoint ------------------------------------------------------------

// Checkpoint writes a checkpoint record, updates the master record in the
// superblock, and reclaims log space. By default it is sharp — the server
// quiesces and every dirty page is flushed for its duration — which is the
// stop-the-world stall the fuzzy variant (Config.FuzzyCheckpoints) removes:
// a fuzzy checkpoint logs the ATT and the DPT (per-page recLSN) under the
// read side of the gate, flushing nothing; the page cleaner retires dirty
// pages in the background and restart redo begins at min(recLSN).
func (sn *Session) Checkpoint() error {
	s := sn.s
	if s.restarting.Load() {
		// Restart owns the gate and the log; a checkpoint racing it would
		// deadlock or observe half-recovered tables. Restart takes its own
		// final checkpoint, so there is nothing for this caller to do.
		return ErrRestarting
	}
	if s.standby.Load() {
		// A standby never originates checkpoint records — it mirrors the
		// primary's, superblock write and log reclamation included, when they
		// arrive in the shipped stream (ApplyShipped).
		return ErrStandby
	}
	if s.cfg.FuzzyCheckpoints {
		return s.checkpointFuzzy(sn)
	}
	s.gate.Lock()
	defer s.gate.Unlock()
	//qslint:allow determinism: wall-clock stall accounting only (CkptStallNs); never logged, never replayed, no control flow depends on it
	start := time.Now()
	err := s.checkpointQuiesced(sn)
	//qslint:allow determinism: wall-clock stall accounting only (CkptStallNs); never logged, never replayed, no control flow depends on it
	atomic.AddInt64(&s.stats.CkptStallNs, int64(time.Since(start)))
	return err
}

// checkpointFuzzy takes an ARIES-style fuzzy checkpoint: sessions keep
// committing (only the read side of the gate is held, so Crash/Restart still
// exclude it), no page is flushed, and the checkpoint record carries the DPT
// so restart knows where redo must begin. ckptMu serializes checkpointers;
// a checkpoint already in flight makes this one redundant (it would log a
// near-identical snapshot), so it is skipped rather than queued — checkpoints
// are maintenance and callers tolerate "not now".
func (s *Server) checkpointFuzzy(sn *Session) error {
	if !s.ckptMu.TryLock() {
		return nil
	}
	defer s.ckptMu.Unlock()
	defer s.enter()()
	return s.checkpointCore(sn)
}

// checkpointQuiesced is the sharp checkpoint body (and Restart's final
// checkpoint). Caller holds gate.W. Under Config.FuzzyCheckpoints the flush
// loop is skipped — the quiesced caller still gets a valid fuzzy-style
// checkpoint record with the DPT logged instead of flushed.
func (s *Server) checkpointQuiesced(sn *Session) error {
	if s.cfg.Mode != ModeWPL && !s.cfg.FuzzyCheckpoints {
		// Sharp checkpoint: force the log once, then flush every dirty page
		// (in ascending page order — the sweep's event stream depends on it).
		sn.meter().LogWrite(s.log.Force())
		for _, pid := range s.pool.DirtyPages() {
			sh := s.pool.Lock(pid)
			f := sh.Peek(pid)
			lsn := page.Wrap(f.Bytes()).LSN()
			if err := s.store.WritePage(pid, f.Bytes()); err != nil {
				sh.Unlock()
				return err
			}
			sn.meter().DataWriteAsync(1)
			atomic.AddInt64(&s.stats.DataWrites, 1)
			sh.MarkClean(pid)
			sh.Unlock()
			s.retireDPT(pid, lsn)
		}
	}
	return s.checkpointCore(sn)
}

// checkpointCore snapshots the tables, appends the checkpoint record, writes
// the master record, and reclaims log space. Caller holds gate.W (sharp,
// restart) or gate.R plus ckptMu (fuzzy).
//
// The analysis begin LSN and all three table snapshots are captured inside
// ONE attMu critical section. Every append that updates a recovery table
// also runs inside an attMu section (see the package comment), so a record
// below beginLSN has its table updates in the snapshot, and a record the
// snapshot missed is at or above beginLSN, where the restart scan re-analyzes
// it. DPT deletions are the one exception (the cleaner retires entries under
// dptMu alone), and they only ever remove pages whose stored image has
// caught up — losing one from the snapshot loses no redo work.
func (s *Server) checkpointCore(sn *Session) error {
	s.allocMu.Lock()
	c := ckptPayload{nextPage: s.nextPage, nextTID: s.nextTID}
	s.allocMu.Unlock()
	s.attMu.Lock()
	c.beginLSN = s.log.End()
	for _, t := range s.att {
		c.txns = append(c.txns, ckptTxn{tid: t.tid, lastLSN: t.lastLSN, firstLSN: t.firstLSN})
		if t.prepared {
			c.prepared = append(c.prepared, ckptPrepared{
				tid:     t.tid,
				prepLSN: t.prepLSN,
				coord:   t.coord,
				parts:   append([]int(nil), t.parts...),
			})
		}
	}
	s.decMu.Lock()
	for tid, d := range s.decided {
		c.decided = append(c.decided, ckptDecided{tid: tid, lsn: d.lsn, parts: append([]int(nil), d.parts...)})
	}
	s.decMu.Unlock()
	s.dptMu.Lock()
	for pid, e := range s.dpt {
		c.dpt = append(c.dpt, ckptDPT{pid: pid, rec: e.rec})
	}
	s.dptMu.Unlock()
	s.wplMu.Lock()
	for _, head := range s.wpl {
		for e := head; e != nil; e = e.prev {
			c.wpl = append(c.wpl, ckptWPL{pid: e.pid, lsn: e.lsn, tid: e.tid, committed: e.committed})
		}
	}
	s.wplMu.Unlock()
	s.attMu.Unlock()
	// Map iteration is randomized; sort so the checkpoint record's bytes —
	// and with them every later LSN — are identical run to run, which the
	// crash-point sweep's reproducibility depends on.
	sort.Slice(c.txns, func(i, j int) bool { return c.txns[i].tid < c.txns[j].tid })
	sort.Slice(c.wpl, func(i, j int) bool {
		if c.wpl[i].pid != c.wpl[j].pid {
			return c.wpl[i].pid < c.wpl[j].pid
		}
		return c.wpl[i].lsn < c.wpl[j].lsn
	})
	sort.Slice(c.dpt, func(i, j int) bool { return c.dpt[i].pid < c.dpt[j].pid })
	sort.Slice(c.prepared, func(i, j int) bool { return c.prepared[i].tid < c.prepared[j].tid })
	sort.Slice(c.decided, func(i, j int) bool { return c.decided[i].tid < c.decided[j].tid })
	rec := &logrec.Record{Type: logrec.TypeCheckpoint, PrevLSN: logrec.NoLSN, After: c.encode()}
	ckptLSN, err := s.log.Append(rec)
	if err != nil {
		return err
	}
	sn.meter().LogWrite(s.log.Force())
	// The master-record write takes the superblock's shard latch: a fuzzy
	// checkpoint runs under gate.R, where the scrubber may concurrently be
	// repairing page 0 under the same latch.
	sh := s.pool.Lock(superblockPage)
	err = s.writeSuperblock(sn, superblock{
		checkpointLSN: ckptLSN,
		nextPage:      c.nextPage,
		nextTID:       c.nextTID,
		hasCheckpoint: true,
	})
	sh.Unlock()
	if err != nil {
		return err
	}
	atomic.AddInt64(&s.stats.Checkpoints, 1)
	// Reclaim: the log is needed from the oldest of the analysis scan start,
	// any active transaction's first record, any WPL copy still awaiting
	// install, and any dirty page's recLSN (redo starts there).
	head := minUint64(ckptLSN, c.beginLSN)
	for _, t := range c.txns {
		if t.firstLSN != logrec.NoLSN && t.firstLSN < head {
			head = t.firstLSN
		}
	}
	for _, w := range c.wpl {
		if w.lsn < head {
			head = w.lsn
		}
	}
	var minRec uint64
	for _, d := range c.dpt {
		if d.rec < head {
			head = d.rec
		}
		if minRec == 0 || d.rec < minRec {
			minRec = d.rec
		}
	}
	// Publish the recLSN floor: even a truncation computed from stale state
	// (an archiver-driven head, a racing checkpoint) cannot reclaim records
	// redo needs for a still-dirty page.
	s.log.SetTruncateFloor(minRec)
	if s.cfg.PreTruncate != nil {
		if err := s.cfg.PreTruncate(head); err != nil {
			// Archiving failed: leave the log unreclaimed (the archive gate
			// would defer the truncation regardless) and report the
			// checkpoint itself as successful.
			return nil
		}
	}
	return s.log.Truncate(head)
}

func minUint64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// --- crash and restart -----------------------------------------------------

// Crash simulates a server failure: every volatile structure (buffer pool,
// transaction tables, WPL table, lock table, unforced log tail) is lost. The
// data volume and the forced log survive. Committers parked in the group-
// commit flusher are woken (their commit outcome is whatever the surviving
// log says), and queued background installs are invalidated by the WPL
// generation bump.
func (s *Server) Crash() {
	s.gate.Lock()
	defer s.gate.Unlock()
	s.pool.Clear()
	s.attMu.Lock()
	s.att = make(map[logrec.TID]*txn)
	s.attMu.Unlock()
	s.decMu.Lock()
	s.decided = make(map[logrec.TID]decidedTxn)
	s.decMu.Unlock()
	s.dptMu.Lock()
	s.dpt = make(map[page.ID]dptEntry)
	s.dptMu.Unlock()
	s.wplMu.Lock()
	s.wpl = make(map[page.ID]*wplEntry)
	s.wplGen++
	s.wplMu.Unlock()
	s.locks.Reset()
	s.log.Crash()
}

// Restart recovers the server from stable state after a crash, leaving it
// ready for new transactions.
func (sn *Session) Restart() error {
	s := sn.s
	s.gate.Lock()
	defer s.gate.Unlock()
	s.restarting.Store(true)
	defer s.restarting.Store(false)
	atomic.AddInt64(&s.stats.Restarts, 1)
	sb, err := s.readSuperblock()
	if err != nil {
		return err
	}
	s.allocMu.Lock()
	s.nextPage = maxPID(s.nextPage, sb.nextPage)
	s.nextTID = maxTID(s.nextTID, sb.nextTID)
	s.allocMu.Unlock()
	if _, ok := s.store.(*disk.Checksummed); ok {
		// A checksummed volume is verified before any recovery work: every
		// corrupt page is repaired here (from the live log or the archive),
		// so redo and undo replay over sound pages. This cannot be deferred
		// to redo's own fetches — they run inside a log scan, which holds
		// the log mutex repair itself needs.
		if err := s.verifyVolumeQuiesced(sn); err != nil {
			return err
		}
	}
	start := s.log.Head()
	var ckpt *ckptPayload
	if sb.hasCheckpoint {
		rec, err := s.log.ReadAt(sb.checkpointLSN)
		switch {
		case errors.Is(err, wal.ErrBeyondEnd) || errors.Is(err, wal.ErrTruncated):
			// The log does not contain the checkpoint: this is a process
			// restart with a fresh (in-memory) log rather than a crash. The
			// superblock was written after a sharp checkpoint flushed every
			// page, so the volume is consistent as of that checkpoint; only
			// the allocation counters need restoring. (Under fuzzy
			// checkpoints the superblock does NOT imply a flushed volume —
			// a fuzzy deployment on a persistent store must reach this point
			// via orderly shutdown, whose FlushAll provides the same
			// guarantee; see DESIGN.md §13.)
			return s.checkpointQuiesced(sn)
		case err != nil:
			return fmt.Errorf("server: reading checkpoint: %w", err)
		}
		ckpt, err = decodeCkpt(rec.After)
		if err != nil {
			return err
		}
		start = sb.checkpointLSN
		if ckpt.beginLSN > 0 && ckpt.beginLSN < start {
			// Fuzzy checkpoint: analysis must rescan the window between the
			// snapshot capture point and the record's own append.
			start = ckpt.beginLSN
		}
	}
	// Charge the restart log scan.
	sn.meter().LogRead(wal.PagesInRange(start, s.log.StableEnd()))
	if s.cfg.Mode == ModeWPL {
		err = s.wplRestartQuiesced(sn, ckpt, start)
	} else {
		err = s.ariesRestartQuiesced(sn, ckpt, start)
	}
	if err != nil {
		return err
	}
	return s.checkpointQuiesced(sn)
}

func maxPID(a, b page.ID) page.ID {
	if a > b {
		return a
	}
	return b
}

func maxTID(a, b logrec.TID) logrec.TID {
	if a > b {
		return a
	}
	return b
}

// bumpAllocFor advances the allocation counters past a scanned record's ids,
// in whole strides so a sharded server stays in its residue class even when
// the record carries another shard's id (an adopted cross-shard TID). Caller
// holds gate.W (restart) or allocMu (standby apply).
func (s *Server) bumpAllocFor(r *logrec.Record) {
	st := s.stride()
	if r.TID >= s.nextTID {
		n := (uint64(r.TID)-uint64(s.nextTID))/st + 1
		s.nextTID += logrec.TID(n * st)
	}
	if r.Page >= s.nextPage {
		n := (uint64(r.Page)-uint64(s.nextPage))/st + 1
		s.nextPage += page.ID(n * st)
	}
}

// ariesRestartQuiesced runs analysis, redo and undo for ESM/REDO.
func (s *Server) ariesRestartQuiesced(sn *Session, ckpt *ckptPayload, start uint64) error {
	// Analysis: rebuild the transaction table and dirty page table.
	att := make(map[logrec.TID]*txn)
	if ckpt != nil {
		for _, ct := range ckpt.txns {
			att[ct.tid] = &txn{
				tid:      ct.tid,
				lastLSN:  ct.lastLSN,
				firstLSN: ct.firstLSN,
				pageLSN:  make(map[page.ID]uint64),
			}
		}
		// Prepared branches whose PREPARE record predates the scan window are
		// known only through the checkpoint's 2PC trailer.
		for _, cp := range ckpt.prepared {
			if t := att[cp.tid]; t != nil {
				t.prepared = true
				t.coord = cp.coord
				t.parts = append([]int(nil), cp.parts...)
				t.prepLSN = cp.prepLSN
			}
		}
	}
	// Commit decisions awaiting the forget protocol: seeded from the
	// checkpoint, extended by DECIDE records in the scan, retired by forget
	// End records.
	decided := make(map[logrec.TID]decidedTxn)
	if ckpt != nil {
		for _, cd := range ckpt.decided {
			decided[cd.tid] = decidedTxn{lsn: cd.lsn, parts: append([]int(nil), cd.parts...)}
		}
	}
	// The DPT is seeded from the checkpoint's logged entries (fuzzy
	// checkpoints flush nothing, so a page may have been dirty since well
	// before the checkpoint — its recLSN is the only record of that), then
	// extended by the scan with insert-if-absent, which keeps the seeded,
	// lower recLSNs.
	dpt := make(map[page.ID]dptEntry)
	if ckpt != nil {
		for _, d := range ckpt.dpt {
			dpt[d.pid] = dptEntry{rec: d.rec, newest: d.rec}
		}
	}
	scanFrom := start
	if ckpt != nil && ckpt.beginLSN == 0 {
		// Legacy (sharp, pre-DPT) checkpoint: skip the record itself. A fuzzy
		// checkpoint instead scans from beginLSN (= start here); the scan
		// passes over the checkpoint record, which the switch below ignores.
		rec, err := s.log.ReadAt(start)
		if err != nil {
			return err
		}
		scanFrom = start + uint64(rec.EncodedSize())
	}
	redoFrom := logrec.NoLSN
	err := s.log.Scan(scanFrom, func(r *logrec.Record) bool {
		switch r.Type {
		case logrec.TypeUpdate, logrec.TypePageImage, logrec.TypeCLR:
			t := att[r.TID]
			if t == nil {
				t = &txn{tid: r.TID, lastLSN: logrec.NoLSN, firstLSN: logrec.NoLSN, pageLSN: make(map[page.ID]uint64)}
				att[r.TID] = t
			}
			t.lastLSN = r.LSN
			if t.firstLSN == logrec.NoLSN {
				t.firstLSN = r.LSN
			}
			e, ok := dpt[r.Page]
			if !ok {
				e = dptEntry{rec: r.LSN}
			}
			if r.LSN > e.newest {
				e.newest = r.LSN
			}
			dpt[r.Page] = e
		case logrec.TypePrepare:
			t := att[r.TID]
			if t == nil {
				t = &txn{tid: r.TID, lastLSN: logrec.NoLSN, firstLSN: logrec.NoLSN, pageLSN: make(map[page.ID]uint64)}
				att[r.TID] = t
			}
			t.lastLSN = r.LSN
			if t.firstLSN == logrec.NoLSN {
				t.firstLSN = r.LSN
			}
			t.prepared = true
			t.prepLSN = r.LSN
			if coord, parts, perr := logrec.DecodePrepareInfo(r.After); perr == nil {
				t.coord = coord
				t.parts = parts
			}
		case logrec.TypeDecide:
			if _, ok := decided[r.TID]; !ok {
				if _, parts, perr := logrec.DecodePrepareInfo(r.After); perr == nil {
					decided[r.TID] = decidedTxn{lsn: r.LSN, parts: parts}
				}
			}
		case logrec.TypeCommit:
			delete(att, r.TID)
		case logrec.TypeEnd:
			delete(att, r.TID)
			// A forget End retires the decided entry; for a rolled-back loser
			// this is a harmless no-op.
			delete(decided, r.TID)
		case logrec.TypeAbort:
			if t := att[r.TID]; t != nil {
				// The abort decision was delivered before the crash: the branch
				// is an ordinary loser again (its CLRs may be partial), not in
				// doubt.
				t.prepared = false
			}
		}
		s.bumpAllocFor(r)
		return true
	})
	if err != nil {
		return err
	}
	for _, e := range dpt {
		if redoFrom == logrec.NoLSN || e.rec < redoFrom {
			redoFrom = e.rec
		}
	}
	// Redo: repeat history for pages in the DPT, conditional on page LSN,
	// partitioned by page ID across workers.
	if redoFrom != logrec.NoLSN {
		if err := s.redoQuiesced(sn, dpt, redoFrom); err != nil {
			return err
		}
	} else {
		s.redoApplied = nil
	}
	// Undo losers in TID order: undo appends CLRs, and their LSNs must be
	// identical run to run (map iteration is randomized).
	losers := make([]*txn, 0, len(att))
	for _, t := range att {
		losers = append(losers, t)
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i].tid < losers[j].tid })
	for _, t := range losers {
		if t.prepared {
			// In doubt: the branch voted yes and the coordinator's outcome is
			// unknown here. Redo has already reapplied its pages; resurrect the
			// ATT entry with its locks and leave it — neither committed nor
			// rolled back — for recovery resolution (presumed abort on a
			// coordinator miss).
			if err := s.resurrectInDoubt(t); err != nil {
				return err
			}
			continue
		}
		if t.lastLSN != logrec.NoLSN {
			r, err := s.log.ReadAt(t.lastLSN)
			if err != nil {
				return fmt.Errorf("server: restart loser check %v at %d: %w", t.tid, t.lastLSN, err)
			}
			switch r.Type {
			case logrec.TypeCommit:
				// Fuzzy window: the transaction committed — durably, since the
				// checkpoint record's force covered the earlier commit record —
				// but its ATT delete raced the snapshot. Not a loser: write the
				// End its deleter never logged and move on.
				e := logrec.NewEnd(t.tid)
				e.PrevLSN = t.lastLSN
				if _, err := s.log.Append(e); err != nil {
					return err
				}
				continue
			case logrec.TypeEnd:
				// Finished rolling back before the snapshot; nothing to undo.
				continue
			}
		}
		if err := s.undo(sn, t, logrec.NoLSN); err != nil {
			return err
		}
		e := logrec.NewEnd(t.tid)
		e.PrevLSN = t.lastLSN
		if _, err := s.log.Append(e); err != nil {
			return err
		}
	}
	sn.meter().LogWrite(s.log.Force())
	// Install the surviving commit decisions so resolution requests can be
	// answered as soon as the server is open.
	s.decMu.Lock()
	s.decided = decided
	s.decMu.Unlock()
	// Install the analysis DPT, pruned to frames still dirty after redo and
	// undo, so the checkpoint that ends restart — and every fuzzy checkpoint
	// and cleaner pass after it — sees the redone-but-unflushed pages.
	// (Conditional redo leaves pageLSN >= newest for any page it touched, and
	// undo's own CLR bookkeeping has already inserted its pages.)
	dirty := make(map[page.ID]bool)
	for _, pid := range s.pool.DirtyPages() {
		dirty[pid] = true
	}
	s.dptMu.Lock()
	for pid, e := range dpt {
		if !dirty[pid] {
			continue
		}
		if cur, ok := s.dpt[pid]; ok {
			if e.rec < cur.rec {
				cur.rec = e.rec
			}
			if e.newest > cur.newest {
				cur.newest = e.newest
			}
			s.dpt[pid] = cur
		} else {
			s.dpt[pid] = e
		}
	}
	s.dptMu.Unlock()
	return nil
}

// redoRelevant reports whether r must be considered by redo given the DPT.
func redoRelevant(r *logrec.Record, dpt map[page.ID]dptEntry) bool {
	switch r.Type {
	case logrec.TypeUpdate, logrec.TypePageImage, logrec.TypeCLR:
	default:
		return false
	}
	e, ok := dpt[r.Page]
	return ok && r.LSN >= e.rec
}

// redoApplyOne redoes one relevant record if the page's LSN shows it is
// missing, returning 1 if it applied. Safe for concurrent callers on
// different pages (and, via the shard latch, on the same page).
func (s *Server) redoApplyOne(sn *Session, r *logrec.Record) (int64, error) {
	sh := s.pool.Lock(r.Page)
	defer sh.Unlock()
	f, err := s.fetchShardLocked(sn, sh, r.Page, false)
	if err != nil {
		return 0, err
	}
	pg := page.Wrap(f.Bytes())
	if pg.LSN() >= r.LSN && pg.LSN() != 0 {
		return 0, nil // already on disk
	}
	if err := s.applyShardLocked(sn, sh, r); err != nil {
		return 0, err
	}
	return 1, nil
}

// redoQuiesced is the redo pass. With one worker it replays inline, charging
// the session per record as the serial server did. With several, it scans
// once and fans records out by page ID — a page's records all go to the same
// worker, preserving per-page order — then bulk-charges the session for the
// aggregate work. Caller holds gate.W.
func (s *Server) redoQuiesced(sn *Session, dpt map[page.ID]dptEntry, redoFrom uint64) error {
	nw := s.cfg.RedoWorkers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw == 1 {
		var applied int64
		var redoErr error
		err := s.log.Scan(redoFrom, func(r *logrec.Record) bool {
			if !redoRelevant(r, dpt) {
				return true
			}
			n, err := s.redoApplyOne(sn, r)
			applied += n
			if err != nil {
				redoErr = err
				return false
			}
			return true
		})
		s.redoApplied = []int64{applied}
		if err != nil {
			return err
		}
		return redoErr
	}

	chans := make([]chan *logrec.Record, nw)
	applied := make([]int64, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan *logrec.Record, 64)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := range chans[i] {
				if errs[i] != nil {
					continue // drain after failure
				}
				n, err := s.redoApplyOne(nil, r)
				applied[i] += n
				if err != nil {
					errs[i] = err
				}
			}
		}(i)
	}
	// Snapshot counters so the session can be bulk-charged for work the
	// meterless workers perform.
	preReads := atomic.LoadInt64(&s.stats.DataReads)
	preWrites := atomic.LoadInt64(&s.stats.DataWrites)
	preLogPages := s.log.PagesWritten()
	scanErr := s.log.Scan(redoFrom, func(r *logrec.Record) bool {
		if !redoRelevant(r, dpt) {
			return true
		}
		// Clone: Scan's record aliases its reusable decode buffer, and this
		// one crosses a channel into another goroutine.
		chans[int(uint64(r.Page)%uint64(nw))] <- r.Clone()
		return true
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	s.redoApplied = applied
	var total int64
	for _, n := range applied {
		total += n
	}
	sn.meter().ServerCompute(time.Duration(total) * sn.params().ServerApply)
	sn.meter().DataRead(int(atomic.LoadInt64(&s.stats.DataReads) - preReads))
	sn.meter().DataWriteAsync(int(atomic.LoadInt64(&s.stats.DataWrites) - preWrites))
	sn.meter().LogWrite(int(s.log.PagesWritten() - preLogPages))
	if scanErr != nil {
		return scanErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// wplRestartQuiesced is the paper's §3.4.3 restart: one backward pass from
// the end of the log to the most recent checkpoint building the committed
// transactions list (CTL) and the WPL table, then processing the checkpoint
// record, then installing every recovered copy.
func (s *Server) wplRestartQuiesced(sn *Session, ckpt *ckptPayload, start uint64) error {
	ctl := make(map[logrec.TID]bool)
	table := make(map[page.ID]*wplEntry)
	// 2PC state (DESIGN.md §16), rebuilt in the same backward pass. A
	// transaction is in doubt iff its PREPARE record has no Commit/Abort/End
	// after it — in backward order, iff none of those was seen before the
	// PREPARE. A decision survives iff no (forget) End follows it.
	resolved := make(map[logrec.TID]bool) // Commit/Abort/End seen above
	endSeen := make(map[logrec.TID]bool)
	indoubt := make(map[logrec.TID]*txn)
	images := make(map[logrec.TID][]*wplEntry) // in-doubt copies, newest first
	decided := make(map[logrec.TID]decidedTxn)
	scanFrom := start
	if ckpt != nil && ckpt.beginLSN == 0 {
		// Legacy checkpoint: the backward scan stops just past the record. A
		// fuzzy checkpoint's scan instead runs down to beginLSN (= start), so
		// copies logged between the WPL-table snapshot and the record's
		// append are seen by the pass rather than lost; the checkpoint record
		// itself is ignored by the switch below.
		rec, err := s.log.ReadAt(start)
		if err != nil {
			return err
		}
		scanFrom = start + uint64(rec.EncodedSize())
	}
	err := s.log.ScanBackward(scanFrom, func(r *logrec.Record) bool {
		s.bumpAllocFor(r)
		switch r.Type {
		case logrec.TypeCommit:
			ctl[r.TID] = true
			resolved[r.TID] = true
		case logrec.TypeAbort:
			resolved[r.TID] = true
		case logrec.TypeEnd:
			resolved[r.TID] = true
			endSeen[r.TID] = true
		case logrec.TypeDecide:
			if !endSeen[r.TID] {
				if _, ok := decided[r.TID]; !ok {
					if _, parts, perr := logrec.DecodePrepareInfo(r.After); perr == nil {
						decided[r.TID] = decidedTxn{lsn: r.LSN, parts: parts}
					}
				}
			}
		case logrec.TypePrepare:
			if !resolved[r.TID] {
				t := &txn{
					tid:      r.TID,
					lastLSN:  r.LSN,
					firstLSN: r.LSN,
					pageLSN:  make(map[page.ID]uint64),
					prepared: true,
					prepLSN:  r.LSN,
				}
				if coord, parts, perr := logrec.DecodePrepareInfo(r.After); perr == nil {
					t.coord = coord
					t.parts = parts
				}
				indoubt[r.TID] = t
			}
		case logrec.TypePageImage:
			if ctl[r.TID] {
				if _, ok := table[r.Page]; !ok {
					// Backward scan: first copy seen is the newest committed.
					table[r.Page] = &wplEntry{pid: r.Page, lsn: r.LSN, tid: r.TID, committed: true}
				}
			}
			if t := indoubt[r.TID]; t != nil {
				// The PREPARE lies above its images, so the branch is already
				// known in doubt when its copies stream past.
				images[r.TID] = append(images[r.TID], &wplEntry{pid: r.Page, lsn: r.LSN, tid: r.TID})
				t.firstLSN = r.LSN // monotone: the last assignment is the oldest
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	// Entries in the checkpoint record pertaining to CTL members or already
	// marked committed are added (unless superseded).
	if ckpt != nil {
		for _, w := range ckpt.wpl {
			if !w.committed && !ctl[w.tid] {
				continue
			}
			if cur, ok := table[w.pid]; ok && cur.lsn >= w.lsn {
				continue
			}
			table[w.pid] = &wplEntry{pid: w.pid, lsn: w.lsn, tid: w.tid, committed: true}
		}
		// Prepared branches whose PREPARE record predates the scan window are
		// known only through the checkpoint's 2PC trailer — unless the scan saw
		// their outcome, in which case they are resolved, not in doubt.
		for _, cp := range ckpt.prepared {
			if resolved[cp.tid] {
				continue
			}
			if _, ok := indoubt[cp.tid]; ok {
				continue
			}
			indoubt[cp.tid] = &txn{
				tid:      cp.tid,
				lastLSN:  cp.prepLSN,
				firstLSN: cp.prepLSN,
				pageLSN:  make(map[page.ID]uint64),
				prepared: true,
				prepLSN:  cp.prepLSN,
				coord:    cp.coord,
				parts:    append([]int(nil), cp.parts...),
			}
		}
		// In-doubt copies shipped before the snapshot live only in the
		// checkpointed (uncommitted) table entries.
		for _, w := range ckpt.wpl {
			t := indoubt[w.tid]
			if t == nil || w.committed {
				continue
			}
			images[w.tid] = append(images[w.tid], &wplEntry{pid: w.pid, lsn: w.lsn, tid: w.tid})
			if w.lsn < t.firstLSN {
				t.firstLSN = w.lsn
			}
		}
		for _, cd := range ckpt.decided {
			if endSeen[cd.tid] {
				continue
			}
			if _, ok := decided[cd.tid]; !ok {
				decided[cd.tid] = decidedTxn{lsn: cd.lsn, parts: append([]int(nil), cd.parts...)}
			}
		}
	}
	// Normal processing could resume here; install everything so the log can
	// be reclaimed by the checkpoint that follows. Installs run in page
	// order for run-to-run reproducibility.
	entries := make([]*wplEntry, 0, len(table))
	for _, e := range table {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pid < entries[j].pid })
	for _, e := range entries {
		rec, err := s.log.ReadAt(e.lsn)
		if err != nil {
			return fmt.Errorf("server: WPL restart install %v: %w", e.pid, err)
		}
		sn.meter().LogRead(1)
		if err := s.store.WritePage(e.pid, rec.After); err != nil {
			return err
		}
		sn.meter().DataWriteAsync(1)
		atomic.AddInt64(&s.stats.DataWrites, 1)
		atomic.AddInt64(&s.stats.WPLInstalls, 1)
	}
	// Resurrect in-doubt branches: rebuild their uncommitted WPL chains (the
	// no-steal rule keeps these copies off their permanent locations until a
	// commit decision arrives; reads reload them from the log), re-acquire
	// their locks, and leave the ATT entries for recovery resolution. Their
	// firstLSN pins the truncation head, so the images stay readable.
	tids := make([]logrec.TID, 0, len(indoubt))
	for tid := range indoubt {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		t := indoubt[tid]
		ents := images[tid]
		// Oldest-first = the original ship order; an image seen by both the
		// scan and the checkpointed table appears twice and is deduped by LSN.
		sort.Slice(ents, func(i, j int) bool { return ents[i].lsn < ents[j].lsn })
		byPage := make(map[page.ID]*wplEntry)
		for _, e := range ents {
			if cur := byPage[e.pid]; cur != nil && cur.lsn == e.lsn {
				continue
			}
			e.prev = byPage[e.pid] // nil for the oldest: below it is the store's committed copy
			byPage[e.pid] = e
			t.wplPages = append(t.wplPages, e.pid)
			t.pageLSN[e.pid] = e.lsn
		}
		s.wplMu.Lock()
		for pid, head := range byPage {
			s.wpl[pid] = head
		}
		s.wplMu.Unlock()
		//qslint:allow determinism: in-doubt age reporting only (qsctl 2pc-status); never logged, no control flow depends on it
		t.prepTime = time.Now()
		s.attMu.Lock()
		s.att[tid] = t
		s.attMu.Unlock()
		if err := s.relockInDoubt(t); err != nil {
			return err
		}
	}
	s.decMu.Lock()
	s.decided = decided
	s.decMu.Unlock()
	return nil
}

// FlushAll writes every dirty buffered page home (used by orderly shutdown
// in the standalone server; not part of the measured protocols).
func (sn *Session) FlushAll() error {
	s := sn.s
	s.gate.Lock()
	defer s.gate.Unlock()
	if s.cfg.Mode == ModeWPL {
		return nil // installs happen at commit; nothing safe to force early
	}
	sn.meter().LogWrite(s.log.Force())
	for _, pid := range s.pool.DirtyPages() {
		sh := s.pool.Lock(pid)
		f := sh.Peek(pid)
		lsn := page.Wrap(f.Bytes()).LSN()
		if err := s.store.WritePage(pid, f.Bytes()); err != nil {
			sh.Unlock()
			return err
		}
		sn.meter().DataWriteAsync(1)
		atomic.AddInt64(&s.stats.DataWrites, 1)
		sh.MarkClean(pid)
		sh.Unlock()
		s.retireDPT(pid, lsn)
	}
	return nil
}
