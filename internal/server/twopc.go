package server

// Presumed-abort two-phase commit, participant and coordinator sides
// (DESIGN.md §16). Every shard runs this same code; a cross-shard
// transaction's coordinator shard additionally logs the DECIDE record that is
// the transaction's commit point and keeps the decided-transactions map that
// answers recovery resolution.
//
// Protocol, as driven by the router (internal/shard):
//
//	phase 1: Prepare on every participant — each forces a PREPARE record
//	         (carrying coordinator + participant set) before voting yes.
//	phase 2: Decide(commit) on the coordinator first — logDecision forces the
//	         DECIDE record, the commit point — then on the other participants;
//	         finally Forget on the coordinator once all have committed.
//	abort:   Decide(abort) everywhere; nothing is logged for the decision
//	         itself (presumed abort), the branches just roll back.
//
// A branch that crashes between Prepare and Decide restarts in doubt: restart
// analysis resurrects its ATT entry with locks held (internal/server/
// restart.go), and ResolveInDoubt answers the router's recovery resolution —
// present in decided means commit, absent means presumed abort.

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
)

// decidedTxn is a coordinator-side commit decision awaiting the forget
// protocol: the DECIDE record is stable, and the entry survives until every
// participant has confirmed its commit (Forget). Guarded by decMu.
type decidedTxn struct {
	lsn   uint64 // location of the DECIDE record
	parts []int  // participant set, echoed to resolution callers
}

// InDoubtTxn describes one prepared-but-unresolved transaction branch, as
// reported by qsctl 2pc-status.
type InDoubtTxn struct {
	TID         logrec.TID
	Coordinator int
	Age         time.Duration
}

// Adopt registers a coordinator-issued transaction id on this shard, creating
// an empty ATT entry for it. Residue-class TID allocation (Config.ShardID/
// ShardCount) guarantees the id cannot collide with a local allocation.
// Idempotent: re-adopting an active id is a no-op, so retried joins are safe.
func (sn *Session) Adopt(tid logrec.TID) error {
	s := sn.s
	if s.standby.Load() {
		return ErrStandby
	}
	defer s.enter()()
	s.attMu.Lock()
	defer s.attMu.Unlock()
	if _, ok := s.att[tid]; ok {
		return nil
	}
	s.att[tid] = &txn{
		tid:      tid,
		lastLSN:  logrec.NoLSN,
		firstLSN: logrec.NoLSN,
		pageLSN:  make(map[page.ID]uint64),
	}
	return nil
}

// Prepare votes yes on behalf of tid's branch: the PREPARE record (carrying
// the coordinator identity and participant set) is appended and forced before
// the call returns, so a yes vote survives any crash. From here until Decide
// the branch is in doubt — it holds its locks and refuses unilateral
// Commit/Abort. Idempotent under re-delivery.
func (sn *Session) Prepare(tid logrec.TID, coordinator int, participants []int) error {
	s := sn.s
	if s.standby.Load() {
		return ErrStandby
	}
	exit := s.enter()
	t, ok := s.lookupTxn(tid)
	if !ok {
		exit()
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	if t.prepared {
		exit()
		return nil // re-delivered vote request; the first force stands
	}
	p := logrec.NewPrepare(tid, coordinator, participants)
	p.PrevLSN = t.lastLSN
	// Append + ATT chain + prepared marking: one attMu critical section, so a
	// fuzzy checkpoint either snapshots the branch as prepared or re-analyzes
	// the PREPARE record from its scan window (the same invariant as Commit).
	s.attMu.Lock()
	if _, err := s.log.Append(p); err != nil {
		s.attMu.Unlock()
		exit()
		return err
	}
	t.lastLSN = p.LSN
	if t.firstLSN == logrec.NoLSN {
		t.firstLSN = p.LSN
	}
	t.prepared = true
	t.coord = coordinator
	t.parts = append([]int(nil), participants...)
	t.prepLSN = p.LSN
	//qslint:allow determinism: in-doubt age reporting only (qsctl 2pc-status); never logged, no control flow depends on it
	t.prepTime = time.Now()
	s.attMu.Unlock()
	// The yes vote must be stable before it is uttered: ride the group-commit
	// flusher exactly as a commit force does.
	if s.cfg.Serialize || s.cfg.GroupCommitDelay < 0 {
		sn.m.LogWrite(s.log.Force())
	} else {
		sn.m.LogWrite(s.log.CommitWait(p.LSN + uint64(p.EncodedSize())))
	}
	atomic.AddInt64(&s.stats.TwoPCPrepares, 1)
	exit()
	return nil
}

// Decide delivers the coordinator's outcome to tid's branch on this shard.
// On the coordinator shard a commit decision first logs and forces the DECIDE
// record (the transaction's commit point) and enters it in the decided map;
// then — on every shard — the branch finishes through the normal Commit or
// Abort path, releasing its locks. Idempotent: deciding a finished branch is
// a no-op, so the router may re-deliver after partial failures.
func (sn *Session) Decide(tid logrec.TID, commit bool) error {
	s := sn.s
	if s.standby.Load() {
		return ErrStandby
	}
	if commit {
		if err := sn.logDecision(tid); err != nil {
			return err
		}
	}
	t, ok := s.lookupTxn(tid)
	if !ok {
		return nil // branch already finished; re-delivery
	}
	s.attMu.Lock()
	t.prepared = false // fate known: Commit/Abort below may proceed
	s.attMu.Unlock()
	if commit {
		return sn.Commit(tid)
	}
	return sn.Abort(tid)
}

// logDecision makes tid's commit decision stable if this shard is its
// coordinator and the decision is not already on record. The forced DECIDE
// record is the commit point of the whole cross-shard transaction.
func (sn *Session) logDecision(tid logrec.TID) error {
	s := sn.s
	exit := s.enter()
	t, ok := s.lookupTxn(tid)
	if !ok || !t.prepared || t.coord != s.cfg.ShardID {
		// Not ours to decide (participant shard), not prepared (single-shard
		// fast path), or already finished — nothing to log.
		exit()
		return nil
	}
	// The DECIDE append is deliberately NOT chained into the branch's PrevLSN
	// chain: restart's loser check must still find the PREPARE at lastLSN to
	// classify the branch, and the decision's own life cycle is the decided
	// map + forget End, not the undo chain.
	d := logrec.NewDecide(tid, t.coord, t.parts)
	d.PrevLSN = logrec.NoLSN
	s.attMu.Lock()
	s.decMu.Lock()
	if _, done := s.decided[tid]; done {
		s.decMu.Unlock()
		s.attMu.Unlock()
		exit()
		return nil
	}
	if _, err := s.log.Append(d); err != nil {
		s.decMu.Unlock()
		s.attMu.Unlock()
		exit()
		return err
	}
	s.decided[tid] = decidedTxn{lsn: d.LSN, parts: append([]int(nil), t.parts...)}
	s.decMu.Unlock()
	s.attMu.Unlock()
	if s.cfg.Serialize || s.cfg.GroupCommitDelay < 0 {
		sn.m.LogWrite(s.log.Force())
	} else {
		sn.m.LogWrite(s.log.CommitWait(d.LSN + uint64(d.EncodedSize())))
	}
	exit()
	return nil
}

// Forget ends the presumed-abort forget protocol for a decided transaction:
// once every participant has confirmed its commit, the coordinator logs an
// End and drops the decided entry, so resolution state cannot grow without
// bound. The End is not forced — losing it merely resurrects the decided
// entry at restart, and a later resolution or Forget retires it again
// (idempotent). A no-op for unknown tids.
func (sn *Session) Forget(tid logrec.TID) error {
	s := sn.s
	if s.standby.Load() {
		return ErrStandby
	}
	defer s.enter()()
	s.attMu.Lock()
	s.decMu.Lock()
	if _, ok := s.decided[tid]; !ok {
		s.decMu.Unlock()
		s.attMu.Unlock()
		return nil
	}
	e := logrec.NewEnd(tid)
	e.PrevLSN = logrec.NoLSN
	if _, err := s.log.Append(e); err != nil {
		s.decMu.Unlock()
		s.attMu.Unlock()
		return err
	}
	delete(s.decided, tid)
	s.decMu.Unlock()
	s.attMu.Unlock()
	return nil
}

// ResolveInDoubt answers a recovery-resolution request for tid, asked of the
// coordinator shard by (or on behalf of) an in-doubt participant: commit if
// the decision is on record, presumed abort otherwise. Pure lookup — safe to
// re-ask any number of times.
func (sn *Session) ResolveInDoubt(tid logrec.TID) (commit bool, participants []int, err error) {
	s := sn.s
	if s.standby.Load() {
		return false, nil, ErrStandby
	}
	defer s.enter()()
	atomic.AddInt64(&s.stats.TwoPCResolutions, 1)
	s.decMu.Lock()
	d, ok := s.decided[tid]
	s.decMu.Unlock()
	if ok {
		return true, append([]int(nil), d.parts...), nil
	}
	atomic.AddInt64(&s.stats.TwoPCPresumedAborts, 1)
	return false, nil, nil
}

// InDoubt lists the prepared-but-unresolved transaction branches on this
// shard, sorted by TID (qsctl 2pc-status).
func (s *Server) InDoubt() []InDoubtTxn {
	s.attMu.Lock()
	var out []InDoubtTxn
	for _, t := range s.att {
		if t.prepared {
			out = append(out, InDoubtTxn{
				TID:         t.tid,
				Coordinator: t.coord,
				//qslint:allow determinism: in-doubt age reporting only (qsctl 2pc-status); never logged, no control flow depends on it
				Age: time.Since(t.prepTime),
			})
		}
	}
	s.attMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

// InDoubt lists this shard's in-doubt branches through a session, for the
// in-process wire transport.
func (sn *Session) InDoubt() []InDoubtTxn { return sn.s.InDoubt() }

// resurrectInDoubt installs an in-doubt branch discovered by restart analysis
// (ESM/REDO path) into the live ATT with its locks held. The branch's page
// set is rebuilt by walking its PrevLSN chain — every record of an active
// branch is at or above the truncation head, so the walk cannot fall off the
// log — which covers branches seeded from a checkpoint's 2PC trailer whose
// updates predate the analysis scan window. Caller holds gate.W.
func (s *Server) resurrectInDoubt(t *txn) error {
	cur := t.lastLSN
	for cur != logrec.NoLSN {
		r, err := s.log.ReadAt(cur)
		if err != nil {
			return fmt.Errorf("server: in-doubt %v page walk at %d: %w", t.tid, cur, err)
		}
		switch r.Type {
		case logrec.TypeUpdate, logrec.TypePageImage:
			if _, ok := t.pageLSN[r.Page]; !ok {
				t.pageLSN[r.Page] = r.LSN // newest first: keep the first seen
			}
			cur = r.PrevLSN
		case logrec.TypeCLR:
			// Partial rollback before the prepare: the CLR's page matches the
			// undone update's, so recording it and skipping via UndoNext still
			// covers every touched page.
			if _, ok := t.pageLSN[r.Page]; !ok {
				t.pageLSN[r.Page] = r.LSN
			}
			cur = r.UndoNext
		default:
			cur = r.PrevLSN
		}
	}
	//qslint:allow determinism: in-doubt age reporting only (qsctl 2pc-status); never logged, no control flow depends on it
	t.prepTime = time.Now()
	s.attMu.Lock()
	s.att[t.tid] = t
	s.attMu.Unlock()
	return s.relockInDoubt(t)
}

// relockInDoubt re-acquires an in-doubt branch's exclusive page locks at
// restart, before new sessions are admitted, so the branch keeps isolating
// its uncommitted (redo-reapplied) pages until resolution. The server is
// quiesced, so every acquisition is immediate. Caller holds gate.W.
func (s *Server) relockInDoubt(t *txn) error {
	pids := make([]page.ID, 0, len(t.pageLSN))
	for pid := range t.pageLSN {
		pids = append(pids, pid)
	}
	for _, pid := range t.wplPages {
		if _, ok := t.pageLSN[pid]; !ok {
			pids = append(pids, pid)
			t.pageLSN[pid] = t.prepLSN
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		if err := s.locks.Lock(t.tid, pid, lock.Exclusive); err != nil {
			return fmt.Errorf("server: relocking in-doubt %v on %v: %w", t.tid, pid, err)
		}
	}
	return nil
}
