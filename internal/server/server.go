// Package server implements the storage server: an EXODUS-Storage-Manager-
// style page server (paper §3.1) with three selectable recovery modes.
//
//   - ModeESM: the baseline ARIES-style scheme. Clients ship log records and
//     then dirty pages; only the log is forced at commit (STEAL/NO-FORCE
//     with ESM's force-to-server-at-commit rule).
//   - ModeREDO: redo-at-server (§3.5). Clients ship log records only; the
//     server applies each record's redo information to its copy of the page,
//     reading the page from the data disk when necessary.
//   - ModeWPL: whole-page logging (§3.4). Clients ship dirty pages and no
//     log records; the server appends whole-page after-images to the log,
//     tracks them in the WPL table, and installs them to their permanent
//     locations after commit.
//
// The server owns the stable data volume, the transaction log, the lock
// manager, and its own buffer pool. Work is reported to a costmodel.Meter
// per session so simulated runs charge the shared server resources.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/costmodel"
	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wal"
)

// Mode selects the server's recovery scheme.
type Mode int

// Recovery modes.
const (
	// ModeESM is the ARIES-based baseline used by PD-ESM/SD-ESM/SL-ESM.
	ModeESM Mode = iota
	// ModeREDO applies client log records at the server (PD-REDO).
	ModeREDO
	// ModeWPL logs whole dirty pages at the server (WPL).
	ModeWPL
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeESM:
		return "ESM"
	case ModeREDO:
		return "REDO"
	case ModeWPL:
		return "WPL"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors returned by the server.
var (
	ErrNoTxn         = errors.New("server: unknown or finished transaction")
	ErrNotLocked     = errors.New("server: page not locked by transaction")
	ErrModeViolation = errors.New("server: operation not valid in this recovery mode")
)

// Config configures a Server.
type Config struct {
	Mode        Mode
	Store       disk.Store    // stable data volume; NewMemStore if nil
	LogCapacity int           // log bytes; wal.DefaultCapacity if 0
	PoolPages   int           // server buffer pool frames; default 4608 (36 MB)
	LockTimeout time.Duration // lock wait bound; lock.DefaultTimeout if 0
	// CheckpointEvery takes a checkpoint after this many commits (0 = 64).
	CheckpointEvery int
	// Log, when non-nil, is adopted instead of a freshly created log. The
	// crash-point sweep uses this to restart a server over the surviving
	// store and log of a crashed instance, as reopening the log disk would.
	Log *wal.Log
}

// DefaultPoolPages is 36 MB of 8 KB frames, the paper's server memory.
const DefaultPoolPages = 36 << 20 / page.Size

// superblockPage holds the master record (checkpoint LSN and allocation
// counters); it is never handed to clients.
const superblockPage page.ID = 0

// Stats counts server-side work.
type Stats struct {
	LogPagesReceived   int64 // client→server log record pages (ESM/REDO)
	DirtyPagesReceived int64 // client→server dirty pages (ESM/WPL)
	PagesServed        int64 // server→client page fetches
	DataReads          int64 // data-disk page reads
	DataWrites         int64 // data-disk page writes
	LogRecordsApplied  int64 // REDO applications
	WPLInstalls        int64 // WPL pages installed to their home location
	WPLLogReloads      int64 // WPL pages re-read from the log
	Commits            int64
	Aborts             int64
	Checkpoints        int64
	CheckpointsFailed  int64 // checkpoints abandoned on a disk error (retried later)
	InstallsDeferred   int64 // WPL installs deferred on a disk error (page stays in the WPL table)
	Restarts           int64
}

// txn is an active-transaction-table entry.
type txn struct {
	tid      logrec.TID
	lastLSN  uint64 // most recent log record (undo chain head); NoLSN if none
	firstLSN uint64 // oldest log record; NoLSN if none
	// pageLSN tracks the last LSN assigned to each page this transaction
	// updated, used to stamp dirty pages on arrival (log records for a page
	// always precede the page itself).
	pageLSN map[page.ID]uint64
	// wplPages lists pages logged for this transaction under WPL, in order.
	wplPages []page.ID
}

// wplEntry is a WPL-table entry (paper §3.4.2).
type wplEntry struct {
	pid       page.ID
	lsn       uint64 // location of the page image in the log
	tid       logrec.TID
	committed bool
	prev      *wplEntry // previously logged copy still needed for recovery
}

// Server is the storage server. Its methods are invoked through Sessions.
type Server struct {
	cfg   Config
	store disk.Store
	log   *wal.Log
	locks *lock.Manager

	mu       sync.Mutex
	pool     *buffer.Pool
	att      map[logrec.TID]*txn
	dpt      map[page.ID]uint64 // dirty page table: pid → recLSN (ESM/REDO)
	wpl      map[page.ID]*wplEntry
	nextTID  logrec.TID
	nextPage page.ID
	commits  int // since last checkpoint
	stats    Stats
}

// New creates a server and formats the volume if it is empty. If the volume
// already contains data (a reopened file store), call Restart to recover.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = disk.NewMemStore()
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = DefaultPoolPages
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 64
	}
	if cfg.Log == nil {
		cfg.Log = wal.New(cfg.LogCapacity)
	}
	s := &Server{
		cfg:      cfg,
		store:    cfg.Store,
		log:      cfg.Log,
		locks:    lock.NewManager(cfg.LockTimeout),
		pool:     buffer.NewPool(cfg.PoolPages),
		att:      make(map[logrec.TID]*txn),
		dpt:      make(map[page.ID]uint64),
		wpl:      make(map[page.ID]*wplEntry),
		nextTID:  1,
		nextPage: 1,
	}
	return s
}

// Mode returns the server's recovery mode.
func (s *Server) Mode() Mode { return s.cfg.Mode }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Log exposes the log manager for tests and tools.
func (s *Server) Log() *wal.Log { return s.log }

// Session is one client's connection; server-side costs are charged to its
// meter so the simulation attributes queueing correctly.
type Session struct {
	s *Server
	m costmodel.Meter
	p *costmodel.Params
}

// NewSession opens a session charging work to m with service times from p.
func (s *Server) NewSession(m costmodel.Meter, p *costmodel.Params) *Session {
	if m == nil {
		m = costmodel.NopMeter{}
	}
	if p == nil {
		p = costmodel.Default1995()
	}
	return &Session{s: s, m: m, p: p}
}

// Begin starts a transaction and returns its id.
func (sn *Session) Begin() logrec.TID {
	s := sn.s
	s.mu.Lock()
	defer s.mu.Unlock()
	tid := s.nextTID
	s.nextTID++
	s.att[tid] = &txn{
		tid:      tid,
		lastLSN:  logrec.NoLSN,
		firstLSN: logrec.NoLSN,
		pageLSN:  make(map[page.ID]uint64),
	}
	return tid
}

// Lock acquires a page lock on behalf of tid, blocking until granted.
func (sn *Session) Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error {
	sn.m.ServerCompute(sn.p.LockReqCPU)
	return sn.s.locks.Lock(tid, pid, mode)
}

// AllocPage reserves a fresh page id for tid. The client formats the page
// and ships it (or its image) with its recovery scheme's normal machinery.
func (sn *Session) AllocPage(tid logrec.TID) (page.ID, error) {
	s := sn.s
	s.mu.Lock()
	if _, ok := s.att[tid]; !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	pid := s.nextPage
	s.nextPage++
	s.mu.Unlock()
	// New pages are implicitly exclusive to their creator.
	if err := sn.s.locks.Lock(tid, pid, lock.Exclusive); err != nil {
		return 0, err
	}
	return pid, nil
}

// ReadPage returns the contents of pid after acquiring the requested lock.
func (sn *Session) ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error) {
	s := sn.s
	if _, ok := s.txnOK(tid); !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	sn.m.ServerCompute(sn.p.LockReqCPU)
	if err := s.locks.Lock(tid, pid, mode); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sn.m.ServerCompute(sn.p.ServerPage)
	f, err := s.fetchLocked(sn, pid, true)
	if err != nil {
		return nil, err
	}
	out := make([]byte, page.Size)
	copy(out, f.Bytes())
	s.stats.PagesServed++
	return out, nil
}

func (s *Server) txnOK(tid logrec.TID) (*txn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.att[tid]
	return t, ok
}

// fetchLocked brings pid into the server pool, reading from the WPL log copy
// or the data volume as appropriate. Caller holds s.mu. If mustExist is
// false, a missing page is created empty (restart redo path).
func (s *Server) fetchLocked(sn *Session, pid page.ID, mustExist bool) (*buffer.Frame, error) {
	if f := s.pool.Get(pid); f != nil {
		return f, nil
	}
	var buf [page.Size]byte
	switch {
	case s.cfg.Mode == ModeWPL && s.wpl[pid] != nil:
		// The newest logged copy is the current version (paper §3.4.2:
		// replaced dirty pages are re-read from the log).
		e := s.wpl[pid]
		rec, err := s.log.ReadAt(e.lsn)
		if err != nil {
			return nil, fmt.Errorf("server: WPL reload of %v: %w", pid, err)
		}
		copy(buf[:], rec.After)
		sn.m.LogRead(1)
		s.stats.WPLLogReloads++
	default:
		err := s.store.ReadPage(pid, buf[:])
		switch {
		case errors.Is(err, disk.ErrNotFound) && !mustExist:
			page.Wrap(buf[:]).Init(pid)
		case err != nil:
			return nil, err
		}
		sn.m.DataRead(1)
		s.stats.DataReads++
	}
	if err := s.makeRoomLocked(sn); err != nil {
		return nil, err
	}
	return s.pool.Insert(pid, buf[:])
}

// makeRoomLocked evicts the LRU frame if the pool is full, handling dirty
// victims per the recovery mode. Caller holds s.mu.
func (s *Server) makeRoomLocked(sn *Session) error {
	if !s.pool.Full() {
		return nil
	}
	v := s.pool.Victim()
	if v == nil {
		return fmt.Errorf("%w: server pool wedged", buffer.ErrNoFrame)
	}
	pid := v.PID()
	if v.Dirty() {
		if err := s.flushVictimLocked(sn, v); err != nil {
			return err
		}
	}
	return s.pool.Remove(pid)
}

// flushVictimLocked handles a dirty page leaving the pool.
func (s *Server) flushVictimLocked(sn *Session, v *buffer.Frame) error {
	pid := v.PID()
	if s.cfg.Mode == ModeWPL {
		if e := s.wpl[pid]; e != nil && !e.committed {
			// Uncommitted logged copy: the permanent location must not be
			// overwritten; the log holds the current version (§3.4.2).
			return nil
		}
		if e := s.wpl[pid]; e != nil && e.committed {
			// Committed but not yet installed: install now. If the data disk
			// rejects the write (injected or real), the committed image still
			// lives in the log and the WPL table entry is retained, so reads
			// reload it from there until a later install succeeds — degrade,
			// don't fail the eviction.
			if err := s.installLocked(sn, e, v.Bytes()); err != nil {
				s.stats.InstallsDeferred++
			}
			return nil
		}
		return nil
	}
	// ESM/REDO: write-ahead rule — force the log up to the page's LSN first.
	pg := page.Wrap(v.Bytes())
	if pg.LSN() != 0 && pg.LSN() >= s.log.StableEnd() {
		sn.m.LogWrite(s.log.Force())
	}
	if err := s.store.WritePage(pid, v.Bytes()); err != nil {
		return err
	}
	sn.m.DataWriteAsync(1)
	s.stats.DataWrites++
	delete(s.dpt, pid)
	return nil
}

// ShipLog delivers a batch of client-generated log records (one "log page").
// The server assigns LSNs, chains PrevLSN, and under REDO applies each
// record to its copy of the page. Not valid under WPL.
func (sn *Session) ShipLog(tid logrec.TID, data []byte) error {
	s := sn.s
	if s.cfg.Mode == ModeWPL {
		return fmt.Errorf("%w: ShipLog under WPL", ErrModeViolation)
	}
	recs, err := logrec.DecodeAll(data)
	if err != nil {
		return fmt.Errorf("server: bad log page from %v: %w", tid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.att[tid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	s.stats.LogPagesReceived++
	sn.m.ServerCompute(sn.p.ServerPage)
	for _, r := range recs {
		if r.Type != logrec.TypeUpdate && r.Type != logrec.TypePageImage {
			return fmt.Errorf("server: client shipped %v record", r.Type)
		}
		r.TID = tid
		r.PrevLSN = t.lastLSN
		lsn, err := s.log.Append(r)
		if err != nil {
			return err
		}
		t.lastLSN = lsn
		if t.firstLSN == logrec.NoLSN {
			t.firstLSN = lsn
		}
		t.pageLSN[r.Page] = lsn
		if _, ok := s.dpt[r.Page]; !ok {
			s.dpt[r.Page] = lsn
		}
		if s.cfg.Mode == ModeREDO {
			if err := s.applyLocked(sn, r); err != nil {
				return err
			}
		}
	}
	// The server writes filled log pages to disk as they arrive, without
	// blocking the client; the commit force queues behind this backlog.
	sn.m.LogWriteAsync(s.log.ForceFull())
	return nil
}

// applyLocked applies a log record's redo information to the server's copy
// of the page (REDO mode and restart redo). Caller holds s.mu.
func (s *Server) applyLocked(sn *Session, r *logrec.Record) error {
	f, err := s.fetchLocked(sn, r.Page, false)
	if err != nil {
		return err
	}
	pg := page.Wrap(f.Bytes())
	switch r.Type {
	case logrec.TypeUpdate, logrec.TypeCLR:
		copy(f.Bytes()[r.Off:int(r.Off)+len(r.After)], r.After)
	case logrec.TypePageImage:
		copy(f.Bytes(), r.After)
	default:
		return fmt.Errorf("server: cannot apply %v", r.Type)
	}
	pg.SetLSN(r.LSN)
	s.pool.MarkDirty(r.Page)
	sn.m.ServerCompute(sn.p.ServerApply)
	s.stats.LogRecordsApplied++
	return nil
}

// ShipPage delivers a dirty page. Under ESM the page is cached and stamped
// with its last assigned LSN; under WPL it is appended to the log and
// tracked in the WPL table. Not valid under REDO (clients never ship pages).
func (sn *Session) ShipPage(tid logrec.TID, pid page.ID, data []byte) error {
	s := sn.s
	if s.cfg.Mode == ModeREDO {
		return fmt.Errorf("%w: ShipPage under REDO", ErrModeViolation)
	}
	if len(data) != page.Size {
		return fmt.Errorf("server: shipped page is %d bytes", len(data))
	}
	if m, ok := s.locks.Holds(tid, pid); !ok || m != lock.Exclusive {
		return fmt.Errorf("%w: %v ships %v", ErrNotLocked, tid, pid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.att[tid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	s.stats.DirtyPagesReceived++
	sn.m.ServerCompute(sn.p.ServerPage)
	if s.cfg.Mode == ModeWPL {
		return s.wplShipLocked(sn, t, pid, data)
	}
	// ESM: the log records for this page have already arrived; stamp the
	// page with the last LSN assigned for it so pageLSN-conditional redo is
	// sound.
	if err := s.makeRoomLocked(sn); err != nil {
		return err
	}
	f := s.pool.Get(pid)
	if f == nil {
		var err error
		f, err = s.pool.Insert(pid, data)
		if err != nil {
			return err
		}
	} else {
		copy(f.Bytes(), data)
	}
	if lsn, ok := t.pageLSN[pid]; ok {
		page.Wrap(f.Bytes()).SetLSN(lsn)
		if _, indpt := s.dpt[pid]; !indpt {
			s.dpt[pid] = lsn
		}
	}
	s.pool.MarkDirty(pid)
	return nil
}

// wplShipLocked appends the page image to the log and updates the WPL table.
func (s *Server) wplShipLocked(sn *Session, t *txn, pid page.ID, data []byte) error {
	r := logrec.NewPageImage(t.tid, pid, data)
	r.PrevLSN = t.lastLSN
	lsn, err := s.log.Append(r)
	if err != nil {
		return err
	}
	t.lastLSN = lsn
	if t.firstLSN == logrec.NoLSN {
		t.firstLSN = lsn
	}
	t.wplPages = append(t.wplPages, pid)
	s.wpl[pid] = &wplEntry{pid: pid, lsn: lsn, tid: t.tid, prev: s.wpl[pid]}
	sn.m.LogWriteAsync(s.log.ForceFull())
	// Cache the copy; the permanent location is untouched until install.
	if err := s.makeRoomLocked(sn); err != nil {
		return err
	}
	if f := s.pool.Get(pid); f != nil {
		copy(f.Bytes(), data)
		s.pool.MarkDirty(pid)
	} else if f, err := s.pool.Insert(pid, data); err != nil {
		return err
	} else {
		s.pool.MarkDirty(f.PID())
	}
	return nil
}

// Commit commits tid: the commit record and everything before it is forced
// to the log, then locks are released. Under WPL the transaction's logged
// pages become installable and the background installer is kicked.
func (sn *Session) Commit(tid logrec.TID) error {
	s := sn.s
	s.mu.Lock()
	t, ok := s.att[tid]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	c := logrec.NewCommit(tid)
	c.PrevLSN = t.lastLSN
	if _, err := s.log.Append(c); err != nil {
		s.mu.Unlock()
		return err
	}
	t.lastLSN = c.LSN
	sn.m.LogWrite(s.log.Force())
	s.stats.Commits++
	if s.cfg.Mode == ModeWPL {
		if err := s.wplCommitLocked(sn, t); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	delete(s.att, tid)
	s.commits++
	// Checkpoint on schedule, or early when the log is filling (whole-page
	// logging can write tens of MB per transaction).
	due := s.commits >= s.cfg.CheckpointEvery || s.log.Used() > s.log.Capacity()/2
	if due {
		s.commits = 0
	}
	s.mu.Unlock()
	s.locks.ReleaseAll(tid)
	if due {
		if err := sn.Checkpoint(); err != nil {
			// The commit record is forced; the transaction is durable. A
			// checkpoint is maintenance — on a disk error (injected or real)
			// abandon it and let a later commit retry, rather than reporting
			// a failed commit for a committed transaction.
			s.mu.Lock()
			s.stats.CheckpointsFailed++
			s.mu.Unlock()
		}
	}
	return nil
}

// wplCommitLocked marks the transaction's logged pages committed and
// installs the ones whose entries are chain heads (the asynchronous
// installer of §3.4.2, run inline at commit).
func (s *Server) wplCommitLocked(sn *Session, t *txn) error {
	for _, pid := range t.wplPages {
		head := s.wpl[pid]
		for e := head; e != nil; e = e.prev {
			if e.tid == t.tid {
				e.committed = true
			}
		}
		if head != nil && head.tid == t.tid {
			// Newest copy is ours and now committed: install and drop the
			// whole chain (older copies are obsolete).
			var img []byte
			if f := s.pool.Peek(pid); f != nil {
				img = f.Bytes() // "marked as read" optimization: cached at commit
			} else {
				rec, err := s.log.ReadAt(head.lsn)
				if err != nil {
					return fmt.Errorf("server: WPL install of %v: %w", pid, err)
				}
				img = rec.After
				sn.m.LogReadAsync(1)
				s.stats.WPLLogReloads++
			}
			if err := s.installLocked(sn, head, img); err != nil {
				// The commit record is already forced: the transaction is
				// durable regardless of this install. Keep the committed
				// entry (its log copy remains the authoritative version) and
				// retry at eviction or restart instead of failing the commit.
				s.stats.InstallsDeferred++
				continue
			}
			if f := s.pool.Peek(pid); f != nil {
				s.pool.MarkClean(pid)
			}
		}
	}
	return nil
}

// installLocked writes a committed WPL copy to its permanent location and
// removes its table entry.
func (s *Server) installLocked(sn *Session, e *wplEntry, img []byte) error {
	if err := s.store.WritePage(e.pid, img); err != nil {
		return err
	}
	sn.m.DataWriteAsync(1)
	s.stats.DataWrites++
	s.stats.WPLInstalls++
	if s.wpl[e.pid] == e || (s.wpl[e.pid] != nil && s.wpl[e.pid].tid == e.tid) {
		delete(s.wpl, e.pid)
	}
	return nil
}

// Abort rolls tid back. Under ESM/REDO the transaction's update records are
// undone with compensation log records; under WPL its logged copies are
// simply dropped from the WPL table (§3.4.2: abort by ignoring).
func (sn *Session) Abort(tid logrec.TID) error {
	s := sn.s
	s.mu.Lock()
	t, ok := s.att[tid]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	a := logrec.NewAbort(tid)
	a.PrevLSN = t.lastLSN
	s.log.Append(a)
	var err error
	if s.cfg.Mode == ModeWPL {
		s.wplAbortLocked(sn, t)
	} else {
		err = s.undoLocked(sn, t, logrec.NoLSN)
	}
	e := logrec.NewEnd(tid)
	e.PrevLSN = t.lastLSN
	s.log.Append(e)
	sn.m.LogWrite(s.log.Force())
	s.stats.Aborts++
	delete(s.att, tid)
	s.mu.Unlock()
	s.locks.ReleaseAll(tid)
	return err
}

// wplAbortLocked unlinks the aborting transaction's copies from the WPL
// table. If an older committed copy resurfaces as chain head, it is
// installed so its log space can eventually be reclaimed.
func (s *Server) wplAbortLocked(sn *Session, t *txn) {
	for _, pid := range t.wplPages {
		head := s.wpl[pid]
		// Remove t's entries from the chain.
		var keep *wplEntry
		for e := head; e != nil; e = e.prev {
			if e.tid != t.tid {
				keep = e
				break
			}
		}
		if keep == nil {
			delete(s.wpl, pid)
		} else {
			s.wpl[pid] = keep
		}
		// The cached copy in the pool is the aborted version; drop it.
		if f := s.pool.Peek(pid); f != nil {
			s.pool.MarkClean(pid)
			s.pool.Remove(pid)
		}
		if keep != nil && keep.committed {
			if rec, err := s.log.ReadAt(keep.lsn); err == nil {
				sn.m.LogReadAsync(1)
				s.installLocked(sn, keep, rec.After)
			}
		}
	}
}

// undoLocked rolls back t's update records down to (but not including)
// stopAt, writing CLRs. Used by abort (stopAt = NoLSN) and by restart to
// roll back loser transactions. Undo reads the log, so it begins by forcing
// the volatile tail.
func (s *Server) undoLocked(sn *Session, t *txn, stopAt uint64) error {
	sn.m.LogWrite(s.log.Force())
	cur := t.lastLSN
	for cur != logrec.NoLSN && cur != stopAt {
		r, err := s.log.ReadAt(cur)
		if err != nil {
			return fmt.Errorf("server: undo %v at %d: %w", t.tid, cur, err)
		}
		switch r.Type {
		case logrec.TypeUpdate:
			f, err := s.fetchLocked(sn, r.Page, false)
			if err != nil {
				return err
			}
			copy(f.Bytes()[r.Off:int(r.Off)+len(r.Before)], r.Before)
			clr := &logrec.Record{
				TID:      t.tid,
				Type:     logrec.TypeCLR,
				Page:     r.Page,
				Off:      r.Off,
				UndoNext: r.PrevLSN,
				After:    append([]byte(nil), r.Before...),
				PrevLSN:  t.lastLSN,
			}
			lsn, err := s.log.Append(clr)
			if err != nil {
				return err
			}
			t.lastLSN = lsn
			page.Wrap(f.Bytes()).SetLSN(lsn)
			s.pool.MarkDirty(r.Page)
			if _, ok := s.dpt[r.Page]; !ok {
				s.dpt[r.Page] = lsn
			}
			cur = r.PrevLSN
		case logrec.TypeCLR:
			cur = r.UndoNext
		case logrec.TypePageImage:
			// A fresh page created by the loser: it was never linked into
			// any committed structure, so leave its bytes; the allocation is
			// simply wasted (documented in DESIGN.md).
			cur = r.PrevLSN
		default:
			cur = r.PrevLSN
		}
	}
	return nil
}

// --- superblock ----------------------------------------------------------

const superMagic = 0x51535342 // "QSSB"

type superblock struct {
	checkpointLSN uint64
	nextPage      page.ID
	nextTID       logrec.TID
	hasCheckpoint bool
}

func (s *Server) writeSuperblock(sn *Session, sb superblock) error {
	var buf [page.Size]byte
	binary.LittleEndian.PutUint32(buf[0:], superMagic)
	flags := uint32(0)
	if sb.hasCheckpoint {
		flags = 1
	}
	binary.LittleEndian.PutUint32(buf[4:], flags)
	binary.LittleEndian.PutUint64(buf[8:], sb.checkpointLSN)
	binary.LittleEndian.PutUint32(buf[16:], uint32(sb.nextPage))
	binary.LittleEndian.PutUint64(buf[24:], uint64(sb.nextTID))
	if err := s.store.WritePage(superblockPage, buf[:]); err != nil {
		return err
	}
	sn.m.DataWriteAsync(1)
	return nil
}

func (s *Server) readSuperblock() (superblock, error) {
	var buf [page.Size]byte
	err := s.store.ReadPage(superblockPage, buf[:])
	if errors.Is(err, disk.ErrNotFound) {
		return superblock{nextPage: 1, nextTID: 1}, nil
	}
	if err != nil {
		return superblock{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != superMagic {
		return superblock{}, errors.New("server: bad superblock magic")
	}
	return superblock{
		hasCheckpoint: binary.LittleEndian.Uint32(buf[4:]) == 1,
		checkpointLSN: binary.LittleEndian.Uint64(buf[8:]),
		nextPage:      page.ID(binary.LittleEndian.Uint32(buf[16:])),
		nextTID:       logrec.TID(binary.LittleEndian.Uint64(buf[24:])),
	}, nil
}
