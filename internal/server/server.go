// Package server implements the storage server: an EXODUS-Storage-Manager-
// style page server (paper §3.1) with three selectable recovery modes.
//
//   - ModeESM: the baseline ARIES-style scheme. Clients ship log records and
//     then dirty pages; only the log is forced at commit (STEAL/NO-FORCE
//     with ESM's force-to-server-at-commit rule).
//   - ModeREDO: redo-at-server (§3.5). Clients ship log records only; the
//     server applies each record's redo information to its copy of the page,
//     reading the page from the data disk when necessary.
//   - ModeWPL: whole-page logging (§3.4). Clients ship dirty pages and no
//     log records; the server appends whole-page after-images to the log,
//     tracks them in the WPL table, and installs them to their permanent
//     locations after commit.
//
// The server owns the stable data volume, the transaction log, the lock
// manager, and its own buffer pool. Work is reported to a costmodel.Meter
// per session so simulated runs charge the shared server resources.
//
// # Concurrency model (DESIGN.md §9)
//
// Independent sessions run in parallel. There is no global server mutex;
// instead:
//
//   - gate (RWMutex): every session operation holds the read side for its
//     duration; Checkpoint, Restart, Crash and FlushAll hold the write side,
//     so they observe (and the crash-point sweep replays) a fully quiesced
//     server. Lock-manager waits never happen under the gate — page locks
//     are acquired before entering.
//   - The buffer pool is sharded (buffer.Sharded): a page's shard latch
//     protects its frame bytes and that shard's LRU/residency metadata for
//     the duration of one read/modify step. Isolation across operations is
//     the lock manager's job, exactly as page latches vs. locks in ARIES.
//   - The ATT, DPT, WPL table and allocation counters each have a small
//     leaf mutex (attMu, dptMu, wplMu, allocMu). A txn's fields beyond the
//     map entry itself are owned by the session driving it (clients issue
//     requests for one transaction sequentially); quiesced readers get
//     happens-before through the gate.
//   - Stats fields are updated with atomics.
//
// Latch order (outer to inner): gate.R → big (Serialize) → one shard latch
// → attMu → {dptMu | wplMu} → log/store internal locks; allocMu is a leaf
// taken on its own. Never acquire a shard latch while holding one of the
// leaf mutexes, and never hold two shard latches (checkpoint-style paths
// that need all shards run under gate.W, where the pool helpers may latch
// shards in index order).
//
// attMu is more than the ATT map lock: every log append that updates a
// recovery table (a session record's lastLSN chain, a DPT insert, a WPL
// entry or commit marking) happens inside one attMu critical section, and a
// fuzzy checkpoint captures its analysis begin LSN and snapshots all three
// tables inside one attMu section too. That pairing is what makes fuzzy
// checkpoints sound under gate.R: any record with LSN below the captured
// begin LSN has its table updates visible to the snapshot, and any record
// the snapshot missed has LSN at or above it and is re-analyzed by the
// restart scan (DESIGN.md §13).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/costmodel"
	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wal"
)

// Mode selects the server's recovery scheme.
type Mode int

// Recovery modes.
const (
	// ModeESM is the ARIES-based baseline used by PD-ESM/SD-ESM/SL-ESM.
	ModeESM Mode = iota
	// ModeREDO applies client log records at the server (PD-REDO).
	ModeREDO
	// ModeWPL logs whole dirty pages at the server (WPL).
	ModeWPL
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeESM:
		return "ESM"
	case ModeREDO:
		return "REDO"
	case ModeWPL:
		return "WPL"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors returned by the server.
var (
	ErrNoTxn         = errors.New("server: unknown or finished transaction")
	ErrNotLocked     = errors.New("server: page not locked by transaction")
	ErrModeViolation = errors.New("server: operation not valid in this recovery mode")
	// ErrRestarting is returned by maintenance entry points (Checkpoint,
	// Clean) invoked while Restart holds the server: restart takes its own
	// final checkpoint, so the caller's work is already covered.
	ErrRestarting = errors.New("server: restart in progress")
	// ErrStandby is returned for any operation that would append to the log
	// on a hot standby. A standby's log is a byte-exact replica of its
	// primary's stream (internal/repl); a locally generated record would
	// diverge it. Read-only sessions are served; everything else waits for
	// promotion.
	ErrStandby = errors.New("server: standby is read-only until promoted")
	// ErrInDoubt is returned for a unilateral Commit/Abort of a prepared
	// transaction branch: once a branch has voted yes its fate belongs to the
	// coordinator, and only Decide (or restart resolution) may finish it.
	ErrInDoubt = errors.New("server: transaction is prepared (in doubt); awaiting coordinator decision")
)

// Config configures a Server.
type Config struct {
	Mode Mode
	// ShardID / ShardCount place this server in a sharded deployment
	// (internal/shard, DESIGN.md §16). With ShardCount > 1 the server
	// allocates page ids and TIDs in its own residue class — ids ≡ ShardID+1
	// (mod ShardCount) — so the router can derive a page's home shard from
	// its id alone and a coordinator-issued global TID never collides with
	// another shard's local allocation. ShardCount 0 or 1 is the single-node
	// layout (stride 1, unchanged ids).
	ShardID     int
	ShardCount  int
	Store       disk.Store    // stable data volume; NewMemStore if nil
	LogCapacity int           // log bytes; wal.DefaultCapacity if 0
	PoolPages   int           // server buffer pool frames; default 4608 (36 MB)
	PoolShards  int           // buffer pool shards; buffer.DefaultShards if 0
	LockTimeout time.Duration // lock wait bound; lock.DefaultTimeout if 0
	// CheckpointEvery takes a checkpoint after this many commits (0 = 64).
	CheckpointEvery int
	// Log, when non-nil, is adopted instead of a freshly created log. The
	// crash-point sweep uses this to restart a server over the surviving
	// store and log of a crashed instance, as reopening the log disk would.
	Log *wal.Log
	// Serialize reverts to the pre-concurrent behavior: one global mutex
	// around every operation and an inline log force per commit. It exists
	// as the baseline arm of the commit-throughput benchmark.
	Serialize bool
	// GroupCommitDelay tunes group commit. 0 (the default) enables group
	// commit with no extra batching delay: a flush still covers every commit
	// parked while the previous flush was in progress. A positive value
	// makes each group flush wait that long for more committers to join
	// (throughput up, commit latency up). A negative value disables group
	// commit entirely: each commit forces the log inline.
	GroupCommitDelay time.Duration
	// WPLInstallAsync moves committed-page installs to a background
	// goroutine (the paper's §3.4.2 asynchronous installer). Off by
	// default: the crash-point sweep needs installs to happen at
	// deterministic points, and they then run inline at commit.
	WPLInstallAsync bool
	// RedoWorkers is the number of parallel restart-redo workers
	// (0 = GOMAXPROCS, 1 = sequential redo).
	RedoWorkers int
	// PreTruncate, when non-nil, runs before a checkpoint truncates the log,
	// with the head the checkpoint computed. The log archiver (internal/
	// archive) hooks here to drain [Head, newHead) into archive segments
	// before the space is reclaimed; on error the truncation is skipped (the
	// wal archive gate would refuse it anyway) and the checkpoint still
	// succeeds — archiving lag must never fail a commit's piggy-backed
	// checkpoint.
	PreTruncate func(newHead uint64) error
	// PostCommit, when non-nil, runs after each successful commit, outside
	// the quiesce gate and with no locks held. The archiver hooks here for
	// backpressure: when its lag exceeds the configured bound, the committing
	// session drains the archive before proceeding, bounding how far the
	// archive can fall behind the log.
	PostCommit func()
	// RepairPage, when non-nil, rebuilds the current contents of one corrupt
	// page from media beyond the live log. archive.Wire installs
	// backup-plus-archived-log per-page redo here; repair (internal/server/
	// scrub.go) calls it when the live log alone cannot determine the page.
	// Called under a shard latch — implementations must only touch the log
	// and archive media, never server state.
	RepairPage func(pid page.ID) ([]byte, error)
	// ScrubEvery, when positive, runs the background scrubber: every tick it
	// verifies a batch of ScrubPages stored pages against their integrity
	// envelopes and repairs what it finds (internal/server/scrub.go).
	ScrubEvery time.Duration
	// ScrubPages is the per-tick page budget of the background scrubber
	// (DefaultScrubPages if 0).
	ScrubPages int
	// FuzzyCheckpoints switches Checkpoint from sharp (quiesce + flush every
	// dirty page) to ARIES-style fuzzy: the ATT and the DPT (per-page recLSN)
	// are logged under the read side of the gate, no page is flushed, and
	// restart redo begins at min(recLSN). Pair with the page cleaner
	// (CleanerEvery / DirtyPageTarget) so dirty pages still drain and log
	// truncation keeps pace.
	FuzzyCheckpoints bool
	// CleanerEvery, when positive, runs the background page cleaner: every
	// tick it writes home up to CleanerBatch cold dirty pages in recLSN
	// order, enforcing the WAL rule per page. Commits never wait on it.
	CleanerEvery time.Duration
	// CleanerBatch is the per-pass page budget of the cleaner
	// (DefaultCleanerBatch if 0).
	CleanerBatch int
	// DirtyPageTarget bounds restart redo work: the cleaner drains toward
	// this many DPT entries, and a committing session past 2x the target
	// cleans a few pages inline (soft backpressure, high watermark).
	// 0 disables backpressure.
	DirtyPageTarget int
	// CleanerProtect keeps hot pages out of the cleaner: a dirty page
	// referenced within this many buffer-clock ticks of now is skipped.
	// 0 cleans regardless of recency.
	CleanerProtect uint64
	// Standby starts the server as a hot standby: it accepts no client
	// writes, its log and tables are maintained exclusively by
	// Session.ApplyShipped replaying the primary's record stream, and
	// read-only sessions see the replicated state. Session.Promote ends
	// standby mode by running the normal scheme-specific Restart.
	Standby bool
	// CommitAck, when non-nil, runs on the commit path after the commit
	// record is stable locally, with the LSN just past the commit record.
	// Semi-sync replication (internal/repl) hooks here to block the commit
	// until a standby has acknowledged that LSN; because group commit has
	// already batched the force, one standby ack typically covers the whole
	// group. The hook runs under the read side of the gate, so it must never
	// call back into server operations.
	CommitAck func(endLSN uint64)
}

// DefaultPoolPages is 36 MB of 8 KB frames, the paper's server memory.
const DefaultPoolPages = 36 << 20 / page.Size

// superblockPage holds the master record (checkpoint LSN and allocation
// counters); it is never handed to clients.
const superblockPage page.ID = 0

// Stats counts server-side work. Fields are updated with atomics; read them
// through Stats() / ExtendedStats().
type Stats struct {
	LogPagesReceived    int64 // client→server log record pages (ESM/REDO)
	DirtyPagesReceived  int64 // client→server dirty pages (ESM/WPL)
	PagesServed         int64 // server→client page fetches
	DataReads           int64 // data-disk page reads
	DataWrites          int64 // data-disk page writes
	LogRecordsApplied   int64 // REDO applications
	WPLInstalls         int64 // WPL pages installed to their home location
	WPLLogReloads       int64 // WPL pages re-read from the log
	Commits             int64
	Aborts              int64
	Checkpoints         int64
	CheckpointsFailed   int64 // checkpoints abandoned on a disk error (retried later)
	InstallsDeferred    int64 // WPL installs deferred on a disk error (page stays in the WPL table)
	Restarts            int64
	ScrubScanned        int64 // pages verified by the scrubber
	ChecksumFailures    int64 // reads that hit a corrupt page (rot, tear, misdirection)
	PagesRepaired       int64 // corrupt pages rebuilt and written home
	PagesUnrepairable   int64 // corrupt pages no source could rebuild
	CleanerPages        int64 // dirty pages written home by the cleaner
	CleanerPasses       int64 // cleaner passes (ticks + backpressure batches)
	CleanerHotSkips     int64 // cleaner candidates skipped as recently used
	CkptStallNs         int64 // cumulative wall time commits were excluded by sharp checkpoints
	TwoPCPrepares       int64 // participant branches prepared (forced PREPARE records)
	TwoPCPresumedAborts int64 // resolution requests answered "no decision" (presumed abort)
	TwoPCResolutions    int64 // recovery-resolution round-trips served (ResolveInDoubt calls)
}

// StatsX extends Stats with the concurrency counters introduced with group
// commit and sharded latching; qsctl stats reports it from a live daemon.
type StatsX struct {
	Stats
	GroupCommit     wal.GroupCommitStats
	LogForces       int64   // stable log writes (each group flush is one)
	LogPagesWritten int64   // cumulative 8 KB log pages written
	PoolHits        int64   // buffer pool hits
	PoolMisses      int64   // buffer pool misses
	LatchContention int64   // shard-latch acquisitions that found the latch held
	LockWaits       int64   // lock-manager requests that blocked on a conflict
	RedoWorkers     int     // workers used by the most recent restart redo
	RedoApplied     []int64 // records applied per redo worker (utilization)
	DirtyPages      int64   // current DPT size (pages restart redo would visit)
	// RedoDistanceBytes is the stable log span a crash right now would
	// rescan for redo: StableEnd - min(recLSN) over the DPT (0 when clean).
	// The cleaner's dirty-page target exists to bound this number.
	RedoDistanceBytes int64
}

// txn is an active-transaction-table entry. The att map itself is guarded
// by attMu; a txn's fields are owned by the single session driving the
// transaction (clients issue a transaction's requests sequentially), with
// quiesced paths (checkpoint, restart) reading them under the write side of
// the gate.
type txn struct {
	tid      logrec.TID
	lastLSN  uint64 // most recent log record (undo chain head); NoLSN if none
	firstLSN uint64 // oldest log record; NoLSN if none
	// pageLSN tracks the last LSN assigned to each page this transaction
	// updated, used to stamp dirty pages on arrival (log records for a page
	// always precede the page itself).
	pageLSN map[page.ID]uint64
	// wplPages lists pages logged for this transaction under WPL, in order.
	wplPages []page.ID
	// 2PC branch state (DESIGN.md §16). A prepared branch has voted yes: its
	// PREPARE record is forced, its locks are pinned, and only a coordinator
	// decision (or restart resolution) may finish it. coord/parts echo the
	// PREPARE payload; prepLSN locates it; prepTime feeds in-doubt age
	// reporting only.
	prepared bool
	coord    int
	parts    []int
	prepLSN  uint64
	prepTime time.Time
}

// dptEntry is a dirty page table entry. rec is the recLSN: the oldest log
// record whose effect may not yet be on the stored page, where restart redo
// for this page must begin. newest is the newest logged record for the page;
// a flushed image retires the entry only when its pageLSN has caught up to
// newest (under ESM a page's records can outrun its shipped image, and an
// image older than newest leaves redo work outstanding).
type dptEntry struct {
	rec    uint64
	newest uint64
}

// wplEntry is a WPL-table entry (paper §3.4.2). Guarded by wplMu.
type wplEntry struct {
	pid       page.ID
	lsn       uint64 // location of the page image in the log
	tid       logrec.TID
	committed bool
	// commitEnd is the end LSN of the committing transaction's commit record,
	// set with committed. An install must not reach the permanent location
	// before the commit record is stable (the no-steal discipline WPL
	// recovery depends on); installers force the log when commitEnd is still
	// beyond the stable end.
	commitEnd uint64
	prev      *wplEntry // previously logged copy still needed for recovery
}

// installJob asks the background installer to install e if it is still the
// committed head for pid in generation gen.
type installJob struct {
	pid page.ID
	e   *wplEntry
	gen uint64
}

// Server is the storage server. Its methods are invoked through Sessions.
type Server struct {
	cfg   Config
	store disk.Store
	log   *wal.Log
	locks *lock.Manager

	// gate quiesces the server: see the package comment's concurrency model.
	gate sync.RWMutex
	big  sync.Mutex // Serialize mode only: the legacy global mutex

	pool *buffer.Sharded

	attMu sync.Mutex
	att   map[logrec.TID]*txn

	// decMu guards the coordinator's decided-transactions map: commit
	// decisions whose DECIDE record is stable but whose participants have not
	// all confirmed (the presumed-abort "recovery table"). An abort decision
	// is never entered — absence IS the abort answer. decMu is a leaf like
	// attMu; the decision append nests it inside an attMu section (logDecision)
	// so a fuzzy checkpoint's snapshot cannot miss a decision it will not
	// re-scan.
	decMu   sync.Mutex
	decided map[logrec.TID]decidedTxn

	dptMu    sync.Mutex
	dpt      map[page.ID]dptEntry // dirty page table (ESM/REDO)
	cleaning map[page.ID]bool     // pages claimed by an in-flight cleanOne

	wplMu  sync.Mutex
	wpl    map[page.ID]*wplEntry
	wplGen uint64 // bumped at crash/restart so stale async installs are dropped

	allocMu  sync.Mutex
	nextTID  logrec.TID
	nextPage page.ID
	roTID    logrec.TID // next standby read-only TID (standbyTIDBase range)
	commits  int        // since last checkpoint

	stats Stats // atomics

	installCh chan installJob // non-nil iff WPLInstallAsync
	installWG sync.WaitGroup
	closeOnce sync.Once

	scrubMu     sync.Mutex
	scrubCursor page.ID       // next page the paced scrubber will verify
	scrubStop   chan struct{} // non-nil iff ScrubEvery > 0
	scrubWG     sync.WaitGroup

	// ckptMu serializes fuzzy checkpointers (sharp ones serialize on gate.W).
	// Tried, never waited on: a checkpoint finding one in flight skips.
	ckptMu      sync.Mutex
	cleanerStop chan struct{} // non-nil iff CleanerEvery > 0
	cleanerWG   sync.WaitGroup

	// restarting is set for the duration of Restart (which holds gate.W).
	// Read by maintenance entry points before they touch the gate, so a
	// checkpoint or cleaner pass racing a restart fails fast with
	// ErrRestarting instead of deadlocking behind the write side.
	restarting atomic.Bool

	// standby is set while the server is a replication standby (Config.
	// Standby, cleared by Promote): write entry points fail fast with
	// ErrStandby and local commits/aborts of read-only sessions finish
	// without log appends.
	standby atomic.Bool

	// redoApplied records the most recent restart's per-worker apply counts;
	// written under gate.W, read under gate.R (ExtendedStats).
	redoApplied []int64
}

// New creates a server and formats the volume if it is empty. If the volume
// already contains data (a reopened file store), call Restart to recover.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = disk.NewMemStore()
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = DefaultPoolPages
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 64
	}
	if cfg.Log == nil {
		cfg.Log = wal.New(cfg.LogCapacity)
	}
	s := &Server{
		cfg:      cfg,
		store:    cfg.Store,
		log:      cfg.Log,
		locks:    lock.NewManager(cfg.LockTimeout),
		pool:     buffer.NewSharded(cfg.PoolPages, cfg.PoolShards),
		att:      make(map[logrec.TID]*txn),
		decided:  make(map[logrec.TID]decidedTxn),
		dpt:      make(map[page.ID]dptEntry),
		cleaning: make(map[page.ID]bool),
		wpl:      make(map[page.ID]*wplEntry),
		nextTID:  1,
		nextPage: 1,
	}
	if cfg.ShardCount > 1 {
		// Residue-class allocation: shard i hands out ids ≡ i+1 (mod N), so
		// page 0 (the superblock) belongs to no shard and shardOf(pid) is a
		// pure function of the id.
		s.nextTID = logrec.TID(cfg.ShardID + 1)
		s.nextPage = page.ID(cfg.ShardID + 1)
	}
	s.standby.Store(cfg.Standby)
	if cfg.GroupCommitDelay > 0 {
		s.log.SetGroupCommitDelay(cfg.GroupCommitDelay)
	}
	if cfg.WPLInstallAsync && cfg.Mode == ModeWPL {
		s.installCh = make(chan installJob, 256)
		s.installWG.Add(1)
		go s.installWorker()
	}
	if cfg.ScrubEvery > 0 {
		batch := cfg.ScrubPages
		if batch <= 0 {
			batch = DefaultScrubPages
		}
		s.scrubStop = make(chan struct{})
		s.scrubWG.Add(1)
		go s.scrubWorker(cfg.ScrubEvery, batch)
	}
	if cfg.CleanerEvery > 0 {
		s.cleanerStop = make(chan struct{})
		s.cleanerWG.Add(1)
		go s.cleanerWorker(cfg.CleanerEvery, s.cleanerBatch())
	}
	return s
}

// Close stops the background installer and scrubber, if any. Safe to call
// more than once; a closed server still serves requests (installs just run
// inline again).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.cleanerStop != nil {
			close(s.cleanerStop)
			s.cleanerWG.Wait()
		}
		if s.scrubStop != nil {
			close(s.scrubStop)
			s.scrubWG.Wait()
		}
		if s.installCh != nil {
			ch := s.installCh
			s.gate.Lock()
			s.installCh = nil
			s.gate.Unlock()
			close(ch)
			s.installWG.Wait()
		}
	})
}

// Mode returns the server's recovery mode.
func (s *Server) Mode() Mode { return s.cfg.Mode }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	ld := func(p *int64) int64 { return atomic.LoadInt64(p) }
	return Stats{
		LogPagesReceived:    ld(&s.stats.LogPagesReceived),
		DirtyPagesReceived:  ld(&s.stats.DirtyPagesReceived),
		PagesServed:         ld(&s.stats.PagesServed),
		DataReads:           ld(&s.stats.DataReads),
		DataWrites:          ld(&s.stats.DataWrites),
		LogRecordsApplied:   ld(&s.stats.LogRecordsApplied),
		WPLInstalls:         ld(&s.stats.WPLInstalls),
		WPLLogReloads:       ld(&s.stats.WPLLogReloads),
		Commits:             ld(&s.stats.Commits),
		Aborts:              ld(&s.stats.Aborts),
		Checkpoints:         ld(&s.stats.Checkpoints),
		CheckpointsFailed:   ld(&s.stats.CheckpointsFailed),
		InstallsDeferred:    ld(&s.stats.InstallsDeferred),
		Restarts:            ld(&s.stats.Restarts),
		ScrubScanned:        ld(&s.stats.ScrubScanned),
		ChecksumFailures:    ld(&s.stats.ChecksumFailures),
		PagesRepaired:       ld(&s.stats.PagesRepaired),
		PagesUnrepairable:   ld(&s.stats.PagesUnrepairable),
		CleanerPages:        ld(&s.stats.CleanerPages),
		CleanerPasses:       ld(&s.stats.CleanerPasses),
		CleanerHotSkips:     ld(&s.stats.CleanerHotSkips),
		CkptStallNs:         ld(&s.stats.CkptStallNs),
		TwoPCPrepares:       ld(&s.stats.TwoPCPrepares),
		TwoPCPresumedAborts: ld(&s.stats.TwoPCPresumedAborts),
		TwoPCResolutions:    ld(&s.stats.TwoPCResolutions),
	}
}

// ExtendedStats returns the full observability snapshot.
func (s *Server) ExtendedStats() StatsX {
	x := StatsX{
		Stats:           s.Stats(),
		GroupCommit:     s.log.GroupStats(),
		LogForces:       s.log.Forces(),
		LogPagesWritten: s.log.PagesWritten(),
		PoolHits:        s.pool.Hits(),
		PoolMisses:      s.pool.Misses(),
		LatchContention: s.pool.Contention(),
		LockWaits:       s.locks.Waits(),
	}
	s.gate.RLock()
	x.RedoWorkers = len(s.redoApplied)
	x.RedoApplied = append([]int64(nil), s.redoApplied...)
	s.gate.RUnlock()
	s.dptMu.Lock()
	x.DirtyPages = int64(len(s.dpt))
	var minRec uint64
	for _, e := range s.dpt {
		if minRec == 0 || e.rec < minRec {
			minRec = e.rec
		}
	}
	s.dptMu.Unlock()
	if minRec > 0 {
		if end := s.log.StableEnd(); end > minRec {
			x.RedoDistanceBytes = int64(end - minRec)
		}
	}
	return x
}

// Log exposes the log manager for tests and tools.
func (s *Server) Log() *wal.Log { return s.log }

// enter takes the per-operation (read) side of the quiesce gate — and, in
// Serialize mode, the legacy global mutex. The returned func releases both.
func (s *Server) enter() func() {
	s.gate.RLock()
	if s.cfg.Serialize {
		s.big.Lock()
		return func() {
			s.big.Unlock()
			s.gate.RUnlock()
		}
	}
	return s.gate.RUnlock
}

// stride is the allocation step for page ids and TIDs: ShardCount in a
// sharded deployment (each shard stays in its residue class), 1 otherwise.
func (s *Server) stride() uint64 {
	if s.cfg.ShardCount > 1 {
		return uint64(s.cfg.ShardCount)
	}
	return 1
}

// lookupTxn finds tid's ATT entry.
func (s *Server) lookupTxn(tid logrec.TID) (*txn, bool) {
	s.attMu.Lock()
	defer s.attMu.Unlock()
	t, ok := s.att[tid]
	return t, ok
}

// Session is one client's connection; server-side costs are charged to its
// meter so the simulation attributes queueing correctly.
type Session struct {
	s *Server
	m costmodel.Meter
	p *costmodel.Params
}

// NewSession opens a session charging work to m with service times from p.
func (s *Server) NewSession(m costmodel.Meter, p *costmodel.Params) *Session {
	if m == nil {
		m = costmodel.NopMeter{}
	}
	if p == nil {
		p = costmodel.Default1995()
	}
	return &Session{s: s, m: m, p: p}
}

// meter is sn.m, nil-safe: internal paths with no session (parallel redo
// workers, the background installer) pass a nil *Session and charge nothing.
func (sn *Session) meter() costmodel.Meter {
	if sn == nil {
		return costmodel.NopMeter{}
	}
	return sn.m
}

// params is sn.p, nil-safe.
func (sn *Session) params() *costmodel.Params {
	if sn == nil {
		return costmodel.Default1995()
	}
	return sn.p
}

// Begin starts a transaction and returns its id.
func (sn *Session) Begin() logrec.TID {
	s := sn.s
	defer s.enter()()
	s.allocMu.Lock()
	var tid logrec.TID
	if s.standby.Load() {
		// Standby read-only sessions draw TIDs from a disjoint high range:
		// the low range belongs to the primary's transactions arriving in
		// the replicated stream, and a collision would chain shipped records
		// onto a local reader's ATT entry. nextTID itself stays untouched —
		// it mirrors the primary through checkpoint records and Restart.
		if s.roTID == 0 {
			s.roTID = standbyTIDBase
		}
		tid = s.roTID
		s.roTID++
	} else {
		tid = s.nextTID
		s.nextTID += logrec.TID(s.stride())
	}
	s.allocMu.Unlock()
	t := &txn{
		tid:      tid,
		lastLSN:  logrec.NoLSN,
		firstLSN: logrec.NoLSN,
		pageLSN:  make(map[page.ID]uint64),
	}
	s.attMu.Lock()
	s.att[tid] = t
	s.attMu.Unlock()
	return tid
}

// Lock acquires a page lock on behalf of tid, blocking until granted. Lock
// waits do not hold the quiesce gate (a parked waiter must not block a
// checkpoint).
func (sn *Session) Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error {
	sn.m.ServerCompute(sn.p.LockReqCPU)
	return sn.s.locks.Lock(tid, pid, mode)
}

// AllocPage reserves a fresh page id for tid. The client formats the page
// and ships it (or its image) with its recovery scheme's normal machinery.
func (sn *Session) AllocPage(tid logrec.TID) (page.ID, error) {
	s := sn.s
	if s.standby.Load() {
		return 0, ErrStandby
	}
	exit := s.enter()
	if _, ok := s.lookupTxn(tid); !ok {
		exit()
		return 0, fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	s.allocMu.Lock()
	pid := s.nextPage
	s.nextPage += page.ID(s.stride())
	s.allocMu.Unlock()
	exit()
	// New pages are implicitly exclusive to their creator.
	if err := s.locks.Lock(tid, pid, lock.Exclusive); err != nil {
		return 0, err
	}
	return pid, nil
}

// ReadPage returns the contents of pid after acquiring the requested lock.
// The lock is acquired before entering the gate, so a conflict wait never
// delays a checkpoint.
func (sn *Session) ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error) {
	s := sn.s
	if _, ok := s.lookupTxn(tid); !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	sn.m.ServerCompute(sn.p.LockReqCPU)
	if err := s.locks.Lock(tid, pid, mode); err != nil {
		return nil, err
	}
	defer s.enter()()
	sn.m.ServerCompute(sn.p.ServerPage)
	sh := s.pool.Lock(pid)
	defer sh.Unlock()
	f, err := s.fetchShardLocked(sn, sh, pid, true)
	if err != nil {
		return nil, err
	}
	out := make([]byte, page.Size)
	copy(out, f.Bytes())
	atomic.AddInt64(&s.stats.PagesServed, 1)
	return out, nil
}

// fetchShardLocked brings pid into its pool shard, reading from the WPL log
// copy or the data volume as appropriate. Caller holds pid's shard latch. If
// mustExist is false, a missing page is created empty (restart redo path).
func (s *Server) fetchShardLocked(sn *Session, sh *buffer.PoolShard, pid page.ID, mustExist bool) (*buffer.Frame, error) {
	if f := sh.Get(pid); f != nil {
		return f, nil
	}
	var wplLSN uint64
	haveWPL := false
	if s.cfg.Mode == ModeWPL {
		s.wplMu.Lock()
		if e := s.wpl[pid]; e != nil {
			wplLSN, haveWPL = e.lsn, true
		}
		s.wplMu.Unlock()
	}
	var buf [page.Size]byte
	if haveWPL {
		// The newest logged copy is the current version (paper §3.4.2:
		// replaced dirty pages are re-read from the log).
		rec, err := s.log.ReadAt(wplLSN)
		if err != nil {
			return nil, fmt.Errorf("server: WPL reload of %v: %w", pid, err)
		}
		copy(buf[:], rec.After)
		sn.meter().LogRead(1)
		atomic.AddInt64(&s.stats.WPLLogReloads, 1)
	} else {
		err := s.store.ReadPage(pid, buf[:])
		switch {
		case errors.Is(err, disk.ErrNotFound) && !mustExist:
			page.Wrap(buf[:]).Init(pid)
		case errors.Is(err, disk.ErrCorruptPage):
			// Rot, a torn write, or a misdirected write under the stored
			// copy. Repair in place before serving or redoing anything;
			// unrepairable pages fail loudly and the damaged bytes are
			// never served. During Restart repair cannot run here — redo
			// fetches from inside a log scan, which holds the log mutex
			// repair needs — so recovery relies on verifyVolumeQuiesced
			// having already healed the volume and treats fresh damage as
			// fatal rather than deadlocking.
			atomic.AddInt64(&s.stats.ChecksumFailures, 1)
			if s.restarting.Load() {
				return nil, err
			}
			if rerr := s.repairShardLocked(sn, sh, pid, err, buf[:]); rerr != nil {
				return nil, rerr
			}
		case err != nil:
			return nil, err
		}
		sn.meter().DataRead(1)
		atomic.AddInt64(&s.stats.DataReads, 1)
	}
	if err := s.makeRoomShardLocked(sn, sh); err != nil {
		return nil, err
	}
	return sh.Insert(pid, buf[:])
}

// makeRoomShardLocked evicts the shard's LRU frame if the shard is full,
// handling dirty victims per the recovery mode. Caller holds the shard latch.
func (s *Server) makeRoomShardLocked(sn *Session, sh *buffer.PoolShard) error {
	if !sh.Full() {
		return nil
	}
	v := sh.Victim()
	if v == nil {
		return fmt.Errorf("%w: server pool wedged", buffer.ErrNoFrame)
	}
	pid := v.PID()
	if v.Dirty() {
		if err := s.flushVictimShardLocked(sn, sh, v); err != nil {
			return err
		}
	}
	return sh.Remove(pid)
}

// flushVictimShardLocked handles a dirty page leaving its shard.
//
//qslint:allow latch-io: the write-ahead rule REQUIRES forcing the log up to the victim's pageLSN before its image leaves under the shard latch; releasing mid-eviction would let the page mutate under the evictor
func (s *Server) flushVictimShardLocked(sn *Session, sh *buffer.PoolShard, v *buffer.Frame) error {
	pid := v.PID()
	if s.cfg.Mode == ModeWPL {
		s.wplMu.Lock()
		defer s.wplMu.Unlock()
		e := s.wpl[pid]
		if e == nil || !e.committed {
			// Uncommitted logged copy (or none): the permanent location must
			// not be overwritten; the log holds the current version (§3.4.2).
			return nil
		}
		// Committed but not yet installed: install now. If the data disk
		// rejects the write (injected or real), the committed image still
		// lives in the log and the WPL table entry is retained, so reads
		// reload it from there until a later install succeeds — degrade,
		// don't fail the eviction.
		if err := s.installWPLLocked(sn, sh, e); err != nil {
			atomic.AddInt64(&s.stats.InstallsDeferred, 1)
		}
		return nil
	}
	// ESM/REDO: write-ahead rule — force the log up to the page's LSN first.
	pg := page.Wrap(v.Bytes())
	if pg.LSN() != 0 && pg.LSN() >= s.log.StableEnd() {
		sn.meter().LogWrite(s.log.Force())
	}
	if err := s.store.WritePage(pid, v.Bytes()); err != nil {
		return err
	}
	sn.meter().DataWriteAsync(1)
	atomic.AddInt64(&s.stats.DataWrites, 1)
	s.retireDPT(pid, pg.LSN())
	return nil
}

// retireDPT drops pid's dirty-page-table entry if the image just written
// home (stamped written) covers every logged record for the page. An image
// older than the newest logged record leaves the entry — with its recLSN —
// in place, so redo and the cleaner still know work is outstanding.
func (s *Server) retireDPT(pid page.ID, written uint64) {
	s.dptMu.Lock()
	if e, ok := s.dpt[pid]; ok && written >= e.newest {
		delete(s.dpt, pid)
	}
	s.dptMu.Unlock()
}

// ShipLog delivers a batch of client-generated log records (one "log page").
// The server assigns LSNs, chains PrevLSN, and under REDO applies each
// record to its copy of the page. Not valid under WPL.
func (sn *Session) ShipLog(tid logrec.TID, data []byte) error {
	s := sn.s
	if s.cfg.Mode == ModeWPL {
		return fmt.Errorf("%w: ShipLog under WPL", ErrModeViolation)
	}
	if s.standby.Load() {
		return ErrStandby
	}
	recs, err := logrec.DecodeAll(data)
	if err != nil {
		return fmt.Errorf("server: bad log page from %v: %w", tid, err)
	}
	defer s.enter()()
	t, ok := s.lookupTxn(tid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	atomic.AddInt64(&s.stats.LogPagesReceived, 1)
	sn.m.ServerCompute(sn.p.ServerPage)
	for _, r := range recs {
		if r.Type != logrec.TypeUpdate && r.Type != logrec.TypePageImage {
			return fmt.Errorf("server: client shipped %v record", r.Type)
		}
		r.TID = tid
		r.PrevLSN = t.lastLSN
		// Append and table updates form one attMu critical section: a fuzzy
		// checkpoint snapshotting under attMu either sees this record's ATT
		// chain and DPT entry, or sees a begin LSN at or below it and
		// re-analyzes it from the log (see the package comment).
		s.attMu.Lock()
		lsn, err := s.log.Append(r)
		if err != nil {
			s.attMu.Unlock()
			return err
		}
		t.lastLSN = lsn
		if t.firstLSN == logrec.NoLSN {
			t.firstLSN = lsn
		}
		t.pageLSN[r.Page] = lsn
		s.dptMu.Lock()
		e, ok := s.dpt[r.Page]
		if !ok {
			e = dptEntry{rec: lsn}
		}
		if lsn > e.newest {
			e.newest = lsn
		}
		s.dpt[r.Page] = e
		s.dptMu.Unlock()
		s.attMu.Unlock()
		if s.cfg.Mode == ModeREDO {
			if err := s.apply(sn, r); err != nil {
				return err
			}
		}
	}
	// The server writes filled log pages to disk as they arrive, without
	// blocking the client; the commit force queues behind this backlog.
	sn.m.LogWriteAsync(s.log.ForceFull())
	return nil
}

// apply applies a log record's redo information to the server's copy of the
// page (REDO mode and restart redo), latching its shard.
func (s *Server) apply(sn *Session, r *logrec.Record) error {
	sh := s.pool.Lock(r.Page)
	defer sh.Unlock()
	return s.applyShardLocked(sn, sh, r)
}

// applyShardLocked is apply with pid's shard latch already held.
func (s *Server) applyShardLocked(sn *Session, sh *buffer.PoolShard, r *logrec.Record) error {
	f, err := s.fetchShardLocked(sn, sh, r.Page, false)
	if err != nil {
		return err
	}
	pg := page.Wrap(f.Bytes())
	switch r.Type {
	case logrec.TypeUpdate, logrec.TypeCLR:
		copy(f.Bytes()[r.Off:int(r.Off)+len(r.After)], r.After)
	case logrec.TypePageImage:
		copy(f.Bytes(), r.After)
	default:
		return fmt.Errorf("server: cannot apply %v", r.Type)
	}
	pg.SetLSN(r.LSN)
	sh.MarkDirty(r.Page)
	sn.meter().ServerCompute(sn.params().ServerApply)
	atomic.AddInt64(&s.stats.LogRecordsApplied, 1)
	return nil
}

// ShipPage delivers a dirty page. Under ESM the page is cached and stamped
// with its last assigned LSN; under WPL it is appended to the log and
// tracked in the WPL table. Not valid under REDO (clients never ship pages).
func (sn *Session) ShipPage(tid logrec.TID, pid page.ID, data []byte) error {
	s := sn.s
	if s.cfg.Mode == ModeREDO {
		return fmt.Errorf("%w: ShipPage under REDO", ErrModeViolation)
	}
	if s.standby.Load() {
		return ErrStandby
	}
	if len(data) != page.Size {
		return fmt.Errorf("server: shipped page is %d bytes", len(data))
	}
	if m, ok := s.locks.Holds(tid, pid); !ok || m != lock.Exclusive {
		return fmt.Errorf("%w: %v ships %v", ErrNotLocked, tid, pid)
	}
	defer s.enter()()
	t, ok := s.lookupTxn(tid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	atomic.AddInt64(&s.stats.DirtyPagesReceived, 1)
	sn.m.ServerCompute(sn.p.ServerPage)
	if s.cfg.Mode == ModeWPL {
		return s.wplShip(sn, t, pid, data)
	}
	// ESM: the log records for this page have already arrived; stamp the
	// page with the last LSN assigned for it so pageLSN-conditional redo is
	// sound.
	sh := s.pool.Lock(pid)
	defer sh.Unlock()
	if err := s.makeRoomShardLocked(sn, sh); err != nil {
		return err
	}
	f := sh.Get(pid)
	if f == nil {
		var err error
		f, err = sh.Insert(pid, data)
		if err != nil {
			return err
		}
	} else {
		copy(f.Bytes(), data)
	}
	if lsn, ok := t.pageLSN[pid]; ok {
		page.Wrap(f.Bytes()).SetLSN(lsn)
		// Usually a no-op: ShipLog inserted the entry when it appended the
		// records. If the cleaner retired it in between (the disk image had
		// caught up), the arriving image re-dirties the frame at the same
		// LSN, so reopen the entry conservatively at that LSN.
		s.dptMu.Lock()
		e, indpt := s.dpt[pid]
		if !indpt {
			e = dptEntry{rec: lsn}
		}
		if lsn > e.newest {
			e.newest = lsn
		}
		s.dpt[pid] = e
		s.dptMu.Unlock()
	}
	sh.MarkDirty(pid)
	return nil
}

// wplShip appends the page image to the log and updates the WPL table. The
// append, the ATT chain update and the table insert form one attMu critical
// section so a fuzzy checkpoint's snapshot cannot miss a copy it will not
// re-scan (see the package comment).
func (s *Server) wplShip(sn *Session, t *txn, pid page.ID, data []byte) error {
	r := logrec.NewPageImage(t.tid, pid, data)
	r.PrevLSN = t.lastLSN
	s.attMu.Lock()
	lsn, err := s.log.Append(r)
	if err != nil {
		s.attMu.Unlock()
		return err
	}
	t.lastLSN = lsn
	if t.firstLSN == logrec.NoLSN {
		t.firstLSN = lsn
	}
	t.wplPages = append(t.wplPages, pid)
	s.wplMu.Lock()
	s.wpl[pid] = &wplEntry{pid: pid, lsn: lsn, tid: t.tid, prev: s.wpl[pid]}
	s.wplMu.Unlock()
	s.attMu.Unlock()
	sn.m.LogWriteAsync(s.log.ForceFull())
	// Cache the copy; the permanent location is untouched until install.
	sh := s.pool.Lock(pid)
	defer sh.Unlock()
	if err := s.makeRoomShardLocked(sn, sh); err != nil {
		return err
	}
	if f := sh.Get(pid); f != nil {
		copy(f.Bytes(), data)
		sh.MarkDirty(pid)
	} else if f, err := sh.Insert(pid, data); err != nil {
		return err
	} else {
		sh.MarkDirty(f.PID())
	}
	return nil
}

// Commit commits tid: the commit record and everything before it is made
// stable — via the group-commit flusher unless group commit is disabled —
// then locks are released. Under WPL the transaction's logged pages become
// installable and are installed (inline, or by the background installer).
func (sn *Session) Commit(tid logrec.TID) error {
	s := sn.s
	exit := s.enter()
	t, ok := s.lookupTxn(tid)
	if !ok {
		exit()
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	if s.standby.Load() {
		if t.lastLSN != logrec.NoLSN {
			// A replicated transaction: its fate is the primary's to decide,
			// through the shipped stream — never a local client's.
			exit()
			return ErrStandby
		}
		// Read-only standby session: nothing was logged (writes are refused),
		// so finish without appending — a standby-side commit record would
		// diverge the replicated log from the primary's byte stream.
		s.attMu.Lock()
		delete(s.att, tid)
		s.attMu.Unlock()
		exit()
		s.locks.ReleaseAll(tid)
		return nil
	}
	if t.prepared {
		// A prepared branch's fate belongs to the coordinator. Decide(true)
		// clears the flag (after the decision is stable) before re-entering
		// here.
		exit()
		return fmt.Errorf("%w: %v", ErrInDoubt, tid)
	}
	c := logrec.NewCommit(tid)
	c.PrevLSN = t.lastLSN
	// The commit append, the ATT chain update and (under WPL) the committed
	// marking form one attMu critical section: a fuzzy checkpoint snapshot
	// that catches this transaction before its ATT delete sees lastLSN
	// pointing at the commit record (restart then knows it is no loser), and
	// a WPL snapshot sees its copies marked. Only the append is inside —
	// the force below can wait on the group-commit flusher.
	s.attMu.Lock()
	if _, err := s.log.Append(c); err != nil {
		s.attMu.Unlock()
		exit()
		return err
	}
	t.lastLSN = c.LSN
	if s.cfg.Mode == ModeWPL {
		commitEnd := c.LSN + uint64(c.EncodedSize())
		s.wplMu.Lock()
		for _, pid := range t.wplPages {
			for e := s.wpl[pid]; e != nil; e = e.prev {
				if e.tid == tid {
					e.committed = true
					e.commitEnd = commitEnd
				}
			}
		}
		s.wplMu.Unlock()
	}
	s.attMu.Unlock()
	if s.cfg.Serialize || s.cfg.GroupCommitDelay < 0 {
		sn.m.LogWrite(s.log.Force())
	} else {
		// Park until a group flush covers the commit record; the returned
		// page count is this committer's share of the group's one write.
		sn.m.LogWrite(s.log.CommitWait(c.LSN + uint64(c.EncodedSize())))
	}
	if s.cfg.CommitAck != nil {
		// Semi-sync replication: the commit record is stable locally; now
		// wait for a standby to acknowledge the LSN just past it (the shipper
		// degrades to async on timeout, so this is bounded). Group commit has
		// already batched the force, so one ack usually covers the group.
		s.cfg.CommitAck(c.LSN + uint64(c.EncodedSize()))
	}
	atomic.AddInt64(&s.stats.Commits, 1)
	if s.cfg.Mode == ModeWPL {
		s.wplCommit(sn, t)
	}
	s.attMu.Lock()
	delete(s.att, tid)
	s.attMu.Unlock()
	s.allocMu.Lock()
	s.commits++
	// Checkpoint on schedule, or early when the log is filling (whole-page
	// logging can write tens of MB per transaction).
	due := s.commits >= s.cfg.CheckpointEvery || s.log.Used() > s.log.Capacity()/2
	if due {
		s.commits = 0
	}
	s.allocMu.Unlock()
	exit()
	s.locks.ReleaseAll(tid)
	// Soft backpressure: commits never wait on the cleaner, but past the
	// high watermark (2x the dirty-page target) the committer cleans a few
	// pages inline so a write-heavy load cannot outrun the cleaner and grow
	// restart redo without bound. The inline quantum is deliberately small —
	// a commit dirties at most a handful of pages, so paying a comparable
	// handful back keeps the pool draining collectively without turning the
	// watermark into a stop-the-world flush on the commit path.
	if s.cfg.DirtyPageTarget > 0 {
		s.dptMu.Lock()
		backlog := len(s.dpt)
		s.dptMu.Unlock()
		if excess := backlog - 2*s.cfg.DirtyPageTarget; excess > 0 {
			quantum := backpressureQuantum
			if excess < quantum {
				quantum = excess
			}
			// Maintenance: a disk error here resurfaces on the eviction or
			// checkpoint path; the commit itself is already durable.
			_, _ = sn.Clean(quantum)
		}
	}
	if due {
		if err := sn.Checkpoint(); err != nil {
			// The commit record is forced; the transaction is durable. A
			// checkpoint is maintenance — on a disk error (injected or real)
			// abandon it and let a later commit retry, rather than reporting
			// a failed commit for a committed transaction.
			atomic.AddInt64(&s.stats.CheckpointsFailed, 1)
		}
	}
	if s.cfg.PostCommit != nil {
		s.cfg.PostCommit()
	}
	return nil
}

// wplCommit installs the transaction's logged pages whose entries are chain
// heads (the asynchronous installer of §3.4.2 — inline here unless
// Config.WPLInstallAsync hands the work to the background goroutine). The
// committed marking itself happened with the commit record's append, inside
// Commit's attMu section.
func (s *Server) wplCommit(sn *Session, t *txn) {
	for _, pid := range t.wplPages {
		s.wplMu.Lock()
		head := s.wpl[pid]
		mine := head != nil && head.tid == t.tid
		gen := s.wplGen
		s.wplMu.Unlock()
		if !mine {
			continue
		}
		// Newest copy is ours and now committed: install it (dropping the
		// whole chain — older copies are obsolete).
		if s.installCh != nil {
			select {
			case s.installCh <- installJob{pid: pid, e: head, gen: gen}:
				continue
			default:
				// Installer backlogged: fall through and install inline
				// rather than block the commit path on it.
			}
		}
		s.installHead(sn, pid, head, gen)
	}
}

// installWorker is the background WPL installer: one goroutine draining
// installCh, holding the read side of the gate per job so checkpoint/crash
// quiesce it.
func (s *Server) installWorker() {
	defer s.installWG.Done()
	for job := range s.installCh {
		s.gate.RLock()
		s.installHead(nil, job.pid, job.e, job.gen)
		s.gate.RUnlock()
	}
}

// installHead installs e to pid's permanent location if it is still the
// committed chain head of generation gen (a crash/restart or a newer copy
// makes the job stale — validated under wplMu before any write). Install
// failures degrade: the entry is retained and retried at eviction/restart.
func (s *Server) installHead(sn *Session, pid page.ID, e *wplEntry, gen uint64) {
	sh := s.pool.Lock(pid)
	defer sh.Unlock()
	s.wplMu.Lock()
	defer s.wplMu.Unlock()
	if s.wplGen != gen || s.wpl[pid] != e || !e.committed {
		return
	}
	if err := s.installWPLLocked(sn, sh, e); err != nil {
		atomic.AddInt64(&s.stats.InstallsDeferred, 1)
	}
}

// installWPLLocked writes the committed head copy e to its permanent
// location and removes its table entry. Caller holds e.pid's shard latch and
// wplMu, and has validated e == s.wpl[e.pid] && e.committed.
//
//qslint:allow latch-io: installing a logged copy must force its commit record and write the store under the shard latch + wplMu — the WPL table entry and the permanent location have to change atomically against readers
func (s *Server) installWPLLocked(sn *Session, sh *buffer.PoolShard, e *wplEntry) error {
	if e.commitEnd > s.log.StableEnd() {
		// The committed marking is applied with the commit record's append,
		// before the force — an evictor can get here while the committer is
		// still parked in the group-commit flusher. The permanent location
		// must not see the copy before its commit record is stable.
		sn.meter().LogWrite(s.log.Force())
	}
	var img []byte
	cached := sh.Peek(e.pid)
	if cached != nil {
		img = cached.Bytes() // "marked as read" optimization: cached at commit
	} else {
		rec, err := s.log.ReadAt(e.lsn)
		if err != nil {
			return fmt.Errorf("server: WPL install of %v: %w", e.pid, err)
		}
		img = rec.After
		sn.meter().LogReadAsync(1)
		atomic.AddInt64(&s.stats.WPLLogReloads, 1)
	}
	if err := s.store.WritePage(e.pid, img); err != nil {
		return err
	}
	sn.meter().DataWriteAsync(1)
	atomic.AddInt64(&s.stats.DataWrites, 1)
	atomic.AddInt64(&s.stats.WPLInstalls, 1)
	delete(s.wpl, e.pid)
	if cached != nil {
		sh.MarkClean(e.pid)
	}
	return nil
}

// Abort rolls tid back. Under ESM/REDO the transaction's update records are
// undone with compensation log records; under WPL its logged copies are
// simply dropped from the WPL table (§3.4.2: abort by ignoring).
func (sn *Session) Abort(tid logrec.TID) error {
	s := sn.s
	exit := s.enter()
	t, ok := s.lookupTxn(tid)
	if !ok {
		exit()
		return fmt.Errorf("%w: %v", ErrNoTxn, tid)
	}
	if s.standby.Load() {
		if t.lastLSN != logrec.NoLSN {
			exit()
			return ErrStandby
		}
		// Read-only standby session: release without logging, as in Commit.
		s.attMu.Lock()
		delete(s.att, tid)
		s.attMu.Unlock()
		exit()
		s.locks.ReleaseAll(tid)
		return nil
	}
	if t.prepared {
		// An in-doubt branch must survive client disconnects and unilateral
		// rollback attempts: only Decide(false) — or restart resolution's
		// presumed abort — may roll it back.
		exit()
		return fmt.Errorf("%w: %v", ErrInDoubt, tid)
	}
	if t.lastLSN == logrec.NoLSN {
		// Nothing was ever logged for this transaction — a read-only branch,
		// or an empty one a sharded router opened and never used. There is
		// nothing to undo and restart treats unknown ids as aborted, so it is
		// dropped without appending or forcing anything.
		atomic.AddInt64(&s.stats.Aborts, 1)
		s.attMu.Lock()
		delete(s.att, tid)
		s.attMu.Unlock()
		exit()
		s.locks.ReleaseAll(tid)
		return nil
	}
	a := logrec.NewAbort(tid)
	a.PrevLSN = t.lastLSN
	var err error
	if _, aerr := s.log.Append(a); aerr != nil {
		err = aerr
	}
	if s.cfg.Mode == ModeWPL {
		s.wplAbort(sn, t)
	} else if err == nil {
		err = s.undo(sn, t, logrec.NoLSN)
	}
	e := logrec.NewEnd(tid)
	e.PrevLSN = t.lastLSN
	if _, eerr := s.log.Append(e); eerr != nil && err == nil {
		err = eerr
	}
	sn.m.LogWrite(s.log.Force())
	atomic.AddInt64(&s.stats.Aborts, 1)
	s.attMu.Lock()
	delete(s.att, tid)
	s.attMu.Unlock()
	exit()
	s.locks.ReleaseAll(tid)
	return err
}

// wplAbort unlinks the aborting transaction's copies from the WPL table. If
// an older committed copy resurfaces as chain head, it is installed so its
// log space can eventually be reclaimed. The aborting transaction still
// holds its X locks, so no one else can be shipping these pages.
func (s *Server) wplAbort(sn *Session, t *txn) {
	for _, pid := range t.wplPages {
		s.wplMu.Lock()
		head := s.wpl[pid]
		// Remove t's entries from the chain.
		var keep *wplEntry
		for e := head; e != nil; e = e.prev {
			if e.tid != t.tid {
				keep = e
				break
			}
		}
		if keep == nil {
			delete(s.wpl, pid)
		} else {
			s.wpl[pid] = keep
		}
		gen := s.wplGen
		s.wplMu.Unlock()
		// The cached copy in the pool is the aborted version; drop it.
		sh := s.pool.Lock(pid)
		if f := sh.Peek(pid); f != nil {
			sh.MarkClean(pid)
			sh.Remove(pid)
		}
		sh.Unlock()
		if keep != nil && keep.committed {
			s.installHead(sn, pid, keep, gen)
		}
	}
}

// undo rolls back t's update records down to (but not including) stopAt,
// writing CLRs. Used by abort (stopAt = NoLSN) and by restart to roll back
// loser transactions. Undo reads the log, so it begins by forcing the
// volatile tail.
func (s *Server) undo(sn *Session, t *txn, stopAt uint64) error {
	sn.meter().LogWrite(s.log.Force())
	cur := t.lastLSN
	for cur != logrec.NoLSN && cur != stopAt {
		r, err := s.log.ReadAt(cur)
		if err != nil {
			return fmt.Errorf("server: undo %v at %d: %w", t.tid, cur, err)
		}
		switch r.Type {
		case logrec.TypeUpdate:
			if err := s.undoApply(sn, t, r); err != nil {
				return err
			}
			cur = r.PrevLSN
		case logrec.TypeCLR:
			cur = r.UndoNext
		case logrec.TypePageImage:
			// A fresh page created by the loser: it was never linked into
			// any committed structure, so leave its bytes; the allocation is
			// simply wasted (documented in DESIGN.md).
			cur = r.PrevLSN
		default:
			cur = r.PrevLSN
		}
	}
	return nil
}

// undoApply reverses one update record and logs its CLR.
//
//qslint:allow latch-io: ARIES undo restores the before-image and appends its CLR under the page's shard latch — the two must be atomic against concurrent readers of the page, and the append is buffered (no force)
func (s *Server) undoApply(sn *Session, t *txn, r *logrec.Record) error {
	sh := s.pool.Lock(r.Page)
	defer sh.Unlock()
	f, err := s.fetchShardLocked(sn, sh, r.Page, false)
	if err != nil {
		return err
	}
	copy(f.Bytes()[r.Off:int(r.Off)+len(r.Before)], r.Before)
	clr := &logrec.Record{
		TID:      t.tid,
		Type:     logrec.TypeCLR,
		Page:     r.Page,
		Off:      r.Off,
		UndoNext: r.PrevLSN,
		After:    append([]byte(nil), r.Before...),
		PrevLSN:  t.lastLSN,
	}
	// CLR append + ATT/DPT updates: one attMu section, same reasoning as
	// ShipLog (the fuzzy-checkpoint snapshot invariant).
	s.attMu.Lock()
	lsn, err := s.log.Append(clr)
	if err != nil {
		s.attMu.Unlock()
		return err
	}
	t.lastLSN = lsn
	s.dptMu.Lock()
	e, ok := s.dpt[r.Page]
	if !ok {
		e = dptEntry{rec: lsn}
	}
	if lsn > e.newest {
		e.newest = lsn
	}
	s.dpt[r.Page] = e
	s.dptMu.Unlock()
	s.attMu.Unlock()
	page.Wrap(f.Bytes()).SetLSN(lsn)
	sh.MarkDirty(r.Page)
	return nil
}

// --- superblock ----------------------------------------------------------

const superMagic = 0x51535342 // "QSSB"

type superblock struct {
	checkpointLSN uint64
	nextPage      page.ID
	nextTID       logrec.TID
	hasCheckpoint bool
}

func encodeSuperblock(sb superblock) []byte {
	buf := make([]byte, page.Size)
	binary.LittleEndian.PutUint32(buf[0:], superMagic)
	flags := uint32(0)
	if sb.hasCheckpoint {
		flags = 1
	}
	binary.LittleEndian.PutUint32(buf[4:], flags)
	binary.LittleEndian.PutUint64(buf[8:], sb.checkpointLSN)
	binary.LittleEndian.PutUint32(buf[16:], uint32(sb.nextPage))
	binary.LittleEndian.PutUint64(buf[24:], uint64(sb.nextTID))
	return buf
}

func (s *Server) writeSuperblock(sn *Session, sb superblock) error {
	if err := s.store.WritePage(superblockPage, encodeSuperblock(sb)); err != nil {
		return err
	}
	sn.meter().DataWriteAsync(1)
	return nil
}

func (s *Server) readSuperblock() (superblock, error) {
	var buf [page.Size]byte
	err := s.store.ReadPage(superblockPage, buf[:])
	if errors.Is(err, disk.ErrNotFound) {
		return superblock{nextPage: 1, nextTID: 1}, nil
	}
	if errors.Is(err, disk.ErrCorruptPage) {
		// A rotted or torn master record. Rebuild it from the newest
		// checkpoint record still in the log — never from the archive, whose
		// copy could name an older checkpoint and make restart skip redo it
		// still needs. No checkpoint record means the superblock cannot be
		// trusted at all: fail loudly rather than recover from a guess.
		atomic.AddInt64(&s.stats.ChecksumFailures, 1)
		sb, rerr := s.superblockFromLog()
		if rerr != nil {
			atomic.AddInt64(&s.stats.PagesUnrepairable, 1)
			return superblock{}, fmt.Errorf("%w: %v: %v: %w",
				ErrUnrepairable, superblockPage, rerr, err)
		}
		if werr := s.store.WritePage(superblockPage, encodeSuperblock(sb)); werr != nil {
			return superblock{}, werr
		}
		atomic.AddInt64(&s.stats.DataWrites, 1)
		atomic.AddInt64(&s.stats.PagesRepaired, 1)
		return sb, nil
	}
	if err != nil {
		return superblock{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != superMagic {
		return superblock{}, errors.New("server: bad superblock magic")
	}
	return superblock{
		hasCheckpoint: binary.LittleEndian.Uint32(buf[4:]) == 1,
		checkpointLSN: binary.LittleEndian.Uint64(buf[8:]),
		nextPage:      page.ID(binary.LittleEndian.Uint32(buf[16:])),
		nextTID:       logrec.TID(binary.LittleEndian.Uint64(buf[24:])),
	}, nil
}
