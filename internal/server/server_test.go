package server

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
)

// newTestServer returns a server with a small pool so eviction paths get
// exercised, plus a session.
func newTestServer(t *testing.T, mode Mode) (*Server, *Session) {
	t.Helper()
	s := New(Config{
		Mode:            mode,
		PoolPages:       16,
		LogCapacity:     16 << 20,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30, // tests checkpoint explicitly
	})
	return s, s.NewSession(nil, nil)
}

// makePage builds a formatted page containing one object with the given
// contents and returns the page bytes and the object's slot.
func makePage(t *testing.T, pid page.ID, contents []byte) ([]byte, int) {
	t.Helper()
	pg := page.New(pid)
	slot, err := pg.Allocate(len(contents))
	if err != nil {
		t.Fatal(err)
	}
	pg.WriteAt(slot, 0, contents)
	return pg.Bytes(), slot
}

// createPage runs a transaction that creates a page holding contents,
// following the client protocol for the server's mode: page-image log record
// then the page (ESM), page image only (REDO), page only (WPL).
func createPage(t *testing.T, sn *Session, contents []byte) (page.ID, int) {
	t.Helper()
	tid := sn.Begin()
	pid, err := sn.AllocPage(tid)
	if err != nil {
		t.Fatal(err)
	}
	data, slot := makePage(t, pid, contents)
	switch sn.s.cfg.Mode {
	case ModeWPL:
		if err := sn.ShipPage(tid, pid, data); err != nil {
			t.Fatal(err)
		}
	case ModeREDO:
		rec := logrec.NewPageImage(tid, pid, data)
		if err := sn.ShipLog(tid, rec.Encode(nil)); err != nil {
			t.Fatal(err)
		}
	default:
		rec := logrec.NewPageImage(tid, pid, data)
		if err := sn.ShipLog(tid, rec.Encode(nil)); err != nil {
			t.Fatal(err)
		}
		if err := sn.ShipPage(tid, pid, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := sn.Commit(tid); err != nil {
		t.Fatal(err)
	}
	return pid, slot
}

// readObject fetches pid in a fresh transaction and returns the object in
// slot.
func readObject(t *testing.T, sn *Session, pid page.ID, slot, n int) []byte {
	t.Helper()
	tid := sn.Begin()
	data, err := sn.ReadPage(tid, pid, lock.Shared)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.Wrap(data)
	out := make([]byte, n)
	if err := pg.ReadAt(slot, 0, out); err != nil {
		t.Fatal(err)
	}
	if err := sn.Commit(tid); err != nil {
		t.Fatal(err)
	}
	return out
}

// updateObject runs a transaction overwriting the object's bytes following
// the mode's client protocol, optionally crashing before commit.
func updateObject(t *testing.T, sn *Session, pid page.ID, slot int, newVal []byte, commit bool) {
	t.Helper()
	tid := sn.Begin()
	data, err := sn.ReadPage(tid, pid, lock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.Wrap(data)
	old := make([]byte, len(newVal))
	if err := pg.ReadAt(slot, 0, old); err != nil {
		t.Fatal(err)
	}
	off, err := pg.ObjectOffset(slot)
	if err != nil {
		t.Fatal(err)
	}
	pg.WriteAt(slot, 0, newVal)
	if sn.s.cfg.Mode == ModeWPL {
		if err := sn.ShipPage(tid, pid, pg.Bytes()); err != nil {
			t.Fatal(err)
		}
	} else {
		rec := logrec.NewUpdate(tid, pid, off, old, newVal)
		if err := sn.ShipLog(tid, rec.Encode(nil)); err != nil {
			t.Fatal(err)
		}
		if sn.s.cfg.Mode == ModeESM {
			if err := sn.ShipPage(tid, pid, pg.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if commit {
		if err := sn.Commit(tid); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateAndReadBack(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			_, sn := newTestServer(t, mode)
			pid, slot := createPage(t, sn, []byte("hello world!"))
			got := readObject(t, sn, pid, slot, 12)
			if string(got) != "hello world!" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestCommittedDataSurvivesCrash(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s, sn := newTestServer(t, mode)
			pid, slot := createPage(t, sn, []byte("durable....."))
			updateObject(t, sn, pid, slot, []byte("updated....."), true)
			s.Crash()
			if err := sn.Restart(); err != nil {
				t.Fatal(err)
			}
			got := readObject(t, sn, pid, slot, 12)
			if string(got) != "updated....." {
				t.Fatalf("after crash got %q", got)
			}
		})
	}
}

func TestUncommittedUpdateRolledBackByCrash(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s, sn := newTestServer(t, mode)
			pid, slot := createPage(t, sn, []byte("original...."))
			updateObject(t, sn, pid, slot, []byte("uncommitted!"), false)
			s.Crash()
			if err := sn.Restart(); err != nil {
				t.Fatal(err)
			}
			got := readObject(t, sn, pid, slot, 12)
			if string(got) != "original...." {
				t.Fatalf("after crash got %q", got)
			}
		})
	}
}

func TestAbortRestoresOldValue(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			_, sn := newTestServer(t, mode)
			pid, slot := createPage(t, sn, []byte("before......"))
			tid := sn.Begin()
			data, err := sn.ReadPage(tid, pid, lock.Exclusive)
			if err != nil {
				t.Fatal(err)
			}
			pg := page.Wrap(data)
			off, _ := pg.ObjectOffset(slot)
			old := make([]byte, 12)
			pg.ReadAt(slot, 0, old)
			pg.WriteAt(slot, 0, []byte("aborted....."))
			if sn.s.cfg.Mode == ModeWPL {
				sn.ShipPage(tid, pid, pg.Bytes())
			} else {
				rec := logrec.NewUpdate(tid, pid, off, old, []byte("aborted....."))
				sn.ShipLog(tid, rec.Encode(nil))
				if sn.s.cfg.Mode == ModeESM {
					sn.ShipPage(tid, pid, pg.Bytes())
				}
			}
			if err := sn.Abort(tid); err != nil {
				t.Fatal(err)
			}
			got := readObject(t, sn, pid, slot, 12)
			if string(got) != "before......" {
				t.Fatalf("after abort got %q", got)
			}
		})
	}
}

func TestCrashAfterAbortKeepsOldValue(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s, sn := newTestServer(t, mode)
			pid, slot := createPage(t, sn, []byte("stable......"))
			tid := sn.Begin()
			data, _ := sn.ReadPage(tid, pid, lock.Exclusive)
			pg := page.Wrap(data)
			off, _ := pg.ObjectOffset(slot)
			old := make([]byte, 12)
			pg.ReadAt(slot, 0, old)
			pg.WriteAt(slot, 0, []byte("dead-update!"))
			if sn.s.cfg.Mode == ModeWPL {
				sn.ShipPage(tid, pid, pg.Bytes())
			} else {
				rec := logrec.NewUpdate(tid, pid, off, old, []byte("dead-update!"))
				sn.ShipLog(tid, rec.Encode(nil))
				if sn.s.cfg.Mode == ModeESM {
					sn.ShipPage(tid, pid, pg.Bytes())
				}
			}
			sn.Abort(tid)
			s.Crash()
			if err := sn.Restart(); err != nil {
				t.Fatal(err)
			}
			got := readObject(t, sn, pid, slot, 12)
			if string(got) != "stable......" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestMultiTxnInterleavedDurability(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s, sn := newTestServer(t, mode)
			// Three pages; commit updates to two, leave one uncommitted, crash.
			pids := make([]page.ID, 3)
			slots := make([]int, 3)
			for i := range pids {
				pids[i], slots[i] = createPage(t, sn, []byte{byte('a' + i), 2, 3, 4})
			}
			updateObject(t, sn, pids[0], slots[0], []byte{'X', 2, 3, 4}, true)
			updateObject(t, sn, pids[1], slots[1], []byte{'Y', 2, 3, 4}, true)
			updateObject(t, sn, pids[2], slots[2], []byte{'Z', 2, 3, 4}, false)
			s.Crash()
			if err := sn.Restart(); err != nil {
				t.Fatal(err)
			}
			for i, want := range []byte{'X', 'Y', 'c'} {
				got := readObject(t, sn, pids[i], slots[i], 4)
				if got[0] != want {
					t.Fatalf("page %d: got %q want %c", i, got, want)
				}
			}
		})
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s, sn := newTestServer(t, mode)
			pid, slot := createPage(t, sn, []byte("v0.........."))
			for i := 1; i <= 5; i++ {
				val := []byte{byte('0' + i), 'x', 'x', 'x', 'x', 'x', 'x', 'x', 'x', 'x', 'x', 'x'}
				updateObject(t, sn, pid, slot, val, true)
			}
			headBefore := s.log.Head()
			if err := sn.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if s.log.Head() <= headBefore {
				t.Fatal("checkpoint did not reclaim log space")
			}
			// More updates after the checkpoint, then crash.
			updateObject(t, sn, pid, slot, []byte("final-value!"), true)
			s.Crash()
			if err := sn.Restart(); err != nil {
				t.Fatal(err)
			}
			got := readObject(t, sn, pid, slot, 12)
			if string(got) != "final-value!" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestDoubleCrashRestartIdempotent(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s, sn := newTestServer(t, mode)
			pid, slot := createPage(t, sn, []byte("abcd"))
			updateObject(t, sn, pid, slot, []byte("wxyz"), true)
			for i := 0; i < 3; i++ {
				s.Crash()
				if err := sn.Restart(); err != nil {
					t.Fatalf("restart %d: %v", i, err)
				}
			}
			got := readObject(t, sn, pid, slot, 4)
			if string(got) != "wxyz" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestEvictionUnderTinyPool(t *testing.T) {
	// Pool of 16 frames, 40 pages: steals happen mid-transaction; committed
	// values must survive crash and uncommitted ones must not.
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s, sn := newTestServer(t, mode)
			const n = 40
			pids := make([]page.ID, n)
			slots := make([]int, n)
			for i := 0; i < n; i++ {
				pids[i], slots[i] = createPage(t, sn, []byte{byte(i), 0, 0, 0})
			}
			for i := 0; i < n; i++ {
				updateObject(t, sn, pids[i], slots[i], []byte{byte(i), 1, 1, 1}, true)
			}
			s.Crash()
			if err := sn.Restart(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				got := readObject(t, sn, pids[i], slots[i], 4)
				if !bytes.Equal(got, []byte{byte(i), 1, 1, 1}) {
					t.Fatalf("page %d: got %v", i, got)
				}
			}
		})
	}
}

func TestAllocPageUniqueAcrossRestart(t *testing.T) {
	s, sn := newTestServer(t, ModeESM)
	pid1, _ := createPage(t, sn, []byte("one"))
	s.Crash()
	if err := sn.Restart(); err != nil {
		t.Fatal(err)
	}
	pid2, _ := createPage(t, sn, []byte("two"))
	if pid2 <= pid1 {
		t.Fatalf("page id reused after restart: %v then %v", pid1, pid2)
	}
	if got := readObject(t, sn, pid1, 0, 3); string(got) != "one" {
		t.Fatalf("old page damaged: %q", got)
	}
}

func TestModeViolations(t *testing.T) {
	_, snWPL := newTestServer(t, ModeWPL)
	tid := snWPL.Begin()
	rec := logrec.NewUpdate(tid, 1, 0, []byte{1}, []byte{2})
	if err := snWPL.ShipLog(tid, rec.Encode(nil)); !errors.Is(err, ErrModeViolation) {
		t.Fatalf("ShipLog under WPL: %v", err)
	}
	_, snREDO := newTestServer(t, ModeREDO)
	tid2 := snREDO.Begin()
	pid, err := snREDO.AllocPage(tid2)
	if err != nil {
		t.Fatal(err)
	}
	if err := snREDO.ShipPage(tid2, pid, make([]byte, page.Size)); !errors.Is(err, ErrModeViolation) {
		t.Fatalf("ShipPage under REDO: %v", err)
	}
}

func TestShipPageRequiresXLock(t *testing.T) {
	_, sn := newTestServer(t, ModeESM)
	pid, _ := createPage(t, sn, []byte("lock"))
	tid := sn.Begin()
	// Only a shared lock held.
	if _, err := sn.ReadPage(tid, pid, lock.Shared); err != nil {
		t.Fatal(err)
	}
	err := sn.ShipPage(tid, pid, make([]byte, page.Size))
	if !errors.Is(err, ErrNotLocked) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownTxnRejected(t *testing.T) {
	_, sn := newTestServer(t, ModeESM)
	if _, err := sn.ReadPage(999, 1, lock.Shared); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("err = %v", err)
	}
	if err := sn.Commit(999); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("err = %v", err)
	}
	if err := sn.Abort(999); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("err = %v", err)
	}
}

func TestWPLReloadFromLogAfterEviction(t *testing.T) {
	// With a tiny pool, an uncommitted WPL page can be evicted; re-reading
	// it within the same transaction must come back from the log (§3.4.2).
	s := New(Config{Mode: ModeWPL, PoolPages: 4, LogCapacity: 16 << 20, LockTimeout: time.Second, CheckpointEvery: 1 << 30})
	sn := s.NewSession(nil, nil)
	pid, slot := createPage(t, sn, []byte("base"))
	tid := sn.Begin()
	data, err := sn.ReadPage(tid, pid, lock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.Wrap(data)
	pg.WriteAt(slot, 0, []byte("mod!"))
	if err := sn.ShipPage(tid, pid, pg.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Flood the pool so pid's frame is evicted.
	for i := 0; i < 8; i++ {
		p2, _ := sn.AllocPage(tid)
		img := page.New(p2)
		if err := sn.ShipPage(tid, p2, img.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	// Re-read within the same transaction: must see the modified value.
	data2, err := sn.ReadPage(tid, pid, lock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	page.Wrap(data2).ReadAt(slot, 0, got)
	if string(got) != "mod!" {
		t.Fatalf("reload got %q", got)
	}
	if s.Stats().WPLLogReloads == 0 {
		t.Fatal("no log reloads counted")
	}
	if err := sn.Commit(tid); err != nil {
		t.Fatal(err)
	}
	// And the permanent location is only updated now.
	if got := readObject(t, sn, pid, slot, 4); string(got) != "mod!" {
		t.Fatalf("after commit: %q", got)
	}
}

func TestStatsCounters(t *testing.T) {
	s, sn := newTestServer(t, ModeESM)
	pid, slot := createPage(t, sn, []byte("stat"))
	updateObject(t, sn, pid, slot, []byte("STAT"), true)
	st := s.Stats()
	if st.Commits != 2 || st.LogPagesReceived < 2 || st.DirtyPagesReceived < 2 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Log().PagesWritten() == 0 {
		t.Fatal("no log pages written")
	}
}
