package server

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/page"
)

// newChecksummedServer returns a server over a checksummed in-memory volume
// plus the raw store underneath it (for injecting damage below the
// envelope).
func newChecksummedServer(t *testing.T, mode Mode, cfg Config) (*Server, *Session, *disk.MemStore) {
	t.Helper()
	mem := disk.NewMemStore()
	cfg.Mode = mode
	cfg.Store = disk.NewChecksummed(mem)
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 16
	}
	if cfg.LogCapacity == 0 {
		cfg.LogCapacity = 16 << 20
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = time.Second
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1 << 30
	}
	s := New(cfg)
	return s, s.NewSession(nil, nil), mem
}

// TestScrubRepairsRotFromLiveLog rots a flushed page below the envelope and
// checks one scrub pass detects it, repairs it byte-identically from the
// live log, and reports it — then that a second pass finds nothing.
func TestScrubRepairsRotFromLiveLog(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s, sn, mem := newChecksummedServer(t, mode, Config{})
			defer s.Close()
			pid, slot := createPage(t, sn, []byte("integrity"))
			if err := sn.FlushAll(); err != nil {
				t.Fatal(err)
			}
			var pristine [page.Size]byte
			if err := mem.ReadPage(pid, pristine[:]); err != nil {
				t.Fatal(err)
			}
			if _, err := faultinject.RotPage(mem, pid, 11); err != nil {
				t.Fatal(err)
			}
			rep, err := sn.Scrub(0)
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if rep.Failures != 1 || rep.Repaired != 1 || rep.Unrepairable != 0 {
				t.Fatalf("scrub report: %+v, want one repaired failure", rep)
			}
			var healed [page.Size]byte
			if err := mem.ReadPage(pid, healed[:]); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pristine[:], healed[:]) {
				t.Fatal("repaired page is not byte-identical to the pristine copy")
			}
			if got := readObject(t, sn, pid, slot, len("integrity")); string(got) != "integrity" {
				t.Fatalf("object after repair = %q", got)
			}
			rep, err = sn.Scrub(0)
			if err != nil || rep.Failures != 0 {
				t.Fatalf("second scrub: %+v, %v, want clean", rep, err)
			}
			if st := s.Stats(); st.ChecksumFailures < 1 || st.PagesRepaired < 1 {
				t.Fatalf("stats: failures=%d repaired=%d", st.ChecksumFailures, st.PagesRepaired)
			}
		})
	}
}

// TestDemandReadRepairsCorruptPage rots a page and reads it through the
// normal transaction path: the fetch must heal it transparently.
func TestDemandReadRepairsCorruptPage(t *testing.T) {
	s, sn, mem := newChecksummedServer(t, ModeESM, Config{PoolPages: 4})
	defer s.Close()
	pid, slot := createPage(t, sn, []byte("demand"))
	// Push the page out of the pool so the next read hits the store. The
	// creation image stays in the log (no checkpoint truncates it), so the
	// repair source is per-page live-log redo, not a pooled frame.
	for i := 0; i < 8; i++ {
		createPage(t, sn, []byte("filler"))
	}
	if err := sn.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := faultinject.RotPage(mem, pid, 23); err != nil {
		t.Fatal(err)
	}
	if got := readObject(t, sn, pid, slot, len("demand")); string(got) != "demand" {
		t.Fatalf("read through corrupt page = %q", got)
	}
	if st := s.Stats(); st.PagesRepaired < 1 {
		t.Fatalf("demand read did not repair: %+v", st)
	}
}

// TestUnrepairableFailsTyped makes a page unrepairable (fresh log, no
// archive, empty pool) and checks both the demand read and the scrub fail
// with errors wrapping both sentinels.
func TestUnrepairableFailsTyped(t *testing.T) {
	s, sn, mem := newChecksummedServer(t, ModeESM, Config{})
	defer s.Close()
	pid, slot := createPage(t, sn, []byte("doomed"))
	if err := sn.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A second server over the same volume with a fresh empty log: the
	// creation image is gone and nothing can rebuild the page.
	s2 := New(Config{
		Mode:        ModeESM,
		Store:       s.cfg.Store,
		PoolPages:   16,
		LogCapacity: 16 << 20,
		LockTimeout: time.Second,
	})
	defer s2.Close()
	sn2 := s2.NewSession(nil, nil)
	if err := sn2.Restart(); err != nil {
		t.Fatal(err)
	}
	if _, err := faultinject.RotPage(mem, pid, 31); err != nil {
		t.Fatal(err)
	}
	tid := sn2.Begin()
	_, err := sn2.ReadPage(tid, pid, lock.Shared)
	if !errors.Is(err, disk.ErrCorruptPage) || !errors.Is(err, ErrUnrepairable) {
		t.Fatalf("demand read: err = %v, want ErrCorruptPage and ErrUnrepairable", err)
	}
	sn2.Abort(tid)
	rep, err := sn2.Scrub(0)
	if !errors.Is(err, disk.ErrCorruptPage) || !errors.Is(err, ErrUnrepairable) {
		t.Fatalf("scrub: err = %v, want both sentinels", err)
	}
	if rep.Unrepairable != 1 {
		t.Fatalf("scrub report: %+v, want one unrepairable page", rep)
	}
	_ = slot
}

// TestBackgroundScrubberUnderConcurrentCommits runs the paced scrubber
// against a live commit workload (run with -race in CI): sessions commit on
// several goroutines while the scrubber verifies the volume and repairs a
// page rotted mid-run.
func TestBackgroundScrubberUnderConcurrentCommits(t *testing.T) {
	// A large pool and no checkpoint truncation keep the rotted page
	// repairable (pooled frame or live-log creation image) while the
	// workload churns.
	s, sn, mem := newChecksummedServer(t, ModeESM, Config{
		ScrubEvery: time.Millisecond,
		ScrubPages: 8,
		PoolPages:  256,
	})
	defer s.Close()
	pid, slot := createPage(t, sn, []byte("scrubbed"))
	if err := sn.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := faultinject.RotPage(mem, pid, 5); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsn := s.NewSession(nil, nil)
			for i := 0; i < 25; i++ {
				createPage(t, wsn, []byte("worker"))
			}
		}(w)
	}
	wg.Wait()
	// Let the scrubber cover the volume at least once (bounded wait).
	for i := 0; i < 5000 && s.Stats().PagesRepaired == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.ScrubScanned == 0 || st.PagesRepaired == 0 {
		t.Fatalf("scrubber never repaired the rotted page: %+v", st)
	}
	if got := readObject(t, sn, pid, slot, len("scrubbed")); string(got) != "scrubbed" {
		t.Fatalf("object after background repair = %q", got)
	}
}
