package server

// Concurrency tests for the session gate, sharded pool, group commit, the
// async WPL installer and parallel restart redo. All of them are run under
// the race detector by make check.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
)

// workerCreate is createPage without *testing.T, for use inside goroutines.
func workerCreate(sn *Session, contents []byte) (page.ID, int, error) {
	tid := sn.Begin()
	pid, err := sn.AllocPage(tid)
	if err != nil {
		return 0, 0, err
	}
	pg := page.New(pid)
	slot, err := pg.Allocate(len(contents))
	if err != nil {
		return 0, 0, err
	}
	pg.WriteAt(slot, 0, contents)
	switch sn.s.cfg.Mode {
	case ModeWPL:
		err = sn.ShipPage(tid, pid, pg.Bytes())
	case ModeREDO:
		err = sn.ShipLog(tid, logrec.NewPageImage(tid, pid, pg.Bytes()).Encode(nil))
	default:
		if err = sn.ShipLog(tid, logrec.NewPageImage(tid, pid, pg.Bytes()).Encode(nil)); err == nil {
			err = sn.ShipPage(tid, pid, pg.Bytes())
		}
	}
	if err != nil {
		return 0, 0, err
	}
	return pid, slot, sn.Commit(tid)
}

// workerUpdate is updateObject without *testing.T, for use inside goroutines.
func workerUpdate(sn *Session, pid page.ID, slot int, newVal []byte) error {
	tid := sn.Begin()
	data, err := sn.ReadPage(tid, pid, lock.Exclusive)
	if err != nil {
		return err
	}
	pg := page.Wrap(data)
	old := make([]byte, len(newVal))
	if err := pg.ReadAt(slot, 0, old); err != nil {
		return err
	}
	off, err := pg.ObjectOffset(slot)
	if err != nil {
		return err
	}
	pg.WriteAt(slot, 0, newVal)
	if sn.s.cfg.Mode == ModeWPL {
		if err := sn.ShipPage(tid, pid, pg.Bytes()); err != nil {
			return err
		}
	} else {
		if err := sn.ShipLog(tid, logrec.NewUpdate(tid, pid, off, old, newVal).Encode(nil)); err != nil {
			return err
		}
		if sn.s.cfg.Mode == ModeESM {
			if err := sn.ShipPage(tid, pid, pg.Bytes()); err != nil {
				return err
			}
		}
	}
	return sn.Commit(tid)
}

// TestConcurrentSessionsDistinctPages drives independent sessions in
// parallel, each over its own pages, through every mode. The point is the
// race detector and the absence of cross-session interference.
func TestConcurrentSessionsDistinctPages(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			s := New(Config{
				Mode:            mode,
				PoolPages:       64,
				LogCapacity:     16 << 20,
				LockTimeout:     time.Second,
				CheckpointEvery: 1 << 30,
			})
			defer s.Close()
			const workers, txns = 4, 8
			errs := make([]error, workers)
			var wg sync.WaitGroup
			finals := make([][]byte, workers)
			pids := make([]page.ID, workers)
			slots := make([]int, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sn := s.NewSession(nil, nil)
					pid, slot, err := workerCreate(sn, []byte(fmt.Sprintf("worker %d....", w)))
					if err != nil {
						errs[w] = err
						return
					}
					pids[w], slots[w] = pid, slot
					for i := 0; i < txns; i++ {
						finals[w] = []byte(fmt.Sprintf("w%d turn %04d", w, i))
						if err := workerUpdate(sn, pid, slot, finals[w]); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
			sn := s.NewSession(nil, nil)
			for w := 0; w < workers; w++ {
				got := readObject(t, sn, pids[w], slots[w], len(finals[w]))
				if !bytes.Equal(got, finals[w]) {
					t.Errorf("worker %d page: got %q want %q", w, got, finals[w])
				}
			}
		})
	}
}

// TestGroupCommitBatchesConcurrentCommits checks the heart of the tentpole:
// with a modeled log-device latency, concurrent committers share stable
// flushes, so the log is forced fewer times than there are commits.
func TestGroupCommitBatchesConcurrentCommits(t *testing.T) {
	s := New(Config{
		Mode:            ModeESM,
		PoolPages:       64,
		LogCapacity:     16 << 20,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	})
	defer s.Close()
	const workers, txns = 8, 10

	// Serial setup: one private page per worker.
	pids := make([]page.ID, workers)
	slots := make([]int, workers)
	setup := s.NewSession(nil, nil)
	for w := range pids {
		pids[w], slots[w] = createPage(t, setup, []byte(fmt.Sprintf("worker %d....", w)))
	}

	s.Log().SetWriteDelay(100 * time.Microsecond) // give groups time to form
	before := s.ExtendedStats()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sn := s.NewSession(nil, nil)
			for i := 0; i < txns; i++ {
				if err := workerUpdate(sn, pids[w], slots[w], []byte(fmt.Sprintf("w%d turn %04d", w, i))); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	after := s.ExtendedStats()

	commits := after.Commits - before.Commits
	forces := after.LogForces - before.LogForces
	avoided := after.GroupCommit.FlushesAvoided - before.GroupCommit.FlushesAvoided
	if commits != workers*txns {
		t.Fatalf("commits = %d, want %d", commits, workers*txns)
	}
	if forces >= commits {
		t.Errorf("log forced %d times for %d commits: no batching happened", forces, commits)
	}
	if avoided == 0 {
		t.Errorf("FlushesAvoided = 0, want > 0 (commits=%d forces=%d)", commits, forces)
	}

	// The batched commits must still be durable.
	s.Log().SetWriteDelay(0)
	s.Crash()
	sn := s.NewSession(nil, nil)
	if err := sn.Restart(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		want := fmt.Sprintf("w%d turn %04d", w, txns-1)
		got := readObject(t, sn, pids[w], slots[w], len(want))
		if string(got) != want {
			t.Errorf("worker %d after crash: got %q want %q", w, got, want)
		}
	}
}

// TestWPLAsyncInstaller covers the background installer: commits return
// before their pages are installed, the installer catches up, and the
// installed state is what recovery reproduces.
func TestWPLAsyncInstaller(t *testing.T) {
	s := New(Config{
		Mode:            ModeWPL,
		PoolPages:       64,
		LogCapacity:     16 << 20,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
		WPLInstallAsync: true,
	})
	defer s.Close()
	sn := s.NewSession(nil, nil)
	const pages = 6
	var pids [pages]page.ID
	var slots [pages]int
	for i := range pids {
		pids[i], slots[i] = createPage(t, sn, []byte(fmt.Sprintf("page %d......", i)))
		updateObject(t, sn, pids[i], slots[i], []byte(fmt.Sprintf("updated %d...", i)), true)
	}
	// Installs drain asynchronously; wait for the WPL table to empty.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.wplMu.Lock()
		pending := len(s.wpl)
		s.wplMu.Unlock()
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async installer never drained: %d pages still pending", pending)
		}
		time.Sleep(time.Millisecond)
	}
	s.Crash()
	if err := sn.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := range pids {
		want := fmt.Sprintf("updated %d...", i)
		got := readObject(t, sn, pids[i], slots[i], len(want))
		if string(got) != want {
			t.Errorf("page %d: got %q want %q", i, got, want)
		}
	}
}

// TestParallelRedoMatchesSequential replays the identical crashed workload
// through sequential and 4-way-parallel redo and requires byte-identical
// stores afterwards.
func TestParallelRedoMatchesSequential(t *testing.T) {
	build := func(workers int) (*Server, *disk.MemStore) {
		store := disk.NewMemStore()
		s := New(Config{
			Mode:            ModeESM,
			Store:           store,
			PoolPages:       16, // small: evictions put pages in the DPT's past
			LogCapacity:     16 << 20,
			LockTimeout:     time.Second,
			CheckpointEvery: 1 << 30,
			RedoWorkers:     workers,
		})
		sn := s.NewSession(nil, nil)
		const pages, rounds = 12, 4
		var pids [pages]page.ID
		var slots [pages]int
		for i := range pids {
			pids[i], slots[i] = createPage(t, sn, []byte(fmt.Sprintf("page %d......", i)))
		}
		if err := sn.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			for i := range pids {
				updateObject(t, sn, pids[i], slots[i], []byte(fmt.Sprintf("p%d round %02d", i, r)), true)
			}
		}
		s.Crash()
		if err := sn.Restart(); err != nil {
			t.Fatal(err)
		}
		return s, store
	}

	seqSrv, seqStore := build(1)
	parSrv, parStore := build(4)

	seqStats := seqSrv.ExtendedStats()
	parStats := parSrv.ExtendedStats()
	if parStats.RedoWorkers != 4 {
		t.Fatalf("parallel restart used %d workers, want 4", parStats.RedoWorkers)
	}
	var seqApplied, parApplied int64
	for _, n := range seqStats.RedoApplied {
		seqApplied += n
	}
	for _, n := range parStats.RedoApplied {
		parApplied += n
	}
	if seqApplied != parApplied {
		t.Errorf("redo applied %d records sequentially but %d in parallel", seqApplied, parApplied)
	}
	if seqApplied == 0 {
		t.Error("redo applied no records: workload did not exercise redo")
	}

	var a, b [page.Size]byte
	for pid := page.ID(1); pid < 64; pid++ {
		errA := seqStore.ReadPage(pid, a[:])
		errB := parStore.ReadPage(pid, b[:])
		if (errA == nil) != (errB == nil) {
			t.Fatalf("page %v present in one store only (seq err %v, par err %v)", pid, errA, errB)
		}
		if errA == nil && !bytes.Equal(a[:], b[:]) {
			t.Errorf("page %v differs between sequential and parallel redo", pid)
		}
	}
}
