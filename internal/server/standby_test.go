package server

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wal"
)

// replPair is a primary and a standby glued together by an in-process
// shipper: ship() forces the primary's log, scans everything stable past the
// cursor, replays it through ApplyShipped, and forces the standby's log (the
// batch-wise force ApplyShipped's contract requires). A ship gate on the
// primary keeps checkpoint truncation behind the cursor, as the live log
// shipper does.
type replPair struct {
	p, s     *Server
	psn, ssn *Session
	cursor   uint64
}

func newReplPair(t *testing.T, mode Mode, primary, standby Config) *replPair {
	t.Helper()
	fill := func(cfg *Config, mode Mode) {
		cfg.Mode = mode
		if cfg.PoolPages == 0 {
			cfg.PoolPages = 16
		}
		if cfg.LogCapacity == 0 {
			cfg.LogCapacity = 16 << 20
		}
		if cfg.LockTimeout == 0 {
			cfg.LockTimeout = time.Second
		}
		if cfg.CheckpointEvery == 0 {
			cfg.CheckpointEvery = 1 << 30
		}
	}
	fill(&primary, mode)
	fill(&standby, mode)
	standby.Standby = true
	p := New(primary)
	s := New(standby)
	pr := &replPair{p: p, s: s, psn: p.NewSession(nil, nil), ssn: s.NewSession(nil, nil), cursor: p.log.Head()}
	p.log.SetShipGate(func(newHead uint64) bool { return newHead <= pr.cursor })
	return pr
}

func (pr *replPair) ship(t *testing.T) {
	t.Helper()
	pr.p.log.Force()
	next, err := pr.p.log.ScanFrom(pr.cursor, nil, func(r *logrec.Record) bool {
		if err := pr.ssn.ApplyShipped(r); err != nil {
			t.Fatalf("ApplyShipped(%v at %d): %v", r.Type, r.LSN, err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	pr.cursor = next
	pr.s.log.Force()
}

// TestStandbyApplyAndPromote drives a committed and an in-flight transaction
// through the shipper for each scheme, reads the committed state on the live
// standby, then promotes and checks the promoted node recovered exactly as a
// crashed primary would: committed updates durable, the in-flight loser
// rolled back, and the node writable again.
func TestStandbyApplyAndPromote(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			pr := newReplPair(t, mode, Config{}, Config{})
			defer pr.p.Close()
			defer pr.s.Close()

			pid1, slot1 := createPage(t, pr.psn, []byte("alpha"))
			pid2, slot2 := createPage(t, pr.psn, []byte("beta."))
			updateObject(t, pr.psn, pid1, slot1, []byte("ALPHA"), true)
			pr.ship(t)

			// Standby reads see the applied committed state without ending
			// standby mode.
			if !pr.s.Standby() {
				t.Fatal("standby flag not set")
			}
			if got := readObject(t, pr.ssn, pid1, slot1, 5); string(got) != "ALPHA" {
				t.Fatalf("standby read = %q, want ALPHA", got)
			}

			// A loser: updates shipped, no commit record before promotion.
			updateObject(t, pr.psn, pid2, slot2, []byte("LOSER"), false)
			pr.ship(t)

			if err := pr.ssn.Promote(); err != nil {
				t.Fatal(err)
			}
			if pr.s.Standby() {
				t.Fatal("standby flag still set after promotion")
			}
			if got := readObject(t, pr.ssn, pid1, slot1, 5); string(got) != "ALPHA" {
				t.Fatalf("promoted read = %q, want ALPHA", got)
			}
			if got := readObject(t, pr.ssn, pid2, slot2, 5); string(got) != "beta." {
				t.Fatalf("promoted read of loser page = %q, want beta. (rolled back)", got)
			}
			// The promoted node accepts writes.
			updateObject(t, pr.ssn, pid1, slot1, []byte("post!"), true)
			if got := readObject(t, pr.ssn, pid1, slot1, 5); string(got) != "post!" {
				t.Fatalf("post-promotion write read back %q", got)
			}
			// Promote is not idempotent: the node is a primary now.
			if err := pr.ssn.Promote(); !errors.Is(err, ErrModeViolation) {
				t.Fatalf("second Promote = %v, want ErrModeViolation", err)
			}
		})
	}
}

// TestStandbyRejectsLocalWrites checks every mutation guard: local sessions
// get read-only transactions from the reserved TID range and every write
// path fails typed, including committing a replicated transaction.
func TestStandbyRejectsLocalWrites(t *testing.T) {
	pr := newReplPair(t, ModeESM, Config{}, Config{})
	defer pr.p.Close()
	defer pr.s.Close()

	pid, slot := createPage(t, pr.psn, []byte("guard"))
	pr.ship(t)

	tid := pr.ssn.Begin()
	if tid < standbyTIDBase {
		t.Fatalf("standby TID %d below reserved base %d", tid, standbyTIDBase)
	}
	if _, err := pr.ssn.AllocPage(tid); !errors.Is(err, ErrStandby) {
		t.Fatalf("AllocPage = %v, want ErrStandby", err)
	}
	rec := logrec.NewPageImage(tid, pid, make([]byte, page.Size))
	if err := pr.ssn.ShipLog(tid, rec.Encode(nil)); !errors.Is(err, ErrStandby) {
		t.Fatalf("ShipLog = %v, want ErrStandby", err)
	}
	if err := pr.ssn.ShipPage(tid, pid, make([]byte, page.Size)); !errors.Is(err, ErrStandby) {
		t.Fatalf("ShipPage = %v, want ErrStandby", err)
	}
	if err := pr.ssn.Checkpoint(); !errors.Is(err, ErrStandby) {
		t.Fatalf("Checkpoint = %v, want ErrStandby", err)
	}
	// Read-only transactions commit (and abort) locally just fine.
	if got := readObject(t, pr.ssn, pid, slot, 5); string(got) != "guard" {
		t.Fatalf("standby read = %q", got)
	}
	// A replicated transaction's fate belongs to the primary.
	loser := pr.psn.Begin()
	if _, err := pr.psn.AllocPage(loser); err != nil {
		t.Fatal(err)
	}
	data, _ := makePage(t, pid+1, []byte("inflt"))
	lrec := logrec.NewPageImage(loser, pid+1, data)
	if err := pr.psn.ShipLog(loser, lrec.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	pr.ship(t)
	if err := pr.ssn.Commit(loser); !errors.Is(err, ErrStandby) {
		t.Fatalf("Commit(replicated tid) = %v, want ErrStandby", err)
	}
	if err := pr.ssn.Abort(loser); !errors.Is(err, ErrStandby) {
		t.Fatalf("Abort(replicated tid) = %v, want ErrStandby", err)
	}
}

// TestStandbyMirrorsCheckpoint ships a fuzzy checkpoint and checks the
// standby mirrors its side effects — master record, allocation counters, log
// reclamation — and that a record arriving with a gap is refused.
func TestStandbyMirrorsCheckpoint(t *testing.T) {
	pr := newReplPair(t, ModeESM, Config{FuzzyCheckpoints: true}, Config{})
	defer pr.p.Close()
	defer pr.s.Close()

	var pids []page.ID
	var slots []int
	for i := 0; i < 4; i++ {
		pid, slot := createPage(t, pr.psn, []byte("ckpt!"))
		pids = append(pids, pid)
		slots = append(slots, slot)
	}
	pr.ship(t)
	if err := pr.psn.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pr.ship(t)

	if got, want := pr.s.log.Head(), pr.p.log.Head(); got != want {
		t.Fatalf("standby log head = %d, want primary's %d", got, want)
	}
	if pr.s.Stats().Checkpoints != 1 {
		t.Fatalf("standby mirrored %d checkpoints, want 1", pr.s.Stats().Checkpoints)
	}
	// The mirrored master record carries the primary's allocation frontier.
	pr.s.allocMu.Lock()
	nextPage := pr.s.nextPage
	pr.s.allocMu.Unlock()
	if want := pids[len(pids)-1] + 1; nextPage < want {
		t.Fatalf("standby nextPage = %d, want at least %d", nextPage, want)
	}

	// Promotion after reclamation restarts from the mirrored checkpoint.
	if err := pr.ssn.Promote(); err != nil {
		t.Fatal(err)
	}
	for i, pid := range pids {
		if got := readObject(t, pr.ssn, pid, slots[i], 5); string(got) != "ckpt!" {
			t.Fatalf("page %d after promotion = %q", pid, got)
		}
	}

	// A cold standby fed the post-truncation stream must refuse the gap.
	cold := New(Config{Mode: ModeESM, Standby: true, PoolPages: 16, LogCapacity: 16 << 20, LockTimeout: time.Second, CheckpointEvery: 1 << 30})
	defer cold.Close()
	csn := cold.NewSession(nil, nil)
	_, slot2 := createPage(t, pr.ssn, []byte("gap.."))
	pr.s.log.Force()
	var gapErr error
	if _, err := pr.s.log.ScanFrom(pr.s.log.Head(), nil, func(r *logrec.Record) bool {
		gapErr = csn.ApplyShipped(r)
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if gapErr == nil {
		t.Fatal("cold standby accepted a stream starting past its log end")
	}
	_ = slot2
}

// TestStandbyByteIdenticalLog: the standby re-appends shipped records at
// identical LSNs, so both logs hold byte-identical stable prefixes — the
// invariant promotion's byte-equivalence rests on.
func TestStandbyByteIdenticalLog(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO, ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			pr := newReplPair(t, mode, Config{}, Config{})
			defer pr.p.Close()
			defer pr.s.Close()
			pid, slot := createPage(t, pr.psn, []byte("bytes"))
			updateObject(t, pr.psn, pid, slot, []byte("BYTES"), true)
			updateObject(t, pr.psn, pid, slot, []byte("bYtEs"), false) // aborts: CLRs/unlink in stream
			pr.ship(t)

			dump := func(l *wal.Log) []byte {
				var out []byte
				if err := l.Scan(l.Head(), func(r *logrec.Record) bool {
					out = r.Encode(out)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				return out
			}
			pBytes, sBytes := dump(pr.p.log), dump(pr.s.log)
			if !bytes.Equal(pBytes, sBytes) {
				t.Fatalf("log streams diverge: primary %d bytes, standby %d bytes", len(pBytes), len(sBytes))
			}
		})
	}
}

// TestPromoteWhileCleanerRunning promotes a standby whose background page
// cleaner is actively draining its DPT (run with -race in CI): Restart's
// quiesce gate plus the cleaner's ErrRestarting fast-fail must make the two
// coexist without a torn write or a deadlock.
func TestPromoteWhileCleanerRunning(t *testing.T) {
	pr := newReplPair(t, ModeESM, Config{FuzzyCheckpoints: true}, Config{
		FuzzyCheckpoints: true,
		CleanerEvery:     100 * time.Microsecond,
		CleanerBatch:     4,
		PoolPages:        256,
	})
	defer pr.p.Close()
	defer pr.s.Close()

	var pids []page.ID
	var slots []int
	for i := 0; i < 40; i++ {
		pid, slot := createPage(t, pr.psn, []byte("clean"))
		pids = append(pids, pid)
		slots = append(slots, slot)
	}
	pr.ship(t) // a 40-entry DPT for the cleaner to chew on
	time.Sleep(2 * time.Millisecond)
	if err := pr.ssn.Promote(); err != nil {
		t.Fatal(err)
	}
	for i, pid := range pids {
		if got := readObject(t, pr.ssn, pid, slots[i], 5); string(got) != "clean" {
			t.Fatalf("page %d after promotion = %q", pid, got)
		}
	}
}

// TestPromoteWhileScrubbing promotes a standby whose background scrubber is
// mid-pass over a checksummed volume (run with -race in CI).
func TestPromoteWhileScrubbing(t *testing.T) {
	mem := disk.NewMemStore()
	pr := newReplPair(t, ModeESM, Config{FuzzyCheckpoints: true}, Config{
		Store:      disk.NewChecksummed(mem),
		ScrubEvery: 100 * time.Microsecond,
		ScrubPages: 8,
		PoolPages:  256,
	})
	defer pr.p.Close()
	defer pr.s.Close()

	var pids []page.ID
	var slots []int
	for i := 0; i < 40; i++ {
		pid, slot := createPage(t, pr.psn, []byte("scrub"))
		pids = append(pids, pid)
		slots = append(slots, slot)
	}
	pr.ship(t)
	if err := pr.psn.Checkpoint(); err != nil { // ships the alloc frontier
		t.Fatal(err)
	}
	pr.ship(t)
	time.Sleep(2 * time.Millisecond)
	if err := pr.ssn.Promote(); err != nil {
		t.Fatal(err)
	}
	for i, pid := range pids {
		if got := readObject(t, pr.ssn, pid, slots[i], 5); string(got) != "scrub" {
			t.Fatalf("page %d after promotion = %q", pid, got)
		}
	}
}

// TestStandbyReadsConcurrentWithApply runs read-only standby sessions racing
// the applier goroutine (run with -race in CI): shipped-apply and local
// reads share the normal gate.R concurrency model.
func TestStandbyReadsConcurrentWithApply(t *testing.T) {
	pr := newReplPair(t, ModeESM, Config{}, Config{PoolPages: 256})
	defer pr.p.Close()
	defer pr.s.Close()

	pid, slot := createPage(t, pr.psn, []byte("race0"))
	pr.ship(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rsn := pr.s.NewSession(nil, nil)
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := readObject(t, rsn, pid, slot, 5)
				if string(got[:4]) != "race" {
					t.Errorf("standby read = %q", got)
					return
				}
			}
		}()
	}
	for i := 1; i <= 30; i++ {
		val := []byte("race" + string(rune('0'+i%10)))[:5]
		updateObject(t, pr.psn, pid, slot, val, true)
		pr.ship(t)
	}
	close(stop)
	wg.Wait()
}
