package server

// Online integrity: single-page repair and the background scrubber.
//
// The data volume sits behind disk.Checksummed, so any read of a rotted or
// torn page surfaces as disk.ErrCorruptPage. This file turns detection into
// healing:
//
//   - repairImage rebuilds one page. First choice is the live log alone
//     (per-page redo over whole-page images — always sufficient under WPL,
//     and under ESM/REDO whenever the page's creation image is still in the
//     log, the PD-style repair). Otherwise Config.RepairPage — wired by
//     archive.Wire to backup-plus-archived-log per-page redo — supplies the
//     image. If neither can, the failure is loud and typed: the error wraps
//     both ErrUnrepairable and the original disk.ErrCorruptPage, and the
//     damaged bytes are never served.
//   - fetchShardLocked (server.go) calls it when a demand read hits a
//     corrupt page, repairing in place under the shard latch.
//   - verifyVolumeQuiesced runs inside Restart when the volume is
//     checksummed, before redo: every stored page is verified and corrupt
//     ones repaired, so recovery for all five schemes replays over sound
//     pages. It must run there — redo applies records from inside a log
//     scan, which holds the log mutex, so repair (which forces and scans
//     the log itself) cannot run from redo's own page fetches; those fail
//     loudly instead (see fetchShardLocked).
//   - Scrub walks the volume page by page, verifying the stored copy and
//     repairing what it finds, taking the quiesce gate and one shard latch
//     per page so it never blocks a checkpoint for more than one page.
//     Config.ScrubEvery starts the paced background loop over it.
//
// Locking: repair runs under gate.R → one shard latch, and touches only the
// log and store below it — the §9 latch order is unchanged. The replay cut
// is the stable log end captured after one Force, so a repaired page's LSN
// never exceeds the stable log (the write-ahead rule holds) and records a
// concurrent transaction appends mid-repair are excluded.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/page"
)

// ErrUnrepairable means a corrupt page could not be rebuilt from the live
// log or the archive (no backup coverage). Errors carrying it also wrap the
// disk.ErrCorruptPage that triggered the repair, so both errors.Is checks
// hold end-to-end.
var ErrUnrepairable = errors.New("server: corrupt page is unrepairable")

// DefaultScrubPages is the per-tick page budget of the background scrubber
// when Config.ScrubPages is zero.
const DefaultScrubPages = 64

// ScrubReport summarizes one scrub pass (qsctl scrub).
type ScrubReport struct {
	Scanned      int64 `json:"scanned"`
	Failures     int64 `json:"failures"`
	Repaired     int64 `json:"repaired"`
	Unrepairable int64 `json:"unrepairable"`
}

// add folds one page's outcome into the report.
func (r *ScrubReport) add(failed, repaired bool, err error) {
	r.Scanned++
	if failed {
		r.Failures++
		if repaired {
			r.Repaired++
		}
	}
	if err != nil {
		r.Unrepairable++
	}
}

// Scrub verifies up to limit stored pages starting at the scrub cursor,
// repairing every corrupt page it finds; limit <= 0 verifies the whole
// volume from page zero. The quiesce gate and shard latch are taken per
// page, so a full pass never stalls checkpoints or restarts. The first
// unrepairable page stops the pass and is returned (with the partial
// report): corruption the server cannot heal must be surfaced, not scrolled
// past.
func (sn *Session) Scrub(limit int) (ScrubReport, error) {
	s := sn.s
	var report ScrubReport
	s.gate.RLock()
	s.allocMu.Lock()
	end := s.nextPage
	s.allocMu.Unlock()
	s.gate.RUnlock()
	start := page.ID(0)
	if limit > 0 {
		s.scrubMu.Lock()
		start = s.scrubCursor
		if start >= end {
			start = 0
		}
		next := start + page.ID(limit)
		if next >= end {
			next = 0
		}
		s.scrubCursor = next
		s.scrubMu.Unlock()
	} else {
		limit = int(end)
	}
	for i, pid := 0, start; i < limit && pid < end; i, pid = i+1, pid+1 {
		failed, repaired, err := s.scrubOne(sn, pid)
		report.add(failed, repaired, err)
		if err != nil {
			return report, err
		}
	}
	return report, nil
}

// scrubOne verifies one stored page under the gate and its shard latch,
// repairing it if corrupt. Absent pages (never written) are fine.
func (s *Server) scrubOne(sn *Session, pid page.ID) (failed, repaired bool, err error) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	sh := s.pool.Lock(pid)
	defer sh.Unlock()
	atomic.AddInt64(&s.stats.ScrubScanned, 1)
	var buf [page.Size]byte
	rerr := s.store.ReadPage(pid, buf[:])
	switch {
	case rerr == nil || errors.Is(rerr, disk.ErrNotFound):
		return false, false, nil
	case errors.Is(rerr, disk.ErrCorruptPage):
		atomic.AddInt64(&s.stats.ChecksumFailures, 1)
		sn.meter().DataRead(1)
		if err := s.repairShardLocked(sn, sh, pid, rerr, buf[:]); err != nil {
			return true, false, err
		}
		return true, true, nil
	default:
		return false, false, rerr
	}
}

// repairShardLocked rebuilds pid's stored copy after corruptErr and writes
// it home, leaving the repaired image in buf. Caller holds pid's shard
// latch. On success the stats count a repair; on failure the error wraps
// ErrUnrepairable and corruptErr and the unrepairable counter advances.
func (s *Server) repairShardLocked(sn *Session, sh *buffer.PoolShard, pid page.ID, corruptErr error, buf []byte) error {
	img, err := s.repairImage(sn, sh, pid, corruptErr)
	if err != nil {
		atomic.AddInt64(&s.stats.PagesUnrepairable, 1)
		return err
	}
	if werr := s.store.WritePage(pid, img); werr != nil {
		return fmt.Errorf("server: writing repaired page %v: %w", pid, werr)
	}
	sn.meter().DataWriteAsync(1)
	atomic.AddInt64(&s.stats.DataWrites, 1)
	atomic.AddInt64(&s.stats.PagesRepaired, 1)
	copy(buf, img)
	return nil
}

// repairImage produces the bytes pid's stored copy should hold, trying in
// order: the clean pooled frame (the cache is the authoritative copy), the
// live log, Config.RepairPage (the archive). The shard latch is held, so
// the page cannot change mid-repair.
//
//qslint:allow latch-io: repair forces the log under the held shard latch on purpose — the latch is what freezes the frame while its bytes are rebuilt, and every repair source is cut at the stable end
func (s *Server) repairImage(sn *Session, sh *buffer.PoolShard, pid page.ID, corruptErr error) ([]byte, error) {
	// The write-ahead rule for everything below: repairs are cut at the
	// stable log end, so force once up front.
	sn.meter().LogWrite(s.log.Force())
	if s.cfg.Mode != ModeWPL {
		if f := sh.Peek(pid); f != nil {
			// The pooled frame supersedes the stored copy (any disk state is
			// a flush of some frame state); writing it home is the cheapest
			// repair. Under WPL the frame may hold an uncommitted shipped
			// copy that must not reach the permanent location, so WPL skips
			// this path.
			return append([]byte(nil), f.Bytes()...), nil
		}
	}
	if pid == superblockPage {
		// The superblock is rebuilt from the log, not the archive: an
		// archived copy could name a checkpoint the log has truncated away,
		// and restart would then skip redo it still needs.
		sb, err := s.superblockFromLog()
		if err != nil {
			return nil, fmt.Errorf("%w: %v: %v: %w", ErrUnrepairable, pid, err, corruptErr)
		}
		return encodeSuperblock(sb), nil
	}
	if img := s.repairFromLog(sn, pid); img != nil {
		return img, nil
	}
	if s.cfg.RepairPage != nil {
		img, err := s.cfg.RepairPage(pid)
		if err != nil {
			return nil, fmt.Errorf("%w: %v: %v: %w", ErrUnrepairable, pid, err, corruptErr)
		}
		return img, nil
	}
	return nil, fmt.Errorf("%w: %v: no archive wired and the live log cannot rebuild it: %w",
		ErrUnrepairable, pid, corruptErr)
}

// repairFromLog rebuilds pid from the live log alone, or returns nil if the
// log does not fully determine the page. ESM/REDO replay needs the page's
// creation image (clients log one whole-page image when a page is born, the
// PD-style repair source) still in the log, followed by every later update;
// WPL needs the newest committed whole-page image — and under WPL every
// page not yet installed has one, while installed pages are repairable from
// the archive. Replay is cut at the stable end captured here; the caller
// forced the log, so only records appended mid-repair fall outside it.
func (s *Server) repairFromLog(sn *Session, pid page.ID) []byte {
	stable := s.log.StableEnd()
	var img []byte
	if s.cfg.Mode == ModeWPL {
		type candidate struct {
			tid  logrec.TID
			data []byte
		}
		var cands []candidate
		committed := make(map[logrec.TID]bool)
		_ = s.log.Scan(s.log.Head(), func(r *logrec.Record) bool {
			if r.LSN+uint64(r.EncodedSize()) > stable {
				return false
			}
			switch r.Type {
			case logrec.TypePageImage:
				if r.Page == pid {
					cands = append(cands, candidate{tid: r.TID, data: append([]byte(nil), r.After...)})
				}
			case logrec.TypeCommit:
				committed[r.TID] = true
			}
			return true
		})
		for i := len(cands) - 1; i >= 0; i-- {
			if committed[cands[i].tid] {
				// Installed verbatim, exactly as installWPLLocked writes it
				// (WPL pages are never re-stamped with server LSNs).
				img = cands[i].data
				break
			}
		}
		sn.meter().LogRead(1)
		return img
	}
	complete := true
	_ = s.log.Scan(s.log.Head(), func(r *logrec.Record) bool {
		if r.Page != pid {
			return true
		}
		if r.LSN+uint64(r.EncodedSize()) > stable {
			return false
		}
		switch r.Type {
		case logrec.TypePageImage:
			img = append(img[:0], r.After...)
			page.Wrap(img).SetLSN(r.LSN)
		case logrec.TypeUpdate, logrec.TypeCLR:
			if img == nil {
				// Updates to a page born before the log head: the prefix is
				// gone, only the archive can rebuild it.
				complete = false
				return false
			}
			copy(img[r.Off:int(r.Off)+len(r.After)], r.After)
			page.Wrap(img).SetLSN(r.LSN)
		}
		return true
	})
	sn.meter().LogRead(1)
	if !complete {
		return nil
	}
	return img
}

// superblockFromLog reconstructs the superblock from the newest checkpoint
// record in the live log. The truncation invariant keeps the newest
// checkpoint record in the log, and the superblock is rewritten exactly at
// checkpoints, so the reconstruction equals the lost copy.
func (s *Server) superblockFromLog() (superblock, error) {
	var (
		found   bool
		ckptLSN uint64
		payload []byte
	)
	err := s.log.Scan(s.log.Head(), func(r *logrec.Record) bool {
		if r.Type == logrec.TypeCheckpoint {
			found = true
			ckptLSN = r.LSN
			payload = append(payload[:0], r.After...)
		}
		return true
	})
	if err != nil {
		return superblock{}, err
	}
	if !found {
		return superblock{}, errors.New("server: no checkpoint record in the live log")
	}
	ckpt, err := decodeCkpt(payload)
	if err != nil {
		return superblock{}, err
	}
	return superblock{
		checkpointLSN: ckptLSN,
		nextPage:      ckpt.nextPage,
		nextTID:       ckpt.nextTID,
		hasCheckpoint: true,
	}, nil
}

// verifyVolumeQuiesced verifies every stored data page and repairs the
// corrupt ones. It runs inside Restart — the caller holds gate.W and the
// log is quiesced — when the volume is checksummed, so redo and undo only
// ever replay over sound pages (the superblock was already verified by
// readSuperblock). The first unrepairable page fails the restart: recovery
// must not run over bytes it knows are damaged.
func (s *Server) verifyVolumeQuiesced(sn *Session) error {
	s.allocMu.Lock()
	end := s.nextPage
	s.allocMu.Unlock()
	var buf [page.Size]byte
	for pid := page.ID(0); pid < end; pid++ {
		if pid == superblockPage {
			continue
		}
		atomic.AddInt64(&s.stats.ScrubScanned, 1)
		sn.meter().DataRead(1)
		err := s.store.ReadPage(pid, buf[:])
		switch {
		case err == nil || errors.Is(err, disk.ErrNotFound):
		case errors.Is(err, disk.ErrCorruptPage):
			atomic.AddInt64(&s.stats.ChecksumFailures, 1)
			sh := s.pool.Lock(pid)
			rerr := s.repairShardLocked(sn, sh, pid, err, buf[:])
			sh.Unlock()
			if rerr != nil {
				return rerr
			}
		default:
			return err
		}
	}
	return nil
}

// scrubWorker is the paced background scrubber: every Config.ScrubEvery it
// verifies a Config.ScrubPages batch of stored pages. Unrepairable pages
// are counted (PagesUnrepairable) and left for demand reads to report; the
// loop keeps scanning the rest of the volume.
func (s *Server) scrubWorker(every time.Duration, batch int) {
	defer s.scrubWG.Done()
	sn := s.NewSession(nil, nil)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.scrubStop:
			return
		case <-tick.C:
			_, _ = sn.Scrub(batch)
		}
	}
}
