package server

// Tests for the background page cleaner and fuzzy checkpoints (DESIGN.md
// §13). The concurrency tests here are run under the race detector by
// `make race-cleaner`: a paced cleaner plus a fuzzy checkpointer racing
// committing sessions is exactly the interleaving the latch order has to
// survive.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
)

// TestCleanerConcurrentWithCommits runs the paced background cleaner and a
// fuzzy checkpointer concurrently with committing sessions over a wide
// dirty set, then crashes and restarts to prove the pages the cleaner wrote
// home (and the DPT entries it retired) never cost a committed update.
func TestCleanerConcurrentWithCommits(t *testing.T) {
	for _, mode := range []Mode{ModeESM, ModeREDO} {
		t.Run(mode.String(), func(t *testing.T) {
			s := New(Config{
				Mode:             mode,
				PoolPages:        64,
				LogCapacity:      16 << 20,
				LockTimeout:      time.Second,
				CheckpointEvery:  1 << 30, // driven explicitly below
				FuzzyCheckpoints: true,
				CleanerEvery:     500 * time.Microsecond,
				CleanerBatch:     8,
				DirtyPageTarget:  4,
			})
			defer s.Close()
			// A modeled log latency keeps the run long enough for the paced
			// worker to tick, and the per-worker page fan-out keeps the DPT
			// backlog above the target so those ticks actually clean.
			s.log.SetWriteDelay(200 * time.Microsecond)

			const workers, pagesPer, txns = 4, 6, 30
			errs := make([]error, workers)
			finals := make([][][]byte, workers)
			pids := make([][]page.ID, workers)
			slots := make([][]int, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				finals[w] = make([][]byte, pagesPer)
				pids[w] = make([]page.ID, pagesPer)
				slots[w] = make([]int, pagesPer)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sn := s.NewSession(nil, nil)
					for j := 0; j < pagesPer; j++ {
						pid, slot, err := workerCreate(sn, []byte(fmt.Sprintf("w%d page %04d", w, j)))
						if err != nil {
							errs[w] = err
							return
						}
						pids[w][j], slots[w][j] = pid, slot
						finals[w][j] = []byte(fmt.Sprintf("w%d page %04d", w, j))
					}
					for i := 0; i < txns; i++ {
						j := i % pagesPer
						finals[w][j] = []byte(fmt.Sprintf("w%d turn %04d", w, i))
						if err := workerUpdate(sn, pids[w][j], slots[w][j], finals[w][j]); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			// Fuzzy checkpoints race the workers and the cleaner; none of
			// them may block commits for the duration of a flush.
			ckpt := s.NewSession(nil, nil)
			stop := make(chan struct{})
			var ckptWG sync.WaitGroup
			ckptWG.Add(1)
			go func() {
				defer ckptWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if err := ckpt.Checkpoint(); err != nil {
							t.Errorf("fuzzy checkpoint: %v", err)
							return
						}
						time.Sleep(200 * time.Microsecond)
					}
				}
			}()
			wg.Wait()
			close(stop)
			ckptWG.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}

			st := s.ExtendedStats()
			if st.CleanerPasses == 0 {
				t.Error("cleaner never ran a pass")
			}
			if st.CkptStallNs != 0 {
				t.Errorf("fuzzy checkpoints stalled the gate for %dns", st.CkptStallNs)
			}

			s.Crash()
			sn := s.NewSession(nil, nil)
			if err := sn.Restart(); err != nil {
				t.Fatalf("restart: %v", err)
			}
			for w := 0; w < workers; w++ {
				for j := 0; j < pagesPer; j++ {
					got := readObject(t, sn, pids[w][j], slots[w][j], len(finals[w][j]))
					if !bytes.Equal(got, finals[w][j]) {
						t.Errorf("worker %d page %d after restart: got %q want %q", w, j, got, finals[w][j])
					}
				}
			}
		})
	}
}

// TestCleanerBackpressureBoundsDPT disables the paced worker and relies on
// commit backpressure alone: once the DPT passes 2x the target, committers
// clean small quanta inline, so the table cannot grow without bound.
func TestCleanerBackpressureBoundsDPT(t *testing.T) {
	const target = 4
	s := New(Config{
		Mode:             ModeESM,
		PoolPages:        256,
		LogCapacity:      16 << 20,
		CheckpointEvery:  1 << 30,
		FuzzyCheckpoints: true,
		DirtyPageTarget:  target, // no CleanerEvery: backpressure only
	})
	defer s.Close()
	sn := s.NewSession(nil, nil)
	// Each iteration dirties a fresh page, so without backpressure the DPT
	// would end at 64 entries.
	for i := 0; i < 64; i++ {
		if _, _, err := workerCreate(sn, []byte(fmt.Sprintf("page %04d....", i))); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	st := s.ExtendedStats()
	if st.CleanerPages == 0 {
		t.Error("backpressure never cleaned a page")
	}
	// The watermark plus one commit's worth of slack: a commit dirties its
	// page before the backpressure check runs.
	if bound := int64(2*target + backpressureQuantum); st.DirtyPages > bound {
		t.Errorf("DPT grew to %d entries, want <= %d", st.DirtyPages, bound)
	}
}

// TestCleanSkipsHotPages covers CleanerProtect: a page used within the
// protection window is skipped, not written.
func TestCleanSkipsHotPages(t *testing.T) {
	s := New(Config{
		Mode:             ModeESM,
		PoolPages:        64,
		LogCapacity:      16 << 20,
		CheckpointEvery:  1 << 30,
		FuzzyCheckpoints: true,
		CleanerProtect:   1 << 30, // everything is hot
	})
	defer s.Close()
	sn := s.NewSession(nil, nil)
	createPage(t, sn, []byte("hot page....."))
	n, err := sn.Clean(16)
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	if n != 0 {
		t.Errorf("cleaned %d hot pages, want 0", n)
	}
	if st := s.ExtendedStats(); st.CleanerHotSkips == 0 {
		t.Error("hot skip not counted")
	}
}

// TestMaintenanceDuringRestartReturnsErrRestarting pins the typed error:
// Checkpoint and Clean called while a restart holds the gate fail fast with
// ErrRestarting instead of queueing behind the write side.
func TestMaintenanceDuringRestartReturnsErrRestarting(t *testing.T) {
	s := New(Config{
		Mode:             ModeESM,
		PoolPages:        64,
		LogCapacity:      16 << 20,
		CheckpointEvery:  1 << 30,
		FuzzyCheckpoints: true,
	})
	defer s.Close()
	sn := s.NewSession(nil, nil)
	createPage(t, sn, []byte("before crash."))

	s.restarting.Store(true)
	if err := sn.Checkpoint(); err != ErrRestarting {
		t.Errorf("Checkpoint during restart: got %v, want ErrRestarting", err)
	}
	if _, err := sn.Clean(1); err != ErrRestarting {
		t.Errorf("Clean during restart: got %v, want ErrRestarting", err)
	}
	s.restarting.Store(false)

	if err := sn.Checkpoint(); err != nil {
		t.Errorf("Checkpoint after restart cleared: %v", err)
	}
}
