package wire

// TCP transport: a compact binary protocol for running the server as a
// standalone daemon (cmd/quickstored) with real clients over a socket.
//
// Request frame:  [u32 body-len][u8 op][u64 tid][u32 pid][u8 mode][payload]
// Response frame: [u32 body-len][u8 status][payload]
//
// status 0 means success with result payload; otherwise the payload is an
// error message and the status selects a sentinel so errors.Is works across
// the wire for the errors callers branch on.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"repro/internal/archive"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/repl"
	"repro/internal/server"
)

// Op codes.
const (
	opBegin = iota + 1
	opLock
	opAllocPage
	opReadPage
	opShipLog
	opShipPage
	opCommit
	opAbort
	opFaults    // arm/disarm a fault plan (management, not part of Service)
	opStats     // fetch DaemonStats as JSON (management, not part of Service)
	opBackup    // take an online fuzzy backup (management, not part of Service)
	opArchStats // fetch archive.Status as JSON (management, not part of Service)
	opScrub     // verify/repair stored pages now (management, not part of Service)
	opReplFetch // standby pull of stable WAL records (management, not part of Service)
	opPromote   // promote a standby to primary (management, not part of Service)
	// Two-phase commit (the TwoPC surface; Adopt rides opBegin with tid≠0).
	opPrepare        // force a PREPARE record and vote yes
	opDecide         // deliver the outcome; mode selects abort/commit/forget
	opResolveInDoubt // recovery resolution against the coordinator shard
)

// opDecide mode byte values.
const (
	decideAbort  = 0
	decideCommit = 1
	decideForget = 2
)

// opName returns the stable human-readable name of an op code, used as the
// key of the per-op request counters in DaemonStats.
func opName(op byte) string {
	switch op {
	case opBegin:
		return "begin"
	case opLock:
		return "lock"
	case opAllocPage:
		return "alloc-page"
	case opReadPage:
		return "read-page"
	case opShipLog:
		return "ship-log"
	case opShipPage:
		return "ship-page"
	case opCommit:
		return "commit"
	case opAbort:
		return "abort"
	case opFaults:
		return "faults"
	case opStats:
		return "stats"
	case opBackup:
		return "backup"
	case opArchStats:
		return "archive-status"
	case opScrub:
		return "scrub"
	case opReplFetch:
		return "repl-fetch"
	case opPromote:
		return "promote"
	case opPrepare:
		return "prepare"
	case opDecide:
		return "decide"
	case opResolveInDoubt:
		return "resolve-in-doubt"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// opCounters counts requests served per op across every connection of one
// daemon. Snapshots are plain maps; consumers (qsctl stats) must sort the
// keys before printing.
type opCounters struct {
	mu sync.Mutex
	m  map[string]int64
}

func newOpCounters() *opCounters {
	return &opCounters{m: make(map[string]int64)}
}

func (c *opCounters) inc(op byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m[opName(op)]++
	c.mu.Unlock()
}

func (c *opCounters) snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Status codes.
const (
	stOK = iota
	stError
	stDeadlock
	stNoTxn
	stFaultAbort // a disk fault hit this request; the transaction was aborted
	stCorrupt    // a corrupt page was detected and could not be repaired
	stReplGap    // repl fetch cursor below the primary's log head (re-bootstrap)
	stStandby    // this server is a standby; writes must go to the primary
	stInDoubt    // the transaction is prepared; only its coordinator's decision ends it
)

// ErrTxnAbortedByFault is the client-side form of stFaultAbort: the server
// hit a (typically injected) disk error serving this transaction and
// aborted it rather than failing the process. Not retryable — the
// transaction is gone; the application starts a new one.
var ErrTxnAbortedByFault = errors.New("wire: transaction aborted after server disk fault")

// maxFrame bounds a frame body; pages plus headers fit comfortably.
const maxFrame = 1 << 20

type frame struct {
	op      byte
	tid     logrec.TID
	pid     page.ID
	mode    byte
	payload []byte
}

func writeFrame(w io.Writer, head []byte, payload []byte) error {
	var lenbuf [4]byte
	binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(head)+len(payload)))
	if _, err := w.Write(lenbuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readBody(r io.Reader) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenbuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

func writeRequest(w io.Writer, f frame) error {
	var head [14]byte
	head[0] = f.op
	binary.LittleEndian.PutUint64(head[1:], uint64(f.tid))
	binary.LittleEndian.PutUint32(head[9:], uint32(f.pid))
	head[13] = f.mode
	return writeFrame(w, head[:], f.payload)
}

func parseRequest(body []byte) (frame, error) {
	if len(body) < 14 {
		return frame{}, errors.New("wire: short request")
	}
	return frame{
		op:      body[0],
		tid:     logrec.TID(binary.LittleEndian.Uint64(body[1:])),
		pid:     page.ID(binary.LittleEndian.Uint32(body[9:])),
		mode:    body[13],
		payload: body[14:],
	}, nil
}

// ServeOpts configures optional server-side transport features.
type ServeOpts struct {
	// Faults, when non-nil, lets clients arm and disarm fault plans on the
	// daemon's data volume through the opFaults management op (qsctl faults).
	Faults *faultinject.Store
	// Archive, when non-nil, serves the opBackup and opArchStats management
	// ops (qsctl backup / archive-status) and adds archiver progress to
	// opStats responses.
	Archive *archive.Archiver
	// Repl, when non-nil, serves opReplFetch (a standby pulling this
	// primary's WAL) and adds shipping progress to opStats responses.
	Repl *repl.Primary
	// Standby, when non-nil, marks this daemon a hot standby: opPromote fails
	// it over to primary, and opStats responses carry apply progress.
	Standby *repl.Standby
}

// DaemonStats is the opStats response: the server's extended counters plus,
// when the daemon archives its log, the archiver's progress snapshot.
type DaemonStats struct {
	server.StatsX
	Archive *archive.Status `json:"archive,omitempty"`
	// Repl is the primary-side shipping snapshot when the daemon ships its
	// WAL to a standby; Standby is the apply snapshot when the daemon is one.
	Repl    *repl.PrimaryStatus `json:"repl,omitempty"`
	Standby *repl.StandbyStatus `json:"standby,omitempty"`
	// Ops counts requests served per wire op since the daemon started.
	Ops map[string]int64 `json:"ops,omitempty"`
	// InDoubt lists prepared-but-unresolved transaction branches on this
	// shard (qsctl 2pc-status and the router's recovery-resolution driver).
	InDoubt []server.InDoubtTxn `json:"in_doubt,omitempty"`
}

// Serve accepts connections on lis and dispatches requests to srv until the
// listener is closed. Each connection gets its own server session and
// goroutine, so multiple workstations can be served concurrently.
func Serve(lis net.Listener, srv *server.Server) error {
	return ServeWith(lis, srv, ServeOpts{})
}

// ServeWith is Serve with options.
func ServeWith(lis net.Listener, srv *server.Server, opts ServeOpts) error {
	ops := newOpCounters()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, srv, opts, ops)
	}
}

func serveConn(conn net.Conn, srv *server.Server, opts ServeOpts, ops *opCounters) {
	defer conn.Close()
	sn := srv.NewSession(nil, nil)
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	// Transactions begun on this connection; a client crash (connection
	// drop) aborts whatever is still active so its locks release and the
	// server keeps serving other clients — the availability argument for
	// server-side logs in §6 of the paper.
	active := make(map[logrec.TID]bool)
	defer func() {
		// Abort in TID order: each abort appends log records, and the sweep's
		// replay diff depends on the log byte stream being identical run to
		// run — map order would shuffle it.
		tids := make([]logrec.TID, 0, len(active))
		for tid := range active {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			// A prepared branch refuses the abort (ErrInDoubt) and survives the
			// disconnect: a yes vote binds the shard until the coordinator's
			// decision arrives, client crash or no client crash.
			sn.Abort(tid)
		}
	}()
	for {
		body, err := readBody(r)
		if err != nil {
			return // connection closed
		}
		f, err := parseRequest(body)
		if err != nil {
			return
		}
		ops.inc(f.op)
		var status byte
		var payload []byte
		if f.op == opFaults {
			status, payload = handleFaults(opts.Faults, f.payload)
		} else if f.op == opStats {
			status, payload = handleStats(srv, opts, ops)
		} else if f.op == opReplFetch {
			status, payload = handleReplFetch(opts.Repl, f.payload)
		} else if f.op == opPromote {
			status, payload = handlePromote(opts.Standby)
		} else if f.op == opBackup {
			status, payload = handleBackup(opts.Archive)
		} else if f.op == opArchStats {
			status, payload = handleArchStats(opts.Archive)
		} else if f.op == opScrub {
			status, payload = handleScrub(sn, f.payload)
		} else {
			status, payload = dispatch(sn, f)
		}
		switch status {
		case stOK:
			switch f.op {
			case opBegin:
				active[logrec.TID(binary.LittleEndian.Uint64(payload))] = true
			case opCommit, opAbort:
				delete(active, f.tid)
			case opDecide:
				if f.mode != decideForget {
					delete(active, f.tid)
				}
			}
		case stFaultAbort:
			// Graceful degradation: a disk fault failed this request, not the
			// process. Abort the affected transaction so its locks release
			// and every other client keeps running.
			if active[f.tid] {
				sn.Abort(f.tid)
				delete(active, f.tid)
			}
		}
		if err := writeFrame(w, []byte{status}, payload); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handleFaults serves the opFaults management op. Payload: [u8 arm][i64
// seed][plan name]; response payload is the name of the plan now armed, or
// empty when disarmed.
func handleFaults(fs *faultinject.Store, payload []byte) (byte, []byte) {
	if fs == nil {
		return stError, []byte("wire: fault injection not enabled on this server")
	}
	if len(payload) < 9 {
		return stError, []byte("wire: short faults request")
	}
	arm := payload[0] == 1
	if !arm {
		if err := fs.Disarm(); err != nil {
			return stError, []byte(err.Error())
		}
		return stOK, nil
	}
	seed := int64(binary.LittleEndian.Uint64(payload[1:9]))
	name := string(payload[9:])
	plan, ok := faultinject.Plans()[name]
	if !ok {
		return stError, []byte(fmt.Sprintf("wire: unknown fault plan %q (have %v)", name, faultinject.PlanNames()))
	}
	plan.Seed = seed
	fs.Arm(plan)
	return stOK, []byte(plan.Name)
}

// handleStats serves the opStats management op: the server's extended
// counter snapshot, JSON-encoded (a management op, so a self-describing
// format beats another hand-rolled binary layout).
func handleStats(srv *server.Server, opts ServeOpts, ops *opCounters) (byte, []byte) {
	ds := DaemonStats{StatsX: srv.ExtendedStats(), Ops: ops.snapshot(), InDoubt: srv.InDoubt()}
	if opts.Archive != nil {
		st := opts.Archive.Status()
		ds.Archive = &st
	}
	if opts.Repl != nil {
		st := opts.Repl.Status()
		ds.Repl = &st
	}
	if opts.Standby != nil {
		st := opts.Standby.Status()
		ds.Standby = &st
	}
	out, err := json.Marshal(ds)
	if err != nil {
		return stError, []byte(err.Error())
	}
	return stOK, out
}

// handleBackup serves the opBackup management op: take a fuzzy online backup
// now and return its BackupInfo as JSON.
func handleBackup(arch *archive.Archiver) (byte, []byte) {
	if arch == nil {
		return stError, []byte("wire: archiving not enabled on this server (start with -archive-dir)")
	}
	info, err := arch.Backup()
	if err != nil {
		return stError, []byte(err.Error())
	}
	out, err := json.Marshal(info)
	if err != nil {
		return stError, []byte(err.Error())
	}
	return stOK, out
}

// handleScrub serves the opScrub management op: verify (and repair) stored
// pages now. Payload: [u32 limit]; limit 0 scans the whole volume, a
// positive limit scans the next batch from the daemon's scrub cursor. The
// response is the ScrubReport as JSON; an unrepairable page stops the pass
// and comes back as stCorrupt so the client sees the typed error.
func handleScrub(sn *server.Session, payload []byte) (byte, []byte) {
	limit := 0
	if len(payload) >= 4 {
		limit = int(binary.LittleEndian.Uint32(payload))
	}
	report, err := sn.Scrub(limit)
	if err != nil {
		return stCorrupt, []byte(err.Error())
	}
	out, err := json.Marshal(report)
	if err != nil {
		return stError, []byte(err.Error())
	}
	return stOK, out
}

// handleReplFetch serves the opReplFetch management op: one standby pull.
// Payload: [u64 from][u64 applied][u32 maxBytes]; response payload is
// repl.EncodeBatch. A cursor the primary has already reclaimed comes back as
// stReplGap so the standby sees repl.ErrGap and re-bootstraps.
func handleReplFetch(p *repl.Primary, payload []byte) (byte, []byte) {
	if p == nil {
		return stError, []byte("wire: replication not enabled on this server (start with -repl)")
	}
	if len(payload) < 20 {
		return stError, []byte("wire: short repl-fetch request")
	}
	from := binary.LittleEndian.Uint64(payload)
	applied := binary.LittleEndian.Uint64(payload[8:])
	maxBytes := int(binary.LittleEndian.Uint32(payload[16:]))
	b, err := p.Fetch(from, applied, maxBytes)
	if err != nil {
		if errors.Is(err, repl.ErrGap) {
			return stReplGap, []byte(err.Error())
		}
		return stError, []byte(err.Error())
	}
	return stOK, repl.EncodeBatch(b)
}

// handlePromote serves the opPromote management op: quiesce the apply loop
// and fail the standby over to a writable primary (qsctl promote).
func handlePromote(sb *repl.Standby) (byte, []byte) {
	if sb == nil {
		return stError, []byte("wire: this server is not a standby (start with -replica-of)")
	}
	if err := sb.Promote(); err != nil {
		return stError, []byte(err.Error())
	}
	return stOK, nil
}

// handleArchStats serves the opArchStats management op.
func handleArchStats(arch *archive.Archiver) (byte, []byte) {
	if arch == nil {
		return stError, []byte("wire: archiving not enabled on this server (start with -archive-dir)")
	}
	out, err := json.Marshal(arch.Status())
	if err != nil {
		return stError, []byte(err.Error())
	}
	return stOK, out
}

func dispatch(sn *server.Session, f frame) (byte, []byte) {
	fail := func(err error) (byte, []byte) {
		switch {
		case errors.Is(err, lock.ErrDeadlock):
			return stDeadlock, []byte(err.Error())
		case errors.Is(err, server.ErrNoTxn):
			return stNoTxn, []byte(err.Error())
		case errors.Is(err, faultinject.ErrInjected):
			return stFaultAbort, []byte(err.Error())
		case errors.Is(err, disk.ErrCorruptPage):
			return stCorrupt, []byte(err.Error())
		case errors.Is(err, server.ErrStandby):
			return stStandby, []byte(err.Error())
		case errors.Is(err, server.ErrInDoubt):
			return stInDoubt, []byte(err.Error())
		default:
			return stError, []byte(err.Error())
		}
	}
	switch f.op {
	case opBegin:
		// A non-zero tid is an Adopt: the router registering a
		// coordinator-issued transaction id on this shard.
		tid := f.tid
		if tid != 0 {
			if err := sn.Adopt(tid); err != nil {
				return fail(err)
			}
		} else {
			tid = sn.Begin()
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(tid))
		return stOK, out[:]
	case opLock:
		if err := sn.Lock(f.tid, f.pid, lock.Mode(f.mode)); err != nil {
			return fail(err)
		}
		return stOK, nil
	case opAllocPage:
		pid, err := sn.AllocPage(f.tid)
		if err != nil {
			return fail(err)
		}
		var out [4]byte
		binary.LittleEndian.PutUint32(out[:], uint32(pid))
		return stOK, out[:]
	case opReadPage:
		data, err := sn.ReadPage(f.tid, f.pid, lock.Mode(f.mode))
		if err != nil {
			return fail(err)
		}
		return stOK, data
	case opShipLog:
		if err := sn.ShipLog(f.tid, f.payload); err != nil {
			return fail(err)
		}
		return stOK, nil
	case opShipPage:
		if err := sn.ShipPage(f.tid, f.pid, f.payload); err != nil {
			return fail(err)
		}
		return stOK, nil
	case opCommit:
		if err := sn.Commit(f.tid); err != nil {
			return fail(err)
		}
		return stOK, nil
	case opAbort:
		if err := sn.Abort(f.tid); err != nil {
			return fail(err)
		}
		return stOK, nil
	case opPrepare:
		coord, parts, err := logrec.DecodePrepareInfo(f.payload)
		if err != nil {
			return fail(err)
		}
		if err := sn.Prepare(f.tid, coord, parts); err != nil {
			return fail(err)
		}
		return stOK, nil
	case opDecide:
		switch f.mode {
		case decideAbort, decideCommit:
			if err := sn.Decide(f.tid, f.mode == decideCommit); err != nil {
				return fail(err)
			}
		case decideForget:
			if err := sn.Forget(f.tid); err != nil {
				return fail(err)
			}
		default:
			return stError, []byte(fmt.Sprintf("wire: unknown decide mode %d", f.mode))
		}
		return stOK, nil
	case opResolveInDoubt:
		commit, parts, err := sn.ResolveInDoubt(f.tid)
		if err != nil {
			return fail(err)
		}
		out := make([]byte, 5+4*len(parts))
		if commit {
			out[0] = 1
		}
		binary.LittleEndian.PutUint32(out[1:], uint32(len(parts)))
		for i, p := range parts {
			binary.LittleEndian.PutUint32(out[5+4*i:], uint32(p))
		}
		return stOK, out
	default:
		return stError, []byte(fmt.Sprintf("wire: unknown op %d", f.op))
	}
}

// TCPClient is a Service over a TCP (or any stream) connection. Calls are
// serialized; one client workstation issues one request at a time, as in the
// paper's page-server protocol. A client created by Dial remembers its
// address and transparently reconnects on the next call after a broken
// connection, so a retry layer above it (WithRetry) gets a fresh socket per
// attempt; a client wrapped around a raw connection cannot redial.
type TCPClient struct {
	mu   sync.Mutex
	addr string // non-empty when created by Dial: enables redial
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a quickstored server.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewTCPClient(conn)
	c.addr = addr
	return c, nil
}

// NewTCPClient wraps an established connection.
func NewTCPClient(conn net.Conn) *TCPClient {
	return &TCPClient{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}
}

// Close tears down the connection.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// dropConnLocked discards a connection after a transport error so the next
// call redials instead of reusing a stream with unknown framing state.
func (c *TCPClient) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

func (c *TCPClient) call(f frame) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if c.addr == "" {
			return nil, fmt.Errorf("%w: connection closed", net.ErrClosed)
		}
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return nil, err
		}
		c.conn = conn
		c.r = bufio.NewReaderSize(conn, 64<<10)
		c.w = bufio.NewWriterSize(conn, 64<<10)
	}
	if err := writeRequest(c.w, f); err != nil {
		c.dropConnLocked()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		c.dropConnLocked()
		return nil, err
	}
	body, err := readBody(c.r)
	if err != nil {
		c.dropConnLocked()
		return nil, err
	}
	if len(body) < 1 {
		return nil, errors.New("wire: empty response")
	}
	status, payload := body[0], body[1:]
	switch status {
	case stOK:
		return payload, nil
	case stDeadlock:
		return nil, fmt.Errorf("%w: %s", lock.ErrDeadlock, payload)
	case stNoTxn:
		return nil, fmt.Errorf("%w: %s", server.ErrNoTxn, payload)
	case stFaultAbort:
		return nil, fmt.Errorf("%w: %s", ErrTxnAbortedByFault, payload)
	case stCorrupt:
		return nil, fmt.Errorf("%w: %s", disk.ErrCorruptPage, payload)
	case stReplGap:
		return nil, fmt.Errorf("%w: %s", repl.ErrGap, payload)
	case stStandby:
		return nil, fmt.Errorf("%w: %s", server.ErrStandby, payload)
	case stInDoubt:
		return nil, fmt.Errorf("%w: %s", server.ErrInDoubt, payload)
	default:
		return nil, errors.New(string(payload))
	}
}

// Faults arms the named built-in fault plan with the given seed on the
// server (arm=true), or disarms injection (arm=false). It returns the name
// of the armed plan. The server must have been started with fault injection
// enabled (ServeOpts.Faults).
func (c *TCPClient) Faults(arm bool, name string, seed int64) (string, error) {
	payload := make([]byte, 9+len(name))
	if arm {
		payload[0] = 1
	}
	binary.LittleEndian.PutUint64(payload[1:9], uint64(seed))
	copy(payload[9:], name)
	out, err := c.call(frame{op: opFaults, payload: payload})
	return string(out), err
}

// ServerStats fetches the daemon's extended counter snapshot (qsctl stats),
// including archiver progress when the daemon archives its log.
func (c *TCPClient) ServerStats() (DaemonStats, error) {
	out, err := c.call(frame{op: opStats})
	if err != nil {
		return DaemonStats{}, err
	}
	var x DaemonStats
	if err := json.Unmarshal(out, &x); err != nil {
		return DaemonStats{}, fmt.Errorf("wire: bad stats response: %w", err)
	}
	return x, nil
}

// Backup asks the daemon to take a fuzzy online backup now (qsctl backup).
// The daemon must have been started with archiving enabled.
func (c *TCPClient) Backup() (archive.BackupInfo, error) {
	out, err := c.call(frame{op: opBackup})
	if err != nil {
		return archive.BackupInfo{}, err
	}
	var info archive.BackupInfo
	if err := json.Unmarshal(out, &info); err != nil {
		return archive.BackupInfo{}, fmt.Errorf("wire: bad backup response: %w", err)
	}
	return info, nil
}

// Scrub asks the daemon to verify (and repair) stored pages now (qsctl
// scrub). limit 0 scans the whole volume; a positive limit scans the next
// batch from the daemon's scrub cursor. An unrepairable page surfaces as an
// error matching disk.ErrCorruptPage.
func (c *TCPClient) Scrub(limit int) (server.ScrubReport, error) {
	var payload [4]byte
	binary.LittleEndian.PutUint32(payload[:], uint32(limit))
	out, err := c.call(frame{op: opScrub, payload: payload[:]})
	if err != nil {
		return server.ScrubReport{}, err
	}
	var report server.ScrubReport
	if err := json.Unmarshal(out, &report); err != nil {
		return server.ScrubReport{}, fmt.Errorf("wire: bad scrub response: %w", err)
	}
	return report, nil
}

// ReplFetch pulls one batch of stable WAL records from a primary daemon —
// the wire form of repl.FetchFunc, so a standby daemon can feed
// repl.NewStandby with c.ReplFetch directly.
func (c *TCPClient) ReplFetch(from, applied uint64, maxBytes int) (repl.Batch, error) {
	var payload [20]byte
	binary.LittleEndian.PutUint64(payload[0:], from)
	binary.LittleEndian.PutUint64(payload[8:], applied)
	binary.LittleEndian.PutUint32(payload[16:], uint32(maxBytes))
	out, err := c.call(frame{op: opReplFetch, payload: payload[:]})
	if err != nil {
		return repl.Batch{}, err
	}
	return repl.DecodeBatch(out)
}

// Promote asks a standby daemon to fail over to primary (qsctl promote).
func (c *TCPClient) Promote() error {
	_, err := c.call(frame{op: opPromote})
	return err
}

// Redirect points the client at a different server address — the failover
// hook (RetryPolicy.FailoverAddr): the broken connection is dropped and the
// next call dials addr instead. Only meaningful for clients created by Dial.
func (c *TCPClient) Redirect(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropConnLocked()
	c.addr = addr
}

// ArchiveStatus fetches the daemon's archiver snapshot (qsctl archive-status).
func (c *TCPClient) ArchiveStatus() (archive.Status, error) {
	out, err := c.call(frame{op: opArchStats})
	if err != nil {
		return archive.Status{}, err
	}
	var st archive.Status
	if err := json.Unmarshal(out, &st); err != nil {
		return archive.Status{}, fmt.Errorf("wire: bad archive-status response: %w", err)
	}
	return st, nil
}

// Begin implements Service.
func (c *TCPClient) Begin() (logrec.TID, error) {
	out, err := c.call(frame{op: opBegin})
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, errors.New("wire: bad Begin response")
	}
	return logrec.TID(binary.LittleEndian.Uint64(out)), nil
}

// Lock implements Service.
func (c *TCPClient) Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error {
	_, err := c.call(frame{op: opLock, tid: tid, pid: pid, mode: byte(mode)})
	return err
}

// AllocPage implements Service.
func (c *TCPClient) AllocPage(tid logrec.TID) (page.ID, error) {
	out, err := c.call(frame{op: opAllocPage, tid: tid})
	if err != nil {
		return 0, err
	}
	if len(out) != 4 {
		return 0, errors.New("wire: bad AllocPage response")
	}
	return page.ID(binary.LittleEndian.Uint32(out)), nil
}

// ReadPage implements Service.
func (c *TCPClient) ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error) {
	out, err := c.call(frame{op: opReadPage, tid: tid, pid: pid, mode: byte(mode)})
	if err != nil {
		return nil, err
	}
	if len(out) != page.Size {
		return nil, fmt.Errorf("wire: ReadPage returned %d bytes", len(out))
	}
	return out, nil
}

// ShipLog implements Service.
func (c *TCPClient) ShipLog(tid logrec.TID, data []byte) error {
	_, err := c.call(frame{op: opShipLog, tid: tid, payload: data})
	return err
}

// ShipPage implements Service.
func (c *TCPClient) ShipPage(tid logrec.TID, pid page.ID, data []byte) error {
	_, err := c.call(frame{op: opShipPage, tid: tid, pid: pid, payload: data})
	return err
}

// Commit implements Service.
func (c *TCPClient) Commit(tid logrec.TID) error {
	_, err := c.call(frame{op: opCommit, tid: tid})
	return err
}

// Abort implements Service.
func (c *TCPClient) Abort(tid logrec.TID) error {
	_, err := c.call(frame{op: opAbort, tid: tid})
	return err
}

var _ Service = (*TCPClient)(nil)
