package wire

// Two-phase-commit transport surface. The shard router (internal/shard)
// drives cross-shard atomic commit by calling these methods on each shard's
// transport alongside the ordinary Service operations. Every method is
// idempotent server-side (re-delivered votes, decisions, and resolutions are
// absorbed), so the retry layer may re-send all of them on any transient
// transport failure — unlike Commit, there is no ambiguous outcome: the
// forced PREPARE/DECIDE records make the protocol's state machine
// re-entrant.

import (
	"encoding/binary"
	"errors"

	"repro/internal/logrec"
	"repro/internal/server"
)

// TwoPC is the two-phase-commit surface of a shard, driven by the router for
// cross-shard transactions. Implemented by every transport in this package.
type TwoPC interface {
	// Adopt registers a coordinator-issued transaction id on this shard
	// (idempotent), creating an empty branch for it.
	Adopt(tid logrec.TID) error
	// Prepare asks the shard to vote yes on tid, forcing a PREPARE record
	// carrying the coordinator identity and participant set.
	Prepare(tid logrec.TID, coordinator int, participants []int) error
	// Decide delivers the coordinator's outcome to tid's branch; on the
	// coordinator shard a commit decision forces the DECIDE record first.
	Decide(tid logrec.TID, commit bool) error
	// Forget retires tid's decided entry on the coordinator once every
	// participant has confirmed its commit.
	Forget(tid logrec.TID) error
	// Resolve answers a recovery-resolution request against the coordinator
	// shard: commit if the decision is on record, presumed abort otherwise.
	Resolve(tid logrec.TID) (commit bool, participants []int, err error)
	// InDoubt lists the shard's prepared-but-unresolved branches.
	InDoubt() ([]server.InDoubtTxn, error)
}

// errTwoPCUnsupported surfaces a router pointed at a transport without the
// 2PC methods (a structural mirror such as faultinject.Transport).
var errTwoPCUnsupported = errors.New("wire: transport does not support two-phase commit")

// AsTwoPC extracts the TwoPC surface of a Service, unwrapping as needed.
// Returns nil when the transport does not support it.
func AsTwoPC(svc Service) TwoPC {
	t, _ := svc.(TwoPC)
	return t
}

// ---- Direct (in-process) ----

// Adopt implements TwoPC.
func (d *Direct) Adopt(tid logrec.TID) error {
	d.m.MsgToServer(reqHeader)
	err := d.sn.Adopt(tid)
	d.m.MsgToClient(respHeader)
	return err
}

// Prepare implements TwoPC.
func (d *Direct) Prepare(tid logrec.TID, coordinator int, participants []int) error {
	d.m.MsgToServer(reqHeader + len(logrec.EncodePrepareInfo(coordinator, participants)))
	err := d.sn.Prepare(tid, coordinator, participants)
	d.m.MsgToClient(respHeader)
	return err
}

// Decide implements TwoPC.
func (d *Direct) Decide(tid logrec.TID, commit bool) error {
	d.m.MsgToServer(reqHeader)
	err := d.sn.Decide(tid, commit)
	d.m.MsgToClient(respHeader)
	return err
}

// Forget implements TwoPC.
func (d *Direct) Forget(tid logrec.TID) error {
	d.m.MsgToServer(reqHeader)
	err := d.sn.Forget(tid)
	d.m.MsgToClient(respHeader)
	return err
}

// Resolve implements TwoPC.
func (d *Direct) Resolve(tid logrec.TID) (bool, []int, error) {
	d.m.MsgToServer(reqHeader)
	commit, parts, err := d.sn.ResolveInDoubt(tid)
	d.m.MsgToClient(respHeader + 5 + 4*len(parts))
	return commit, parts, err
}

// InDoubt implements TwoPC.
func (d *Direct) InDoubt() ([]server.InDoubtTxn, error) {
	d.m.MsgToServer(reqHeader)
	list := d.sn.InDoubt()
	d.m.MsgToClient(respHeader + 24*len(list))
	return list, nil
}

var _ TwoPC = (*Direct)(nil)

// ---- TCPClient ----

// Adopt implements TwoPC: it rides opBegin with a non-zero tid, so old
// daemons that predate sharding reject it as a malformed Begin rather than
// silently misrouting it.
func (c *TCPClient) Adopt(tid logrec.TID) error {
	if tid == 0 {
		return errors.New("wire: Adopt of transaction id 0")
	}
	_, err := c.call(frame{op: opBegin, tid: tid})
	return err
}

// Prepare implements TwoPC.
func (c *TCPClient) Prepare(tid logrec.TID, coordinator int, participants []int) error {
	_, err := c.call(frame{
		op:      opPrepare,
		tid:     tid,
		payload: logrec.EncodePrepareInfo(coordinator, participants),
	})
	return err
}

// Decide implements TwoPC.
func (c *TCPClient) Decide(tid logrec.TID, commit bool) error {
	mode := byte(decideAbort)
	if commit {
		mode = decideCommit
	}
	_, err := c.call(frame{op: opDecide, tid: tid, mode: mode})
	return err
}

// Forget implements TwoPC. Forget multiplexes onto opDecide with its own
// mode byte: it is the third and final delivery of an outcome in the forget
// protocol, and a dedicated op would buy nothing.
func (c *TCPClient) Forget(tid logrec.TID) error {
	_, err := c.call(frame{op: opDecide, tid: tid, mode: decideForget})
	return err
}

// Resolve implements TwoPC. Response payload: [u8 commit][u32 n][u32 ×n
// participant shard ids].
func (c *TCPClient) Resolve(tid logrec.TID) (bool, []int, error) {
	out, err := c.call(frame{op: opResolveInDoubt, tid: tid})
	if err != nil {
		return false, nil, err
	}
	if len(out) < 5 {
		return false, nil, errors.New("wire: short resolve response")
	}
	commit := out[0] == 1
	n := int(binary.LittleEndian.Uint32(out[1:]))
	if len(out) != 5+4*n {
		return false, nil, errors.New("wire: bad resolve response")
	}
	parts := make([]int, n)
	for i := range parts {
		parts[i] = int(binary.LittleEndian.Uint32(out[5+4*i:]))
	}
	return commit, parts, nil
}

// InDoubt implements TwoPC over the stats management op: the in-doubt list
// is part of DaemonStats, so qsctl and the router's resolution driver share
// one code path.
func (c *TCPClient) InDoubt() ([]server.InDoubtTxn, error) {
	ds, err := c.ServerStats()
	if err != nil {
		return nil, err
	}
	return ds.InDoubt, nil
}

var _ TwoPC = (*TCPClient)(nil)

// ---- retrier ----

// twopc returns the inner transport's 2PC surface, or nil.
func (c *retrier) twopc() TwoPC {
	t, _ := c.inner.(TwoPC)
	return t
}

// Adopt implements TwoPC (idempotent: re-adopting is a no-op).
func (c *retrier) Adopt(tid logrec.TID) error {
	t := c.twopc()
	if t == nil {
		return errTwoPCUnsupported
	}
	return c.do(resendAlways, func() error { return t.Adopt(tid) })
}

// Prepare implements TwoPC. Unlike Commit, a re-sent Prepare is safe: the
// server absorbs re-delivered vote requests after the first forced PREPARE,
// so ambiguity costs only a duplicate message, never a duplicate effect.
func (c *retrier) Prepare(tid logrec.TID, coordinator int, participants []int) error {
	t := c.twopc()
	if t == nil {
		return errTwoPCUnsupported
	}
	return c.do(resendAlways, func() error { return t.Prepare(tid, coordinator, participants) })
}

// Decide implements TwoPC (idempotent: deciding a finished branch is a
// no-op, and the coordinator's decided map absorbs duplicate DECIDEs).
func (c *retrier) Decide(tid logrec.TID, commit bool) error {
	t := c.twopc()
	if t == nil {
		return errTwoPCUnsupported
	}
	return c.do(resendAlways, func() error { return t.Decide(tid, commit) })
}

// Forget implements TwoPC (idempotent: forgetting a forgotten tid is a
// no-op).
func (c *retrier) Forget(tid logrec.TID) error {
	t := c.twopc()
	if t == nil {
		return errTwoPCUnsupported
	}
	return c.do(resendAlways, func() error { return t.Forget(tid) })
}

// Resolve implements TwoPC (a pure lookup; re-asking is free).
func (c *retrier) Resolve(tid logrec.TID) (bool, []int, error) {
	t := c.twopc()
	if t == nil {
		return false, nil, errTwoPCUnsupported
	}
	var commit bool
	var parts []int
	err := c.do(resendAlways, func() error {
		var e error
		commit, parts, e = t.Resolve(tid)
		return e
	})
	return commit, parts, err
}

// InDoubt implements TwoPC.
func (c *retrier) InDoubt() ([]server.InDoubtTxn, error) {
	t := c.twopc()
	if t == nil {
		return nil, errTwoPCUnsupported
	}
	var list []server.InDoubtTxn
	err := c.do(resendAlways, func() error {
		var e error
		list, e = t.InDoubt()
		return e
	})
	return list, err
}

var _ TwoPC = (*retrier)(nil)
