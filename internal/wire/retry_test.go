package wire

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
)

// scriptedService fails each operation with the scripted errors in order,
// then succeeds, counting delivered attempts.
type scriptedService struct {
	errs  []error // consumed one per call, any op
	calls int
}

func (s *scriptedService) step() error {
	s.calls++
	if len(s.errs) > 0 {
		err := s.errs[0]
		s.errs = s.errs[1:]
		return err
	}
	return nil
}

func (s *scriptedService) Begin() (logrec.TID, error)                { return 1, s.step() }
func (s *scriptedService) Lock(logrec.TID, page.ID, lock.Mode) error { return s.step() }
func (s *scriptedService) AllocPage(logrec.TID) (page.ID, error)     { return 1, s.step() }
func (s *scriptedService) ReadPage(logrec.TID, page.ID, lock.Mode) ([]byte, error) {
	return make([]byte, page.Size), s.step()
}
func (s *scriptedService) ShipLog(logrec.TID, []byte) error           { return s.step() }
func (s *scriptedService) ShipPage(logrec.TID, page.ID, []byte) error { return s.step() }
func (s *scriptedService) Commit(logrec.TID) error                    { return s.step() }
func (s *scriptedService) Abort(logrec.TID) error                     { return s.step() }

func retryPolicy(maxAttempts int, sleeps *[]time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: maxAttempts,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    16 * time.Millisecond,
		Jitter:      0.5,
		Seed:        1,
		Sleep:       func(d time.Duration) { *sleeps = append(*sleeps, d) },
	}
}

func TestWithRetryDisabledReturnsSameService(t *testing.T) {
	svc := &scriptedService{}
	if WithRetry(svc, RetryPolicy{}) != Service(svc) {
		t.Fatal("zero policy must not wrap")
	}
	if WithRetry(svc, RetryPolicy{MaxAttempts: 1}) != Service(svc) {
		t.Fatal("single-attempt policy must not wrap")
	}
}

func TestRetryRecoversFromTransientErrors(t *testing.T) {
	var sleeps []time.Duration
	svc := &scriptedService{errs: []error{io.EOF, io.ErrUnexpectedEOF}}
	r := WithRetry(svc, retryPolicy(5, &sleeps))
	if err := r.Lock(1, 1, lock.Shared); err != nil {
		t.Fatalf("lock after two transient failures: %v", err)
	}
	if svc.calls != 3 {
		t.Fatalf("delivered %d attempts, want 3", svc.calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("%d backoff sleeps, want 2", len(sleeps))
	}
	for i, d := range sleeps {
		lo := time.Duration(float64(2*time.Millisecond<<i) * 0.5)
		hi := 2 * time.Millisecond << i
		if d < lo || d > hi {
			t.Errorf("sleep %d = %v outside jittered window [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestRetryExhaustionReturnsServerUnavailable(t *testing.T) {
	var sleeps []time.Duration
	svc := &scriptedService{errs: []error{io.EOF, io.EOF, io.EOF, io.EOF}}
	r := WithRetry(svc, retryPolicy(3, &sleeps))
	err := r.Lock(1, 1, lock.Shared)
	if !errors.Is(err, ErrServerUnavailable) {
		t.Fatalf("err = %v, want ErrServerUnavailable", err)
	}
	if svc.calls != 3 {
		t.Fatalf("delivered %d attempts, want exactly MaxAttempts", svc.calls)
	}
}

func TestRetryDoesNotRetryApplicationErrors(t *testing.T) {
	for _, appErr := range []error{lock.ErrDeadlock, server.ErrNoTxn, ErrTxnAbortedByFault} {
		var sleeps []time.Duration
		svc := &scriptedService{errs: []error{appErr}}
		r := WithRetry(svc, retryPolicy(5, &sleeps))
		if err := r.Lock(1, 1, lock.Shared); !errors.Is(err, appErr) {
			t.Fatalf("err = %v, want %v unchanged", err, appErr)
		}
		if svc.calls != 1 {
			t.Fatalf("%v: delivered %d attempts, want 1 (no retry)", appErr, svc.calls)
		}
	}
}

func TestCommitAmbiguousFailureIsNotResent(t *testing.T) {
	var sleeps []time.Duration
	svc := &scriptedService{errs: []error{io.EOF}} // delivery state unknown
	r := WithRetry(svc, retryPolicy(5, &sleeps))
	err := r.Commit(1)
	if !errors.Is(err, ErrCommitOutcomeUnknown) {
		t.Fatalf("err = %v, want ErrCommitOutcomeUnknown", err)
	}
	if svc.calls != 1 {
		t.Fatalf("ambiguously failed commit was re-sent (%d attempts)", svc.calls)
	}
}

func TestCommitResentWhenGuaranteedUndelivered(t *testing.T) {
	var sleeps []time.Duration
	svc := &scriptedService{errs: []error{faultinject.ErrNotDelivered, faultinject.ErrNotDelivered}}
	r := WithRetry(svc, retryPolicy(5, &sleeps))
	if err := r.Commit(1); err != nil {
		t.Fatalf("commit after two undelivered drops: %v", err)
	}
	if svc.calls != 3 {
		t.Fatalf("delivered %d attempts, want 3", svc.calls)
	}
}

func TestShipLogAmbiguousFailureSurfacesRaw(t *testing.T) {
	var sleeps []time.Duration
	svc := &scriptedService{errs: []error{io.EOF}}
	r := WithRetry(svc, retryPolicy(5, &sleeps))
	err := r.ShipLog(1, []byte{1})
	if !errors.Is(err, io.EOF) || errors.Is(err, ErrCommitOutcomeUnknown) || errors.Is(err, ErrServerUnavailable) {
		t.Fatalf("err = %v, want the raw transport error (a re-send would double-append)", err)
	}
	if svc.calls != 1 {
		t.Fatalf("ambiguously failed ShipLog was re-sent (%d attempts)", svc.calls)
	}
}

func TestAbortTreatsNoTxnAsDone(t *testing.T) {
	var sleeps []time.Duration
	svc := &scriptedService{errs: []error{server.ErrNoTxn}}
	r := WithRetry(svc, retryPolicy(5, &sleeps))
	if err := r.Abort(1); err != nil {
		t.Fatalf("abort drawing ErrNoTxn must succeed (server already aborted): %v", err)
	}
}

func TestRetryBackoffDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		svc := &scriptedService{errs: []error{io.EOF, io.EOF, io.EOF, io.EOF}}
		WithRetry(svc, retryPolicy(5, &sleeps)).Lock(1, 1, lock.Shared)
		return sleeps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("sleep counts differ between identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sleep %d: %v vs %v — jitter not reproducible from the seed", i, a[i], b[i])
		}
	}
}

// TestRetryOverFlakyTransport runs the full protocol through an injected
// flaky transport: with a retry budget the client must make progress despite
// deterministic drops, because drops are guaranteed-undelivered.
func TestRetryOverFlakyTransport(t *testing.T) {
	srv := testServer(server.ModeESM)
	flaky := faultinject.WrapTransport(NewDirect(srv, nil, nil), faultinject.Plan{
		Name: "drops", Seed: 3, DropRate: 0.3,
	})
	flaky.Sleep = func(time.Duration) {}
	var sleeps []time.Duration
	svc := WithRetry(flaky, retryPolicy(10, &sleeps))
	for i := 0; i < 5; i++ {
		exerciseService(t, svc)
	}
	if got := srv.Stats().Commits; got != 5 {
		t.Fatalf("commits = %d, want 5", got)
	}
	if len(sleeps) == 0 {
		t.Fatal("a 30%% drop rate over 5 rounds injected no retries; the test exercised nothing")
	}
}

// TestTCPClientRedialsAfterBrokenConnection: a Dial-created client whose
// socket dies must fail the in-flight call, then transparently reconnect on
// the next one — the property WithRetry relies on for fresh-socket attempts.
func TestTCPClientRedialsAfterBrokenConnection(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(lis, srv)
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Begin(); err != nil {
		t.Fatal(err)
	}
	cli.mu.Lock()
	cli.conn.Close() // kill the socket out from under the client
	cli.mu.Unlock()
	if _, err := cli.Begin(); err == nil {
		t.Fatal("call over the killed socket must fail")
	}
	if _, err := cli.Begin(); err != nil {
		t.Fatalf("client did not redial after the broken connection: %v", err)
	}
}
