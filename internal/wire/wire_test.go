package wire

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
)

func testServer(mode server.Mode) *server.Server {
	return server.New(server.Config{
		Mode:            mode,
		PoolPages:       64,
		LogCapacity:     16 << 20,
		LockTimeout:     500 * time.Millisecond,
		CheckpointEvery: 1 << 30,
	})
}

// exerciseService runs the standard create/update/read protocol against any
// Service implementation.
func exerciseService(t *testing.T, svc Service) {
	t.Helper()
	tid, err := svc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.AllocPage(tid)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.New(pid)
	slot, _ := pg.Allocate(16)
	pg.WriteAt(slot, 0, []byte("through the wire"))
	img := logrec.NewPageImage(tid, pid, pg.Bytes())
	if err := svc.ShipLog(tid, img.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := svc.ShipPage(tid, pid, pg.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Commit(tid); err != nil {
		t.Fatal(err)
	}

	tid2, err := svc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	data, err := svc.ReadPage(tid2, pid, lock.Shared)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := page.Wrap(data).ReadAt(slot, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("through the wire")) {
		t.Fatalf("got %q", got)
	}
	if err := svc.Abort(tid2); err != nil {
		t.Fatal(err)
	}
}

func TestDirectTransport(t *testing.T) {
	srv := testServer(server.ModeESM)
	exerciseService(t, NewDirect(srv, nil, nil))
}

func TestTCPTransport(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(lis, srv)
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	exerciseService(t, cli)
}

func TestTCPErrorsCrossWire(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	go Serve(lis, srv)
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Unknown transaction sentinel survives the wire.
	if err := cli.Commit(12345); !errors.Is(err, server.ErrNoTxn) {
		t.Fatalf("err = %v, want ErrNoTxn", err)
	}
	// Deadlock sentinel survives the wire: two txns contending via a second
	// connection.
	cli2, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	t1, _ := cli.Begin()
	t2, _ := cli2.Begin()
	pid, _ := cli.AllocPage(t1)
	pg := page.New(pid)
	img := logrec.NewPageImage(t1, pid, pg.Bytes())
	cli.ShipLog(t1, img.Encode(nil))
	cli.ShipPage(t1, pid, pg.Bytes())
	cli.Commit(t1)
	t1b, _ := cli.Begin()
	if err := cli.Lock(t1b, pid, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := cli2.Lock(t2, pid, lock.Exclusive); !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	go Serve(lis, srv)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(lis.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < 10; i++ {
				exerciseService(t, cli)
			}
		}()
	}
	wg.Wait()
	if srv.Stats().Commits != 40 {
		t.Fatalf("commits = %d", srv.Stats().Commits)
	}
}

func TestFrameLimit(t *testing.T) {
	if _, err := readBody(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestClientCrashAbortsItsTransactions(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	go Serve(lis, srv)

	// Client A creates a page, then starts a transaction, locks the page
	// exclusively, and crashes (drops the connection) without committing.
	cliA, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tid, _ := cliA.Begin()
	pid, _ := cliA.AllocPage(tid)
	pg := page.New(pid)
	slot, _ := pg.Allocate(8)
	pg.WriteAt(slot, 0, []byte("original"))
	img := logrec.NewPageImage(tid, pid, pg.Bytes())
	cliA.ShipLog(tid, img.Encode(nil))
	cliA.ShipPage(tid, pid, pg.Bytes())
	if err := cliA.Commit(tid); err != nil {
		t.Fatal(err)
	}
	tid2, _ := cliA.Begin()
	if err := cliA.Lock(tid2, pid, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	pg.WriteAt(slot, 0, []byte("halfdone"))
	rec := logrec.NewUpdate(tid2, pid, 16, []byte("original"), []byte("halfdone"))
	cliA.ShipLog(tid2, rec.Encode(nil))
	cliA.Close() // crash: connection drops mid-transaction

	// Client B must be able to lock the page (A's abort released it) and
	// must see the committed value, not A's half-done update.
	cliB, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cliB.Close()
	tidB, _ := cliB.Begin()
	deadline := time.Now().Add(2 * time.Second)
	var data []byte
	for {
		data, err = cliB.ReadPage(tidB, pid, lock.Exclusive)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock never released after client crash: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := make([]byte, 8)
	page.Wrap(data).ReadAt(slot, 0, got)
	if string(got) != "original" {
		t.Fatalf("got %q, want the committed value", got)
	}
}
