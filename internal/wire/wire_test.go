package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
)

func testServer(mode server.Mode) *server.Server {
	return server.New(server.Config{
		Mode:            mode,
		PoolPages:       64,
		LogCapacity:     16 << 20,
		LockTimeout:     500 * time.Millisecond,
		CheckpointEvery: 1 << 30,
	})
}

// exerciseService runs the standard create/update/read protocol against any
// Service implementation.
func exerciseService(t *testing.T, svc Service) {
	t.Helper()
	tid, err := svc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.AllocPage(tid)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.New(pid)
	slot, _ := pg.Allocate(16)
	pg.WriteAt(slot, 0, []byte("through the wire"))
	img := logrec.NewPageImage(tid, pid, pg.Bytes())
	if err := svc.ShipLog(tid, img.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := svc.ShipPage(tid, pid, pg.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Commit(tid); err != nil {
		t.Fatal(err)
	}

	tid2, err := svc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	data, err := svc.ReadPage(tid2, pid, lock.Shared)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := page.Wrap(data).ReadAt(slot, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("through the wire")) {
		t.Fatalf("got %q", got)
	}
	if err := svc.Abort(tid2); err != nil {
		t.Fatal(err)
	}
}

func TestDirectTransport(t *testing.T) {
	srv := testServer(server.ModeESM)
	exerciseService(t, NewDirect(srv, nil, nil))
}

func TestTCPTransport(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(lis, srv)
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	exerciseService(t, cli)
}

func TestTCPErrorsCrossWire(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	go Serve(lis, srv)
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Unknown transaction sentinel survives the wire.
	if err := cli.Commit(12345); !errors.Is(err, server.ErrNoTxn) {
		t.Fatalf("err = %v, want ErrNoTxn", err)
	}
	// Deadlock sentinel survives the wire: two txns contending via a second
	// connection.
	cli2, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	t1, _ := cli.Begin()
	t2, _ := cli2.Begin()
	pid, _ := cli.AllocPage(t1)
	pg := page.New(pid)
	img := logrec.NewPageImage(t1, pid, pg.Bytes())
	cli.ShipLog(t1, img.Encode(nil))
	cli.ShipPage(t1, pid, pg.Bytes())
	cli.Commit(t1)
	t1b, _ := cli.Begin()
	if err := cli.Lock(t1b, pid, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := cli2.Lock(t2, pid, lock.Exclusive); !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	go Serve(lis, srv)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(lis.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < 10; i++ {
				exerciseService(t, cli)
			}
		}()
	}
	wg.Wait()
	if srv.Stats().Commits != 40 {
		t.Fatalf("commits = %d", srv.Stats().Commits)
	}
}

func TestFrameLimit(t *testing.T) {
	if _, err := readBody(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestClientCrashAbortsItsTransactions(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	go Serve(lis, srv)

	// Client A creates a page, then starts a transaction, locks the page
	// exclusively, and crashes (drops the connection) without committing.
	cliA, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tid, _ := cliA.Begin()
	pid, _ := cliA.AllocPage(tid)
	pg := page.New(pid)
	slot, _ := pg.Allocate(8)
	pg.WriteAt(slot, 0, []byte("original"))
	img := logrec.NewPageImage(tid, pid, pg.Bytes())
	cliA.ShipLog(tid, img.Encode(nil))
	cliA.ShipPage(tid, pid, pg.Bytes())
	if err := cliA.Commit(tid); err != nil {
		t.Fatal(err)
	}
	tid2, _ := cliA.Begin()
	if err := cliA.Lock(tid2, pid, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	pg.WriteAt(slot, 0, []byte("halfdone"))
	rec := logrec.NewUpdate(tid2, pid, 16, []byte("original"), []byte("halfdone"))
	cliA.ShipLog(tid2, rec.Encode(nil))
	cliA.Close() // crash: connection drops mid-transaction

	// Client B must be able to lock the page (A's abort released it) and
	// must see the committed value, not A's half-done update.
	cliB, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cliB.Close()
	tidB, _ := cliB.Begin()
	deadline := time.Now().Add(2 * time.Second)
	var data []byte
	for {
		data, err = cliB.ReadPage(tidB, pid, lock.Exclusive)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock never released after client crash: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := make([]byte, 8)
	page.Wrap(data).ReadAt(slot, 0, got)
	if string(got) != "original" {
		t.Fatalf("got %q, want the committed value", got)
	}
}

// rawSession speaks the wire protocol over a bare connection so tests can
// cut it off mid-frame.
type rawSession struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &rawSession{t: t, conn: conn}
}

func (s *rawSession) call(f frame) []byte {
	s.t.Helper()
	if err := writeRequest(s.conn, f); err != nil {
		s.t.Fatal(err)
	}
	body, err := readBody(s.conn)
	if err != nil {
		s.t.Fatal(err)
	}
	if body[0] != stOK {
		s.t.Fatalf("op %d: status %d: %s", f.op, body[0], body[1:])
	}
	return body[1:]
}

// setupMidCommit drives a raw connection to the point where a transaction
// with one un-committed update ("halfdone" over the committed "original") is
// ready to commit, and returns everything needed to finish the story.
func setupMidCommit(t *testing.T, addr string) (s *rawSession, tid logrec.TID, pid page.ID, slot int) {
	t.Helper()
	s = dialRaw(t, addr)
	tid = logrec.TID(binary.LittleEndian.Uint64(s.call(frame{op: opBegin})))
	pid = page.ID(binary.LittleEndian.Uint32(s.call(frame{op: opAllocPage, tid: tid})))
	pg := page.New(pid)
	slot, _ = pg.Allocate(8)
	pg.WriteAt(slot, 0, []byte("original"))
	img := logrec.NewPageImage(tid, pid, pg.Bytes())
	s.call(frame{op: opShipLog, tid: tid, payload: img.Encode(nil)})
	s.call(frame{op: opShipPage, tid: tid, pid: pid, payload: pg.Bytes()})
	s.call(frame{op: opCommit, tid: tid})

	tid = logrec.TID(binary.LittleEndian.Uint64(s.call(frame{op: opBegin})))
	s.call(frame{op: opLock, tid: tid, pid: pid, mode: byte(lock.Exclusive)})
	rec := logrec.NewUpdate(tid, pid, page.HeaderSize, []byte("original"), []byte("halfdone"))
	s.call(frame{op: opShipLog, tid: tid, payload: rec.Encode(nil)})
	pg.WriteAt(slot, 0, []byte("halfdone"))
	s.call(frame{op: opShipPage, tid: tid, pid: pid, payload: pg.Bytes()})
	return s, tid, pid, slot
}

// awaitValue polls until the page's lock is released, then returns its value.
func awaitValue(t *testing.T, addr string, pid page.ID, slot int) string {
	t.Helper()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	tid, _ := cli.Begin()
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, err := cli.ReadPage(tid, pid, lock.Exclusive)
		if err == nil {
			got := make([]byte, 8)
			page.Wrap(data).ReadAt(slot, 0, got)
			return string(got)
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock never released: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConnectionResetMidCommitFrame: the connection dies after only part of
// the commit request reached the server. The commit must not happen, the
// transaction must be aborted (locks released), and the committed value must
// survive.
func TestConnectionResetMidCommitFrame(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	go Serve(lis, srv)

	s, tid, pid, slot := setupMidCommit(t, lis.Addr().String())
	var buf bytes.Buffer
	if err := writeRequest(&buf, frame{op: opCommit, tid: tid}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.conn.Write(buf.Bytes()[:10]); err != nil { // 18-byte frame, cut at 10
		t.Fatal(err)
	}
	s.conn.Close() // reset mid-frame

	if got := awaitValue(t, lis.Addr().String(), pid, slot); got != "original" {
		t.Fatalf("got %q after a torn commit request, want the committed value", got)
	}
	if c := srv.Stats().Commits; c != 1 {
		t.Fatalf("commits = %d: a half-delivered commit request was executed", c)
	}
}

// TestConnectionResetAfterCommitFrame: the whole commit request reached the
// server but the connection died before the response. The transaction is
// durably committed (this is the ambiguity ErrCommitOutcomeUnknown reports)
// and its locks release.
func TestConnectionResetAfterCommitFrame(t *testing.T) {
	srv := testServer(server.ModeESM)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	go Serve(lis, srv)

	s, tid, pid, slot := setupMidCommit(t, lis.Addr().String())
	if err := writeRequest(s.conn, frame{op: opCommit, tid: tid}); err != nil {
		t.Fatal(err)
	}
	// Half-close (FIN after the frame) so the request is guaranteed delivered;
	// a full close could RST and discard it from the server's receive buffer
	// before it is read. The client never reads the response.
	s.conn.(*net.TCPConn).CloseWrite()
	defer s.conn.Close()

	if got := awaitValue(t, lis.Addr().String(), pid, slot); got != "halfdone" {
		t.Fatalf("got %q after a delivered commit, want the new value", got)
	}
	if c := srv.Stats().Commits; c != 2 {
		t.Fatalf("commits = %d, want 2 (the delivered commit must execute)", c)
	}
}
