package wire

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
)

// TestCorruptPageCrossesWireTyped drives the integrity surface end to end
// over TCP: scrubbing a healthy volume succeeds, and once a page is rotted
// beyond repair (fresh server, fresh log, no archive) both a demand read
// and a scrub fail with errors a remote client can match as
// disk.ErrCorruptPage — the stCorrupt status mapping in both directions.
func TestCorruptPageCrossesWireTyped(t *testing.T) {
	mem := disk.NewMemStore()
	cs := disk.NewChecksummed(mem)
	cfg := server.Config{
		Mode:            server.ModeESM,
		Store:           cs,
		PoolPages:       16,
		LogCapacity:     4 << 20,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	}
	srv := server.New(cfg)
	sn := srv.NewSession(nil, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(lis, srv)
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	tid, _ := cli.Begin()
	pid, err := cli.AllocPage(tid)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.New(pid)
	img := logrec.NewPageImage(tid, pid, pg.Bytes())
	if err := cli.ShipLog(tid, img.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := cli.ShipPage(tid, pid, pg.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := cli.Commit(tid); err != nil {
		t.Fatal(err)
	}
	// A scrub over the wire on the healthy volume reports clean.
	rep, err := cli.Scrub(0)
	if err != nil {
		t.Fatalf("scrub of healthy volume: %v", err)
	}
	if rep.Failures != 0 || rep.Unrepairable != 0 {
		t.Fatalf("healthy volume scrub report: %+v", rep)
	}
	// Persist everything and record the allocation bounds in the superblock.
	if err := sn.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// A fresh server over the same volume with a fresh, empty log and no
	// archive has no redundancy: corruption introduced now is unrepairable.
	srv2 := server.New(cfg)
	if err := srv2.NewSession(nil, nil).Restart(); err != nil {
		t.Fatalf("process restart on healthy volume: %v", err)
	}
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis2.Close()
	go Serve(lis2, srv2)
	cli2, err := Dial(lis2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := faultinject.RotPage(mem, pid, 42); err != nil {
		t.Fatal(err)
	}
	tid2, _ := cli2.Begin()
	if _, err := cli2.ReadPage(tid2, pid, lock.Shared); !errors.Is(err, disk.ErrCorruptPage) {
		t.Fatalf("demand read of unrepairable page over TCP: err = %v, want ErrCorruptPage", err)
	}
	cli2.Abort(tid2)
	rep2, err := cli2.Scrub(0)
	if !errors.Is(err, disk.ErrCorruptPage) {
		t.Fatalf("scrub of unrepairable page over TCP: err = %v (report %+v), want ErrCorruptPage", err, rep2)
	}
}
