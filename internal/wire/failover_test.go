package wire

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

// crashableListener tracks accepted connections so a test can crash the
// daemon abruptly: stop accepting and reset every live connection at once.
type crashableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *crashableListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conns = append(l.conns, conn)
	l.mu.Unlock()
	return conn, nil
}

func (l *crashableListener) crash() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// TestClientFailoverResolvesInDoubtCommit is the end-to-end failover story
// over real sockets: a semi-sync primary/standby pair, a client whose retry
// policy names the standby, a primary crash that leaves one commit in doubt,
// and the resolution protocol — the ambiguous commit surfaces as
// ErrCommitOutcomeUnknown, the client is redirected, a blind re-send of the
// commit draws ErrNoTxn (the transaction is finished one way or the other,
// exactly once), and a re-read against the promoted standby tells which way.
func TestClientFailoverResolvesInDoubtCommit(t *testing.T) {
	// Primary daemon: replication wired, semi-sync acks.
	plog := wal.New(16 << 20)
	p := repl.NewPrimary(plog, repl.PrimaryOptions{Mode: repl.AckSemiSync, AckTimeout: 5 * time.Second})
	pcfg := server.Config{
		Mode:            server.ModeESM,
		Log:             plog,
		PoolPages:       64,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	}
	p.Wire(&pcfg)
	psrv := server.New(pcfg)
	defer psrv.Close()
	rawLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	plis := &crashableListener{Listener: rawLis}
	go ServeWith(plis, psrv, ServeOpts{Repl: p})

	// Standby daemon: pulls the primary's WAL over the wire (ReplFetch is
	// the FetchFunc), serves its own clients read-only until promoted.
	slog := wal.New(16 << 20)
	ssrv := server.New(server.Config{
		Mode:            server.ModeESM,
		Log:             slog,
		Standby:         true,
		PoolPages:       64,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	})
	defer ssrv.Close()
	feed, err := Dial(plis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()
	sb := repl.NewStandby(slog, ssrv.NewSession(nil, nil), feed.ReplFetch,
		repl.StandbyOptions{PollInterval: 200 * time.Microsecond})
	go sb.Run()
	slis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer slis.Close()
	go ServeWith(slis, ssrv, ServeOpts{Standby: sb})

	// The application client: retries with the standby as failover target.
	cli, err := Dial(plis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	svc := WithRetry(cli, RetryPolicy{
		MaxAttempts:  3,
		BaseDelay:    time.Millisecond,
		FailoverAddr: slis.Addr().String(),
	})

	// A semi-sync-acked commit before the crash: must survive failover.
	tid, err := svc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := svc.AllocPage(tid)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.New(pid)
	slot, _ := pg.Allocate(8)
	pg.WriteAt(slot, 0, []byte("durable!"))
	img := logrec.NewPageImage(tid, pid, pg.Bytes())
	if err := svc.ShipLog(tid, img.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := svc.ShipPage(tid, pid, pg.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Commit(tid); err != nil {
		t.Fatal(err)
	}
	if st := p.Status(); st.AckTimeouts != 0 || st.AckedLSN < plog.StableEnd() {
		t.Fatalf("semi-sync commit not replicated before crash: %+v", st)
	}

	// A second transaction updates the page and is about to commit when the
	// primary dies: the in-doubt commit.
	tid2, err := svc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Lock(tid2, pid, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	upd := logrec.NewUpdate(tid2, pid, page.HeaderSize, []byte("durable!"), []byte("halfdone"))
	if err := svc.ShipLog(tid2, upd.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	pg.WriteAt(slot, 0, []byte("halfdone"))
	if err := svc.ShipPage(tid2, pid, pg.Bytes()); err != nil {
		t.Fatal(err)
	}

	plis.crash()
	if err := sb.Promote(); err != nil {
		t.Fatal(err)
	}

	// The commit is ambiguous — it may or may not have reached the dead
	// primary — so it must NOT be blindly re-sent anywhere; the client is
	// redirected for the operations that follow.
	if err := svc.Commit(tid2); !errors.Is(err, ErrCommitOutcomeUnknown) {
		t.Fatalf("commit against crashed primary = %v, want ErrCommitOutcomeUnknown", err)
	}

	// Resolution, step 1: re-sending the commit draws ErrNoTxn from the
	// promoted standby — the transaction is finished exactly once (here:
	// rolled back at promotion, like any transaction a crash cuts off).
	if err := svc.Commit(tid2); !errors.Is(err, server.ErrNoTxn) {
		t.Fatalf("commit re-send after failover = %v, want ErrNoTxn", err)
	}

	// Resolution, step 2: re-read. The acked commit's value is there, the
	// in-doubt update is not.
	tid3, err := svc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	data, err := svc.ReadPage(tid3, pid, lock.Shared)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	page.Wrap(data).ReadAt(slot, 0, got)
	if string(got) != "durable!" {
		t.Fatalf("value after failover = %q, want the acked commit", got)
	}
	if err := svc.Commit(tid3); err != nil {
		t.Fatal(err)
	}

	// The promoted standby accepts new writes through the same client.
	tid4, err := svc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Lock(tid4, pid, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	upd2 := logrec.NewUpdate(tid4, pid, page.HeaderSize, []byte("durable!"), []byte("restored"))
	if err := svc.ShipLog(tid4, upd2.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	pg.WriteAt(slot, 0, []byte("restored"))
	if err := svc.ShipPage(tid4, pid, pg.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Commit(tid4); err != nil {
		t.Fatal(err)
	}
}

// TestStandbyRejectsWritesOverWire: before promotion a standby daemon serves
// reads but refuses writes with the typed ErrStandby across the wire, and
// its stats advertise apply progress.
func TestStandbyRejectsWritesOverWire(t *testing.T) {
	plog := wal.New(16 << 20)
	p := repl.NewPrimary(plog, repl.PrimaryOptions{})
	pcfg := server.Config{
		Mode:            server.ModeESM,
		Log:             plog,
		PoolPages:       64,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	}
	p.Wire(&pcfg)
	psrv := server.New(pcfg)
	defer psrv.Close()
	plis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer plis.Close()
	go ServeWith(plis, psrv, ServeOpts{Repl: p})

	// One committed page on the primary.
	psn := psrv.NewSession(nil, nil)
	tid := psn.Begin()
	pid, err := psn.AllocPage(tid)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.New(pid)
	slot, _ := pg.Allocate(8)
	pg.WriteAt(slot, 0, []byte("readme!!"))
	img := logrec.NewPageImage(tid, pid, pg.Bytes())
	if err := psn.ShipLog(tid, img.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := psn.ShipPage(tid, pid, pg.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := psn.Commit(tid); err != nil {
		t.Fatal(err)
	}

	slog := wal.New(16 << 20)
	ssrv := server.New(server.Config{
		Mode:            server.ModeESM,
		Log:             slog,
		Standby:         true,
		PoolPages:       64,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	})
	defer ssrv.Close()
	feed, err := Dial(plis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()
	sb := repl.NewStandby(slog, ssrv.NewSession(nil, nil), feed.ReplFetch,
		repl.StandbyOptions{PollInterval: 200 * time.Microsecond})
	go sb.Run()
	defer sb.Stop()
	slis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer slis.Close()
	go ServeWith(slis, ssrv, ServeOpts{Standby: sb})

	deadline := time.Now().Add(5 * time.Second)
	for sb.Status().AppliedLSN < plog.StableEnd() {
		if time.Now().After(deadline) {
			t.Fatalf("standby never caught up: %+v", sb.Status())
		}
		time.Sleep(time.Millisecond)
	}

	cli, err := Dial(slis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	rtid, err := cli.Begin()
	if err != nil {
		t.Fatal(err)
	}
	data, err := cli.ReadPage(rtid, pid, lock.Shared)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	page.Wrap(data).ReadAt(slot, 0, got)
	if string(got) != "readme!!" {
		t.Fatalf("standby read over wire = %q", got)
	}
	if _, err := cli.AllocPage(rtid); !errors.Is(err, server.ErrStandby) {
		t.Fatalf("standby write over wire = %v, want ErrStandby", err)
	}
	if err := cli.Commit(rtid); err != nil {
		t.Fatal(err)
	}

	ds, err := cli.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Standby == nil || ds.Standby.AppliedLSN == 0 {
		t.Fatalf("standby stats missing apply progress: %+v", ds.Standby)
	}
	pcli, err := Dial(plis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pcli.Close()
	pds, err := pcli.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if pds.Repl == nil || !pds.Repl.Connected {
		t.Fatalf("primary stats missing shipping progress: %+v", pds.Repl)
	}
}
