package wire

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/logrec"
	"repro/internal/server"
)

// FuzzParseRequest hardens the server-side frame parser.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte{opBegin, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xaa}, 64))
	// 2PC ops: a prepare frame carrying a participant-set payload, a decide
	// frame for each mode byte, and a resolution request.
	f.Add(append([]byte{opPrepare, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		logrec.EncodePrepareInfo(1, []int{0, 1})...))
	f.Add([]byte{opDecide, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, decideCommit})
	f.Add([]byte{opDecide, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, decideForget})
	f.Add([]byte{opResolveInDoubt, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := parseRequest(body)
		if err != nil {
			return
		}
		if int(fr.op) < 0 {
			t.Fatal("impossible")
		}
	})
}

// FuzzServerAgainstGarbage throws arbitrary bytes at a live TCP server; it
// must neither panic nor corrupt state for well-behaved clients that follow.
func FuzzServerAgainstGarbage(f *testing.F) {
	srv := server.New(server.Config{
		Mode:        server.ModeESM,
		PoolPages:   64,
		LogCapacity: 8 << 20,
		LockTimeout: 200 * time.Millisecond,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	go Serve(lis, srv)
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0}, 32))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	// Framed 2PC ops with garbage payloads: a prepare whose participant-set
	// blob is corrupt and a decide with an undefined mode byte must both come
	// back as clean errors, not crash the dispatcher.
	f.Add([]byte{18, 0, 0, 0, opPrepare, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef})
	f.Add([]byte{14, 0, 0, 0, opDecide, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 99})
	f.Fuzz(func(t *testing.T, garbage []byte) {
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Skip("listener gone")
		}
		conn.Write(garbage)
		conn.Close()
		// A well-behaved client still works afterwards.
		cli, err := Dial(lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		tid, err := cli.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Abort(tid); err != nil {
			t.Fatal(err)
		}
	})
}
