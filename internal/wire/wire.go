// Package wire defines the client↔server protocol: the Service interface the
// client programs against, an in-process transport that charges network
// costs to a meter (used by both real tests and the simulated testbed), and
// a TCP transport for the standalone server.
package wire

import (
	"repro/internal/costmodel"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
)

// Service is the storage server's RPC surface as seen by a client.
type Service interface {
	// Begin starts a transaction.
	Begin() (logrec.TID, error)
	// Lock acquires a page lock, blocking until granted.
	Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error
	// AllocPage reserves a fresh page id, exclusively locked by tid.
	AllocPage(tid logrec.TID) (page.ID, error)
	// ReadPage fetches a page after acquiring the given lock.
	ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error)
	// ShipLog delivers one page worth of encoded log records.
	ShipLog(tid logrec.TID, data []byte) error
	// ShipPage delivers a dirty page.
	ShipPage(tid logrec.TID, pid page.ID, data []byte) error
	// Commit commits the transaction (forcing the log at the server).
	Commit(tid logrec.TID) error
	// Abort rolls the transaction back.
	Abort(tid logrec.TID) error
}

// Nominal per-message overheads used for network-cost accounting.
const (
	reqHeader  = 28 // op, tid, pid, mode, framing
	respHeader = 12 // status, framing
)

// Direct is an in-process transport: calls go straight to a server session,
// with message costs charged to the meter. With a NopMeter this is the
// plain embedded configuration; with a SimMeter it models the paper's
// Ethernet between a client workstation and the server.
type Direct struct {
	sn *server.Session
	m  costmodel.Meter
}

// NewDirect connects to srv, charging server-side work and message transfers
// to m (which may be nil for no accounting).
func NewDirect(srv *server.Server, m costmodel.Meter, p *costmodel.Params) *Direct {
	if m == nil {
		m = costmodel.NopMeter{}
	}
	return &Direct{sn: srv.NewSession(m, p), m: m}
}

// Session exposes the underlying server session (tools, tests).
func (d *Direct) Session() *server.Session { return d.sn }

// Begin implements Service.
func (d *Direct) Begin() (logrec.TID, error) {
	d.m.MsgToServer(reqHeader)
	tid := d.sn.Begin()
	d.m.MsgToClient(respHeader + 8)
	return tid, nil
}

// Lock implements Service.
func (d *Direct) Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error {
	d.m.MsgToServer(reqHeader)
	err := d.sn.Lock(tid, pid, mode)
	d.m.MsgToClient(respHeader)
	return err
}

// AllocPage implements Service.
func (d *Direct) AllocPage(tid logrec.TID) (page.ID, error) {
	d.m.MsgToServer(reqHeader)
	pid, err := d.sn.AllocPage(tid)
	d.m.MsgToClient(respHeader + 4)
	return pid, err
}

// ReadPage implements Service.
func (d *Direct) ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error) {
	d.m.MsgToServer(reqHeader)
	data, err := d.sn.ReadPage(tid, pid, mode)
	d.m.MsgToClient(respHeader + len(data))
	return data, err
}

// ShipLog implements Service.
func (d *Direct) ShipLog(tid logrec.TID, data []byte) error {
	d.m.MsgToServer(reqHeader + len(data))
	err := d.sn.ShipLog(tid, data)
	d.m.MsgToClient(respHeader)
	return err
}

// ShipPage implements Service.
func (d *Direct) ShipPage(tid logrec.TID, pid page.ID, data []byte) error {
	d.m.MsgToServer(reqHeader + len(data))
	err := d.sn.ShipPage(tid, pid, data)
	d.m.MsgToClient(respHeader)
	return err
}

// Commit implements Service.
func (d *Direct) Commit(tid logrec.TID) error {
	d.m.MsgToServer(reqHeader)
	err := d.sn.Commit(tid)
	d.m.MsgToClient(respHeader)
	return err
}

// Abort implements Service.
func (d *Direct) Abort(tid logrec.TID) error {
	d.m.MsgToServer(reqHeader)
	err := d.sn.Abort(tid)
	d.m.MsgToClient(respHeader)
	return err
}

var _ Service = (*Direct)(nil)
