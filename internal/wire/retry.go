package wire

// Bounded retry with exponential backoff and jitter for transient transport
// faults (dropped messages, broken connections, injected network errors).
//
// Retries are applied per operation. Commit is special: once a commit
// request may have reached the server, a transport failure makes the outcome
// genuinely ambiguous — the server commits and aborts-on-disconnect are both
// possible, and a blind re-send that draws ErrNoTxn cannot tell them apart.
// WithRetry therefore re-sends a Commit only when the failure guarantees the
// request was never delivered (an injected pre-delivery drop); otherwise it
// surfaces ErrCommitOutcomeUnknown and the application decides whether to
// verify by re-reading.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
)

// ErrServerUnavailable is returned once a retried operation has exhausted
// its attempt budget; errors.Is(err, ErrServerUnavailable) identifies it.
var ErrServerUnavailable = errors.New("wire: server unavailable")

// ErrCommitOutcomeUnknown is returned when a Commit failed in transit after
// the request may have been delivered: the transaction may be durably
// committed or aborted by the server's disconnect handling.
var ErrCommitOutcomeUnknown = errors.New("wire: commit outcome unknown")

// RetryPolicy bounds and shapes retries. The zero value disables retrying
// (a single attempt); any MaxAttempts > 1 enables it.
type RetryPolicy struct {
	MaxAttempts int           // total attempts per operation (including the first)
	BaseDelay   time.Duration // backoff before the second attempt (default 2ms)
	MaxDelay    time.Duration // backoff ceiling (default 250ms)
	Jitter      float64       // fraction of each delay drawn uniformly at random, in [0,1]
	Seed        int64         // jitter PRNG seed, for reproducible schedules
	// Sleep is replaceable for tests; nil means time.Sleep.
	Sleep func(time.Duration)
	// FailoverAddr, when non-empty, names the hot standby: the first time an
	// operation exhausts its attempt budget on connection-class failures (or
	// a Commit turns ambiguous), the client is redirected there — the standby
	// is presumed promoted once the primary stops answering — and the
	// operation gets one more full attempt budget. Requires an inner Service
	// with a Redirect method (TCPClient); ignored otherwise.
	FailoverAddr string
}

// retrier wraps a Service with RetryPolicy semantics. One client issues one
// request at a time (the page-server protocol), so it is unsynchronized.
type retrier struct {
	inner Service
	pol   RetryPolicy
	// splitmix64 jitter source: reproducible from Seed across Go versions.
	rngState uint64
	// failedOver is set after the one-shot redirect to FailoverAddr.
	failedOver bool
}

// WithRetry wraps svc so every operation is attempted up to
// pol.MaxAttempts times on transient transport errors, with exponential
// backoff and jitter between attempts. A pol.MaxAttempts of 0 or 1 returns
// svc unchanged.
func WithRetry(svc Service, pol RetryPolicy) Service {
	if pol.MaxAttempts <= 1 {
		return svc
	}
	if pol.BaseDelay == 0 {
		pol.BaseDelay = 2 * time.Millisecond
	}
	if pol.MaxDelay == 0 {
		pol.MaxDelay = 250 * time.Millisecond
	}
	if pol.Sleep == nil {
		pol.Sleep = time.Sleep
	}
	return &retrier{inner: svc, pol: pol, rngState: uint64(pol.Seed)*0x9e3779b97f4a7c15 + 1}
}

// transient reports whether err is worth retrying: transport-level failures
// only. Application-level errors (deadlock, unknown transaction, a
// server-side fault that aborted the transaction) must surface immediately.
func transient(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, lock.ErrDeadlock),
		errors.Is(err, server.ErrNoTxn),
		errors.Is(err, server.ErrInDoubt),
		errors.Is(err, ErrTxnAbortedByFault):
		return false
	case errors.Is(err, faultinject.ErrInjected):
		return true // injected drop/reset/transient error
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, net.ErrClosed):
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

func (c *retrier) jitterNext() float64 {
	c.rngState += 0x9e3779b97f4a7c15
	z := c.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return float64((z^(z>>31))>>11) / (1 << 53)
}

// backoff sleeps before retry attempt n (n = 1 before the second attempt).
func (c *retrier) backoff(n int) {
	d := c.pol.BaseDelay << (n - 1)
	if d > c.pol.MaxDelay || d <= 0 {
		d = c.pol.MaxDelay
	}
	if c.pol.Jitter > 0 {
		f := 1 - c.pol.Jitter*c.jitterNext()
		d = time.Duration(float64(d) * f)
	}
	c.pol.Sleep(d)
}

// Re-send policies: idempotent operations retry on any transient failure;
// operations with server-side effects that must not be duplicated re-send
// only when the failure guarantees non-delivery.
const (
	resendAlways        = iota // idempotent
	resendIfUndelivered        // surface ambiguous failures unchanged (ShipLog)
	resendCommit               // surface ambiguous failures as ErrCommitOutcomeUnknown
)

// do runs op under the retry loop with the given re-send policy.
func (c *retrier) do(policy int, op func() error) error {
	var err error
	for {
		for n := 0; n < c.pol.MaxAttempts; n++ {
			if n > 0 {
				c.backoff(n)
			}
			err = op()
			if !transient(err) {
				return err
			}
			if policy != resendAlways && !errors.Is(err, faultinject.ErrNotDelivered) {
				// The op may have reached the dead primary: never re-send it,
				// but do redirect so the caller's *next* operations (the
				// re-reads that resolve the ambiguity) reach the standby.
				c.maybeFailover()
				if policy == resendCommit {
					return fmt.Errorf("%w: %v", ErrCommitOutcomeUnknown, err)
				}
				return err
			}
		}
		if !c.maybeFailover() {
			return fmt.Errorf("%w: %d attempts, last error: %v", ErrServerUnavailable, c.pol.MaxAttempts, err)
		}
	}
}

// maybeFailover performs the one-shot redirect to FailoverAddr, reporting
// whether it did (and the caller gets another attempt budget).
func (c *retrier) maybeFailover() bool {
	if c.failedOver || c.pol.FailoverAddr == "" {
		return false
	}
	r, ok := c.inner.(interface{ Redirect(string) })
	if !ok {
		return false
	}
	c.failedOver = true
	r.Redirect(c.pol.FailoverAddr)
	return true
}

// Begin implements Service.
func (c *retrier) Begin() (logrec.TID, error) {
	var tid logrec.TID
	err := c.do(resendAlways, func() error {
		var e error
		tid, e = c.inner.Begin()
		return e
	})
	return tid, err
}

// Lock implements Service.
func (c *retrier) Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error {
	return c.do(resendAlways, func() error { return c.inner.Lock(tid, pid, mode) })
}

// AllocPage implements Service.
func (c *retrier) AllocPage(tid logrec.TID) (page.ID, error) {
	var pid page.ID
	err := c.do(resendAlways, func() error {
		var e error
		pid, e = c.inner.AllocPage(tid)
		return e
	})
	return pid, err
}

// ReadPage implements Service.
func (c *retrier) ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error) {
	var data []byte
	err := c.do(resendAlways, func() error {
		var e error
		data, e = c.inner.ReadPage(tid, pid, mode)
		return e
	})
	return data, err
}

// ShipLog implements Service. Re-sending a log batch whose delivery status
// is unknown would double-append records, so like Commit it is re-sent only
// on guaranteed-undelivered failures; otherwise the error surfaces and the
// client aborts the transaction.
func (c *retrier) ShipLog(tid logrec.TID, data []byte) error {
	return c.do(resendIfUndelivered, func() error { return c.inner.ShipLog(tid, data) })
}

// ShipPage implements Service (idempotent: same bytes, last write wins).
func (c *retrier) ShipPage(tid logrec.TID, pid page.ID, data []byte) error {
	return c.do(resendAlways, func() error { return c.inner.ShipPage(tid, pid, data) })
}

// Commit implements Service; see the package comment for the ambiguity rule.
func (c *retrier) Commit(tid logrec.TID) error {
	return c.do(resendCommit, func() error { return c.inner.Commit(tid) })
}

// Abort implements Service. An abort that draws ErrNoTxn after a transport
// failure already happened server-side (disconnect handling aborts active
// transactions), which is the outcome the caller wanted.
func (c *retrier) Abort(tid logrec.TID) error {
	err := c.do(resendAlways, func() error { return c.inner.Abort(tid) })
	if errors.Is(err, server.ErrNoTxn) {
		return nil
	}
	return err
}

var _ Service = (*retrier)(nil)
