package costmodel

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNetMsgTime(t *testing.T) {
	p := Default1995()
	small := p.NetMsgTime(100)
	big := p.NetMsgTime(8192)
	if small <= p.NetFixed {
		t.Fatalf("small message %v not above fixed cost", small)
	}
	if big <= small {
		t.Fatal("page message not more expensive than small message")
	}
	// An 8 KB page on ~1 MB/s effective Ethernet should take several ms.
	if big < 5*time.Millisecond || big > 25*time.Millisecond {
		t.Fatalf("page transfer time %v outside plausible 1995 range", big)
	}
}

func TestDefaultRatios(t *testing.T) {
	p := Default1995()
	if p.DataDiskRead <= p.LogDiskWrite {
		t.Fatal("random data read should cost more than sequential log write")
	}
	if p.CopyPage >= p.DiffPage {
		t.Fatal("diffing a page should cost more than copying it")
	}
	if p.CopyBlock >= p.CopyPage {
		t.Fatal("block copy should be cheaper than page copy")
	}
	if p.UpdateCall <= 0 {
		t.Fatal("update call must have a cost (the SD/SL tradeoff)")
	}
}

func TestSimMeterChargesResources(t *testing.T) {
	k := sim.New()
	p := Default1995()
	tb := NewTestbed(k, p)
	cpu := k.NewResource("client0-cpu")
	var elapsed time.Duration
	k.Spawn("client", func(proc *sim.Proc) {
		m := tb.Meter(proc, cpu)
		m.ClientCompute(time.Millisecond)
		m.MsgToServer(8192)
		m.LogWrite(2)
		m.DataRead(1)
		m.Flush()
		elapsed = proc.Now()
	})
	k.Run()
	if cpu.BusyTime() == 0 || tb.Net.BusyTime() == 0 || tb.ServerCPU.BusyTime() == 0 {
		t.Fatal("resources not charged")
	}
	wantMin := time.Millisecond + p.NetMsgTime(8192) + 2*p.LogDiskWrite + p.DataDiskRead
	if elapsed < wantMin {
		t.Fatalf("elapsed %v < serial minimum %v", elapsed, wantMin)
	}
}

func TestSimMeterAsyncDoesNotBlock(t *testing.T) {
	k := sim.New()
	tb := NewTestbed(k, Default1995())
	cpu := k.NewResource("cpu")
	var elapsed time.Duration
	k.Spawn("client", func(proc *sim.Proc) {
		m := tb.Meter(proc, cpu)
		m.DataWriteAsync(100)
		m.LogReadAsync(10)
		elapsed = proc.Now()
	})
	k.Run()
	if elapsed != 0 {
		t.Fatalf("async work blocked the caller: %v", elapsed)
	}
	if tb.DataDisk.Uses() != 100 || tb.LogDisk.Uses() != 10 {
		t.Fatal("async work not reserved")
	}
}

func TestTwoClientsContendOnServer(t *testing.T) {
	k := sim.New()
	p := Default1995()
	tb := NewTestbed(k, p)
	var ends [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		cpu := k.NewResource("cpu")
		k.Spawn("client", func(proc *sim.Proc) {
			m := tb.Meter(proc, cpu)
			m.ServerCompute(10 * time.Millisecond)
			m.Flush()
			ends[i] = proc.Now()
		})
	}
	k.Run()
	if ends[0] != 10*time.Millisecond || ends[1] != 20*time.Millisecond {
		t.Fatalf("server CPU did not serialize: %v", ends)
	}
}

func TestNopMeterIsFree(t *testing.T) {
	var m NopMeter
	m.ClientCompute(time.Hour)
	m.ServerCompute(time.Hour)
	m.MsgToServer(1 << 20)
	m.MsgToClient(1 << 20)
	m.DataRead(99)
	m.DataWriteAsync(99)
	m.LogWrite(99)
	m.LogRead(99)
	m.LogReadAsync(99)
}
