// Package costmodel captures the performance characteristics of the paper's
// testbed (§4.4): a Sun IPX server with separate raw data (Sun1.3G) and log
// (Sun0424) disks, five 20 MIPS SPARC ELC client workstations with 24 MB of
// memory, and an isolated 10 Mbit Ethernet.
//
// The engine reports its work to a Meter; in real executions the meter is a
// no-op, while in simulated performance runs (internal/harness) the meter
// charges service times from Params to the queueing resources of a
// discrete-event simulation. Absolute values are calibrated so that
// single-client OO7 response times land in the paper's range; the shapes of
// the multi-client results come from the resource ratios, not the absolute
// numbers. EXPERIMENTS.md records the calibration.
package costmodel

import (
	"time"

	"repro/internal/sim"
)

// Params holds every service-time constant used by the simulation.
type Params struct {
	// Network: one message costs Fixed + PerByte*len on the shared Ethernet
	// segment, plus per-message protocol CPU at the sender and receiver.
	NetFixed    time.Duration // media access + latency per message
	NetPerByte  time.Duration // wire time per byte (10 Mbit/s effective)
	NetCPUSend  time.Duration // protocol stack cost at the sending CPU
	NetCPURecv  time.Duration // protocol stack cost at the receiving CPU
	NetCPUPerKB time.Duration // copy cost per KB at each end

	// Disks. The data disk sees random page reads and background installs;
	// the log disk sees sequential page writes (and reads during WPL
	// reclaim/restart).
	DataDiskRead  time.Duration // random 8 KB page read
	DataDiskWrite time.Duration // 8 KB page write (install, lazy flush)
	LogDiskWrite  time.Duration // sequential 8 KB log page write
	LogDiskRead   time.Duration // 8 KB log page read (WPL reclaim)

	// Client CPU costs for the recovery machinery (§3).
	Fault       time.Duration // protection fault + AVL descriptor lookup + mprotect
	CopyPage    time.Duration // copy 8 KB into the recovery buffer
	DiffPage    time.Duration // diff 8 KB before/after images
	CopyBlock   time.Duration // copy one sub-page block (SD/SL)
	DiffBlock   time.Duration // diff one sub-page block
	UpdateCall  time.Duration // software update-function overhead per update (SD/SL)
	LogRecCPU   time.Duration // build + marshal one log record
	Deref       time.Duration // object dereference (descriptor check) on a cached page
	VisitCPU    time.Duration // application CPU per object visit in a traversal
	ServerPage  time.Duration // server CPU to process one shipped/served page
	ServerApply time.Duration // server CPU to apply one log record (REDO)
	LockReqCPU  time.Duration // server CPU per lock/unlock request
}

// Default1995 returns parameters calibrated to the paper's testbed.
func Default1995() *Params {
	return &Params{
		NetFixed:    500 * time.Microsecond,
		NetPerByte:  650 * time.Nanosecond, // ~1.25 MB/s effective on 10 Mbit Ethernet
		NetCPUSend:  300 * time.Microsecond,
		NetCPURecv:  300 * time.Microsecond,
		NetCPUPerKB: 60 * time.Microsecond,

		DataDiskRead:  20 * time.Millisecond,
		DataDiskWrite: 8 * time.Millisecond,  // write-behind, head-scheduled
		LogDiskWrite:  18 * time.Millisecond, // 3600 rpm Sun0424, forced sequential
		LogDiskRead:   16 * time.Millisecond,

		Fault:       500 * time.Microsecond,
		CopyPage:    700 * time.Microsecond,
		DiffPage:    1800 * time.Microsecond,
		CopyBlock:   6 * time.Microsecond,
		DiffBlock:   5 * time.Microsecond,
		UpdateCall:  25 * time.Microsecond,
		LogRecCPU:   30 * time.Microsecond,
		Deref:       0,
		VisitCPU:    25 * time.Microsecond,
		ServerPage:  700 * time.Microsecond,
		ServerApply: 300 * time.Microsecond,
		LockReqCPU:  1200 * time.Microsecond,
	}
}

// NetMsgTime returns the wire occupancy of one message of n bytes.
func (p *Params) NetMsgTime(n int) time.Duration {
	return p.NetFixed + time.Duration(n)*p.NetPerByte
}

// NetCPUTime returns the per-end protocol CPU cost of a message of n bytes.
func (p *Params) netCPUTime(base time.Duration, n int) time.Duration {
	return base + time.Duration(n/1024)*p.NetCPUPerKB
}

// Meter is the sink for simulated work. Engine code reports what it does;
// the meter decides what it costs. Client-side methods charge the client's
// CPU; server-side methods charge the shared server resources. Msg charges a
// network round-trip leg (sender CPU, wire, receiver CPU).
type Meter interface {
	// ClientCompute burns d on the calling client's CPU.
	ClientCompute(d time.Duration)
	// ServerCompute burns d on the server CPU.
	ServerCompute(d time.Duration)
	// MsgToServer models a client→server message of n bytes.
	MsgToServer(n int)
	// MsgToClient models a server→client message of n bytes.
	MsgToClient(n int)
	// DataRead blocks for n random data-disk page reads.
	DataRead(pages int)
	// DataWriteAsync schedules n background data-disk page writes.
	DataWriteAsync(pages int)
	// LogWrite forces the log: it blocks for n sequential log-disk page
	// writes and then waits for every asynchronous log write issued earlier
	// to complete (write-ahead durability barrier). n may be zero.
	LogWrite(pages int)
	// LogWriteAsync schedules n log-disk page writes without blocking; a
	// later LogWrite (the commit force) queues behind them.
	LogWriteAsync(pages int)
	// LogRead blocks for n log-disk page reads.
	LogRead(pages int)
	// LogReadAsync schedules n background log-disk page reads (WPL reclaim).
	LogReadAsync(pages int)
}

// NopMeter is the Meter used by real (non-simulated) executions.
type NopMeter struct{}

// ClientCompute implements Meter.
func (NopMeter) ClientCompute(time.Duration) {}

// ServerCompute implements Meter.
func (NopMeter) ServerCompute(time.Duration) {}

// MsgToServer implements Meter.
func (NopMeter) MsgToServer(int) {}

// MsgToClient implements Meter.
func (NopMeter) MsgToClient(int) {}

// DataRead implements Meter.
func (NopMeter) DataRead(int) {}

// DataWriteAsync implements Meter.
func (NopMeter) DataWriteAsync(int) {}

// LogWrite implements Meter.
func (NopMeter) LogWrite(int) {}

// LogWriteAsync implements Meter.
func (NopMeter) LogWriteAsync(int) {}

// LogRead implements Meter.
func (NopMeter) LogRead(int) {}

// LogReadAsync implements Meter.
func (NopMeter) LogReadAsync(int) {}

// Testbed is the simulated hardware: the shared resources plus one CPU per
// client workstation.
type Testbed struct {
	K         *sim.Kernel
	P         *Params
	Net       *sim.Resource
	ServerCPU *sim.Resource
	DataDisk  *sim.Resource
	LogDisk   *sim.Resource
}

// NewTestbed builds the simulated hardware on k.
func NewTestbed(k *sim.Kernel, p *Params) *Testbed {
	return &Testbed{
		K:         k,
		P:         p,
		Net:       k.NewResource("ethernet"),
		ServerCPU: k.NewResource("server-cpu"),
		DataDisk:  k.NewResource("data-disk"),
		LogDisk:   k.NewResource("log-disk"),
	}
}

// SimMeter charges a specific client process; create one per client with
// Testbed.Meter.
//
// Two forms of laziness keep the simulation both fast and deadlock-free:
//
//   - Client CPU time is accumulated and charged in one block at the next
//     synchronization point. The client CPU is private, so coalescing is
//     exact and avoids a kernel round-trip per charge (a traversal reports
//     hundreds of thousands of object visits).
//   - Blocking charges against shared resources (server CPU, disks) are
//     queued and drained at the next message boundary or Flush. The server
//     issues these while holding its real mutex; parking the goroutine in
//     the simulation kernel at that point would block every other simulated
//     client on the mutex. Draining at the message boundary applies the same
//     total service demand at the same process time, outside the critical
//     section.
//
// Asynchronous reservations (background installs, lazy flushes) never park
// the goroutine, so they are applied immediately.
type SimMeter struct {
	tb      *Testbed
	proc    *sim.Proc
	cpu     *sim.Resource // this client's CPU
	pending time.Duration
	queue   []deferredOp
}

type deferredKind uint8

const (
	opServerCPU deferredKind = iota
	opDataRead
	opLogWrite
	opLogRead
)

// opLogWrite entries always end with a barrier: the force returns only when
// the log disk has completed everything issued so far.

type deferredOp struct {
	kind  deferredKind
	pages int
	d     time.Duration
}

// Meter returns a Meter that charges work performed by proc, whose
// workstation CPU is cpu.
func (tb *Testbed) Meter(proc *sim.Proc, cpu *sim.Resource) *SimMeter {
	return &SimMeter{tb: tb, proc: proc, cpu: cpu}
}

// ClientCompute implements Meter.
func (m *SimMeter) ClientCompute(d time.Duration) { m.pending += d }

// Flush applies all accumulated charges: private CPU first, then the queued
// shared-resource operations in order. Call before reading the simulation
// clock as a response-time stamp.
func (m *SimMeter) Flush() {
	if m.pending > 0 {
		m.cpu.Use(m.proc, m.pending)
		m.pending = 0
	}
	for _, op := range m.queue {
		switch op.kind {
		case opServerCPU:
			m.tb.ServerCPU.Use(m.proc, op.d)
		case opDataRead:
			for i := 0; i < op.pages; i++ {
				m.tb.DataDisk.Use(m.proc, m.tb.P.DataDiskRead)
			}
		case opLogWrite:
			for i := 0; i < op.pages; i++ {
				m.tb.LogDisk.Use(m.proc, m.tb.P.LogDiskWrite)
			}
			m.tb.LogDisk.Sync(m.proc)
		case opLogRead:
			for i := 0; i < op.pages; i++ {
				m.tb.LogDisk.Use(m.proc, m.tb.P.LogDiskRead)
			}
		}
	}
	m.queue = m.queue[:0]
}

// ServerCompute implements Meter.
func (m *SimMeter) ServerCompute(d time.Duration) {
	m.queue = append(m.queue, deferredOp{kind: opServerCPU, d: d})
}

// MsgToServer implements Meter.
func (m *SimMeter) MsgToServer(n int) {
	p := m.tb.P
	m.pending += p.netCPUTime(p.NetCPUSend, n)
	m.Flush()
	m.tb.Net.Use(m.proc, p.NetMsgTime(n))
	m.tb.ServerCPU.Use(m.proc, p.netCPUTime(p.NetCPURecv, n))
}

// MsgToClient implements Meter.
func (m *SimMeter) MsgToClient(n int) {
	p := m.tb.P
	m.Flush()
	m.tb.ServerCPU.Use(m.proc, p.netCPUTime(p.NetCPUSend, n))
	m.tb.Net.Use(m.proc, p.NetMsgTime(n))
	m.cpu.Use(m.proc, p.netCPUTime(p.NetCPURecv, n))
}

// DataRead implements Meter.
func (m *SimMeter) DataRead(pages int) {
	if pages > 0 {
		m.queue = append(m.queue, deferredOp{kind: opDataRead, pages: pages})
	}
}

// DataWriteAsync implements Meter.
func (m *SimMeter) DataWriteAsync(pages int) {
	for i := 0; i < pages; i++ {
		m.tb.DataDisk.Reserve(m.proc, m.tb.P.DataDiskWrite)
	}
}

// LogWrite implements Meter.
func (m *SimMeter) LogWrite(pages int) {
	m.queue = append(m.queue, deferredOp{kind: opLogWrite, pages: pages})
}

// LogWriteAsync implements Meter.
func (m *SimMeter) LogWriteAsync(pages int) {
	for i := 0; i < pages; i++ {
		m.tb.LogDisk.Reserve(m.proc, m.tb.P.LogDiskWrite)
	}
}

// LogRead implements Meter.
func (m *SimMeter) LogRead(pages int) {
	if pages > 0 {
		m.queue = append(m.queue, deferredOp{kind: opLogRead, pages: pages})
	}
}

// LogReadAsync implements Meter.
func (m *SimMeter) LogReadAsync(pages int) {
	for i := 0; i < pages; i++ {
		m.tb.LogDisk.Reserve(m.proc, m.tb.P.LogDiskRead)
	}
}

var (
	_ Meter = NopMeter{}
	_ Meter = (*SimMeter)(nil)
)
