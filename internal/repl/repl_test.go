package repl

import (
	"errors"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wal"
)

// node is one server with its explicitly-held log (the archiver idiom: the
// log handle is needed by the replication layer).
type node struct {
	srv *server.Server
	sn  *server.Session
	log *wal.Log
}

func newNode(t *testing.T, mode server.Mode, mutate func(*server.Config)) *node {
	t.Helper()
	log := wal.New(16 << 20)
	cfg := server.Config{
		Mode:            mode,
		Log:             log,
		PoolPages:       64,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv := server.New(cfg)
	t.Cleanup(srv.Close)
	return &node{srv: srv, sn: srv.NewSession(nil, nil), log: log}
}

// commitPage creates a page holding val in a committed transaction,
// following the mode's client protocol.
func commitPage(t *testing.T, n *node, mode server.Mode, val string) (page.ID, int) {
	t.Helper()
	tid := n.sn.Begin()
	pid, err := n.sn.AllocPage(tid)
	if err != nil {
		t.Fatal(err)
	}
	pg := page.New(pid)
	slot, err := pg.Allocate(len(val))
	if err != nil {
		t.Fatal(err)
	}
	pg.WriteAt(slot, 0, []byte(val))
	if mode == server.ModeWPL {
		if err := n.sn.ShipPage(tid, pid, pg.Bytes()); err != nil {
			t.Fatal(err)
		}
	} else {
		rec := logrec.NewPageImage(tid, pid, pg.Bytes())
		if err := n.sn.ShipLog(tid, rec.Encode(nil)); err != nil {
			t.Fatal(err)
		}
		if mode == server.ModeESM {
			if err := n.sn.ShipPage(tid, pid, pg.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := n.sn.Commit(tid); err != nil {
		t.Fatal(err)
	}
	return pid, slot
}

// readVal reads slot of pid in a fresh read-only transaction on sn.
func readVal(t *testing.T, sn *server.Session, pid page.ID, slot, n int) string {
	t.Helper()
	tid := sn.Begin()
	data, err := sn.ReadPage(tid, pid, lock.Shared)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n)
	if err := page.Wrap(data).ReadAt(slot, 0, out); err != nil {
		t.Fatal(err)
	}
	if err := sn.Commit(tid); err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// waitCaughtUp polls until the standby's applied watermark reaches the
// primary's stable end.
func waitCaughtUp(t *testing.T, sb *Standby, plog *wal.Log) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //qslint:allow determinism: test-only poll deadline
	for sb.Status().AppliedLSN < plog.StableEnd() {
		if time.Now().After(deadline) { //qslint:allow determinism: test-only poll deadline
			t.Fatalf("standby stuck at %d, primary stable %d", sb.Status().AppliedLSN, plog.StableEnd())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// waitConnected polls until the primary has served at least one fetch.
func waitConnected(t *testing.T, p *Primary) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //qslint:allow determinism: test-only poll deadline
	for !p.Status().Connected {
		if time.Now().After(deadline) { //qslint:allow determinism: test-only poll deadline
			t.Fatal("standby never connected")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLiveReplicationAndFailover runs the full async pipeline for each
// scheme family: ship live commits, read them on the hot standby, promote,
// and keep writing on the promoted node.
func TestLiveReplicationAndFailover(t *testing.T) {
	for _, mode := range []server.Mode{server.ModeESM, server.ModeREDO, server.ModeWPL} {
		t.Run(mode.String(), func(t *testing.T) {
			prim := newNode(t, mode, nil)
			p := NewPrimary(prim.log, PrimaryOptions{})
			stby := newNode(t, mode, func(cfg *server.Config) { cfg.Standby = true })
			sb := NewStandby(stby.log, stby.sn, p.Fetch, StandbyOptions{PollInterval: 200 * time.Microsecond})
			go sb.Run()

			type obj struct {
				pid  page.ID
				slot int
			}
			var objs []obj
			for i := 0; i < 20; i++ {
				pid, slot := commitPage(t, prim, mode, "live!")
				objs = append(objs, obj{pid, slot})
			}
			waitCaughtUp(t, sb, prim.log)

			// Hot reads on the standby.
			rsn := stby.srv.NewSession(nil, nil)
			if got := readVal(t, rsn, objs[0].pid, objs[0].slot, 5); got != "live!" {
				t.Fatalf("standby read = %q", got)
			}
			if st := sb.Status(); st.Batches == 0 || st.Records == 0 {
				t.Fatalf("no batches applied: %+v", st)
			}

			// Failover.
			if err := sb.Promote(); err != nil {
				t.Fatal(err)
			}
			for _, o := range objs {
				if got := readVal(t, stby.sn, o.pid, o.slot, 5); got != "live!" {
					t.Fatalf("promoted read = %q", got)
				}
			}
			pid, slot := commitPage(t, stby, mode, "after")
			if got := readVal(t, stby.sn, pid, slot, 5); got != "after" {
				t.Fatalf("post-failover write = %q", got)
			}
		})
	}
}

// TestSemiSyncAck: with a live standby, every commit return implies the
// standby had applied and forced the commit record (no timeouts taken).
func TestSemiSyncAck(t *testing.T) {
	plog := wal.New(16 << 20)
	p := NewPrimary(plog, PrimaryOptions{Mode: AckSemiSync, AckTimeout: 2 * time.Second})
	prim := newNode(t, server.ModeREDO, func(cfg *server.Config) {
		cfg.Log = plog
		p.Wire(cfg)
	})
	prim.log = plog
	stby := newNode(t, server.ModeREDO, func(cfg *server.Config) { cfg.Standby = true })
	sb := NewStandby(stby.log, stby.sn, p.Fetch, StandbyOptions{PollInterval: 100 * time.Microsecond})
	go sb.Run()
	defer sb.Stop()

	// Connect before the first semi-sync commit so acks are in force: an
	// empty standby is trivially caught up, so wait for a real fetch.
	waitConnected(t, p)
	for i := 0; i < 10; i++ {
		commitPage(t, prim, server.ModeREDO, "semi!")
		if acked, se := p.Status().AckedLSN, plog.StableEnd(); acked < se {
			t.Fatalf("commit %d returned with ack %d < stable end %d", i, acked, se)
		}
	}
	st := p.Status()
	if st.AckWaits == 0 {
		t.Fatalf("semi-sync commits never waited: %+v", st)
	}
	if st.AckTimeouts != 0 {
		t.Fatalf("semi-sync commits timed out: %+v", st)
	}
	if st.Mode != "semi-sync" {
		t.Fatalf("mode = %q", st.Mode)
	}
}

// TestSemiSyncTimeoutDegrades: a connected-then-dead standby must not hang
// commits — the ack wait times out, the commit proceeds, and the
// degradation is counted. Detach then releases the gate entirely.
func TestSemiSyncTimeoutDegrades(t *testing.T) {
	plog := wal.New(16 << 20)
	p := NewPrimary(plog, PrimaryOptions{Mode: AckSemiSync, AckTimeout: 20 * time.Millisecond})
	prim := newNode(t, server.ModeREDO, func(cfg *server.Config) {
		cfg.Log = plog
		p.Wire(cfg)
	})
	prim.log = plog

	// No standby yet: commits are async.
	commitPage(t, prim, server.ModeREDO, "pre..")
	if st := p.Status(); st.AckWaits != 0 {
		t.Fatalf("unconnected primary waited for acks: %+v", st)
	}

	// A standby fetches once, then dies silently.
	if _, err := p.Fetch(plog.Head(), 0, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now() //qslint:allow determinism: test-only timing assertion
	commitPage(t, prim, server.ModeREDO, "stuck")
	if waited := time.Since(start); waited < 15*time.Millisecond { //qslint:allow determinism: test-only timing assertion
		t.Fatalf("commit returned in %v, expected ~20ms ack timeout", waited)
	}
	if st := p.Status(); st.AckTimeouts == 0 {
		t.Fatalf("timeout not counted: %+v", st)
	}

	// Detached, commits stop waiting.
	p.Detach()
	commitPage(t, prim, server.ModeREDO, "free.")
	if st := p.Status(); st.Connected {
		t.Fatalf("still connected after Detach: %+v", st)
	}
}

// TestReconnectWithBackoffUnderFaultyLink drops a third of all fetches and
// checks the standby still converges, counting reconnects.
func TestReconnectWithBackoffUnderFaultyLink(t *testing.T) {
	prim := newNode(t, server.ModeESM, nil)
	p := NewPrimary(prim.log, PrimaryOptions{})
	flaky := WrapFetch(p.Fetch, faultinject.Plan{DropRate: 0.33, DelayRate: 0.1, MaxDelay: time.Millisecond, Seed: 7})
	stby := newNode(t, server.ModeESM, func(cfg *server.Config) { cfg.Standby = true })
	sb := NewStandby(stby.log, stby.sn, flaky, StandbyOptions{
		PollInterval: 100 * time.Microsecond,
		Backoff:      100 * time.Microsecond,
		MaxBackoff:   time.Millisecond,
	})
	go sb.Run()
	defer sb.Stop()

	var last struct {
		pid  page.ID
		slot int
	}
	for i := 0; i < 30; i++ {
		last.pid, last.slot = commitPage(t, prim, server.ModeESM, "drop!")
	}
	waitCaughtUp(t, sb, prim.log)
	// The applier keeps polling after catch-up; with a 33% drop rate some
	// idle fetch soon fails and the backoff path runs.
	deadline := time.Now().Add(5 * time.Second) //qslint:allow determinism: test-only poll deadline
	for sb.Status().Reconnects == 0 {
		if time.Now().After(deadline) { //qslint:allow determinism: test-only poll deadline
			t.Fatalf("flaky link produced no reconnects: %+v", sb.Status())
		}
		time.Sleep(100 * time.Microsecond)
	}
	rsn := stby.srv.NewSession(nil, nil)
	if got := readVal(t, rsn, last.pid, last.slot, 5); got != "drop!" {
		t.Fatalf("standby read after flaky catch-up = %q", got)
	}
}

// TestColdBootstrapFromArchive seeds a standby from a fuzzy online backup
// plus archived segments (archive.Bootstrap), replays the restored log
// through ApplyShipped, follows the live stream, and fails over — end to
// end across a truncation on the primary. A second, empty standby asking
// for the reclaimed prefix gets ErrGap.
func TestColdBootstrapFromArchive(t *testing.T) {
	plog := wal.New(16 << 20)
	blobs := archive.NewMemBlobs()
	store := disk.NewMemStore()
	arch, err := archive.NewArchiver(plog, store, blobs, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(plog, PrimaryOptions{})
	prim := newNode(t, server.ModeESM, func(cfg *server.Config) {
		cfg.Log = plog
		cfg.Store = store
		archive.Wire(cfg, arch)
		p.Wire(cfg)
	})
	prim.log = plog

	type obj struct {
		pid  page.ID
		slot int
	}
	var objs []obj
	for i := 0; i < 10; i++ {
		pid, slot := commitPage(t, prim, server.ModeESM, "early")
		objs = append(objs, obj{pid, slot})
	}
	if err := prim.sn.Checkpoint(); err != nil { // archives, then truncates
		t.Fatal(err)
	}
	if _, err := arch.Backup(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pid, slot := commitPage(t, prim, server.ModeESM, "late.")
		objs = append(objs, obj{pid, slot})
	}
	prim.log.Force()
	if err := arch.Drain(); err != nil {
		t.Fatal(err)
	}

	// An empty standby's cursor predates the truncated head: ErrGap.
	if _, err := p.Fetch(wal.FirstLSN, 0, 0); !errors.Is(err, ErrGap) {
		t.Fatalf("fetch below head = %v, want ErrGap", err)
	}

	// Cold bootstrap: backup + archived log, no restart pass.
	boot, err := archive.Bootstrap(blobs, archive.BootstrapOptions{LogSlack: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	scfg := server.Config{
		Mode:            server.ModeESM,
		Standby:         true,
		Store:           boot.Store,
		Log:             boot.Log,
		PoolPages:       64,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	}
	ssrv := server.New(scfg)
	defer ssrv.Close()
	ssn := ssrv.NewSession(nil, nil)
	sb := NewStandby(boot.Log, ssn, p.Fetch, StandbyOptions{PollInterval: 100 * time.Microsecond})
	if err := sb.ReplayLocal(); err != nil {
		t.Fatal(err)
	}
	go sb.Run()
	waitCaughtUp(t, sb, prim.log)
	if err := sb.Promote(); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		want := "early"
		if i >= 10 {
			want = "late."
		}
		if got := readVal(t, ssn, o.pid, o.slot, 5); got != want {
			t.Fatalf("object %d after cold-bootstrap failover = %q, want %q", i, got, want)
		}
	}
}

// TestBatchRoundTrip covers the wire encoding.
func TestBatchRoundTrip(t *testing.T) {
	in := Batch{Next: 12345, StableEnd: 67890, Records: []byte("payload")}
	out, err := DecodeBatch(EncodeBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Next != in.Next || out.StableEnd != in.StableEnd || string(out.Records) != "payload" {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := DecodeBatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated batch decoded")
	}
	if _, err := DecodeBatch(append(EncodeBatch(in), 0)); err == nil {
		t.Fatal("oversized batch decoded")
	}
}
