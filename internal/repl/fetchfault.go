package repl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// WrapFetch perturbs a FetchFunc with a faultinject transport plan's message
// faults: dropped fetches (the caller sees ErrNotDelivered and retries with
// backoff) and delivery delays. Duplication is meaningless for an idempotent
// pull — a re-sent fetch returns the same batch — so only DropRate,
// DelayRate and MaxDelay apply. The fault stream is a pure function of
// plan.Seed, like every faultinject wrapper.
func WrapFetch(fetch FetchFunc, plan faultinject.Plan) FetchFunc {
	if plan.MaxDelay == 0 {
		plan.MaxDelay = 5 * time.Millisecond
	}
	var mu sync.Mutex
	state := uint64(plan.Seed)
	next := func() float64 {
		// splitmix64, the same generator the retry jitter uses.
		state += 0x9e3779b97f4a7c15
		z := state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
	return func(from, applied uint64, maxBytes int) (Batch, error) {
		mu.Lock()
		drop := plan.DropRate > 0 && next() < plan.DropRate
		var delay time.Duration
		if plan.DelayRate > 0 && next() < plan.DelayRate {
			delay = time.Duration(next() * float64(plan.MaxDelay))
		}
		mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		if drop {
			return Batch{}, fmt.Errorf("%w: fetch from %d dropped", faultinject.ErrNotDelivered, from)
		}
		return fetch(from, applied, maxBytes)
	}
}
