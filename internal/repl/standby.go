package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logrec"
	"repro/internal/server"
	"repro/internal/wal"
)

// StandbyOptions tunes the apply loop. The zero value picks the defaults.
type StandbyOptions struct {
	// PollInterval is the idle delay between fetches when the primary has
	// nothing new (default 2ms).
	PollInterval time.Duration
	// MaxBatchBytes is the per-fetch payload cap requested from the primary
	// (default DefaultMaxBatchBytes).
	MaxBatchBytes int
	// Backoff and MaxBackoff bound the reconnect delay after a fetch error:
	// starting at Backoff, doubling per consecutive failure up to MaxBackoff
	// (defaults 5ms and 500ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// Standby is the applying side of replication: a loop pulling batches from a
// FetchFunc, replaying each record through the server's ApplyShipped, and
// forcing the local log per batch before advancing the applied watermark —
// so the ack it reports covers only locally-durable records, which is what
// lets Promote discard nothing acknowledged.
//
// Run owns the single applier goroutine ApplyShipped's contract requires.
// Read-only sessions on the standby server run concurrently under the
// normal gate; their snapshot is prefix-consistent at AppliedLSN page-wise
// (see DESIGN.md §14 for the precise guarantee).
type Standby struct {
	log   *wal.Log
	sn    *server.Session
	fetch FetchFunc
	opts  StandbyOptions

	applied      atomic.Uint64 // applied and locally forced (the ack)
	remoteStable atomic.Uint64 // primary's stable end at last contact
	batches      atomic.Int64
	records      atomic.Int64
	reconnects   atomic.Int64

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	stopped bool
	started atomic.Bool
}

// NewStandby returns a standby applying fetched records through sn (a
// session on a server built with Config.Standby). log must be the same log
// that server appends to — the archiver-style explicit handle.
func NewStandby(log *wal.Log, sn *server.Session, fetch FetchFunc, opts StandbyOptions) *Standby {
	if opts.PollInterval <= 0 {
		opts.PollInterval = 2 * time.Millisecond
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 5 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 500 * time.Millisecond
	}
	s := &Standby{
		log:   log,
		sn:    sn,
		fetch: fetch,
		opts:  opts,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.applied.Store(log.StableEnd())
	return s
}

// ReplayLocal replays every record already in the local log through
// ApplyShipped — the cold-bootstrap step after archive.Bootstrap rebuilt
// the log. ApplyShipped recognizes the records as present (no re-append)
// and applies their table and page effects; pageLSN-conditional redo makes
// this idempotent over the possibly-newer fuzzy backup image. Call before
// Run.
func (s *Standby) ReplayLocal() error {
	var applyErr error
	n := 0
	_, err := s.log.ScanFrom(s.log.Head(), nil, func(r *logrec.Record) bool {
		if applyErr = s.sn.ApplyShipped(r); applyErr != nil {
			return false
		}
		n++
		return true
	})
	if err == nil {
		err = applyErr
	}
	if err != nil {
		return fmt.Errorf("repl: bootstrap replay: %w", err)
	}
	s.records.Add(int64(n))
	s.applied.Store(s.log.StableEnd())
	return nil
}

// Run pulls and applies until Stop (nil) or a terminal error: ErrGap (the
// primary reclaimed our cursor — re-bootstrap from the archive) or an apply
// failure (the replica diverged; refusing to continue is the only safe
// move). Transient fetch errors reconnect with exponential backoff.
func (s *Standby) Run() error {
	s.started.Store(true)
	defer close(s.done)
	cursor := s.log.End()
	backoff := s.opts.Backoff
	for {
		select {
		case <-s.stop:
			return nil
		default:
		}
		b, err := s.fetch(cursor, s.applied.Load(), s.opts.MaxBatchBytes)
		if err != nil {
			if errors.Is(err, ErrGap) {
				return err
			}
			s.reconnects.Add(1)
			if !s.sleep(backoff) {
				return nil
			}
			if backoff *= 2; backoff > s.opts.MaxBackoff {
				backoff = s.opts.MaxBackoff
			}
			continue
		}
		backoff = s.opts.Backoff
		s.remoteStable.Store(b.StableEnd)
		if len(b.Records) == 0 {
			if !s.sleep(s.opts.PollInterval) {
				return nil
			}
			continue
		}
		recs, err := logrec.DecodeAll(b.Records)
		if err != nil {
			return fmt.Errorf("repl: corrupt batch at %d: %w", cursor, err)
		}
		for _, r := range recs {
			if err := s.sn.ApplyShipped(r); err != nil {
				return fmt.Errorf("repl: apply at %d: %w", r.LSN, err)
			}
		}
		// Batch-wise force before acking: the watermark must only ever
		// cover records that survive a standby crash.
		s.log.Force()
		s.batches.Add(1)
		s.records.Add(int64(len(recs)))
		cursor = b.Next
		s.applied.Store(cursor)
	}
}

// sleep waits d or until Stop, reporting false on stop.
func (s *Standby) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.stop:
		return false
	case <-t.C:
		return true
	}
}

// Stop ends the apply loop and waits for it to drain any in-flight batch.
// Idempotent, and safe whether or not Run was ever started.
func (s *Standby) Stop() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.mu.Unlock()
	if s.started.Load() {
		<-s.done
	}
}

// Promote quiesces the applier, then runs crash-consistent failover on the
// standby server (server.Session.Promote: Crash + the scheme's normal
// Restart). On return the server is a writable primary whose state is
// byte-equivalent to a single-node restart at the last locally-forced LSN;
// anything unacked beyond it is rolled back exactly as a crashed primary
// would roll it back.
func (s *Standby) Promote() error {
	s.Stop()
	return s.sn.Promote()
}

// StandbyStatus is the applying-side observability snapshot.
type StandbyStatus struct {
	AppliedLSN   uint64 `json:"applied_lsn"`
	RemoteStable uint64 `json:"remote_stable_lsn"`
	LagBytes     uint64 `json:"lag_bytes"` // primary stable bytes not yet applied here
	Batches      int64  `json:"batches"`
	Records      int64  `json:"records"`
	Reconnects   int64  `json:"reconnects"`
}

// Status returns a snapshot of apply progress and lag.
func (s *Standby) Status() StandbyStatus {
	st := StandbyStatus{
		AppliedLSN:   s.applied.Load(),
		RemoteStable: s.remoteStable.Load(),
		Batches:      s.batches.Load(),
		Records:      s.records.Load(),
		Reconnects:   s.reconnects.Load(),
	}
	if st.RemoteStable > st.AppliedLSN {
		st.LagBytes = st.RemoteStable - st.AppliedLSN
	}
	return st
}
