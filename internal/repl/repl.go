// Package repl implements hot-standby replication: WAL shipping from a
// primary, continuous redo apply on a standby, and crash-consistent failover
// (DESIGN.md §14).
//
// The design leans entirely on two existing invariants. First, logrec
// encoding is deterministic, so a standby re-appending the shipped stream at
// the primary's LSNs holds a byte-identical log. Second, restart recovery is
// a pure function of the stable log and volume, so promoting a standby is
// literally crash-then-restart (server.Session.Promote): the promoted state
// is byte-equivalent to what the primary itself would recover to at the same
// log cut. Replication therefore adds no new recovery code path — the
// failover sweep (internal/harness/replsweep.go) checks exactly this
// equivalence at every record boundary, for all five schemes.
//
// Shipping is pull-based: the standby fetches batches of stable records from
// its cursor, and each fetch carries the standby's applied-and-forced
// watermark back to the primary. That watermark doubles as the semi-sync
// acknowledgement — under AckSemiSync, a committing session blocks after its
// local force until the standby's watermark covers the commit record, so a
// group-commit batch waits once for the batch-end LSN. A ship gate on the
// primary's log (wal.SetShipGate) keeps truncation behind the standby's
// cursor once one has connected; a standby arriving after reclamation gets
// ErrGap and must re-bootstrap from the archive (archive.Bootstrap).
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrGap means the requested LSN has already been reclaimed on the primary:
// the standby's cursor predates the primary's log head, so the live log can
// no longer serve it. The standby must re-seed itself from the archive
// (archive.Bootstrap) and reconnect.
var ErrGap = errors.New("repl: requested LSN already reclaimed (re-bootstrap from archive)")

// AckMode selects what a primary commit waits for.
type AckMode int

const (
	// AckAsync: commits return after the local force; the standby applies at
	// its own pace and failover may lose the unshipped suffix (bounded by
	// the last fetch).
	AckAsync AckMode = iota
	// AckSemiSync: commits additionally wait until the standby reports the
	// commit record applied and forced, or AckTimeout passes — a timeout
	// degrades that commit to async (counted, never blocking durability on
	// a dead standby).
	AckSemiSync
)

func (m AckMode) String() string {
	if m == AckSemiSync {
		return "semi-sync"
	}
	return "async"
}

// Batch is one fetch response: every whole stable record in [from, Next),
// encoded back-to-back exactly as they appear in the primary's log.
type Batch struct {
	// Next is the cursor for the following fetch: just past the last record
	// in Records (equal to the requested LSN when Records is empty).
	Next uint64
	// StableEnd is the primary's stable log end at fetch time, for lag
	// accounting on the standby.
	StableEnd uint64
	// Records holds the encoded records, contiguous from the requested LSN.
	Records []byte
}

// FetchFunc is the standby's view of a primary: fetch stable records from
// `from`, reporting `applied` (the standby's applied-and-forced watermark —
// the semi-sync ack) and accepting at most maxBytes of payload. It is the
// seam between repl and the transport: wire.TCPClient.ReplFetch for a real
// link, Primary.Fetch directly for in-process tests and sweeps.
type FetchFunc func(from, applied uint64, maxBytes int) (Batch, error)

// EncodeBatch flattens b for the wire.
func EncodeBatch(b Batch) []byte {
	out := make([]byte, 20+len(b.Records))
	binary.LittleEndian.PutUint64(out[0:], b.Next)
	binary.LittleEndian.PutUint64(out[8:], b.StableEnd)
	binary.LittleEndian.PutUint32(out[16:], uint32(len(b.Records)))
	copy(out[20:], b.Records)
	return out
}

// DecodeBatch parses an EncodeBatch payload.
func DecodeBatch(p []byte) (Batch, error) {
	if len(p) < 20 {
		return Batch{}, fmt.Errorf("repl: batch header truncated (%d bytes)", len(p))
	}
	n := binary.LittleEndian.Uint32(p[16:])
	if uint64(len(p)) != 20+uint64(n) {
		return Batch{}, fmt.Errorf("repl: batch payload length %d, header says %d", len(p)-20, n)
	}
	return Batch{
		Next:      binary.LittleEndian.Uint64(p[0:]),
		StableEnd: binary.LittleEndian.Uint64(p[8:]),
		Records:   p[20:],
	}, nil
}
