package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logrec"
	"repro/internal/server"
	"repro/internal/wal"
)

// DefaultMaxBatchBytes bounds one fetch response's record payload.
const DefaultMaxBatchBytes = 256 << 10

// DefaultAckTimeout is how long a semi-sync commit waits for the standby
// before degrading to async.
const DefaultAckTimeout = 500 * time.Millisecond

// PrimaryOptions tunes a Primary. The zero value is async shipping.
type PrimaryOptions struct {
	Mode          AckMode
	AckTimeout    time.Duration // semi-sync wait bound (DefaultAckTimeout if 0)
	MaxBatchBytes int           // per-fetch payload cap (DefaultMaxBatchBytes if 0)
}

// Primary is the log-shipping side of replication. It serves Fetch against
// the live WAL, holds truncation behind the standby's cursor through the
// wal ship gate, and — under AckSemiSync — parks committing sessions until
// the standby's applied watermark covers their commit record.
//
// The gate callback runs inside wal.Truncate under the log mutex, so like
// the archive gate it reads only atomics and never takes the Primary mutex.
type Primary struct {
	log  *wal.Log
	opts PrimaryOptions

	connected atomic.Bool   // a standby has fetched at least once
	cursor    atomic.Uint64 // the standby's fetch cursor: truncation floor once connected
	acked     atomic.Uint64 // standby's applied-and-forced watermark

	fetches     atomic.Int64
	ackWaits    atomic.Int64
	ackTimeouts atomic.Int64

	mu   sync.Mutex // guards cond waits; acked itself is atomic
	cond *sync.Cond
}

// NewPrimary returns a Primary shipping from log.
func NewPrimary(log *wal.Log, opts PrimaryOptions) *Primary {
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = DefaultAckTimeout
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = DefaultMaxBatchBytes
	}
	p := &Primary{log: log, opts: opts}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Wire connects the primary to a server configuration: the wal ship gate
// (truncation never passes an attached standby's cursor) and, for
// semi-sync, the CommitAck hook on the commit path. Call before server.New;
// cfg.Log must be the log the primary ships.
func (p *Primary) Wire(cfg *server.Config) {
	if cfg.Log != p.log {
		panic("repl: Wire with a different log than the primary ships")
	}
	p.log.SetShipGate(func(newHead uint64) bool {
		return !p.connected.Load() || newHead <= p.cursor.Load()
	})
	if p.opts.Mode == AckSemiSync {
		cfg.CommitAck = p.CommitAck
	}
}

// Fetch serves one standby pull: record the ack watermark, advance the ship
// gate's floor to the request cursor, and return every whole stable record
// from it, up to maxBytes. A cursor below the log head returns ErrGap.
func (p *Primary) Fetch(from, applied uint64, maxBytes int) (Batch, error) {
	p.fetches.Add(1)
	p.recordAck(applied)
	// Floor before first scan: the gate must hold the head at or below the
	// cursor from the moment we might serve from it. The floor only moves
	// forward — a second standby reconnecting from an older cursor races a
	// deliberate design choice (one standby per primary) and gets ErrGap
	// once truncation passes it.
	for {
		cur := p.cursor.Load()
		if from <= cur || p.cursor.CompareAndSwap(cur, from) {
			break
		}
	}
	p.connected.Store(true)
	if maxBytes <= 0 || maxBytes > p.opts.MaxBatchBytes {
		maxBytes = p.opts.MaxBatchBytes
	}
	var payload []byte
	next, err := p.log.ScanFrom(from, nil, func(r *logrec.Record) bool {
		payload = r.Encode(payload)
		return len(payload) < maxBytes
	})
	if errors.Is(err, wal.ErrTruncated) {
		return Batch{}, fmt.Errorf("%w: cursor %d below log head %d", ErrGap, from, p.log.Head())
	}
	if err != nil {
		return Batch{}, err
	}
	return Batch{Next: next, StableEnd: p.log.StableEnd(), Records: payload}, nil
}

// recordAck advances the applied watermark and wakes semi-sync waiters.
func (p *Primary) recordAck(applied uint64) {
	for {
		cur := p.acked.Load()
		if applied <= cur {
			return
		}
		if p.acked.CompareAndSwap(cur, applied) {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
	}
}

// CommitAck is the server commit-path hook (server.Config.CommitAck): block
// until the standby's watermark covers endLSN or the timeout passes. Called
// after the commit record is locally stable, under gate.R, so it must not
// call back into server operations — it only waits on the watermark. Before
// a standby has connected, commits proceed async (a primary must not hang
// because its standby has not arrived yet); after a timeout the commit
// proceeds too, degraded to async and counted.
func (p *Primary) CommitAck(endLSN uint64) {
	if !p.connected.Load() || p.acked.Load() >= endLSN {
		return
	}
	p.ackWaits.Add(1)
	timedOut := false
	timer := time.AfterFunc(p.opts.AckTimeout, func() {
		p.mu.Lock()
		timedOut = true
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	for p.acked.Load() < endLSN && !timedOut {
		p.cond.Wait()
	}
	degraded := timedOut && p.acked.Load() < endLSN
	p.mu.Unlock()
	if degraded {
		p.ackTimeouts.Add(1)
	}
}

// Detach releases the ship gate (and any semi-sync waiters) when the
// standby is decommissioned for good — e.g. after it was promoted and this
// node is being retired. Without it a departed standby would hold log
// truncation at its last cursor forever.
func (p *Primary) Detach() {
	p.connected.Store(false)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// PrimaryStatus is the shipping-side observability snapshot.
type PrimaryStatus struct {
	Mode        string `json:"mode"`
	Connected   bool   `json:"connected"`
	CursorLSN   uint64 `json:"cursor_lsn"`
	AckedLSN    uint64 `json:"acked_lsn"`
	StableEnd   uint64 `json:"stable_end"`
	LagBytes    uint64 `json:"lag_bytes"` // stable bytes the standby has not acked
	Fetches     int64  `json:"fetches"`
	AckWaits    int64  `json:"ack_waits"`
	AckTimeouts int64  `json:"ack_timeouts"`
}

// Status returns a snapshot of shipping progress and lag.
func (p *Primary) Status() PrimaryStatus {
	st := PrimaryStatus{
		Mode:        p.opts.Mode.String(),
		Connected:   p.connected.Load(),
		CursorLSN:   p.cursor.Load(),
		AckedLSN:    p.acked.Load(),
		StableEnd:   p.log.StableEnd(),
		Fetches:     p.fetches.Load(),
		AckWaits:    p.ackWaits.Load(),
		AckTimeouts: p.ackTimeouts.Load(),
	}
	if st.Connected && st.StableEnd > st.AckedLSN {
		st.LagBytes = st.StableEnd - st.AckedLSN
	}
	return st
}
