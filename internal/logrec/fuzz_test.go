package logrec

import (
	"bytes"
	"testing"

	"repro/internal/page"
)

func pageID(v uint32) page.ID { return page.ID(v) }

// FuzzDecode hardens the log-record decoder against corrupt input: whatever
// the bytes, Decode must never panic, and anything it accepts must re-encode
// to the same bytes (the log is read back after crashes, so the decoder sees
// torn and garbage data).
func FuzzDecode(f *testing.F) {
	f.Add(NewCommit(1).Encode(nil))
	f.Add(NewUpdate(3, 9, 100, []byte("abc"), []byte("xyz")).Encode(nil))
	f.Add(NewPageImage(2, 4, make([]byte, 64)).Encode(nil))
	f.Add(NewPrepare(5, 1, []int{0, 1, 3}).Encode(nil))
	f.Add(NewDecide(6, 0, []int{0, 2}).Encode(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Round trip: re-encoding the accepted record reproduces the bytes.
		re := r.Encode(nil)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n%x\n%x", re, data[:n])
		}
		// 2PC payloads must either decode cleanly or be rejected — never panic
		// and never round-trip to different membership.
		if r.Type == TypePrepare || r.Type == TypeDecide {
			coord, parts, err := DecodePrepareInfo(r.After)
			if err == nil && !bytes.Equal(EncodePrepareInfo(coord, parts), r.After) {
				t.Fatal("2PC payload re-encode mismatch")
			}
		}
	})
}

// FuzzEncodeDecode drives the encoder with arbitrary field values and checks
// the round trip.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint64(1), uint32(2), uint16(3), []byte("before"), []byte("after!"))
	f.Fuzz(func(t *testing.T, tid uint64, pg uint32, off uint16, before, after []byte) {
		if len(before) != len(after) || len(before) > 0xffff {
			return
		}
		r := NewUpdate(TID(tid), 0, int(off), before, after)
		r.Page = pageID(pg)
		r.LSN = tid ^ 0xabcdef
		r.PrevLSN = tid + 1
		got, n, err := Decode(r.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if n != r.EncodedSize() {
			t.Fatalf("size %d != %d", n, r.EncodedSize())
		}
		if got.TID != r.TID || got.Off != off || !bytes.Equal(got.Before, before) ||
			!bytes.Equal(got.After, after) || got.LSN != r.LSN {
			t.Fatal("round trip mismatch")
		}
	})
}
