// Two-phase-commit record types (DESIGN.md §16). A cross-shard transaction
// writes a PREPARE record on every participant shard (forced before the
// shard votes yes) and a DECIDE record on the coordinator shard only; the
// forced DECIDE is the commit point. Under presumed abort, an abort decision
// is never logged — a participant that finds no decision on the coordinator
// rolls back.
package logrec

import (
	"encoding/binary"
	"errors"
)

// 2PC record types, continuing the Type enumeration.
const (
	// TypePrepare marks a participant branch of a cross-shard transaction as
	// prepared: all its updates are on the stable log, its locks are held,
	// and the branch may neither commit nor roll back until the coordinator's
	// decision is known. After carries the coordinator identity and the full
	// participant set (see EncodePrepareInfo).
	TypePrepare Type = 8
	// TypeDecide is the coordinator's commit decision; once it is on stable
	// storage the transaction is committed on every shard. After carries the
	// participant set. Abort decisions are never logged (presumed abort).
	TypeDecide Type = 9
)

// ErrBadPrepare reports a malformed prepare/decide payload.
var ErrBadPrepare = errors.New("logrec: malformed 2PC payload")

// maxParticipants bounds the participant set so a corrupt length word cannot
// drive a huge allocation during decode.
const maxParticipants = 1 << 10

// EncodePrepareInfo encodes a 2PC membership payload: the coordinator shard
// id followed by the participant shard ids (in the order given).
func EncodePrepareInfo(coordinator int, participants []int) []byte {
	if len(participants) > maxParticipants {
		panic("logrec: participant set too large")
	}
	b := make([]byte, 8+4*len(participants))
	binary.LittleEndian.PutUint32(b[0:], uint32(coordinator))
	binary.LittleEndian.PutUint32(b[4:], uint32(len(participants)))
	for i, p := range participants {
		binary.LittleEndian.PutUint32(b[8+4*i:], uint32(p))
	}
	return b
}

// DecodePrepareInfo parses a payload written by EncodePrepareInfo. The exact
// length must match the declared participant count.
func DecodePrepareInfo(b []byte) (coordinator int, participants []int, err error) {
	if len(b) < 8 {
		return 0, nil, ErrBadPrepare
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if n > maxParticipants || len(b) != 8+4*n {
		return 0, nil, ErrBadPrepare
	}
	coordinator = int(binary.LittleEndian.Uint32(b[0:]))
	participants = make([]int, n)
	for i := range participants {
		participants[i] = int(binary.LittleEndian.Uint32(b[8+4*i:]))
	}
	return coordinator, participants, nil
}

// NewPrepare builds a participant prepare record.
func NewPrepare(tid TID, coordinator int, participants []int) *Record {
	return &Record{TID: tid, Type: TypePrepare, After: EncodePrepareInfo(coordinator, participants)}
}

// NewDecide builds a coordinator commit-decision record.
func NewDecide(tid TID, coordinator int, participants []int) *Record {
	return &Record{TID: tid, Type: TypeDecide, After: EncodePrepareInfo(coordinator, participants)}
}
