// Package logrec defines the recovery log record format shared by the
// QuickStore client and the storage server.
//
// Log records carry both redo and undo information (before- and after-images
// of a byte range within a page), following ESM's format. Clients generate
// records without LSNs; the server assigns LSNs and per-transaction PrevLSN
// chains when records arrive, because the stable log lives at the server
// (paper §2, §3.1).
package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/page"
)

// Type enumerates the kinds of log records.
type Type uint8

// Log record types.
const (
	// TypeUpdate is a byte-range update with before- and after-images.
	TypeUpdate Type = iota + 1
	// TypePageImage is a whole-page after-image. ESM uses these for newly
	// created pages; whole-page logging (WPL) uses them for every dirty page.
	TypePageImage
	// TypeCommit marks a transaction as committed once it is on stable storage.
	TypeCommit
	// TypeAbort marks the start of rollback for a transaction.
	TypeAbort
	// TypeEnd marks a transaction as fully finished (committed or rolled back).
	TypeEnd
	// TypeCLR is a compensation log record written during undo; it is
	// redo-only and carries UndoNext, the next record of the transaction to
	// undo.
	TypeCLR
	// TypeCheckpoint carries the server's checkpoint payload (transaction
	// table and dirty page table for ARIES restart; the WPL table for
	// whole-page logging restart).
	TypeCheckpoint
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeUpdate:
		return "UPDATE"
	case TypePageImage:
		return "PAGEIMG"
	case TypeCommit:
		return "COMMIT"
	case TypeAbort:
		return "ABORT"
	case TypeEnd:
		return "END"
	case TypeCLR:
		return "CLR"
	case TypeCheckpoint:
		return "CKPT"
	case TypePrepare:
		return "PREPARE"
	case TypeDecide:
		return "DECIDE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// TID identifies a transaction, unique across the life of a server.
type TID uint64

// NoLSN marks the absence of a log sequence number (LSN 0 is a valid first
// record), used to terminate PrevLSN undo chains.
const NoLSN = ^uint64(0)

// String implements fmt.Stringer.
func (t TID) String() string { return fmt.Sprintf("T%d", uint64(t)) }

// Record is a single log record. Before/After are interpreted per Type:
// updates use both; page images and CLRs use only After; commit, abort, end
// use neither; checkpoints put their payload in After.
type Record struct {
	LSN      uint64 // assigned by the server's log manager
	PrevLSN  uint64 // previous record of the same transaction (undo chain)
	TID      TID
	Type     Type
	Page     page.ID
	Off      uint16 // byte offset within the page (updates and CLRs)
	UndoNext uint64 // CLRs only: next LSN of this transaction to undo
	Before   []byte
	After    []byte
}

// HeaderSize is the encoded size of a record header. The paper reports ESM
// headers of approximately 50 bytes; ours is 52 (the 4-byte CRC is the
// surplus). internal/diff keeps the paper's combining constant of 50.
const HeaderSize = 52

// Encoded layout, little-endian:
//
//	[0,4)   total record length, including this field
//	[4,8)   CRC-32 (IEEE) of bytes [8, total)
//	[8,16)  LSN
//	[16,24) PrevLSN
//	[24,32) TID
//	[32,40) UndoNext
//	[40,44) Page
//	[44,45) Type
//	[45,46) reserved
//	[46,48) Off
//	[48,50) len(Before)
//	[50,52) reserved high bits: lengths are u32 split (see below)
//	[52,..) Before bytes, then After bytes
//
// Page images need a 4-byte After length (8192 > 65535 is false, 8192 fits
// u16, but checkpoints can exceed it), so lengths are encoded as: beforeLen
// u16 at [48,50) and afterLen derived from the total length.

// EncodedSize returns the number of bytes Encode will produce for r.
func (r *Record) EncodedSize() int { return HeaderSize + len(r.Before) + len(r.After) }

// Encode appends the binary encoding of r to dst and returns the extended
// slice.
func (r *Record) Encode(dst []byte) []byte {
	total := r.EncodedSize()
	start := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[start:]
	binary.LittleEndian.PutUint32(b[0:], uint32(total))
	binary.LittleEndian.PutUint64(b[8:], r.LSN)
	binary.LittleEndian.PutUint64(b[16:], r.PrevLSN)
	binary.LittleEndian.PutUint64(b[24:], uint64(r.TID))
	binary.LittleEndian.PutUint64(b[32:], r.UndoNext)
	binary.LittleEndian.PutUint32(b[40:], uint32(r.Page))
	b[44] = byte(r.Type)
	b[45] = 0
	binary.LittleEndian.PutUint16(b[46:], r.Off)
	if len(r.Before) > 0xffff {
		panic("logrec: before-image too large")
	}
	binary.LittleEndian.PutUint16(b[48:], uint16(len(r.Before)))
	binary.LittleEndian.PutUint16(b[50:], 0)
	copy(b[HeaderSize:], r.Before)
	copy(b[HeaderSize+len(r.Before):], r.After)
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[8:total]))
	return dst
}

// Errors returned by Decode.
var (
	ErrShort    = errors.New("logrec: buffer too short")
	ErrCorrupt  = errors.New("logrec: CRC mismatch")
	ErrBadSizes = errors.New("logrec: inconsistent lengths")
)

// Decode parses one record from the front of b and returns it along with the
// number of bytes consumed. The returned record's images alias b.
func Decode(b []byte) (*Record, int, error) {
	if len(b) < HeaderSize {
		return nil, 0, ErrShort
	}
	total := int(binary.LittleEndian.Uint32(b))
	if total < HeaderSize {
		return nil, 0, ErrBadSizes
	}
	if len(b) < total {
		return nil, 0, ErrShort
	}
	if crc32.ChecksumIEEE(b[8:total]) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, ErrCorrupt
	}
	beforeLen := int(binary.LittleEndian.Uint16(b[48:]))
	afterLen := total - HeaderSize - beforeLen
	if afterLen < 0 {
		return nil, 0, ErrBadSizes
	}
	r := &Record{
		LSN:      binary.LittleEndian.Uint64(b[8:]),
		PrevLSN:  binary.LittleEndian.Uint64(b[16:]),
		TID:      TID(binary.LittleEndian.Uint64(b[24:])),
		UndoNext: binary.LittleEndian.Uint64(b[32:]),
		Page:     page.ID(binary.LittleEndian.Uint32(b[40:])),
		Type:     Type(b[44]),
		Off:      binary.LittleEndian.Uint16(b[46:]),
	}
	if beforeLen > 0 {
		r.Before = b[HeaderSize : HeaderSize+beforeLen : HeaderSize+beforeLen]
	}
	if afterLen > 0 {
		r.After = b[HeaderSize+beforeLen : total : total]
	}
	return r, total, nil
}

// DecodeAll parses every record in b, which must contain a whole number of
// records.
func DecodeAll(b []byte) ([]*Record, error) {
	var out []*Record
	for len(b) > 0 {
		r, n, err := Decode(b)
		if err != nil {
			return out, err
		}
		out = append(out, r)
		b = b[n:]
	}
	return out, nil
}

// String implements fmt.Stringer for debugging.
func (r *Record) String() string {
	return fmt.Sprintf("%s lsn=%d prev=%d %s %s off=%d b=%d a=%d",
		r.Type, r.LSN, r.PrevLSN, r.TID, r.Page, r.Off, len(r.Before), len(r.After))
}

// Clone returns a deep copy of r; the copy's images do not alias r's.
func (r *Record) Clone() *Record {
	c := *r
	if r.Before != nil {
		c.Before = append([]byte(nil), r.Before...)
	}
	if r.After != nil {
		c.After = append([]byte(nil), r.After...)
	}
	return &c
}

// NewUpdate builds an update record for the byte range [off, off+len(before))
// of pg. The images are copied.
func NewUpdate(tid TID, pg page.ID, off int, before, after []byte) *Record {
	if len(before) != len(after) {
		panic("logrec: image length mismatch")
	}
	return &Record{
		TID:    tid,
		Type:   TypeUpdate,
		Page:   pg,
		Off:    uint16(off),
		Before: append([]byte(nil), before...),
		After:  append([]byte(nil), after...),
	}
}

// NewPageImage builds a whole-page after-image record. The image is copied.
func NewPageImage(tid TID, pg page.ID, image []byte) *Record {
	return &Record{
		TID:   tid,
		Type:  TypePageImage,
		Page:  pg,
		After: append([]byte(nil), image...),
	}
}

// NewCommit builds a commit record.
func NewCommit(tid TID) *Record { return &Record{TID: tid, Type: TypeCommit} }

// NewAbort builds an abort record.
func NewAbort(tid TID) *Record { return &Record{TID: tid, Type: TypeAbort} }

// NewEnd builds an end record.
func NewEnd(tid TID) *Record { return &Record{TID: tid, Type: TypeEnd} }
