package logrec

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/page"
)

func TestUpdateRoundTrip(t *testing.T) {
	r := NewUpdate(7, 42, 128, []byte("before!!"), []byte("after!!!"))
	r.LSN = 1000
	r.PrevLSN = 900
	buf := r.Encode(nil)
	if len(buf) != r.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), r.EncodedSize())
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if got.LSN != 1000 || got.PrevLSN != 900 || got.TID != 7 || got.Page != 42 ||
		got.Off != 128 || got.Type != TypeUpdate {
		t.Fatalf("header mismatch: %v", got)
	}
	if !bytes.Equal(got.Before, []byte("before!!")) || !bytes.Equal(got.After, []byte("after!!!")) {
		t.Fatal("image mismatch")
	}
}

func TestControlRecords(t *testing.T) {
	for _, r := range []*Record{NewCommit(3), NewAbort(4), NewEnd(5)} {
		buf := r.Encode(nil)
		if len(buf) != HeaderSize {
			t.Fatalf("%v encodes to %d bytes, want %d", r.Type, len(buf), HeaderSize)
		}
		got, _, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != r.Type || got.TID != r.TID {
			t.Fatalf("round trip: %v != %v", got, r)
		}
		if got.Before != nil || got.After != nil {
			t.Fatal("control record grew images")
		}
	}
}

func TestPageImageRoundTrip(t *testing.T) {
	img := make([]byte, page.Size)
	for i := range img {
		img[i] = byte(i)
	}
	r := NewPageImage(9, 11, img)
	got, _, err := Decode(r.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypePageImage || !bytes.Equal(got.After, img) || got.Before != nil {
		t.Fatal("page image mismatch")
	}
}

func TestCLRRoundTrip(t *testing.T) {
	r := &Record{TID: 1, Type: TypeCLR, Page: 5, Off: 10, UndoNext: 777, After: []byte{1, 2, 3}}
	got, _, err := Decode(r.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.UndoNext != 777 || got.Type != TypeCLR || !bytes.Equal(got.After, []byte{1, 2, 3}) {
		t.Fatalf("CLR mismatch: %v", got)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, _, err := Decode(make([]byte, 10)); err != ErrShort {
		t.Fatalf("err = %v", err)
	}
	r := NewCommit(1)
	buf := r.Encode(nil)
	if _, _, err := Decode(buf[:len(buf)-1]); err != ErrShort {
		t.Fatalf("truncated record: err = %v", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	buf := NewUpdate(1, 2, 3, []byte{4}, []byte{5}).Encode(nil)
	buf[len(buf)-1] ^= 0xff
	if _, _, err := Decode(buf); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeAll(t *testing.T) {
	var buf []byte
	want := []*Record{
		NewUpdate(1, 2, 0, []byte("ab"), []byte("cd")),
		NewCommit(1),
		NewPageImage(2, 3, make([]byte, 64)),
	}
	for i, r := range want {
		r.LSN = uint64(i + 1)
		buf = r.Encode(buf)
	}
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].LSN != want[i].LSN {
			t.Fatalf("record %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := NewUpdate(1, 2, 0, []byte{1}, []byte{2})
	c := r.Clone()
	r.Before[0] = 99
	r.After[0] = 99
	if c.Before[0] != 1 || c.After[0] != 2 {
		t.Fatal("clone shares image storage")
	}
}

func TestMismatchedImagesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewUpdate(1, 2, 0, []byte{1, 2}, []byte{3})
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(tid uint64, pg uint32, off uint16, img []byte) bool {
		if len(img) > 0xffff {
			img = img[:0xffff]
		}
		after := make([]byte, len(img))
		for i := range img {
			after[i] = img[i] ^ 0x33
		}
		r := NewUpdate(TID(tid), page.ID(pg), int(off), img, after)
		r.LSN = tid ^ 0x1234
		got, n, err := Decode(r.Encode(nil))
		if err != nil || n != r.EncodedSize() {
			return false
		}
		return got.TID == r.TID && got.Page == r.Page && got.Off == off &&
			bytes.Equal(got.Before, img) && bytes.Equal(got.After, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
