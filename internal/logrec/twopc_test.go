package logrec

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestPrepareRoundTrip(t *testing.T) {
	r := NewPrepare(41, 2, []int{0, 2, 3})
	got, n, err := Decode(r.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if n != r.EncodedSize() || got.Type != TypePrepare || got.TID != 41 {
		t.Fatalf("header mismatch: %v", got)
	}
	coord, parts, err := DecodePrepareInfo(got.After)
	if err != nil {
		t.Fatal(err)
	}
	if coord != 2 || len(parts) != 3 || parts[0] != 0 || parts[1] != 2 || parts[2] != 3 {
		t.Fatalf("payload mismatch: coord=%d parts=%v", coord, parts)
	}
}

func TestDecideRoundTrip(t *testing.T) {
	r := NewDecide(7, 1, []int{1, 0})
	got, _, err := Decode(r.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeDecide || got.TID != 7 {
		t.Fatalf("header mismatch: %v", got)
	}
	coord, parts, err := DecodePrepareInfo(got.After)
	if err != nil {
		t.Fatal(err)
	}
	if coord != 1 || len(parts) != 2 || parts[0] != 1 || parts[1] != 0 {
		t.Fatalf("payload mismatch: coord=%d parts=%v", coord, parts)
	}
}

func TestPrepareInfoEmptyParticipants(t *testing.T) {
	coord, parts, err := DecodePrepareInfo(EncodePrepareInfo(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	if coord != 5 || len(parts) != 0 {
		t.Fatalf("coord=%d parts=%v", coord, parts)
	}
}

func TestDecodePrepareInfoRejectsCorrupt(t *testing.T) {
	good := EncodePrepareInfo(1, []int{0, 1})
	cases := map[string][]byte{
		"short":     good[:6],
		"truncated": good[:len(good)-2],
		"overlong":  append(append([]byte(nil), good...), 0xaa),
		"empty":     {},
		"huge count": func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[4:], 1<<30)
			return b
		}(),
	}
	for name, b := range cases {
		if _, _, err := DecodePrepareInfo(b); err != ErrBadPrepare {
			t.Errorf("%s: err = %v, want ErrBadPrepare", name, err)
		}
	}
}

func TestTwoPCStrings(t *testing.T) {
	if s := TypePrepare.String(); s != "PREPARE" {
		t.Fatalf("TypePrepare.String() = %q", s)
	}
	if s := TypeDecide.String(); s != "DECIDE" {
		t.Fatalf("TypeDecide.String() = %q", s)
	}
}

func TestPrepareEncodeIsDeterministic(t *testing.T) {
	a := NewPrepare(9, 0, []int{0, 1, 2}).Encode(nil)
	b := NewPrepare(9, 0, []int{0, 1, 2}).Encode(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("prepare encoding is not deterministic")
	}
}
