// fixture-path: repro/qslintfixtures/walout
//
// Layering (rule A): this package is outside the storage-protocol allowlist,
// so writing a page to a disk.Store or mutating buffer-pool frames from here
// bypasses the WAL protocol the sweeps verify.
package walout

import (
	"repro/internal/buffer"
	"repro/internal/disk"
)

// sneaky writes straight to the volume, skipping the log entirely.
func sneaky(st disk.Store) error {
	return st.WritePage(1, make([]byte, 64)) // want "storage-protocol"
}

// poke mutates pool frame state from outside the fix/unfix protocol.
func poke(p *buffer.Pool) {
	p.Clear() // want "mutates buffer-pool frames"
}
