// fixture-path: repro/qslintfixtures/latchok
//
// Negative latch-order fixture: legal acquisition orders, the enter()/exit()
// gate idiom, branch-dependent release, and the TryLock-then-Lock contention
// idiom the real buffer.Sharded.Lock uses. No diagnostics expected.
package latchok

import (
	"sync"

	"repro/internal/buffer"
	"repro/internal/page"
)

type node struct {
	gate  sync.RWMutex
	big   sync.Mutex
	attMu sync.Mutex
	wplMu sync.Mutex
	pool  *buffer.Sharded
}

func (n *node) enter() func() {
	n.gate.RLock()
	return n.gate.RUnlock
}

// fullOrder walks the whole legal chain gate → big → shard → leaf.
func (n *node) fullOrder(pid page.ID) {
	defer n.enter()()
	n.big.Lock()
	sh := n.pool.Lock(pid)
	n.attMu.Lock()
	n.attMu.Unlock()
	sh.Unlock()
	n.big.Unlock()
}

// sequential holds one shard latch at a time: never two at once.
func (n *node) sequential(a, b page.ID) {
	sh := n.pool.Lock(a)
	sh.Unlock()
	sh2 := n.pool.Lock(b)
	sh2.Unlock()
}

// contended is the TryLock idiom from buffer.Sharded.Lock: the failure
// branch runs unlatched and falls through latched either way.
func (n *node) contended(i int) {
	sh := n.pool.Shard(i)
	if !sh.TryLock() {
		sh.Lock()
	}
	sh.Unlock()
}

// branches releases on the error path and falls through holding: both arms
// stay within the order.
func (n *node) branches(pid page.ID, fail bool) {
	sh := n.pool.Lock(pid)
	if fail {
		sh.Unlock()
		return
	}
	n.wplMu.Lock()
	n.wplMu.Unlock()
	sh.Unlock()
}
