// fixture-path: repro/qslintfixtures/workerok

// Package workerok is the clean twin of seededworker: the canonical
// stoppable background loop — NewTicker plus a select on a stop channel
// that Close really closes, a range over a work channel that Close
// closes, and a done channel joined on shutdown. goroutine-lifecycle
// must stay silent here.
package workerok

import "time"

type worker struct {
	stop chan struct{}
	done chan struct{}
	work chan int
	n    int
}

// start runs the canonical stoppable maintenance loop.
func (w *worker) start() {
	go func() {
		defer close(w.done)
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.n++
			}
		}
	}()
}

// drain ranges over the work channel; close(w.work) in Close ends the
// range and the goroutine with it.
func (w *worker) drain() {
	go func() {
		for v := range w.work {
			w.n += v
		}
	}()
}

// Close stops both loops and joins the ticker loop.
func (w *worker) Close() {
	close(w.stop)
	close(w.work)
	<-w.done
}
