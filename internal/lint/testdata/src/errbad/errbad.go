// fixture-path: repro/internal/server/errbad
//
// Error-discipline positives: bare call statements that throw away error
// returns from the WAL and the archiver — durability events silently lost.
package errbad

import (
	"repro/internal/archive"
	"repro/internal/logrec"
	"repro/internal/wal"
)

// drop loses a log-append failure: the caller would report commit success
// for a record that never reached the log.
func drop(log *wal.Log, r *logrec.Record) {
	log.Append(r) // want "discarded"
}

// lag loses an archiver drain failure: the archive silently stops keeping
// up.
func lag(a *archive.Archiver) {
	a.Drain() // want "discarded"
}
