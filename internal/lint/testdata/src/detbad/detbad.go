// fixture-path: repro/internal/harness/detbad
//
// Determinism positives: a wall-clock read and an unsorted map iteration
// feeding output, both inside a sweep-critical package path.
package detbad

import (
	"fmt"
	"time"
)

// stamp reads real time on a replayed path.
func stamp() string {
	return time.Now().String() // want "wall-clock"
}

// dump prints in map order, which Go randomizes per run.
func dump(m map[int]string) {
	for k, v := range m { // want "map iteration"
		fmt.Println(k, v)
	}
}
