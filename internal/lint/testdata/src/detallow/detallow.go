// fixture-path: repro/internal/harness/detallow
//
// Negative determinism fixture: a legitimate wall-clock use suppressed by a
// function-level //qslint:allow annotation that carries a reason, plus a
// line-level one. No diagnostics expected.
package detallow

import "time"

// deadline computes a real timeout bound, like the lock manager's deadlock
// deadline.
//
//qslint:allow determinism: fixture copy of the lock-manager deadline — a real timeout that never reaches logged state
func deadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}

func elapsed(since time.Time) time.Duration {
	//qslint:allow determinism: operator-facing timer, never replayed
	return time.Since(since)
}
