// fixture-path: repro/internal/server/errok
//
// Negative error-discipline fixture: handled errors, an explicit `_ =`
// discard, and the Close exemption. No diagnostics expected.
package errok

import (
	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/wal"
)

// handled propagates the append error.
func handled(log *wal.Log, r *logrec.Record) error {
	if _, err := log.Append(r); err != nil {
		return err
	}
	return nil
}

// explicit discards deliberately and visibly.
func explicit(st disk.Store) {
	_ = st.WritePage(2, make([]byte, 64))
}

// teardown: Close errors are conventionally ignorable.
func teardown(st disk.Store) {
	st.Close()
}
