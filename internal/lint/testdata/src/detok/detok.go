// fixture-path: repro/internal/harness/detok
//
// Negative determinism fixture: map-keyed output printed via sorted keys,
// and a map iteration that only accumulates (no output inside the loop). No
// diagnostics expected.
package detok

import (
	"fmt"
	"sort"
)

// dump prints in ascending key order: identical bytes every run.
func dump(m map[int]string) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// total only folds the map into a scalar; order cannot show.
func total(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
