// fixture-path: repro/qslintfixtures/seededwrap

// Package seededwrap seeds sentinel-errors violations: identity tests,
// switch cases, string matching and type assertions against module
// error sentinels that arrive wrapped in fmt.Errorf("...: %w", err)
// context.
package seededwrap

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/wal"
)

// ErrStale is a fixture-local module sentinel.
var ErrStale = errors.New("seededwrap: stale")

type opError struct{ op string }

func (e *opError) Error() string { return e.op }

// read wraps the sentinel the way every layer boundary does.
func read() error {
	return fmt.Errorf("read: %w", wal.ErrTruncated)
}

// checkEq tests identity on a wrapped sentinel: it never matches.
func checkEq() bool {
	err := read()
	return err == wal.ErrTruncated // want "errors.Is"
}

// checkLocal does the same against the fixture-local sentinel.
func checkLocal(err error) bool {
	return err != ErrStale // want "errors.Is"
}

// checkSwitch is == in switch clothing.
func checkSwitch(err error) int {
	switch err {
	case wal.ErrTruncated: // want "errors.Is chain"
		return 1
	case nil:
		return 0
	}
	return 2
}

// checkString matches on error text, which is not an API.
func checkString(err error) bool {
	return strings.Contains(err.Error(), "stale") // want "error text is not an API"
}

// checkCompare compares .Error() output directly.
func checkCompare(err error) bool {
	return err.Error() == "seededwrap: stale" // want "error text is not an API"
}

// checkAssert digs for the concrete type without unwrapping.
func checkAssert(err error) string {
	if oe, ok := err.(*opError); ok { // want "errors.As"
		return oe.op
	}
	return ""
}

// legacyEq keeps one identity test a migration note justifies; the
// line-level allow must suppress it (proven by absence).
func legacyEq(err error) bool {
	return err == ErrStale //qslint:allow sentinel-errors: compared before any wrapping can happen; suppression test
}
