package seededstandby

// relaxedAck advances the watermark without a force of its own; the
// fixture models a path whose records an external flusher has already
// covered. The doc-level allow must suppress the diagnostic entirely —
// the fixture proves it by the absence of an unexpected finding here.
//
//qslint:allow force-before-ack: fixture models an external flusher that already covered cursor; suppression test
func (s *standby) relaxedAck(cursor uint64) {
	s.applied.Store(cursor)
}
