// fixture-path: repro/qslintfixtures/seededstandby

// Package seededstandby seeds force-before-ack violations: watermark
// stores and semi-sync acks on paths where the wal tail may still be
// unforced (DESIGN.md §14's apply → Force → advance order, broken on
// purpose).
package seededstandby

import (
	"sync/atomic"

	"repro/internal/logrec"
	"repro/internal/wal"
)

type standby struct {
	log     *wal.Log
	applied atomic.Uint64
	fast    bool
}

// ApplyShipped mimics the standby's shipped-record apply: it appends
// into the local log, extending the unforced tail.
func (s *standby) ApplyShipped(r *logrec.Record) error {
	_, err := s.log.Append(r)
	return err
}

// applyBatch forces on the hot path but acks the empty-batch early
// return without one: the all-paths dataflow must catch the skipped
// branch even though the common path is correct.
func (s *standby) applyBatch(recs []*logrec.Record, cursor uint64) error {
	for _, r := range recs {
		if err := s.ApplyShipped(r); err != nil {
			return err
		}
	}
	if len(recs) == 0 {
		s.applied.Store(cursor) // want "may not have been forced"
		return nil
	}
	s.log.Force()
	s.applied.Store(cursor)
	return nil
}

// CommitAck is the fixture's stand-in for the server's semi-sync reply
// hook.
func (s *standby) CommitAck(end uint64) {}

// commit forces only on the slow path; the fast path acknowledges an
// append that was never made stable.
func (s *standby) commit(r *logrec.Record) error {
	lsn, err := s.log.Append(r)
	if err != nil {
		return err
	}
	if s.fast {
		s.CommitAck(lsn) // want "may not have been forced"
		return nil
	}
	s.log.Force()
	s.CommitAck(lsn)
	return nil
}

// stage buffers one record through a helper; the append inside it must
// reset the forced fact interprocedurally (may-append summary).
func (s *standby) stage(r *logrec.Record) error {
	return s.ApplyShipped(r)
}

// ackAfterStage forces first, then stages — the helper's hidden append
// leaves the tail unforced again at the store.
func (s *standby) ackAfterStage(r *logrec.Record, cursor uint64) error {
	s.log.Force()
	if err := s.stage(r); err != nil {
		return err
	}
	s.applied.Store(cursor) // want "may not have been forced"
	return nil
}
