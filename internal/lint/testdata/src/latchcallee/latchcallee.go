// fixture-path: repro/qslintfixtures/latchcallee
//
// Interprocedural latch-order violations: the offending acquisitions happen
// inside callees, so only the transitive footprint pass can see them.
package latchcallee

import (
	"sync"

	"repro/internal/buffer"
	"repro/internal/page"
)

type core struct {
	big   sync.Mutex
	attMu sync.Mutex
	pool  *buffer.Sharded
}

// lockShard pins a page's shard briefly: clean in isolation.
func (c *core) lockShard(pid page.ID) {
	sh := c.pool.Lock(pid)
	sh.Unlock()
}

// serialize takes the big mutex: clean in isolation.
func (c *core) serialize() {
	c.big.Lock()
	c.big.Unlock()
}

// doubleShard holds a shard latch while calling a function that latches a
// shard itself: two shard latches, reached through the call graph.
func (c *core) doubleShard(pid page.ID) {
	sh := c.pool.Lock(pid)
	c.lockShard(pid) // want "acquires a shard latch"
	sh.Unlock()
}

// leafThenBig holds a leaf mutex while calling a function that takes the big
// mutex: a §S9 inversion via the callee's footprint.
func (c *core) leafThenBig() {
	c.attMu.Lock()
	c.serialize() // want "inverts"
	c.attMu.Unlock()
}
