// fixture-path: repro/internal/server/walok
//
// Negative wal-discipline fixture: an allowlisted (server-side) package may
// write pages, and append-then-write — the correct WAL order — is never
// flagged. No diagnostics expected.
package walok

import (
	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/wal"
)

// install is the legal order: log record first, then the page image.
func install(log *wal.Log, st disk.Store, r *logrec.Record) error {
	if _, err := log.Append(r); err != nil {
		return err
	}
	return st.WritePage(7, make([]byte, 64))
}

// checkpointShape forces before flushing and appends the summary record
// after: the sharp-checkpoint pattern.
func checkpointShape(log *wal.Log, st disk.Store, r *logrec.Record) error {
	log.Force()
	if err := st.WritePage(9, make([]byte, 64)); err != nil {
		return err
	}
	_, err := log.Append(r)
	return err
}
