// fixture-path: repro/internal/harness/allowbad
//
// An //qslint:allow annotation without a reason: the directive itself is
// flagged, and it suppresses nothing — the wall-clock read still fires.
package allowbad

import "time"

// want "needs a reason"
//
//qslint:allow determinism
func stamp() time.Time {
	return time.Now() // want "wall-clock"
}
