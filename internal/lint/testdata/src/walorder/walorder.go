// fixture-path: repro/internal/recbuf/walorder
//
// Write-ahead ordering (rule B): the package path sits inside the storage
// allowlist so the layering rule stays quiet and only the ordering rule
// speaks. A page write followed by an Append with no force anywhere before
// the write is flagged; forcing first makes the identical body legal.
package walorder

import (
	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/wal"
)

// inverted writes a page and then appends: the record could be lost in a
// crash the page survives.
func inverted(log *wal.Log, st disk.Store, r *logrec.Record) error {
	if err := st.WritePage(3, make([]byte, 64)); err != nil {
		return err
	}
	if _, err := log.Append(r); err != nil { // want "write-ahead"
		return err
	}
	return nil
}

// forcedFirst is the sharp-checkpoint shape: force, flush, then append the
// record describing already-stable state. Clean.
func forcedFirst(log *wal.Log, st disk.Store, r *logrec.Record) error {
	log.Force()
	if err := st.WritePage(3, make([]byte, 64)); err != nil {
		return err
	}
	if _, err := log.Append(r); err != nil {
		return err
	}
	return nil
}
