// fixture-path: repro/qslintfixtures/seededworker

// Package seededworker seeds goroutine-lifecycle violations: background
// goroutines that outlive Close — an exit-free spin loop, a time.Tick
// loop, a stop channel nothing ever closes, and a leaked loop behind a
// `go method()` spawn.
package seededworker

import "time"

type worker struct {
	stop chan struct{}
	n    int
}

// spin's goroutine has no path to its exit: it can never be stopped or
// joined.
func (w *worker) spin() {
	go func() { // want "can never terminate"
		for {
			w.n++
		}
	}()
}

// tick ranges over time.Tick: the channel is never closed, so the loop
// and its ticker leak.
func (w *worker) tick() {
	go func() { // want "time.Tick"
		for range time.Tick(time.Second) {
			w.n++
		}
	}()
}

// orphan selects on a stop channel, but no close(w.stop) or send exists
// anywhere in the package: the shutdown path was never written.
func (w *worker) orphan() {
	go func() { // want "nothing in the module ever closes"
		for {
			select {
			case <-w.stop:
				return
			}
		}
	}()
}

// run spawns a module method directly; the leak lives in the method
// body but is reported at the spawn.
func (w *worker) run() {
	go w.loop() // want "can never terminate"
}

func (w *worker) loop() {
	for {
		w.n++
	}
}
