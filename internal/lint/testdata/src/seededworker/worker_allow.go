package seededworker

// forever models a daemon the harness deliberately owns for the whole
// process lifetime; the doc-level allow must suppress the
// exit-unreachable diagnostic — proven by the absence of an unexpected
// finding here.
//
//qslint:allow goroutine-lifecycle: fixture daemon deliberately runs for the process lifetime; suppression test
func (w *worker) forever() {
	go func() {
		for {
			w.n++
		}
	}()
}
