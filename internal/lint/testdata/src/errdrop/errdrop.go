// fixture-path: repro/internal/server/errdrop
//
// Error-discipline positive: a discarded disk.Store write error — the page
// image may never have reached the volume.
package errdrop

import "repro/internal/disk"

func flush(st disk.Store) {
	st.WritePage(4, make([]byte, 64)) // want "discarded"
}
