// fixture-path: repro/qslintfixtures/standbyok

// Package standbyok is the clean twin of seededstandby: every watermark
// store and semi-sync ack is dominated by a covering wal force, via the
// direct Force, CommitWait, a must-force helper, or a StableEnd-derived
// value. force-before-ack must stay silent here.
package standbyok

import (
	"sync/atomic"

	"repro/internal/logrec"
	"repro/internal/wal"
)

type standby struct {
	log     *wal.Log
	applied atomic.Uint64
}

// ApplyShipped appends the shipped record into the local log.
func (s *standby) ApplyShipped(r *logrec.Record) error {
	_, err := s.log.Append(r)
	return err
}

// CommitAck is the semi-sync reply hook.
func (s *standby) CommitAck(end uint64) {}

// runBatch is the canonical apply → Force → advance order.
func (s *standby) runBatch(recs []*logrec.Record, cursor uint64) error {
	for _, r := range recs {
		if err := s.ApplyShipped(r); err != nil {
			return err
		}
	}
	s.log.Force()
	s.applied.Store(cursor)
	return nil
}

// bootstrap seeds the watermark from StableEnd: a value read from the
// stable frontier is durable by construction, so no force is needed.
func (s *standby) bootstrap() {
	s.applied.Store(s.log.StableEnd())
}

// forceBatch forces on every path: a must-force helper.
func (s *standby) forceBatch() {
	s.log.Force()
}

// ackViaHelper relies on the interprocedural must-summary: forceBatch
// establishes the fact for the store that follows.
func (s *standby) ackViaHelper(r *logrec.Record, cursor uint64) error {
	if err := s.ApplyShipped(r); err != nil {
		return err
	}
	s.forceBatch()
	s.applied.Store(cursor)
	return nil
}

// commit uses CommitWait — the group-commit force — before the ack.
func (s *standby) commit(r *logrec.Record) error {
	lsn, err := s.log.Append(r)
	if err != nil {
		return err
	}
	s.log.CommitWait(lsn)
	s.CommitAck(lsn)
	return nil
}
