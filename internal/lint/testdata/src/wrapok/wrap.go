// fixture-path: repro/qslintfixtures/wrapok

// Package wrapok is the clean twin of seededwrap: errors.Is/As against
// module sentinels, plus the comparisons that are deliberately out of
// scope — stdlib sentinels (io.EOF is the documented unwrapped
// contract) and nil tests. sentinel-errors must stay silent here.
package wrapok

import (
	"errors"
	"io"

	"repro/internal/wal"
)

type opError struct{ op string }

func (e *opError) Error() string { return e.op }

// okIs unwraps with errors.Is.
func okIs(err error) bool {
	return errors.Is(err, wal.ErrTruncated)
}

// okAs unwraps to the concrete type with errors.As.
func okAs(err error) (string, bool) {
	var oe *opError
	if errors.As(err, &oe) {
		return oe.op, true
	}
	return "", false
}

// okEOF tests a stdlib sentinel: out of scope by design.
func okEOF(err error) bool {
	return err == io.EOF
}

// okNil is a plain nil test, not a sentinel comparison.
func okNil(err error) bool {
	return err == nil
}
