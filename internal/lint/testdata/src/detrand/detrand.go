// fixture-path: repro/internal/logrec/detrand
//
// Determinism positive: math/rand imported on a sweep-critical path. Its
// stream is not guaranteed stable across Go releases, so even a seeded use
// here could change replayed bytes after a toolchain bump.
package detrand

import "math/rand" // want "math/rand"

func jitter() int {
	return rand.Intn(8)
}
