// fixture-path: repro/internal/recbuf/qslintcleaniook

// Package qslintcleaniook is the clean twin of the seeded latch-io
// fixture: it exercises every documented exception — shard-latched page
// writes (the eviction/cleaner protocol), wal appends under attMu (the
// §13 commit order), a force taken latch-free before re-latching,
// default-guarded selects, and sync.Cond.Wait holding exactly its own
// leaf mutex. latch-io must stay silent here.
package qslintcleaniook

import (
	"sync"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wal"
)

type flusher struct {
	pool  *buffer.Sharded
	log   *wal.Log
	store disk.Store
	attMu sync.Mutex
	cond  *sync.Cond
	ready bool
	work  chan page.ID
}

// cleanOne is the cleaner order: force the covering records latch-free,
// then re-latch and write the page home. The shard latch is exactly what
// keeps the frame image stable during the store write.
func (f *flusher) cleanOne(pid page.ID, buf []byte) error {
	f.log.Force()
	sh := f.pool.Lock(pid)
	defer sh.Unlock()
	return f.store.WritePage(pid, buf)
}

// logCommit appends under attMu: the §13 commit protocol orders the
// append with the table mutations, and only shard latches ban appends.
func (f *flusher) logCommit(r *logrec.Record) error {
	f.attMu.Lock()
	defer f.attMu.Unlock()
	_, err := f.log.Append(r)
	return err
}

// waitRoom parks on the pool condition holding exactly the cond's own
// leaf mutex; Wait releases it atomically while parked.
func (f *flusher) waitRoom() {
	f.attMu.Lock()
	for !f.ready {
		f.cond.Wait()
	}
	f.attMu.Unlock()
}

// poll drains ready work without blocking: the default clause makes the
// latched select non-blocking, whatever its cases name.
func (f *flusher) poll(pid page.ID) {
	sh := f.pool.Lock(pid)
	select {
	case p := <-f.work:
		_ = p
	default:
	}
	sh.Unlock()
}
