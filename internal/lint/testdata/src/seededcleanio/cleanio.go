// fixture-path: repro/internal/recbuf/qslintcleanio

// Package qslintcleanio seeds latch-io violations: slow and blocking
// operations performed while holding a buffer shard latch or a leaf
// mutex (the paper's §6 latch-convoy pathology, planted on purpose).
// The fixture path sits under internal/recbuf so the wal-discipline
// layering rule permits the store writes — every finding here must come
// from latch-io alone.
package qslintcleanio

import (
	"sync"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wal"
)

type cleaner struct {
	pool  *buffer.Sharded
	log   *wal.Log
	store disk.Store
	dptMu sync.Mutex
	work  chan page.ID
}

// forceLatched forces the wal with the shard latch still held: every
// contending session's cache hit now waits on the log device.
func (c *cleaner) forceLatched(pid page.ID) {
	sh := c.pool.Lock(pid)
	c.log.Force() // want "wal force while holding"
	sh.Unlock()
}

// appendLatched appends under a page latch; appends belong to the attMu
// commit section.
func (c *cleaner) appendLatched(pid page.ID, r *logrec.Record) error {
	sh := c.pool.Lock(pid)
	defer sh.Unlock()
	_, err := c.log.Append(r) // want "wal append while holding shard latch"
	return err
}

// writeUnderLeaf does store I/O under a leaf mutex — only shard-latched
// page writes are part of the eviction/cleaning protocol.
func (c *cleaner) writeUnderLeaf(pid page.ID, buf []byte) error {
	c.dptMu.Lock()
	defer c.dptMu.Unlock()
	return c.store.WritePage(pid, buf) // want "disk store I/O while holding"
}

// recvLatched parks on channel traffic while latched.
func (c *cleaner) recvLatched(pid page.ID) page.ID {
	sh := c.pool.Lock(pid)
	v := <-c.work // want "channel receive while holding"
	sh.Unlock()
	return v
}

// forcer is the indirect force; a latched call site inherits its
// may-force bit through the interprocedural summary.
func (c *cleaner) forcer() {
	c.log.Force()
}

// indirect calls the forcing helper under the shard latch.
func (c *cleaner) indirect(pid page.ID) {
	sh := c.pool.Lock(pid)
	c.forcer() // want "may force the wal"
	sh.Unlock()
}
