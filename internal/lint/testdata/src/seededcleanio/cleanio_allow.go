package qslintcleanio

import "repro/internal/page"

// repairForce mirrors server.repairImage: the latch is what freezes the
// frame while its replacement image is forced and written, so the force
// under the held latch is the repair protocol, not a convoy. The
// doc-level allow must silence latch-io here — proven by the absence of
// an unexpected diagnostic.
//
//qslint:allow latch-io: fixture twin of repairImage — the force under the held latch is the repair protocol; suppression test
func (c *cleaner) repairForce(pid page.ID) {
	sh := c.pool.Lock(pid)
	c.log.Force()
	sh.Unlock()
}
