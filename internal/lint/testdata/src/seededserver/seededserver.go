// fixture-path: repro/qslintfixtures/seededserver
//
// A scratch copy of the real server's latch fields with one deliberately
// seeded latch-order inversion per §S9 direction: leaf before shard, and
// shard before gate. The clean functions exercise the legal order and the
// enter()/exit() gate idiom so the analyzer's negative paths run too.
package seededserver

import (
	"sync"

	"repro/internal/buffer"
	"repro/internal/page"
)

// Server mirrors the latch fields of the real internal/server.Server.
type Server struct {
	gate    sync.RWMutex
	big     sync.Mutex
	attMu   sync.Mutex
	dptMu   sync.Mutex
	allocMu sync.Mutex
	pool    *buffer.Sharded
}

// enter takes the session gate in read mode and returns the releaser,
// exactly like the real server's gate idiom.
func (s *Server) enter() func() {
	s.gate.RLock()
	return s.gate.RUnlock
}

// fix follows the legal order gate → shard → leaf: clean.
func (s *Server) fix(pid page.ID) {
	defer s.enter()()
	sh := s.pool.Lock(pid)
	s.dptMu.Lock()
	s.dptMu.Unlock()
	sh.Unlock()
}

// serialize is the legal gate → big prefix: clean.
func (s *Server) serialize() {
	exit := s.enter()
	s.big.Lock()
	s.big.Unlock()
	exit()
}

// commitBroken seeds two inversions: a leaf mutex held across a shard
// acquire, and a shard latch held across the gate.
func (s *Server) commitBroken(pid page.ID) {
	s.attMu.Lock()
	sh := s.pool.Lock(pid) // want "inverts"
	sh.Unlock()
	s.attMu.Unlock()
	sh2 := s.pool.Lock(pid)
	exit := s.enter() // want "inverts"
	exit()
	sh2.Unlock()
}
