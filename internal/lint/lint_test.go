package lint

// Three layers of coverage:
//
//   - TestFixtures: a table of fixture packages under testdata/src/, each
//     annotated with // want "regex" comments; every emitted diagnostic must
//     match a want on its line and every want must be hit. Fixtures choose
//     their import path with a "// fixture-path:" directive so they can land
//     inside (or outside) the analyzers' path-scoped allowlists.
//   - TestSeededLatchInversion: the acceptance check — a scratch copy of the
//     server package's latch fields with deliberately seeded §S9 inversions
//     must be caught by the latch-order analyzer specifically.
//   - TestRepoIsLintClean: the self-check — the real module must carry zero
//     unsuppressed diagnostics, so `go test ./internal/lint/` fails the
//     moment a change violates an invariant, even before `make lint` runs.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	wantLineRe    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantQuoteRe   = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
	fixturePathRe = regexp.MustCompile(`(?m)^// fixture-path:\s*(\S+)`)
)

// want is one expected-diagnostic annotation.
type want struct {
	re   *regexp.Regexp
	raw  string
	line int
	own  bool // comment-only line: also covers the following line
	used bool
}

// collectWants parses // want "regex" annotations from every fixture file,
// keyed by base filename. A want on a comment-only line also matches
// diagnostics up to two lines below it (for positions that cannot carry a
// trailing comment, like an //qslint:allow directive — which gofmt separates
// from the preceding doc text with a bare // line).
func collectWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, ln := range strings.Split(string(data), "\n") {
			mm := wantLineRe.FindStringSubmatch(ln)
			if mm == nil {
				continue
			}
			own := strings.HasPrefix(strings.TrimSpace(ln), "//")
			qs := wantQuoteRe.FindAllStringSubmatch(mm[1], -1)
			if len(qs) == 0 {
				t.Fatalf("%s:%d: malformed want comment (no quoted regex)", e.Name(), i+1)
			}
			for _, q := range qs {
				pat, err := strconv.Unquote(`"` + q[1] + `"`)
				if err != nil {
					t.Fatalf("%s:%d: bad want string: %v", e.Name(), i+1, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), i+1, pat, err)
				}
				out[e.Name()] = append(out[e.Name()], &want{re: re, raw: pat, line: i + 1, own: own})
			}
		}
	}
	return out
}

// matchDiags pairs diagnostics with wants one-to-one.
func matchDiags(t *testing.T, name string, wants map[string][]*want, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		base := filepath.Base(d.File)
		matched := false
		for _, w := range wants[base] {
			if w.used || !(w.line == d.Line || (w.own && d.Line > w.line && d.Line <= w.line+2)) {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", name, d)
		}
	}
	for base, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", name, base, w.line, w.raw)
			}
		}
	}
}

// fixtureImportPath reads the fixture's "// fixture-path:" directive, falling
// back to a synthetic path outside every allowlist.
func fixtureImportPath(t *testing.T, dir, modPath, name string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if mm := fixturePathRe.FindSubmatch(data); mm != nil {
			return string(mm[1])
		}
	}
	return modPath + "/qslintfixtures/" + name
}

func TestFixtures(t *testing.T) {
	m, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join("testdata", "src")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		dir := filepath.Join(root, name)
		t.Run(name, func(t *testing.T) {
			pkg, err := m.LoadDirAs(dir, fixtureImportPath(t, dir, m.Path, name))
			if err != nil {
				t.Fatal(err)
			}
			diags := Run(m, []*Package{pkg}, All())
			matchDiags(t, name, collectWants(t, dir), diags)
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("no fixtures found under testdata/src")
	}
}

func TestSeededLatchInversion(t *testing.T) {
	m, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", "seededserver")
	pkg, err := m.LoadDirAs(dir, m.Path+"/qslintfixtures/seededserver")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, []*Package{pkg}, []Analyzer{LatchOrder{}})
	inversions := 0
	for _, d := range diags {
		if d.Analyzer == "latch-order" && strings.Contains(d.Message, "inverts") {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatalf("seeded §S9 inversions in the scratch server fixture were not caught; got %v", diags)
	}
}

// seededFixture loads one fixture package and runs a single analyzer
// over it, returning that analyzer's diagnostics.
func seededFixture(t *testing.T, name string, a Analyzer) []Diagnostic {
	t.Helper()
	m, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := m.LoadDirAs(dir, fixtureImportPath(t, dir, m.Path, name))
	if err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	for _, d := range Run(m, []*Package{pkg}, []Analyzer{a}) {
		if d.Analyzer == a.Name() {
			out = append(out, d)
		}
	}
	return out
}

// requireSeeded asserts that at least one diagnostic carries the marker
// substring — the analyzer-specific proof that the planted violation was
// the thing caught.
func requireSeeded(t *testing.T, diags []Diagnostic, marker string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, marker) {
			return
		}
	}
	t.Fatalf("seeded violation not caught (no diagnostic contains %q); got %v", marker, diags)
}

func TestSeededForceAck(t *testing.T) {
	diags := seededFixture(t, "seededstandby", ForceAck{})
	requireSeeded(t, diags, "may not have been forced")
	if len(diags) < 3 {
		t.Fatalf("expected the early-return, fast-path, and interprocedural acks to all be caught; got %v", diags)
	}
}

func TestSeededLatchIO(t *testing.T) {
	diags := seededFixture(t, "seededcleanio", LatchIO{})
	requireSeeded(t, diags, "wal force while holding")
	requireSeeded(t, diags, "may force the wal")
}

func TestSeededGoroutineLeak(t *testing.T) {
	diags := seededFixture(t, "seededworker", Goroutines{})
	requireSeeded(t, diags, "can never terminate")
	requireSeeded(t, diags, "time.Tick")
	requireSeeded(t, diags, "nothing in the module ever closes")
}

func TestSeededSentinel(t *testing.T) {
	diags := seededFixture(t, "seededwrap", Sentinels{})
	requireSeeded(t, diags, "use errors.Is")
	requireSeeded(t, diags, "use errors.As")
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "latch-io", File: "internal/server/server.go", Line: 42, Col: 3, Message: "wal force while holding sh (buffer shard latch)"},
		{Analyzer: "latch-io", File: "internal/server/server.go", Line: 99, Col: 3, Message: "wal force while holding sh (buffer shard latch)"},
		{Analyzer: "sentinel-errors", File: "internal/client/tx.go", Line: 7, Col: 5, Message: "page.ErrPageFull compared with ==: a wrapped sentinel never matches by identity — use errors.Is"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("round-trip lost entries: %v", entries)
	}

	// Same findings, different lines: everything covered, nothing stale.
	moved := append([]Diagnostic(nil), diags...)
	moved[0].Line = 57
	fresh, stale := ApplyBaseline(entries, moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("line churn must not invalidate the baseline: fresh=%v stale=%v", fresh, stale)
	}

	// A new finding is fresh; multiset semantics keep the duplicate covered.
	extra := append(moved, Diagnostic{Analyzer: "latch-io", File: "internal/server/scrub.go", Line: 1, Message: "time.Sleep while holding sh (buffer shard latch)"})
	fresh, stale = ApplyBaseline(entries, extra)
	if len(fresh) != 1 || fresh[0].File != "internal/server/scrub.go" {
		t.Fatalf("new finding not detected as fresh: fresh=%v", fresh)
	}
	if len(stale) != 0 {
		t.Fatalf("unexpected stale entries: %v", stale)
	}

	// A paid-down finding leaves its entry stale.
	fresh, stale = ApplyBaseline(entries, moved[:2])
	if len(fresh) != 0 {
		t.Fatalf("unexpected fresh findings: %v", fresh)
	}
	if len(stale) != 1 || stale[0].Analyzer != "sentinel-errors" {
		t.Fatalf("paid-down debt must surface as stale: %v", stale)
	}

	// A missing file is an empty baseline, not an error.
	none, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || none != nil {
		t.Fatalf("missing baseline: entries=%v err=%v", none, err)
	}
}

func TestRepoIsLintClean(t *testing.T) {
	m, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	// Mirror `make lint`: the harness's in-package test files carry
	// sweep-replay invariants and must stay clean too.
	m.IncludeTests(m.Path + "/internal/harness")
	pkgs, err := m.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module loader is missing most of the tree", len(pkgs))
	}
	for _, d := range Run(m, pkgs, All()) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}
