package lint

// A small forward abstract-interpretation engine over the CFG (DESIGN.md
// §15). An analyzer supplies the lattice (bottom element, merge) and a
// transfer function; the engine runs the usual worklist iteration to a
// fixed point and hands back the fact at every reachable block's entry.
//
// Diagnostics are NOT emitted during fixpoint iteration — a block may be
// visited many times as facts refine. Clients call Replay afterwards: one
// final deterministic pass over each reachable block with its fixed entry
// fact, during which the transfer function (now given report=true) speaks.

import "go/ast"

// flow is one dataflow problem. T is the fact type (facts flow forward,
// merging at join points).
type flow[T any] struct {
	bottom func() T                   // fact at function entry
	clone  func(T) T                  // defensive copy for branching
	merge  func(dst, src T) (T, bool) // join; reports whether dst changed
	// transfer interprets one CFG node. report is false during fixpoint
	// iteration and true during the final replay pass.
	transfer func(n ast.Node, fact T, report bool) T
}

// run iterates to a fixed point and returns the entry fact of every
// reachable block. Unreachable blocks (dead code after return/break) have
// no entry.
func runFlow[T any](c *CFG, fl flow[T]) map[*Block]T {
	in := make(map[*Block]T, len(c.Blocks))
	in[c.Entry] = fl.bottom()
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		fact := fl.clone(in[b])
		for _, n := range b.Nodes {
			fact = fl.transfer(n, fact, false)
		}
		for _, succ := range b.Succs {
			cur, seen := in[succ]
			var changed bool
			if !seen {
				in[succ] = fl.clone(fact)
				changed = true
			} else {
				in[succ], changed = fl.merge(cur, fact)
			}
			if changed && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// replay re-runs the transfer function once per reachable block with
// report=true, in deterministic block-creation order.
func replayFlow[T any](c *CFG, fl flow[T], in map[*Block]T) {
	for _, b := range c.Blocks {
		fact, ok := in[b]
		if !ok {
			continue
		}
		fact = fl.clone(fact)
		for _, n := range b.Nodes {
			fact = fl.transfer(n, fact, true)
		}
	}
}

// forEachCall visits every call expression under n in pre-order, skipping
// function-literal bodies (they execute on another goroutine or at an
// unknown later time, under their own abstract state).
func forEachCall(n ast.Node, f func(*ast.CallExpr)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			f(x)
		}
		return true
	})
}
