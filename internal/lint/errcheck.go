package lint

// error-discipline: an error from the stable-storage layer — the WAL, a
// disk.Store, the archiver — is a durability event, not a nuisance. Silently
// discarding one (a bare call statement) turns "the log append failed" into
// "the transaction committed anyway", exactly the failure class the crash
// sweeps exist to rule out. A deliberate discard must be explicit: assign to
// `_` or carry a //qslint:allow error-discipline annotation with a reason.
// Close is exempt (idiomatic in teardown paths).

import (
	"go/ast"
	"go/types"
)

// ErrCheck is the discarded-stable-storage-error analyzer.
type ErrCheck struct{}

func (ErrCheck) Name() string { return "error-discipline" }
func (ErrCheck) Doc() string {
	return "error returns from wal.*, disk.Store.* and archive.* calls must not be silently discarded"
}

func isErrType(t types.Type) bool { return t != nil && t.String() == "error" }

func hasErrResult(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func (ErrCheck) Check(m *Module, pkgs []*Package, report Reporter) {
	iface := storeInterface(m)
	storeMethods := make(map[string]bool)
	if iface != nil {
		for i := 0; i < iface.NumMethods(); i++ {
			storeMethods[iface.Method(i).Name()] = true
		}
	}
	walPath := m.Path + "/internal/wal"
	archivePath := m.Path + "/internal/archive"

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pkg.FuncAllowed("error-discipline", fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					es, ok := n.(*ast.ExprStmt)
					if !ok {
						return true
					}
					call, ok := es.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
					if obj == nil {
						return true
					}
					sig, ok := obj.Type().(*types.Signature)
					if !ok || !hasErrResult(sig) || obj.Name() == "Close" {
						return true
					}
					var recvT types.Type
					if tv, ok := pkg.Info.Types[sel.X]; ok {
						recvT = tv.Type
					}
					what := ""
					switch {
					case isNamedType(recvT, walPath, "Log"):
						what = "wal.Log." + obj.Name()
					case storeMethods[obj.Name()] && implementsIface(recvT, iface):
						what = "disk.Store." + obj.Name()
					case obj.Pkg() != nil && obj.Pkg().Path() == archivePath:
						what = "archive." + obj.Name()
					default:
						return true
					}
					report(pkg, call.Pos(), "error return of %s discarded: a stable-storage failure here is a durability event — handle it, or discard explicitly with `_ =` and a //qslint:allow error-discipline: <reason>", what)
					return true
				})
			}
		}
	}
}
