package lint

// The interprocedural summary layer (DESIGN.md §15). The latch-order
// analyzer has always needed "what may this callee acquire?" answered
// across the whole module; force-before-ack needs "does this callee force
// the log on every path?", and latch-io needs "may this callee force or
// block?". All three are the same shape: a per-function bitmask summary,
// seeded from each body and propagated over the module call graph to a
// fixed point. This file owns that shape — function collection, call-graph
// edges, CFG caching, and the two propagation modes:
//
//   - may-bits (union): if a callee MAY do X, so may its callers. Monotone
//     union over call edges; handles recursion by fixpoint.
//   - must-bits (all-paths): a function HAS property X only if every path
//     from entry to exit establishes it. These need the CFG per function,
//     so propagation re-runs each function's dataflow with the current
//     must-set until the set stops growing (also monotone: a growing set
//     only adds establishing events).
//
// Functions vouched for by a //qslint:allow <analyzer> doc directive are
// excluded from propagation — their effects are the annotation's problem,
// exactly as latch-order has always treated footprints.

import (
	"go/ast"
	"go/types"
)

// moduleFunc is one function declaration under analysis.
type moduleFunc struct {
	Pkg     *Package
	Decl    *ast.FuncDecl
	Obj     *types.Func
	Allowed bool // doc-comment allow directive for the owning analyzer
	Callees []*types.Func

	cfg *CFG // lazily built
}

// summaries indexes every function in the loaded packages for one analyzer.
type summaries struct {
	m     *Module
	funcs map[*types.Func]*moduleFunc
	order []*types.Func // deterministic (package, file, decl) order
}

// collectFuncs gathers every declared function with a body, its allow
// status for the named analyzer, and its module-internal call edges.
// Test files are skipped unless includeTests (the production protocol is
// what summaries describe).
func collectFuncs(m *Module, pkgs []*Package, analyzer string, includeTests bool) *summaries {
	s := &summaries{m: m, funcs: make(map[*types.Func]*moduleFunc)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			if !includeTests && pkg.IsTestFile(file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				mf := &moduleFunc{
					Pkg:     pkg,
					Decl:    fd,
					Obj:     obj,
					Allowed: pkg.FuncAllowed(analyzer, fd),
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := resolveModuleCall(m, pkg, call); callee != nil {
						mf.Callees = append(mf.Callees, callee)
					}
					return true
				})
				s.funcs[obj] = mf
				s.order = append(s.order, obj)
			}
		}
	}
	return s
}

// CFG returns (building once) the function's control-flow graph.
func (s *summaries) CFG(mf *moduleFunc) *CFG {
	if mf.cfg == nil {
		mf.cfg = buildCFG(mf.Decl.Body)
	}
	return mf.cfg
}

// propagateMay unions the seed bits over the call graph to a fixed point:
// callers inherit everything their (un-vouched) callees may do.
func (s *summaries) propagateMay(seed map[*types.Func]uint32) map[*types.Func]uint32 {
	out := make(map[*types.Func]uint32, len(s.funcs))
	for obj, bits := range seed {
		out[obj] = bits
	}
	for changed := true; changed; {
		changed = false
		for _, obj := range s.order {
			mf := s.funcs[obj]
			if mf.Allowed {
				continue
			}
			bits := out[obj]
			for _, callee := range mf.Callees {
				cf := s.funcs[callee]
				if cf == nil || cf.Allowed {
					continue
				}
				bits |= out[callee]
			}
			if bits != out[obj] {
				out[obj] = bits
				changed = true
			}
		}
	}
	return out
}

// propagateMust computes the set of functions for which establish holds on
// every entry→exit path. establishes reports whether one CFG node
// establishes the property directly; calls to functions already in the
// must-set establish it transitively. resets, if non-nil, reports nodes
// that destroy the property (e.g. a new log append after the force).
func (s *summaries) propagateMust(
	establishes func(mf *moduleFunc, n ast.Node) bool,
	resets func(mf *moduleFunc, n ast.Node) bool,
) map[*types.Func]bool {
	must := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, obj := range s.order {
			mf := s.funcs[obj]
			if must[obj] || mf.Allowed {
				continue
			}
			if s.mustHold(mf, must, establishes, resets) {
				must[obj] = true
				changed = true
			}
		}
	}
	return must
}

// mustHold runs the all-paths boolean dataflow for one function.
func (s *summaries) mustHold(
	mf *moduleFunc,
	must map[*types.Func]bool,
	establishes func(mf *moduleFunc, n ast.Node) bool,
	resets func(mf *moduleFunc, n ast.Node) bool,
) bool {
	c := s.CFG(mf)
	fl := flow[bool]{
		bottom: func() bool { return false },
		clone:  func(b bool) bool { return b },
		merge: func(dst, src bool) (bool, bool) {
			merged := dst && src
			return merged, merged != dst
		},
		transfer: func(n ast.Node, fact bool, _ bool) bool {
			if resets != nil && resets(mf, n) {
				fact = false
			}
			if establishes(mf, n) {
				return true
			}
			forEachCall(n, func(call *ast.CallExpr) {
				if callee := resolveModuleCall(s.m, mf.Pkg, call); callee != nil && must[callee] {
					fact = true
				}
			})
			return fact
		},
	}
	in := runFlow(c, fl)
	exitFact, reachable := in[c.Exit]
	return reachable && exitFact
}

// resolveModuleCall resolves a call expression to the *types.Func it
// invokes, if that function is declared in this module. Interface-method
// and function-value calls resolve to nil (no summary crosses them).
func resolveModuleCall(m *Module, pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fn.Sel]
	case *ast.Ident:
		obj = pkg.Info.Uses[fn]
	default:
		return nil
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return nil
	}
	p := f.Pkg().Path()
	if p != m.Path && !pathIn(p, []string{m.Path}) {
		return nil
	}
	return f
}
