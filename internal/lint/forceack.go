package lint

// force-before-ack: a durability acknowledgement must never cover log
// records that could still be lost. The repo has two acknowledgement
// shapes, both added by the replication PRs:
//
//   - the standby's applied watermark (Standby.applied, an atomic.Uint64):
//     the fetch loop reports it to the primary as "stable here", so every
//     Store must be dominated by a wal Force/CommitWait covering the
//     records just applied (DESIGN.md §14: apply → Force → advance);
//   - the primary's semi-sync commit reply: Config.CommitAck runs after
//     the commit record is stable locally, so a CommitAck call must be
//     dominated by the force of that record.
//
// The analysis is a forward all-paths ("must") dataflow over the CFG: the
// fact is "the log has been forced since the last append on this path".
// wal Force/CommitWait establish it; wal Append and ApplyShipped (which
// appends the shipped record locally) reset it; join points take AND, so
// one early return or skipped branch that acks without the force is
// reported even when the hot path is correct. Calls into module functions
// use the interprocedural summaries: a callee that forces on every path
// establishes the fact, a callee that may append resets it.
//
// Watermark stores of the form applied.Store(log.StableEnd()) are exempt:
// a value read from StableEnd is by definition already durable (the
// bootstrap and ReplayLocal paths).

import (
	"go/ast"
	"go/types"
)

// ForceAck is the force-before-ack protocol analyzer.
type ForceAck struct{}

func (ForceAck) Name() string { return "force-before-ack" }
func (ForceAck) Doc() string {
	return "a replication watermark store or semi-sync commit ack must be dominated by a wal force covering the records it acknowledges (DESIGN.md §14)"
}

const bitMayAppend = 1 << 0

type forceAckChecker struct {
	m    *Module
	pkg  *Package
	sums *summaries
	may  map[*types.Func]uint32
	must map[*types.Func]bool
}

func (ForceAck) Check(m *Module, pkgs []*Package, report Reporter) {
	c := &forceAckChecker{m: m}
	c.sums = collectFuncs(m, pkgs, "force-before-ack", false)

	seed := make(map[*types.Func]uint32, len(c.sums.funcs))
	for _, obj := range c.sums.order {
		mf := c.sums.funcs[obj]
		if mf.Allowed {
			continue
		}
		var bits uint32
		forEachCall(mf.Decl.Body, func(call *ast.CallExpr) {
			if c.isAppend(mf.Pkg, call) {
				bits |= bitMayAppend
			}
		})
		seed[obj] = bits
	}
	c.may = c.sums.propagateMay(seed)

	// mustForce: functions that force the log on every path, with any
	// trailing append un-doing it (Force then Append leaves the tail
	// unforced again).
	c.must = c.sums.propagateMust(
		func(mf *moduleFunc, n ast.Node) bool {
			found := false
			forEachCall(n, func(call *ast.CallExpr) {
				if c.isForce(mf.Pkg, call) {
					found = true
				}
			})
			return found
		},
		func(mf *moduleFunc, n ast.Node) bool {
			found := false
			forEachCall(n, func(call *ast.CallExpr) {
				if c.isAppend(mf.Pkg, call) {
					found = true
				}
			})
			return found
		},
	)

	for _, obj := range c.sums.order {
		mf := c.sums.funcs[obj]
		if mf.Allowed {
			continue
		}
		c.pkg = mf.Pkg
		cfg := c.sums.CFG(mf)
		fl := flow[bool]{
			bottom: func() bool { return false },
			clone:  func(b bool) bool { return b },
			merge: func(dst, src bool) (bool, bool) {
				merged := dst && src
				return merged, merged != dst
			},
			transfer: func(n ast.Node, fact bool, rep bool) bool {
				switch n.(type) {
				case *ast.SelectStmt, *ast.DeferStmt, *ast.GoStmt:
					// Clause bodies are separate blocks; deferred and spawned
					// calls run at an unknown later point — neither force nor
					// append effects apply here.
					return fact
				}
				forEachCall(n, func(call *ast.CallExpr) {
					switch {
					case c.isForce(c.pkg, call):
						fact = true
					case c.isAppend(c.pkg, call):
						fact = false
					default:
						if rep && !fact && c.isAck(call) {
							report(c.pkg, call.Pos(),
								"durability acknowledgement on a path where the wal may not have been forced since the last append: force (or CommitWait) before advancing the watermark (DESIGN.md §14)")
						}
						if callee := resolveModuleCall(c.m, c.pkg, call); callee != nil {
							if c.must[callee] {
								fact = true
							} else if c.may[callee]&bitMayAppend != 0 {
								fact = false
							}
						}
					}
				})
				return fact
			},
		}
		in := runFlow(cfg, fl)
		replayFlow(cfg, fl, in)
	}
}

// walMethod resolves call to a method on wal.Log with one of the given
// names.
func (c *forceAckChecker) walMethod(pkg *Package, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != c.m.Path+"/internal/wal" {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil || !isNamedType(recv.Type(), c.m.Path+"/internal/wal", "Log") {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// isForce: wal.Force / wal.CommitWait make the tail stable. ForceFull is
// NOT a force event — it flushes a partial block for the group-commit
// heuristic and gives no covering guarantee to this path's records.
func (c *forceAckChecker) isForce(pkg *Package, call *ast.CallExpr) bool {
	return c.walMethod(pkg, call, "Force", "CommitWait")
}

// isAppend: wal.Append extends the unforced tail; ApplyShipped appends the
// shipped record into the local log (the standby's append).
func (c *forceAckChecker) isAppend(pkg *Package, call *ast.CallExpr) bool {
	if c.walMethod(pkg, call, "Append") {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ApplyShipped" {
		return false
	}
	obj, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	return obj != nil && c.inModule(obj.Pkg())
}

func (c *forceAckChecker) inModule(pkg *types.Package) bool {
	return pkg != nil && pathIn(pkg.Path(), []string{c.m.Path})
}

// isAck recognizes the two acknowledgement shapes: a Store on an atomic
// field named "applied", and a call through anything named CommitAck (the
// server's Config hook or the primary's method). applied.Store(...StableEnd())
// is exempt — a StableEnd-derived watermark is durable by construction.
func (c *forceAckChecker) isAck(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "CommitAck" {
		return true
	}
	if sel.Sel.Name != "Store" {
		return false
	}
	fx, ok := sel.X.(*ast.SelectorExpr)
	if !ok || fx.Sel.Name != "applied" {
		return false
	}
	tv, ok := c.pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	if n, ok := deref(tv.Type).(*types.Named); !ok || n.Obj().Pkg() == nil ||
		n.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, arg := range call.Args {
		exempt := false
		forEachCall(arg, func(inner *ast.CallExpr) {
			if s, ok := inner.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "StableEnd" {
				exempt = true
			}
		})
		if exempt {
			return false
		}
	}
	return true
}
