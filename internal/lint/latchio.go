package lint

// latch-io: no slow or blocking operation while holding a buffer shard
// latch or a leaf mutex. Latches serialize the page-level protocol; an
// I/O or a channel wait under one turns every contending session's cache
// hit into a disk-speed stall (the paper's §6 latch-convoy pathology).
// The rules encode the repo's documented protocol, not a blanket ban:
//
//   - wal Force/CommitWait/ForceFull under a shard latch or leaf mutex:
//     forbidden. The commit path deliberately releases attMu before
//     forcing, the cleaner forces latch-free and re-latches; the one
//     exception (scrub's repairImage, which must force redo before
//     overwriting a corrupt page image) carries a //qslint:allow.
//   - wal.Append under a shard latch: forbidden. Append under attMu is
//     the §13 commit protocol (it orders the append with the table
//     mutations) and stays legal.
//   - disk Store I/O (ReadPage/WritePage/ForEachPage) under a LEAF mutex:
//     forbidden. Under a shard latch it is the eviction/cleaner/scrub
//     protocol — the latch is exactly what makes the frame image stable
//     while it is written — so shard-latch disk I/O is legal.
//   - blocking constructs (channel send/receive, select without default,
//     time.Sleep) under either: forbidden. sync.Cond.Wait is exempt when
//     exactly one leaf mutex is held — Wait atomically releases its own
//     mutex (the primary's ack wait) — but flagged when anything else is
//     held on top.
//
// The fact is a may-held set of latches, tracked over the CFG with union
// merges: a diagnostic means some path reaches the operation with the
// latch held. Calls into module functions are checked against the
// interprocedural may-summaries (callee may force / may block / may touch
// the store), so a helper that forces deep in the call chain is caught at
// the latched call site.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LatchIO is the no-I/O-under-latch analyzer.
type LatchIO struct{}

func (LatchIO) Name() string { return "latch-io" }
func (LatchIO) Doc() string {
	return "no wal force, disk store I/O, or blocking operation while holding a shard latch or leaf mutex (DESIGN.md §S9)"
}

const (
	bitMayForce = 1 << iota
	bitMayBlock
	bitMayStore
	bitMayAppendWAL
)

// ioHeld is the may-held latch set: small, so a slice beats a map.
type ioHeld []held

type latchIOChecker struct {
	latchClassifier
	report Reporter
	sums   *summaries
	may    map[*types.Func]uint32
}

func (LatchIO) Check(m *Module, pkgs []*Package, report Reporter) {
	c := &latchIOChecker{latchClassifier: latchClassifier{m: m}, report: report}
	c.sums = collectFuncs(m, pkgs, "latch-io", false)

	seed := make(map[*types.Func]uint32, len(c.sums.funcs))
	for _, obj := range c.sums.order {
		mf := c.sums.funcs[obj]
		if mf.Allowed {
			continue
		}
		c.pkg = mf.Pkg
		seed[obj] = c.directEffects(mf.Decl.Body)
	}
	c.may = c.sums.propagateMay(seed)

	for _, obj := range c.sums.order {
		mf := c.sums.funcs[obj]
		if mf.Allowed {
			continue
		}
		c.pkg = mf.Pkg
		c.checkFunc(mf)
	}
}

// directEffects scans one body (function literals excluded — they run on
// their own goroutine, under their own latch state) for slow-operation
// bits.
func (c *latchIOChecker) directEffects(body ast.Node) uint32 {
	var bits uint32
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			bits |= bitMayBlock
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				bits |= bitMayBlock
			}
		case *ast.SelectStmt:
			// Judge blocking at the select itself: a comm clause's send or
			// receive only runs as part of the select, so a default-guarded
			// select is non-blocking no matter what its cases name. Clause
			// bodies still scan normally.
			if !selectHasDefault(x) {
				bits |= bitMayBlock
			}
			for _, cc := range x.Body.List {
				if clause, ok := cc.(*ast.CommClause); ok {
					for _, st := range clause.Body {
						ast.Inspect(st, scan)
					}
				}
			}
			return false
		case *ast.CallExpr:
			switch {
			case c.isWALCall(x, "Force", "CommitWait", "ForceFull"):
				bits |= bitMayForce
			case c.isWALCall(x, "Append"):
				bits |= bitMayAppendWAL
			case c.isDiskCall(x):
				bits |= bitMayStore
			case isTimeSleep(c.pkg, x) || c.isCondWait(x):
				bits |= bitMayBlock
			}
		}
		return true
	}
	ast.Inspect(body, scan)
	return bits
}

// checkFunc runs the may-held dataflow over one function.
func (c *latchIOChecker) checkFunc(mf *moduleFunc) {
	cfg := c.sums.CFG(mf)
	fl := flow[ioHeld]{
		bottom: func() ioHeld { return nil },
		clone:  func(h ioHeld) ioHeld { return append(ioHeld(nil), h...) },
		merge: func(dst, src ioHeld) (ioHeld, bool) {
			changed := false
			for _, h := range src {
				if !dst.has(h.name, h.level) {
					dst = append(dst, h)
					changed = true
				}
			}
			return dst, changed
		},
		transfer: c.transfer,
	}
	in := runFlow(cfg, fl)
	replayFlow(cfg, fl, in)
}

func (h ioHeld) has(name string, level int) bool {
	for _, x := range h {
		if x.name == name && x.level == level {
			return true
		}
	}
	return false
}

func (h ioHeld) anyAt(level int) *held {
	for i := range h {
		if h[i].level == level {
			return &h[i]
		}
	}
	return nil
}

// tracked reports the innermost tracked latch (shard preferred for the
// message), or nil when neither a shard latch nor a leaf mutex is held.
func (h ioHeld) tracked() *held {
	if s := h.anyAt(levelShard); s != nil {
		return s
	}
	return h.anyAt(levelLeaf)
}

func (c *latchIOChecker) transfer(n ast.Node, fact ioHeld, rep bool) ioHeld {
	switch x := n.(type) {
	case *ast.SelectStmt:
		// Clause bodies are separate CFG blocks; the node itself is the
		// blocking decision.
		if rep && !selectHasDefault(x) {
			if t := fact.tracked(); t != nil {
				c.report(c.pkg, x.Pos(), "blocking select while holding %s (%s): a latched session must never wait on channel traffic",
					t.name, levelName[t.level])
			}
		}
		return fact
	case *ast.SendStmt:
		if rep {
			if t := fact.tracked(); t != nil {
				c.report(c.pkg, x.Pos(), "channel send while holding %s (%s): a latched session must never wait on channel traffic",
					t.name, levelName[t.level])
			}
		}
		return c.applyCalls(x, fact, rep)
	case *ast.DeferStmt:
		// defer s.enter()(): the inner call runs now. A plain deferred call
		// runs at return time, after this body's releases — skip it.
		if inner, ok := x.Call.Fun.(*ast.CallExpr); ok {
			return c.applyCalls(inner, fact, rep)
		}
		return fact
	case *ast.GoStmt:
		// The spawned body runs under its own (empty) latch state; only the
		// argument expressions evaluate here.
		for _, a := range x.Call.Args {
			fact = c.applyCalls(a, fact, rep)
		}
		return fact
	case *ast.AssignStmt:
		// Bind `sh := pool.Lock(pid)` handles before applying effects.
		name := ""
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if id, ok := x.Lhs[0].(*ast.Ident); ok {
				name = id.Name
			}
		}
		return c.applyCallsNamed(x, fact, rep, name)
	}
	return c.applyCalls(n, fact, rep)
}

func (c *latchIOChecker) applyCalls(n ast.Node, fact ioHeld, rep bool) ioHeld {
	return c.applyCallsNamed(n, fact, rep, "")
}

// applyCallsNamed interprets every call and blocking receive under n in
// evaluation order, updating and checking the held set.
func (c *latchIOChecker) applyCallsNamed(n ast.Node, fact ioHeld, rep bool, bind string) ioHeld {
	if n == nil {
		return fact
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && rep {
				if t := fact.tracked(); t != nil {
					c.report(c.pkg, x.Pos(), "channel receive while holding %s (%s): a latched session must never wait on channel traffic",
						t.name, levelName[t.level])
				}
			}
		case *ast.CallExpr:
			fact = c.applyOneCall(x, fact, rep, bind)
		}
		return true
	})
	return fact
}

func (c *latchIOChecker) applyOneCall(call *ast.CallExpr, fact ioHeld, rep bool, bind string) ioHeld {
	// Latch state transitions first (shared classifier with latch-order).
	switch ev := c.classify(call); ev.kind {
	case evAcquire, evTryAcquire:
		if !fact.has(ev.name, ev.level) {
			fact = append(fact, held{level: ev.level, name: ev.name, pos: ev.pos})
		}
		return fact
	case evRelease:
		out := fact[:0:0]
		for _, h := range fact {
			if h.level == ev.level && (h.name == ev.name || ev.name == "") {
				continue
			}
			out = append(out, h)
		}
		return out
	case evShardLock:
		name := bind
		if name == "" {
			name = "(unbound shard latch)"
		}
		if !fact.has(name, levelShard) {
			fact = append(fact, held{level: levelShard, name: name, pos: call.Pos()})
		}
		return fact
	case evEnter:
		return fact // the gate is above every tracked latch; not latch-io's concern
	}

	t := fact.tracked()
	if t == nil {
		return fact
	}
	shard := fact.anyAt(levelShard)

	if rep {
		switch {
		case c.isWALCall(call, "Force", "CommitWait", "ForceFull"):
			c.report(c.pkg, call.Pos(), "wal force while holding %s (%s): release the latch first — the commit path forces after attMu, the cleaner forces latch-free (DESIGN.md §13)",
				t.name, levelName[t.level])
		case c.isWALCall(call, "Append") && shard != nil:
			c.report(c.pkg, call.Pos(), "wal append while holding shard latch %s: log appends belong to the attMu commit section, never under a page latch",
				shard.name)
		case c.isDiskCall(call) && shard == nil:
			c.report(c.pkg, call.Pos(), "disk store I/O while holding %s (leaf mutex): only shard-latched page writes (eviction, cleaning, scrub) may touch the store",
				t.name)
		case isTimeSleep(c.pkg, call):
			c.report(c.pkg, call.Pos(), "time.Sleep while holding %s (%s)", t.name, levelName[t.level])
		case c.isCondWait(call):
			// Wait releases its own mutex; holding exactly that one leaf is
			// the canonical pattern. Anything more is a convoy.
			if len(fact) > 1 || shard != nil {
				c.report(c.pkg, call.Pos(), "sync.Cond.Wait with %d tracked latches held (Wait only releases its own mutex; everything else stays held while parked)",
					len(fact))
			}
		default:
			if callee := resolveModuleCall(c.m, c.pkg, call); callee != nil {
				if cf := c.sums.funcs[callee]; cf != nil && !cf.Allowed {
					bits := c.may[callee]
					switch {
					case bits&bitMayForce != 0:
						c.report(c.pkg, call.Pos(), "call to %s, which may force the wal, while holding %s (%s)",
							callee.Name(), t.name, levelName[t.level])
					case bits&bitMayAppendWAL != 0 && shard != nil:
						c.report(c.pkg, call.Pos(), "call to %s, which may append to the wal, while holding shard latch %s",
							callee.Name(), shard.name)
					case bits&bitMayStore != 0 && shard == nil:
						c.report(c.pkg, call.Pos(), "call to %s, which may touch the disk store, while holding %s (leaf mutex)",
							callee.Name(), t.name)
					case bits&bitMayBlock != 0:
						c.report(c.pkg, call.Pos(), "call to %s, which may block on channel traffic or sleep, while holding %s (%s)",
							callee.Name(), t.name, levelName[t.level])
					}
				}
			}
		}
	}
	return fact
}

// --- event recognition ------------------------------------------------------

func (c *latchIOChecker) isWALCall(call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, _ := c.pkg.Info.Uses[sel.Sel].(*types.Func)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != c.m.Path+"/internal/wal" {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil || !isNamedType(recv.Type(), c.m.Path+"/internal/wal", "Log") {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// isDiskCall: a page-I/O method declared in internal/disk (the Store
// interface or any of its implementations).
func (c *latchIOChecker) isDiskCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "ReadPage", "WritePage", "ForEachPage":
	default:
		return false
	}
	obj, _ := c.pkg.Info.Uses[sel.Sel].(*types.Func)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == c.m.Path+"/internal/disk"
}

func (c *latchIOChecker) isCondWait(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	tv, ok := c.pkg.Info.Types[sel.X]
	return ok && isNamedType(tv.Type, "sync", "Cond")
}

func isTimeSleep(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if clause, ok := cc.(*ast.CommClause); ok && clause.Comm == nil {
			return true
		}
	}
	return false
}
