package lint

// sentinel-errors: the repo's typed sentinels (wal.ErrTruncated,
// repl.ErrGap, disk.ErrCorruptPage, page.ErrPageFull, ...) cross layers
// wrapped in fmt.Errorf("...: %w", err) context — the replication fetch
// path wraps ErrGap, recovery wraps ErrTorn, the checksummed store wraps
// ErrCorruptPage. A wrapped sentinel never compares equal with ==, so an
// identity test that happens to work today silently stops matching the
// day a caller adds context. Hence:
//
//   - err == pkg.ErrX / err != pkg.ErrX on a module sentinel → errors.Is;
//   - switch err { case pkg.ErrX: } — the same identity test in switch
//     clothing → errors.Is chain;
//   - string matching (strings.Contains(err.Error(), ...) or comparing
//     .Error() output) → errors.Is/As against the sentinel itself;
//   - err.(*SomeError) type assertions → errors.As, which unwraps.
//
// A "module sentinel" is a package-level error-typed var named Err* in
// this module. Stdlib sentinels (io.EOF et al.) are deliberately out of
// scope: io.EOF from a direct Read is the documented unwrapped contract.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Sentinels is the sentinel-error comparison analyzer.
type Sentinels struct{}

func (Sentinels) Name() string { return "sentinel-errors" }
func (Sentinels) Doc() string {
	return "module error sentinels must be tested with errors.Is/As: == breaks the moment a caller wraps the error"
}

var errType = types.Universe.Lookup("error").Type()

type sentinelChecker struct {
	m      *Module
	pkg    *Package
	report Reporter
}

func (Sentinels) Check(m *Module, pkgs []*Package, report Reporter) {
	c := &sentinelChecker{m: m, report: report}
	sums := collectFuncs(m, pkgs, "sentinel-errors", false)
	for _, obj := range sums.order {
		mf := sums.funcs[obj]
		if mf.Allowed {
			continue
		}
		c.pkg = mf.Pkg
		ast.Inspect(mf.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				c.checkBinary(x)
			case *ast.SwitchStmt:
				c.checkSwitch(x)
			case *ast.CallExpr:
				c.checkStringMatch(x)
			case *ast.TypeAssertExpr:
				c.checkAssert(x)
			}
			return true
		})
	}
}

func (c *sentinelChecker) checkBinary(b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if v := c.sentinelVar(side); v != nil {
			c.report(c.pkg, b.Pos(), "%s.%s compared with %s: a wrapped sentinel never matches by identity — use errors.Is",
				v.Pkg().Name(), v.Name(), b.Op)
			return
		}
		if c.isErrorString(side) {
			c.report(c.pkg, b.Pos(), "comparing .Error() strings: error text is not an API — use errors.Is against the sentinel")
			return
		}
	}
}

// checkSwitch flags `switch err { case pkg.ErrX: }`: == by another name.
func (c *sentinelChecker) checkSwitch(s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	tv, ok := c.pkg.Info.Types[s.Tag]
	if !ok || !types.AssignableTo(tv.Type, errType) {
		return
	}
	for _, cc := range s.Body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			if v := c.sentinelVar(e); v != nil {
				c.report(c.pkg, e.Pos(), "switch on an error with case %s.%s: case comparison is ==, which a wrapped sentinel never matches — use an errors.Is chain",
					v.Pkg().Name(), v.Name())
			}
		}
	}
}

// checkStringMatch flags strings.* matching over .Error() output.
func (c *sentinelChecker) checkStringMatch(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
	default:
		return
	}
	obj := c.pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "strings" {
		return
	}
	for _, arg := range call.Args {
		if c.isErrorString(arg) {
			c.report(c.pkg, call.Pos(), "strings.%s over .Error() output: error text is not an API — use errors.Is/As against the sentinel",
				sel.Sel.Name)
			return
		}
	}
}

// checkAssert flags err.(*ConcreteError): errors.As unwraps, a type
// assertion does not.
func (c *sentinelChecker) checkAssert(a *ast.TypeAssertExpr) {
	if a.Type == nil {
		return // type switch headers are handled as their own idiom
	}
	tv, ok := c.pkg.Info.Types[a.X]
	if !ok || !types.Identical(tv.Type, errType) {
		return
	}
	c.report(c.pkg, a.Pos(), "type assertion on an error value: a wrapped error hides its concrete type — use errors.As")
}

// sentinelVar resolves e to a module-level error sentinel (var Err* of
// type error at package scope, declared in this module).
func (c *sentinelChecker) sentinelVar(e ast.Expr) *types.Var {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = c.pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = c.pkg.Info.Uses[x.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.AssignableTo(v.Type(), errType) {
		return nil
	}
	if !pathIn(v.Pkg().Path(), []string{c.m.Path}) {
		return nil
	}
	return v
}

// isErrorString reports whether e is a call to .Error() on an error value.
func (c *sentinelChecker) isErrorString(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	tv, ok := c.pkg.Info.Types[sel.X]
	return ok && types.AssignableTo(tv.Type, errType)
}
