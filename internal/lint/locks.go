package lint

// latch-order: enforces the DESIGN.md §S9 latch partial order,
//
//	gate (level 0) → big (1) → one buffer shard latch (2) →
//	{attMu | dptMu | wplMu | allocMu} (3) → wal/store internals
//
// as a level graph. Each function body is abstractly interpreted in source
// order, tracking the multiset of held latches through branches, loops,
// defers and the s.enter()/exit() gate idiom; acquiring a latch whose level
// is below one already held, re-acquiring the (non-reentrant) gate, or
// holding two shard latches at once is a diagnostic. Lock acquisitions made
// by callees count too: every function gets a transitive "footprint" (the
// set of latch levels it may acquire), propagated to a fixed point across
// the whole module, and a call is checked against the caller's held set.
//
// Latches are recognized structurally, so the scratch fixtures exercise the
// same code paths as the real server:
//
//   - a sync.RWMutex field named "gate"            → level 0
//   - a sync.Mutex field named "big"               → level 1
//   - buffer.Sharded.Lock / *buffer.PoolShard      → level 2 (shard)
//   - sync.Mutex fields attMu/dptMu/wplMu/allocMu  → level 3 (leaf)
//   - a module function named "enter" returning func() acquires the gate;
//     calling the returned value releases it (the server's enter/exit pair)
//
// wal/store internal mutexes are innermost by construction and unmodeled.
// The multi-shard quiesced path (buffer.lockAll, index order under gate.W)
// carries a //qslint:allow latch-order annotation: an annotated function is
// skipped and its footprint treated as vouched for.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LatchOrder is the §S9 latch partial-order analyzer.
type LatchOrder struct{}

func (LatchOrder) Name() string { return "latch-order" }
func (LatchOrder) Doc() string {
	return "latch acquisition order must follow gate → big → one shard latch → leaf mutexes (DESIGN.md §S9)"
}

const (
	levelGate = iota
	levelBig
	levelShard
	levelLeaf
	numLevels
)

var levelName = [numLevels]string{"session gate", "big (Serialize) mutex", "shard latch", "leaf mutex"}

var leafNames = map[string]bool{"attMu": true, "dptMu": true, "wplMu": true, "allocMu": true}

// held is one latch currently held by the function under analysis.
type held struct {
	level int
	name  string // source expression ("s.gate", "s.attMu") or shard handle var
	pos   token.Pos
}

// event classifies one call expression.
type event struct {
	kind  int // evNone..evCall
	level int
	name  string
	fn    *types.Func // evCall
	pos   token.Pos
}

const (
	evNone = iota
	evAcquire
	evTryAcquire
	evRelease
	evShardLock // Sharded.Lock(pid) → *PoolShard; handle bound by assignment
	evEnter     // enter() idiom: acquires gate, returns the releaser
	evCall      // call to another module function (footprint check)
)

// funcInfo is the per-function interprocedural summary.
type funcInfo struct {
	pkg     *Package
	decl    *ast.FuncDecl
	foot    uint8 // bitmask: 1<<level acquired anywhere in this function or its callees
	allowed bool
	callees []*types.Func
}

type latchChecker struct {
	m      *Module
	report Reporter
	funcs  map[*types.Func]*funcInfo

	// per-function interpreter state
	pkg           *Package
	pendingAssign string            // LHS name while scanning `x := <call>`
	releasers     map[string]string // releaser var → gate lock name it releases
}

func (LatchOrder) Check(m *Module, pkgs []*Package, report Reporter) {
	c := &latchChecker{m: m, report: report, funcs: make(map[*types.Func]*funcInfo)}

	// Pass 1: collect functions, direct footprints, and call edges.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &funcInfo{pkg: pkg, decl: fd, allowed: pkg.FuncAllowed("latch-order", fd)}
				c.funcs[obj] = fi
				if fi.allowed {
					continue
				}
				c.pkg = pkg
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch ev := c.classify(call); ev.kind {
					case evAcquire, evTryAcquire, evShardLock:
						fi.foot |= 1 << ev.level
					case evEnter:
						fi.foot |= 1 << levelGate
					case evCall:
						fi.callees = append(fi.callees, ev.fn)
					}
					return true
				})
			}
		}
	}

	// Pass 2: propagate footprints to a fixed point (handles recursion).
	for changed := true; changed; {
		changed = false
		for _, fi := range c.funcs {
			for _, callee := range fi.callees {
				if cf := c.funcs[callee]; cf != nil && !cf.allowed {
					if merged := fi.foot | cf.foot; merged != fi.foot {
						fi.foot = merged
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: abstract interpretation of every function body.
	for _, fi := range c.funcs {
		if fi.allowed {
			continue
		}
		c.pkg = fi.pkg
		c.releasers = make(map[string]string)
		c.walkStmts(fi.decl.Body.List, &[]held{})
	}
}

// --- classification ---------------------------------------------------------

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func (c *latchChecker) bufferPath() string { return c.m.Path + "/internal/buffer" }

func (c *latchChecker) inModule(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == c.m.Path || strings.HasPrefix(pkg.Path(), c.m.Path+"/"))
}

// classify maps a call expression to a latch event.
func (c *latchChecker) classify(call *ast.CallExpr) event {
	pos := call.Pos()
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	var obj *types.Func
	if selOK {
		obj, _ = c.pkg.Info.Uses[sel.Sel].(*types.Func)
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		obj, _ = c.pkg.Info.Uses[id].(*types.Func)
	}

	if selOK {
		method := sel.Sel.Name
		switch method {
		case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
			recvTV, ok := c.pkg.Info.Types[sel.X]
			if !ok {
				break
			}
			rt := recvTV.Type
			if isNamedType(rt, c.bufferPath(), "Sharded") && method == "Lock" {
				return event{kind: evShardLock, level: levelShard, pos: pos}
			}
			if isNamedType(rt, c.bufferPath(), "PoolShard") {
				name := types.ExprString(sel.X)
				switch method {
				case "Unlock", "RUnlock":
					return event{kind: evRelease, level: levelShard, name: name, pos: pos}
				case "TryLock", "TryRLock":
					return event{kind: evTryAcquire, level: levelShard, name: name, pos: pos}
				default:
					return event{kind: evAcquire, level: levelShard, name: name, pos: pos}
				}
			}
			// Field-named sync mutexes: the receiver must itself be a field
			// selector (s.gate, q.attMu, ...).
			fx, ok2 := sel.X.(*ast.SelectorExpr)
			if !ok2 {
				break
			}
			ts := deref(rt).String()
			field := fx.Sel.Name
			level := -1
			switch {
			case field == "gate" && ts == "sync.RWMutex":
				level = levelGate
			case field == "big" && ts == "sync.Mutex":
				level = levelBig
			case leafNames[field] && ts == "sync.Mutex":
				level = levelLeaf
			}
			if level < 0 {
				break
			}
			name := types.ExprString(sel.X)
			switch method {
			case "Unlock", "RUnlock":
				return event{kind: evRelease, level: level, name: name, pos: pos}
			case "TryLock", "TryRLock":
				return event{kind: evTryAcquire, level: level, name: name, pos: pos}
			default:
				return event{kind: evAcquire, level: level, name: name, pos: pos}
			}
		}
	}

	if obj == nil {
		if selOK {
			obj, _ = c.pkg.Info.Uses[sel.Sel].(*types.Func)
		} else if id, ok := call.Fun.(*ast.Ident); ok {
			if o := c.pkg.Info.Uses[id]; o != nil {
				obj, _ = o.(*types.Func)
			}
		}
	}
	if obj != nil && c.inModule(obj.Pkg()) {
		if obj.Name() == "enter" && returnsReleaser(obj) {
			return event{kind: evEnter, level: levelGate, pos: pos}
		}
		return event{kind: evCall, fn: obj, pos: pos}
	}
	return event{kind: evNone}
}

// returnsReleaser reports whether fn's signature is func(...) func().
func returnsReleaser(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	res, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	return ok && res.Params().Len() == 0 && res.Results().Len() == 0
}

// --- abstract interpretation ------------------------------------------------

func cloneHeld(h []held) *[]held {
	cp := append([]held(nil), h...)
	return &cp
}

func (c *latchChecker) line(p token.Pos) int { return c.m.Fset.Position(p).Line }

// acquire checks the new latch against everything held and records it.
func (c *latchChecker) acquire(ev event, st *[]held) {
	for _, h := range *st {
		switch {
		case h.name == ev.name && h.level == ev.level:
			c.report(c.pkg, ev.pos, "%s already held (acquired at line %d; the quiesce gate and leaf mutexes are not reentrant)",
				h.name, c.line(h.pos))
		case ev.level == levelShard && h.level == levelShard:
			c.report(c.pkg, ev.pos, "second shard latch acquired while holding one (line %d); never hold two shard latches outside the quiesced index-order path (DESIGN.md §S9)",
				c.line(h.pos))
		case h.level > ev.level:
			c.report(c.pkg, ev.pos, "%s (%s) acquired while holding %s (%s, line %d): inverts the §S9 latch order gate → big → shard → leaf",
				nameOrLevel(ev), levelName[ev.level], h.name, levelName[h.level], c.line(h.pos))
		case ev.level == levelGate && h.level == levelGate:
			c.report(c.pkg, ev.pos, "session gate acquired while already holding it (line %d): the gate is not reentrant", c.line(h.pos))
		}
	}
	*st = append(*st, held{level: ev.level, name: ev.name, pos: ev.pos})
}

func nameOrLevel(ev event) string {
	if ev.name != "" {
		return ev.name
	}
	return levelName[ev.level]
}

// release drops the most recent matching latch, if held.
func (c *latchChecker) release(ev event, st *[]held) {
	for i := len(*st) - 1; i >= 0; i-- {
		h := (*st)[i]
		if h.level == ev.level && (h.name == ev.name || ev.name == "") {
			*st = append((*st)[:i], (*st)[i+1:]...)
			return
		}
	}
}

// checkFootprint validates a call to a module function against the held set.
func (c *latchChecker) checkFootprint(ev event, st *[]held) {
	fi := c.funcs[ev.fn]
	if fi == nil || fi.allowed || fi.foot == 0 {
		return
	}
	for lvl := 0; lvl < numLevels; lvl++ {
		if fi.foot&(1<<lvl) == 0 {
			continue
		}
		for _, h := range *st {
			switch {
			case lvl == levelShard && h.level == levelShard:
				c.report(c.pkg, ev.pos, "call to %s, which acquires a shard latch, while already holding shard latch %s (line %d)",
					ev.fn.Name(), h.name, c.line(h.pos))
			case lvl == levelGate && h.level == levelGate:
				c.report(c.pkg, ev.pos, "call to %s, which acquires the session gate, while already holding it (line %d): the gate is not reentrant",
					ev.fn.Name(), c.line(h.pos))
			case h.level > lvl:
				c.report(c.pkg, ev.pos, "call to %s, which acquires a %s, while holding %s (%s, line %d): inverts the §S9 latch order",
					ev.fn.Name(), levelName[lvl], h.name, levelName[h.level], c.line(h.pos))
			}
		}
	}
}

// applyCall processes one call expression's latch effect.
func (c *latchChecker) applyCall(call *ast.CallExpr, st *[]held) {
	// Invocation of a bound releaser variable: exit().
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 0 {
		if gateName, ok := c.releasers[id.Name]; ok {
			c.release(event{level: levelGate, name: gateName}, st)
			return
		}
	}
	ev := c.classify(call)
	switch ev.kind {
	case evAcquire, evTryAcquire: // TryAcquire outside the if-idiom: assume success
		c.acquire(ev, st)
	case evRelease:
		c.release(ev, st)
	case evShardLock:
		name := c.pendingAssign
		if name == "" {
			name = "(unbound shard latch)"
		}
		ev.name = name
		c.acquire(ev, st)
	case evEnter:
		name := "gate (via enter)"
		c.acquire(event{kind: evAcquire, level: levelGate, name: name, pos: ev.pos}, st)
		if c.pendingAssign != "" {
			c.releasers[c.pendingAssign] = name
		}
	case evCall:
		c.checkFootprint(ev, st)
	}
}

// scanExpr processes latch effects of every call in e, in source order.
// Function literals get a fresh empty held set (they run on their own
// goroutine or at an unknown later point).
func (c *latchChecker) scanExpr(e ast.Expr, st *[]held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			saveRel := c.releasers
			c.releasers = make(map[string]string)
			c.walkStmts(x.Body.List, &[]held{})
			c.releasers = saveRel
			return false
		case *ast.CallExpr:
			c.applyCall(x, st)
			return true
		}
		return true
	})
}

// tryLockIf matches `if [!]x.TryLock() { ... }` and returns the event and
// whether the condition is negated.
func (c *latchChecker) tryLockIf(cond ast.Expr) (event, bool, bool) {
	negated := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		negated = true
		cond = u.X
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return event{}, false, false
	}
	ev := c.classify(call)
	if ev.kind != evTryAcquire {
		return event{}, false, false
	}
	return ev, negated, true
}

// walkStmts interprets a statement list; it reports whether control
// definitely leaves the enclosing function (return/branch).
func (c *latchChecker) walkStmts(list []ast.Stmt, st *[]held) bool {
	for _, s := range list {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *latchChecker) walkStmt(s ast.Stmt, st *[]held) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		c.scanExpr(x.X, st)
	case *ast.AssignStmt:
		// Bind `sh := s.pool.Lock(pid)` / `exit := s.enter()` handles.
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if id, ok := x.Lhs[0].(*ast.Ident); ok {
				if _, isCall := x.Rhs[0].(*ast.CallExpr); isCall {
					c.pendingAssign = id.Name
				}
			}
		}
		for _, r := range x.Rhs {
			c.scanExpr(r, st)
		}
		c.pendingAssign = ""
		for _, l := range x.Lhs {
			c.scanExpr(l, st)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					if len(vs.Names) == 1 && len(vs.Values) == 1 {
						if _, isCall := vs.Values[0].(*ast.CallExpr); isCall {
							c.pendingAssign = vs.Names[0].Name
						}
					}
					for _, v := range vs.Values {
						c.scanExpr(v, st)
					}
					c.pendingAssign = ""
				}
			}
		}
	case *ast.DeferStmt:
		// defer s.enter()() / defer s.lockAll()(): the inner call runs NOW
		// (acquiring), the release runs at function end — held to the end.
		if inner, ok := x.Call.Fun.(*ast.CallExpr); ok {
			c.applyCall(inner, st)
			break
		}
		// defer mu.Unlock() / defer exit(): release at end; stays held here.
		ev := c.classify(x.Call)
		if ev.kind == evAcquire || ev.kind == evTryAcquire || ev.kind == evShardLock || ev.kind == evEnter {
			c.applyCall(x.Call, st) // defer mu.Lock() — degenerate but an acquisition
		}
		// evCall in a defer runs at an unknown lock state: skip.
	case *ast.GoStmt:
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			saveRel := c.releasers
			c.releasers = make(map[string]string)
			c.walkStmts(fl.Body.List, &[]held{})
			c.releasers = saveRel
		}
		for _, a := range x.Call.Args {
			c.scanExpr(a, st)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		if ev, negated, ok := c.tryLockIf(x.Cond); ok && x.Else == nil {
			if negated {
				// if !TryLock { body runs unheld }; afterwards held either way.
				thenSt := cloneHeld(*st)
				c.walkStmts(x.Body.List, thenSt)
				c.acquire(ev, st)
			} else {
				// if TryLock { body runs held }; afterwards unheld.
				thenSt := cloneHeld(*st)
				c.acquire(ev, thenSt)
				c.walkStmts(x.Body.List, thenSt)
			}
			return false
		}
		c.scanExpr(x.Cond, st)
		thenSt := cloneHeld(*st)
		tTerm := c.walkStmts(x.Body.List, thenSt)
		if x.Else != nil {
			elseSt := cloneHeld(*st)
			var eTerm bool
			if blk, ok := x.Else.(*ast.BlockStmt); ok {
				eTerm = c.walkStmts(blk.List, elseSt)
			} else {
				eTerm = c.walkStmt(x.Else, elseSt)
			}
			switch {
			case tTerm && eTerm:
				return true
			case tTerm:
				*st = *elseSt
			case eTerm:
				*st = *thenSt
			default:
				*st = intersectHeld(*thenSt, *elseSt)
			}
			return false
		}
		if !tTerm {
			*st = intersectHeld(*st, *thenSt)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.scanExpr(x.Cond, st)
		c.loopBody(x.Body, x.Post, st)
	case *ast.RangeStmt:
		c.scanExpr(x.X, st)
		c.loopBody(x.Body, nil, st)
	case *ast.BlockStmt:
		return c.walkStmts(x.List, st)
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.scanExpr(x.Tag, st)
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				sub := cloneHeld(*st)
				c.walkStmts(clause.Body, sub)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				sub := cloneHeld(*st)
				c.walkStmts(clause.Body, sub)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				sub := cloneHeld(*st)
				c.walkStmts(clause.Body, sub)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.scanExpr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: don't merge into fallthrough
	case *ast.LabeledStmt:
		return c.walkStmt(x.Stmt, st)
	case *ast.SendStmt:
		c.scanExpr(x.Chan, st)
		c.scanExpr(x.Value, st)
	case *ast.IncDecStmt:
		c.scanExpr(x.X, st)
	}
	return false
}

// loopBody interprets a loop body with a copy of the held set. A shard latch
// acquired inside the body and still held when the iteration ends would be a
// second shard latch on the next pass — exactly the "two shard latches"
// violation, reached via iteration rather than nesting.
func (c *latchChecker) loopBody(body *ast.BlockStmt, post ast.Stmt, st *[]held) {
	pre := make(map[string]bool, len(*st))
	for _, h := range *st {
		pre[h.name] = true
	}
	sub := cloneHeld(*st)
	c.walkStmts(body.List, sub)
	if post != nil {
		c.walkStmt(post, sub)
	}
	for _, h := range *sub {
		if h.level == levelShard && !pre[h.name] {
			c.report(c.pkg, h.pos, "shard latch %s acquired in a loop and still held at the end of the iteration: the next pass would hold two shard latches (quiesced multi-shard paths must latch in index order and carry //qslint:allow latch-order)", h.name)
		}
	}
	*st = *sub
}

// intersectHeld keeps latches held on both paths.
func intersectHeld(a, b []held) []held {
	inB := make(map[string]bool, len(b))
	for _, h := range b {
		inB[h.name+"\x00"+levelName[h.level]] = true
	}
	var out []held
	for _, h := range a {
		if inB[h.name+"\x00"+levelName[h.level]] {
			out = append(out, h)
		}
	}
	return out
}
