package lint

// latch-order: enforces the DESIGN.md §S9 latch partial order,
//
//	ckptMu (level 0) → gate (1) → big (2) → one buffer shard latch (3) →
//	{attMu | dptMu | wplMu | allocMu | scrubMu | state mu} (4) →
//	wal/store internals
//
// as a level graph. Each function body is abstractly interpreted in source
// order, tracking the multiset of held latches through branches, loops,
// defers and the s.enter()/exit() gate idiom; acquiring a latch whose level
// is below one already held, re-acquiring the (non-reentrant) gate, or
// holding two shard latches at once is a diagnostic. Lock acquisitions made
// by callees count too: every function gets a transitive "footprint" (the
// set of latch levels it may acquire), propagated to a fixed point across
// the whole module, and a call is checked against the caller's held set.
//
// Latches are recognized structurally, so the scratch fixtures exercise the
// same code paths as the real server:
//
//   - a sync.RWMutex field named "gate"            → level 0
//   - a sync.Mutex field named "big"               → level 1
//   - buffer.Sharded.Lock / *buffer.PoolShard      → level 2 (shard)
//   - sync.Mutex fields attMu/dptMu/wplMu/allocMu  → level 3 (leaf)
//   - post-PR-4 state mutexes: the server's scrubMu plus the "mu" fields of
//     repl.Primary, repl.Standby and archive.Archiver are held briefly with
//     nothing nested inside, so they sit at leaf level; ckptMu is the
//     opposite — checkpointFuzzy takes it BEFORE entering the gate — so it
//     gets its own outermost level above the gate
//   - a module function named "enter" returning func() acquires the gate;
//     calling the returned value releases it (the server's enter/exit pair)
//
// wal/store internal mutexes are innermost by construction and unmodeled.
// The multi-shard quiesced path (buffer.lockAll, index order under gate.W)
// carries a //qslint:allow latch-order annotation: an annotated function is
// skipped and its footprint treated as vouched for.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LatchOrder is the §S9 latch partial-order analyzer.
type LatchOrder struct{}

func (LatchOrder) Name() string { return "latch-order" }
func (LatchOrder) Doc() string {
	return "latch acquisition order must follow gate → big → one shard latch → leaf mutexes (DESIGN.md §S9)"
}

const (
	levelOuter = iota // coordination mutex held across the gate (ckptMu)
	levelGate
	levelBig
	levelShard
	levelLeaf
	numLevels
)

var levelName = [numLevels]string{"checkpoint coordination mutex", "session gate", "big (Serialize) mutex", "shard latch", "leaf mutex"}

var leafNames = map[string]bool{
	"attMu": true, "dptMu": true, "wplMu": true, "allocMu": true,
	// scrubMu (PR 5) guards only the scrub cursor and is held with nothing
	// else — leaf is its natural (most restrictive) slot.
	"scrubMu": true,
	// decMu guards the 2PC coordinator's decided-transaction table; it nests
	// inside attMu on the logDecision/Forget paths, and leaf mutexes are
	// unordered among themselves, so leaf is its slot too.
	"decMu": true,
}

// outerNames are coordination mutexes acquired BEFORE the session gate and
// held across it: checkpointFuzzy takes ckptMu, then enter()s the gate, then
// descends through shard latches. Anything already holding the gate (or
// below) must not acquire them.
var outerNames = map[string]bool{"ckptMu": true}

// leafMuTypes are module types whose "mu" field is a leaf-level state
// mutex: the repl primary/standby state, the archiver drain lock, and the
// shard router's membership table (held only around map bookkeeping, never
// across a Backend call — leaf is the slot that enforces exactly that).
var leafMuTypes = [][2]string{
	{"internal/repl", "Primary"},
	{"internal/repl", "Standby"},
	{"internal/archive", "Archiver"},
	{"internal/shard", "Router"},
}

// held is one latch currently held by the function under analysis.
type held struct {
	level int
	name  string // source expression ("s.gate", "s.attMu") or shard handle var
	pos   token.Pos
}

// event classifies one call expression.
type event struct {
	kind  int // evNone..evCall
	level int
	name  string
	fn    *types.Func // evCall
	pos   token.Pos
}

const (
	evNone = iota
	evAcquire
	evTryAcquire
	evRelease
	evShardLock // Sharded.Lock(pid) → *PoolShard; handle bound by assignment
	evEnter     // enter() idiom: acquires gate, returns the releaser
	evCall      // call to another module function (footprint check)
)

type latchChecker struct {
	latchClassifier
	report Reporter
	sums   *summaries
	foot   map[*types.Func]uint32 // 1<<level may be acquired by fn or its callees

	// per-function interpreter state
	pendingAssign string            // LHS name while scanning `x := <call>`
	releasers     map[string]string // releaser var → gate lock name it releases
}

func (LatchOrder) Check(m *Module, pkgs []*Package, report Reporter) {
	c := &latchChecker{latchClassifier: latchClassifier{m: m}, report: report}

	// Pass 1+2: per-function direct latch footprints, propagated over the
	// call graph by the shared summary layer (handles recursion).
	c.sums = collectFuncs(m, pkgs, "latch-order", false)
	seed := make(map[*types.Func]uint32, len(c.sums.funcs))
	for _, obj := range c.sums.order {
		mf := c.sums.funcs[obj]
		if mf.Allowed {
			continue
		}
		c.pkg = mf.Pkg
		var bits uint32
		ast.Inspect(mf.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch ev := c.classify(call); ev.kind {
			case evAcquire, evTryAcquire, evShardLock:
				bits |= 1 << ev.level
			case evEnter:
				bits |= 1 << levelGate
			}
			return true
		})
		seed[obj] = bits
	}
	c.foot = c.sums.propagateMay(seed)

	// Pass 3: abstract interpretation of every function body.
	for _, obj := range c.sums.order {
		mf := c.sums.funcs[obj]
		if mf.Allowed {
			continue
		}
		c.pkg = mf.Pkg
		c.releasers = make(map[string]string)
		c.walkStmts(mf.Decl.Body.List, &[]held{})
	}
}

// --- classification ---------------------------------------------------------

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// latchClassifier is the structural latch recognizer, shared by latch-order
// and latch-io: both need the same mapping from call expressions to latch
// events, applied per package under analysis.
type latchClassifier struct {
	m   *Module
	pkg *Package // package currently under analysis
}

func (c *latchClassifier) bufferPath() string { return c.m.Path + "/internal/buffer" }

func (c *latchClassifier) inModule(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == c.m.Path || strings.HasPrefix(pkg.Path(), c.m.Path+"/"))
}

// leafMuLevel reports whether mutexExpr is the "mu" field of one of the
// leafMuTypes (repl primary/standby state, archiver drain lock).
func (c *latchClassifier) isLeafStateMu(fx *ast.SelectorExpr) bool {
	if fx.Sel.Name != "mu" {
		return false
	}
	tv, ok := c.pkg.Info.Types[fx.X]
	if !ok {
		return false
	}
	for _, lt := range leafMuTypes {
		if isNamedType(tv.Type, c.m.Path+"/"+lt[0], lt[1]) {
			return true
		}
	}
	return false
}

// classify maps a call expression to a latch event.
func (c *latchClassifier) classify(call *ast.CallExpr) event {
	pos := call.Pos()
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	var obj *types.Func
	if selOK {
		obj, _ = c.pkg.Info.Uses[sel.Sel].(*types.Func)
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		obj, _ = c.pkg.Info.Uses[id].(*types.Func)
	}

	if selOK {
		method := sel.Sel.Name
		switch method {
		case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
			recvTV, ok := c.pkg.Info.Types[sel.X]
			if !ok {
				break
			}
			rt := recvTV.Type
			if isNamedType(rt, c.bufferPath(), "Sharded") && method == "Lock" {
				return event{kind: evShardLock, level: levelShard, pos: pos}
			}
			if isNamedType(rt, c.bufferPath(), "PoolShard") {
				name := types.ExprString(sel.X)
				switch method {
				case "Unlock", "RUnlock":
					return event{kind: evRelease, level: levelShard, name: name, pos: pos}
				case "TryLock", "TryRLock":
					return event{kind: evTryAcquire, level: levelShard, name: name, pos: pos}
				default:
					return event{kind: evAcquire, level: levelShard, name: name, pos: pos}
				}
			}
			// Field-named sync mutexes: the receiver must itself be a field
			// selector (s.gate, q.attMu, ...).
			fx, ok2 := sel.X.(*ast.SelectorExpr)
			if !ok2 {
				break
			}
			ts := deref(rt).String()
			field := fx.Sel.Name
			level := -1
			switch {
			case field == "gate" && ts == "sync.RWMutex":
				level = levelGate
			case field == "big" && ts == "sync.Mutex":
				level = levelBig
			case outerNames[field] && ts == "sync.Mutex":
				level = levelOuter
			case leafNames[field] && ts == "sync.Mutex":
				level = levelLeaf
			case ts == "sync.Mutex" && c.isLeafStateMu(fx):
				level = levelLeaf
			}
			if level < 0 {
				break
			}
			name := types.ExprString(sel.X)
			switch method {
			case "Unlock", "RUnlock":
				return event{kind: evRelease, level: level, name: name, pos: pos}
			case "TryLock", "TryRLock":
				return event{kind: evTryAcquire, level: level, name: name, pos: pos}
			default:
				return event{kind: evAcquire, level: level, name: name, pos: pos}
			}
		}
	}

	if obj == nil {
		if selOK {
			obj, _ = c.pkg.Info.Uses[sel.Sel].(*types.Func)
		} else if id, ok := call.Fun.(*ast.Ident); ok {
			if o := c.pkg.Info.Uses[id]; o != nil {
				obj, _ = o.(*types.Func)
			}
		}
	}
	if obj != nil && c.inModule(obj.Pkg()) {
		if obj.Name() == "enter" && returnsReleaser(obj) {
			return event{kind: evEnter, level: levelGate, pos: pos}
		}
		return event{kind: evCall, fn: obj, pos: pos}
	}
	return event{kind: evNone}
}

// returnsReleaser reports whether fn's signature is func(...) func().
func returnsReleaser(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	res, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	return ok && res.Params().Len() == 0 && res.Results().Len() == 0
}

// --- abstract interpretation ------------------------------------------------

func cloneHeld(h []held) *[]held {
	cp := append([]held(nil), h...)
	return &cp
}

func (c *latchChecker) line(p token.Pos) int { return c.m.Fset.Position(p).Line }

// acquire checks the new latch against everything held and records it.
func (c *latchChecker) acquire(ev event, st *[]held) {
	for _, h := range *st {
		switch {
		case h.name == ev.name && h.level == ev.level:
			c.report(c.pkg, ev.pos, "%s already held (acquired at line %d; the quiesce gate and leaf mutexes are not reentrant)",
				h.name, c.line(h.pos))
		case ev.level == levelShard && h.level == levelShard:
			c.report(c.pkg, ev.pos, "second shard latch acquired while holding one (line %d); never hold two shard latches outside the quiesced index-order path (DESIGN.md §S9)",
				c.line(h.pos))
		case h.level > ev.level:
			c.report(c.pkg, ev.pos, "%s (%s) acquired while holding %s (%s, line %d): inverts the §S9 latch order gate → big → shard → leaf",
				nameOrLevel(ev), levelName[ev.level], h.name, levelName[h.level], c.line(h.pos))
		case ev.level == levelGate && h.level == levelGate:
			c.report(c.pkg, ev.pos, "session gate acquired while already holding it (line %d): the gate is not reentrant", c.line(h.pos))
		}
	}
	*st = append(*st, held{level: ev.level, name: ev.name, pos: ev.pos})
}

func nameOrLevel(ev event) string {
	if ev.name != "" {
		return ev.name
	}
	return levelName[ev.level]
}

// release drops the most recent matching latch, if held.
func (c *latchChecker) release(ev event, st *[]held) {
	for i := len(*st) - 1; i >= 0; i-- {
		h := (*st)[i]
		if h.level == ev.level && (h.name == ev.name || ev.name == "") {
			*st = append((*st)[:i], (*st)[i+1:]...)
			return
		}
	}
}

// checkFootprint validates a call to a module function against the held set.
func (c *latchChecker) checkFootprint(ev event, st *[]held) {
	mf := c.sums.funcs[ev.fn]
	foot := c.foot[ev.fn]
	if mf == nil || mf.Allowed || foot == 0 {
		return
	}
	for lvl := 0; lvl < numLevels; lvl++ {
		if foot&(1<<lvl) == 0 {
			continue
		}
		for _, h := range *st {
			switch {
			case lvl == levelShard && h.level == levelShard:
				c.report(c.pkg, ev.pos, "call to %s, which acquires a shard latch, while already holding shard latch %s (line %d)",
					ev.fn.Name(), h.name, c.line(h.pos))
			case lvl == levelGate && h.level == levelGate:
				c.report(c.pkg, ev.pos, "call to %s, which acquires the session gate, while already holding it (line %d): the gate is not reentrant",
					ev.fn.Name(), c.line(h.pos))
			case h.level > lvl:
				c.report(c.pkg, ev.pos, "call to %s, which acquires a %s, while holding %s (%s, line %d): inverts the §S9 latch order",
					ev.fn.Name(), levelName[lvl], h.name, levelName[h.level], c.line(h.pos))
			}
		}
	}
}

// applyCall processes one call expression's latch effect.
func (c *latchChecker) applyCall(call *ast.CallExpr, st *[]held) {
	// Invocation of a bound releaser variable: exit().
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 0 {
		if gateName, ok := c.releasers[id.Name]; ok {
			c.release(event{level: levelGate, name: gateName}, st)
			return
		}
	}
	ev := c.classify(call)
	switch ev.kind {
	case evAcquire, evTryAcquire: // TryAcquire outside the if-idiom: assume success
		c.acquire(ev, st)
	case evRelease:
		c.release(ev, st)
	case evShardLock:
		name := c.pendingAssign
		if name == "" {
			name = "(unbound shard latch)"
		}
		ev.name = name
		c.acquire(ev, st)
	case evEnter:
		name := "gate (via enter)"
		c.acquire(event{kind: evAcquire, level: levelGate, name: name, pos: ev.pos}, st)
		if c.pendingAssign != "" {
			c.releasers[c.pendingAssign] = name
		}
	case evCall:
		c.checkFootprint(ev, st)
	}
}

// scanExpr processes latch effects of every call in e, in source order.
// Function literals get a fresh empty held set (they run on their own
// goroutine or at an unknown later point).
func (c *latchChecker) scanExpr(e ast.Expr, st *[]held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			saveRel := c.releasers
			c.releasers = make(map[string]string)
			c.walkStmts(x.Body.List, &[]held{})
			c.releasers = saveRel
			return false
		case *ast.CallExpr:
			c.applyCall(x, st)
			return true
		}
		return true
	})
}

// tryLockIf matches `if [!]x.TryLock() { ... }` and returns the event and
// whether the condition is negated.
func (c *latchChecker) tryLockIf(cond ast.Expr) (event, bool, bool) {
	negated := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		negated = true
		cond = u.X
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return event{}, false, false
	}
	ev := c.classify(call)
	if ev.kind != evTryAcquire {
		return event{}, false, false
	}
	return ev, negated, true
}

// walkStmts interprets a statement list; it reports whether control
// definitely leaves the enclosing function (return/branch).
func (c *latchChecker) walkStmts(list []ast.Stmt, st *[]held) bool {
	for _, s := range list {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *latchChecker) walkStmt(s ast.Stmt, st *[]held) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		c.scanExpr(x.X, st)
	case *ast.AssignStmt:
		// Bind `sh := s.pool.Lock(pid)` / `exit := s.enter()` handles.
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if id, ok := x.Lhs[0].(*ast.Ident); ok {
				if _, isCall := x.Rhs[0].(*ast.CallExpr); isCall {
					c.pendingAssign = id.Name
				}
			}
		}
		for _, r := range x.Rhs {
			c.scanExpr(r, st)
		}
		c.pendingAssign = ""
		for _, l := range x.Lhs {
			c.scanExpr(l, st)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					if len(vs.Names) == 1 && len(vs.Values) == 1 {
						if _, isCall := vs.Values[0].(*ast.CallExpr); isCall {
							c.pendingAssign = vs.Names[0].Name
						}
					}
					for _, v := range vs.Values {
						c.scanExpr(v, st)
					}
					c.pendingAssign = ""
				}
			}
		}
	case *ast.DeferStmt:
		// defer s.enter()() / defer s.lockAll()(): the inner call runs NOW
		// (acquiring), the release runs at function end — held to the end.
		if inner, ok := x.Call.Fun.(*ast.CallExpr); ok {
			c.applyCall(inner, st)
			break
		}
		// defer mu.Unlock() / defer exit(): release at end; stays held here.
		ev := c.classify(x.Call)
		if ev.kind == evAcquire || ev.kind == evTryAcquire || ev.kind == evShardLock || ev.kind == evEnter {
			c.applyCall(x.Call, st) // defer mu.Lock() — degenerate but an acquisition
		}
		// evCall in a defer runs at an unknown lock state: skip.
	case *ast.GoStmt:
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			saveRel := c.releasers
			c.releasers = make(map[string]string)
			c.walkStmts(fl.Body.List, &[]held{})
			c.releasers = saveRel
		}
		for _, a := range x.Call.Args {
			c.scanExpr(a, st)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		if ev, negated, ok := c.tryLockIf(x.Cond); ok && x.Else == nil {
			if negated {
				// if !TryLock { body runs unheld }; afterwards held either way.
				thenSt := cloneHeld(*st)
				c.walkStmts(x.Body.List, thenSt)
				c.acquire(ev, st)
			} else {
				// if TryLock { body runs held }; afterwards unheld.
				thenSt := cloneHeld(*st)
				c.acquire(ev, thenSt)
				c.walkStmts(x.Body.List, thenSt)
			}
			return false
		}
		c.scanExpr(x.Cond, st)
		thenSt := cloneHeld(*st)
		tTerm := c.walkStmts(x.Body.List, thenSt)
		if x.Else != nil {
			elseSt := cloneHeld(*st)
			var eTerm bool
			if blk, ok := x.Else.(*ast.BlockStmt); ok {
				eTerm = c.walkStmts(blk.List, elseSt)
			} else {
				eTerm = c.walkStmt(x.Else, elseSt)
			}
			switch {
			case tTerm && eTerm:
				return true
			case tTerm:
				*st = *elseSt
			case eTerm:
				*st = *thenSt
			default:
				*st = intersectHeld(*thenSt, *elseSt)
			}
			return false
		}
		if !tTerm {
			*st = intersectHeld(*st, *thenSt)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.scanExpr(x.Cond, st)
		c.loopBody(x.Body, x.Post, st)
	case *ast.RangeStmt:
		c.scanExpr(x.X, st)
		c.loopBody(x.Body, nil, st)
	case *ast.BlockStmt:
		return c.walkStmts(x.List, st)
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.scanExpr(x.Tag, st)
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				sub := cloneHeld(*st)
				c.walkStmts(clause.Body, sub)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				sub := cloneHeld(*st)
				c.walkStmts(clause.Body, sub)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range x.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				sub := cloneHeld(*st)
				c.walkStmts(clause.Body, sub)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.scanExpr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: don't merge into fallthrough
	case *ast.LabeledStmt:
		return c.walkStmt(x.Stmt, st)
	case *ast.SendStmt:
		c.scanExpr(x.Chan, st)
		c.scanExpr(x.Value, st)
	case *ast.IncDecStmt:
		c.scanExpr(x.X, st)
	}
	return false
}

// loopBody interprets a loop body with a copy of the held set. A shard latch
// acquired inside the body and still held when the iteration ends would be a
// second shard latch on the next pass — exactly the "two shard latches"
// violation, reached via iteration rather than nesting.
func (c *latchChecker) loopBody(body *ast.BlockStmt, post ast.Stmt, st *[]held) {
	pre := make(map[string]bool, len(*st))
	for _, h := range *st {
		pre[h.name] = true
	}
	sub := cloneHeld(*st)
	c.walkStmts(body.List, sub)
	if post != nil {
		c.walkStmt(post, sub)
	}
	for _, h := range *sub {
		if h.level == levelShard && !pre[h.name] {
			c.report(c.pkg, h.pos, "shard latch %s acquired in a loop and still held at the end of the iteration: the next pass would hold two shard latches (quiesced multi-shard paths must latch in index order and carry //qslint:allow latch-order)", h.name)
		}
	}
	*st = *sub
}

// intersectHeld keeps latches held on both paths.
func intersectHeld(a, b []held) []held {
	inB := make(map[string]bool, len(b))
	for _, h := range b {
		inB[h.name+"\x00"+levelName[h.level]] = true
	}
	var out []held
	for _, h := range a {
		if inB[h.name+"\x00"+levelName[h.level]] {
			out = append(out, h)
		}
	}
	return out
}
