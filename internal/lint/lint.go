// Package lint is qslint: a from-scratch static analyzer (stdlib go/parser +
// go/types only, no x/tools) that enforces the project invariants every
// crash-point, group-commit and media sweep depends on but that, until now,
// only reviewer discipline protected (DESIGN.md §11):
//
//   - latch-order: the §S9 latch partial order — session gate → one buffer
//     shard latch → {attMu|dptMu|wplMu|allocMu} → wal/store internals — is
//     modeled as a level graph and every function's acquisition sequence,
//     including through its callees, is checked against it.
//   - wal-discipline: only the storage-protocol packages may write pages to
//     a disk.Store or mutate server pool frames, and within a function a
//     page write must never precede a wal.Append without a prior log force
//     (the write-ahead rule).
//   - determinism: sweep-critical packages must not read the wall clock,
//     import math/rand, or iterate maps in nondeterministic order while
//     feeding output, log records or store writes.
//   - error-discipline: error returns from wal.*, disk.Store.* and
//     archive.* calls must not be silently discarded.
//
// A legitimate exception carries an annotation that must state a reason:
//
//	//qslint:allow determinism: lock deadline is a real timeout, not replayed
//
// placed either in a function's doc comment (suppresses the whole function;
// latch-order additionally treats the function's lock footprint as vouched
// for) or on/above the offending line. An annotation without a reason is
// itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, locatable and machine-readable (qslint -json).
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Reporter records findings for one analyzer run.
type Reporter func(pkg *Package, pos token.Pos, format string, args ...any)

// Analyzer is one invariant checker. Check sees every loaded package at once
// so interprocedural passes (latch-order footprints) can cross package
// boundaries.
type Analyzer interface {
	Name() string
	Doc() string
	Check(m *Module, pkgs []*Package, report Reporter)
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		LatchOrder{},
		WALDiscipline{},
		Determinism{},
		ErrCheck{},
		ForceAck{},
		LatchIO{},
		Goroutines{},
		Sentinels{},
	}
}

// --- allow directives -------------------------------------------------------

var allowRe = regexp.MustCompile(`^//qslint:allow\s+([a-z-]+)\s*(?::\s*(.*))?$`)

// allowDirective is one parsed //qslint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	file     string
	line     int       // the directive's own line
	fnBody   [2]int    // [start line, end line] when attached to a func decl
	pos      token.Pos // for the missing-reason diagnostic
}

// collectAllows parses every //qslint:allow directive in the package,
// resolving function-doc directives to the whole function's line range.
func (p *Package) collectAllows() []allowDirective {
	if p.allowsDone {
		return p.allows
	}
	p.allowsDone = true
	// Map comment position → enclosing func decl doc, so a directive in a doc
	// comment covers the function body.
	docOf := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docOf[fd.Doc] = fd
			}
		}
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			fd := docOf[cg]
			for _, c := range cg.List {
				mm := allowRe.FindStringSubmatch(c.Text)
				if mm == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := allowDirective{
					analyzer: mm[1],
					reason:   strings.TrimSpace(mm[2]),
					file:     pos.Filename,
					line:     pos.Line,
					pos:      c.Pos(),
				}
				if fd != nil {
					d.fnBody = [2]int{p.Fset.Position(fd.Pos()).Line, p.Fset.Position(fd.End()).Line}
				}
				p.allows = append(p.allows, d)
			}
		}
	}
	return p.allows
}

// FuncAllowed reports whether fn carries a doc-comment allow directive (with
// a reason — a reasonless directive suppresses nothing) for the named
// analyzer. Latch-order uses it to treat the function's footprint as vouched
// for.
func (p *Package) FuncAllowed(analyzer string, fn *ast.FuncDecl) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		mm := allowRe.FindStringSubmatch(c.Text)
		if mm != nil && mm[1] == analyzer && strings.TrimSpace(mm[2]) != "" {
			return true
		}
	}
	return false
}

// suppressed reports whether d is covered by an allow directive: same
// analyzer and either inside an annotated function or on the directive's own
// or following line.
func suppressed(d Diagnostic, file string, line int, allows []allowDirective) bool {
	for _, a := range allows {
		if a.analyzer != d.Analyzer || a.file != file {
			continue
		}
		if a.fnBody[1] != 0 && line >= a.fnBody[0] && line <= a.fnBody[1] {
			return true
		}
		if line == a.line || line == a.line+1 {
			return true
		}
	}
	return false
}

// --- runner -----------------------------------------------------------------

// Run executes the analyzers over pkgs and returns the unsuppressed
// diagnostics sorted by position. Allow directives missing a reason are
// reported under the "qslint" pseudo-analyzer.
func Run(m *Module, pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	type raw struct {
		d    Diagnostic
		file string // absolute, for directive matching
	}
	var out []raw
	relFile := func(abs string) string {
		if rel, err := filepath.Rel(m.Root, abs); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return abs
	}
	for _, a := range analyzers {
		name := a.Name()
		a.Check(m, pkgs, func(pkg *Package, pos token.Pos, format string, args ...any) {
			p := m.Fset.Position(pos)
			out = append(out, raw{
				d: Diagnostic{
					Analyzer: name,
					File:     relFile(p.Filename),
					Line:     p.Line,
					Col:      p.Column,
					Message:  fmt.Sprintf(format, args...),
				},
				file: p.Filename,
			})
		})
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range pkg.collectAllows() {
			if a.reason == "" {
				p := m.Fset.Position(a.pos)
				diags = append(diags, Diagnostic{
					Analyzer: "qslint",
					File:     relFile(p.Filename),
					Line:     p.Line,
					Col:      p.Column,
					Message:  fmt.Sprintf("//qslint:allow %s needs a reason (\"//qslint:allow %s: why\")", a.analyzer, a.analyzer),
				})
			}
		}
	}
	allowsByFile := make(map[string][]allowDirective)
	for _, pkg := range pkgs {
		for _, a := range pkg.collectAllows() {
			if a.reason != "" {
				allowsByFile[a.file] = append(allowsByFile[a.file], a)
			}
		}
	}
	for _, r := range out {
		if suppressed(r.d, r.file, r.d.Line, allowsByFile[r.file]) {
			continue
		}
		diags = append(diags, r.d)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- shared type helpers ----------------------------------------------------

// namedIn reports whether t (after pointer deref) is a named type with the
// given name defined in the package with import path pkgPath.
func namedIn(t fmt.Stringer, pkgPath, name string) bool {
	s := t.String()
	return s == pkgPath+"."+name || s == "*"+pkgPath+"."+name
}

// pathIn reports whether import path p equals one of the prefixes or lives
// below one of them.
func pathIn(p string, prefixes []string) bool {
	for _, pre := range prefixes {
		if p == pre || strings.HasPrefix(p, pre+"/") {
			return true
		}
	}
	return false
}
