package lint

// Suppression baselines. Adopting a new analyzer on a grown codebase means
// a burst of findings that cannot all be fixed in the adopting change; a
// baseline file freezes the accepted debt so `make lint` can gate on "no
// NEW diagnostics" from day one. The file is checked in, human-reviewable
// JSON, and strict in both directions: a diagnostic not in the baseline
// fails the build (fresh debt), and a baseline entry no diagnostic matches
// fails too (stale entry — the debt was paid, so the file must shrink).
// Stale-entry strictness is what keeps a baseline from becoming a
// permanent amnesty list.
//
// Matching is by (analyzer, file, normalized message): line numbers are
// deliberately excluded — they churn with every unrelated edit — and digit
// runs inside the message (line references, counts) are normalized to "#"
// for the same reason. Multiset semantics handle several identical
// findings in one file.

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// BaselineEntry is one accepted diagnostic.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"` // stored normalized (digit runs → #)
}

var digitRun = regexp.MustCompile(`[0-9]+`)

// normalizeMessage makes a diagnostic message stable across line-number
// and count churn.
func normalizeMessage(msg string) string {
	return digitRun.ReplaceAllString(msg, "#")
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

func entryFor(d Diagnostic) BaselineEntry {
	return BaselineEntry{Analyzer: d.Analyzer, File: d.File, Message: normalizeMessage(d.Message)}
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline:
// the zero state and "no baseline yet" behave identically.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return entries, nil
}

// WriteBaseline writes the diagnostics as a fresh baseline, sorted and
// normalized, one entry per finding.
func WriteBaseline(path string, diags []Diagnostic) error {
	entries := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, entryFor(d))
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key() < entries[j].key() })
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline splits diags into fresh findings (not covered by the
// baseline) and reports stale baseline entries (covered nothing). Multiset
// matching: two identical findings need two entries.
func ApplyBaseline(entries []BaselineEntry, diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	budget := make(map[string]int, len(entries))
	for _, e := range entries {
		budget[e.key()]++
	}
	for _, d := range diags {
		k := entryFor(d).key()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range entries {
		if budget[e.key()] > 0 {
			budget[e.key()]--
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
