package lint

// goroutine-lifecycle: every background goroutine must be stoppable. The
// repo's maintenance machinery — flusher, page cleaner, scrubber,
// archiver, standby applier — all follow one shape: a loop that selects
// on a stop channel (closed by Close/Stop) and returns. A loop that
// cannot reach its own exit outlives Close, keeps a *Server (and its
// store) alive, and races the next Restart in the crash harness, which
// reuses the same store in-process.
//
// Three checks, all at the spawn site (the `go` statement):
//
//   - exit reachability: the spawned body's CFG must have a path from
//     entry to exit. A condition-less `for {}` has no head→after edge
//     (cfg.go), so "this loop can only end via return/break" is a plain
//     reachability query. A body whose exit is unreachable can never be
//     stopped or joined.
//   - time.Tick: `for range time.Tick(d)` can never terminate (the
//     channel is never closed) and leaks the ticker besides; it is
//     flagged even though its CFG formally reaches the exit.
//   - stop-channel liveness: when the body receives from a channel field
//     of a module struct (the stop/done idiom), something in the module
//     must close or send on that field; a stop channel nothing ever
//     closes is a leak with extra steps.
//
// Bodies are found through the spawn: `go func() {...}()` literals and
// `go s.worker()` calls into module functions (analyzed once per spawn
// site, so the diagnostic lands where the leak starts).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutines is the background-goroutine lifecycle analyzer.
type Goroutines struct{}

func (Goroutines) Name() string { return "goroutine-lifecycle" }
func (Goroutines) Doc() string {
	return "every background goroutine must be stoppable: reachable exit, no time.Tick loops, stop channels actually closed somewhere"
}

type goroutineChecker struct {
	m      *Module
	report Reporter
	sums   *summaries
	// closedFields: module struct channel fields that some close(x.f) or
	// x.f <- send touches, keyed "pkgpath.Type.field".
	closedFields map[string]bool
}

func (Goroutines) Check(m *Module, pkgs []*Package, report Reporter) {
	c := &goroutineChecker{m: m, report: report, closedFields: make(map[string]bool)}
	c.sums = collectFuncs(m, pkgs, "goroutine-lifecycle", false)

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			if pkg.IsTestFile(file) {
				continue
			}
			c.indexCloses(pkg, file)
		}
	}

	for _, obj := range c.sums.order {
		mf := c.sums.funcs[obj]
		if mf.Allowed {
			continue
		}
		ast.Inspect(mf.Decl.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				c.checkSpawn(mf.Pkg, g)
			}
			return true
		})
	}
}

// indexCloses records every close(x.f) and x.f <- v over module struct
// fields. Tests are excluded like everywhere else, but closes are also
// indexed from Close/Stop methods, which is where they live.
func (c *goroutineChecker) indexCloses(pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if key, ok := c.fieldKey(pkg, x.Args[0]); ok {
					c.closedFields[key] = true
				}
			}
		case *ast.SendStmt:
			if key, ok := c.fieldKey(pkg, x.Chan); ok {
				c.closedFields[key] = true
			}
		}
		return true
	})
}

// fieldKey canonicalizes a selector over a module struct field.
func (c *goroutineChecker) fieldKey(pkg *Package, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return "", false
	}
	named, ok := deref(tv.Type).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	p := named.Obj().Pkg().Path()
	if !pathIn(p, []string{c.m.Path}) {
		return "", false
	}
	return p + "." + named.Obj().Name() + "." + sel.Sel.Name, true
}

// checkSpawn analyzes one `go` statement.
func (c *goroutineChecker) checkSpawn(pkg *Package, g *ast.GoStmt) {
	var body *ast.BlockStmt
	bodyPkg := pkg
	switch fn := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fn.Body
	default:
		callee := resolveModuleCall(c.m, pkg, g.Call)
		if callee == nil {
			return // go http.Serve(...) etc.: not ours to judge
		}
		mf := c.sums.funcs[callee]
		if mf == nil || mf.Allowed {
			return
		}
		body = mf.Decl.Body
		bodyPkg = mf.Pkg
	}

	if findTickRange(body) != nil {
		c.report(pkg, g.Pos(), "background goroutine loops over time.Tick: the tick channel is never closed, so the loop (and its ticker) outlive Close — use a NewTicker with a stop channel and join on shutdown")
		return
	}

	cfg := buildCFG(body)
	if !cfg.ReachesExit()[cfg.Entry] {
		c.report(pkg, g.Pos(), "background goroutine can never terminate: no path from its loop reaches the function exit — select on a stop channel (closed on Close) and return")
		return
	}

	c.checkStopChannels(pkg, bodyPkg, g, body)
}

// findTickRange finds `for range time.Tick(...)` anywhere in the body.
func findTickRange(body *ast.BlockStmt) *ast.RangeStmt {
	var found *ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok || found != nil {
			return found == nil
		}
		if call, ok := r.X.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Tick" {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
					found = r
				}
			}
		}
		return true
	})
	return found
}

// checkStopChannels verifies that every module channel field the body
// receives from is closed or sent to somewhere in the module.
func (c *goroutineChecker) checkStopChannels(pkg, bodyPkg *Package, g *ast.GoStmt, body *ast.BlockStmt) {
	reported := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		var ch ast.Expr
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ch = x.X
			}
		case *ast.RangeStmt:
			if tv, ok := bodyPkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ch = x.X
				}
			}
		}
		if ch == nil {
			return true
		}
		key, ok := c.fieldKey(bodyPkg, ch)
		if !ok || reported[key] || c.closedFields[key] {
			return true
		}
		reported[key] = true
		c.report(pkg, g.Pos(), "background goroutine waits on %s, but nothing in the module ever closes or sends on it: the goroutine can never be stopped", key)
		return true
	})
}
