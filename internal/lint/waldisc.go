package lint

// wal-discipline: the storage protocol owns the pages.
//
// Rule A (layering): only the storage-protocol packages — server, wal,
// archive, recbuf, faultinject, disk, buffer — may call WritePage on a
// disk.Store or mutate buffer-pool frames. Everything else (harness, wire,
// client, tools) must go through a Session, so every page image that reaches
// stable storage is covered by the WAL protocol the sweeps verify.
//
// Rule B (write-ahead order within a function): a page write followed later
// in the same body by a wal.Append, with no log force between them, is the
// classic inverted ordering — the log record describing (or following) the
// write could be lost in a crash that survives the page. Bodies that force
// first (checkpointQuiesced: Force → WritePage loop) are fine; restore-style
// paths that intentionally write images before re-appending history carry a
// //qslint:allow wal-discipline annotation.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// WALDiscipline is the page-write layering / write-ahead-order analyzer.
type WALDiscipline struct{}

func (WALDiscipline) Name() string { return "wal-discipline" }
func (WALDiscipline) Doc() string {
	return "only protocol packages may write pages, and a page write must not precede wal.Append without a log force"
}

// storeInterface resolves disk.Store so implementors can be recognized
// structurally (MemStore, FileStore, fault-injecting wrappers, fixtures).
func storeInterface(m *Module) *types.Interface {
	pkg, err := m.Load(m.Path + "/internal/disk")
	if err != nil {
		return nil
	}
	obj := pkg.Types.Scope().Lookup("Store")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func implementsIface(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// poolMutators are the buffer-pool frame mutations rule A fences in.
var poolMutators = map[string]bool{
	"Insert": true, "Remove": true, "MarkDirty": true, "MarkClean": true,
	"Clear": true, "Pin": true, "Unpin": true, "SetCapacity": true,
}

const (
	wdWrite = iota
	wdForce
	wdAppend
)

func (WALDiscipline) Check(m *Module, pkgs []*Package, report Reporter) {
	iface := storeInterface(m)
	walPath := m.Path + "/internal/wal"
	bufPath := m.Path + "/internal/buffer"
	writeAllow := []string{
		m.Path + "/internal/server",
		m.Path + "/internal/wal",
		m.Path + "/internal/archive",
		m.Path + "/internal/recbuf",
		m.Path + "/internal/faultinject",
		m.Path + "/internal/disk",
		m.Path + "/internal/buffer",
	}
	// The client runs its own page cache (client caching is the point of the
	// architecture), so it may mutate its own pool; it still may not touch a
	// disk.Store directly.
	poolAllow := []string{
		m.Path + "/internal/server",
		m.Path + "/internal/buffer",
		m.Path + "/internal/client",
	}

	for _, pkg := range pkgs {
		storeOK := pathIn(pkg.Path, writeAllow)
		poolOK := pathIn(pkg.Path, poolAllow)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pkg.FuncAllowed("wal-discipline", fd) {
					continue
				}
				type ev struct {
					kind int
					pos  token.Pos
				}
				var evs []ev
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					recvTV, typed := pkg.Info.Types[sel.X]
					var recvT types.Type
					if typed {
						recvT = recvTV.Type
					}
					switch name := sel.Sel.Name; {
					case name == "WritePage" && implementsIface(recvT, iface):
						if !storeOK {
							report(pkg, call.Pos(), "WritePage on a disk.Store from package %s: page writes are reserved to the storage-protocol packages (server/wal/archive/recbuf/faultinject); go through a Session so the WAL protocol covers the write", pkg.Path)
						}
						evs = append(evs, ev{wdWrite, call.Pos()})
					case (name == "Force" || name == "ForceFull" || name == "CommitWait") && isNamedType(recvT, walPath, "Log"):
						evs = append(evs, ev{wdForce, call.Pos()})
					case name == "Append" && isNamedType(recvT, walPath, "Log"):
						evs = append(evs, ev{wdAppend, call.Pos()})
					case poolMutators[name] && !poolOK &&
						(isNamedType(recvT, bufPath, "Pool") || isNamedType(recvT, bufPath, "Sharded") || isNamedType(recvT, bufPath, "PoolShard")):
						report(pkg, call.Pos(), "%s mutates buffer-pool frames from package %s: frame state is owned by the server's fix/unfix protocol", name, pkg.Path)
					}
					return true
				})
				sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
				// A force anywhere before the first write covers it (the sharp
				// checkpoint: Force → flush dirty pages → append checkpoint-end
				// record is the canonical legitimate write-then-append body).
				pendingWrite := token.NoPos
				forced := false
				for _, e := range evs {
					switch e.kind {
					case wdForce:
						forced = true
						pendingWrite = token.NoPos
					case wdWrite:
						if !forced && !pendingWrite.IsValid() {
							pendingWrite = e.pos
						}
					case wdAppend:
						if pendingWrite.IsValid() {
							report(pkg, e.pos, "wal.Append after a page write at line %d with no log force between them: the write-ahead rule requires the log record stable before (or a Force since) any page write it describes",
								m.Fset.Position(pendingWrite).Line)
							pendingWrite = token.NoPos
						}
					}
				}
			}
		}
	}
}
