package lint

// determinism: crash-point sweeps replay the same workload twice (crash +
// restart vs. undisturbed) and diff the results byte-for-byte, so every
// package on that path must be a pure function of the seed. Three sources of
// nondeterminism are fenced out of the sweep-critical packages:
//
//   - wall-clock reads (time.Now / Since / Until): a timestamp that reaches a
//     log record or report changes across runs;
//   - math/rand: its stream is not guaranteed stable across Go releases
//     (workload generators that need randomness keep an explicitly seeded
//     source in a package outside this scope, e.g. internal/oo7);
//   - ranging over a map while emitting — printing, appending log records, or
//     writing pages inside the loop body — since Go randomizes map iteration
//     order per run.
//
// Legitimate wall-clock uses (the lock manager's deadlock deadline, bench
// timers) carry //qslint:allow determinism: <reason> annotations.

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism is the sweep-reproducibility analyzer.
type Determinism struct{}

func (Determinism) Name() string { return "determinism" }
func (Determinism) Doc() string {
	return "no wall clock, math/rand, or map-order-dependent output in sweep-critical packages"
}

var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func (Determinism) Check(m *Module, pkgs []*Package, report Reporter) {
	checked := []string{
		m.Path + "/internal/harness",
		m.Path + "/internal/logrec",
		m.Path + "/internal/diff",
		m.Path + "/internal/server",
		m.Path + "/internal/wal",
		m.Path + "/internal/recbuf",
		m.Path + "/internal/lock",
		m.Path + "/internal/archive",
		m.Path + "/internal/repl",
		m.Path + "/internal/wire",
		m.Path + "/cmd",
	}
	iface := storeInterface(m)
	walPath := m.Path + "/internal/wal"
	serverPath := m.Path + "/internal/server"

	// emits reports whether the loop body observable-effects depend on
	// iteration order: formatting, log appends, server session calls, or
	// store writes inside the body.
	emits := func(pkg *Package, body *ast.BlockStmt) (ast.Node, bool) {
		var at ast.Node
		ast.Inspect(body, func(n ast.Node) bool {
			if at != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
			if obj == nil {
				return true
			}
			opkg := obj.Pkg()
			var recvT types.Type
			if tv, ok := pkg.Info.Types[sel.X]; ok {
				recvT = tv.Type
			}
			switch {
			case opkg != nil && opkg.Path() == "fmt":
				at = call
			case isNamedType(recvT, walPath, "Log"):
				at = call
			case implementsIface(recvT, iface):
				at = call
			case opkg != nil && opkg.Path() == serverPath && obj.Type().(*types.Signature).Recv() != nil:
				at = call
			}
			return at == nil
		})
		return at, at != nil
	}

	for _, pkg := range pkgs {
		if !pathIn(pkg.Path, checked) {
			continue
		}
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if path == "math/rand" || path == "math/rand/v2" {
					report(pkg, imp.Pos(), "math/rand imported in sweep-critical package %s: its stream is not stable across Go releases; keep seeded randomness outside the replayed path", pkg.Path)
				}
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pkg.FuncAllowed("determinism", fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.CallExpr:
						sel, ok := x.Fun.(*ast.SelectorExpr)
						if !ok {
							return true
						}
						obj, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
						if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && clockFuncs[obj.Name()] {
							report(pkg, x.Pos(), "wall-clock read time.%s in sweep-critical package %s: replayed runs must not observe real time (//qslint:allow determinism: <reason> if this provably never feeds logged or diffed state)",
								obj.Name(), pkg.Path)
						}
					case *ast.RangeStmt:
						tv, ok := pkg.Info.Types[x.X]
						if !ok {
							return true
						}
						if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
							return true
						}
						if at, bad := emits(pkg, x.Body); bad {
							report(pkg, x.For, "map iteration feeds output, log records, or page writes (line %d): Go randomizes map order per run — collect and sort the keys first",
								m.Fset.Position(at.Pos()).Line)
						}
					}
					return true
				})
			}
		}
	}
}
