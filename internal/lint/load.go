package lint

// Module loading: a from-scratch package loader built on the standard
// library only (go/parser + go/types + go/importer), preserving the repo's
// no-external-dependency rule. golang.org/x/tools/go/packages would do this
// in three lines; we instead resolve module-internal import paths ourselves
// (module path from go.mod plus the directory layout) and delegate
// everything else — the standard library — to the compiler-independent
// source importer, which type-checks stdlib packages from $GOROOT source.
//
// Test files (_test.go) are excluded by default: the invariants qslint
// enforces protect the production protocol paths; tests crash, reorder and
// poke stable storage on purpose. IncludeTests opts specific packages back
// in (qslint -tests does this for internal/harness, whose sweep repro
// helpers must stay deterministic like the sweeps themselves): in-package
// test files are parsed and type-checked alongside the production files,
// and analyzers consult Package.IsTestFile to decide how much of their
// rule set applies there. External test packages (package foo_test) stay
// excluded — they would need a second type-check universe.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path ("repro/internal/server")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allows     []allowDirective
	allowsDone bool
}

// Module is a loaded Go module: the unit qslint analyzes.
type Module struct {
	Root string // directory containing go.mod
	Path string // module path from the go.mod "module" line
	Fset *token.FileSet

	pkgs     map[string]*Package // by import path
	loading  map[string]bool     // cycle detection
	std      types.Importer      // source importer for non-module (stdlib) paths
	testPkgs map[string]bool     // import paths whose in-package _test.go files load too
}

// IncludeTests opts the given import paths into test-file loading. Must be
// called before the packages are (transitively) loaded.
func (m *Module) IncludeTests(paths ...string) {
	for _, p := range paths {
		m.testPkgs[p] = true
	}
}

// LoadModule opens the module rooted at (or above) dir.
func LoadModule(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Module{
		Root:     root,
		Path:     modPath,
		Fset:     fset,
		pkgs:     make(map[string]*Package),
		loading:  make(map[string]bool),
		std:      importer.ForCompiler(fset, "source", nil),
		testPkgs: make(map[string]bool),
	}, nil
}

// skipDir reports whether a directory is outside the analyzed tree.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadAll loads every package in the module, in deterministic (import path)
// order.
func (m *Module) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != m.Root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var paths []string
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		rel, err := filepath.Rel(m.Root, dir)
		if err != nil {
			return nil, err
		}
		ip := m.Path
		if rel != "." {
			ip = m.Path + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	var out []*Package
	for _, ip := range paths {
		pkg, err := m.Load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Load loads (or returns the cached) package with the given module-internal
// import path.
func (m *Module) Load(importPath string) (*Package, error) {
	if pkg, ok := m.pkgs[importPath]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, m.Path), "/")
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	return m.loadDir(dir, importPath)
}

// LoadDirAs type-checks the single package in dir under a synthetic import
// path. The lint tests use it to load fixture packages out of testdata/,
// where the go tool (deliberately) never looks.
func (m *Module) LoadDirAs(dir, importPath string) (*Package, error) {
	return m.loadDir(dir, importPath)
}

func (m *Module) loadDir(dir, importPath string) (*Package, error) {
	if m.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	m.loading[importPath] = true
	defer delete(m.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s (for %s): %w", dir, importPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if m.testPkgs[importPath] {
		pkgName := files[0].Name.Name
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			// In-package test files only; external test packages (foo_test)
			// would need their own type-check universe.
			if f.Name.Name == pkgName {
				files = append(files, f)
			}
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	cfg := types.Config{
		Importer: moduleImporter{m},
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, _ := cfg.Check(importPath, m.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", importPath, strings.Join(msgs, "\n  "))
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  m.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	m.pkgs[importPath] = pkg
	return pkg, nil
}

// IsTestFile reports whether f was parsed from a _test.go file (only
// possible under IncludeTests). Analyzers use it to scope their rules:
// most skip test files entirely; determinism keeps checking them, since
// sweep repro helpers must replay exactly like the sweeps.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// moduleImporter resolves module-internal paths through the Module and
// everything else (the standard library) through the source importer.
type moduleImporter struct{ m *Module }

func (mi moduleImporter) Import(path string) (*types.Package, error) {
	m := mi.m
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
