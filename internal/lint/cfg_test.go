package lint

// CFG construction sanity: the exit-reachability and merge behaviors the
// §15 analyzers lean on, checked on small parsed bodies rather than
// through full analyzer runs.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `func f() { <src> }` and returns the body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "x.go", "package x\nfunc f() {\n"+src+"\n}\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	return file.Decls[len(file.Decls)-1].(*ast.FuncDecl).Body
}

func TestCFGExitReachability(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		reaches bool
	}{
		{"straight line", "x := 1\n_ = x", true},
		{"bare infinite loop", "for {\n}", false},
		{"infinite loop with return", "for {\nreturn\n}", true},
		{"infinite loop with break", "for {\nbreak\n}", true},
		{"conditional loop", "for i := 0; i < 3; i++ {\n}", true},
		{"nested bare loop", "if true {\nfor {\n}\n} else {\nfor {\n}\n}", false},
		{"select with returning case", "ch := make(chan int)\nfor {\nselect {\ncase <-ch:\nreturn\n}\n}", true},
		{"select without escape", "ch := make(chan int)\nfor {\nselect {\ncase <-ch:\n}\n}", false},
		// Terminating calls edge to Exit by design: a panic does end the
		// goroutine, and the analyzers still need to observe facts there.
		{"unconditional panic", "panic(\"x\")", true},
		{"panic on one branch", "if true {\npanic(\"x\")\n}", true},
		{"labeled break", "outer:\nfor {\nfor {\nbreak outer\n}\n}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := buildCFG(parseBody(t, tc.src))
			if got := cfg.ReachesExit()[cfg.Entry]; got != tc.reaches {
				t.Fatalf("entry reaches exit = %v, want %v", got, tc.reaches)
			}
		})
	}
}

// TestCFGMergeJoins checks that an if/else diamond really joins: a fact
// seeded differently per branch must merge at the block after the if.
// Exercised through the generic dataflow engine with a simple
// all-paths boolean fact ("saw the call on every path").
func TestCFGMergeJoins(t *testing.T) {
	body := parseBody(t, `
if cond {
	mark()
} else {
	other()
}
after()
`)
	cfg := buildCFG(body)
	sawMark := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if c, ok := x.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "mark" {
					found = true
				}
			}
			return true
		})
		return found
	}
	var atAfter []bool
	fl := flow[bool]{
		bottom: func() bool { return false },
		clone:  func(b bool) bool { return b },
		merge: func(dst, src bool) (bool, bool) {
			merged := dst && src
			return merged, merged != dst
		},
		transfer: func(n ast.Node, fact bool, rep bool) bool {
			if rep {
				if c, ok := n.(*ast.ExprStmt); ok {
					if call, ok := c.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
							atAfter = append(atAfter, fact)
						}
					}
				}
			}
			if sawMark(n) {
				return true
			}
			return fact
		},
	}
	in := runFlow(cfg, fl)
	replayFlow(cfg, fl, in)
	if len(atAfter) != 1 || atAfter[0] {
		t.Fatalf("must-merge at the join should AND the branches (mark only on one): got %v", atAfter)
	}
}
