package lint

// Per-function control-flow graphs, built straight from go/ast (DESIGN.md
// §15). qslint's first generation interpreted statement lists recursively,
// which handles structured control flow but cannot answer questions like
// "is there ANY path from this latch acquisition to this force?" or "can
// this loop ever reach the function exit?". The CFG makes paths explicit:
//
//   - every basic block is a straight-line slice of evaluation steps
//     (simple statements plus the condition/tag expressions that guard
//     branches), in source evaluation order;
//   - branches (if/switch/type switch/select), loops (for/range, including
//     labeled break/continue and fallthrough), early returns, and
//     terminating calls (panic, os.Exit, log.Fatal*, runtime.Goexit) all
//     become edges;
//   - a `for` with no condition gets no loop-head → after edge, so "the
//     exit is unreachable from inside this loop" is a plain reachability
//     query (the goroutine-lifecycle analyzer's core);
//   - defer and go statements appear as ordinary nodes; the dataflow
//     clients decide their semantics (a deferred release does not release
//     mid-body; a goroutine body runs under an empty abstract state).
//
// Approximations, chosen to stay small and honest: goto edges go to the
// function exit (none of the protocol code uses goto); a select's comm
// clauses contribute only their bodies (the blocking decision is judged at
// the *ast.SelectStmt node itself, which sits in the head block); panic
// recovery is ignored.

import (
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: straight-line evaluation steps and successor
// edges.
type Block struct {
	Nodes []ast.Node // simple stmts and guard exprs, evaluation order
	Succs []*Block
}

// CFG is one function body's control-flow graph.
type CFG struct {
	Entry  *Block
	Exit   *Block // every return/fallthrough-off-the-end edge lands here
	Blocks []*Block
}

// Preds returns the predecessor map (computed on demand; the builder only
// stores forward edges).
func (c *CFG) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(c.Blocks))
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// ReachesExit returns the set of blocks from which Exit is reachable.
func (c *CFG) ReachesExit() map[*Block]bool {
	preds := c.Preds()
	can := make(map[*Block]bool, len(c.Blocks))
	var mark func(b *Block)
	mark = func(b *Block) {
		if can[b] {
			return
		}
		can[b] = true
		for _, p := range preds[b] {
			mark(p)
		}
	}
	mark(c.Exit)
	return can
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{c: &CFG{}}
	b.c.Entry = b.newBlock()
	b.c.Exit = b.newBlock()
	b.cur = b.c.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.c.Exit)
	return b.c
}

// ctrlFrame is one enclosing breakable/continuable construct.
type ctrlFrame struct {
	label      string
	isLoop     bool
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type cfgBuilder struct {
	c            *CFG
	cur          *Block
	frames       []ctrlFrame
	pendingLabel string
	fallTarget   *Block // next case clause, for fallthrough
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the label set by an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) push(f ctrlFrame) { b.frames = append(b.frames, f) }
func (b *cfgBuilder) pop()             { b.frames = b.frames[:len(b.frames)-1] }

// frameFor finds the branch target: the innermost matching frame (loops
// only, for continue).
func (b *cfgBuilder) frameFor(label string, needLoop bool) *ctrlFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// deadBlock parks subsequent statements after a jump: no predecessors, so
// dataflow never visits them.
func (b *cfgBuilder) deadBlock() { b.cur = b.newBlock() }

// terminates reports whether an expression statement can never return:
// panic(...), os.Exit, log.Fatal*, runtime.Goexit, or a testing Fatal.
// Purely syntactic, which is all the spawning code needs.
func terminates(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fn.Sel.Name == "Exit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fn.Sel.Name, "Fatal"):
			return true
		case pkg.Name == "runtime" && fn.Sel.Name == "Goexit":
			return true
		case strings.HasPrefix(fn.Sel.Name, "Fatal"): // t.Fatal / t.Fatalf
			return pkg.Name == "t" || pkg.Name == "b"
		}
	}
	return false
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmts(x.List)

	case *ast.LabeledStmt:
		b.pendingLabel = x.Label.Name
		b.stmt(x.Stmt)
		b.pendingLabel = ""

	case *ast.ExprStmt:
		b.add(x)
		if terminates(x.X) {
			b.edge(b.cur, b.c.Exit)
			b.deadBlock()
		}

	case *ast.ReturnStmt:
		b.add(x)
		b.edge(b.cur, b.c.Exit)
		b.deadBlock()

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			label := ""
			if x.Label != nil {
				label = x.Label.Name
			}
			if f := b.frameFor(label, false); f != nil {
				b.edge(b.cur, f.breakTo)
			} else {
				b.edge(b.cur, b.c.Exit)
			}
			b.deadBlock()
		case token.CONTINUE:
			label := ""
			if x.Label != nil {
				label = x.Label.Name
			}
			if f := b.frameFor(label, true); f != nil && f.continueTo != nil {
				b.edge(b.cur, f.continueTo)
			} else {
				b.edge(b.cur, b.c.Exit)
			}
			b.deadBlock()
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				b.edge(b.cur, b.fallTarget)
			}
			b.deadBlock()
		case token.GOTO:
			// Approximate: structured protocol code has no goto; an edge to
			// the exit keeps the graph sound enough for may-analyses.
			b.edge(b.cur, b.c.Exit)
			b.deadBlock()
		}

	case *ast.IfStmt:
		b.takeLabel()
		if x.Init != nil {
			b.stmt(x.Init)
		}
		b.add(x.Cond)
		head := b.cur
		thenB := b.newBlock()
		afterB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmts(x.Body.List)
		b.edge(b.cur, afterB)
		if x.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(x.Else)
			b.edge(b.cur, afterB)
		} else {
			b.edge(head, afterB)
		}
		b.cur = afterB

	case *ast.ForStmt:
		label := b.takeLabel()
		if x.Init != nil {
			b.stmt(x.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if x.Cond != nil {
			b.add(x.Cond)
		}
		bodyB := b.newBlock()
		afterB := b.newBlock()
		b.edge(head, bodyB)
		if x.Cond != nil {
			// A condition-less `for {}` deliberately has no head→after edge:
			// its exit is unreachable unless the body breaks or returns.
			b.edge(head, afterB)
		}
		contTo := head
		var postB *Block
		if x.Post != nil {
			postB = b.newBlock()
			contTo = postB
		}
		b.push(ctrlFrame{label: label, isLoop: true, breakTo: afterB, continueTo: contTo})
		b.cur = bodyB
		b.stmts(x.Body.List)
		if postB != nil {
			b.edge(b.cur, postB)
			b.cur = postB
			b.stmt(x.Post)
		}
		b.edge(b.cur, head)
		b.pop()
		b.cur = afterB

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(x.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		bodyB := b.newBlock()
		afterB := b.newBlock()
		b.edge(head, bodyB)
		b.edge(head, afterB)
		b.push(ctrlFrame{label: label, isLoop: true, breakTo: afterB, continueTo: head})
		b.cur = bodyB
		b.stmts(x.Body.List)
		b.edge(b.cur, head)
		b.pop()
		b.cur = afterB

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if x.Init != nil {
			b.stmt(x.Init)
		}
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.caseClauses(label, x.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if x.Init != nil {
			b.stmt(x.Init)
		}
		b.add(x.Assign)
		b.caseClauses(label, x.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		// The select node itself sits in the head block: clients judge its
		// blocking behavior (default present or not) there. Clause bodies
		// become ordinary blocks.
		b.add(x)
		head := b.cur
		afterB := b.newBlock()
		b.push(ctrlFrame{label: label, breakTo: afterB})
		for _, cc := range x.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.stmts(clause.Body)
			b.edge(b.cur, afterB)
		}
		if len(x.Body.List) == 0 {
			// select {}: blocks forever; no edge out.
			b.deadBlock()
			b.pop()
			return
		}
		b.pop()
		b.cur = afterB

	default:
		// Assign, Decl, Send, IncDec, Defer, Go, Empty: straight-line steps.
		b.add(s)
	}
}

// caseClauses builds switch/type-switch clause blocks, threading
// fallthrough targets.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, _ *Block) {
	head := b.cur
	afterB := b.newBlock()
	b.push(ctrlFrame{label: label, breakTo: afterB})
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, cc := range clauses {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		for _, e := range clause.List {
			b.add(e)
		}
		savedFall := b.fallTarget
		if i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.stmts(clause.Body)
		b.fallTarget = savedFall
		b.edge(b.cur, afterB)
	}
	if !hasDefault {
		b.edge(head, afterB)
	}
	b.pop()
	b.cur = afterB
}
