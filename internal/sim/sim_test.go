package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := New()
	var end time.Duration
	k.Spawn("a", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		p.Sleep(3 * time.Millisecond)
		end = p.Now()
	})
	k.Run()
	if end != 8*time.Millisecond {
		t.Fatalf("end = %v", end)
	}
	if k.Now() != 8*time.Millisecond {
		t.Fatalf("kernel now = %v", k.Now())
	}
}

func TestInterleavingIsTimeOrdered(t *testing.T) {
	k := New()
	var order []string
	logat := func(p *Proc, tag string) { order = append(order, tag) }
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		logat(p, "a10")
		p.Sleep(20 * time.Millisecond) // wakes at 30
		logat(p, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		logat(p, "b5")
		p.Sleep(20 * time.Millisecond) // wakes at 25
		logat(p, "b25")
	})
	k.Run()
	want := []string{"b5", "a10", "b25", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimeEventsRunInSpawnOrder(t *testing.T) {
	k := New()
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, name)
		})
	}
	k.Run()
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceQueueing(t *testing.T) {
	k := New()
	disk := k.NewResource("disk")
	var aEnd, bEnd time.Duration
	k.Spawn("a", func(p *Proc) {
		disk.Use(p, 10*time.Millisecond)
		aEnd = p.Now()
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(1 * time.Millisecond)
		disk.Use(p, 10*time.Millisecond) // must queue behind a
		bEnd = p.Now()
	})
	k.Run()
	if aEnd != 10*time.Millisecond {
		t.Fatalf("a finished at %v", aEnd)
	}
	if bEnd != 20*time.Millisecond {
		t.Fatalf("b finished at %v, want 20ms (queued)", bEnd)
	}
	if disk.BusyTime() != 20*time.Millisecond {
		t.Fatalf("busy = %v", disk.BusyTime())
	}
	if disk.Uses() != 2 {
		t.Fatalf("uses = %d", disk.Uses())
	}
}

func TestResourceIdleGap(t *testing.T) {
	k := New()
	r := k.NewResource("r")
	var end time.Duration
	k.Spawn("a", func(p *Proc) {
		r.Use(p, 5*time.Millisecond)
		p.Sleep(100 * time.Millisecond)
		r.Use(p, 5*time.Millisecond) // resource idle in between
		end = p.Now()
	})
	k.Run()
	if end != 110*time.Millisecond {
		t.Fatalf("end = %v", end)
	}
	if got := r.Utilization(); got < 0.0909 || got > 0.0910 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestReserveDoesNotBlock(t *testing.T) {
	k := New()
	disk := k.NewResource("disk")
	var compAt, procEnd time.Duration
	k.Spawn("a", func(p *Proc) {
		compAt = disk.Reserve(p, 50*time.Millisecond)
		procEnd = p.Now()
	})
	k.Run()
	if procEnd != 0 {
		t.Fatalf("Reserve blocked the caller until %v", procEnd)
	}
	if compAt != 50*time.Millisecond {
		t.Fatalf("completion at %v", compAt)
	}
	// A subsequent synchronous use queues behind the reservation.
	k2 := New()
	d2 := k2.NewResource("d")
	var end time.Duration
	k2.Spawn("a", func(p *Proc) {
		d2.Reserve(p, 30*time.Millisecond)
		d2.Use(p, 10*time.Millisecond)
		end = p.Now()
	})
	k2.Run()
	if end != 40*time.Millisecond {
		t.Fatalf("use after reserve ended at %v, want 40ms", end)
	}
}

func TestZeroServiceIsFree(t *testing.T) {
	k := New()
	r := k.NewResource("r")
	k.Spawn("a", func(p *Proc) {
		r.Use(p, 0)
		if p.Now() != 0 {
			t.Error("zero service advanced time")
		}
	})
	k.Run()
	if r.Uses() != 0 {
		t.Fatalf("zero-service use counted: %d", r.Uses())
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := New()
	var childEnd time.Duration
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(2 * time.Millisecond)
			childEnd = c.Now()
		})
		p.Sleep(time.Millisecond)
	})
	k.Run()
	if childEnd != 3*time.Millisecond {
		t.Fatalf("child ended at %v", childEnd)
	}
}

func TestManyProcessesDeterminism(t *testing.T) {
	run := func() time.Duration {
		k := New()
		r := k.NewResource("shared")
		for i := 0; i < 20; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(time.Duration(i+1) * time.Millisecond)
					r.Use(p, time.Duration(j+1)*100*time.Microsecond)
				}
			})
		}
		k.Run()
		return k.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	k := New()
	k.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for negative sleep")
			}
		}()
		p.Sleep(-1)
	})
	k.Run()
}
