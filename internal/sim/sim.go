// Package sim is a small deterministic discrete-event simulation kernel used
// to reproduce the paper's multi-client performance experiments on the
// 1995 testbed (five client workstations, one server, a shared 10 Mbit
// Ethernet, and separate data and log disks) without that hardware.
//
// Simulated activities run as ordinary goroutines ("processes") that are
// cooperatively scheduled by the kernel: at any instant exactly one process
// executes, and the kernel always resumes the process with the earliest
// pending wake-up time. Because every blocking operation goes through the
// kernel, processes observe a single global clock and calls to shared
// resources occur in nondecreasing time order, which makes the simple FCFS
// reservation discipline in Resource exact.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Kernel is a discrete-event scheduler. Create with New, add processes with
// Spawn, then call Run from the owning goroutine.
type Kernel struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	yield  chan struct{}
	live   int
}

type event struct {
	at   time.Duration
	seq  uint64 // tie-break so equal-time events run in schedule order
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New returns an empty kernel at time zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulation time.
func (k *Kernel) Now() time.Duration { return k.now }

// Proc is a simulated process. All of its methods must be called from the
// goroutine started by Spawn.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulation time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Spawn registers fn as a process that begins executing at the current
// simulation time when Run is called.
func (k *Kernel) Spawn(name string, fn func(*Proc)) {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.schedule(k.now, p)
	k.live++
	go func() {
		<-p.resume
		fn(p)
		k.live--
		k.yield <- struct{}{}
	}()
}

func (k *Kernel) schedule(at time.Duration, p *Proc) {
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, proc: p})
}

// Run executes events until every spawned process has returned. It must be
// called from the goroutine that owns the kernel, and processes must only be
// added before Run starts or from within running processes.
func (k *Kernel) Run() {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(event)
		if e.at < k.now {
			panic(fmt.Sprintf("sim: time went backward: %v < %v", e.at, k.now))
		}
		k.now = e.at
		e.proc.resume <- struct{}{}
		<-k.yield
	}
	if k.live != 0 {
		panic("sim: processes still live with no pending events (deadlock)")
	}
}

// sleepUntil blocks the process until the given simulation time.
func (p *Proc) sleepUntil(at time.Duration) {
	if at < p.k.now {
		at = p.k.now
	}
	p.k.schedule(at, p)
	p.k.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process's clock by d without consuming any resource.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.sleepUntil(p.k.now + d)
}

// Resource is a single-server FCFS queueing station (a CPU, a disk, or the
// shared network segment). Service requests from concurrently executing
// processes queue in arrival order; utilization statistics accumulate for
// reporting.
type Resource struct {
	Name   string
	k      *Kernel
	freeAt time.Duration
	busy   time.Duration
	uses   int64
}

// NewResource creates a resource attached to k.
func (k *Kernel) NewResource(name string) *Resource {
	return &Resource{Name: name, k: k}
}

// Use blocks p while it queues for and then holds the resource for the given
// service time.
func (r *Resource) Use(p *Proc, service time.Duration) {
	if service < 0 {
		panic("sim: negative service time")
	}
	if service == 0 {
		return
	}
	start := p.k.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start + service
	r.freeAt = end
	r.busy += service
	r.uses++
	p.sleepUntil(end)
}

// Reserve schedules service time on the resource without blocking the
// caller, modelling asynchronous background work (for example the WPL
// installer writing pages home, or NO-FORCE lazy flushes). It returns the
// time at which the work will complete.
func (r *Resource) Reserve(p *Proc, service time.Duration) time.Duration {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := p.k.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start + service
	r.freeAt = end
	r.busy += service
	r.uses++
	return end
}

// Sync blocks p until every reservation and use issued so far has
// completed — the disk analogue of "wait for all writes in flight".
func (r *Resource) Sync(p *Proc) {
	if r.freeAt > p.k.now {
		p.sleepUntil(r.freeAt)
	}
}

// BusyTime returns the total service time the resource has delivered.
func (r *Resource) BusyTime() time.Duration { return r.busy }

// Uses returns the number of service requests the resource has handled.
func (r *Resource) Uses() int64 { return r.uses }

// Utilization returns busy time divided by elapsed simulation time.
func (r *Resource) Utilization() float64 {
	if r.k.now == 0 {
		return 0
	}
	return float64(r.busy) / float64(r.k.now)
}
