package harness

import (
	"flag"
	"testing"
)

// Sweep knobs: `go test ./internal/harness/ -run TestSweep -sweep.budget=50`
// replays 50 evenly spaced crash points per scheme. Budget 0 picks a default
// (smaller under -short); a negative budget replays every enumerated point.
var (
	sweepBudget = flag.Int("sweep.budget", 0, "crash-point replays per scheme (0 = default, <0 = all)")
	sweepSeed   = flag.Int64("sweep.seed", 1, "sweep workload seed")
)

func replayBudget(t *testing.T) int {
	switch {
	case *sweepBudget != 0:
		if *sweepBudget < 0 {
			return 0 // Sweep treats ≤0 as "all points"
		}
		return *sweepBudget
	case testing.Short():
		return 12
	default:
		return 40
	}
}

// TestSweepCrashPoints is the crash-consistency sweep itself: for every
// scheme it enumerates all crash points (asserting the ≥200 coverage floor),
// replays a budget-limited sample, and fails with a reproduction recipe for
// each violated recovery invariant.
func TestSweepCrashPoints(t *testing.T) {
	budget := replayBudget(t)
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Sweep(sys, *sweepSeed, budget)
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			if rep.Points < 200 {
				t.Errorf("only %d crash points enumerated, want >= 200 (workload too small)", rep.Points)
			}
			t.Logf("%s: %d crash points, replayed %d, %d failures",
				sys.Name, rep.Points, len(rep.Replayed), len(rep.Failures))
			for _, f := range rep.Failures {
				t.Errorf("%v", f)
			}
		})
	}
}

// TestSweepDeterministic pins the reproducibility contract: the same
// (system, seed) pair must enumerate the same crash points — same count and
// the same commit-bracketing fuse counts per transaction — and replaying the
// same point must return the same verdict.
func TestSweepDeterministic(t *testing.T) {
	for _, sys := range []SweepSystem{SweepSystems()[0], SweepSystems()[4]} { // PD-ESM, WPL
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			runA, nA, err := CountCrashPoints(sys, *sweepSeed)
			if err != nil {
				t.Fatalf("counting pass A: %v", err)
			}
			runB, nB, err := CountCrashPoints(sys, *sweepSeed)
			if err != nil {
				t.Fatalf("counting pass B: %v", err)
			}
			if nA != nB {
				t.Fatalf("crash-point count not deterministic: %d then %d", nA, nB)
			}
			if len(runA.txns) != len(runB.txns) {
				t.Fatalf("journal length differs: %d vs %d", len(runA.txns), len(runB.txns))
			}
			for i := range runA.txns {
				a, b := runA.txns[i], runB.txns[i]
				if a.pre != b.pre || a.post != b.post || a.val != b.val || a.parts != b.parts {
					t.Fatalf("journal entry %d differs: %+v vs %+v", i, a, b)
				}
			}

			verdict := func(p int64) string {
				f, err := ReplayCrashPoint(sys.Name, *sweepSeed, p)
				if err != nil {
					t.Fatalf("replay point %d: %v", p, err)
				}
				if f == nil {
					return "pass"
				}
				return f.Detail
			}
			for _, p := range []int64{1, runA.buildEnd + 1, nA / 2, nA} {
				if v1, v2 := verdict(p), verdict(p); v1 != v2 {
					t.Errorf("point %d verdict not deterministic: %q then %q", p, v1, v2)
				}
			}
		})
	}
}

// TestReplayCrashPointUnknownSystem pins the reproduction entry point's
// error path (the names it accepts are the ones failures print).
func TestReplayCrashPointUnknownSystem(t *testing.T) {
	if _, err := ReplayCrashPoint("NO-SUCH", 1, 1); err == nil {
		t.Fatal("expected an error for an unknown system name")
	}
	for _, sys := range SweepSystems() {
		if sys.Name == "" {
			t.Fatal("sweep system with empty name")
		}
	}
}

// TestSamplePoints pins the sampling contract Sweep relies on: within
// budget, evenly spaced, always covering the first and last points.
func TestSamplePoints(t *testing.T) {
	for _, tc := range []struct {
		n      int64
		budget int
	}{
		{10, 3}, {10, 0}, {1, 5}, {250, 50}, {7, 7},
	} {
		pts := samplePoints(tc.n, tc.budget)
		if len(pts) == 0 {
			t.Fatalf("n=%d budget=%d: no points", tc.n, tc.budget)
		}
		if pts[0] != 1 || pts[len(pts)-1] != tc.n {
			t.Errorf("n=%d budget=%d: sample %v must span 1..%d", tc.n, tc.budget, pts, tc.n)
		}
		if tc.budget > 0 && len(pts) > tc.budget {
			t.Errorf("n=%d budget=%d: %d points exceed budget", tc.n, tc.budget, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i] <= pts[i-1] {
				t.Errorf("n=%d budget=%d: sample not strictly increasing: %v", tc.n, tc.budget, pts)
			}
		}
	}
}
