package harness

import "testing"

// TestGroupCommitSweepSmoke is the 2-client group-commit sweep over one
// scheme — the cheap race-detector smoke wired into make check.
func TestGroupCommitSweepSmoke(t *testing.T) {
	rep, err := GroupCommitSweep(SweepSystems()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	checkGroupReport(t, rep, 2)
}

// TestGroupCommitSweepAllSchemes runs 4 concurrent committers through every
// record-boundary cut of the group-commit window, for all five schemes.
func TestGroupCommitSweepAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: smoke test covers one scheme")
	}
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			rep, err := GroupCommitSweep(sys, 4)
			if err != nil {
				t.Fatal(err)
			}
			checkGroupReport(t, rep, 4)
		})
	}
}

func checkGroupReport(t *testing.T, rep *GroupSweepReport, nclients int) {
	t.Helper()
	for _, f := range rep.Failures {
		t.Errorf("%s: %s", rep.System, f)
	}
	// The sweep must actually cover the window: the first cut has no commit
	// durable and the last has all of them.
	if rep.Cuts < nclients+1 {
		t.Fatalf("%s: only %d cuts for %d clients (volatile tail not enumerated?)",
			rep.System, rep.Cuts, nclients)
	}
	if got := rep.Durable[0]; got != 0 {
		t.Errorf("%s: first cut already has %d durable commits", rep.System, got)
	}
	if got := rep.Durable[len(rep.Durable)-1]; got != nclients {
		t.Errorf("%s: final cut has %d durable commits, want %d", rep.System, got, nclients)
	}
}
