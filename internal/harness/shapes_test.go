package harness

// Shape-regression tests: the paper's qualitative claims, checked at a
// reduced scale. These guard the reproduction against calibration drift —
// each encodes a sentence from §5 of the paper.

import (
	"testing"
)

// shapeOptions: large enough for the shapes to emerge, small enough to run
// in seconds.
func shapeOptions() Options {
	return Options{Scale: 10, Clients: []int{1, 5}, Warm: 1, Measure: 1}
}

func cellOf(t *testing.T, cells []Cell, sys string, clients int) Cell {
	t.Helper()
	for _, c := range cells {
		if c.System == sys && c.Clients == clients {
			return c
		}
	}
	t.Fatalf("no cell for %s at %d clients", sys, clients)
	return Cell{}
}

func rt(c Cell) float64 { return c.RespTime.Seconds() }

func TestShapeFig4_REDOBestWPLWorstSaturated(t *testing.T) {
	r := NewRunner(shapeOptions())
	cells, err := r.group("small-uncon-T2A")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 5} {
		redo := cellOf(t, cells, "PD-REDO", n)
		wpl := cellOf(t, cells, "WPL", n)
		pd := cellOf(t, cells, "PD-ESM", n)
		sd := cellOf(t, cells, "SD-ESM", n)
		// "PD-REDO has the best performance overall, while WPL has the worst."
		if rt(redo) >= rt(pd) || rt(redo) >= rt(sd) || rt(redo) >= rt(wpl) {
			t.Errorf("n=%d: PD-REDO not best: redo=%.1f pd=%.1f sd=%.1f wpl=%.1f",
				n, rt(redo), rt(pd), rt(sd), rt(wpl))
		}
		if rt(wpl) <= rt(pd) || rt(wpl) <= rt(sd) {
			t.Errorf("n=%d: WPL not worst: wpl=%.1f pd=%.1f sd=%.1f", n, rt(wpl), rt(pd), rt(sd))
		}
		// "SD-ESM is only slightly faster than PD-ESM."
		if rt(sd) > rt(pd) || rt(sd) < 0.8*rt(pd) {
			t.Errorf("n=%d: SD/PD gap wrong: sd=%.1f pd=%.1f", n, rt(sd), rt(pd))
		}
	}
	// "WPL becomes saturated when more than two clients are used": its
	// 5-client throughput is far below 5x its single-client throughput.
	wpl1 := cellOf(t, cells, "WPL", 1)
	wpl5 := cellOf(t, cells, "WPL", 5)
	if wpl5.TPM > 3*wpl1.TPM {
		t.Errorf("WPL did not saturate: tpm %f -> %f", wpl1.TPM, wpl5.TPM)
	}
	// The diffing schemes keep scaling better than WPL.
	redo1, redo5 := cellOf(t, cells, "PD-REDO", 1), cellOf(t, cells, "PD-REDO", 5)
	if redo5.TPM/redo1.TPM <= wpl5.TPM/wpl1.TPM {
		t.Errorf("PD-REDO scaled worse than WPL: %f vs %f",
			redo5.TPM/redo1.TPM, wpl5.TPM/wpl1.TPM)
	}
}

func TestShapeFig9_WPLShipsOrdersOfMagnitudeMoreThanREDO(t *testing.T) {
	r := NewRunner(shapeOptions())
	cells, err := r.group("small-uncon-T2A")
	if err != nil {
		t.Fatal(err)
	}
	wpl := cellOf(t, cells, "WPL", 1)
	redo := cellOf(t, cells, "PD-REDO", 1)
	esm := cellOf(t, cells, "PD-ESM", 1)
	// Paper: 435 vs 5 pages per transaction.
	if wpl.TotalPages < 20*redo.TotalPages {
		t.Errorf("WPL/REDO pages = %.0f/%.0f, want >20x", wpl.TotalPages, redo.TotalPages)
	}
	// ESM ships WPL's dirty pages plus its own log pages.
	if esm.TotalPages <= wpl.TotalPages {
		t.Errorf("ESM total %.0f should exceed WPL %.0f", esm.TotalPages, wpl.TotalPages)
	}
	if esm.LogPages != redo.LogPages {
		t.Errorf("ESM and REDO generate the same log records: %.0f vs %.0f",
			esm.LogPages, redo.LogPages)
	}
}

func TestShapeFig10_SDWinsConstrained(t *testing.T) {
	r := NewRunner(shapeOptions())
	cells, err := r.group("small-con-T2A")
	if err != nil {
		t.Fatal(err)
	}
	sd := cellOf(t, cells, "SD-ESM", 5)
	pd := cellOf(t, cells, "PD-ESM", 5)
	wpl := cellOf(t, cells, "WPL", 5)
	// "SD-ESM has the best performance ... faster than PD-ESM and WPL."
	if rt(sd) >= rt(pd) || rt(sd) >= rt(wpl) {
		t.Errorf("SD not best constrained: sd=%.1f pd=%.1f wpl=%.1f", rt(sd), rt(pd), rt(wpl))
	}
	// "PD-ESM generates ~4 times as many pages of log records as SD-ESM."
	pd1 := cellOf(t, cells, "PD-ESM", 1)
	sd1 := cellOf(t, cells, "SD-ESM", 1)
	if pd1.LogPages < 2*sd1.LogPages {
		t.Errorf("PD log pages %.0f not well above SD %.0f under pressure",
			pd1.LogPages, sd1.LogPages)
	}
	// PD spills under the small recovery buffer; SD does not.
	if pd1.Spills == 0 {
		t.Error("PD-ESM did not spill with a 0.05 MB-scaled recovery buffer")
	}
	if sd1.Spills > pd1.Spills/4 {
		t.Errorf("SD spills %.0f not far below PD %.0f", sd1.Spills, pd1.Spills)
	}
}

func TestShapeFig8_PerUpdateCostHitsSDNotPD(t *testing.T) {
	r := NewRunner(Options{Scale: 10, Clients: []int{1}, Warm: 1, Measure: 1})
	b, err := r.group("small-uncon-T2B")
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.group("small-uncon-T2C")
	if err != nil {
		t.Fatal(err)
	}
	sdB, sdC := cellOf(t, b, "SD-ESM", 1), cellOf(t, c, "SD-ESM", 1)
	pdB, pdC := cellOf(t, b, "PD-ESM", 1), cellOf(t, c, "PD-ESM", 1)
	// T2C quadruples the updates. SD pays per update, PD does not.
	sdDelta := sdC.RespTime - sdB.RespTime
	pdDelta := pdC.RespTime - pdB.RespTime
	if sdDelta <= 2*pdDelta {
		t.Errorf("T2C penalty: sd +%v, pd +%v; SD should pay much more", sdDelta, pdDelta)
	}
	if pdDelta > pdB.RespTime/10 {
		t.Errorf("PD's T2C penalty too large: +%v on %v", pdDelta, pdB.RespTime)
	}
	// SL logs more than SD (diffing is worthwhile even at sub-page
	// granularity, the paper's final conclusion).
	slB := cellOf(t, b, "SL-ESM", 1)
	sdB2 := cellOf(t, b, "SD-ESM", 1)
	if slB.LogPages <= sdB2.LogPages {
		t.Errorf("SL log pages %.0f not above SD %.0f", slB.LogPages, sdB2.LogPages)
	}
	if slB.RespTime <= sdB2.RespTime {
		t.Errorf("SL %.1fs not slower than SD %.1fs", rt(slB), rt(sdB2))
	}
}

func TestShapeBig_MemorySplitAndWPLCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("big database shape test")
	}
	r := NewRunner(Options{Scale: 10, Clients: []int{1, 5}, Warm: 1, Measure: 2})
	cells, err := r.group("big-T2A")
	if err != nil {
		t.Fatal(err)
	}
	// "the systems that were given smaller client buffer pools begin to
	// thrash": PD-ESM-4 pages far more than PD-ESM-1/2 and is slower at
	// scale.
	half5 := cellOf(t, cells, "PD-ESM-1/2", 5)
	four5 := cellOf(t, cells, "PD-ESM-4", 5)
	if four5.Fetches <= half5.Fetches {
		t.Errorf("PD-ESM-4 fetches %.0f not above PD-ESM-1/2 %.0f", four5.Fetches, half5.Fetches)
	}
	if rt(four5) <= rt(half5) {
		t.Errorf("PD-ESM-4 (%.0fs) should trail PD-ESM-1/2 (%.0fs) at 5 clients",
			rt(four5), rt(half5))
	}
	// "there is little difference in performance between PD-ESM-4 and
	// SD-ESM-4" — within 15%.
	sd5 := cellOf(t, cells, "SD-ESM-4", 5)
	ratio := rt(sd5) / rt(four5)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("SD-ESM-4/PD-ESM-4 = %.2f, want ~1", ratio)
	}
	// WPL has the fastest single-client time (all memory as buffer pool).
	wpl1 := cellOf(t, cells, "WPL", 1)
	if rt(wpl1) >= rt(cellOf(t, cells, "PD-ESM-4", 1)) {
		t.Errorf("WPL (%.0fs) not fastest at 1 client", rt(wpl1))
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{
		Title:  "t",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxxxxx", "1"}, {"y", "2"}},
	}
	out := tab.Format()
	lines := []rune(out)
	if len(lines) == 0 || out[0] != 't' {
		t.Fatalf("format:\n%s", out)
	}
}
