package harness

import (
	"testing"

	"repro/internal/server"
)

// TestTwoPCSweepSmoke runs the sharded 2PC crash sweep for every scheme:
// enumerate the cluster's global stable-event sequence (both shards feed one
// fuse), replay a budget-limited sample, and fail with a reproduction recipe
// for each violated distributed-recovery invariant (cross-shard atomicity,
// in-doubt lock retention, idempotent resolution, restart idempotence).
func TestTwoPCSweepSmoke(t *testing.T) {
	budget := replayBudget(t)
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := TwoPCSweep(sys, *sweepSeed, budget)
			if err != nil {
				t.Fatalf("2pc sweep: %v", err)
			}
			if rep.Points < 100 {
				t.Errorf("only %d crash points enumerated, want >= 100 (workload too small)", rep.Points)
			}
			t.Logf("%s: %d crash points, replayed %d, %d failures",
				sys.Name, rep.Points, len(rep.Replayed), len(rep.Failures))
			for _, f := range rep.Failures {
				t.Errorf("%v", f)
			}
		})
	}
}

// TestTwoPCStallSweepSmoke drops every (budget-limited sample of) in-flight
// 2PC message instead of crashing at a stable event: a lost Prepare must
// abort the transaction everywhere, a lost Decide must leave an in-doubt
// branch that recovery resolution settles to the coordinator's logged
// outcome, and a lost Forget must stay invisible. Each replay also
// checkpoints both shards before crashing, so prepared branches reach
// restart through the checkpoint's 2PC trailer.
func TestTwoPCStallSweepSmoke(t *testing.T) {
	budget := replayBudget(t)
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := TwoPCStallSweep(sys, *sweepSeed, budget)
			if err != nil {
				t.Fatalf("2pc stall sweep: %v", err)
			}
			if rep.Points < 3*twopcStamps {
				t.Errorf("only %d 2PC messages enumerated, want >= %d "+
					"(cross-shard commits should send prepare+decide+forget per participant)",
					rep.Points, 3*twopcStamps)
			}
			t.Logf("%s: %d 2PC messages, replayed %d, %d failures",
				sys.Name, rep.Points, len(rep.Replayed), len(rep.Failures))
			for _, f := range rep.Failures {
				t.Errorf("%v", f)
			}
		})
	}
}

// TestTwoPCStallLeavesInDoubt guards the stall sweep against vacuity: a
// healthy fraction of dropped messages must strand branches in doubt across
// the crash (otherwise the lock-retention and resolution checks never run),
// and those branches must map back to journaled stamps so their pages are
// probeable. One scheme suffices — the message schedule is scheme-agnostic.
func TestTwoPCStallLeavesInDoubt(t *testing.T) {
	sys := SweepSystems()[0]
	_, msgs, err := CountTwoPCPoints(sys, *sweepSeed)
	if err != nil {
		t.Fatal(err)
	}
	indoubt, probed := 0, 0
	for p := int64(1); p <= msgs; p++ {
		run, err := runTwoPCWorkload(sys, *sweepSeed, -1, p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < twopcShards; s++ {
			run.srvs[s].Crash()
			run.logs[s].SetFlushLimiter(nil)
			run.logs[s].SetTruncateGate(nil)
		}
		run.fuse.Disarm()
		found, withPages := false, false
		for s := 0; s < twopcShards; s++ {
			run.stores[s].CrashDropPending()
			srv := server.New(twopcServerConfig(sys.Mode, run.stores[s], run.logs[s], s))
			if err := srv.NewSession(nil, nil).Restart(); err != nil {
				t.Fatalf("point %d shard %d restart: %v", p, s, err)
			}
			for _, idt := range srv.InDoubt() {
				found = true
				if run.stampByTID(idt.TID) != nil {
					withPages = true
				}
			}
		}
		if found {
			indoubt++
		}
		if withPages {
			probed++
		}
	}
	t.Logf("stall points: %d, leaving in-doubt branches: %d, with probeable stamps: %d",
		msgs, indoubt, probed)
	if indoubt < int(msgs)/10 {
		t.Errorf("only %d of %d stall points left an in-doubt branch: sweep is (nearly) vacuous", indoubt, msgs)
	}
	if probed == 0 {
		t.Error("no in-doubt branch maps to a journaled stamp: lock probes never run")
	}
}

// TestTwoPCSweepDeterminism re-counts the 2PC point spaces: both the fuse
// sequence and the message sequence must be identical across runs, or a
// printed reproduction recipe would replay a different execution.
func TestTwoPCSweepDeterminism(t *testing.T) {
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			fuseA, msgA, err := CountTwoPCPoints(sys, *sweepSeed)
			if err != nil {
				t.Fatalf("counting pass A: %v", err)
			}
			fuseB, msgB, err := CountTwoPCPoints(sys, *sweepSeed)
			if err != nil {
				t.Fatalf("counting pass B: %v", err)
			}
			if fuseA != fuseB || msgA != msgB {
				t.Errorf("counting passes disagree: (%d,%d) vs (%d,%d) fuse/message points",
					fuseA, msgA, fuseB, msgB)
			}
		})
	}
}
