// Package harness reproduces the paper's experiments: for every table and
// figure in §4–§5 it configures the software versions of Table 3, builds the
// OO7 database, runs the traversals on the simulated 1995 testbed, and
// reports the same rows or series the paper plots.
//
// The database is built in real mode (no cost accounting), then one
// simulated client workstation per paper client runs warm-up and measured
// traversals against the shared server. Response time is simulated seconds
// per traversal transaction; throughput is transactions per simulated
// minute summed over clients; the write counts of Figures 9 and 14 are the
// per-transaction client page-shipment counts.
package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/oo7"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wire"
)

// SystemSpec is one software version with its client memory split.
type SystemSpec struct {
	Name   string
	Scheme client.Scheme
	Mode   server.Mode
	PoolMB float64 // client buffer pool
	RecMB  float64 // recovery buffer (0 for WPL)
	// BlockSize overrides the sub-page block size for SD/SL (default 64;
	// the paper experimented with 8-64 bytes, §3.3).
	BlockSize int
	// Adaptive enables the §7 future-work dynamic memory split.
	Adaptive bool
}

// Options tunes a reproduction run.
type Options struct {
	// Scale divides the database size and the client memory budgets by this
	// factor, preserving the shapes while shrinking runtimes (1 = the
	// paper's full configuration).
	Scale int
	// Clients lists the client counts to sweep (default 1..5).
	Clients []int
	// Warm and Measure are traversals per client before and during
	// measurement (defaults 1 and 2).
	Warm, Measure int
	// Params overrides the testbed cost model.
	Params *costmodel.Params
	// Seed fixes database generation.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{1, 2, 3, 4, 5}
	}
	if o.Warm == 0 {
		o.Warm = 1
	}
	if o.Measure == 0 {
		o.Measure = 2
	}
	if o.Params == nil {
		o.Params = costmodel.Default1995()
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// Cell is one measured point: a system at a client count.
type Cell struct {
	System   string
	Clients  int
	RespTime time.Duration // mean response time per traversal transaction
	TPM      float64       // total throughput, transactions per minute
	// Per-transaction client page writes (Figures 9 and 14).
	LogPages   float64
	TotalPages float64
	// Diagnostics.
	Spills     float64 // recovery-buffer spills per transaction
	Fetches    float64 // server page fetches per transaction (paging)
	Updates    float64 // update operations per transaction
	NetUtil    float64 // network utilization during the run
	LogUtil    float64 // log disk utilization
	DataUtil   float64 // data disk utilization
	ServerUtil float64 // server CPU utilization
}

// scaleMB converts a memory budget in MB to bytes, applying the scale.
func scaleMB(mb float64, scale int) int {
	b := int(mb * (1 << 20) / float64(scale))
	if b < page.Size {
		b = page.Size
	}
	return b
}

// RunCustom runs an arbitrary system specification over a database and
// traversal — the entry point for ablation studies (block-size sweeps,
// memory-split sweeps, the adaptive policy).
func RunCustom(spec SystemSpec, dbCfg oo7.Config, tr oo7.Traversal, o Options) ([]Cell, error) {
	return runSystem(spec, dbCfg, tr, o)
}

// runSystem builds one server+database for spec and sweeps the client
// counts, returning one Cell per count.
func runSystem(spec SystemSpec, dbCfg oo7.Config, tr oo7.Traversal, o Options) ([]Cell, error) {
	o = o.withDefaults()
	dbCfg = dbCfg.Scale(o.Scale)
	srv := server.New(server.Config{
		Mode: spec.Mode,
		// The paper's server: 36 MB of memory, scaled with the database.
		PoolPages:       maxInt(64, (36<<20)/page.Size/o.Scale),
		LogCapacity:     512 << 20,
		CheckpointEvery: 8,
	})
	// Build the database in real mode; the loader's scheme must match the
	// server (a WPL server accepts no log records).
	loaderScheme := client.PD
	if spec.Mode == server.ModeWPL {
		loaderScheme = client.WPL
	}
	builder := client.New(client.Config{
		Scheme:         loaderScheme,
		PoolPages:      2048,
		RecoveryBytes:  8 << 20,
		ShipDirtyPages: spec.Mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))
	db, err := oo7.Build(builder, dbCfg, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("harness: building database: %w", err)
	}
	var cells []Cell
	for _, n := range o.Clients {
		cell, err := runCell(spec, srv, db, tr, n, o)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runCell runs n simulated clients, each traversing its private module.
func runCell(spec SystemSpec, srv *server.Server, db *oo7.Database, tr oo7.Traversal, n int, o Options) (Cell, error) {
	if n > len(db.Modules) {
		return Cell{}, fmt.Errorf("harness: %d clients but %d modules", n, len(db.Modules))
	}
	k := sim.New()
	tb := costmodel.NewTestbed(k, o.Params)
	type clientOut struct {
		rts      []time.Duration
		logBytes int64
		dirtyPgs int64
		spills   int64
		fetches  int64
		updates  int64
		span     time.Duration
		err      error
	}
	outs := make([]clientOut, n)
	measureStart := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		i := i
		cpu := k.NewResource(fmt.Sprintf("client%d-cpu", i))
		k.Spawn(fmt.Sprintf("client%d", i), func(proc *sim.Proc) {
			meter := tb.Meter(proc, cpu)
			cli := client.New(client.Config{
				Scheme:                 spec.Scheme,
				PoolPages:              maxInt(16, scaleMB(spec.PoolMB, o.Scale)/page.Size),
				RecoveryBytes:          scaleMB(spec.RecMB, o.Scale),
				BlockSize:              spec.BlockSize,
				ShipDirtyPages:         spec.Mode != server.ModeREDO,
				AdaptiveRecoveryBuffer: spec.Adaptive,
				Meter:                  meter,
				Params:                 o.Params,
			}, wire.NewDirect(srv, meter, o.Params))
			mod := &db.Modules[i]
			for w := 0; w < o.Warm; w++ {
				if _, err := oo7.Run(cli, mod, tr, meter, o.Params); err != nil {
					outs[i].err = err
					return
				}
			}
			meter.Flush()
			measureStart[i] = proc.Now()
			for r := 0; r < o.Measure; r++ {
				before := cli.Stats()
				start := proc.Now()
				res, err := oo7.Run(cli, mod, tr, meter, o.Params)
				if err != nil {
					outs[i].err = err
					return
				}
				meter.Flush()
				after := cli.Stats()
				outs[i].rts = append(outs[i].rts, proc.Now()-start)
				outs[i].logBytes += after.LogBytesShipped - before.LogBytesShipped
				outs[i].dirtyPgs += after.DirtyPagesShipped - before.DirtyPagesShipped
				outs[i].spills += after.RecbufSpills - before.RecbufSpills
				outs[i].fetches += after.PagesFetched - before.PagesFetched
				outs[i].updates += int64(res.Updates)
			}
			outs[i].span = proc.Now() - measureStart[i]
		})
	}
	k.Run()
	cell := Cell{System: spec.Name, Clients: n}
	var rtSum time.Duration
	var rtCount int
	var txns int64
	for i := range outs {
		if outs[i].err != nil {
			return cell, fmt.Errorf("harness: client %d: %w", i, outs[i].err)
		}
		for _, rt := range outs[i].rts {
			rtSum += rt
			rtCount++
		}
		txns += int64(len(outs[i].rts))
		if outs[i].span > 0 {
			cell.TPM += float64(len(outs[i].rts)) / outs[i].span.Minutes()
		}
		logPgs := (outs[i].logBytes + page.Size - 1) / page.Size
		cell.LogPages += float64(logPgs)
		cell.TotalPages += float64(logPgs + outs[i].dirtyPgs)
		cell.Spills += float64(outs[i].spills)
		cell.Fetches += float64(outs[i].fetches)
		cell.Updates += float64(outs[i].updates)
	}
	if rtCount > 0 {
		cell.RespTime = rtSum / time.Duration(rtCount)
	}
	if txns > 0 {
		cell.LogPages /= float64(txns)
		cell.TotalPages /= float64(txns)
		cell.Spills /= float64(txns)
		cell.Fetches /= float64(txns)
		cell.Updates /= float64(txns)
	}
	cell.NetUtil = tb.Net.Utilization()
	cell.LogUtil = tb.LogDisk.Utilization()
	cell.DataUtil = tb.DataDisk.Utilization()
	cell.ServerUtil = tb.ServerCPU.Utilization()
	return cell, nil
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// CSV renders the table as comma-separated values (title as a comment
// line), for plotting the figures with external tools.
func (t *Table) CSV() string {
	out := "# " + t.Title + "\n"
	row := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i > 0 {
				s += ","
			}
			s += c
		}
		return s + "\n"
	}
	out += row(t.Header)
	for _, r := range t.Rows {
		out += row(r)
	}
	return out
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := t.Title + "\n"
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Header)
	for _, r := range t.Rows {
		out += line(r)
	}
	return out
}

// cellsToSeries pivots cells into one row per system with a column per
// client count, formatting each value with fn.
func cellsToSeries(title string, cells []Cell, clients []int, fn func(Cell) string) *Table {
	bySystem := map[string]map[int]Cell{}
	var order []string
	for _, c := range cells {
		if bySystem[c.System] == nil {
			bySystem[c.System] = map[int]Cell{}
			order = append(order, c.System)
		}
		bySystem[c.System][c.Clients] = c
	}
	sort.Strings(order)
	t := &Table{Title: title, Header: []string{"system"}}
	for _, n := range clients {
		t.Header = append(t.Header, fmt.Sprintf("%d client(s)", n))
	}
	for _, sys := range order {
		row := []string{sys}
		for _, n := range clients {
			row = append(row, fn(bySystem[sys][n]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
