package harness

// Corruption sweep: systematic media-integrity testing for all five
// recovery schemes.
//
// The crash sweep (sweep.go) kills the server; the media sweep
// (mediasweep.go) destroys the whole volume. This sweep damages the volume
// page by page — silent bit rot and torn writes, the failures the checksum
// envelope (internal/disk/checksum.go) exists to catch — and demands that
// the server detect every damaged page through the envelope and heal it
// byte-for-byte from its own redundancy: the live log, or the archive's
// backup plus per-page redo. Three scenarios, in sequence over one seeded
// workload:
//
//  1. Online scrub: with the server running, every stored page (the
//     superblock included) is rotted or torn below the checksum wrapper,
//     then one full Scrub pass must detect and repair all of them, leaving
//     the volume byte-identical to its pristine dump. A second round of
//     damage and scrubbing must produce the identical volume again (repair
//     is deterministic and idempotent), and the workload's committed values
//     must all survive.
//
//  2. Restart repair: the server crashes, every page is damaged again, and
//     Restart must come back — the corrupt superblock rebuilt from the
//     log's newest checkpoint record, corrupt pages demand-read by redo
//     repaired in place — with every committed value intact and, after a
//     healing scrub, the volume again byte-identical.
//
//  3. Unrepairable is loud: a fresh server over the same volume with a
//     fresh (empty) log and no archive wired cannot rebuild a damaged
//     page. Both a demand read and a scrub must fail with errors wrapping
//     disk.ErrCorruptPage and server.ErrUnrepairable — damaged bytes are
//     never silently served.
//
// Damage is injected below disk.Checksummed straight into the raw volume
// (faultinject.RotPage / TearPage), exactly where real media damage lands.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/archive"
	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/oo7"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Scrub sweep sizing: the server pool is kept far smaller than the volume
// so most repairs cannot be served from a pooled frame and must go through
// per-page log replay or the archive; the archive segments are tiny so the
// stamp history seals into several of them.
const (
	scrubStamps       = 48
	scrubBackupAt     = scrubStamps / 3 // stamp index where the online backup runs
	scrubSegmentBytes = 8 << 10
	scrubMaxLag       = 64 << 10
	scrubServerPool   = 4
)

// ScrubFailure is one violated integrity invariant.
type ScrubFailure struct {
	System string
	Seed   int64
	Detail string
}

// Error formats the failure with its reproduction coordinates.
func (f *ScrubFailure) Error() string {
	return fmt.Sprintf("scrub-sweep failure: system=%s seed=%d: %s", f.System, f.Seed, f.Detail)
}

// ScrubSweepReport summarizes a corruption sweep over one system.
type ScrubSweepReport struct {
	System   string
	Seed     int64
	Pages    int   // data pages damaged per round (superblock excluded)
	Online   int64 // pages repaired by the two online scrub rounds
	Restart  int64 // pages repaired during and after the crash-restart round
	Failures []*ScrubFailure
}

// corruptAll damages every page in ids on the raw volume: alternating
// single-bit rot and torn tails, except that pages whose first sector is
// blank are always rotted (tearing one would leave an all-zero page, which
// is a legitimately absent page, not detectable damage). Returns the number
// of pages damaged.
func corruptAll(mem disk.Store, ids []page.ID, pristine map[page.ID][]byte, seed int64) (int, error) {
	blank := func(b []byte) bool {
		for _, c := range b {
			if c != 0 {
				return false
			}
		}
		return true
	}
	for i, pid := range ids {
		tear := i%2 == 1
		if img := pristine[pid]; tear && img != nil && blank(img[:faultinject.SectorSize]) {
			tear = false
		}
		if tear {
			if err := faultinject.TearPage(mem, pid, 1); err != nil {
				return i, fmt.Errorf("tearing page %v: %w", pid, err)
			}
		} else {
			if _, err := faultinject.RotPage(mem, pid, seed); err != nil {
				return i, fmt.Errorf("rotting page %v: %w", pid, err)
			}
		}
	}
	return len(ids), nil
}

// ScrubSweep runs the corruption sweep for one system. A non-nil report
// with failures means integrity invariants were violated; an error means
// the sweep itself could not run.
func ScrubSweep(sys SweepSystem, seed int64) (*ScrubSweepReport, error) {
	mem := disk.NewMemStore()
	cs := disk.NewChecksummed(mem)
	log := wal.New(sweepLogCapacity)
	blobs := archive.NewMemBlobs()
	// The archiver scans the checksummed store: backups hold verified bytes.
	arch, err := archive.NewArchiver(log, cs, blobs, archive.Options{
		SegmentBytes: scrubSegmentBytes,
		MaxLagBytes:  scrubMaxLag,
	})
	if err != nil {
		return nil, err
	}
	cfg := server.Config{
		Mode:            sys.Mode,
		Store:           cs,
		Log:             log,
		LogCapacity:     sweepLogCapacity,
		PoolPages:       scrubServerPool,
		CheckpointEvery: sweepCkptEvery,
	}
	archive.Wire(&cfg, arch)
	srv := server.New(cfg)
	defer srv.Close()
	sn := srv.NewSession(nil, nil)
	cli := client.New(client.Config{
		Scheme:         sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: sys.Mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))

	// The stamp workload, journaled exactly like the media sweep's.
	run := &mediaRun{}
	db, err := oo7.Build(cli, sweepDBConfig(), seed)
	if err != nil {
		return nil, fmt.Errorf("scrub sweep build (system=%s seed=%d): %w", sys.Name, seed, err)
	}
	run.parts, err = oo7.CollectAtomicParts(cli, &db.Modules[0])
	if err != nil {
		return nil, fmt.Errorf("scrub sweep collect: %w", err)
	}
	tx, err := cli.Begin()
	if err != nil {
		return nil, err
	}
	for _, p := range run.parts {
		x, _, err := oo7.ReadXY(tx, p)
		if err != nil {
			tx.Abort()
			return nil, fmt.Errorf("scrub sweep baseline read: %w", err)
		}
		run.init = append(run.init, x)
	}
	tx.Abort()
	stamp := func(i int) error {
		st := mediaTxn{
			val:   uint32(20001 + i),
			parts: [2]page.OID{run.parts[(2*i)%len(run.parts)], run.parts[(2*i+1)%len(run.parts)]},
		}
		tx, err := cli.Begin()
		if err != nil {
			return fmt.Errorf("scrub sweep stamp %d begin: %w", i, err)
		}
		st.tid = tx.TID()
		for _, p := range st.parts {
			if err := oo7.StampXY(tx, p, st.val); err != nil {
				tx.Abort()
				return fmt.Errorf("scrub sweep stamp %d write: %w", i, err)
			}
		}
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("scrub sweep stamp %d commit: %w", i, err)
		}
		run.txns = append(run.txns, st)
		return nil
	}
	for i := 0; i < scrubStamps; i++ {
		if i == scrubBackupAt {
			// Online backup mid-workload: later stamps reach the damaged
			// pages only through archived-log (and live-log) per-page redo.
			if _, err := arch.Backup(); err != nil {
				return nil, fmt.Errorf("scrub sweep backup: %w", err)
			}
		}
		if err := stamp(i); err != nil {
			return nil, err
		}
	}
	log.Force()
	if err := arch.Drain(); err != nil {
		return nil, err
	}
	// Quiesce: every committed state reaches the volume, giving the pristine
	// image every repair below must reproduce exactly.
	if err := sn.FlushAll(); err != nil {
		return nil, fmt.Errorf("scrub sweep quiesce: %w", err)
	}
	pristine, err := dumpStore(mem) // raw bytes, checksum trailers included
	if err != nil {
		return nil, err
	}
	var sb0 [page.Size]byte
	if err := mem.ReadPage(0, sb0[:]); err != nil {
		return nil, fmt.Errorf("scrub sweep superblock dump: %w", err)
	}
	ids := make([]page.ID, 0, len(pristine)+1)
	ids = append(ids, 0)
	for pid := range pristine {
		ids = append(ids, pid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	report := &ScrubSweepReport{System: sys.Name, Seed: seed, Pages: len(pristine)}
	bad := func(format string, args ...interface{}) {
		report.Failures = append(report.Failures, &ScrubFailure{
			System: sys.Name, Seed: seed, Detail: fmt.Sprintf(format, args...)})
	}
	// diffVolume checks the volume against the pristine dump; withSB also
	// compares the superblock (restart legitimately rewrites it, so only the
	// online rounds check it).
	diffVolume := func(when string, withSB bool) error {
		now, err := dumpStore(mem)
		if err != nil {
			return err
		}
		if d := diffDumps(pristine, now); d != "" {
			bad("%s: repaired volume differs from pristine: %s", when, d)
		} else if d := diffDumps(now, pristine); d != "" {
			bad("%s: repaired volume differs from pristine: %s", when, d)
		}
		if withSB {
			var got [page.Size]byte
			if err := mem.ReadPage(0, got[:]); err != nil {
				bad("%s: superblock unreadable after repair: %v", when, err)
			} else if !bytes.Equal(sb0[:], got[:]) {
				bad("%s: repaired superblock differs from pristine", when)
			}
		}
		return nil
	}
	verifyValues := func(when string) {
		want := run.modelAfter(len(run.txns))
		vcli := client.New(client.Config{
			Scheme:         sys.Scheme,
			PoolPages:      sweepClientPool,
			ShipDirtyPages: sys.Mode != server.ModeREDO,
		}, wire.NewDirect(srv, nil, nil))
		tx, err := vcli.Begin()
		if err != nil {
			bad("%s: verification begin failed: %v", when, err)
			return
		}
		defer tx.Abort()
		for i, p := range run.parts {
			x, _, err := oo7.ReadXY(tx, p)
			if err != nil {
				bad("%s: verification read of part %v failed: %v", when, p, err)
				return
			}
			if x != want[i] {
				bad("%s: part %v = %d, want %d", when, p, x, want[i])
				return
			}
		}
	}

	// Scenario 1: online scrub. Two rounds of damage-everything followed by
	// one full scrub pass each; both must restore the identical volume.
	for round := int64(1); round <= 2; round++ {
		n, err := corruptAll(mem, ids, pristine, seed+round*0x9e3779b9)
		if err != nil {
			return nil, err
		}
		rep, serr := sn.Scrub(0)
		if serr != nil {
			bad("online round %d: scrub failed: %v", round, serr)
			return report, nil
		}
		if int(rep.Failures) != n || rep.Repaired != rep.Failures || rep.Unrepairable != 0 {
			bad("online round %d: damaged %d pages, scrub saw %d failures, %d repaired, %d unrepairable",
				round, n, rep.Failures, rep.Repaired, rep.Unrepairable)
		}
		report.Online += rep.Repaired
		if err := diffVolume(fmt.Sprintf("online round %d", round), true); err != nil {
			return nil, err
		}
	}
	verifyValues("online")

	// Scenario 2: crash, damage everything, restart. The superblock heals
	// from the log's newest checkpoint record; pages redo demand-reads heal
	// in place; a follow-up scrub heals the pages redo never touched.
	srv.Crash()
	if _, err := corruptAll(mem, ids, pristine, seed^0x5eedc0de); err != nil {
		return nil, err
	}
	before := srv.Stats().PagesRepaired
	if err := sn.Restart(); err != nil {
		bad("restart over fully damaged volume failed: %v", err)
		return report, nil
	}
	verifyValues("restart")
	rep, serr := sn.Scrub(0)
	if serr != nil {
		bad("post-restart scrub failed: %v", serr)
		return report, nil
	}
	if rep.Unrepairable != 0 {
		bad("post-restart scrub: %d unrepairable pages", rep.Unrepairable)
	}
	report.Restart = srv.Stats().PagesRepaired - before
	// The restart checkpoint rewrites the superblock, so compare data pages
	// only.
	if err := diffVolume("post-restart", false); err != nil {
		return nil, err
	}

	// Scenario 3: a fresh server over the same volume with a fresh, empty
	// log and no archive wired has no redundancy left. Damage must surface
	// as a typed, loud failure — never as silently served bytes.
	srv2 := server.New(server.Config{
		Mode:            sys.Mode,
		Store:           cs,
		Log:             wal.New(sweepLogCapacity),
		LogCapacity:     sweepLogCapacity,
		PoolPages:       scrubServerPool,
		CheckpointEvery: sweepCkptEvery,
	})
	defer srv2.Close()
	sn2 := srv2.NewSession(nil, nil)
	if err := sn2.Restart(); err != nil {
		bad("process restart on the healed volume failed: %v", err)
		return report, nil
	}
	target := run.parts[0].Page
	if _, err := faultinject.RotPage(mem, target, seed^0x0ddba11); err != nil {
		return nil, err
	}
	svc := wire.NewDirect(srv2, nil, nil)
	tid, err := svc.Begin()
	if err != nil {
		return nil, err
	}
	data, rerr := svc.ReadPage(tid, target, lock.Shared)
	svc.Abort(tid)
	switch {
	case rerr == nil:
		bad("unrepairable page %v: demand read served %d bytes instead of failing", target, len(data))
	case !errors.Is(rerr, disk.ErrCorruptPage) || !errors.Is(rerr, server.ErrUnrepairable):
		bad("unrepairable page %v: demand read failed untyped: %v", target, rerr)
	}
	rep2, serr2 := sn2.Scrub(0)
	switch {
	case serr2 == nil:
		bad("unrepairable page %v: scrub reported success (%d repaired)", target, rep2.Repaired)
	case !errors.Is(serr2, disk.ErrCorruptPage) || !errors.Is(serr2, server.ErrUnrepairable):
		bad("unrepairable page %v: scrub failed untyped: %v", target, serr2)
	case rep2.Unrepairable != 1:
		bad("unrepairable page %v: scrub counted %d unrepairable, want 1", target, rep2.Unrepairable)
	}
	return report, nil
}
