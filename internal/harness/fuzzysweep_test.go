package harness

import (
	"strings"
	"testing"

	"repro/internal/server"
)

// TestFuzzySweepSmoke runs the fuzzy-checkpoint + cleaner sweep for every
// scheme: enumerate the variant's crash points, replay a budget-limited
// sample (which includes points inside cleaner page writes and inside the
// checkpoint-record → superblock window), and fail with a reproduction
// recipe for each violated recovery invariant.
func TestFuzzySweepSmoke(t *testing.T) {
	budget := replayBudget(t)
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := FuzzySweep(sys, *sweepSeed, budget)
			if err != nil {
				t.Fatalf("fuzzy sweep: %v", err)
			}
			if rep.Points < 200 {
				t.Errorf("only %d crash points enumerated, want >= 200 (workload too small)", rep.Points)
			}
			t.Logf("%s: %d crash points, replayed %d, %d failures",
				sys.Name, rep.Points, len(rep.Replayed), len(rep.Failures))
			for _, f := range rep.Failures {
				t.Errorf("%v", f)
			}
		})
	}
}

// TestFuzzySweepExercisesCleanerAndCkpt checks the variant actually reaches
// the machinery it exists to crash: the counting pass must show cleaner page
// writes (except under WPL, where Clean is by design a no-op) and completed
// fuzzy checkpoints, and the fuzzy variant must enumerate its own point
// sequence (its failures print ReplayFuzzyCrashPoint, so the counts are
// allowed to differ from the sharp sweep's).
func TestFuzzySweepExercisesCleanerAndCkpt(t *testing.T) {
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			run, n, err := CountFuzzyCrashPoints(sys, *sweepSeed)
			if err != nil {
				t.Fatalf("counting pass: %v", err)
			}
			st := run.srv.Stats()
			if sys.Mode != server.ModeWPL && st.CleanerPages == 0 {
				t.Errorf("cleaner wrote no pages: the sweep cannot hit crash points inside cleaner writes")
			}
			if sys.Mode == server.ModeWPL && st.CleanerPages != 0 {
				t.Errorf("cleaner wrote %d pages under WPL; Clean must be a no-op there", st.CleanerPages)
			}
			if st.Checkpoints == 0 {
				t.Errorf("no fuzzy checkpoint completed: the sweep cannot hit mid-checkpoint points")
			}
			if st.CkptStallNs != 0 {
				t.Errorf("fuzzy checkpoints stalled commits for %dns, want 0 (that is the point of fuzzy)", st.CkptStallNs)
			}

			// Determinism: the fuzzy variant must honor the same
			// reproducibility contract as the sharp sweep.
			run2, n2, err := CountFuzzyCrashPoints(sys, *sweepSeed)
			if err != nil {
				t.Fatalf("counting pass B: %v", err)
			}
			if n != n2 {
				t.Fatalf("fuzzy crash-point count not deterministic: %d then %d", n, n2)
			}
			if len(run.txns) != len(run2.txns) {
				t.Fatalf("journal length differs: %d vs %d", len(run.txns), len(run2.txns))
			}
			for i := range run.txns {
				a, b := run.txns[i], run2.txns[i]
				if a.pre != b.pre || a.post != b.post || a.val != b.val || a.parts != b.parts {
					t.Fatalf("journal entry %d differs: %+v vs %+v", i, a, b)
				}
			}
			t.Logf("%s: %d fuzzy crash points, cleaner wrote %d pages over %d passes, %d checkpoints",
				sys.Name, n, st.CleanerPages, st.CleanerPasses, st.Checkpoints)
		})
	}
}

// TestFuzzyFailureReproString pins that fuzzy-variant failures print the
// fuzzy replay entry point (a sharp recipe would replay a different point
// sequence and silently "not reproduce").
func TestFuzzyFailureReproString(t *testing.T) {
	f := &SweepFailure{System: "PD-ESM", Seed: 1, Point: 42, Detail: "x", Variant: "fuzzy"}
	want := `(reproduce: harness.ReplayFuzzyCrashPoint("PD-ESM", 1, 42))`
	if got := f.Error(); !strings.Contains(got, want) {
		t.Errorf("fuzzy failure repro = %q, want it to contain %q", got, want)
	}
	f.Variant = ""
	want = `(reproduce: harness.ReplayCrashPoint("PD-ESM", 1, 42))`
	if got := f.Error(); !strings.Contains(got, want) {
		t.Errorf("sharp failure repro = %q, want it to contain %q", got, want)
	}
}
