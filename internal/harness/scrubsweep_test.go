package harness

import "testing"

func TestScrubSweepSmoke(t *testing.T) {
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			rep, err := ScrubSweep(sys, 7)
			if err != nil {
				t.Fatalf("scrub sweep did not run: %v", err)
			}
			for _, f := range rep.Failures {
				t.Error(f)
			}
			if rep.Pages < 4 {
				t.Errorf("workload produced only %d data pages; the sweep is not meaningful", rep.Pages)
			}
			if rep.Online < int64(2*rep.Pages) {
				t.Errorf("online rounds repaired %d pages, want at least %d (2 rounds over the volume)",
					rep.Online, 2*rep.Pages)
			}
			if rep.Restart < int64(rep.Pages) {
				t.Errorf("restart round repaired %d pages, want at least %d", rep.Restart, rep.Pages)
			}
			t.Logf("system=%s pages=%d online-repairs=%d restart-repairs=%d",
				sys.Name, rep.Pages, rep.Online, rep.Restart)
		})
	}
}
