package harness

import (
	"strings"
	"testing"
)

// TestReplSweepSmoke runs the replication failover sweep for every scheme:
// record the shipped stream, replay a budget-limited sample of promotion
// cuts, and fail with a reproduction recipe for each violated failover
// invariant (promotion diverging from single-node restart, a lost acked
// commit, a surviving unacked one, a torn object, or a non-idempotent
// post-promotion restart).
func TestReplSweepSmoke(t *testing.T) {
	budget := replayBudget(t)
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := ReplSweep(sys, *sweepSeed, budget)
			if err != nil {
				t.Fatalf("repl sweep: %v", err)
			}
			if rep.Points < 200 {
				t.Errorf("only %d shipped records, want >= 200 (workload too small)", rep.Points)
			}
			t.Logf("%s: %d shipped records, replayed %d cuts, %d failures",
				sys.Name, rep.Points, len(rep.Replayed), len(rep.Failures))
			for _, f := range rep.Failures {
				t.Errorf("%v", f)
			}
		})
	}
}

// TestReplSweepStreamDeterministic pins the reproducibility contract: the
// same (system, seed) records the same stream and journal, so a printed cut
// replays the same promotion.
func TestReplSweepStreamDeterministic(t *testing.T) {
	sys := SweepSystems()[0]
	runA, err := runReplWorkload(sys, *sweepSeed)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := runReplWorkload(sys, *sweepSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(runA.recs) != len(runB.recs) {
		t.Fatalf("stream length not deterministic: %d then %d", len(runA.recs), len(runB.recs))
	}
	for i := range runA.ends {
		if runA.ends[i] != runB.ends[i] {
			t.Fatalf("record %d ends at %d then %d", i, runA.ends[i], runB.ends[i])
		}
	}
	if len(runA.txns) != len(runB.txns) {
		t.Fatalf("journal length differs: %d vs %d", len(runA.txns), len(runB.txns))
	}
	for i := range runA.txns {
		a, b := runA.txns[i], runB.txns[i]
		if a.pre != b.pre || a.post != b.post || a.val != b.val || a.parts != b.parts {
			t.Fatalf("journal entry %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestReplFailureReproString pins that repl-variant failures print the repl
// replay entry point.
func TestReplFailureReproString(t *testing.T) {
	f := &SweepFailure{System: "WPL", Seed: 1, Point: 7, Detail: "x", Variant: "repl"}
	want := `(reproduce: harness.ReplayReplCut("WPL", 1, 7))`
	if got := f.Error(); !strings.Contains(got, want) {
		t.Errorf("repl failure repro = %q, want it to contain %q", got, want)
	}
}
