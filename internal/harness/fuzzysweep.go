package harness

// Fuzzy-checkpoint + page-cleaner crash-point sweep (DESIGN.md §13).
//
// Same workload, fuse, and recovery invariants as the classic sweep
// (sweep.go), but the server runs with FuzzyCheckpoints enabled and the page
// cleaner is driven synchronously between stamp transactions. That folds two
// new families of stable-storage events into the numbered crash-point
// sequence:
//
//   - cleaner page writes: each WritePage a Clean batch issues (and any WAL
//     force it performs first to honor the WAL rule) is a crash point, so the
//     sweep crashes the server halfway through cleaner batches — after the
//     log force but before the data write, and between writes of one batch;
//   - the fuzzy-checkpoint window: checkpointCore appends the checkpoint
//     record, forces the log (stable-end advance = one event) and then
//     writes the superblock master record (one data-write event), so sampled
//     points land between the checkpoint record becoming durable and the
//     master record pointing at it — the classic "crash mid-checkpoint"
//     case, which recovery must survive by using the previous checkpoint.
//
// Commit backpressure (DirtyPageTarget) is also set, so inline Clean calls
// on the commit path contribute points inside commit brackets. The
// background cleaner goroutine stays off: a ticker-driven worker would make
// event numbering racy, while the synchronous drive hits the same code path
// (Session.Clean) deterministically.
//
// Failures print ReplayFuzzyCrashPoint recipes; the classic sweep's print
// ReplayCrashPoint. The two variants never share point numbers.

import "fmt"

// FuzzySweep enumerates every crash point of the fuzzy-checkpoint variant
// for the system and replays up to budget of them (≤ 0 = all), exactly as
// Sweep does for the sharp variant.
func FuzzySweep(sys SweepSystem, seed int64, budget int) (*SweepReport, error) {
	return sweepVariantRun(sys, seed, budget, fuzzySweepVariant())
}

// ReplayFuzzyCrashPoint re-runs one fuzzy-variant crash point — the
// reproduction entry point printed by FuzzySweep failures. system must be a
// SweepSystems name.
func ReplayFuzzyCrashPoint(system string, seed int64, point int64) (*SweepFailure, error) {
	return replayNamed(system, seed, point, fuzzySweepVariant())
}

// CountFuzzyCrashPoints runs the fuzzy counting pass alone, checking that
// the workload completes and returning the crash-point count (for coverage
// floors and determinism checks).
func CountFuzzyCrashPoints(sys SweepSystem, seed int64) (*sweepRun, int64, error) {
	run, n, err := countCrashPoints(sys, seed, fuzzySweepVariant())
	if err != nil {
		return nil, 0, fmt.Errorf("fuzzy %w", err)
	}
	return run, n, nil
}
