package harness

// Media-failure sweep: systematic backup + archived-log recovery testing
// for all five recovery schemes.
//
// Where the crash-point sweep (sweep.go) kills the server and recovers from
// the *surviving* volume and log, the media sweep destroys the volume
// outright: recovery must come entirely from the archive — the fuzzy online
// backup plus the archived log segments. The sweep runs a stamp workload
// with a live archiver wired in (tiny segments, so the history seals into
// many of them), takes one online backup concurrently with running
// transactions (a genuinely fuzzy copy — no quiesce), and then restores the
// database at a set of cut LSNs:
//
//   - every archive boundary event at or after the backup's fuzz window
//     closes — each sealed segment end and the end of the archive — which
//     is exactly the set of states a media failure can strand the archive
//     in, since segments are written atomically;
//   - a budget of sampled record boundaries in between: point-in-time
//     recovery cuts that land mid-segment.
//
// At each cut the restored database must contain exactly the transactions
// whose commit record lies inside the replayed prefix — the durable set is
// derived from the archived log itself, not from workload bookkeeping, so
// the check is self-validating even though the backup races the workload
// (committed-durable, uncommitted-absent, prefix-consistent). Restores are
// also re-run at the first and last cut and the two volumes diffed
// byte-for-byte: media recovery is deterministic and re-runnable. Cuts
// before the first backup's fuzz window closes must fail loudly with
// ErrNoBackup, never hand back a volume missing backup pages.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/archive"
	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/oo7"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Media sweep sizing: fewer stamps than the crash sweep (each cut pays a
// full restore), segments small enough that one run seals dozens.
const (
	mediaStamps       = 64
	mediaSegmentBytes = 8 << 10
	mediaMaxLag       = 64 << 10
	mediaBackupAt     = mediaStamps / 3 // stamp index where the online backup starts
	mediaBackupTxns   = 16              // stamps committed *inside* the backup's page scan
	mediaStepPages    = 2               // backup pages copied between stamp batches
	mediaStepTxns     = 4               // stamps committed per step (the volume is tiny)
	mediaRedoWorkers  = 4
)

// steppedStore interposes on the volume the archiver backs up: every
// stepPages pages handed to the backup's ForEachPage scan, it runs step().
// MediaSweep uses it to commit stamp transactions in the middle of the
// volume copy, deterministically producing the fuzzy backup the fuzz window
// [Start, End) exists for — some pages are copied before an update, some
// after, and replaying the window reconciles them.
type steppedStore struct {
	disk.Store
	stepPages int
	step      func() error
}

func (s *steppedStore) ForEachPage(fn func(id page.ID, data []byte) error) error {
	n := 0
	return s.Store.ForEachPage(func(id page.ID, data []byte) error {
		if s.step != nil && n > 0 && n%s.stepPages == 0 {
			if err := s.step(); err != nil {
				return err
			}
		}
		n++
		return fn(id, data)
	})
}

// mediaTxn journals one stamp transaction: its log-visible transaction id
// and what it wrote. Whether (and where) it committed is read back from the
// archived log, not journaled.
type mediaTxn struct {
	tid   logrec.TID
	parts [2]page.OID
	val   uint32
}

// MediaFailure is one violated media-recovery invariant.
type MediaFailure struct {
	System string
	Seed   int64
	CutLSN uint64
	Detail string
}

// Error formats the failure with its reproduction coordinates.
func (f *MediaFailure) Error() string {
	return fmt.Sprintf("media-recovery failure: system=%s seed=%d cut=%d: %s",
		f.System, f.Seed, f.CutLSN, f.Detail)
}

// MediaSweepReport summarizes a media sweep over one system.
type MediaSweepReport struct {
	System   string
	Seed     int64
	Segments int      // archive segments sealed by the workload
	Backup   uint64   // end of the online backup's fuzz window
	Cuts     []uint64 // cut LSNs actually restored (boundaries + samples)
	Failures []*MediaFailure
}

// mediaRun is the workload state the verifier checks restores against.
type mediaRun struct {
	parts []page.OID
	init  []uint32
	txns  []mediaTxn
}

// modelAfter returns the expected x value of every part once the first k
// stamp transactions (and nothing else) have been applied.
func (r *mediaRun) modelAfter(k int) []uint32 {
	vals := append([]uint32(nil), r.init...)
	idx := make(map[page.OID]int, len(r.parts))
	for i, p := range r.parts {
		idx[p] = i
	}
	for i := 0; i < k; i++ {
		for _, p := range r.txns[i].parts {
			vals[idx[p]] = r.txns[i].val
		}
	}
	return vals
}

// MediaSweep runs the media-failure sweep for one system: workload with a
// wired archiver and a concurrent online backup, then destroy the volume
// and restore at every archive boundary event plus up to budget sampled
// point-in-time cuts. A non-nil report with failures means invariants were
// violated; an error means the sweep itself could not run.
func MediaSweep(sys SweepSystem, seed int64, budget int) (*MediaSweepReport, error) {
	mem := disk.NewMemStore()
	log := wal.New(sweepLogCapacity)
	blobs := archive.NewMemBlobs()
	stepped := &steppedStore{Store: mem, stepPages: mediaStepPages}
	arch, err := archive.NewArchiver(log, stepped, blobs, archive.Options{
		SegmentBytes: mediaSegmentBytes,
		MaxLagBytes:  mediaMaxLag,
	})
	if err != nil {
		return nil, err
	}
	cfg := server.Config{
		Mode:            sys.Mode,
		Store:           mem,
		Log:             log,
		LogCapacity:     sweepLogCapacity,
		PoolPages:       sweepServerPool,
		CheckpointEvery: sweepCkptEvery,
	}
	archive.Wire(&cfg, arch)
	srv := server.New(cfg)
	cli := client.New(client.Config{
		Scheme:         sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: sys.Mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))

	run := &mediaRun{}
	db, err := oo7.Build(cli, sweepDBConfig(), seed)
	if err != nil {
		return nil, fmt.Errorf("media sweep build (system=%s seed=%d): %w", sys.Name, seed, err)
	}
	run.parts, err = oo7.CollectAtomicParts(cli, &db.Modules[0])
	if err != nil {
		return nil, fmt.Errorf("media sweep collect: %w", err)
	}
	tx, err := cli.Begin()
	if err != nil {
		return nil, err
	}
	for _, p := range run.parts {
		x, _, err := oo7.ReadXY(tx, p)
		if err != nil {
			tx.Abort()
			return nil, fmt.Errorf("media sweep baseline read: %w", err)
		}
		run.init = append(run.init, x)
	}
	tx.Abort()

	// One stamp transaction; i indexes the journal.
	stamp := func(i int) error {
		st := mediaTxn{
			val:   uint32(10001 + i),
			parts: [2]page.OID{run.parts[(2*i)%len(run.parts)], run.parts[(2*i+1)%len(run.parts)]},
		}
		tx, err := cli.Begin()
		if err != nil {
			return fmt.Errorf("media sweep stamp %d begin: %w", i, err)
		}
		st.tid = tx.TID()
		for _, p := range st.parts {
			if err := oo7.StampXY(tx, p, st.val); err != nil {
				tx.Abort()
				return fmt.Errorf("media sweep stamp %d write: %w", i, err)
			}
		}
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("media sweep stamp %d commit: %w", i, err)
		}
		run.txns = append(run.txns, st)
		return nil
	}

	// Stamps before the backup, then the online backup with more stamps
	// committing in the middle of its page scan (via steppedStore — the
	// genuinely fuzzy copy the fuzz window exists for), then the rest.
	for i := 0; i < mediaBackupAt; i++ {
		if err := stamp(i); err != nil {
			return nil, err
		}
	}
	next := mediaBackupAt
	stepEnd := mediaBackupAt + mediaBackupTxns
	stepped.step = func() error {
		for i := 0; i < mediaStepTxns && next < stepEnd; i++ {
			if err := stamp(next); err != nil {
				return err
			}
			next++
		}
		return nil
	}
	backup, err := arch.Backup()
	stepped.step = nil
	if err != nil {
		return nil, fmt.Errorf("media sweep online backup: %w", err)
	}
	if next == mediaBackupAt {
		return nil, fmt.Errorf("media sweep: no stamp ran inside the backup scan (volume smaller than %d pages?)", mediaStepPages)
	}
	for i := next; i < mediaStamps; i++ {
		if err := stamp(i); err != nil {
			return nil, err
		}
	}
	log.Force()
	if err := arch.Drain(); err != nil {
		return nil, err
	}
	archEnd := arch.ArchivedUpTo()

	// The volume is now destroyed: everything below reads only the archive.
	report := &MediaSweepReport{System: sys.Name, Seed: seed, Backup: backup.End}
	bad := func(cut uint64, format string, args ...interface{}) {
		report.Failures = append(report.Failures, &MediaFailure{
			System: sys.Name, Seed: seed, CutLSN: cut, Detail: fmt.Sprintf(format, args...)})
	}

	// Read the archived history back: commit-record ends keyed by TID give
	// the durable set at any cut, record ends give the PITR cut candidates.
	segs, err := archive.ListSegments(blobs, arch.Generation())
	if err != nil {
		return nil, err
	}
	report.Segments = len(segs)
	commitEnd := make(map[logrec.TID]uint64)
	boundaries := make(map[uint64]bool) // segment seals: archive boundary events
	var recEnds []uint64                // whole-record ends: PITR candidates
	for _, seg := range segs {
		recs, err := archive.ReadSegment(blobs, seg)
		if err != nil {
			return nil, fmt.Errorf("media sweep reading archive: %w", err)
		}
		for _, r := range recs {
			end := r.LSN + uint64(r.EncodedSize())
			if r.Type == logrec.TypeCommit {
				commitEnd[r.TID] = end
			}
			if end >= backup.End && end <= archEnd {
				recEnds = append(recEnds, end)
			}
		}
		if seg.End >= backup.End {
			boundaries[seg.End] = true
		}
	}
	boundaries[backup.End] = true
	boundaries[archEnd] = true

	cutSet := make(map[uint64]bool, len(boundaries))
	for b := range boundaries {
		cutSet[b] = true
	}
	for _, i := range samplePoints(int64(len(recEnds)), budget) {
		cutSet[recEnds[i-1]] = true
	}
	for c := range cutSet {
		report.Cuts = append(report.Cuts, c)
	}
	sort.Slice(report.Cuts, func(i, j int) bool { return report.Cuts[i] < report.Cuts[j] })

	// A cut before the backup's fuzz window closes has no usable backup and
	// must say so, not hand back a partial volume.
	if backup.End > wal.FirstLSN+1 {
		if _, err := archive.Restore(blobs, archive.RestoreOptions{
			Mode: sys.Mode, TargetLSN: backup.End - 1, RedoWorkers: mediaRedoWorkers,
		}); !errors.Is(err, archive.ErrNoBackup) {
			bad(backup.End-1, "restore before the backup window closed: got %v, want ErrNoBackup", err)
		}
	}

	for _, cut := range report.Cuts {
		if err := verifyMediaCut(sys, run, blobs, commitEnd, cut, cut == report.Cuts[0] || cut == archEnd, bad); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// verifyMediaCut restores at one cut and checks committed-durable /
// uncommitted-absent / torn-free against the durable set the archived log
// defines. When rerun is set the restore is performed twice and the two
// recovered volumes diffed (media recovery is re-runnable and
// deterministic).
func verifyMediaCut(sys SweepSystem, run *mediaRun, blobs archive.BlobStore,
	commitEnd map[logrec.TID]uint64, cut uint64, rerun bool,
	bad func(uint64, string, ...interface{})) error {
	res, err := archive.Restore(blobs, archive.RestoreOptions{
		Mode:        sys.Mode,
		TargetLSN:   cut,
		RedoWorkers: mediaRedoWorkers,
		PoolPages:   sweepServerPool,
	})
	if err != nil {
		bad(cut, "restore failed: %v", err)
		return nil
	}
	defer res.Server.Close()
	if res.CutLSN != cut {
		bad(cut, "restore replayed to %d, want exactly the cut (cuts are record boundaries)", res.CutLSN)
	}

	// The durable set at this cut, straight from the archived log. The
	// client is serial, so it must be a journal prefix.
	kc := 0
	for kc < len(run.txns) {
		if e := commitEnd[run.txns[kc].tid]; e == 0 || e > cut {
			break
		}
		kc++
	}
	for i := kc; i < len(run.txns); i++ {
		if e := commitEnd[run.txns[i].tid]; e != 0 && e <= cut {
			bad(cut, "archived commits not prefix-closed: txn %d committed at %d but txn %d did not", i, e, kc)
			return nil
		}
	}

	want := run.modelAfter(kc)
	vcli := client.New(client.Config{
		Scheme:         sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: sys.Mode != server.ModeREDO,
	}, wire.NewDirect(res.Server, nil, nil))
	tx, err := vcli.Begin()
	if err != nil {
		bad(cut, "verification begin failed: %v", err)
		return nil
	}
	for i, p := range run.parts {
		x, y, err := oo7.ReadXY(tx, p)
		if err != nil {
			tx.Abort()
			bad(cut, "verification read of part %v failed: %v", p, err)
			return nil
		}
		if x != y && (x > 10000 || y > 10000) {
			tx.Abort()
			bad(cut, "part %v has x=%d y=%d (stamps write x=y: torn object update)", p, x, y)
			return nil
		}
		if x != want[i] {
			tx.Abort()
			bad(cut, "part %v = %d, want %d (%d of %d stamp txns committed at this cut)",
				p, x, want[i], kc, len(run.txns))
			return nil
		}
	}
	tx.Abort()

	if rerun {
		res2, err := archive.Restore(blobs, archive.RestoreOptions{
			Mode:        sys.Mode,
			TargetLSN:   cut,
			RedoWorkers: mediaRedoWorkers,
			PoolPages:   sweepServerPool,
		})
		if err != nil {
			bad(cut, "second restore failed (restore must be re-runnable): %v", err)
			return nil
		}
		defer res2.Server.Close()
		a, err := dumpStore(res.Store)
		if err != nil {
			return err
		}
		b, err := dumpStore(res2.Store)
		if err != nil {
			return err
		}
		if diff := diffDumps(a, b); diff != "" {
			bad(cut, "two restores at the same cut diverge: %s", diff)
		}
	}
	return nil
}
