package harness

import "testing"

// TestMediaSweepSmoke restores every archive boundary event plus a budget
// of sampled point-in-time cuts for each of the five recovery schemes.
func TestMediaSweepSmoke(t *testing.T) {
	const seed = 7
	budget := 6
	if testing.Short() {
		budget = 2
	}
	for _, sys := range SweepSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := MediaSweep(sys, seed, budget)
			if err != nil {
				t.Fatalf("media sweep: %v", err)
			}
			for _, f := range rep.Failures {
				t.Error(f)
			}
			if len(rep.Cuts) < 3 {
				t.Fatalf("only %d cuts enumerated (segments=%d backupEnd=%d): sweep too weak",
					len(rep.Cuts), rep.Segments, rep.Backup)
			}
			if rep.Segments < 2 {
				t.Fatalf("only %d archive segments sealed: segment size too large for the workload", rep.Segments)
			}
			t.Logf("system=%s segments=%d cuts=%d backupEnd=%d",
				sys.Name, rep.Segments, len(rep.Cuts), rep.Backup)
		})
	}
}
