package harness

// Crash-point sweep: systematic crash-consistency testing for all five
// recovery schemes.
//
// A sweep runs a deterministic OO7 update workload against an in-process
// server whose two stable-storage channels — the data volume and the WAL's
// durability boundary — feed one shared counting fuse
// (faultinject.Fuse). The counting pass (fuse limit < 0) runs the workload
// to completion and numbers every stable-storage event: each data-page
// write and each advance of the log's stable end is one crash point. A
// replay pass then re-runs the identical workload with the fuse set to a
// chosen point P: events 1..P take effect, and every later write or flush
// is silently swallowed, freezing stable storage in exactly the state a
// server crash immediately after event P would leave — including a stable
// end mid-record when event P was a page-grained ForceFull (the torn-tail
// case). The server is then crashed, a fresh server is built over the
// surviving store and log, Restart runs, and the recovery invariants are
// checked:
//
//   - every transaction whose commit call finished before P is durable;
//   - every transaction not yet committing at P is rolled back;
//   - the one transaction whose commit straddles P is atomic — wholly
//     applied or wholly rolled back, never a mixture;
//   - a second crash+restart with no intervening work changes no data page
//     (restart, including pageLSN-conditional redo, is idempotent).
//
// Everything is deterministic: the same (system, seed) pair enumerates the
// same crash points and produces the same verdicts, so a reported failure
// reproduces from its printed system, seed and point alone via
// ReplayCrashPoint.

import (
	"fmt"
	"sort"

	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/oo7"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// SweepSystem is one recovery scheme under sweep.
type SweepSystem struct {
	Name   string
	Scheme client.Scheme
	Mode   server.Mode
}

// SweepSystems returns the five schemes of the paper, each of which the
// sweep must hold to the same recovery invariants.
func SweepSystems() []SweepSystem {
	return []SweepSystem{
		{Name: "PD-ESM", Scheme: client.PD, Mode: server.ModeESM},
		{Name: "SD-ESM", Scheme: client.SD, Mode: server.ModeESM},
		{Name: "SL-ESM", Scheme: client.SL, Mode: server.ModeESM},
		{Name: "PD-REDO", Scheme: client.PD, Mode: server.ModeREDO},
		{Name: "WPL", Scheme: client.WPL, Mode: server.ModeWPL},
	}
}

// Sweep sizing: small pools force evictions mid-transaction, a low
// checkpoint interval exercises checkpoint-adjacent crash points, and the
// tiny OO7 configuration keeps one replay cheap enough that hundreds run in
// a test.
const (
	sweepStamps      = 104 // stamp transactions after the build
	sweepServerPool  = 96
	sweepClientPool  = 48
	sweepLogCapacity = 32 << 20
	sweepCkptEvery   = 3
)

// sweepVariant tunes the server's checkpoint/cleaner configuration for one
// sweep family. The zero value is the classic sharp-checkpoint sweep; the
// fuzzy variant (fuzzySweepVariant) turns on fuzzy checkpoints, drives the
// page cleaner synchronously between stamp transactions (the background
// goroutine stays off — CleanerEvery is never set — so every stable-storage
// event keeps its deterministic number), and sets a dirty-page target so
// commit backpressure paths run too.
type sweepVariant struct {
	name        string // "" = sharp; appears in failure repro recipes
	fuzzy       bool   // server.Config.FuzzyCheckpoints
	cleanEvery  int    // run a synchronous cleaner batch after every N stamps (0 = never)
	cleanBatch  int    // pages per synchronous cleaner batch
	dirtyTarget int    // server.Config.DirtyPageTarget (backpressure at 2x)
}

// fuzzySweepVariant is the fuzzy-checkpoint + page-cleaner sweep: cleaner
// data writes and the checkpoint-record→superblock window become numbered
// crash points alongside the classic ones.
func fuzzySweepVariant() sweepVariant {
	return sweepVariant{name: "fuzzy", fuzzy: true, cleanEvery: 2, cleanBatch: 8, dirtyTarget: 16}
}

// sweepServerConfig builds the server configuration shared by the workload
// and both recovery servers of a replay; all three must agree or the replay
// would recover under a different regime than the crash was taken under.
func sweepServerConfig(mode server.Mode, store disk.Store, log *wal.Log, v sweepVariant) server.Config {
	return server.Config{
		Mode:             mode,
		Store:            store,
		Log:              log,
		LogCapacity:      sweepLogCapacity,
		PoolPages:        sweepServerPool,
		CheckpointEvery:  sweepCkptEvery,
		FuzzyCheckpoints: v.fuzzy,
		DirtyPageTarget:  v.dirtyTarget,
		CleanerBatch:     v.cleanBatch,
	}
}

// sweepDBConfig is the miniature OO7 database used by the sweep.
func sweepDBConfig() oo7.Config {
	return oo7.Config{
		NumAtomicPerComp: 8,
		NumConnPerAtomic: 2,
		DocumentSize:     256,
		ManualSize:       4 << 10,
		NumCompPerModule: 4,
		NumAssmPerAssm:   2,
		NumAssmLevels:    2,
		NumCompPerAssm:   2,
		NumModules:       1,
	}
}

// stampTxn journals one stamp transaction: the fuse counts bracketing its
// commit call and what it wrote. Transactions run serially, so the set of
// transactions with post ≤ P is always a prefix of the journal.
type stampTxn struct {
	pre, post int64 // fuse counts immediately before and after tx.Commit
	parts     [2]page.OID
	val       uint32
}

// sweepRun is the state of one workload execution (counting or replay).
type sweepRun struct {
	sys   SweepSystem
	fuse  *faultinject.Fuse
	store *faultinject.Store
	log   *wal.Log
	srv   *server.Server
	parts []page.OID
	init  []uint32   // x value of each part before any stamp
	txns  []stampTxn // stamp journal
	// buildEnd is the fuse count when the build (and part collection)
	// finished; crash points at or below it fall inside the build, where
	// only restart success and idempotence are checked.
	buildEnd int64
	// lateErr is a workload error after the fuse blew (expected and benign:
	// the frozen log eventually reports itself full, etc.).
	lateErr error
}

// runWorkload executes the sweep workload with the fuse limited to `limit`
// stable-storage events (< 0 = count only). Workload errors after the fuse
// blows are recorded and benign; before it they are real failures.
func runWorkload(sys SweepSystem, seed int64, limit int64, v sweepVariant) (*sweepRun, error) {
	fuse := faultinject.NewFuse(limit)
	store := faultinject.NewSweepStore(disk.NewMemStore(), fuse)
	log := wal.New(sweepLogCapacity)
	log.SetFlushLimiter(func(proposed uint64) uint64 {
		if _, ok := fuse.Event(); !ok {
			return 0 // frozen: clamped back to the current stable end
		}
		return proposed
	})
	// Head reclamation persists a head pointer: one stable event per advance.
	log.SetTruncateGate(func() bool {
		_, ok := fuse.Event()
		return ok
	})
	srv := server.New(sweepServerConfig(sys.Mode, store, log, v))
	cli := client.New(client.Config{
		Scheme:         sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: sys.Mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))
	// Server-side maintenance session; the fuzzy variant drives the page
	// cleaner through it between stamp transactions.
	srvSn := srv.NewSession(nil, nil)
	run := &sweepRun{sys: sys, fuse: fuse, store: store, log: log, srv: srv}

	fail := func(stage string, err error) (*sweepRun, error) {
		if fuse.Blown() {
			run.lateErr = fmt.Errorf("%s: %w", stage, err)
			return run, nil
		}
		return nil, fmt.Errorf("sweep workload %s (system=%s seed=%d): %w", stage, sys.Name, seed, err)
	}

	db, err := oo7.Build(cli, sweepDBConfig(), seed)
	if err != nil {
		return fail("build", err)
	}
	run.parts, err = oo7.CollectAtomicParts(cli, &db.Modules[0])
	if err != nil {
		return fail("collect", err)
	}
	// Baseline x values (a read-only transaction: no stable events).
	tx, err := cli.Begin()
	if err != nil {
		return fail("baseline begin", err)
	}
	for _, p := range run.parts {
		x, _, err := oo7.ReadXY(tx, p)
		if err != nil {
			tx.Abort()
			return fail("baseline read", err)
		}
		run.init = append(run.init, x)
	}
	tx.Abort()
	run.buildEnd = fuse.Count()

	for i := 0; i < sweepStamps; i++ {
		st := stampTxn{
			val:   uint32(10001 + i),
			parts: [2]page.OID{run.parts[(2*i)%len(run.parts)], run.parts[(2*i+1)%len(run.parts)]},
		}
		tx, err := cli.Begin()
		if err != nil {
			return fail("stamp begin", err)
		}
		for _, p := range st.parts {
			if err := oo7.StampXY(tx, p, st.val); err != nil {
				tx.Abort()
				return fail("stamp write", err)
			}
		}
		st.pre = fuse.Count()
		err = tx.Commit()
		st.post = fuse.Count()
		if err != nil {
			return fail("stamp commit", err)
		}
		run.txns = append(run.txns, st)
		// Fuzzy variant: drive the page cleaner synchronously between stamp
		// transactions. Its data writes and WAL forces feed the same fuse, so
		// crash points land inside cleaner page writes; running it outside
		// the pre/post bracket keeps the commit-prefix invariant intact.
		if v.cleanEvery > 0 && (i+1)%v.cleanEvery == 0 {
			if _, err := srvSn.Clean(v.cleanBatch); err != nil {
				return fail("clean", err)
			}
		}
	}
	return run, nil
}

// modelAfter returns the expected x value of every part once the first k
// stamp transactions (and nothing else) have been applied.
func (r *sweepRun) modelAfter(k int) []uint32 {
	vals := append([]uint32(nil), r.init...)
	idx := make(map[page.OID]int, len(r.parts))
	for i, p := range r.parts {
		idx[p] = i
	}
	for i := 0; i < k; i++ {
		for _, p := range r.txns[i].parts {
			vals[idx[p]] = r.txns[i].val
		}
	}
	return vals
}

// SweepFailure is one violated recovery invariant, with everything needed
// to reproduce it.
type SweepFailure struct {
	System  string
	Seed    int64
	Point   int64
	Detail  string
	Variant string // "" = sharp, "fuzzy" = fuzzy-ckpt, "repl" = failover, "twopc"/"twopc-stall" = sharded 2PC sweeps
}

// Error formats the failure with its reproduction recipe, naming the replay
// entry point for the variant the failure came from.
func (f *SweepFailure) Error() string {
	fn := "harness.ReplayCrashPoint"
	switch f.Variant {
	case "fuzzy":
		fn = "harness.ReplayFuzzyCrashPoint"
	case "repl":
		fn = "harness.ReplayReplCut"
	case "twopc":
		fn = "harness.ReplayTwoPCCrashPoint"
	case "twopc-stall":
		fn = "harness.ReplayTwoPCStallPoint"
	}
	return fmt.Sprintf("crash-point failure: system=%s seed=%d point=%d: %s "+
		"(reproduce: %s(%q, %d, %d))",
		f.System, f.Seed, f.Point, f.Detail, fn, f.System, f.Seed, f.Point)
}

// SweepReport summarizes a sweep over one system.
type SweepReport struct {
	System   string
	Seed     int64
	Points   int64   // crash points enumerated by the counting pass
	Replayed []int64 // points actually replayed (budget-limited)
	Failures []*SweepFailure
}

// CountCrashPoints runs the counting pass alone and returns the number of
// crash points plus the run (for determinism checks).
func CountCrashPoints(sys SweepSystem, seed int64) (*sweepRun, int64, error) {
	return countCrashPoints(sys, seed, sweepVariant{})
}

func countCrashPoints(sys SweepSystem, seed int64, v sweepVariant) (*sweepRun, int64, error) {
	run, err := runWorkload(sys, seed, -1, v)
	if err != nil {
		return nil, 0, err
	}
	if run.lateErr != nil {
		return nil, 0, fmt.Errorf("counting pass errored: %w", run.lateErr)
	}
	return run, run.fuse.Count(), nil
}

// Sweep enumerates every crash point for the system and replays up to
// `budget` of them (≤ 0 = all), evenly spaced so the sample always covers
// the first and last points. Failures accumulate; they do not stop the
// sweep.
func Sweep(sys SweepSystem, seed int64, budget int) (*SweepReport, error) {
	return sweepVariantRun(sys, seed, budget, sweepVariant{})
}

func sweepVariantRun(sys SweepSystem, seed int64, budget int, v sweepVariant) (*SweepReport, error) {
	_, n, err := countCrashPoints(sys, seed, v)
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{System: sys.Name, Seed: seed, Points: n}
	for _, p := range samplePoints(n, budget) {
		rep.Replayed = append(rep.Replayed, p)
		f, err := replayPoint(sys, seed, p, v)
		if err != nil {
			return nil, err
		}
		if f != nil {
			rep.Failures = append(rep.Failures, f)
		}
	}
	return rep, nil
}

// ReplayCrashPoint re-runs a single crash point — the reproduction entry
// point printed with every failure. system must be a SweepSystems name.
func ReplayCrashPoint(system string, seed int64, point int64) (*SweepFailure, error) {
	return replayNamed(system, seed, point, sweepVariant{})
}

func replayNamed(system string, seed int64, point int64, v sweepVariant) (*SweepFailure, error) {
	for _, sys := range SweepSystems() {
		if sys.Name == system {
			return replayPoint(sys, seed, point, v)
		}
	}
	return nil, fmt.Errorf("harness: unknown sweep system %q", system)
}

// samplePoints picks up to budget points from 1..n, evenly spaced,
// including 1 and n.
func samplePoints(n int64, budget int) []int64 {
	if n <= 0 {
		return nil
	}
	if budget <= 0 || int64(budget) >= n {
		pts := make([]int64, 0, n)
		for p := int64(1); p <= n; p++ {
			pts = append(pts, p)
		}
		return pts
	}
	pts := make([]int64, 0, budget)
	var last int64
	for i := 0; i < budget; i++ {
		p := 1 + (n-1)*int64(i)/int64(budget-1)
		if p != last {
			pts = append(pts, p)
			last = p
		}
	}
	return pts
}

// replayPoint runs the workload to crash point P, crashes, recovers on a
// fresh server over the surviving store and log, and checks the recovery
// invariants. A nil failure means the point passed.
func replayPoint(sys SweepSystem, seed int64, point int64, v sweepVariant) (*SweepFailure, error) {
	run, err := runWorkload(sys, seed, point, v)
	if err != nil {
		return nil, err
	}
	bad := func(format string, args ...interface{}) *SweepFailure {
		return &SweepFailure{System: sys.Name, Seed: seed, Point: point,
			Detail: fmt.Sprintf(format, args...), Variant: v.name}
	}

	// Crash: volatile state is lost, stable storage thaws for recovery.
	run.srv.Crash() // trims the log's (possibly torn) volatile tail
	run.log.SetFlushLimiter(nil)
	run.log.SetTruncateGate(nil)
	run.fuse.Disarm()
	run.store.CrashDropPending()

	// Recover on a fresh server adopting the surviving store and log.
	srv2 := server.New(sweepServerConfig(sys.Mode, run.store, run.log, v))
	sn2 := srv2.NewSession(nil, nil)
	if err := sn2.Restart(); err != nil {
		return bad("restart failed: %v", err), nil
	}

	// Data invariants (only meaningful once the build itself is durable).
	if point > run.buildEnd {
		if f := verifyStamps(sys, run, srv2, point, bad); f != nil {
			return f, nil
		}
	}

	// Idempotence: recovering the recovered system must not change any data
	// page (exercises conditional redo and WPL reinstall on a clean state).
	before, err := dumpStore(run.store)
	if err != nil {
		return nil, err
	}
	srv2.Crash()
	srv3 := server.New(sweepServerConfig(sys.Mode, run.store, run.log, v))
	sn3 := srv3.NewSession(nil, nil)
	if err := sn3.Restart(); err != nil {
		return bad("second restart failed: %v", err), nil
	}
	after, err := dumpStore(run.store)
	if err != nil {
		return nil, err
	}
	if diff := diffDumps(before, after); diff != "" {
		return bad("restart not idempotent: %s", diff), nil
	}
	return nil, nil
}

// verifyStamps checks the committed/rolled-back/atomic-boundary invariants
// against the recovered server.
func verifyStamps(sys SweepSystem, run *sweepRun, srv2 *server.Server, point int64,
	bad func(string, ...interface{}) *SweepFailure) *SweepFailure {
	// Committed transactions form a prefix of the journal (serial client).
	kc := 0
	for kc < len(run.txns) && run.txns[kc].post <= point {
		kc++
	}
	for i := kc; i < len(run.txns); i++ {
		if run.txns[i].post <= point {
			return bad("journal not prefix-closed: txn %d committed after txn %d did not", i, kc)
		}
	}
	boundary := kc < len(run.txns) && run.txns[kc].pre <= point

	cli := client.New(client.Config{
		Scheme:         sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: sys.Mode != server.ModeREDO,
	}, wire.NewDirect(srv2, nil, nil))
	tx, err := cli.Begin()
	if err != nil {
		return bad("verification begin failed: %v", err)
	}
	defer tx.Abort()
	got := make([]uint32, len(run.parts))
	for i, p := range run.parts {
		x, y, err := oo7.ReadXY(tx, p)
		if err != nil {
			return bad("verification read of part %v failed: %v", p, err)
		}
		// Stamps write x=y=10001+i; the build writes independent randoms
		// below 10000. A mismatch involving a stamp value is a torn object
		// update; two small unequal values are just pristine build state.
		if x != y && (x > 10000 || y > 10000) {
			return bad("part %v has x=%d y=%d (stamps always write x=y: torn object update)", p, x, y)
		}
		got[i] = x
	}

	mismatch := func(want []uint32) (int, bool) {
		for i := range want {
			if got[i] != want[i] {
				return i, true
			}
		}
		return 0, false
	}
	committed := run.modelAfter(kc)
	i, diffA := mismatch(committed)
	if !diffA {
		return nil // exactly the committed prefix: rolled back correctly
	}
	if !boundary {
		return bad("part %v = %d, want %d (committed prefix of %d txns; no transaction was mid-commit)",
			run.parts[i], got[i], committed[i], kc)
	}
	withBoundary := run.modelAfter(kc + 1)
	if j, diffB := mismatch(withBoundary); diffB {
		return bad("state matches neither %d committed txns (part %v: got %d want %d) nor %d "+
			"(part %v: got %d want %d): boundary txn applied non-atomically",
			kc, run.parts[i], got[i], committed[i],
			kc+1, run.parts[j], got[j], withBoundary[j])
	}
	return nil // boundary transaction wholly durable: also legal
}

// dumpStore snapshots every data page (the superblock, page 0, is excluded:
// restart legitimately rewrites its checkpoint pointer and counters). It
// accepts any disk.Store — the crash sweeps pass the fault-injecting
// wrapper, the media sweep passes restored volumes.
func dumpStore(st disk.Store) (map[page.ID][]byte, error) {
	out := make(map[page.ID][]byte)
	err := st.ForEachPage(func(id page.ID, data []byte) error {
		if id == 0 {
			return nil
		}
		out[id] = append([]byte(nil), data...)
		return nil
	})
	return out, err
}

// diffDumps describes the first difference between two store dumps, or ""
// if they are identical. Pages are compared in ascending id order so the
// reported "first" difference is the same on every run (map iteration order
// is randomized).
func diffDumps(a, b map[page.ID][]byte) string {
	ids := make([]page.ID, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pa := a[id]
		pb, ok := b[id]
		if !ok {
			return fmt.Sprintf("page %v vanished", id)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return fmt.Sprintf("page %v byte %d: %d != %d", id, i, pa[i], pb[i])
			}
		}
	}
	extra := make([]page.ID, 0, len(b))
	for id := range b {
		if _, ok := a[id]; !ok {
			extra = append(extra, id)
		}
	}
	if len(extra) > 0 {
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		return fmt.Sprintf("page %v appeared", extra[0])
	}
	return ""
}
