package harness

// Crash-point sweep for the sharded store's presumed-abort two-phase commit
// (internal/shard, DESIGN.md §16).
//
// Two shards run side by side, each with its own volume and WAL, but both
// stable-storage channels of both shards feed ONE shared counting fuse, so
// the counting pass numbers every stable event of the whole cluster — data
// page writes, log flushes (including the PREPARE and DECIDE forces that
// bracket the 2PC phases), and truncation-head advances — in one global
// deterministic sequence. A replay freezes the cluster at point P, crashes
// every shard, restarts every shard, and checks the distributed recovery
// invariants on top of the single-shard ones:
//
//   - cross-shard transactions are all-or-nothing: after recovery plus
//     resolution the store matches the committed prefix, with the one
//     boundary transaction either wholly applied on BOTH shards or wholly
//     rolled back on both — a stamp applied on one shard only is exactly
//     the atomicity violation 2PC exists to prevent;
//   - a branch that crashed between its PREPARE and the coordinator's
//     decision restarts in doubt and HOLDS ITS LOCKS: probing one of its
//     pages before resolution must time out, and must succeed after;
//   - resolution (shard.Router.Recover) is idempotent: a second run settles
//     nothing and changes no data page;
//   - restart itself stays idempotent (the base sweep's double-restart
//     check, now over both volumes).
//
// A second family — the stall sweep — enumerates the cluster's 2PC
// messages instead of its stable events: replaying stall point S drops the
// S-th Prepare/Decide/Forget in transit (faultinject.ErrNotDelivered),
// which leaves an in-doubt branch with NO crash at all, then crashes and
// recovers as above. Before the crash each shard takes a checkpoint, so the
// prepared branch rides the checkpoint's 2PC trailer into restart analysis
// rather than the log scan — the path a long-lived in-doubt transaction
// takes in production.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/internal/wire"
)

const (
	twopcShards    = 2
	twopcObjsShard = 6  // objects per shard
	twopcStamps    = 36 // stamp transactions after the build
	twopcObjSize   = 8  // [u32 x][u32 y], always written x=y
	// twopcLockTimeout bounds the in-doubt lock-retention probe: a probe
	// against a held lock must come back as lock.ErrDeadlock, not hang the
	// sweep for the default two seconds per point.
	twopcLockTimeout = 75 * time.Millisecond
)

// twopcTxn journals one stamp transaction of the 2PC sweep.
type twopcTxn struct {
	tid       logrec.TID
	pre, post int64 // shared-fuse counts bracketing tx.Commit
	objs      [2]page.OID
	val       uint32
}

// stallCounter numbers the cluster's 2PC messages; message `stall` (1-based)
// is dropped in transit.
type stallCounter struct {
	n     int64
	stall int64
	hit   bool
}

func (c *stallCounter) tick() error {
	c.n++
	if c.stall > 0 && c.n == c.stall {
		c.hit = true
		return fmt.Errorf("%w: stalled 2PC message %d", faultinject.ErrNotDelivered, c.n)
	}
	return nil
}

// stallBackend wraps one shard's transport, feeding its 2PC messages
// through the shared stall counter. Ordinary Service traffic is untouched:
// the stall sweep is about the window between protocol phases.
type stallBackend struct {
	shard.Backend
	c *stallCounter
}

func (b *stallBackend) Prepare(tid logrec.TID, coordinator int, participants []int) error {
	if err := b.c.tick(); err != nil {
		return err
	}
	return b.Backend.Prepare(tid, coordinator, participants)
}

func (b *stallBackend) Decide(tid logrec.TID, commit bool) error {
	if err := b.c.tick(); err != nil {
		return err
	}
	return b.Backend.Decide(tid, commit)
}

func (b *stallBackend) Forget(tid logrec.TID) error {
	if err := b.c.tick(); err != nil {
		return err
	}
	return b.Backend.Forget(tid)
}

// twopcRun is the state of one 2PC workload execution.
type twopcRun struct {
	sys    SweepSystem
	fuse   *faultinject.Fuse
	stores [twopcShards]*faultinject.Store
	logs   [twopcShards]*wal.Log
	srvs   [twopcShards]*server.Server
	objs   []page.OID // indices [0,twopcObjsShard) on shard 0, rest on shard 1
	init   []uint32
	txns   []twopcTxn // committed stamps, in order
	// boundary is the stamp in flight when the stall hit (stall sweep only);
	// it may or may not be in txns depending on whether Commit returned nil.
	boundary     *twopcTxn
	buildEnd     int64
	buildTID     logrec.TID
	msgs         int64 // 2PC messages observed (counting pass)
	stalled      bool
	stallInBuild bool
	lateErr      error
}

// twopcServerConfig is sweepServerConfig plus the shard identity that keys
// residue-class allocation, and the short lock timeout the retention probes
// rely on.
func twopcServerConfig(mode server.Mode, store disk.Store, log *wal.Log, shardID int) server.Config {
	cfg := sweepServerConfig(mode, store, log, sweepVariant{})
	cfg.ShardID = shardID
	cfg.ShardCount = twopcShards
	cfg.LockTimeout = twopcLockTimeout
	return cfg
}

// runTwoPCWorkload executes the sharded sweep workload. limit bounds the
// shared fuse (< 0 = count only); stall drops the stall-th 2PC message
// (< 0 = none).
func runTwoPCWorkload(sys SweepSystem, seed, limit, stall int64) (*twopcRun, error) {
	fuse := faultinject.NewFuse(limit)
	run := &twopcRun{sys: sys, fuse: fuse}
	ctr := &stallCounter{stall: stall}
	backends := make([]shard.Backend, twopcShards)
	for s := 0; s < twopcShards; s++ {
		run.stores[s] = faultinject.NewSweepStore(disk.NewMemStore(), fuse)
		lg := wal.New(sweepLogCapacity)
		lg.SetFlushLimiter(func(proposed uint64) uint64 {
			if _, ok := fuse.Event(); !ok {
				return 0 // frozen: clamped back to the current stable end
			}
			return proposed
		})
		lg.SetTruncateGate(func() bool {
			_, ok := fuse.Event()
			return ok
		})
		run.logs[s] = lg
		run.srvs[s] = server.New(twopcServerConfig(sys.Mode, run.stores[s], lg, s))
		backends[s] = &stallBackend{Backend: wire.NewDirect(run.srvs[s], nil, nil), c: ctr}
	}
	cli, router, err := client.NewSharded(client.Config{
		Scheme:         sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: sys.Mode != server.ModeREDO,
	}, backends)
	if err != nil {
		return nil, err
	}

	fail := func(stage string, err error) (*twopcRun, error) {
		if fuse.Blown() {
			run.lateErr = fmt.Errorf("%s: %w", stage, err)
			return run, nil
		}
		return nil, fmt.Errorf("2pc sweep workload %s (system=%s seed=%d): %w", stage, sys.Name, seed, err)
	}

	// Build: one cross-shard transaction lays out twopcObjsShard objects on
	// each shard (so even the build commit runs the full 2PC protocol).
	tx, err := cli.Begin()
	if err != nil {
		return fail("build begin", err)
	}
	run.buildTID = tx.TID()
	buildErr := func() error {
		val := uint32(5000)
		for s := 0; s < twopcShards; s++ {
			router.SetAllocShard(s)
			if _, err := tx.NewPage(); err != nil {
				return fmt.Errorf("new page on shard %d: %w", s, err)
			}
			for j := 0; j < twopcObjsShard; j++ {
				oid, err := tx.Allocate(twopcObjSize)
				if err != nil {
					return fmt.Errorf("allocate: %w", err)
				}
				if err := writeXY(tx, oid, val); err != nil {
					return fmt.Errorf("init write: %w", err)
				}
				run.objs = append(run.objs, oid)
				run.init = append(run.init, val)
				val++
			}
		}
		router.SetAllocShard(-1)
		return tx.Commit()
	}()
	if ctr.hit {
		run.stalled, run.stallInBuild = true, true
		return run, nil
	}
	if buildErr != nil {
		return fail("build", buildErr)
	}
	run.buildEnd = fuse.Count()

	// Stamps: i%4 == 0 stays on shard 0, == 1 on shard 1, else cross-shard —
	// the mix the ISSUE's disjoint/cross-shard benchmark also uses. Object
	// choice is a seeded LCG so different seeds stress different pages.
	rng := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for i := 0; i < twopcStamps; i++ {
		a, b := next(twopcObjsShard), next(twopcObjsShard)
		if b == a {
			b = (a + 1) % twopcObjsShard
		}
		switch i % 4 {
		case 0: // both on shard 0
		case 1:
			a += twopcObjsShard
			b += twopcObjsShard
		default:
			b += twopcObjsShard // one object on each shard
		}
		st := twopcTxn{val: uint32(10001 + i), objs: [2]page.OID{run.objs[a], run.objs[b]}}
		tx, err := cli.Begin()
		if err != nil {
			return fail("stamp begin", err)
		}
		st.tid = tx.TID()
		for _, o := range st.objs {
			if err := writeXY(tx, o, st.val); err != nil {
				tx.Abort()
				return fail("stamp write", err)
			}
		}
		st.pre = fuse.Count()
		err = tx.Commit()
		st.post = fuse.Count()
		if ctr.hit {
			// The stall landed inside this stamp's 2PC. A nil Commit means the
			// commit point was reached (a participant decide was dropped); an
			// error means the stamp aborted or its outcome is unknown. Either
			// way it is the boundary transaction and the workload stops here.
			run.stalled = true
			run.boundary = &st
			if err == nil {
				run.txns = append(run.txns, st)
			}
			return run, nil
		}
		if err != nil {
			return fail("stamp commit", err)
		}
		run.txns = append(run.txns, st)
	}
	run.msgs = ctr.n
	return run, nil
}

// writeXY stores x=y=val into an 8-byte stamp object.
func writeXY(tx *client.Tx, oid page.OID, val uint32) error {
	var buf [twopcObjSize]byte
	putU32(buf[0:], val)
	putU32(buf[4:], val)
	return tx.Write(oid, 0, buf[:])
}

// readXY loads a stamp object's two halves.
func readXY(tx *client.Tx, oid page.OID) (x, y uint32, err error) {
	var buf [twopcObjSize]byte
	if err := tx.Read(oid, 0, buf[:]); err != nil {
		return 0, 0, err
	}
	return getU32(buf[0:]), getU32(buf[4:]), nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// modelTwoPC returns the expected object values once the first k journaled
// stamps — plus, when non-nil, the boundary stamp — have been applied.
func (r *twopcRun) modelTwoPC(k int, boundary *twopcTxn) []uint32 {
	vals := append([]uint32(nil), r.init...)
	idx := make(map[page.OID]int, len(r.objs))
	for i, o := range r.objs {
		idx[o] = i
	}
	for i := 0; i < k; i++ {
		for _, o := range r.txns[i].objs {
			vals[idx[o]] = r.txns[i].val
		}
	}
	if boundary != nil {
		for _, o := range boundary.objs {
			vals[idx[o]] = boundary.val
		}
	}
	return vals
}

// CountTwoPCPoints runs the 2PC counting pass: the number of shared-fuse
// crash points and of 2PC messages (the stall sweep's point space).
func CountTwoPCPoints(sys SweepSystem, seed int64) (fusePoints, msgPoints int64, err error) {
	run, err := runTwoPCWorkload(sys, seed, -1, -1)
	if err != nil {
		return 0, 0, err
	}
	if run.lateErr != nil {
		return 0, 0, fmt.Errorf("2pc counting pass errored: %w", run.lateErr)
	}
	return run.fuse.Count(), run.msgs, nil
}

// TwoPCSweep enumerates the cluster's crash points for one system and
// replays up to budget of them (≤ 0 = all), evenly spaced.
func TwoPCSweep(sys SweepSystem, seed int64, budget int) (*SweepReport, error) {
	n, _, err := CountTwoPCPoints(sys, seed)
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{System: sys.Name, Seed: seed, Points: n}
	for _, p := range samplePoints(n, budget) {
		rep.Replayed = append(rep.Replayed, p)
		f, err := replayTwoPC(sys, seed, p, -1)
		if err != nil {
			return nil, err
		}
		if f != nil {
			rep.Failures = append(rep.Failures, f)
		}
	}
	return rep, nil
}

// TwoPCStallSweep enumerates the cluster's 2PC messages and replays up to
// budget droppings of them (≤ 0 = all), evenly spaced.
func TwoPCStallSweep(sys SweepSystem, seed int64, budget int) (*SweepReport, error) {
	_, n, err := CountTwoPCPoints(sys, seed)
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{System: sys.Name, Seed: seed, Points: n}
	for _, p := range samplePoints(n, budget) {
		rep.Replayed = append(rep.Replayed, p)
		f, err := replayTwoPC(sys, seed, -1, p)
		if err != nil {
			return nil, err
		}
		if f != nil {
			rep.Failures = append(rep.Failures, f)
		}
	}
	return rep, nil
}

// ReplayTwoPCCrashPoint re-runs a single 2PC crash point — the reproduction
// entry point printed with "twopc"-variant failures.
func ReplayTwoPCCrashPoint(system string, seed, point int64) (*SweepFailure, error) {
	for _, sys := range SweepSystems() {
		if sys.Name == system {
			return replayTwoPC(sys, seed, point, -1)
		}
	}
	return nil, fmt.Errorf("harness: unknown sweep system %q", system)
}

// ReplayTwoPCStallPoint re-runs a single dropped-message point — the
// reproduction entry point printed with "twopc-stall"-variant failures.
func ReplayTwoPCStallPoint(system string, seed, point int64) (*SweepFailure, error) {
	for _, sys := range SweepSystems() {
		if sys.Name == system {
			return replayTwoPC(sys, seed, -1, point)
		}
	}
	return nil, fmt.Errorf("harness: unknown sweep system %q", system)
}

// replayTwoPC runs one 2PC replay: exactly one of point (fuse crash point)
// and stall (dropped 2PC message) is ≥ 0.
func replayTwoPC(sys SweepSystem, seed, point, stall int64) (*SweepFailure, error) {
	variant := "twopc"
	repro := point
	if stall > 0 {
		variant = "twopc-stall"
		repro = stall
	}
	run, err := runTwoPCWorkload(sys, seed, point, stall)
	if err != nil {
		return nil, err
	}
	bad := func(format string, args ...interface{}) *SweepFailure {
		return &SweepFailure{System: sys.Name, Seed: seed, Point: repro,
			Detail: fmt.Sprintf(format, args...), Variant: variant}
	}

	// Stall variant: the cluster is still alive, with an in-doubt branch if
	// the drop landed after a PREPARE. Checkpoint each shard so restart meets
	// the prepared branch through the checkpoint's 2PC trailer, then crash.
	if stall > 0 {
		for s := 0; s < twopcShards; s++ {
			if err := run.srvs[s].NewSession(nil, nil).Checkpoint(); err != nil {
				return bad("pre-crash checkpoint on shard %d failed: %v", s, err), nil
			}
		}
	}

	// Crash every shard: volatile state lost, stable storage thaws.
	for s := 0; s < twopcShards; s++ {
		run.srvs[s].Crash()
		run.logs[s].SetFlushLimiter(nil)
		run.logs[s].SetTruncateGate(nil)
	}
	run.fuse.Disarm()
	for s := 0; s < twopcShards; s++ {
		run.stores[s].CrashDropPending()
	}

	// Restart every shard on a fresh server over its surviving store + log.
	var srv2 [twopcShards]*server.Server
	for s := 0; s < twopcShards; s++ {
		srv2[s] = server.New(twopcServerConfig(sys.Mode, run.stores[s], run.logs[s], s))
		if err := srv2[s].NewSession(nil, nil).Restart(); err != nil {
			return bad("restart of shard %d failed: %v", s, err), nil
		}
	}

	// In-doubt branches must hold their locks until resolution.
	type probe struct {
		shard int
		pid   page.ID
	}
	var probes []probe
	for s := 0; s < twopcShards; s++ {
		for _, idt := range srv2[s].InDoubt() {
			st := run.stampByTID(idt.TID)
			if st == nil {
				continue // build or unjournaled transaction: page set unknown
			}
			for _, o := range st.objs {
				if shardOfPage(o.Page) == s {
					probes = append(probes, probe{shard: s, pid: o.Page})
				}
			}
		}
	}
	for _, p := range probes {
		sn := srv2[p.shard].NewSession(nil, nil)
		ptid := sn.Begin()
		err := sn.Lock(ptid, p.pid, lock.Shared)
		sn.Abort(ptid)
		if err == nil {
			return bad("in-doubt branch released page %v on shard %d before resolution", p.pid, p.shard), nil
		}
		if !errors.Is(err, lock.ErrDeadlock) {
			return bad("in-doubt lock probe of page %v on shard %d: %v (want lock timeout)", p.pid, p.shard, err), nil
		}
	}

	// Recovery resolution settles every in-doubt branch; a second run must
	// find nothing and change nothing (idempotence under re-delivery).
	backends2 := make([]shard.Backend, twopcShards)
	for s := 0; s < twopcShards; s++ {
		backends2[s] = wire.NewDirect(srv2[s], nil, nil)
	}
	router2 := shard.NewRouter(backends2)
	if _, err := router2.Recover(); err != nil {
		return bad("recovery resolution failed: %v", err), nil
	}
	dumpPre, err := dumpCluster(run)
	if err != nil {
		return nil, err
	}
	again, err := router2.Recover()
	if err != nil {
		return bad("second recovery resolution failed: %v", err), nil
	}
	if len(again) != 0 {
		return bad("resolution not idempotent: second run settled %d branches", len(again)), nil
	}
	dumpPost, err := dumpCluster(run)
	if err != nil {
		return nil, err
	}
	if diff := diffClusters(dumpPre, dumpPost); diff != "" {
		return bad("second resolution changed data: %s", diff), nil
	}
	for s := 0; s < twopcShards; s++ {
		if left := srv2[s].InDoubt(); len(left) != 0 {
			return bad("shard %d still reports %d in-doubt branches after resolution", s, len(left)), nil
		}
	}

	// Locks release once the fate is known.
	for _, p := range probes {
		sn := srv2[p.shard].NewSession(nil, nil)
		ptid := sn.Begin()
		err := sn.Lock(ptid, p.pid, lock.Shared)
		sn.Abort(ptid)
		if err != nil {
			return bad("page %v on shard %d still locked after resolution: %v", p.pid, p.shard, err), nil
		}
	}

	// Value invariants: the cluster matches the committed prefix, with the
	// boundary transaction all-or-nothing across both shards.
	if !run.stallInBuild && (stall > 0 || point > run.buildEnd) && len(run.objs) > 0 {
		if f := run.verifyTwoPC(srv2, point, stall, bad); f != nil {
			return f, nil
		}
	}

	// Restart idempotence over both volumes. Resolution commits and aborts
	// dirtied pool pages after the first restart; flush them so the dumps
	// compare restart against a settled store, not against work the second
	// restart legitimately redoes.
	for s := 0; s < twopcShards; s++ {
		if err := srv2[s].NewSession(nil, nil).FlushAll(); err != nil {
			return bad("flush of shard %d after resolution failed: %v", s, err), nil
		}
	}
	before, err := dumpCluster(run)
	if err != nil {
		return nil, err
	}
	for s := 0; s < twopcShards; s++ {
		srv2[s].Crash()
		srv3 := server.New(twopcServerConfig(sys.Mode, run.stores[s], run.logs[s], s))
		if err := srv3.NewSession(nil, nil).Restart(); err != nil {
			return bad("second restart of shard %d failed: %v", s, err), nil
		}
	}
	after, err := dumpCluster(run)
	if err != nil {
		return nil, err
	}
	if diff := diffClusters(before, after); diff != "" {
		return bad("restart not idempotent: %s", diff), nil
	}
	return nil, nil
}

// stampByTID finds a journaled (or boundary) stamp by transaction id.
func (r *twopcRun) stampByTID(tid logrec.TID) *twopcTxn {
	for i := range r.txns {
		if r.txns[i].tid == tid {
			return &r.txns[i]
		}
	}
	if r.boundary != nil && r.boundary.tid == tid {
		return r.boundary
	}
	return nil
}

// shardOfPage mirrors shard.Map.ShardOf for the sweep's fixed shard count.
func shardOfPage(pid page.ID) int {
	return shard.Map{N: twopcShards}.ShardOf(pid)
}

// verifyTwoPC reads every stamp object through a recovered, resolved
// cluster and checks the committed-prefix / boundary-atomicity invariants.
func (r *twopcRun) verifyTwoPC(srv2 [twopcShards]*server.Server, point, stall int64,
	bad func(string, ...interface{}) *SweepFailure) *SweepFailure {
	// kc and the boundary stamp. Fuse variant: the journal bracket counts
	// decide which stamps must be durable, exactly as the base sweep. Stall
	// variant: every journaled stamp before the boundary committed normally.
	var kc int
	var boundary *twopcTxn
	if stall > 0 {
		kc = len(r.txns)
		if kc > 0 && r.boundary != nil && r.txns[kc-1].tid == r.boundary.tid {
			kc-- // the boundary stamp was journaled (commit returned nil)
		}
		boundary = r.boundary
	} else {
		for kc < len(r.txns) && r.txns[kc].post <= point {
			kc++
		}
		for i := kc; i < len(r.txns); i++ {
			if r.txns[i].post <= point {
				return bad("journal not prefix-closed: stamp %d committed while stamp %d did not", i, kc)
			}
		}
		if kc < len(r.txns) && r.txns[kc].pre <= point {
			boundary = &r.txns[kc]
		}
	}

	backends := make([]shard.Backend, twopcShards)
	for s := 0; s < twopcShards; s++ {
		backends[s] = wire.NewDirect(srv2[s], nil, nil)
	}
	cli, _, err := client.NewSharded(client.Config{
		Scheme:         r.sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: r.sys.Mode != server.ModeREDO,
	}, backends)
	if err != nil {
		return bad("verification client: %v", err)
	}
	tx, err := cli.Begin()
	if err != nil {
		return bad("verification begin failed: %v", err)
	}
	defer tx.Abort()
	got := make([]uint32, len(r.objs))
	for i, o := range r.objs {
		x, y, err := readXY(tx, o)
		if err != nil {
			return bad("verification read of %v failed: %v", o, err)
		}
		if x != y {
			return bad("object %v has x=%d y=%d (stamps always write x=y: torn object update)", o, x, y)
		}
		got[i] = x
	}

	mismatch := func(want []uint32) (int, bool) {
		for i := range want {
			if got[i] != want[i] {
				return i, true
			}
		}
		return 0, false
	}
	committed := r.modelTwoPC(kc, nil)
	i, diffA := mismatch(committed)
	if !diffA {
		return nil // exactly the committed prefix: the boundary rolled back whole
	}
	if boundary == nil {
		return bad("object %v = %d, want %d (committed prefix of %d stamps; none was mid-commit)",
			r.objs[i], got[i], committed[i], kc)
	}
	withBoundary := r.modelTwoPC(kc, boundary)
	if j, diffB := mismatch(withBoundary); diffB {
		return bad("state matches neither %d committed stamps (object %v: got %d want %d) nor "+
			"boundary-applied (object %v: got %d want %d): cross-shard stamp applied non-atomically",
			kc, r.objs[i], got[i], committed[i], r.objs[j], got[j], withBoundary[j])
	}
	return nil // boundary stamp wholly durable on both shards: also legal
}

// dumpCluster snapshots both shards' data pages.
func dumpCluster(run *twopcRun) ([twopcShards]map[page.ID][]byte, error) {
	var out [twopcShards]map[page.ID][]byte
	for s := 0; s < twopcShards; s++ {
		d, err := dumpStore(run.stores[s])
		if err != nil {
			return out, err
		}
		out[s] = d
	}
	return out, nil
}

// diffClusters describes the first difference between two cluster dumps.
func diffClusters(a, b [twopcShards]map[page.ID][]byte) string {
	for s := 0; s < twopcShards; s++ {
		if d := diffDumps(a[s], b[s]); d != "" {
			return fmt.Sprintf("shard %d: %s", s, d)
		}
	}
	return ""
}
