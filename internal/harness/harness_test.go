package harness

import (
	"strings"
	"testing"
)

// fastOptions shrinks everything so a figure runs in well under a second.
func fastOptions() Options {
	return Options{Scale: 25, Clients: []int{1, 2}, Warm: 1, Measure: 1}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	out := tab.Format()
	for _, want := range []string{"NumCompPerModule", "500", "2000", "NumAssmLevels"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	out := Table3().Format()
	for _, want := range []string{"PD-ESM", "SD-ESM", "SL-ESM", "PD-REDO", "WPL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestTable2Scaled(t *testing.T) {
	r := NewRunner(fastOptions())
	tab, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
}

func TestFigure4SmokeAndShape(t *testing.T) {
	r := NewRunner(fastOptions())
	tab, err := r.Figure(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // WPL, PD-ESM, SD-ESM, PD-REDO
		t.Fatalf("systems: %v", tab.Rows)
	}
	// Underlying cells: every response time positive.
	for _, c := range r.cache["small-uncon-T2A"] {
		if c.RespTime <= 0 {
			t.Fatalf("cell %+v has nonpositive response time", c)
		}
		if c.TPM <= 0 {
			t.Fatalf("cell %+v has nonpositive throughput", c)
		}
	}
}

func TestFigure5SharesRunWithFigure4(t *testing.T) {
	r := NewRunner(fastOptions())
	if _, err := r.Figure(4); err != nil {
		t.Fatal(err)
	}
	cells := r.cache["small-uncon-T2A"]
	if _, err := r.Figure(5); err != nil {
		t.Fatal(err)
	}
	// Same slice: no re-run.
	if len(r.cache) != 1 || len(r.cache["small-uncon-T2A"]) != len(cells) {
		t.Fatal("figure 5 re-ran the group")
	}
}

func TestFigure9WriteCounts(t *testing.T) {
	r := NewRunner(fastOptions())
	tab, err := r.Figure(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	cells := r.cache["small-uncon-T2A"]
	get := func(sys string) Cell {
		for _, c := range cells {
			if c.System == sys && c.Clients == 1 {
				return c
			}
		}
		t.Fatalf("missing %s", sys)
		return Cell{}
	}
	wpl, redo, esm := get("WPL"), get("PD-REDO"), get("PD-ESM")
	// Paper Figure 9 shape: WPL ships far more pages than REDO on sparse
	// updates; ESM total = REDO log pages + dirty pages ≈ WPL + log.
	if wpl.TotalPages <= 5*redo.TotalPages {
		t.Fatalf("WPL %.0f vs REDO %.0f: expected order-of-magnitude gap",
			wpl.TotalPages, redo.TotalPages)
	}
	if redo.TotalPages != redo.LogPages {
		t.Fatalf("REDO ships dirty pages: %+v", redo)
	}
	if wpl.LogPages != 0 {
		t.Fatalf("WPL ships log pages: %+v", wpl)
	}
	if esm.TotalPages <= wpl.TotalPages {
		t.Fatalf("ESM total (%.0f) should exceed WPL (%.0f) by its log pages",
			esm.TotalPages, wpl.TotalPages)
	}
}

func TestUnknownFigure(t *testing.T) {
	r := NewRunner(fastOptions())
	if _, err := r.Figure(3); err == nil {
		t.Fatal("figure 3 accepted")
	}
	if _, err := r.Figure(19); err == nil {
		t.Fatal("figure 19 accepted")
	}
}

func TestDeterministicAcrossRunners(t *testing.T) {
	a, _ := NewRunner(fastOptions()).Figure(4)
	b, _ := NewRunner(fastOptions()).Figure(4)
	if a.Format() != b.Format() {
		t.Fatalf("nondeterministic:\n%s\nvs\n%s", a.Format(), b.Format())
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Title:  "Figure X",
		Header: []string{"system", "1 client(s)"},
		Rows:   [][]string{{"PD-ESM", "10.4"}},
	}
	got := tab.CSV()
	want := "# Figure X\nsystem,1 client(s)\nPD-ESM,10.4\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
