package harness

// The per-figure experiment index (DESIGN.md §4). Figures sharing a run
// (response time and throughput of the same sweep) share a cached group.

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/oo7"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wire"
)

// The paper's client memory splits (§5.1–§5.3).

// unconstrainedSystems: 12 MB per client; diffing systems split 8 MB pool +
// 4 MB recovery buffer; WPL devotes everything to the pool.
func unconstrainedSystems(withSL bool) []SystemSpec {
	s := []SystemSpec{
		{Name: "WPL", Scheme: client.WPL, Mode: server.ModeWPL, PoolMB: 12},
		{Name: "PD-ESM", Scheme: client.PD, Mode: server.ModeESM, PoolMB: 8, RecMB: 4},
		{Name: "SD-ESM", Scheme: client.SD, Mode: server.ModeESM, PoolMB: 8, RecMB: 4},
		{Name: "PD-REDO", Scheme: client.PD, Mode: server.ModeREDO, PoolMB: 8, RecMB: 4},
	}
	if withSL {
		s = append(s, SystemSpec{Name: "SL-ESM", Scheme: client.SL, Mode: server.ModeESM, PoolMB: 8, RecMB: 4})
	}
	return s
}

// constrainedSystems: 8 MB per client; diffing systems split 7.5 + 0.5.
func constrainedSystems() []SystemSpec {
	return []SystemSpec{
		{Name: "WPL", Scheme: client.WPL, Mode: server.ModeWPL, PoolMB: 8},
		{Name: "PD-ESM", Scheme: client.PD, Mode: server.ModeESM, PoolMB: 7.5, RecMB: 0.5},
		{Name: "SD-ESM", Scheme: client.SD, Mode: server.ModeESM, PoolMB: 7.5, RecMB: 0.5},
		{Name: "PD-REDO", Scheme: client.PD, Mode: server.ModeREDO, PoolMB: 7.5, RecMB: 0.5},
	}
}

// bigSystems: 12 MB per client with both memory splits of §5.3.
func bigSystems() []SystemSpec {
	return []SystemSpec{
		{Name: "PD-ESM-4", Scheme: client.PD, Mode: server.ModeESM, PoolMB: 8, RecMB: 4},
		{Name: "PD-ESM-1/2", Scheme: client.PD, Mode: server.ModeESM, PoolMB: 11.5, RecMB: 0.5},
		{Name: "SD-ESM-4", Scheme: client.SD, Mode: server.ModeESM, PoolMB: 8, RecMB: 4},
		{Name: "WPL", Scheme: client.WPL, Mode: server.ModeWPL, PoolMB: 12},
		{Name: "PD-REDO-4", Scheme: client.PD, Mode: server.ModeREDO, PoolMB: 8, RecMB: 4},
	}
}

// group is a set of runs shared by several figures.
type group struct {
	traversal oo7.Traversal
	db        func() oo7.Config
	systems   []SystemSpec
}

var groups = map[string]group{
	"small-uncon-T2A": {oo7.T2A, oo7.SmallConfig, unconstrainedSystems(false)},
	"small-uncon-T2B": {oo7.T2B, oo7.SmallConfig, unconstrainedSystems(true)},
	"small-uncon-T2C": {oo7.T2C, oo7.SmallConfig, unconstrainedSystems(true)},
	"small-con-T2A":   {oo7.T2A, oo7.SmallConfig, constrainedSystems()},
	"small-con-T2B":   {oo7.T2B, oo7.SmallConfig, constrainedSystems()},
	"big-T2A":         {oo7.T2A, oo7.BigConfig, bigSystems()},
	"big-T2B":         {oo7.T2B, oo7.BigConfig, bigSystems()},
}

// Runner executes figures, caching group results so paired figures (response
// time + throughput) share one run.
type Runner struct {
	o     Options
	cache map[string][]Cell
}

// NewRunner creates a runner with the given options.
func NewRunner(o Options) *Runner {
	return &Runner{o: o.withDefaults(), cache: make(map[string][]Cell)}
}

// Options returns the runner's (defaulted) options.
func (r *Runner) Options() Options { return r.o }

func (r *Runner) group(key string) ([]Cell, error) {
	if cells, ok := r.cache[key]; ok {
		return cells, nil
	}
	g, ok := groups[key]
	if !ok {
		return nil, fmt.Errorf("harness: unknown group %q", key)
	}
	var all []Cell
	for _, spec := range g.systems {
		cells, err := runSystem(spec, g.db(), g.traversal, r.o)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", key, spec.Name, err)
		}
		all = append(all, cells...)
	}
	r.cache[key] = all
	return all, nil
}

func secs(c Cell) string { return fmt.Sprintf("%.1f", c.RespTime.Seconds()) }
func tpm(c Cell) string  { return fmt.Sprintf("%.2f", c.TPM) }

// figSpec maps a figure number to its group and metric.
type figSpec struct {
	title  string
	group  string
	metric func(Cell) string
}

var figSpecs = map[int]figSpec{
	4:  {"Figure 4. T2A, small database — response time (s)", "small-uncon-T2A", secs},
	5:  {"Figure 5. T2A, small database — throughput (trans/min)", "small-uncon-T2A", tpm},
	6:  {"Figure 6. T2B, small database — response time (s)", "small-uncon-T2B", secs},
	7:  {"Figure 7. T2B, small database — throughput (trans/min)", "small-uncon-T2B", tpm},
	8:  {"Figure 8. T2C, small database — response time (s)", "small-uncon-T2C", secs},
	10: {"Figure 10. T2A, small, constrained cache — response time (s)", "small-con-T2A", secs},
	11: {"Figure 11. T2A, small, constrained cache — throughput (trans/min)", "small-con-T2A", tpm},
	12: {"Figure 12. T2B, small, constrained cache — response time (s)", "small-con-T2B", secs},
	13: {"Figure 13. T2B, small, constrained cache — throughput (trans/min)", "small-con-T2B", tpm},
	15: {"Figure 15. T2A, big database — response time (s)", "big-T2A", secs},
	16: {"Figure 16. T2A, big database — throughput (trans/min)", "big-T2A", tpm},
	17: {"Figure 17. T2B, big database — response time (s)", "big-T2B", secs},
	18: {"Figure 18. T2B, big database — throughput (trans/min)", "big-T2B", tpm},
}

// Cells returns the raw measured cells backing figure n, if its group has
// run (diagnostics; empty otherwise).
func (r *Runner) Cells(n int) []Cell {
	if spec, ok := figSpecs[n]; ok {
		return r.cache[spec.group]
	}
	switch n {
	case 9:
		return append(append([]Cell(nil), r.cache["small-uncon-T2A"]...), r.cache["small-uncon-T2B"]...)
	case 14:
		return append(append([]Cell(nil), r.cache["small-con-T2A"]...), r.cache["small-con-T2B"]...)
	}
	return nil
}

// FigureIDs lists every figure the harness can regenerate, in order.
func FigureIDs() []int {
	return []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18}
}

// Figure regenerates figure n (4–18).
func (r *Runner) Figure(n int) (*Table, error) {
	switch n {
	case 9:
		return r.writesFigure(9, "Figure 9. Client page writes per transaction, small database",
			"small-uncon-T2A", "small-uncon-T2B", []string{"PD-ESM", "PD-REDO", "WPL"})
	case 14:
		return r.writesFigure(14, "Figure 14. Client page writes per transaction, small, constrained cache",
			"small-con-T2A", "small-con-T2B", []string{"PD-ESM", "SD-ESM", "PD-REDO", "WPL"})
	}
	spec, ok := figSpecs[n]
	if !ok {
		return nil, fmt.Errorf("harness: no figure %d", n)
	}
	cells, err := r.group(spec.group)
	if err != nil {
		return nil, err
	}
	return cellsToSeries(spec.title, cells, r.o.Clients, spec.metric), nil
}

// writesFigure builds the bar-chart figures (9 and 14): total and log page
// writes per transaction at one client, per underlying recovery scheme, for
// T2A and T2B (T2C writes the same pages as T2B, §5.1).
func (r *Runner) writesFigure(n int, title, groupA, groupB string, systems []string) (*Table, error) {
	cellsA, err := r.group(groupA)
	if err != nil {
		return nil, err
	}
	cellsB, err := r.group(groupB)
	if err != nil {
		return nil, err
	}
	find := func(cells []Cell, sys string) (Cell, bool) {
		for _, c := range cells {
			if c.System == sys && c.Clients == 1 {
				return c, true
			}
		}
		return Cell{}, false
	}
	t := &Table{
		Title:  title,
		Header: []string{"system", "T2A total", "T2A log", "T2B/T2C total", "T2B/T2C log"},
	}
	for _, sys := range systems {
		a, okA := find(cellsA, sys)
		b, okB := find(cellsB, sys)
		if !okA || !okB {
			return nil, fmt.Errorf("harness: figure %d missing system %s", n, sys)
		}
		t.Rows = append(t.Rows, []string{
			sys,
			fmt.Sprintf("%.0f", a.TotalPages),
			fmt.Sprintf("%.0f", a.LogPages),
			fmt.Sprintf("%.0f", b.TotalPages),
			fmt.Sprintf("%.0f", b.LogPages),
		})
	}
	return t, nil
}

// Table1 prints the OO7 generation parameters (paper Table 1).
func Table1() *Table {
	s, b := oo7.SmallConfig(), oo7.BigConfig()
	row := func(name string, sv, bv int) []string {
		return []string{name, fmt.Sprint(sv), fmt.Sprint(bv)}
	}
	return &Table{
		Title:  "Table 1. OO7 benchmark database parameters",
		Header: []string{"parameter", "small", "big"},
		Rows: [][]string{
			row("NumAtomicPerComp", s.NumAtomicPerComp, b.NumAtomicPerComp),
			row("NumConnPerAtomic", s.NumConnPerAtomic, b.NumConnPerAtomic),
			row("DocumentSize (bytes)", s.DocumentSize, b.DocumentSize),
			row("ManualSize (bytes)", s.ManualSize, b.ManualSize),
			row("NumCompPerModule", s.NumCompPerModule, b.NumCompPerModule),
			row("NumAssmPerAssm", s.NumAssmPerAssm, b.NumAssmPerAssm),
			row("NumAssmLevels", s.NumAssmLevels, b.NumAssmLevels),
			row("NumCompPerAssm", s.NumCompPerAssm, b.NumCompPerAssm),
			row("NumModules", s.NumModules, b.NumModules),
		},
	}
}

// Table2 builds both databases and reports module and total sizes in MB
// (paper Table 2: small 6.6/33.0, big 24.3/121.5).
func (r *Runner) Table2() (*Table, error) {
	size := func(cfg oo7.Config) (moduleMB, totalMB float64, err error) {
		cfg = cfg.Scale(r.o.Scale)
		store := disk.NewMemStore()
		srv := server.New(server.Config{
			Mode:            server.ModeESM,
			Store:           store,
			PoolPages:       2048,
			LogCapacity:     128 << 20,
			CheckpointEvery: 8,
		})
		cli := client.New(client.Config{
			Scheme:         client.PD,
			PoolPages:      2048,
			RecoveryBytes:  8 << 20,
			ShipDirtyPages: true,
		}, wire.NewDirect(srv, nil, nil))
		one := cfg
		one.NumModules = 1
		if _, err := oo7.Build(cli, one, r.o.Seed); err != nil {
			return 0, 0, err
		}
		if err := srv.NewSession(nil, nil).Checkpoint(); err != nil {
			return 0, 0, err
		}
		mb := float64(int64(store.Pages())*page.Size) / (1 << 20)
		return mb, mb * float64(cfg.NumModules), nil
	}
	sm, st, err := size(oo7.SmallConfig())
	if err != nil {
		return nil, err
	}
	bm, bt, err := size(oo7.BigConfig())
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:  "Table 2. Database sizes (in megabytes)",
		Header: []string{"", "small", "big", "paper small", "paper big"},
		Rows: [][]string{
			{"module", fmt.Sprintf("%.1f", sm), fmt.Sprintf("%.1f", bm), "6.6", "24.3"},
			{"total", fmt.Sprintf("%.1f", st), fmt.Sprintf("%.1f", bt), "33.0", "121.5"},
		},
	}, nil
}

// Table3 lists the software versions (paper Table 3).
func Table3() *Table {
	return &Table{
		Title:  "Table 3. Software versions",
		Header: []string{"name", "description"},
		Rows: [][]string{
			{"PD-ESM", "page diffing, ESM recovery"},
			{"SD-ESM", "sub-page diffing, ESM recovery"},
			{"SL-ESM", "sub-page logging (no diffing), ESM recovery"},
			{"PD-REDO", "page diffing, REDO recovery"},
			{"WPL", "whole page logging"},
		},
	}
}
