package harness

// Group-commit crash sweep: crash-consistency testing for the window group
// commit introduces between group formation and the stable flush.
//
// The single-client crash-point sweep (sweep.go) enumerates stable-storage
// events, which by construction can never land *inside* a group: a group
// flush is one event. The failure mode specific to group commit is different
// — several transactions append their commit records, park together, and the
// server dies before (or part-way into making) the group durable. What must
// hold then is exactly the WAL contract: a transaction is durable if and
// only if its commit record lies wholly below the stable end the crash left
// behind, and each transaction is atomic regardless of which group members
// made it.
//
// Because the interleaving of concurrent committers is scheduling-dependent,
// this sweep is self-validating rather than replay-deterministic: it derives
// the expected outcome from the log the run actually produced instead of
// from a precomputed journal.
//
//  1. A serial setup phase gives each of K clients two private pages, each
//     holding one object with a known old value, and checkpoints so the
//     setup is stable.
//  2. Stable storage is frozen (the sweep fuse trips): every later data
//     write and log flush is swallowed, so the store and the log's stable
//     end stay exactly at the freeze instant while the log's volatile tail
//     keeps growing.
//  3. K clients concurrently run one update transaction each (both objects
//     to a new value) and commit. The commits batch through group commit;
//     none becomes durable.
//  4. Every record boundary in the volatile tail is a cut: the crash
//     instants from "no commit stable" through "all commits stable". For
//     each cut the frozen store is cloned, the log is cloned with its
//     stable end at the cut (wal.CrashClone), a fresh server recovers, and
//     each client's objects are checked: both new iff that client's commit
//     record lies wholly below the cut, both old otherwise — never a
//     mixture, which would be a torn group member.
//
// Restart runs with RedoWorkers > 1, so the sweep also drives parallel redo
// through every cut.

import (
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// GroupSweepReport summarizes one group-commit sweep.
type GroupSweepReport struct {
	System   string
	Clients  int
	Cuts     int      // record-boundary crash instants examined
	Durable  []int    // durable-commit count at each cut (diagnostics)
	Failures []string // violated invariants, with the cut and client
}

// groupSweepClient is one committer's setup and expected values.
type groupSweepClient struct {
	cli       *client.Client
	oids      [2]page.OID
	tid       logrec.TID // transaction that wrote newVal, set in phase 3
	commitEnd uint64     // exclusive end LSN of its commit record, 0 if absent
}

const groupObjectSize = 16

func groupVal(prefix string, k int) []byte {
	b := make([]byte, groupObjectSize)
	copy(b, fmt.Sprintf("%s-%03d", prefix, k))
	return b
}

// GroupCommitSweep runs the self-validating group-commit crash sweep for one
// scheme with nclients concurrent committers.
func GroupCommitSweep(sys SweepSystem, nclients int) (*GroupSweepReport, error) {
	fuse := faultinject.NewFuse(-1)
	mem := disk.NewMemStore()
	store := faultinject.NewSweepStore(mem, fuse)
	log := wal.New(sweepLogCapacity)
	log.SetFlushLimiter(func(proposed uint64) uint64 {
		if _, ok := fuse.Event(); !ok {
			return 0
		}
		return proposed
	})
	log.SetTruncateGate(func() bool {
		_, ok := fuse.Event()
		return ok
	})
	srv := server.New(server.Config{
		Mode:            sys.Mode,
		Store:           store,
		Log:             log,
		LogCapacity:     sweepLogCapacity,
		PoolPages:       sweepServerPool,
		CheckpointEvery: 1 << 30, // checkpoints only where the sweep asks for one
	})
	defer srv.Close()

	newClient := func(s *server.Server) *client.Client {
		return client.New(client.Config{
			Scheme:         sys.Scheme,
			PoolPages:      sweepClientPool,
			ShipDirtyPages: sys.Mode != server.ModeREDO,
		}, wire.NewDirect(s, nil, nil))
	}

	// Phase 1: serial setup, then checkpoint so it is durable.
	clients := make([]*groupSweepClient, nclients)
	for k := range clients {
		c := &groupSweepClient{cli: newClient(srv)}
		tx, err := c.cli.Begin()
		if err != nil {
			return nil, fmt.Errorf("groupsweep setup begin: %w", err)
		}
		for i := range c.oids {
			if _, err := tx.NewPage(); err != nil {
				return nil, fmt.Errorf("groupsweep setup page: %w", err)
			}
			oid, err := tx.Allocate(groupObjectSize)
			if err != nil {
				return nil, fmt.Errorf("groupsweep setup alloc: %w", err)
			}
			if err := tx.Write(oid, 0, groupVal("old", k)); err != nil {
				return nil, fmt.Errorf("groupsweep setup write: %w", err)
			}
			c.oids[i] = oid
		}
		if err := tx.Commit(); err != nil {
			return nil, fmt.Errorf("groupsweep setup commit: %w", err)
		}
		clients[k] = c
	}
	if err := srv.NewSession(nil, nil).Checkpoint(); err != nil {
		return nil, fmt.Errorf("groupsweep checkpoint: %w", err)
	}

	// Phase 2: freeze stable storage.
	fuse.Trip()
	frozenEnd := log.StableEnd()

	// Phase 3: concurrent committers. Every commit call returns (the flush
	// attempt happened; the fuse swallowed it), but nothing became durable.
	var wg sync.WaitGroup
	errs := make([]error, nclients)
	for k := range clients {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := clients[k]
			tx, err := c.cli.Begin()
			if err != nil {
				errs[k] = err
				return
			}
			c.tid = tx.TID()
			for _, oid := range c.oids {
				if err := tx.Write(oid, 0, groupVal("new", k)); err != nil {
					tx.Abort()
					errs[k] = err
					return
				}
			}
			errs[k] = tx.Commit()
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("groupsweep client %d commit: %w", k, err)
		}
	}

	// Phase 4: enumerate the volatile tail. Scan walks appended records past
	// the stable end; boundaries above frozenEnd are the cuts, and each
	// client's commit record tells us its durability threshold.
	byTID := make(map[logrec.TID]*groupSweepClient, nclients)
	for _, c := range clients {
		byTID[c.tid] = c
	}
	cuts := []uint64{frozenEnd}
	if err := log.Scan(log.Head(), func(r *logrec.Record) bool {
		end := r.LSN + uint64(r.EncodedSize())
		if end <= frozenEnd {
			return true
		}
		cuts = append(cuts, end)
		if r.Type == logrec.TypeCommit {
			if c := byTID[r.TID]; c != nil {
				c.commitEnd = end
			}
		}
		return true
	}); err != nil {
		return nil, fmt.Errorf("groupsweep scan: %w", err)
	}
	for k, c := range clients {
		if c.commitEnd == 0 {
			return nil, fmt.Errorf("groupsweep: client %d (tid %v) has no commit record in the volatile tail", k, c.tid)
		}
	}

	rep := &GroupSweepReport{System: sys.Name, Clients: nclients, Cuts: len(cuts)}
	for _, cut := range cuts {
		durable := 0
		lg := log.CrashClone(cut)
		st := mem.Clone()
		srv2 := server.New(server.Config{
			Mode:            sys.Mode,
			Store:           st,
			Log:             lg,
			LogCapacity:     sweepLogCapacity,
			PoolPages:       sweepServerPool,
			CheckpointEvery: 1 << 30,
			RedoWorkers:     4, // drive parallel redo through every cut
		})
		if err := srv2.NewSession(nil, nil).Restart(); err != nil {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("cut %d: restart failed: %v", cut, err))
			continue
		}
		vcli := newClient(srv2)
		tx, err := vcli.Begin()
		if err != nil {
			return nil, fmt.Errorf("groupsweep verify begin (cut %d): %w", cut, err)
		}
		for k, c := range clients {
			want := groupVal("old", k)
			if c.commitEnd <= cut {
				want = groupVal("new", k)
				durable++
			}
			for i, oid := range c.oids {
				got, err := tx.ReadObject(oid)
				if err != nil {
					rep.Failures = append(rep.Failures,
						fmt.Sprintf("cut %d: client %d object %d unreadable: %v", cut, k, i, err))
					continue
				}
				if string(got) != string(want) {
					rep.Failures = append(rep.Failures, fmt.Sprintf(
						"cut %d: client %d (tid %v, commit end %d) object %d = %q, want %q",
						cut, k, c.tid, c.commitEnd, i, got, want))
				}
			}
		}
		tx.Abort()
		rep.Durable = append(rep.Durable, durable)
	}
	return rep, nil
}
