package harness

// Replication failover sweep: systematic promotion testing for all five
// recovery schemes.
//
// The sweep runs the deterministic OO7 update workload once against a
// primary whose WAL is shipped through repl.Primary — the real shipping
// path, ship gate and all — draining the stream after every commit into a
// record journal. Every record boundary in that stream is a cut: the state a
// standby holds when the primary dies after shipping exactly that prefix
// (losing the primary at "every replication-protocol event" reduces to
// losing it at every shipped-record boundary, since batches are always whole
// records). For each sampled cut the sweep builds two identical standbys fed
// the same prefix through ApplyShipped and recovers them two different ways:
//
//   - standby A promotes in place (repl's failover: Crash + Restart on the
//     standby server);
//   - standby B is crashed and its surviving store and log are adopted by a
//     fresh single-node server that runs the scheme's normal Restart — the
//     exact construction the crash-point sweep uses.
//
// The two volumes must be byte-identical: promotion is the same pure
// function of stable state as single-node restart, with no replica-only
// divergence. On the promoted standby the sweep then checks the durability
// contract — every transaction whose commit record the stream prefix covers
// (which is exactly the set a semi-sync primary would have acked at that
// cut) reads back durable, every later or partially-shipped transaction is
// wholly rolled back, and no object is torn — and finally that a second
// crash+restart of the promoted node changes no data page.
//
// Everything is deterministic: the same (system, seed) pair produces the
// same stream and the same verdicts, so a failure reproduces from its
// printed system, seed and cut alone via ReplayReplCut.

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/oo7"
	"repro/internal/page"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// replLogCapacity is larger than the crash sweep's: the ship gate holds
// truncation behind the drain cursor, so the log briefly carries the whole
// build between drains.
const replLogCapacity = 64 << 20

// replTxn journals one stamp transaction in LSN space: the primary's stable
// end immediately before and after its commit call. The client is serial, so
// a transaction is covered by a stream prefix ending at cut iff post ≤ cut,
// and a cut in (pre, post) caught it partially shipped.
type replTxn struct {
	pre, post uint64
	parts     [2]page.OID
	val       uint32
}

// replRun is the recorded shipping stream and journal of one workload
// execution.
type replRun struct {
	sys  SweepSystem
	seed int64
	recs []*logrec.Record
	ends []uint64 // exclusive end LSN of each shipped record
	// stream bookkeeping for the data invariants
	parts       []page.OID
	init        []uint32
	txns        []replTxn
	buildEndLSN uint64
}

// replStandbyConfig builds the configuration shared by every standby node of
// a replay; automatic checkpoints stay off (the mirrored ones arrive in the
// stream) and the standby flag selects the apply-only regime.
func replStandbyConfig(mode server.Mode, standby bool, store disk.Store, log *wal.Log) server.Config {
	return server.Config{
		Mode:            mode,
		Standby:         standby,
		Store:           store,
		Log:             log,
		LogCapacity:     replLogCapacity,
		PoolPages:       sweepServerPool,
		CheckpointEvery: 1 << 30,
	}
}

// runReplWorkload executes the sweep workload against a shipping primary and
// records the full stream. The first fetch happens before any work so the
// ship gate is armed from LSN zero — nothing is ever reclaimed undrained.
func runReplWorkload(sys SweepSystem, seed int64) (*replRun, error) {
	plog := wal.New(replLogCapacity)
	prim := repl.NewPrimary(plog, repl.PrimaryOptions{})
	cfg := server.Config{
		Mode:            sys.Mode,
		Store:           disk.NewMemStore(),
		Log:             plog,
		LogCapacity:     replLogCapacity,
		PoolPages:       sweepServerPool,
		CheckpointEvery: sweepCkptEvery,
	}
	prim.Wire(&cfg)
	srv := server.New(cfg)
	cli := client.New(client.Config{
		Scheme:         sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: sys.Mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))
	run := &replRun{sys: sys, seed: seed}

	cursor := plog.Head()
	drain := func() error {
		for {
			b, err := prim.Fetch(cursor, cursor, 0)
			if err != nil {
				return err
			}
			if len(b.Records) == 0 {
				return nil
			}
			recs, err := logrec.DecodeAll(b.Records)
			if err != nil {
				return err
			}
			end := cursor
			for _, r := range recs {
				end = r.LSN + uint64(r.EncodedSize())
				run.recs = append(run.recs, r)
				run.ends = append(run.ends, end)
			}
			if end != b.Next {
				return fmt.Errorf("drain cursor %d != batch next %d", end, b.Next)
			}
			cursor = b.Next
		}
	}
	fail := func(stage string, err error) (*replRun, error) {
		return nil, fmt.Errorf("repl sweep workload %s (system=%s seed=%d): %w", stage, sys.Name, seed, err)
	}

	if err := drain(); err != nil { // arm the ship gate before any record exists
		return fail("arm", err)
	}
	db, err := oo7.Build(cli, sweepDBConfig(), seed)
	if err != nil {
		return fail("build", err)
	}
	run.parts, err = oo7.CollectAtomicParts(cli, &db.Modules[0])
	if err != nil {
		return fail("collect", err)
	}
	tx, err := cli.Begin()
	if err != nil {
		return fail("baseline begin", err)
	}
	for _, p := range run.parts {
		x, _, err := oo7.ReadXY(tx, p)
		if err != nil {
			tx.Abort()
			return fail("baseline read", err)
		}
		run.init = append(run.init, x)
	}
	tx.Abort()
	if err := drain(); err != nil {
		return fail("build drain", err)
	}
	run.buildEndLSN = cursor

	for i := 0; i < sweepStamps; i++ {
		st := replTxn{
			val:   uint32(10001 + i),
			parts: [2]page.OID{run.parts[(2*i)%len(run.parts)], run.parts[(2*i+1)%len(run.parts)]},
		}
		tx, err := cli.Begin()
		if err != nil {
			return fail("stamp begin", err)
		}
		for _, p := range st.parts {
			if err := oo7.StampXY(tx, p, st.val); err != nil {
				tx.Abort()
				return fail("stamp write", err)
			}
		}
		st.pre = plog.StableEnd()
		if err := tx.Commit(); err != nil {
			return fail("stamp commit", err)
		}
		if err := drain(); err != nil {
			return fail("stamp drain", err)
		}
		// post is the end of the commit record itself, found in the drained
		// stream — NOT the post-commit stable end, which may also cover a
		// checkpoint record the commit path appended right after (a cut
		// between the two must still count this transaction durable).
		for i := len(run.recs) - 1; i >= 0; i-- {
			if run.recs[i].Type == logrec.TypeCommit && run.recs[i].LSN >= st.pre {
				st.post = run.ends[i]
				break
			}
		}
		if st.post == 0 {
			return fail("stamp journal", fmt.Errorf("commit record for stamp %d not found in stream", i))
		}
		run.txns = append(run.txns, st)
	}
	plog.Force()
	if err := drain(); err != nil {
		return fail("final drain", err)
	}
	return run, nil
}

// modelAfter returns the expected x value of every part once the first k
// stamp transactions (and nothing else) have been applied.
func (r *replRun) modelAfter(k int) []uint32 {
	vals := append([]uint32(nil), r.init...)
	idx := make(map[page.OID]int, len(r.parts))
	for i, p := range r.parts {
		idx[p] = i
	}
	for i := 0; i < k; i++ {
		for _, p := range r.txns[i].parts {
			vals[idx[p]] = r.txns[i].val
		}
	}
	return vals
}

// ReplSweep records the shipping stream for the system and replays
// promotion at up to `budget` record-boundary cuts (≤ 0 = all), evenly
// spaced so the sample always covers the first and last records. Failures
// accumulate; they do not stop the sweep.
func ReplSweep(sys SweepSystem, seed int64, budget int) (*SweepReport, error) {
	run, err := runReplWorkload(sys, seed)
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{System: sys.Name, Seed: seed, Points: int64(len(run.recs))}
	for _, p := range samplePoints(int64(len(run.recs)), budget) {
		rep.Replayed = append(rep.Replayed, p)
		f, err := replayReplCut(run, int(p))
		if err != nil {
			return nil, err
		}
		if f != nil {
			rep.Failures = append(rep.Failures, f)
		}
	}
	return rep, nil
}

// ReplayReplCut re-runs a single promotion cut — the reproduction entry
// point printed with every failure. system must be a SweepSystems name; cut
// is 1-based over the shipped record stream.
func ReplayReplCut(system string, seed int64, cut int64) (*SweepFailure, error) {
	for _, sys := range SweepSystems() {
		if sys.Name == system {
			run, err := runReplWorkload(sys, seed)
			if err != nil {
				return nil, err
			}
			return replayReplCut(run, int(cut))
		}
	}
	return nil, fmt.Errorf("harness: unknown sweep system %q", system)
}

// replNode is one fed standby: a server in standby mode over its own store
// and log.
type replNode struct {
	store *disk.MemStore
	log   *wal.Log
	srv   *server.Server
	sn    *server.Session
}

// feedStandby builds a standby and applies the first `cut` records of the
// stream — the state a standby holds when the primary dies right after
// shipping record `cut`.
func feedStandby(run *replRun, cut int) (*replNode, error) {
	n := &replNode{store: disk.NewMemStore(), log: wal.New(replLogCapacity)}
	n.srv = server.New(replStandbyConfig(run.sys.Mode, true, n.store, n.log))
	n.sn = n.srv.NewSession(nil, nil)
	for _, r := range run.recs[:cut] {
		if err := n.sn.ApplyShipped(r); err != nil {
			return nil, fmt.Errorf("apply record at %d: %w", r.LSN, err)
		}
	}
	n.log.Force()
	return n, nil
}

// replayReplCut feeds two identical standbys the stream prefix, promotes
// one, single-node-restarts the other, and checks the failover invariants.
// A nil failure means the cut passed.
func replayReplCut(run *replRun, cut int) (*SweepFailure, error) {
	if cut < 1 || cut > len(run.recs) {
		return nil, fmt.Errorf("harness: repl cut %d out of range 1..%d", cut, len(run.recs))
	}
	cutLSN := run.ends[cut-1]
	bad := func(format string, args ...interface{}) *SweepFailure {
		return &SweepFailure{System: run.sys.Name, Seed: run.seed, Point: int64(cut),
			Detail: fmt.Sprintf(format, args...), Variant: "repl"}
	}

	// Standby A: the repl failover path.
	a, err := feedStandby(run, cut)
	if err != nil {
		return nil, err
	}
	if err := a.sn.Promote(); err != nil {
		return bad("promote failed: %v", err), nil
	}

	// Standby B: crash, then adopt store and log on a fresh single-node
	// server — the crash-point sweep's recovery construction.
	b, err := feedStandby(run, cut)
	if err != nil {
		return nil, err
	}
	b.srv.Crash()
	srvB := server.New(replStandbyConfig(run.sys.Mode, false, b.store, b.log))
	if err := srvB.NewSession(nil, nil).Restart(); err != nil {
		return bad("single-node restart failed: %v", err), nil
	}

	// Promotion must be byte-equivalent to single-node restart.
	da, err := dumpStore(a.store)
	if err != nil {
		return nil, err
	}
	db, err := dumpStore(b.store)
	if err != nil {
		return nil, err
	}
	if diff := diffDumps(da, db); diff != "" {
		return bad("promoted volume diverges from single-node restart: %s", diff), nil
	}

	// Durability contract on the promoted standby (meaningful once the build
	// itself is fully shipped).
	if cutLSN > run.buildEndLSN {
		if f := verifyReplStamps(run, a.srv, cutLSN, bad); f != nil {
			return f, nil
		}
	}

	// Idempotence: crash+restart of the promoted node changes no data page.
	before, err := dumpStore(a.store)
	if err != nil {
		return nil, err
	}
	a.srv.Crash()
	srvA2 := server.New(replStandbyConfig(run.sys.Mode, false, a.store, a.log))
	if err := srvA2.NewSession(nil, nil).Restart(); err != nil {
		return bad("restart after promotion failed: %v", err), nil
	}
	after, err := dumpStore(a.store)
	if err != nil {
		return nil, err
	}
	if diff := diffDumps(before, after); diff != "" {
		return bad("promoted node restart not idempotent: %s", diff), nil
	}
	return nil, nil
}

// verifyReplStamps checks the durability contract against the promoted
// server: exactly the transactions whose commit record is inside the prefix
// (post ≤ cutLSN — the semi-sync acked set at this cut) are durable, with no
// torn object updates. Unlike the crash sweep there is no ambiguous
// boundary: a transaction's commit record is its last shipped record, so a
// prefix either covers the commit or the transaction must roll back.
func verifyReplStamps(run *replRun, srv *server.Server, cutLSN uint64,
	bad func(string, ...interface{}) *SweepFailure) *SweepFailure {
	kc := 0
	for kc < len(run.txns) && run.txns[kc].post <= cutLSN {
		kc++
	}
	cli := client.New(client.Config{
		Scheme:         run.sys.Scheme,
		PoolPages:      sweepClientPool,
		ShipDirtyPages: run.sys.Mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))
	tx, err := cli.Begin()
	if err != nil {
		return bad("verification begin failed: %v", err)
	}
	defer tx.Abort()
	want := run.modelAfter(kc)
	for i, p := range run.parts {
		x, y, err := oo7.ReadXY(tx, p)
		if err != nil {
			return bad("verification read of part %v failed: %v", p, err)
		}
		if x != y && (x > 10000 || y > 10000) {
			return bad("part %v has x=%d y=%d (stamps always write x=y: torn object update)", p, x, y)
		}
		if x != want[i] {
			return bad("part %v = %d, want %d (%d of %d stamp commits inside the shipped prefix)",
				p, x, want[i], kc, len(run.txns))
		}
	}
	return nil
}
