package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInitEmpty(t *testing.T) {
	p := New(7)
	if p.ID() != 7 {
		t.Fatalf("ID = %v, want 7", p.ID())
	}
	if p.LSN() != 0 {
		t.Fatalf("LSN = %d, want 0", p.LSN())
	}
	if p.SlotCount() != 0 {
		t.Fatalf("SlotCount = %d, want 0", p.SlotCount())
	}
	want := Size - HeaderSize - TrailerSize - slotSize
	if p.FreeSpace() != want {
		t.Fatalf("FreeSpace = %d, want %d", p.FreeSpace(), want)
	}
}

func TestSetLSN(t *testing.T) {
	p := New(1)
	p.SetLSN(0xdeadbeefcafe)
	if p.LSN() != 0xdeadbeefcafe {
		t.Fatalf("LSN = %x", p.LSN())
	}
}

func TestAllocateAndAccess(t *testing.T) {
	p := New(1)
	s1, err := p.Allocate(100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Allocate(200)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatalf("duplicate slot %d", s1)
	}
	data := bytes.Repeat([]byte{0xab}, 100)
	if err := p.WriteAt(s1, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if err := p.ReadAt(s1, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	// s2 must still be zero.
	got2 := make([]byte, 200)
	if err := p.ReadAt(s2, 0, got2); err != nil {
		t.Fatal(err)
	}
	for _, b := range got2 {
		if b != 0 {
			t.Fatal("fresh object not zeroed")
		}
	}
}

func TestAllocateZeroesReusedSpace(t *testing.T) {
	p := New(1)
	s, _ := p.Allocate(64)
	if err := p.WriteAt(s, 0, bytes.Repeat([]byte{0xff}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(s); err != nil {
		t.Fatal(err)
	}
	s2, err := p.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := p.Object(s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range obj {
		if b != 0 {
			t.Fatal("reused slot object not zeroed")
		}
	}
}

func TestAllocateUntilFull(t *testing.T) {
	p := New(1)
	n := 0
	for {
		_, err := p.Allocate(64)
		if err == ErrPageFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	// 64-byte objects cost 68 bytes each; at least 100 should fit in 8K.
	if n < 100 {
		t.Fatalf("only %d objects fit", n)
	}
	if p.FreeSpace() >= 64+slotSize {
		t.Fatalf("FreeSpace = %d after full", p.FreeSpace())
	}
}

func TestObjectTooLarge(t *testing.T) {
	p := New(1)
	if _, err := p.Allocate(MaxObjectSize + 1); err != ErrObjectLarge {
		t.Fatalf("err = %v, want ErrObjectLarge", err)
	}
	if _, err := p.Allocate(-1); err != ErrObjectLarge {
		t.Fatalf("err = %v, want ErrObjectLarge", err)
	}
	// The max-size object must fit in an empty page.
	if _, err := p.Allocate(MaxObjectSize); err != nil {
		t.Fatalf("max object: %v", err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	p := New(1)
	s1, _ := p.Allocate(100)
	s2, _ := p.Allocate(100)
	if err := p.Free(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Object(s1); err != ErrBadSlot {
		t.Fatalf("freed slot readable: %v", err)
	}
	if err := p.Free(s1); err != ErrBadSlot {
		t.Fatalf("double free: %v", err)
	}
	s3, err := p.Allocate(50)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatalf("slot not reused: got %d want %d", s3, s1)
	}
	if _, err := p.Object(s2); err != nil {
		t.Fatal("free damaged neighbour slot")
	}
}

func TestBoundsChecks(t *testing.T) {
	p := New(1)
	s, _ := p.Allocate(10)
	if err := p.ReadAt(s, 5, make([]byte, 6)); err != ErrBadBounds {
		t.Fatalf("read past end: %v", err)
	}
	if err := p.WriteAt(s, -1, []byte{1}); err != ErrBadBounds {
		t.Fatalf("negative offset: %v", err)
	}
	if err := p.ReadAt(99, 0, nil); err != ErrBadSlot {
		t.Fatalf("bad slot: %v", err)
	}
}

func TestLiveObjects(t *testing.T) {
	p := New(1)
	sizes := []int{10, 20, 30, 40}
	for _, sz := range sizes {
		if _, err := p.Allocate(sz); err != nil {
			t.Fatal(err)
		}
	}
	p.Free(2)
	var visited []int
	p.LiveObjects(func(slot int, data []byte) {
		visited = append(visited, slot)
		if len(data) != sizes[slot] {
			t.Fatalf("slot %d size %d want %d", slot, len(data), sizes[slot])
		}
	})
	want := []int{0, 1, 3}
	if len(visited) != len(want) {
		t.Fatalf("visited %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New(1)
	s, _ := p.Allocate(8)
	p.WriteAt(s, 0, []byte("original"))
	c := p.Clone()
	p.WriteAt(s, 0, []byte("mutated!"))
	got, _ := c.Object(s)
	if string(got) != "original" {
		t.Fatalf("clone shares storage: %q", got)
	}
}

func TestWrapSharesStorage(t *testing.T) {
	buf := make([]byte, Size)
	p := Wrap(buf)
	p.Init(42)
	if buf[8] != 42 {
		t.Fatal("Wrap does not share storage")
	}
}

func TestWrapPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short buffer")
		}
	}()
	Wrap(make([]byte, 100))
}

func TestOIDEncoding(t *testing.T) {
	o := OID{Page: 123456, Slot: 789}
	var b [OIDSize]byte
	EncodeOID(b[:], o)
	if got := DecodeOID(b[:]); got != o {
		t.Fatalf("round trip: %v != %v", got, o)
	}
	if !NilOID.IsNil() {
		t.Fatal("NilOID not nil")
	}
	if o.IsNil() {
		t.Fatal("real OID reported nil")
	}
}

func TestOIDEncodingQuick(t *testing.T) {
	f := func(pg uint32, slot uint16) bool {
		o := OID{Page: ID(pg), Slot: slot}
		var b [OIDSize]byte
		EncodeOID(b[:], o)
		return DecodeOID(b[:]) == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedAllocFree stresses the allocator with random alloc/free/write
// patterns and checks object isolation.
func TestRandomizedAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := New(9)
	type obj struct {
		slot int
		data []byte
	}
	var live []obj
	for step := 0; step < 2000; step++ {
		switch {
		case len(live) == 0 || rng.Intn(3) != 0:
			size := 1 + rng.Intn(300)
			slot, err := p.Allocate(size)
			if err == ErrPageFull {
				if len(live) == 0 {
					t.Fatal("empty page reports full")
				}
				// Free a random object to make progress.
				i := rng.Intn(len(live))
				if err := p.Free(live[i].slot); err != nil {
					t.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, size)
			rng.Read(data)
			if err := p.WriteAt(slot, 0, data); err != nil {
				t.Fatal(err)
			}
			live = append(live, obj{slot, data})
		default:
			i := rng.Intn(len(live))
			if err := p.Free(live[i].slot); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		// Verify all live objects.
		for _, o := range live {
			got, err := p.Object(o.slot)
			if err != nil {
				t.Fatalf("step %d: slot %d: %v", step, o.slot, err)
			}
			if !bytes.Equal(got, o.data) {
				t.Fatalf("step %d: slot %d corrupted", step, o.slot)
			}
		}
	}
}

// Property: FreeSpace never goes negative and an Allocate of exactly
// FreeSpace bytes succeeds on a fresh page.
func TestFreeSpaceExact(t *testing.T) {
	p := New(1)
	p.Allocate(1000)
	fs := p.FreeSpace()
	if _, err := p.Allocate(fs); err != nil {
		t.Fatalf("Allocate(FreeSpace=%d): %v", fs, err)
	}
	if p.FreeSpace() != 0 {
		t.Fatalf("FreeSpace after exact fill = %d", p.FreeSpace())
	}
}
