// Package page implements the fixed-size slotted page format shared by the
// QuickStore client and the storage server.
//
// A page is an 8 KB byte array (the paper's virtual-memory frame size)
// divided into a header, an object area that grows upward, and a slot
// directory that grows downward from the end of the page. Objects are
// addressed by an OID that names the page and the slot within it; the slot
// indirection lets objects move within a page without invalidating OIDs.
//
// Layout:
//
//	[0,8)    page LSN (uint64) — LSN of the last log record applied
//	[8,12)   page id (uint32)
//	[12,14)  slot count (uint16)
//	[14,16)  free-space offset (uint16), start of unused object area
//	[16,...) object area
//	[...,8K-16) slot directory: 4 bytes per slot (offset uint16, length uint16),
//	         slot i at bytes [Size-TrailerSize-4*(i+1), Size-TrailerSize-4*i)
//	[8K-16,8K) integrity trailer, reserved for the storage layer
//	         (disk.Checksummed stamps a CRC envelope here; the page code
//	         never touches these bytes, so the envelope survives every
//	         in-memory copy, backup and whole-page log image)
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the size of every database page and virtual-memory frame in bytes.
const Size = 8192

// HeaderSize is the number of bytes reserved at the start of each page.
const HeaderSize = 16

// TrailerSize is the number of bytes reserved at the end of each page for
// the storage layer's integrity envelope (disk.StampTrailer). The slot
// directory grows down from Size-TrailerSize, so these bytes are never used
// for objects or slots.
const TrailerSize = 16

const slotSize = 4

// ID identifies a page within the database.
type ID uint32

// InvalidID is never assigned to a real page.
const InvalidID ID = 0

// String implements fmt.Stringer.
func (id ID) String() string { return fmt.Sprintf("P%d", uint32(id)) }

// OID identifies a persistent object: a page and a slot within it.
type OID struct {
	Page ID
	Slot uint16
}

// NilOID is the zero OID, used as a null object reference.
var NilOID = OID{}

// IsNil reports whether the OID is the null reference.
func (o OID) IsNil() bool { return o == NilOID }

// String implements fmt.Stringer.
func (o OID) String() string { return fmt.Sprintf("P%d.%d", uint32(o.Page), o.Slot) }

// OIDSize is the encoded size of an OID in object data.
const OIDSize = 8

// EncodeOID writes o into b, which must be at least OIDSize bytes.
func EncodeOID(b []byte, o OID) {
	binary.LittleEndian.PutUint32(b, uint32(o.Page))
	binary.LittleEndian.PutUint16(b[4:], o.Slot)
	binary.LittleEndian.PutUint16(b[6:], 0)
}

// DecodeOID reads an OID previously written by EncodeOID.
func DecodeOID(b []byte) OID {
	return OID{
		Page: ID(binary.LittleEndian.Uint32(b)),
		Slot: binary.LittleEndian.Uint16(b[4:]),
	}
}

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("page: not enough free space")
	ErrBadSlot     = errors.New("page: no such slot")
	ErrBadBounds   = errors.New("page: access out of object bounds")
	ErrObjectLarge = errors.New("page: object larger than a page can hold")
)

// MaxObjectSize is the largest object a single page can hold.
const MaxObjectSize = Size - HeaderSize - TrailerSize - slotSize

// Page is an 8 KB database page. The zero value is not valid; use Init or
// interpret bytes received from disk or the network in place.
type Page struct {
	buf []byte
}

// New allocates a fresh, formatted page with the given id.
func New(id ID) *Page {
	p := &Page{buf: make([]byte, Size)}
	p.Init(id)
	return p
}

// Wrap interprets buf, which must be exactly Size bytes, as a page. The page
// shares storage with buf.
func Wrap(buf []byte) *Page {
	if len(buf) != Size {
		panic(fmt.Sprintf("page: Wrap with %d bytes, want %d", len(buf), Size))
	}
	return &Page{buf: buf}
}

// Init formats the page as empty with the given id.
func (p *Page) Init(id ID) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	binary.LittleEndian.PutUint32(p.buf[8:], uint32(id))
	p.setSlotCount(0)
	p.setFreeOff(HeaderSize)
}

// Bytes returns the page's backing storage. Mutating the returned slice
// mutates the page.
func (p *Page) Bytes() []byte { return p.buf }

// ID returns the page id stored in the header.
func (p *Page) ID() ID { return ID(binary.LittleEndian.Uint32(p.buf[8:])) }

// LSN returns the page LSN from the header.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf) }

// SetLSN stores lsn in the page header.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf, lsn) }

// SlotCount returns the number of slots in the directory, including freed ones.
func (p *Page) SlotCount() int { return int(binary.LittleEndian.Uint16(p.buf[12:])) }

func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[12:], uint16(n)) }

func (p *Page) freeOff() int { return int(binary.LittleEndian.Uint16(p.buf[14:])) }

func (p *Page) setFreeOff(off int) { binary.LittleEndian.PutUint16(p.buf[14:], uint16(off)) }

func (p *Page) slotPos(slot int) int { return Size - TrailerSize - slotSize*(slot+1) }

func (p *Page) slot(slot int) (off, length int) {
	pos := p.slotPos(slot)
	return int(binary.LittleEndian.Uint16(p.buf[pos:])), int(binary.LittleEndian.Uint16(p.buf[pos+2:]))
}

func (p *Page) setSlot(slot, off, length int) {
	pos := p.slotPos(slot)
	binary.LittleEndian.PutUint16(p.buf[pos:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[pos+2:], uint16(length))
}

// FreeSpace returns the number of bytes available for a new object,
// accounting for the slot directory entry it would need.
func (p *Page) FreeSpace() int {
	// slotPos(SlotCount) is the position the next directory entry would
	// occupy, so the object area may grow up to it.
	n := p.slotPos(p.SlotCount()) - p.freeOff()
	if n < 0 {
		return 0
	}
	return n
}

// Allocate creates a new object of the given size, zero-filled, and returns
// its slot number. It fails with ErrPageFull if the page cannot hold it.
func (p *Page) Allocate(size int) (slot int, err error) {
	if size < 0 || size > MaxObjectSize {
		return 0, ErrObjectLarge
	}
	n, reuse, need := p.allocPlan(size)
	if p.slotPos(n)-p.freeOff() < need {
		// Out of contiguous space; compact and re-plan, since compaction can
		// trim trailing free slots and change both the directory size and
		// which slot is reusable.
		p.compact()
		n, reuse, need = p.allocPlan(size)
		if p.slotPos(n)-p.freeOff() < need {
			return 0, ErrPageFull
		}
	}
	off := p.freeOff()
	p.setFreeOff(off + size)
	if reuse >= 0 {
		slot = reuse
	} else {
		slot = n
		p.setSlotCount(n + 1)
	}
	p.setSlot(slot, off, size)
	for i := off; i < off+size; i++ {
		p.buf[i] = 0
	}
	return slot, nil
}

// allocPlan computes the slot-directory size, the reusable free slot (-1 if
// none — length 0, offset 0 marks free), and the space needed for an
// allocation of the given size.
func (p *Page) allocPlan(size int) (n, reuse, need int) {
	n = p.SlotCount()
	reuse = -1
	for i := 0; i < n; i++ {
		if off, l := p.slot(i); off == 0 && l == 0 {
			reuse = i
			break
		}
	}
	// The object area may grow up to slotPos(n), which already leaves room
	// for one more directory entry; reusing a slot frees that reserve.
	need = size
	if reuse >= 0 {
		need -= slotSize
	}
	return n, reuse, need
}

// compact slides live objects to the front of the object area, reclaiming
// the space of freed objects. Slot numbers are stable; only offsets change.
func (p *Page) compact() {
	type ent struct{ slot, off, len int }
	n := p.SlotCount()
	live := make([]ent, 0, n)
	for i := 0; i < n; i++ {
		off, l := p.slot(i)
		if off == 0 && l == 0 {
			continue
		}
		live = append(live, ent{i, off, l})
	}
	// Objects were allocated in increasing offset order and never move, so
	// sorting by offset lets us slide each one left in place.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].off < live[j-1].off; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	dst := HeaderSize
	for _, e := range live {
		if e.off != dst {
			copy(p.buf[dst:dst+e.len], p.buf[e.off:e.off+e.len])
			p.setSlot(e.slot, dst, e.len)
		}
		dst += e.len
	}
	p.setFreeOff(dst)
	// Trim trailing free slots from the directory so their space returns to
	// the object area.
	for n > 0 {
		if off, l := p.slot(n - 1); off == 0 && l == 0 {
			n--
		} else {
			break
		}
	}
	p.setSlotCount(n)
}

// Free releases the object in slot. The space is not compacted; the slot can
// be reused by a later Allocate of any size that still fits.
func (p *Page) Free(slot int) error {
	if slot < 0 || slot >= p.SlotCount() {
		return ErrBadSlot
	}
	if off, l := p.slot(slot); off == 0 && l == 0 {
		return ErrBadSlot
	}
	p.setSlot(slot, 0, 0)
	return nil
}

// ObjectSize returns the size of the object in slot.
func (p *Page) ObjectSize(slot int) (int, error) {
	if slot < 0 || slot >= p.SlotCount() {
		return 0, ErrBadSlot
	}
	off, l := p.slot(slot)
	if off == 0 && l == 0 {
		return 0, ErrBadSlot
	}
	return l, nil
}

// ObjectOffset returns the byte offset within the page of the object in slot.
// The object occupies [offset, offset+size).
func (p *Page) ObjectOffset(slot int) (int, error) {
	if slot < 0 || slot >= p.SlotCount() {
		return 0, ErrBadSlot
	}
	off, l := p.slot(slot)
	if off == 0 && l == 0 {
		return 0, ErrBadSlot
	}
	return off, nil
}

// Object returns the object's bytes in place. Mutations write through to the
// page.
func (p *Page) Object(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.SlotCount() {
		return nil, ErrBadSlot
	}
	off, l := p.slot(slot)
	if off == 0 && l == 0 {
		return nil, ErrBadSlot
	}
	return p.buf[off : off+l : off+l], nil
}

// ReadAt copies len(dst) bytes from the object at the given offset.
func (p *Page) ReadAt(slot, off int, dst []byte) error {
	obj, err := p.Object(slot)
	if err != nil {
		return err
	}
	if off < 0 || off+len(dst) > len(obj) {
		return ErrBadBounds
	}
	copy(dst, obj[off:])
	return nil
}

// WriteAt copies src into the object at the given offset.
func (p *Page) WriteAt(slot, off int, src []byte) error {
	obj, err := p.Object(slot)
	if err != nil {
		return err
	}
	if off < 0 || off+len(src) > len(obj) {
		return ErrBadBounds
	}
	copy(obj[off:], src)
	return nil
}

// LiveObjects calls fn for every allocated slot with its in-place bytes.
// Iteration is in slot order.
func (p *Page) LiveObjects(fn func(slot int, data []byte)) {
	n := p.SlotCount()
	for i := 0; i < n; i++ {
		off, l := p.slot(i)
		if off == 0 && l == 0 {
			continue
		}
		fn(i, p.buf[off:off+l])
	}
}

// Clone returns a deep copy of the page.
func (p *Page) Clone() *Page {
	b := make([]byte, Size)
	copy(b, p.buf)
	return &Page{buf: b}
}

// CopyFrom overwrites the page's contents with those of src.
func (p *Page) CopyFrom(src *Page) { copy(p.buf, src.buf) }
