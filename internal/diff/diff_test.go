package diff

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mutate(b []byte, regions ...Region) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	for _, r := range regions {
		for i := r.Off; i < r.End(); i++ {
			out[i] ^= 0xff
		}
	}
	return out
}

func TestNoChange(t *testing.T) {
	b := make([]byte, 100)
	if got := Regions(b, b); got != nil {
		t.Fatalf("Regions of equal images = %v", got)
	}
	if Changed(b, b) {
		t.Fatal("Changed of equal images")
	}
}

func TestSingleRegion(t *testing.T) {
	before := make([]byte, 100)
	after := mutate(before, Region{10, 5})
	got := Regions(before, after)
	if len(got) != 1 || got[0] != (Region{10, 5}) {
		t.Fatalf("got %v", got)
	}
	if !Changed(before, after) {
		t.Fatal("Changed missed the update")
	}
}

// The paper's worked example: words 1 and 3 of an object updated (1 word =
// 4 bytes). One combined record costs 50+2*12 = 74 bytes; two separate
// records cost 2*(50+2*4) = 116. The gap is 4, 2*4 <= 50, so they combine.
func TestPaperExampleCombines(t *testing.T) {
	before := make([]byte, 16)
	after := mutate(before, Region{0, 4}, Region{8, 4})
	got := Regions(before, after)
	if len(got) != 1 || got[0] != (Region{0, 12}) {
		t.Fatalf("got %v, want one combined region [0,12)", got)
	}
	if lb := LogBytes(got, HeaderSize); lb != 74 {
		t.Fatalf("combined log bytes = %d, want 74", lb)
	}
	raw := RawRegions(before, after)
	if lb := LogBytes(raw, HeaderSize); lb != 116 {
		t.Fatalf("raw log bytes = %d, want 116", lb)
	}
}

func TestLargeGapStaysSeparate(t *testing.T) {
	before := make([]byte, 200)
	// Gap of 100: 2*100 > 50, so separate records win.
	after := mutate(before, Region{0, 4}, Region{104, 4})
	got := Regions(before, after)
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 regions", got)
	}
	if got[0] != (Region{0, 4}) || got[1] != (Region{104, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestBoundaryGap(t *testing.T) {
	// 2*gap == H exactly: the paper logs separately only when 2*D > H, so
	// an exact tie combines.
	h := 10
	before := make([]byte, 40)
	after := mutate(before, Region{0, 2}, Region{7, 2}) // gap 5, 2*5 == 10
	got := RegionsH(before, after, h)
	if len(got) != 1 {
		t.Fatalf("tie gap should combine: %v", got)
	}
	after = mutate(before, Region{0, 2}, Region{8, 2}) // gap 6, 2*6 > 10
	got = RegionsH(before, after, h)
	if len(got) != 2 {
		t.Fatalf("gap over threshold should split: %v", got)
	}
}

func TestThreeRegionChain(t *testing.T) {
	// R1 and R2 close (combine), R3 far (separate) — the paper's Figure 2.
	before := make([]byte, 300)
	after := mutate(before, Region{0, 8}, Region{16, 8}, Region{200, 8})
	got := Regions(before, after)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got[0] != (Region{0, 24}) || got[1] != (Region{200, 8}) {
		t.Fatalf("got %v", got)
	}
}

func TestEdgesOfObject(t *testing.T) {
	before := make([]byte, 10)
	after := mutate(before, Region{0, 1}, Region{9, 1})
	got := Regions(before, after)
	// Gap 8, 2*8 <= 50 → combined into the whole object.
	if len(got) != 1 || got[0] != (Region{0, 10}) {
		t.Fatalf("got %v", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Regions(make([]byte, 3), make([]byte, 4))
}

// applyRegions checks that copying the after-image bytes of each region onto
// the before-image reconstructs the after-image (redo correctness), and vice
// versa (undo correctness).
func TestRegionsCoverAllChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(512)
		before := make([]byte, n)
		rng.Read(before)
		after := make([]byte, n)
		copy(after, before)
		for k := rng.Intn(8); k > 0; k-- {
			off := rng.Intn(n)
			l := 1 + rng.Intn(n-off)
			for i := off; i < off+l; i++ {
				after[i] = byte(rng.Intn(256))
			}
		}
		regions := Regions(before, after)
		redo := make([]byte, n)
		copy(redo, before)
		undo := make([]byte, n)
		copy(undo, after)
		for _, r := range regions {
			copy(redo[r.Off:r.End()], after[r.Off:r.End()])
			copy(undo[r.Off:r.End()], before[r.Off:r.End()])
		}
		for i := 0; i < n; i++ {
			if redo[i] != after[i] {
				t.Fatalf("trial %d: redo misses byte %d", trial, i)
			}
			if undo[i] != before[i] {
				t.Fatalf("trial %d: undo misses byte %d", trial, i)
			}
		}
	}
}

// minLogBytes exhaustively partitions the raw regions into consecutive
// groups and returns the minimum log traffic achievable.
func minLogBytes(raw []Region, h int) int {
	if len(raw) == 0 {
		return 0
	}
	// dp[i] = min bytes to log raw[0:i].
	dp := make([]int, len(raw)+1)
	for i := 1; i <= len(raw); i++ {
		best := -1
		for j := 0; j < i; j++ {
			// One record covering raw[j:i].
			span := raw[i-1].End() - raw[j].Off
			cost := dp[j] + h + 2*span
			if best < 0 || cost < best {
				best = cost
			}
		}
		dp[i] = best
	}
	return dp[len(raw)]
}

// Property (paper §3.2.2): the greedy combining rule generates the minimum
// amount of log traffic over all ways of grouping consecutive regions.
func TestGreedyIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(256)
		before := make([]byte, n)
		rng.Read(before)
		after := make([]byte, n)
		copy(after, before)
		for k := rng.Intn(6); k > 0; k-- {
			off := rng.Intn(n)
			l := 1 + rng.Intn(min(16, n-off))
			for i := off; i < off+l; i++ {
				after[i] ^= 0x5a
			}
		}
		h := 1 + rng.Intn(100)
		greedy := LogBytes(RegionsH(before, after, h), h)
		opt := minLogBytes(RawRegions(before, after), h)
		if greedy != opt {
			t.Fatalf("trial %d (h=%d): greedy=%d optimal=%d", trial, h, greedy, opt)
		}
	}
}

func TestRegionsQuickRoundTrip(t *testing.T) {
	f := func(before []byte, seed int64) bool {
		after := make([]byte, len(before))
		copy(after, before)
		rng := rand.New(rand.NewSource(seed))
		for i := range after {
			if rng.Intn(4) == 0 {
				after[i] ^= byte(1 + rng.Intn(255))
			}
		}
		redo := make([]byte, len(before))
		copy(redo, before)
		for _, r := range Regions(before, after) {
			copy(redo[r.Off:r.End()], after[r.Off:r.End()])
		}
		for i := range redo {
			if redo[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
