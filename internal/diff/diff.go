// Package diff implements QuickStore's differencing algorithm for generating
// recovery log records (paper §3.2.2).
//
// Given the before- and after-images of an object, the algorithm identifies
// the consecutive modified regions and decides, for each pair of adjacent
// regions, whether to log them separately or to combine them into one
// region. With ESM's before/after-image log-record format, a separate record
// costs one extra header of H bytes while a combined record logs the
// unmodified gap twice (once in each image); regions separated by a gap D
// are therefore logged separately exactly when 2*size(D) > H. Because the
// decision depends only on the gap, the greedy left-to-right scan generates
// the minimum possible amount of log traffic (shown in the paper, verified
// here by property test against exhaustive search).
package diff

// HeaderSize is H, the size in bytes of an ESM log-record header. The paper
// reports approximately 50 bytes; internal/logrec matches this.
const HeaderSize = 50

// Region is a modified byte range [Off, Off+Len) within an object.
type Region struct {
	Off int
	Len int
}

// End returns the offset just past the region.
func (r Region) End() int { return r.Off + r.Len }

// Regions compares the before- and after-images of an object and returns the
// regions that must be logged, already combined according to the
// 2*gap > HeaderSize rule. The two slices must be the same length. The
// result is in increasing offset order; it is nil when the images are equal.
func Regions(before, after []byte) []Region {
	return RegionsH(before, after, HeaderSize)
}

// RegionsH is Regions with an explicit log-record header size h, used by
// tests and ablation benchmarks.
func RegionsH(before, after []byte, h int) []Region {
	if len(before) != len(after) {
		panic("diff: image length mismatch")
	}
	var out []Region
	n := len(before)
	i := 0
	for i < n {
		// Find the next modified byte.
		for i < n && before[i] == after[i] {
			i++
		}
		if i == n {
			break
		}
		start := i
		for i < n && before[i] != after[i] {
			i++
		}
		r := Region{Off: start, Len: i - start}
		if m := len(out); m > 0 {
			gap := r.Off - out[m-1].End()
			if 2*gap <= h {
				// Combining logs the gap twice but saves a header: cheaper
				// (or equal), and the combined region may be combined again
				// with the next one.
				out[m-1].Len = r.End() - out[m-1].Off
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// RawRegions returns the maximal runs of differing bytes without any
// combining. Used by tests and by the no-combining ablation.
func RawRegions(before, after []byte) []Region {
	if len(before) != len(after) {
		panic("diff: image length mismatch")
	}
	var out []Region
	n := len(before)
	i := 0
	for i < n {
		for i < n && before[i] == after[i] {
			i++
		}
		if i == n {
			break
		}
		start := i
		for i < n && before[i] != after[i] {
			i++
		}
		out = append(out, Region{Off: start, Len: i - start})
	}
	return out
}

// LogBytes returns the total log traffic, in bytes, that logging the given
// regions with header size h would generate: one header plus a before- and
// an after-image per region.
func LogBytes(regions []Region, h int) int {
	total := 0
	for _, r := range regions {
		total += h + 2*r.Len
	}
	return total
}

// Changed reports whether the two images differ anywhere. It is cheaper than
// Regions when only the boolean answer is needed.
func Changed(before, after []byte) bool {
	for i := range before {
		if before[i] != after[i] {
			return true
		}
	}
	return false
}
