package vmem

// The paper's in-memory page-descriptor table is "a height balanced binary
// tree" keyed by virtual-frame address (§3.2.1); this file implements that
// AVL tree. Lookups locate the descriptor whose frame contains a faulting
// address via a floor search.

type avlNode struct {
	key         uint64
	desc        *Desc
	left, right *avlNode
	height      int
}

func height(n *avlNode) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *avlNode) *avlNode {
	n.height = 1 + max(height(n.left), height(n.right))
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight(n *avlNode) *avlNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func rotateLeft(n *avlNode) *avlNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func insert(n *avlNode, key uint64, d *Desc) *avlNode {
	if n == nil {
		return &avlNode{key: key, desc: d, height: 1}
	}
	switch {
	case key < n.key:
		n.left = insert(n.left, key, d)
	case key > n.key:
		n.right = insert(n.right, key, d)
	default:
		n.desc = d
		return n
	}
	return fix(n)
}

func remove(n *avlNode, key uint64) *avlNode {
	if n == nil {
		return nil
	}
	switch {
	case key < n.key:
		n.left = remove(n.left, key)
	case key > n.key:
		n.right = remove(n.right, key)
	default:
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		// Replace with in-order successor.
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.key, n.desc = s.key, s.desc
		n.right = remove(n.right, s.key)
	}
	return fix(n)
}

// floor returns the node with the greatest key <= key.
func floor(n *avlNode, key uint64) *avlNode {
	var best *avlNode
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			best = n
			n = n.right
		default:
			return n
		}
	}
	return best
}

func countNodes(n *avlNode) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
