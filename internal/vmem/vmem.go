// Package vmem simulates the virtual-memory machinery QuickStore builds on:
// mmap'd virtual frames, per-frame read/write protection, and SIGSEGV-driven
// fault handling (paper §3.2.1).
//
// Go offers no portable page protection or safe pointer mapping, so this
// package substitutes synthetic 8 KB-aligned virtual addresses and routes
// every access through Read/Write calls that check protection bits. The
// recovery-relevant behaviour is preserved exactly: the first write to a
// write-protected frame invokes the registered fault handler, which looks up
// the page descriptor in a height-balanced (AVL) table keyed by virtual
// address, performs whatever its recovery scheme requires, and upgrades the
// frame's protection so subsequent writes proceed at memory speed.
package vmem

import (
	"errors"
	"fmt"

	"repro/internal/page"
)

// Prot is a frame protection level.
type Prot uint8

// Protection levels.
const (
	// None faults on any access (frame mapped but page not resident).
	None Prot = iota
	// ReadOnly faults on writes — the initial state of every mapped page, so
	// the first update triggers recovery enablement.
	ReadOnly
	// ReadWrite allows updates directly in the buffer pool frame.
	ReadWrite
)

// String implements fmt.Stringer.
func (p Prot) String() string {
	switch p {
	case None:
		return "---"
	case ReadOnly:
		return "r--"
	case ReadWrite:
		return "rw-"
	default:
		return "???"
	}
}

// Addr is a synthetic virtual address.
type Addr = uint64

// Base is the first virtual-frame address handed out.
const Base Addr = 0x1000_0000

// Errors returned by the address space.
var (
	ErrUnmapped   = errors.New("vmem: address not mapped")
	ErrProtection = errors.New("vmem: access violates protection")
	ErrBounds     = errors.New("vmem: access crosses frame boundary")
)

// Desc is a page descriptor: the table entry for one mapped virtual frame
// (paper Figure 1). The recovery-related fields are owned by the client's
// scheme implementation.
type Desc struct {
	VAddr Addr
	Page  page.ID
	Frame []byte // the buffer-pool frame backing this virtual frame
	Prot  Prot

	// RecoveryEnabled is set once the scheme has captured whatever it needs
	// (page copy, lock) to allow in-place updates.
	RecoveryEnabled bool
	// Dirty is set on the first write fault (whole-page logging state).
	Dirty bool
}

// FaultHandler is invoked on access violations, in the role of QuickStore's
// SIGSEGV handler. It receives the descriptor of the faulted frame, the
// faulting address and whether the access was a write. If it returns nil the
// access is retried; protection must have been raised or the retry fails.
type FaultHandler func(d *Desc, addr Addr, write bool) error

// Space is a process address space: the descriptor table plus the mapping
// allocator. Not safe for concurrent use; each client owns one.
type Space struct {
	root    *avlNode
	byPage  map[page.ID]*Desc
	nextVA  Addr
	handler FaultHandler
	faults  int64
}

// NewSpace creates an empty address space.
func NewSpace() *Space {
	return &Space{byPage: make(map[page.ID]*Desc), nextVA: Base}
}

// SetFaultHandler installs the handler invoked on protection violations.
func (s *Space) SetFaultHandler(h FaultHandler) { s.handler = h }

// Faults returns the number of handled protection faults.
func (s *Space) Faults() int64 { return s.faults }

// Mapped returns the number of mapped frames.
func (s *Space) Mapped() int { return countNodes(s.root) }

// Map binds a fresh virtual frame to pid, backed by frame (the buffer-pool
// slot). The frame starts ReadOnly, so the first update faults. It returns
// the new descriptor.
func (s *Space) Map(pid page.ID, frame []byte) *Desc {
	if len(frame) != page.Size {
		panic("vmem: frame must be page.Size")
	}
	if s.byPage[pid] != nil {
		panic(fmt.Sprintf("vmem: %v already mapped", pid))
	}
	d := &Desc{VAddr: s.nextVA, Page: pid, Frame: frame, Prot: ReadOnly}
	s.nextVA += page.Size
	s.root = insert(s.root, d.VAddr, d)
	s.byPage[pid] = d
	return d
}

// Unmap removes the frame mapping (page evicted from the buffer pool).
func (s *Space) Unmap(d *Desc) {
	s.root = remove(s.root, d.VAddr)
	delete(s.byPage, d.Page)
}

// Lookup finds the descriptor whose frame contains addr, as the fault
// handler does, or nil.
func (s *Space) Lookup(addr Addr) *Desc {
	n := floor(s.root, addr)
	if n == nil || addr >= n.desc.VAddr+page.Size {
		return nil
	}
	return n.desc
}

// ByPage returns the descriptor for pid, or nil.
func (s *Space) ByPage(pid page.ID) *Desc { return s.byPage[pid] }

// Protect sets the frame's protection (mprotect).
func (s *Space) Protect(d *Desc, p Prot) { d.Prot = p }

// resolve locates the descriptor and offset for an n-byte access at addr.
func (s *Space) resolve(addr Addr, n int) (*Desc, int, error) {
	d := s.Lookup(addr)
	if d == nil {
		return nil, 0, fmt.Errorf("%w: %#x", ErrUnmapped, addr)
	}
	off := int(addr - d.VAddr)
	if off+n > page.Size {
		return nil, 0, fmt.Errorf("%w: %#x+%d", ErrBounds, addr, n)
	}
	return d, off, nil
}

// Read copies len(dst) bytes from the mapped memory at addr. A frame with
// protection None faults first.
func (s *Space) Read(addr Addr, dst []byte) error {
	d, off, err := s.resolve(addr, len(dst))
	if err != nil {
		return err
	}
	if d.Prot == None {
		if err := s.fault(d, addr, false); err != nil {
			return err
		}
		if d.Prot == None {
			return fmt.Errorf("%w: read %#x after fault", ErrProtection, addr)
		}
	}
	copy(dst, d.Frame[off:])
	return nil
}

// Write copies src into the mapped memory at addr. Writing a frame that is
// not ReadWrite invokes the fault handler — this is the hardware hook the
// page-differencing and whole-page-logging schemes rely on.
func (s *Space) Write(addr Addr, src []byte) error {
	d, off, err := s.resolve(addr, len(src))
	if err != nil {
		return err
	}
	if d.Prot != ReadWrite {
		if err := s.fault(d, addr, true); err != nil {
			return err
		}
		if d.Prot != ReadWrite {
			return fmt.Errorf("%w: write %#x after fault", ErrProtection, addr)
		}
	}
	copy(d.Frame[off:], src)
	return nil
}

func (s *Space) fault(d *Desc, addr Addr, write bool) error {
	if s.handler == nil {
		return fmt.Errorf("%w: %#x (no fault handler)", ErrProtection, addr)
	}
	s.faults++
	return s.handler(d, addr, write)
}
