package vmem

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/page"
)

func frame() []byte { return make([]byte, page.Size) }

func TestMapLookup(t *testing.T) {
	s := NewSpace()
	d1 := s.Map(1, frame())
	d2 := s.Map(2, frame())
	if d2.VAddr != d1.VAddr+page.Size {
		t.Fatalf("addresses not contiguous: %#x %#x", d1.VAddr, d2.VAddr)
	}
	if got := s.Lookup(d1.VAddr); got != d1 {
		t.Fatal("lookup at base failed")
	}
	if got := s.Lookup(d1.VAddr + 100); got != d1 {
		t.Fatal("lookup inside frame failed")
	}
	if got := s.Lookup(d2.VAddr + page.Size); got != nil {
		t.Fatal("lookup past end returned a frame")
	}
	if got := s.Lookup(d1.VAddr - 1); got != nil {
		t.Fatal("lookup below base returned a frame")
	}
	if s.ByPage(2) != d2 || s.ByPage(99) != nil {
		t.Fatal("ByPage wrong")
	}
}

func TestReadableByDefaultWriteFaults(t *testing.T) {
	s := NewSpace()
	f := frame()
	f[10] = 77
	d := s.Map(1, f)
	var got [1]byte
	if err := s.Read(d.VAddr+10, got[:]); err != nil {
		t.Fatal(err)
	}
	if got[0] != 77 {
		t.Fatalf("read %d", got[0])
	}
	// Write without a handler fails with a protection error.
	if err := s.Write(d.VAddr, []byte{1}); err == nil {
		t.Fatal("write to ReadOnly frame without handler succeeded")
	}
}

func TestFaultHandlerEnablesWrite(t *testing.T) {
	s := NewSpace()
	d := s.Map(1, frame())
	var faultedAddr Addr
	var faultedWrite bool
	s.SetFaultHandler(func(fd *Desc, addr Addr, write bool) error {
		if fd != d {
			t.Error("handler got wrong descriptor")
		}
		faultedAddr, faultedWrite = addr, write
		s.Protect(fd, ReadWrite)
		fd.RecoveryEnabled = true
		return nil
	})
	if err := s.Write(d.VAddr+8, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if faultedAddr != d.VAddr+8 || !faultedWrite {
		t.Fatalf("fault at %#x write=%v", faultedAddr, faultedWrite)
	}
	if d.Frame[8] != 42 {
		t.Fatal("write not applied")
	}
	if s.Faults() != 1 {
		t.Fatalf("faults = %d", s.Faults())
	}
	// Second write: no fault (memory speed).
	if err := s.Write(d.VAddr+9, []byte{43}); err != nil {
		t.Fatal(err)
	}
	if s.Faults() != 1 {
		t.Fatal("second write faulted")
	}
}

func TestNoneProtFaultsOnRead(t *testing.T) {
	s := NewSpace()
	d := s.Map(1, frame())
	s.Protect(d, None)
	faults := 0
	s.SetFaultHandler(func(fd *Desc, addr Addr, write bool) error {
		faults++
		s.Protect(fd, ReadOnly)
		return nil
	})
	var b [1]byte
	if err := s.Read(d.VAddr, b[:]); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("faults = %d", faults)
	}
}

func TestCrossBoundaryAccessRejected(t *testing.T) {
	s := NewSpace()
	d := s.Map(1, frame())
	s.Map(2, frame())
	err := s.Write(d.VAddr+page.Size-2, []byte{1, 2, 3, 4})
	if err == nil {
		t.Fatal("cross-boundary write succeeded")
	}
}

func TestUnmappedAccess(t *testing.T) {
	s := NewSpace()
	if err := s.Read(Base, make([]byte, 4)); err == nil {
		t.Fatal("read of unmapped address succeeded")
	}
}

func TestUnmap(t *testing.T) {
	s := NewSpace()
	d := s.Map(1, frame())
	s.Unmap(d)
	if s.Lookup(d.VAddr) != nil || s.ByPage(1) != nil {
		t.Fatal("descriptor survives unmap")
	}
	// Page can be remapped at a fresh address.
	d2 := s.Map(1, frame())
	if d2.VAddr == d.VAddr {
		t.Fatal("address reused")
	}
}

func TestWriteThroughSharedFrame(t *testing.T) {
	// The mapped frame IS the buffer-pool frame: writes must be visible to
	// holders of the slice.
	s := NewSpace()
	f := frame()
	d := s.Map(1, f)
	s.Protect(d, ReadWrite)
	s.Write(d.VAddr+100, []byte("hello"))
	if !bytes.Equal(f[100:105], []byte("hello")) {
		t.Fatal("write not visible through frame slice")
	}
}

func TestAVLManyMappings(t *testing.T) {
	s := NewSpace()
	const n = 2000
	descs := make([]*Desc, 0, n)
	for i := 0; i < n; i++ {
		descs = append(descs, s.Map(page.ID(i+1), frame()))
	}
	if s.Mapped() != n {
		t.Fatalf("Mapped = %d", s.Mapped())
	}
	// Every interior address resolves to the right descriptor.
	for _, d := range descs {
		for _, off := range []uint64{0, 1, page.Size / 2, page.Size - 1} {
			if got := s.Lookup(d.VAddr + off); got != d {
				t.Fatalf("lookup %#x+%d wrong", d.VAddr, off)
			}
		}
	}
	// Remove a random half and re-verify.
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(n)
	removed := map[int]bool{}
	for _, i := range perm[:n/2] {
		s.Unmap(descs[i])
		removed[i] = true
	}
	if s.Mapped() != n/2 {
		t.Fatalf("Mapped after removal = %d", s.Mapped())
	}
	for i, d := range descs {
		got := s.Lookup(d.VAddr)
		if removed[i] && got != nil {
			t.Fatalf("removed mapping %d still found", i)
		}
		if !removed[i] && got != d {
			t.Fatalf("surviving mapping %d lost", i)
		}
	}
}

func TestAVLBalanced(t *testing.T) {
	// Sequential inserts into an unbalanced BST would give height n; the AVL
	// tree must stay logarithmic.
	s := NewSpace()
	const n = 4096
	for i := 0; i < n; i++ {
		s.Map(page.ID(i+1), frame())
	}
	h := height(s.root)
	// AVL height bound: 1.44*log2(n+2). For 4096, ~18.
	if h > 18 {
		t.Fatalf("height %d for %d sequential inserts", h, n)
	}
}

func TestAVLFloorMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var root *avlNode
	keys := map[uint64]bool{}
	var sorted []uint64
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(100000)) * page.Size
		if keys[k] {
			continue
		}
		keys[k] = true
		root = insert(root, k, &Desc{VAddr: k})
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for trial := 0; trial < 5000; trial++ {
		q := uint64(rng.Intn(100000 * page.Size))
		// Reference floor via binary search.
		idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] > q })
		n := floor(root, q)
		if idx == 0 {
			if n != nil {
				t.Fatalf("floor(%d) = %d, want none", q, n.key)
			}
			continue
		}
		if n == nil || n.key != sorted[idx-1] {
			t.Fatalf("floor(%d) wrong", q)
		}
	}
}
