package faultinject

import (
	"bytes"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
)

// countBitDiffs returns the number of differing bits between a and b.
func countBitDiffs(a, b []byte) int {
	n := 0
	for i := range a {
		for d := a[i] ^ b[i]; d != 0; d &= d - 1 {
			n++
		}
	}
	return n
}

// TestBitFlipRotIsSilent is the contract the checksum envelope exists for:
// with BitFlipRate armed, the write reports success while the stored copy
// differs from what was written by exactly one bit.
func TestBitFlipRotIsSilent(t *testing.T) {
	mem := disk.NewMemStore()
	st := NewStore(mem)
	st.Arm(Plan{Name: "allrot", Seed: 3, BitFlipRate: 1.0})
	data := bytes.Repeat([]byte{0x3c}, page.Size)
	if err := st.WritePage(5, data); err != nil {
		t.Fatalf("rotted write must report success, got %v", err)
	}
	stored := make([]byte, page.Size)
	if err := mem.ReadPage(5, stored); err != nil {
		t.Fatal(err)
	}
	if n := countBitDiffs(data, stored); n != 1 {
		t.Fatalf("stored copy differs from written data by %d bits, want exactly 1", n)
	}
	// The read path injects nothing either: the damage is only observable
	// by comparing bytes (or through a checksum envelope above this store).
	if err := st.ReadPage(5, make([]byte, page.Size)); err != nil {
		t.Fatalf("read of rotted page must not error here: %v", err)
	}
}

// TestPagerotPlanDefined pins the qsctl-visible plan the corruption
// walkthrough arms.
func TestPagerotPlanDefined(t *testing.T) {
	p, ok := Plans()["pagerot"]
	if !ok {
		t.Fatal("pagerot plan missing")
	}
	if p.BitFlipRate <= 0 {
		t.Fatalf("pagerot plan does not rot: %+v", p)
	}
}

// TestRotPageFlipsOneBit checks the deterministic single-page rot helper:
// exactly one bit flips, never in the first byte, and the same seed flips
// the same bit.
func TestRotPageFlipsOneBit(t *testing.T) {
	mem := disk.NewMemStore()
	orig := bytes.Repeat([]byte{0xe1}, page.Size)
	if err := mem.WritePage(4, orig); err != nil {
		t.Fatal(err)
	}
	bit, err := RotPage(mem, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if bit < 8 {
		t.Fatalf("rot hit bit %d in the first byte (reserved to keep pages non-zero)", bit)
	}
	got := make([]byte, page.Size)
	mem.ReadPage(4, got)
	if n := countBitDiffs(orig, got); n != 1 {
		t.Fatalf("rot flipped %d bits, want 1", n)
	}
	if got[bit/8]^orig[bit/8] != 1<<(bit%8) {
		t.Fatalf("reported bit %d is not the flipped one", bit)
	}
	// Determinism: a fresh copy rotted with the same seed flips the same bit.
	mem2 := disk.NewMemStore()
	mem2.WritePage(4, orig)
	bit2, err := RotPage(mem2, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if bit2 != bit {
		t.Fatalf("same seed flipped bit %d then %d", bit, bit2)
	}
}

// TestTearPageKeepsSectorPrefix checks the torn-write helper: the kept
// sectors survive byte-for-byte, the tail reads back as zeroes, and
// out-of-range keeps are rejected.
func TestTearPageKeepsSectorPrefix(t *testing.T) {
	mem := disk.NewMemStore()
	orig := bytes.Repeat([]byte{0x9d}, page.Size)
	mem.WritePage(6, orig)
	if err := TearPage(mem, 6, 3); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, page.Size)
	mem.ReadPage(6, got)
	if !bytes.Equal(got[:3*SectorSize], orig[:3*SectorSize]) {
		t.Fatal("kept sectors damaged")
	}
	for i := 3 * SectorSize; i < page.Size; i++ {
		if got[i] != 0 {
			t.Fatalf("torn tail byte %d = %#x, want 0", i, got[i])
		}
	}
	if err := TearPage(mem, 6, 0); err == nil {
		t.Fatal("keepSectors=0 accepted (would zero the whole page)")
	}
	if err := TearPage(mem, 6, page.Size/SectorSize); err == nil {
		t.Fatal("keepSectors=full page accepted (would tear nothing)")
	}
}
