package faultinject

import "sync"

// BlobStore is the subset of the archive blob-store contract the injector
// perturbs. It is declared structurally here (rather than importing
// internal/archive) so the dependency points archive → faultinject, matching
// the disk.Store wrapper: any store with this shape can be wrapped.
type BlobStore interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	List() ([]string, error)
	Delete(name string) error
}

// Blobs wraps a BlobStore with deterministic fault injection for archive
// media: silent single-bit corruption (BitFlipRate), torn blob writes that
// persist only a sector-aligned prefix (TornWriteRate), and loud transient
// I/O errors (WriteErrorRate / ReadErrorRate). Silent faults — bit flips and
// torn writes — report success to the caller; only the checksum inside the
// blob format can catch them, which is exactly what the corruption tests
// assert.
type Blobs struct {
	inner BlobStore

	mu   sync.Mutex
	plan Plan
	rng  *rng
	ops  uint64
	hits int64
}

// NewBlobs wraps inner with the given plan. A zero plan injects nothing.
func NewBlobs(inner BlobStore, plan Plan) *Blobs {
	return &Blobs{inner: inner, plan: plan, rng: newRNG(plan.Seed)}
}

// Faults returns the number of faults injected so far.
func (b *Blobs) Faults() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits
}

// Put implements BlobStore.
func (b *Blobs) Put(name string, data []byte) error {
	b.mu.Lock()
	b.ops++
	seq := b.ops
	if b.plan.WriteErrorRate > 0 && b.rng.float() < b.plan.WriteErrorRate {
		b.hits++
		b.mu.Unlock()
		return injected("transient blob write error", seq)
	}
	if b.plan.TornWriteRate > 0 && b.rng.float() < b.plan.TornWriteRate {
		b.hits++
		keep := 0
		if sectors := len(data) / SectorSize; sectors > 0 {
			keep = b.rng.intn(sectors) * SectorSize
		}
		b.mu.Unlock()
		// Silent: the truncated blob is stored and success reported, as a
		// crash after a partial upload followed by a spurious ack would.
		return b.inner.Put(name, append([]byte(nil), data[:keep]...))
	}
	if b.plan.BitFlipRate > 0 && len(data) > 0 && b.rng.float() < b.plan.BitFlipRate {
		b.hits++
		bit := b.rng.intn(len(data) * 8)
		b.mu.Unlock()
		flipped := append([]byte(nil), data...)
		flipped[bit/8] ^= 1 << (bit % 8)
		return b.inner.Put(name, flipped)
	}
	b.mu.Unlock()
	return b.inner.Put(name, data)
}

// Get implements BlobStore.
func (b *Blobs) Get(name string) ([]byte, error) {
	b.mu.Lock()
	b.ops++
	seq := b.ops
	if b.plan.ReadErrorRate > 0 && b.rng.float() < b.plan.ReadErrorRate {
		b.hits++
		b.mu.Unlock()
		return nil, injected("transient blob read error", seq)
	}
	b.mu.Unlock()
	return b.inner.Get(name)
}

// List implements BlobStore.
func (b *Blobs) List() ([]string, error) { return b.inner.List() }

// Delete implements BlobStore.
func (b *Blobs) Delete(name string) error { return b.inner.Delete(name) }
