package faultinject

// Direct, deterministic page corruption for integrity tests. Where the
// Store wrapper rots pages probabilistically as writes flow through it,
// these helpers damage a chosen page in place — the corruption sweep
// (internal/harness) uses them to rot or tear every page of a built volume
// below the checksum wrapper, then asserts detection and repair.

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/page"
)

// RotPage flips one bit of the stored page, chosen deterministically from
// seed, writing the damaged image straight back to st. The flip avoids the
// first byte so a rotted page never becomes all-zeros (which integrity
// envelopes treat as never-written). Returns the flipped bit index.
func RotPage(st disk.Store, id page.ID, seed int64) (int, error) {
	var buf [page.Size]byte
	if err := st.ReadPage(id, buf[:]); err != nil {
		return 0, fmt.Errorf("faultinject: rot read of %v: %w", id, err)
	}
	r := newRNG(seed ^ int64(id)*0x9e37)
	bit := 8 + r.intn(page.Size*8-8)
	buf[bit/8] ^= 1 << (bit % 8)
	if err := st.WritePage(id, buf[:]); err != nil {
		return 0, fmt.Errorf("faultinject: rot write of %v: %w", id, err)
	}
	return bit, nil
}

// TearPage simulates a torn write: the first keepSectors sectors of the
// stored page survive and the rest reads back as zeroes, exactly as a
// page write interrupted by power loss would leave a zero-filled tail.
// keepSectors must be in [1, page.Size/SectorSize).
func TearPage(st disk.Store, id page.ID, keepSectors int) error {
	if keepSectors < 1 || keepSectors >= page.Size/SectorSize {
		return fmt.Errorf("faultinject: tear of %v keeps %d sectors, want 1..%d",
			id, keepSectors, page.Size/SectorSize-1)
	}
	var buf [page.Size]byte
	if err := st.ReadPage(id, buf[:]); err != nil {
		return fmt.Errorf("faultinject: tear read of %v: %w", id, err)
	}
	for i := keepSectors * SectorSize; i < page.Size; i++ {
		buf[i] = 0
	}
	if err := st.WritePage(id, buf[:]); err != nil {
		return fmt.Errorf("faultinject: tear write of %v: %w", id, err)
	}
	return nil
}
