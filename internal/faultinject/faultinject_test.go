package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
)

// opTrace runs a fixed write/read sequence against a freshly armed store and
// returns one byte per op recording whether it faulted.
func opTrace(t *testing.T, plan Plan) []byte {
	t.Helper()
	st := NewStore(disk.NewMemStore())
	st.Arm(plan)
	var trace []byte
	data := make([]byte, page.Size)
	for i := 0; i < 200; i++ {
		data[0] = byte(i)
		werr := st.WritePage(page.ID(1+i%7), data)
		rerr := st.ReadPage(page.ID(1+i%7), data)
		b := byte(0)
		if werr != nil {
			if !errors.Is(werr, ErrInjected) {
				t.Fatalf("op %d: non-injected write error: %v", i, werr)
			}
			b |= 1
		}
		if rerr != nil {
			if !errors.Is(rerr, ErrInjected) {
				t.Fatalf("op %d: non-injected read error: %v", i, rerr)
			}
			b |= 2
		}
		trace = append(trace, b)
	}
	return trace
}

// TestStoreScheduleDeterministic is the reproducibility contract: the same
// (plan, seed) pair must produce the identical fault schedule, and a
// different seed a different one.
func TestStoreScheduleDeterministic(t *testing.T) {
	for _, name := range []string{"eio", "torn", "chaos"} {
		plan := Plans()[name]
		plan.Seed = 42
		a := opTrace(t, plan)
		b := opTrace(t, plan)
		if !bytes.Equal(a, b) {
			t.Errorf("plan %q seed 42: two runs produced different fault schedules", name)
		}
		plan.Seed = 43
		c := opTrace(t, plan)
		if bytes.Equal(a, c) {
			t.Errorf("plan %q: seeds 42 and 43 produced the identical schedule", name)
		}
	}
}

// TestTornWriteKeepsSectorPrefix checks the injected torn write: the store
// must end up holding a sector-aligned prefix of the new data over the old.
func TestTornWriteKeepsSectorPrefix(t *testing.T) {
	inner := disk.NewMemStore()
	st := NewStore(inner)
	old := bytes.Repeat([]byte{0xAA}, page.Size)
	if err := st.WritePage(3, old); err != nil {
		t.Fatal(err)
	}
	st.Arm(Plan{Name: "always-torn", Seed: 7, TornWriteRate: 1})
	neu := bytes.Repeat([]byte{0xBB}, page.Size)
	if err := st.WritePage(3, neu); err == nil {
		t.Fatal("torn write must report the injected error")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error not classified as injected: %v", err)
	}
	got := make([]byte, page.Size)
	if err := inner.ReadPage(3, got); err != nil {
		t.Fatal(err)
	}
	cut := 0
	for cut < page.Size && got[cut] == 0xBB {
		cut++
	}
	if cut%SectorSize != 0 {
		t.Errorf("torn boundary at byte %d is not sector-aligned", cut)
	}
	for i := cut; i < page.Size; i++ {
		if got[i] != 0xAA {
			t.Fatalf("byte %d is %#x, want the old contents past the torn boundary", i, got[i])
		}
	}
}

// TestReorderWindow checks that buffered writes are invisible to the inner
// store, visible through the wrapper (the OS cache), applied when the window
// fills, and lost on CrashDropPending.
func TestReorderWindow(t *testing.T) {
	inner := disk.NewMemStore()
	st := NewStore(inner)
	st.Arm(Plan{Name: "reorder", Seed: 1, ReorderWindow: 4})
	data := make([]byte, page.Size)
	buf := make([]byte, page.Size)
	for i := 1; i <= 3; i++ {
		data[0] = byte(i)
		if err := st.WritePage(page.ID(i), data); err != nil {
			t.Fatal(err)
		}
		if err := inner.ReadPage(page.ID(i), buf); err == nil {
			t.Fatalf("page %d reached the inner store before the window filled", i)
		}
		if err := st.ReadPage(page.ID(i), buf); err != nil || buf[0] != byte(i) {
			t.Fatalf("page %d not readable through the wrapper: %v %d", i, err, buf[0])
		}
	}
	data[0] = 4
	if err := st.WritePage(4, data); err != nil {
		t.Fatal(err) // fourth write fills the window: all four flush
	}
	for i := 1; i <= 4; i++ {
		if err := inner.ReadPage(page.ID(i), buf); err != nil {
			t.Fatalf("page %d missing from the inner store after flush: %v", i, err)
		}
	}

	data[0] = 5
	if err := st.WritePage(5, data); err != nil {
		t.Fatal(err)
	}
	st.CrashDropPending()
	if err := inner.ReadPage(5, buf); err == nil {
		t.Fatal("page 5 survived CrashDropPending")
	}
}

// TestFuseSwallowsPastLimit checks the sweep's crash-instant semantics:
// events up to the limit take effect, everything after silently does not.
func TestFuseSwallowsPastLimit(t *testing.T) {
	inner := disk.NewMemStore()
	fuse := NewFuse(2)
	st := NewSweepStore(inner, fuse)
	data := make([]byte, page.Size)
	buf := make([]byte, page.Size)
	for i := 1; i <= 3; i++ {
		data[0] = byte(i)
		if err := st.WritePage(page.ID(i), data); err != nil {
			t.Fatalf("write %d: %v (swallowed writes must report success)", i, err)
		}
	}
	for i := 1; i <= 2; i++ {
		if err := inner.ReadPage(page.ID(i), buf); err != nil {
			t.Fatalf("write %d within the limit did not reach the store: %v", i, err)
		}
	}
	if err := inner.ReadPage(3, buf); err == nil {
		t.Fatal("write 3 took effect past the fuse limit")
	}
	if !fuse.Blown() || fuse.Count() != 3 {
		t.Fatalf("fuse state blown=%v count=%d, want blown with 3 events", fuse.Blown(), fuse.Count())
	}
	fuse.Disarm()
	if err := st.WritePage(3, data); err != nil {
		t.Fatal(err)
	}
	if err := inner.ReadPage(3, buf); err != nil {
		t.Fatal("disarmed fuse must let writes through again")
	}
}

// fakeService records delivered calls; every op succeeds.
type fakeService struct {
	begins, locks, commits, ships int
	nextTID                       logrec.TID
}

func (f *fakeService) Begin() (logrec.TID, error) {
	f.begins++
	f.nextTID++
	return f.nextTID, nil
}
func (f *fakeService) Lock(logrec.TID, page.ID, lock.Mode) error { f.locks++; return nil }
func (f *fakeService) AllocPage(logrec.TID) (page.ID, error)     { return 1, nil }
func (f *fakeService) ReadPage(logrec.TID, page.ID, lock.Mode) ([]byte, error) {
	return make([]byte, page.Size), nil
}
func (f *fakeService) ShipLog(logrec.TID, []byte) error           { f.ships++; return nil }
func (f *fakeService) ShipPage(logrec.TID, page.ID, []byte) error { return nil }
func (f *fakeService) Commit(logrec.TID) error                    { f.commits++; return nil }
func (f *fakeService) Abort(logrec.TID) error                     { return nil }

// transportTrace runs a fixed op sequence through a fresh flaky transport and
// returns the per-op error pattern plus delivery counts.
func transportTrace(seed int64) (trace []byte, delivered fakeService) {
	plan := Plans()["flaky-net"]
	plan.Seed = seed
	tr := WrapTransport(&delivered, plan)
	tr.Sleep = func(time.Duration) {} // injected delays: don't slow the test
	for i := 0; i < 150; i++ {
		var err error
		switch i % 4 {
		case 0:
			_, err = tr.Begin()
		case 1:
			err = tr.Lock(1, page.ID(i), lock.Shared)
		case 2:
			err = tr.ShipLog(1, []byte{1, 2, 3})
		case 3:
			err = tr.Commit(1)
		}
		if err != nil {
			trace = append(trace, 1)
		} else {
			trace = append(trace, 0)
		}
	}
	return trace, delivered
}

// TestTransportDeterministic: same seed, same drops and deliveries.
func TestTransportDeterministic(t *testing.T) {
	a, da := transportTrace(9)
	b, db := transportTrace(9)
	if !bytes.Equal(a, b) || da != db {
		t.Fatal("transport fault schedule not reproducible from the seed")
	}
	dropped := 0
	for _, v := range a {
		dropped += int(v)
	}
	if dropped == 0 {
		t.Fatal("flaky-net plan injected no faults in 150 ops")
	}
	c, _ := transportTrace(10)
	if bytes.Equal(a, c) {
		t.Error("seeds 9 and 10 produced the identical transport schedule")
	}
}

// TestTransportDropIsNotDelivered: a dropped request reports ErrNotDelivered
// and really is not delivered — the guarantee the retry layer's commit
// handling relies on.
func TestTransportDropIsNotDelivered(t *testing.T) {
	var inner fakeService
	tr := WrapTransport(&inner, Plan{Name: "drop-all", Seed: 1, DropRate: 1})
	tr.Sleep = func(time.Duration) {}
	err := tr.Commit(1)
	if !errors.Is(err, ErrNotDelivered) {
		t.Fatalf("dropped commit returned %v, want ErrNotDelivered", err)
	}
	if inner.commits != 0 {
		t.Fatal("dropped commit was delivered")
	}
}

// TestTransportResetOnCommit: the commit is delivered but the response is
// lost, so the caller sees an injected error it cannot distinguish from a
// connection reset — while the transaction really committed.
func TestTransportResetOnCommit(t *testing.T) {
	var inner fakeService
	tr := WrapTransport(&inner, Plan{Name: "reset", Seed: 1, ResetOnCommit: 1})
	tr.Sleep = func(time.Duration) {}
	err := tr.Commit(1)
	if !errors.Is(err, ErrInjected) || errors.Is(err, ErrNotDelivered) {
		t.Fatalf("reset-on-commit returned %v, want an injected (but delivered) fault", err)
	}
	if inner.commits != 1 {
		t.Fatalf("commit delivered %d times, want 1", inner.commits)
	}
}
