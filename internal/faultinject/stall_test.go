package faultinject_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestStalledPeerTriggersDeadlockTimeout injects a stalled peer: a client
// whose commit is held up in the transport while its exclusive locks stay
// granted. A second client waiting on one of those locks must come back with
// lock.ErrDeadlock once the lock manager's wait bound expires — not block
// until the peer recovers — and must succeed on retry after the stalled
// commit finally lands and releases the locks.
func TestStalledPeerTriggersDeadlockTimeout(t *testing.T) {
	srv := server.New(server.Config{
		Mode:        server.ModeESM,
		PoolPages:   64,
		LockTimeout: 30 * time.Millisecond,
	})
	peer := faultinject.WrapTransport(wire.NewDirect(srv, nil, nil), faultinject.Plan{
		Name:        "stall",
		Seed:        1,
		StallCommit: 250 * time.Millisecond,
	})
	victim := wire.NewDirect(srv, nil, nil)

	tidP, err := peer.Begin()
	if err != nil {
		t.Fatal(err)
	}
	pid, err := peer.AllocPage(tidP)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.Lock(tidP, pid, lock.Exclusive); err != nil {
		t.Fatal(err)
	}

	committed := make(chan error, 1)
	go func() { committed <- peer.Commit(tidP) }() // stalls, locks held

	tidV, err := victim.Begin()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = victim.Lock(tidV, pid, lock.Shared)
	if !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("lock against the stalled peer returned %v, want lock.ErrDeadlock", err)
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Fatalf("deadlock timeout took %v: the victim waited on the stalled peer itself", waited)
	}

	if err := <-committed; err != nil {
		t.Fatalf("stalled commit eventually failed: %v", err)
	}
	if err := victim.Lock(tidV, pid, lock.Shared); err != nil {
		t.Fatalf("lock retry after the peer's commit released its locks: %v", err)
	}
	if err := victim.Abort(tidV); err != nil {
		t.Fatal(err)
	}
}
