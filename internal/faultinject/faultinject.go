// Package faultinject provides a deterministic, seed-driven fault-injection
// substrate for crash-consistency testing. It wraps the two places where
// state leaves a process — stable storage (disk.Store) and the client↔server
// transport — and perturbs them according to a Plan: transient I/O errors,
// torn page writes, write reordering, dropped/duplicated/delayed messages,
// and connection resets mid-commit.
//
// Every decision is drawn from a seeded PRNG keyed only by the operation
// sequence, so a given (plan, seed) pair produces the identical fault
// schedule on every run: a failure reproduces from the printed seed alone.
//
// The package also provides the Fuse, the counting injector behind the
// crash-point sweep (internal/harness): every stable-storage event (WAL
// flush, data-page install) increments a shared counter, and once the
// configured limit is reached all further events are swallowed, freezing
// stable storage exactly as a crash at that instant would.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the base class of every injected fault; errors.Is(err,
// ErrInjected) identifies a failure as synthetic. Injected faults are
// transient by construction: retrying the operation (with a different
// sequence number) may succeed.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrNotDelivered marks an injected transport fault where the request is
// guaranteed never to have reached the server (a pre-delivery drop). Retry
// layers may re-send even non-idempotent operations on this error; any other
// transport failure leaves delivery ambiguous.
var ErrNotDelivered = fmt.Errorf("%w: request not delivered", ErrInjected)

// injected builds a classified injected error.
func injected(kind string, seq uint64) error {
	return fmt.Errorf("%w: %s (op %d)", ErrInjected, kind, seq)
}

// dropped builds an injected pre-delivery drop error.
func dropped(seq uint64) error {
	return fmt.Errorf("%w (op %d)", ErrNotDelivered, seq)
}

// rng is a splitmix64 generator: tiny, fast, and stable across Go versions
// (math/rand's stream is not guaranteed between releases, and reproducibility
// from a printed seed is the whole point of this package).
type rng struct{ state uint64 }

func newRNG(seed int64) *rng { return &rng{state: uint64(seed)*0x9e3779b97f4a7c15 + 1} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Plan describes a fault schedule. The zero value injects nothing. Rates are
// probabilities in [0, 1] evaluated per operation against the seeded PRNG.
type Plan struct {
	Name string
	Seed int64

	// Disk faults (Store wrapper).
	ReadErrorRate  float64 // ReadPage fails with a transient error
	WriteErrorRate float64 // WritePage fails with a transient error
	TornWriteRate  float64 // WritePage persists only a sector-aligned prefix, then fails
	ReorderWindow  int     // buffer up to N writes and apply them in shuffled order
	// BitFlipRate injects silent single-bit rot: a stored blob (Blobs
	// wrapper) or data page (Store wrapper) gets one bit flipped while the
	// write reports success — the caller cannot tell anything went wrong
	// until a later read checks an integrity envelope.
	BitFlipRate float64

	// Transport faults (Transport wrapper).
	DropRate      float64       // request is never sent; caller sees a timeout-like error
	DupRate       float64       // request is delivered twice (tests idempotence)
	DelayRate     float64       // request is delayed by up to MaxDelay
	MaxDelay      time.Duration // bound for injected delays (default 5 ms)
	ResetOnCommit float64       // Commit is delivered, but the response is lost (connection reset)
	StallCommit   time.Duration // every Commit stalls this long before delivery (stalled-peer tests)
}

// Plans returns the built-in named plans usable from qsctl ("qsctl faults
// arm <name>") and tests. Names are stable.
func Plans() map[string]Plan {
	return map[string]Plan{
		"eio":       {Name: "eio", ReadErrorRate: 0.05, WriteErrorRate: 0.05},
		"torn":      {Name: "torn", TornWriteRate: 0.10},
		"reorder":   {Name: "reorder", ReorderWindow: 8},
		"bitrot":    {Name: "bitrot", BitFlipRate: 0.25},
		"pagerot":   {Name: "pagerot", BitFlipRate: 0.10},
		"flaky-net": {Name: "flaky-net", DropRate: 0.05, DupRate: 0.02, DelayRate: 0.10, MaxDelay: 2 * time.Millisecond},
		"chaos": {Name: "chaos", ReadErrorRate: 0.02, WriteErrorRate: 0.02, TornWriteRate: 0.02,
			DropRate: 0.02, DupRate: 0.01, DelayRate: 0.05, ResetOnCommit: 0.05},
	}
}

// PlanNames returns the built-in plan names, sorted.
func PlanNames() []string {
	var names []string
	for n := range Plans() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- crash-point fuse -------------------------------------------------------

// Fuse counts stable-storage events and, once armed with a limit, swallows
// every event past it. Events are numbered from 1; with limit L, events 1..L
// take effect and L+1 onward are dropped, so stable storage afterwards holds
// exactly the state a crash immediately after event L would have left.
//
// A limit below zero means count-only (nothing is ever swallowed) — the
// enumeration pass of the crash-point sweep.
type Fuse struct {
	mu    sync.Mutex
	count int64
	limit int64
	blown bool
}

// NewFuse returns a fuse with the given limit (<0 = count only).
func NewFuse(limit int64) *Fuse { return &Fuse{limit: limit} }

// Event records one stable-storage event and reports whether it may take
// effect.
func (f *Fuse) Event() (n int64, allowed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.limit >= 0 && f.count > f.limit {
		f.blown = true
		return f.count, false
	}
	return f.count, true
}

// Count returns the number of events seen so far.
func (f *Fuse) Count() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// Blown reports whether any event has been swallowed.
func (f *Fuse) Blown() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.blown
}

// Trip freezes the fuse at the current count: every later event is
// swallowed. The group-commit sweep trips the fuse after a deterministic
// setup phase so concurrent committers run against stable storage frozen at
// a known instant.
func (f *Fuse) Trip() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limit = f.count
}

// Disarm stops the fuse from swallowing further events (recovery runs with
// stable storage writable again).
func (f *Fuse) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limit = -1
}
