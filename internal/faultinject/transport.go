package faultinject

import (
	"time"

	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
)

// Service mirrors wire.Service method-for-method. It is redeclared here (Go
// interfaces are structural) so this package can wrap any transport without
// importing internal/wire, which itself imports faultinject to classify
// injected disk errors.
type Service interface {
	Begin() (logrec.TID, error)
	Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error
	AllocPage(tid logrec.TID) (page.ID, error)
	ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error)
	ShipLog(tid logrec.TID, data []byte) error
	ShipPage(tid logrec.TID, pid page.ID, data []byte) error
	Commit(tid logrec.TID) error
	Abort(tid logrec.TID) error
}

// Transport wraps a Service with deterministic message-level faults:
// dropped, duplicated and delayed requests, stalled or reset commits. One
// client issues one request at a time (the page-server protocol), so the
// wrapper is not synchronized.
type Transport struct {
	inner Service
	plan  Plan
	rng   *rng
	seq   uint64
	// Sleep is replaceable for tests; defaults to time.Sleep.
	Sleep func(time.Duration)
}

// WrapTransport wraps svc with plan's message faults.
func WrapTransport(svc Service, plan Plan) *Transport {
	if plan.MaxDelay == 0 {
		plan.MaxDelay = 5 * time.Millisecond
	}
	return &Transport{inner: svc, plan: plan, rng: newRNG(plan.Seed), Sleep: time.Sleep}
}

// perturb applies the pre-delivery faults shared by all ops. It returns an
// error if the message is dropped, and whether the request should be
// delivered twice.
func (t *Transport) perturb() (dup bool, err error) {
	t.seq++
	if t.plan.DropRate > 0 && t.rng.float() < t.plan.DropRate {
		return false, dropped(t.seq)
	}
	if t.plan.DelayRate > 0 && t.rng.float() < t.plan.DelayRate {
		t.Sleep(time.Duration(t.rng.float() * float64(t.plan.MaxDelay)))
	}
	return t.plan.DupRate > 0 && t.rng.float() < t.plan.DupRate, nil
}

// Begin implements Service.
func (t *Transport) Begin() (logrec.TID, error) {
	if _, err := t.perturb(); err != nil {
		return 0, err
	}
	// A duplicated Begin would leak a transaction; deliver once regardless.
	return t.inner.Begin()
}

// Lock implements Service.
func (t *Transport) Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error {
	dup, err := t.perturb()
	if err != nil {
		return err
	}
	if dup {
		t.inner.Lock(tid, pid, mode) // idempotent: re-granting is a no-op
	}
	return t.inner.Lock(tid, pid, mode)
}

// AllocPage implements Service.
func (t *Transport) AllocPage(tid logrec.TID) (page.ID, error) {
	if _, err := t.perturb(); err != nil {
		return 0, err
	}
	return t.inner.AllocPage(tid)
}

// ReadPage implements Service.
func (t *Transport) ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error) {
	dup, err := t.perturb()
	if err != nil {
		return nil, err
	}
	if dup {
		t.inner.ReadPage(tid, pid, mode)
	}
	return t.inner.ReadPage(tid, pid, mode)
}

// ShipLog implements Service. Duplication is not injected: re-appending the
// same client log records is a real protocol violation, not a transport
// retry (the TCP stream either delivers a frame once or drops the
// connection).
func (t *Transport) ShipLog(tid logrec.TID, data []byte) error {
	if _, err := t.perturb(); err != nil {
		return err
	}
	return t.inner.ShipLog(tid, data)
}

// ShipPage implements Service.
func (t *Transport) ShipPage(tid logrec.TID, pid page.ID, data []byte) error {
	dup, err := t.perturb()
	if err != nil {
		return err
	}
	if dup {
		t.inner.ShipPage(tid, pid, data) // same bytes twice: last write wins
	}
	return t.inner.ShipPage(tid, pid, data)
}

// Commit implements Service. StallCommit holds the request before delivery
// (a stalled peer keeping its locks); ResetOnCommit delivers the commit but
// loses the response, so the caller cannot know the outcome — the
// connection-reset-mid-commit case.
func (t *Transport) Commit(tid logrec.TID) error {
	if _, err := t.perturb(); err != nil {
		return err
	}
	if t.plan.StallCommit > 0 {
		t.Sleep(t.plan.StallCommit)
	}
	if t.plan.ResetOnCommit > 0 && t.rng.float() < t.plan.ResetOnCommit {
		t.inner.Commit(tid)
		return injected("connection reset during commit", t.seq)
	}
	return t.inner.Commit(tid)
}

// Abort implements Service.
func (t *Transport) Abort(tid logrec.TID) error {
	if _, err := t.perturb(); err != nil {
		return err
	}
	return t.inner.Abort(tid)
}

var _ Service = (*Transport)(nil)
