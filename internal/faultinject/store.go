package faultinject

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/disk"
	"repro/internal/page"
)

// SectorSize is the granularity of torn writes: a crashed write persists a
// whole number of sectors.
const SectorSize = 512

// Store wraps a disk.Store with deterministic fault injection. It is safe
// for concurrent use and transparent while disarmed. An optional Fuse (the
// crash-point sweep's counting injector) sees every write as one
// stable-storage event; swallowed events leave the underlying store
// untouched while reporting success, exactly as writes issued after a crash
// instant would.
type Store struct {
	inner disk.Store

	mu      sync.Mutex
	plan    Plan
	armed   bool
	rng     *rng
	reads   uint64
	writes  uint64
	faults  int64
	pending []pendingWrite // reorder window
	fuse    *Fuse
}

type pendingWrite struct {
	id   page.ID
	data []byte
}

// NewStore wraps inner; the injector starts disarmed.
func NewStore(inner disk.Store) *Store { return &Store{inner: inner} }

// NewSweepStore wraps inner with only a fuse attached (no fault plan): the
// configuration used by the crash-point sweep.
func NewSweepStore(inner disk.Store, fuse *Fuse) *Store {
	return &Store{inner: inner, fuse: fuse}
}

// Arm activates plan. The fault schedule restarts: op sequence numbers reset
// and the PRNG is reseeded from plan.Seed, so arming the same plan twice
// yields the same schedule.
func (s *Store) Arm(plan Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = plan
	s.armed = true
	s.rng = newRNG(plan.Seed)
	s.reads, s.writes = 0, 0
	s.pending = nil
}

// Disarm deactivates fault injection, flushing any reordered writes still
// buffered so no updates are silently lost.
func (s *Store) Disarm() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = false
	return s.flushPendingLocked()
}

// Armed reports the active plan name, or "" when disarmed.
func (s *Store) Armed() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return ""
	}
	return s.plan.Name
}

// Faults returns the number of faults injected since the store was created.
func (s *Store) Faults() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// CrashDropPending simulates the crash-time loss of the reorder window:
// buffered (unsynced) writes are discarded rather than applied.
func (s *Store) CrashDropPending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = nil
}

// ReadPage implements disk.Store.
func (s *Store) ReadPage(id page.ID, buf []byte) error {
	s.mu.Lock()
	s.reads++
	seq := s.reads
	// Reads must observe buffered reordered writes (the OS cache would).
	for i := len(s.pending) - 1; i >= 0; i-- {
		if s.pending[i].id == id {
			copy(buf, s.pending[i].data)
			s.mu.Unlock()
			return nil
		}
	}
	if s.armed && s.plan.ReadErrorRate > 0 && s.rng.float() < s.plan.ReadErrorRate {
		s.faults++
		s.mu.Unlock()
		return injected("transient read error", seq)
	}
	s.mu.Unlock()
	return s.inner.ReadPage(id, buf)
}

// WritePage implements disk.Store.
func (s *Store) WritePage(id page.ID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	seq := s.writes
	if s.fuse != nil {
		if _, allowed := s.fuse.Event(); !allowed {
			return nil // beyond the crash point: the write never happens
		}
	}
	if !s.armed {
		return s.inner.WritePage(id, data)
	}
	if s.plan.WriteErrorRate > 0 && s.rng.float() < s.plan.WriteErrorRate {
		s.faults++
		return injected("transient write error", seq)
	}
	if s.plan.TornWriteRate > 0 && s.rng.float() < s.plan.TornWriteRate {
		s.faults++
		if err := s.tornWriteLocked(id, data); err != nil {
			return err
		}
		return injected("torn write", seq)
	}
	if s.plan.BitFlipRate > 0 && s.rng.float() < s.plan.BitFlipRate {
		// Silent rot: one bit of the stored page differs from what was
		// written, and the write still reports success (no injected error —
		// only an integrity envelope on a later read can catch this).
		s.faults++
		rotted := append([]byte(nil), data...)
		bit := s.rng.intn(len(rotted) * 8)
		rotted[bit/8] ^= 1 << (bit % 8)
		return s.inner.WritePage(id, rotted)
	}
	if s.plan.ReorderWindow > 1 {
		s.pending = append(s.pending, pendingWrite{id: id, data: append([]byte(nil), data...)})
		if len(s.pending) >= s.plan.ReorderWindow {
			return s.flushPendingLocked()
		}
		return nil
	}
	return s.inner.WritePage(id, data)
}

// tornWriteLocked persists a sector-aligned prefix of data over the old
// contents, as a write interrupted by power loss would.
func (s *Store) tornWriteLocked(id page.ID, data []byte) error {
	sectors := len(data) / SectorSize
	keep := s.rng.intn(sectors) * SectorSize // 0 .. len-SectorSize bytes of new data
	merged := make([]byte, len(data))
	if err := s.inner.ReadPage(id, merged); err != nil {
		// Page never written: the unwritten remainder reads as zeroes.
		for i := range merged {
			merged[i] = 0
		}
	}
	copy(merged[:keep], data[:keep])
	return s.inner.WritePage(id, merged)
}

// flushPendingLocked applies the reorder window in a deterministic shuffled
// order (a disk scheduler reordering unsynced writes).
func (s *Store) flushPendingLocked() error {
	w := s.pending
	s.pending = nil
	for i := len(w) - 1; i > 0; i-- {
		j := s.rngIntn(i + 1)
		w[i], w[j] = w[j], w[i]
	}
	for _, p := range w {
		if err := s.inner.WritePage(p.id, p.data); err != nil {
			return fmt.Errorf("faultinject: flushing reordered write: %w", err)
		}
	}
	return nil
}

// rngIntn tolerates a nil rng (Disarm before any Arm).
func (s *Store) rngIntn(n int) int {
	if s.rng == nil {
		return 0
	}
	return s.rng.intn(n)
}

// Pages implements disk.Store.
func (s *Store) Pages() int { return s.inner.Pages() }

// ForEachPage implements disk.Store. The scan observes writes buffered in
// the reorder window (as the OS cache would) and is not itself subject to
// injected read faults: it models a bulk volume scan (online backup), whose
// per-page errors the fault plans do not target.
func (s *Store) ForEachPage(fn func(id page.ID, data []byte) error) error {
	s.mu.Lock()
	overlay := make(map[page.ID][]byte, len(s.pending))
	for _, p := range s.pending {
		overlay[p.id] = append([]byte(nil), p.data...) // newest write wins
	}
	s.mu.Unlock()
	seen := make(map[page.ID]bool, len(overlay))
	if err := s.inner.ForEachPage(func(id page.ID, data []byte) error {
		if buf, ok := overlay[id]; ok {
			seen[id] = true
			return fn(id, buf)
		}
		return fn(id, data)
	}); err != nil {
		return err
	}
	// Buffered writes to pages the underlying store has never seen.
	rest := make([]page.ID, 0, len(overlay))
	for id := range overlay {
		if !seen[id] {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, id := range rest {
		if err := fn(id, overlay[id]); err != nil {
			return err
		}
	}
	return nil
}

// Close implements disk.Store.
func (s *Store) Close() error { return s.inner.Close() }

var _ disk.Store = (*Store)(nil)
