package archive

// Single-page media repair: rebuild one corrupt page from the newest backup
// plus per-page redo over the archived log, continuing into the live log.
//
// This is Restore scoped to one page id. The base image comes from the
// newest backup (pickBackup with no target cut); the record stream is the
// backup generation's contiguous segment chain followed by the live log
// records past the archived end, cut at the live log's stable end. Replay
// is pageLSN-conditional exactly like restart redo, so a record the backup
// already contains is skipped, and running the repair twice produces the
// identical image. By the truncation invariant every record newer than the
// archived end is still in the live log, so the stream has no gap.
//
// RepairPage never writes anywhere — the caller (internal/server/scrub.go,
// under the page's shard latch) installs the returned image — and never
// takes the archiver's own lock, so it is safe to call from a committing
// session while a drain is in progress.

import (
	"errors"
	"fmt"

	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wal"
)

// ErrPageUnrepairable means the archive (plus live log) cannot rebuild the
// requested page: no backup holds it and no whole-page image precedes its
// updates in the record stream.
var ErrPageUnrepairable = errors.New("archive: page not repairable from the archive")

// RepairOptions configures a single-page repair.
type RepairOptions struct {
	// Mode is the recovery scheme of the server whose page is being
	// repaired. ESM/REDO repair replays updates over a base image; WPL
	// repair installs the newest committed whole-page image (NO-STEAL: an
	// uncommitted image must never reach a permanent location).
	Mode server.Mode
	// Page is the page to rebuild.
	Page page.ID
	// Log, when non-nil, is the live log; per-page redo continues past the
	// archived end into it, cut at its stable end. The caller should force
	// the log first if it wants the freshest possible image.
	Log *wal.Log
}

// RepairPage rebuilds one page and returns its image (page.Size bytes).
func RepairPage(blobs BlobStore, opts RepairOptions) ([]byte, error) {
	backup, pages, err := pickBackup(blobs, ^uint64(0))
	if err != nil {
		return nil, fmt.Errorf("repairing page %v: %w", opts.Page, err)
	}
	chain, err := segmentChain(blobs, backup, ^uint64(0))
	if err != nil {
		return nil, fmt.Errorf("repairing page %v: %w", opts.Page, err)
	}

	var img []byte
	if base, ok := pages[opts.Page]; ok {
		img = append([]byte(nil), base...)
	}

	// The record stream: archived chain, then the live log past the archived
	// end. Records are delivered in LSN order; apply stays pageLSN-conditional
	// so overlap (a live record also archived) is harmless.
	archivedEnd := chainEnd(chain, backup)
	wpl := opts.Mode == server.ModeWPL
	committed := make(map[logrec.TID]bool)
	type wplImage struct {
		tid  logrec.TID
		data []byte
	}
	var wplImages []wplImage
	apply := func(r *logrec.Record) error {
		if wpl {
			switch r.Type {
			case logrec.TypePageImage:
				if r.Page == opts.Page {
					wplImages = append(wplImages, wplImage{tid: r.TID,
						data: append([]byte(nil), r.After...)})
				}
			case logrec.TypeCommit:
				committed[r.TID] = true
			}
			return nil
		}
		if r.Page != opts.Page {
			return nil
		}
		switch r.Type {
		case logrec.TypePageImage:
			if img != nil && page.Wrap(img).LSN() >= r.LSN {
				return nil
			}
			img = append(img[:0], r.After...)
			page.Wrap(img).SetLSN(r.LSN)
		case logrec.TypeUpdate, logrec.TypeCLR:
			if img == nil {
				return fmt.Errorf("%w: %v: update at LSN %d precedes any base image",
					ErrPageUnrepairable, opts.Page, r.LSN)
			}
			if lsn := page.Wrap(img).LSN(); lsn >= r.LSN && lsn != 0 {
				return nil // the base already contains this update
			}
			copy(img[r.Off:int(r.Off)+len(r.After)], r.After)
			page.Wrap(img).SetLSN(r.LSN)
		}
		return nil
	}

	for _, seg := range chain {
		recs, err := ReadSegment(blobs, seg)
		if err != nil {
			return nil, fmt.Errorf("repairing page %v: %w", opts.Page, err)
		}
		for _, r := range recs {
			if r.LSN < backup.RedoStart {
				continue
			}
			if err := apply(r); err != nil {
				return nil, err
			}
		}
	}
	if opts.Log != nil {
		stable := opts.Log.StableEnd()
		from := opts.Log.Head()
		var applyErr error
		scanErr := opts.Log.Scan(from, func(r *logrec.Record) bool {
			if r.LSN+uint64(r.EncodedSize()) > stable {
				return false
			}
			if r.LSN < archivedEnd {
				return true // already consumed from the archived chain
			}
			if applyErr = apply(r); applyErr != nil {
				return false
			}
			return true
		})
		if applyErr != nil {
			return nil, applyErr
		}
		if scanErr != nil {
			return nil, fmt.Errorf("repairing page %v: scanning live log: %w", opts.Page, scanErr)
		}
	}

	if wpl {
		// NO-STEAL: only the newest image whose transaction committed within
		// the stream may be installed — verbatim, exactly as the server's
		// install path writes it. With none, the backup base (itself an
		// installed committed state, necessarily no newer than any committed
		// image still in the stream) stands.
		for i := len(wplImages) - 1; i >= 0; i-- {
			if committed[wplImages[i].tid] {
				img = wplImages[i].data
				break
			}
		}
	}
	if img == nil {
		return nil, fmt.Errorf("%w: %v: no backup holds it and no whole-page image is archived",
			ErrPageUnrepairable, opts.Page)
	}
	return img, nil
}
