// Package archive implements the media-recovery layer on top of the crash
// recovery core: a log archiver that drains the circular WAL into immutable,
// checksummed segments before truncation; online fuzzy backup of the data
// volume; and media restore / point-in-time recovery that rebuilds a
// destroyed volume from backup + archived log, correct for all five
// recovery schemes. See DESIGN.md §10.
package archive

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrBlobNotFound is returned by Get for a name that was never Put.
var ErrBlobNotFound = errors.New("archive: blob not found")

// BlobStore is write-once storage for archive artifacts (log segments,
// backups, generation markers). Put must be atomic: a name either holds the
// full blob or does not exist (DirBlobs writes a temp file and renames).
// Names are flat; List returns them sorted, which the naming scheme in
// segment.go exploits so lexical order equals LSN order.
type BlobStore interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	List() ([]string, error)
	Delete(name string) error
}

// MemBlobs is an in-memory BlobStore for tests and sweeps.
type MemBlobs struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemBlobs returns an empty in-memory blob store.
func NewMemBlobs() *MemBlobs { return &MemBlobs{blobs: make(map[string][]byte)} }

// Put implements BlobStore.
func (m *MemBlobs) Put(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[name] = append([]byte(nil), data...)
	return nil
}

// Get implements BlobStore.
func (m *MemBlobs) Get(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.blobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, name)
	}
	return append([]byte(nil), data...), nil
}

// List implements BlobStore.
func (m *MemBlobs) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.blobs))
	for n := range m.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements BlobStore.
func (m *MemBlobs) Delete(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, name)
	return nil
}

// DirBlobs is a BlobStore backed by a flat directory: one file per blob.
type DirBlobs struct {
	dir string
}

// OpenDir creates the directory if needed and returns a store over it.
func OpenDir(dir string) (*DirBlobs, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirBlobs{dir: dir}, nil
}

// Put implements BlobStore: write to a temp file, then rename, so a crash
// mid-write never leaves a half-blob under the final name.
func (d *DirBlobs) Put(name string, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, name+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(d.dir, name))
}

// Get implements BlobStore.
func (d *DirBlobs) Get(name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, name)
	}
	return data, err
}

// List implements BlobStore. Leftover temp files from crashed Puts are
// invisible (and harmless) because they never match an archive blob name.
func (d *DirBlobs) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements BlobStore.
func (d *DirBlobs) Delete(name string) error {
	err := os.Remove(filepath.Join(d.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

var (
	_ BlobStore = (*MemBlobs)(nil)
	_ BlobStore = (*DirBlobs)(nil)
)
