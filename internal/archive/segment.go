package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"

	"repro/internal/logrec"
	"repro/internal/page"
)

// Typed archive errors. Corruption errors are what the checksum verification
// reports instead of silently replaying damaged media; restore callers can
// errors.Is on them.
var (
	// ErrCorruptSegment means an archived log segment failed its checksum or
	// framing checks (torn blob write, bit rot).
	ErrCorruptSegment = errors.New("archive: corrupt log segment")
	// ErrCorruptBackup means a backup blob failed its checksum or framing.
	ErrCorruptBackup = errors.New("archive: corrupt backup")
	// ErrNoBackup means no usable backup exists at or before the restore
	// target (media recovery needs a base backup to start from).
	ErrNoBackup = errors.New("archive: no backup covering the restore target")
	// ErrArchiveGap means the archived segments do not form a contiguous LSN
	// range from the backup's redo start to the restore cut.
	ErrArchiveGap = errors.New("archive: gap in archived log segments")
)

// Blob formats. Both carry a 4-byte magic, a version, framing fields, and a
// CRC-32 (IEEE) over the payload, so any torn write or bit flip — in header
// or payload — is detected before a single byte is replayed. (Payload record
// encodings additionally carry logrec's per-record CRC; the blob-level CRC
// catches corruption in our own framing too, and catches payload damage
// without decoding.)
const (
	segMagic    = "QSAR" // archived log segment
	backupMagic = "QSBK" // fuzzy online backup
	genMagic    = "QSGN" // generation begin marker
	blobVersion = 1

	segHeaderSize    = 4 + 4 + 8 + 8 + 4 + 4     // magic, version, start, end, count, crc
	backupHeaderSize = 4 + 4 + 8 + 8 + 8 + 4 + 4 // magic, version, redoStart, start, end, count, crc
)

// Blob naming. All blobs of one archiver generation share a g%08x prefix (the
// in-memory WAL restarts its LSN space every process boot, so LSNs are only
// meaningful within a generation). Fixed-width hex keeps List()'s lexical
// order equal to (generation, LSN) order.
func segName(gen uint64, start, end uint64) string {
	return fmt.Sprintf("g%08x-seg-%016x-%016x", gen, start, end)
}

func backupName(gen uint64, end uint64) string {
	return fmt.Sprintf("g%08x-backup-%016x", gen, end)
}

func genName(gen uint64) string {
	return fmt.Sprintf("g%08x-begin", gen)
}

// SegmentInfo describes one archived log segment: records with LSNs in
// [Start, End).
type SegmentInfo struct {
	Name  string
	Gen   uint64
	Start uint64
	End   uint64
}

// BackupInfo describes one fuzzy online backup. RedoStart is the log head at
// backup start: replaying [RedoStart, …) over the backup image reaches any
// later point. [Start, End) is the fuzz window — log appended while pages
// were being copied; a restore must replay at least through End.
type BackupInfo struct {
	Name      string
	Gen       uint64
	RedoStart uint64
	Start     uint64
	End       uint64
	Pages     int
}

// encodeSegment frames records (already concatenated raw logrec encodings)
// covering [start, end).
func encodeSegment(start, end uint64, count int, payload []byte) []byte {
	b := make([]byte, segHeaderSize+len(payload))
	copy(b, segMagic)
	binary.LittleEndian.PutUint32(b[4:], blobVersion)
	binary.LittleEndian.PutUint64(b[8:], start)
	binary.LittleEndian.PutUint64(b[16:], end)
	binary.LittleEndian.PutUint32(b[24:], uint32(count))
	copy(b[segHeaderSize:], payload)
	binary.LittleEndian.PutUint32(b[28:], crc32.ChecksumIEEE(b[segHeaderSize:]))
	return b
}

// decodeSegment verifies framing and checksum and returns the records.
func decodeSegment(name string, data []byte) (start, end uint64, recs []*logrec.Record, err error) {
	fail := func(why string) (uint64, uint64, []*logrec.Record, error) {
		return 0, 0, nil, fmt.Errorf("%w: %s: %s", ErrCorruptSegment, name, why)
	}
	if len(data) < segHeaderSize || string(data[:4]) != segMagic {
		return fail("bad magic or truncated header")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != blobVersion {
		return fail(fmt.Sprintf("unknown version %d", v))
	}
	start = binary.LittleEndian.Uint64(data[8:])
	end = binary.LittleEndian.Uint64(data[16:])
	count := int(binary.LittleEndian.Uint32(data[24:]))
	if crc32.ChecksumIEEE(data[segHeaderSize:]) != binary.LittleEndian.Uint32(data[28:]) {
		return fail("payload checksum mismatch")
	}
	recs, derr := logrec.DecodeAll(data[segHeaderSize:])
	if derr != nil {
		return fail(derr.Error())
	}
	if len(recs) != count {
		return fail(fmt.Sprintf("record count %d, header says %d", len(recs), count))
	}
	if uint64(len(data)-segHeaderSize) != end-start {
		return fail("payload length disagrees with LSN range")
	}
	return start, end, recs, nil
}

// encodeBackup frames a fuzzy backup: n × [page id u32][page image].
func encodeBackup(info BackupInfo, payload []byte) []byte {
	b := make([]byte, backupHeaderSize+len(payload))
	copy(b, backupMagic)
	binary.LittleEndian.PutUint32(b[4:], blobVersion)
	binary.LittleEndian.PutUint64(b[8:], info.RedoStart)
	binary.LittleEndian.PutUint64(b[16:], info.Start)
	binary.LittleEndian.PutUint64(b[24:], info.End)
	binary.LittleEndian.PutUint32(b[32:], uint32(info.Pages))
	copy(b[backupHeaderSize:], payload)
	binary.LittleEndian.PutUint32(b[36:], crc32.ChecksumIEEE(b[backupHeaderSize:]))
	return b
}

// decodeBackup verifies framing and checksum and returns the page images.
func decodeBackup(name string, data []byte) (BackupInfo, map[page.ID][]byte, error) {
	fail := func(why string) (BackupInfo, map[page.ID][]byte, error) {
		return BackupInfo{}, nil, fmt.Errorf("%w: %s: %s", ErrCorruptBackup, name, why)
	}
	if len(data) < backupHeaderSize || string(data[:4]) != backupMagic {
		return fail("bad magic or truncated header")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != blobVersion {
		return fail(fmt.Sprintf("unknown version %d", v))
	}
	info := BackupInfo{
		Name:      name,
		RedoStart: binary.LittleEndian.Uint64(data[8:]),
		Start:     binary.LittleEndian.Uint64(data[16:]),
		End:       binary.LittleEndian.Uint64(data[24:]),
		Pages:     int(binary.LittleEndian.Uint32(data[32:])),
	}
	if crc32.ChecksumIEEE(data[backupHeaderSize:]) != binary.LittleEndian.Uint32(data[36:]) {
		return fail("payload checksum mismatch")
	}
	payload := data[backupHeaderSize:]
	const stride = 4 + page.Size
	if len(payload) != info.Pages*stride {
		return fail("payload length disagrees with page count")
	}
	pages := make(map[page.ID][]byte, info.Pages)
	for off := 0; off < len(payload); off += stride {
		id := page.ID(binary.LittleEndian.Uint32(payload[off:]))
		pages[id] = payload[off+4 : off+stride : off+stride]
	}
	return info, pages, nil
}

// encodeGenMarker records the first LSN of a generation's log stream.
func encodeGenMarker(start uint64) []byte {
	b := make([]byte, 4+4+8+4)
	copy(b, genMagic)
	binary.LittleEndian.PutUint32(b[4:], blobVersion)
	binary.LittleEndian.PutUint64(b[8:], start)
	binary.LittleEndian.PutUint32(b[16:], crc32.ChecksumIEEE(b[8:16]))
	return b
}

func decodeGenMarker(name string, data []byte) (start uint64, err error) {
	if len(data) != 20 || string(data[:4]) != genMagic ||
		crc32.ChecksumIEEE(data[8:16]) != binary.LittleEndian.Uint32(data[16:]) {
		return 0, fmt.Errorf("%w: %s: bad generation marker", ErrCorruptSegment, name)
	}
	return binary.LittleEndian.Uint64(data[8:]), nil
}

// parseName classifies a blob name; ok is false for names this package does
// not own (e.g. stray files in an archive directory).
func parseName(name string) (gen uint64, kind string, a, b uint64, ok bool) {
	switch {
	case strings.Contains(name, "-seg-"):
		if _, err := fmt.Sscanf(name, "g%08x-seg-%016x-%016x", &gen, &a, &b); err == nil {
			return gen, "seg", a, b, true
		}
	case strings.Contains(name, "-backup-"):
		if _, err := fmt.Sscanf(name, "g%08x-backup-%016x", &gen, &a); err == nil {
			return gen, "backup", a, 0, true
		}
	case strings.HasSuffix(name, "-begin"):
		if _, err := fmt.Sscanf(name, "g%08x-begin", &gen); err == nil {
			return gen, "begin", 0, 0, true
		}
	}
	return 0, "", 0, 0, false
}

// Generations returns the generation numbers present in blobs, ascending.
func Generations(blobs BlobStore) ([]uint64, error) {
	names, err := blobs.List()
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, n := range names {
		if gen, kind, _, _, ok := parseName(n); ok && kind == "begin" {
			gens = append(gens, gen)
		}
	}
	return gens, nil
}

// ListSegments returns the archived segments of one generation in LSN order.
func ListSegments(blobs BlobStore, gen uint64) ([]SegmentInfo, error) {
	names, err := blobs.List()
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, n := range names {
		if g, kind, a, b, ok := parseName(n); ok && kind == "seg" && g == gen {
			segs = append(segs, SegmentInfo{Name: n, Gen: g, Start: a, End: b})
		}
	}
	return segs, nil // List is sorted and names are fixed-width: LSN order
}

// ListBackups returns the backups of one generation, oldest first. Headers
// are decoded (and verified) to recover the fuzz window.
func ListBackups(blobs BlobStore, gen uint64) ([]BackupInfo, error) {
	names, err := blobs.List()
	if err != nil {
		return nil, err
	}
	var backups []BackupInfo
	for _, n := range names {
		if g, kind, _, _, ok := parseName(n); ok && kind == "backup" && g == gen {
			data, err := blobs.Get(n)
			if err != nil {
				return nil, err
			}
			info, _, err := decodeBackup(n, data)
			if err != nil {
				return nil, err
			}
			info.Gen = g
			backups = append(backups, info)
		}
	}
	return backups, nil
}

// ReadSegment fetches and verifies one segment, returning its records. The
// records own their payloads (safe to retain).
func ReadSegment(blobs BlobStore, info SegmentInfo) ([]*logrec.Record, error) {
	data, err := blobs.Get(info.Name)
	if err != nil {
		return nil, err
	}
	start, end, recs, err := decodeSegment(info.Name, data)
	if err != nil {
		return nil, err
	}
	if start != info.Start || end != info.End {
		return nil, fmt.Errorf("%w: %s: header range [%d,%d) disagrees with name",
			ErrCorruptSegment, info.Name, start, end)
	}
	return recs, nil
}
