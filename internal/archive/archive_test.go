package archive

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wal"
)

// --- wal-level archiver tests ------------------------------------------------

// appendRecords appends n small update records and returns each record's
// exclusive end LSN.
func appendRecords(t *testing.T, log *wal.Log, n int) []uint64 {
	t.Helper()
	var ends []uint64
	for i := 0; i < n; i++ {
		r := logrec.NewUpdate(logrec.TID(i+1), page.ID(i+1), 64, make([]byte, 48), make([]byte, 48))
		lsn, err := log.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		ends = append(ends, lsn+uint64(r.EncodedSize()))
	}
	log.Force()
	return ends
}

func TestArchiverRoundTrip(t *testing.T) {
	log := wal.New(1 << 20)
	blobs := NewMemBlobs()
	a, err := NewArchiver(log, disk.NewMemStore(), blobs, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ends := appendRecords(t, log, 40)
	if err := a.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, want := a.ArchivedUpTo(), ends[len(ends)-1]; got != want {
		t.Fatalf("archived up to %d, want %d", got, want)
	}
	segs, err := ListSegments(blobs, a.Generation())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("got %d segments, want several (SegmentBytes=1KB over %d records)", len(segs), 40)
	}
	// Segments tile [FirstLSN, end) exactly, and their records read back
	// with the LSNs they were logged at.
	next := uint64(wal.FirstLSN)
	nrec := 0
	for _, s := range segs {
		if s.Start != next {
			t.Fatalf("segment %s starts at %d, want %d", s.Name, s.Start, next)
		}
		recs, err := ReadSegment(blobs, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if got, want := r.LSN+uint64(r.EncodedSize()), ends[nrec]; got != want {
				t.Fatalf("record %d ends at %d, want %d", nrec, got, want)
			}
			nrec++
		}
		next = s.End
	}
	if nrec != len(ends) {
		t.Fatalf("read %d records back, want %d", nrec, len(ends))
	}

	// A second archiver over the same blob store starts a fresh generation.
	b, err := NewArchiver(wal.New(1<<20), disk.NewMemStore(), blobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Generation() != a.Generation()+1 {
		t.Fatalf("second archiver got generation %d, want %d", b.Generation(), a.Generation()+1)
	}
	gens, err := Generations(blobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != a.Generation() || gens[1] != b.Generation() {
		t.Fatalf("generations = %v", gens)
	}
}

// TestTruncateDefersToArchiveGate is the regression test for the truncation
// choke point: the log must refuse to reclaim unarchived records — including
// while a group-commit batch is in flight across the truncation point — and
// admit the same truncation once the archiver catches up.
func TestTruncateDefersToArchiveGate(t *testing.T) {
	log := wal.New(1 << 20)
	blobs := NewMemBlobs()
	a, err := NewArchiver(log, disk.NewMemStore(), blobs, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Log: log}
	Wire(&cfg, a)

	ends := appendRecords(t, log, 30)
	mid := ends[14]
	if err := log.Truncate(mid); err != nil {
		t.Fatal(err)
	}
	if got := log.Head(); got != wal.FirstLSN {
		t.Fatalf("truncation past unarchived records not deferred: head=%d", got)
	}
	if err := a.DrainTo(mid); err != nil {
		t.Fatal(err)
	}
	if err := log.Truncate(mid); err != nil {
		t.Fatal(err)
	}
	if got := log.Head(); got != mid {
		t.Fatalf("truncation after drain: head=%d, want %d", got, mid)
	}

	// Group-commit batches in flight: committers park in CommitWait while a
	// slow flush spans the proposed truncation point; concurrent truncation
	// attempts must never pass the archived-up-to LSN.
	log.SetWriteDelay(200 * time.Microsecond)
	defer log.SetWriteDelay(0)
	done := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				r := logrec.NewUpdate(logrec.TID(1000+100*w+i), page.ID(2), 64, make([]byte, 48), make([]byte, 48))
				lsn, err := log.Append(r)
				if err != nil {
					done <- err
					return
				}
				log.CommitWait(lsn + uint64(r.EncodedSize()))
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 100; i++ {
		if err := log.Truncate(log.StableEnd()); err != nil {
			t.Fatal(err)
		}
		if head, upTo := log.Head(), a.ArchivedUpTo(); head > upTo {
			t.Fatalf("head %d passed archived-up-to %d with a batch in flight", head, upTo)
		}
		time.Sleep(50 * time.Microsecond)
	}
	for w := 0; w < 2; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Drain(); err != nil {
		t.Fatal(err)
	}
	end := log.StableEnd()
	if err := log.Truncate(end); err != nil {
		t.Fatal(err)
	}
	if got := log.Head(); got != end {
		t.Fatalf("truncation after final drain: head=%d, want %d", got, end)
	}
}

// --- end-to-end backup / restore over a live REDO server ---------------------

// valOff is where testPage stamps its value (past the page header fields).
const valOff = 512

func testPage(val byte) []byte {
	img := make([]byte, page.Size)
	for i := valOff; i < valOff+64; i++ {
		img[i] = val
	}
	return img
}

// redoWorld is a small live system: a REDO-mode server with a wired
// archiver, driven through a server session with page-image transactions.
type redoWorld struct {
	log   *wal.Log
	store *disk.MemStore
	blobs *MemBlobs
	arch  *Archiver
	srv   *server.Server
	sn    *server.Session
}

func newRedoWorld(t *testing.T, opts Options) *redoWorld {
	t.Helper()
	w := &redoWorld{
		log:   wal.New(4 << 20),
		store: disk.NewMemStore(),
		blobs: NewMemBlobs(),
	}
	var err error
	w.arch, err = NewArchiver(w.log, w.store, w.blobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{
		Mode:            server.ModeREDO,
		Store:           w.store,
		Log:             w.log,
		LogCapacity:     4 << 20,
		PoolPages:       64,
		CheckpointEvery: 2,
	}
	Wire(&cfg, w.arch)
	w.srv = server.New(cfg)
	w.sn = w.srv.NewSession(nil, nil)
	return w
}

// commitPage allocates a page, fills it with val in one committed
// transaction, and returns its id.
func (w *redoWorld) commitPage(t *testing.T, val byte) page.ID {
	t.Helper()
	tid := w.sn.Begin()
	pid, err := w.sn.AllocPage(tid)
	if err != nil {
		t.Fatal(err)
	}
	r := logrec.NewPageImage(tid, pid, testPage(val))
	if err := w.sn.ShipLog(tid, r.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.sn.Commit(tid); err != nil {
		t.Fatal(err)
	}
	return pid
}

// commitEnds returns the exclusive end LSN of every commit record in the
// archive, in order.
func (w *redoWorld) commitEnds(t *testing.T) []uint64 {
	t.Helper()
	segs, err := ListSegments(w.blobs, w.arch.Generation())
	if err != nil {
		t.Fatal(err)
	}
	var ends []uint64
	for _, s := range segs {
		recs, err := ReadSegment(w.blobs, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Type == logrec.TypeCommit {
				ends = append(ends, r.LSN+uint64(r.EncodedSize()))
			}
		}
	}
	return ends
}

// wantVal asserts pid's restored image carries val (0 = page absent or
// still zero at the stamp offset).
func wantVal(t *testing.T, st disk.Store, pid page.ID, val byte, why string) {
	t.Helper()
	buf := make([]byte, page.Size)
	err := st.ReadPage(pid, buf)
	if errors.Is(err, disk.ErrNotFound) {
		if val != 0 {
			t.Fatalf("%s: page %v absent, want val %d", why, pid, val)
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if buf[valOff] != val {
		t.Fatalf("%s: page %v has val %d, want %d", why, pid, buf[valOff], val)
	}
}

func TestBackupRestorePITR(t *testing.T) {
	w := newRedoWorld(t, Options{SegmentBytes: 2 << 10})
	p1 := w.commitPage(t, 1)
	p2 := w.commitPage(t, 2)
	backup, err := w.arch.Backup()
	if err != nil {
		t.Fatal(err)
	}
	p3 := w.commitPage(t, 3)
	// A loser: t4 overwrites p1's stamp but never commits.
	tid4 := w.sn.Begin()
	if err := w.sn.Lock(tid4, p1, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	r4 := logrec.NewUpdate(tid4, p1, valOff, testPage(1)[valOff:valOff+64], testPage(99)[valOff:valOff+64])
	if err := w.sn.ShipLog(tid4, r4.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	p5 := w.commitPage(t, 5)
	w.log.Force()
	if err := w.arch.Drain(); err != nil {
		t.Fatal(err)
	}

	// The volume is destroyed; restore to end of archive. Committed pages
	// are back, the loser's overwrite is rolled back.
	res, err := Restore(w.blobs, RestoreOptions{Mode: server.ModeREDO, RedoWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Server.Close()
	if res.Backup.End != backup.End {
		t.Fatalf("restore used backup ending %d, want %d", res.Backup.End, backup.End)
	}
	wantVal(t, res.Store, p1, 1, "end: committed page overwritten by loser")
	wantVal(t, res.Store, p2, 2, "end: committed page")
	wantVal(t, res.Store, p3, 3, "end: committed page after backup")
	wantVal(t, res.Store, p5, 5, "end: last committed page")

	// Point-in-time: cut at t3's commit record. t3 is in, t5 (and the
	// loser) are out.
	commits := w.commitEnds(t)
	if len(commits) != 4 {
		t.Fatalf("archive holds %d commits, want 4", len(commits))
	}
	cut := commits[2]
	res2, err := Restore(w.blobs, RestoreOptions{Mode: server.ModeREDO, TargetLSN: cut, RedoWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Server.Close()
	if res2.CutLSN != cut {
		t.Fatalf("replayed to %d, want the cut %d", res2.CutLSN, cut)
	}
	wantVal(t, res2.Store, p1, 1, "pitr: committed page")
	wantVal(t, res2.Store, p3, 3, "pitr: last committed page at the cut")
	wantVal(t, res2.Store, p5, 0, "pitr: page committed after the cut")

	// A cut inside the backup's fuzz window has no usable backup.
	if _, err := Restore(w.blobs, RestoreOptions{Mode: server.ModeREDO, TargetLSN: backup.End - 1}); !errors.Is(err, ErrNoBackup) {
		t.Fatalf("restore before the backup window closed: %v, want ErrNoBackup", err)
	}
}

// TestRestoreRerunnable: a restore that dies half-way (volume write errors,
// or a crash in the final handoff) leaves the archive untouched and a second
// run succeeds; Finish never runs on a failed restore.
func TestRestoreRerunnable(t *testing.T) {
	w := newRedoWorld(t, Options{SegmentBytes: 2 << 10})
	p1 := w.commitPage(t, 1)
	w.commitPage(t, 2)
	if _, err := w.arch.Backup(); err != nil {
		t.Fatal(err)
	}
	p3 := w.commitPage(t, 3)
	w.log.Force()
	if err := w.arch.Drain(); err != nil {
		t.Fatal(err)
	}

	// Attempt 1: every volume write fails.
	boom := faultinject.NewStore(disk.NewMemStore())
	boom.Arm(faultinject.Plan{WriteErrorRate: 1, Seed: 1})
	finished := false
	_, err := Restore(w.blobs, RestoreOptions{
		Mode:     server.ModeREDO,
		NewStore: func() (disk.Store, error) { return boom, nil },
		Finish:   func(disk.Store) error { finished = true; return nil },
	})
	if err == nil {
		t.Fatal("restore onto a failing volume reported success")
	}
	if finished {
		t.Fatal("Finish ran on a failed restore")
	}

	// Attempt 2: crash during the final handoff itself.
	_, err = Restore(w.blobs, RestoreOptions{
		Mode:   server.ModeREDO,
		Finish: func(disk.Store) error { return fmt.Errorf("crash before rename") },
	})
	if err == nil {
		t.Fatal("restore with crashing Finish reported success")
	}

	// Attempt 3: re-run cleanly; same cut, correct data.
	res, err := Restore(w.blobs, RestoreOptions{Mode: server.ModeREDO})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Server.Close()
	wantVal(t, res.Store, p1, 1, "rerun")
	wantVal(t, res.Store, p3, 3, "rerun")
}

// TestCorruptionDetected: a torn write or bit flip in an archive blob is
// caught by its checksum and surfaces as the typed error — a restore fails
// loudly rather than silently replaying damaged history.
func TestCorruptionDetected(t *testing.T) {
	setup := func(t *testing.T) (*redoWorld, SegmentInfo, BackupInfo) {
		w := newRedoWorld(t, Options{SegmentBytes: 1 << 10})
		w.commitPage(t, 1)
		w.commitPage(t, 2)
		if _, err := w.arch.Backup(); err != nil {
			t.Fatal(err)
		}
		w.commitPage(t, 3)
		w.log.Force()
		if err := w.arch.Drain(); err != nil {
			t.Fatal(err)
		}
		segs, err := ListSegments(w.blobs, w.arch.Generation())
		if err != nil {
			t.Fatal(err)
		}
		backups, err := ListBackups(w.blobs, w.arch.Generation())
		if err != nil {
			t.Fatal(err)
		}
		return w, segs[len(segs)/2], backups[0]
	}
	corrupt := func(t *testing.T, w *redoWorld, name string, plan faultinject.Plan) {
		t.Helper()
		data, err := w.blobs.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		fb := faultinject.NewBlobs(w.blobs, plan)
		if err := fb.Put(name, data); err != nil {
			t.Fatal(err)
		}
		if fb.Faults() == 0 {
			t.Fatal("injector did not fire")
		}
	}

	t.Run("segment bit flip", func(t *testing.T) {
		w, seg, _ := setup(t)
		corrupt(t, w, seg.Name, faultinject.Plan{BitFlipRate: 1, Seed: 3})
		if _, err := ReadSegment(w.blobs, seg); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("ReadSegment: %v, want ErrCorruptSegment", err)
		}
		if _, err := Restore(w.blobs, RestoreOptions{Mode: server.ModeREDO}); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("Restore: %v, want ErrCorruptSegment", err)
		}
	})
	t.Run("segment torn write", func(t *testing.T) {
		w, seg, _ := setup(t)
		corrupt(t, w, seg.Name, faultinject.Plan{TornWriteRate: 1, Seed: 5})
		if _, err := ReadSegment(w.blobs, seg); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("ReadSegment: %v, want ErrCorruptSegment", err)
		}
	})
	t.Run("backup bit flip", func(t *testing.T) {
		w, _, bk := setup(t)
		corrupt(t, w, bk.Name, faultinject.Plan{BitFlipRate: 1, Seed: 7})
		if _, err := Restore(w.blobs, RestoreOptions{Mode: server.ModeREDO}); !errors.Is(err, ErrCorruptBackup) {
			t.Fatalf("Restore: %v, want ErrCorruptBackup", err)
		}
	})
}

// TestBackpressureBoundsLag: the PostCommit hook drains inline whenever the
// archiver falls more than MaxLagBytes behind, so commit traffic cannot
// outrun archiving without bound.
func TestBackpressureBoundsLag(t *testing.T) {
	const maxLag = 32 << 10
	w := newRedoWorld(t, Options{SegmentBytes: 8 << 10, MaxLagBytes: maxLag})
	for i := 0; i < 24; i++ {
		w.commitPage(t, byte(i+1)) // each ships a full page image: ~8 KB of log
		if lag := w.arch.Lag(); lag > maxLag {
			t.Fatalf("after commit %d: archiver lag %d exceeds MaxLagBytes %d", i, lag, maxLag)
		}
	}
	if w.arch.Status().Segments == 0 {
		t.Fatal("backpressure never sealed a segment")
	}
}
