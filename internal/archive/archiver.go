package archive

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/disk"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wal"
)

// Options tunes an Archiver. The zero value picks the defaults.
type Options struct {
	// SegmentBytes is the target payload size at which a segment is sealed
	// (default 1 MB). A segment may exceed it by one record.
	SegmentBytes int
	// MaxLagBytes bounds how far the stable log end may run ahead of the
	// archived-up-to LSN before the PostCommit backpressure hook drains
	// inline (default 8 MB).
	MaxLagBytes uint64
}

const (
	defaultSegmentBytes = 1 << 20
	defaultMaxLagBytes  = 8 << 20
)

// Archiver drains a live WAL into immutable, checksummed archive segments
// and takes fuzzy online backups of the data volume. One archiver owns one
// *generation* of the archive: because the in-memory WAL restarts its LSN
// space on every process start, blobs are namespaced by a generation number,
// and each NewArchiver call begins a fresh generation. Within a generation
// the archived segments form one contiguous LSN range starting at the log
// head observed at creation.
//
// The archiver is glued to the log through the wal archive gate
// (wal.SetArchiveGate, installed by Wire): the log refuses to truncate past
// the archived-up-to LSN, so no record can be reclaimed before it is safely
// archived — the same choke point that guards the checkpoint/truncation
// ordering. The gate reads archivedUpTo through an atomic, never taking the
// archiver mutex: DrainTo holds that mutex while scanning the log (log mutex
// inside archiver mutex), and the gate runs under the log mutex, so touching
// the archiver mutex there would deadlock.
type Archiver struct {
	log   *wal.Log
	store disk.Store
	blobs BlobStore
	opts  Options
	gen   uint64

	archivedUpTo atomic.Uint64 // all records below are archived; read by the gate

	mu       sync.Mutex
	segments []SegmentInfo
	backups  []BackupInfo
	segBytes int64 // cumulative archived payload bytes
}

// NewArchiver starts a new archive generation over log and store: one past
// the highest generation already in blobs, beginning at the current log
// head. The generation's begin marker is written immediately.
func NewArchiver(log *wal.Log, store disk.Store, blobs BlobStore, opts Options) (*Archiver, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.MaxLagBytes == 0 {
		opts.MaxLagBytes = defaultMaxLagBytes
	}
	gens, err := Generations(blobs)
	if err != nil {
		return nil, err
	}
	gen := uint64(1)
	if n := len(gens); n > 0 {
		gen = gens[n-1] + 1
	}
	a := &Archiver{log: log, store: store, blobs: blobs, opts: opts, gen: gen}
	start := log.Head()
	a.archivedUpTo.Store(start)
	if err := blobs.Put(genName(gen), encodeGenMarker(start)); err != nil {
		return nil, fmt.Errorf("archive: writing generation marker: %w", err)
	}
	return a, nil
}

// Generation returns the archiver's generation number.
func (a *Archiver) Generation() uint64 { return a.gen }

// ArchivedUpTo returns the LSN below which every record is archived.
func (a *Archiver) ArchivedUpTo() uint64 { return a.archivedUpTo.Load() }

// Lag returns how many stable log bytes are not yet archived.
func (a *Archiver) Lag() uint64 {
	stable := a.log.StableEnd()
	upTo := a.archivedUpTo.Load()
	if stable <= upTo {
		return 0
	}
	return stable - upTo
}

// Drain archives everything stable and not yet archived.
func (a *Archiver) Drain() error { return a.DrainTo(a.log.StableEnd()) }

// DrainTo archives all stable records in [ArchivedUpTo, target), sealing
// segments of roughly SegmentBytes. It is the PreTruncate hook's body: after
// DrainTo(newHead) succeeds, the archive gate admits truncation to newHead.
func (a *Archiver) DrainTo(target uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if stable := a.log.StableEnd(); target > stable {
		target = stable
	}
	for {
		from := a.archivedUpTo.Load()
		if from >= target {
			return nil
		}
		var payload []byte
		count := 0
		// ScanFrom (the shipping tail-follow scan) rather than Scan: it stops
		// at the stable end by construction — the archive must never contain a
		// volatile record — and it releases the log lock between records, so a
		// large drain does not stall committers behind the whole segment scan.
		// next is tracked explicitly because the target check rejects a record
		// without consuming it, while ScanFrom's own resume LSN counts every
		// record delivered to fn.
		next := from
		_, err := a.log.ScanFrom(from, nil, func(r *logrec.Record) bool {
			if r.LSN >= target {
				return false
			}
			payload = r.Encode(payload)
			count++
			next = r.LSN + uint64(r.EncodedSize())
			return len(payload) < a.opts.SegmentBytes
		})
		if err != nil {
			return fmt.Errorf("archive: draining log: %w", err)
		}
		if count == 0 {
			// The stable end fell mid-record (page-grained ForceFull flushing
			// leaves a torn tail): everything whole is archived; the partial
			// record will be sealed once a later flush completes it. Truncation
			// heads are always whole-record boundaries, so a PreTruncate drain
			// never ends up here short of its target.
			return nil
		}
		info := SegmentInfo{Name: segName(a.gen, from, next), Gen: a.gen, Start: from, End: next}
		if err := a.blobs.Put(info.Name, encodeSegment(from, next, count, payload)); err != nil {
			return fmt.Errorf("archive: writing segment %s: %w", info.Name, err)
		}
		a.segments = append(a.segments, info)
		a.segBytes += int64(len(payload))
		a.archivedUpTo.Store(next)
	}
}

// Backup takes a fuzzy online backup: every page of the data volume is
// copied while transactions keep running, with the log positions around the
// copy recorded as the fuzz window [Start, End). RedoStart is the log head
// at backup start; by the truncation invariant (the head never passes the
// last checkpoint, any active transaction's first record, or an uninstalled
// WPL copy) replaying the archive from RedoStart over the backup image
// reconstructs any later point, for every recovery scheme.
//
// Before the backup blob is written, the log is forced and the archive
// drained through End — a backup only becomes visible once its entire fuzz
// window is safely archived, so any backup a restore can see is usable.
func (a *Archiver) Backup() (BackupInfo, error) {
	redoStart := a.log.Head()
	start := a.log.End()
	var payload []byte
	pages := 0
	err := a.store.ForEachPage(func(id page.ID, data []byte) error {
		var idb [4]byte
		binary.LittleEndian.PutUint32(idb[:], uint32(id))
		payload = append(payload, idb[:]...)
		payload = append(payload, data...)
		pages++
		return nil
	})
	if err != nil {
		return BackupInfo{}, fmt.Errorf("archive: scanning volume: %w", err)
	}
	end := a.log.End()
	a.log.Force()
	if err := a.DrainTo(end); err != nil {
		return BackupInfo{}, err
	}
	info := BackupInfo{
		Name:      backupName(a.gen, end),
		Gen:       a.gen,
		RedoStart: redoStart,
		Start:     start,
		End:       end,
		Pages:     pages,
	}
	if err := a.blobs.Put(info.Name, encodeBackup(info, payload)); err != nil {
		return BackupInfo{}, fmt.Errorf("archive: writing backup %s: %w", info.Name, err)
	}
	a.mu.Lock()
	a.backups = append(a.backups, info)
	a.mu.Unlock()
	return info, nil
}

// Status is the archiver's observability snapshot, reported by qsctl stats.
type Status struct {
	Generation     uint64 `json:"generation"`
	Segments       int    `json:"segments"`
	SegmentBytes   int64  `json:"segment_bytes"`
	ArchivedUpTo   uint64 `json:"archived_up_to"`
	StableEnd      uint64 `json:"stable_end"`
	LagBytes       uint64 `json:"lag_bytes"`
	SegmentsBehind int    `json:"segments_behind"`
	Backups        int    `json:"backups"`
	LastBackupLSN  uint64 `json:"last_backup_lsn"`
}

// Status returns a snapshot of archiver progress and lag.
func (a *Archiver) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Status{
		Generation:   a.gen,
		Segments:     len(a.segments),
		SegmentBytes: a.segBytes,
		ArchivedUpTo: a.archivedUpTo.Load(),
		StableEnd:    a.log.StableEnd(),
		Backups:      len(a.backups),
	}
	if st.StableEnd > st.ArchivedUpTo {
		st.LagBytes = st.StableEnd - st.ArchivedUpTo
		st.SegmentsBehind = int((st.LagBytes + uint64(a.opts.SegmentBytes) - 1) / uint64(a.opts.SegmentBytes))
	}
	if n := len(a.backups); n > 0 {
		st.LastBackupLSN = a.backups[n-1].End
	}
	return st
}
