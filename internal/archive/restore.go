package archive

import (
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wal"
)

// Wire connects an archiver to a server configuration:
//
//   - the wal archive gate, so the log can never reclaim unarchived records
//     (even when a group-commit batch spans the truncation point — the gate
//     runs inside Truncate under the log mutex, after every batching
//     decision has resolved);
//   - Config.PreTruncate, so checkpoints drain the archive up to their
//     computed head before truncating (the normal, non-deferred path);
//   - Config.PostCommit, the backpressure hook: a committer that finds the
//     archiver more than MaxLagBytes behind drains inline, bounding lag;
//   - Config.RepairPage, so a corrupt page the live log cannot rebuild is
//     repaired from the newest backup plus per-page redo (RepairPage).
//
// Call before server.New with cfg.Mode already set; cfg.Log must be the same
// log the archiver drains.
func Wire(cfg *server.Config, a *Archiver) {
	if cfg.Log != a.log {
		panic("archive: Wire with a different log than the archiver drains")
	}
	a.log.SetArchiveGate(func(newHead uint64) bool {
		return newHead <= a.archivedUpTo.Load()
	})
	cfg.PreTruncate = a.DrainTo
	cfg.PostCommit = func() {
		if a.Lag() > a.opts.MaxLagBytes {
			_ = a.Drain() // best effort; the gate keeps correctness regardless
		}
	}
	mode, log, blobs := cfg.Mode, a.log, a.blobs
	cfg.RepairPage = func(pid page.ID) ([]byte, error) {
		return RepairPage(blobs, RepairOptions{Mode: mode, Page: pid, Log: log})
	}
}

// RestoreOptions configures a media restore.
type RestoreOptions struct {
	// Mode is the recovery scheme the destroyed server ran (restart replay
	// differs per scheme; WPL restores use the backward-scan restart).
	Mode server.Mode
	// TargetLSN, when non-zero, is the point-in-time recovery cut: replay
	// stops at the last whole record ending at or before it, and the restart
	// pass rolls back every transaction without a commit record in that
	// prefix. Zero means end of archive.
	TargetLSN uint64
	// RedoWorkers is forwarded to the restored server's restart (parallel
	// redo fan-out).
	RedoWorkers int
	// PoolPages is forwarded to the restored server (default server pool
	// size if zero).
	PoolPages int
	// NewStore supplies the replacement volume (a fresh staging volume — the
	// old one is destroyed). Defaults to an in-memory store.
	NewStore func() (disk.Store, error)
	// Finish, when non-nil, is called with the fully recovered staging
	// volume after restart completes, and only then — a crash anywhere
	// earlier leaves the staging volume abandoned and the restore cleanly
	// re-runnable. qsctl restore uses it to atomically rename the staged
	// volume file over the destination. When Finish is set the restored
	// server is shut down before the handoff and Result.Server is nil.
	Finish func(disk.Store) error
}

// RestoreResult reports a completed restore.
type RestoreResult struct {
	Store    disk.Store     // the recovered volume
	Server   *server.Server // live recovered server (nil when Finish was used)
	Backup   BackupInfo     // the base backup used
	CutLSN   uint64         // LSN the log was replayed to
	Segments int            // archive segments replayed
	Records  int            // log records re-appended
}

// restoreLogSlack is extra rebuilt-log capacity beyond the archived span,
// for the restart pass's own records (loser CLRs, the closing checkpoint).
const restoreLogSlack = 8 << 20

// BootstrapOptions configures a volume bootstrap (the restore phase shared
// by media recovery and cold-standby seeding).
type BootstrapOptions struct {
	// TargetLSN, when non-zero, bounds replay as in RestoreOptions.TargetLSN.
	TargetLSN uint64
	// NewStore supplies the staging volume (in-memory store if nil).
	NewStore func() (disk.Store, error)
	// LogSlack is extra rebuilt-log capacity beyond the archived span
	// (default 8 MB). A standby bootstrapping to follow a live primary
	// should size this for the ongoing stream, not just recovery's own
	// appends.
	LogSlack int
}

// BootstrapResult is a restored-but-not-recovered volume: the backup image
// plus the archived log re-appended at identical LSNs, forced, with no
// restart pass run. Media restore continues with Restart; a cold standby
// instead replays the rebuilt log through the server's ApplyShipped and then
// follows the live stream — running Restart here would append loser CLRs the
// primary's log does not have, and the replica would diverge before it began.
type BootstrapResult struct {
	Store    disk.Store
	Log      *wal.Log
	Backup   BackupInfo // the base backup used
	CutLSN   uint64     // LSN the log was rebuilt to
	Segments int        // archive segments replayed
	Records  int        // log records re-appended
}

// Bootstrap rebuilds a volume and its log from the newest usable backup plus
// the archived log, stopping short of any recovery pass.
//
// The rebuilt log is a fresh wal ring seeded at the backup's RedoStart
// (wal.NewAt): archived records re-appended in order are contiguous, so each
// receives exactly the LSN it had when first logged, and every LSN embedded
// elsewhere — page headers, checkpoint payloads, the superblock's master
// record — resolves against the rebuilt log unchanged.
//
// Bootstrap never writes to the archive and stages into a fresh volume, so
// it is idempotent: run it again after a crash and it performs the same work.
//
//qslint:allow wal-discipline: backup images are written before the archived log is re-appended by design — the records describe history already stable in the archive, and the rebuilt log is forced before any server opens
func Bootstrap(blobs BlobStore, opts BootstrapOptions) (*BootstrapResult, error) {
	target := opts.TargetLSN
	if target == 0 {
		target = ^uint64(0)
	}
	backup, pages, err := pickBackup(blobs, target)
	if err != nil {
		return nil, err
	}
	chain, err := segmentChain(blobs, backup, target)
	if err != nil {
		return nil, err
	}

	newStore := opts.NewStore
	if newStore == nil {
		newStore = func() (disk.Store, error) { return disk.NewMemStore(), nil }
	}
	store, err := newStore()
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*BootstrapResult, error) {
		store.Close()
		return nil, err
	}
	// Write in ascending page order: the staging volume's write sequence is
	// then identical run to run, which keeps restore fault-injection sweeps
	// reproducible.
	ids := make([]page.ID, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := store.WritePage(id, pages[id]); err != nil {
			return fail(fmt.Errorf("archive: restoring page %v: %w", id, err))
		}
	}

	slack := opts.LogSlack
	if slack <= 0 {
		slack = restoreLogSlack
	}
	span := 0
	if end := chainEnd(chain, backup); end > backup.RedoStart {
		span = int(end - backup.RedoStart)
	}
	log := wal.NewAt(span+slack, backup.RedoStart)
	cut := backup.RedoStart
	records := 0
replay:
	for _, seg := range chain {
		recs, err := ReadSegment(blobs, seg)
		if err != nil {
			return fail(err)
		}
		for _, r := range recs {
			end := r.LSN + uint64(r.EncodedSize())
			if r.LSN < backup.RedoStart {
				continue // archived before the backup's redo horizon
			}
			if end > target {
				break replay // PITR cut: the prefix ends at the last whole record
			}
			want := r.LSN
			got, err := log.Append(r)
			if err != nil {
				return fail(fmt.Errorf("archive: rebuilding log: %w", err))
			}
			if got != want {
				return fail(fmt.Errorf("%w: record at LSN %d re-appended at %d (segment %s)",
					ErrArchiveGap, want, got, seg.Name))
			}
			cut = end
			records++
		}
	}
	if cut < backup.End {
		return fail(fmt.Errorf("%w: replay reaches %d, backup fuzz window ends at %d",
			ErrArchiveGap, cut, backup.End))
	}
	log.Force()
	return &BootstrapResult{
		Store:    store,
		Log:      log,
		Backup:   backup,
		CutLSN:   cut,
		Segments: len(chain),
		Records:  records,
	}, nil
}

// Restore rebuilds a destroyed volume from the newest usable backup plus the
// archived log (Bootstrap), then recovers it with the server's own Restart:
// analysis from the backed-up superblock's checkpoint, scheme-appropriate
// redo (parallel fan-out for ESM/REDO, the backward CTL scan for WPL), then
// rollback of every transaction the replayed prefix does not commit — which
// is exactly prefix consistency at the cut LSN.
func Restore(blobs BlobStore, opts RestoreOptions) (*RestoreResult, error) {
	boot, err := Bootstrap(blobs, BootstrapOptions{
		TargetLSN: opts.TargetLSN,
		NewStore:  opts.NewStore,
	})
	if err != nil {
		return nil, err
	}
	store, log := boot.Store, boot.Log
	backup, cut := boot.Backup, boot.CutLSN
	fail := func(err error) (*RestoreResult, error) {
		store.Close()
		return nil, err
	}

	srv := server.New(server.Config{
		Mode:        opts.Mode,
		Store:       store,
		Log:         log,
		PoolPages:   opts.PoolPages,
		RedoWorkers: opts.RedoWorkers,
	})
	sn := srv.NewSession(nil, nil)
	if err := sn.Restart(); err != nil {
		srv.Close()
		return fail(fmt.Errorf("archive: restart on restored volume: %w", err))
	}
	res := &RestoreResult{
		Store:    store,
		Server:   srv,
		Backup:   backup,
		CutLSN:   cut,
		Segments: boot.Segments,
		Records:  boot.Records,
	}
	if opts.Finish != nil {
		srv.Close()
		res.Server = nil
		if err := opts.Finish(store); err != nil {
			return nil, fmt.Errorf("archive: finishing restore: %w", err)
		}
	}
	return res, nil
}

// pickBackup selects the newest backup usable for a restore to target: from
// the newest generation holding any backup with End ≤ target, the newest
// such backup. Its pages are decoded (and checksummed) here.
func pickBackup(blobs BlobStore, target uint64) (BackupInfo, map[page.ID][]byte, error) {
	gens, err := Generations(blobs)
	if err != nil {
		return BackupInfo{}, nil, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		backups, err := ListBackups(blobs, gens[i])
		if err != nil {
			return BackupInfo{}, nil, err
		}
		for j := len(backups) - 1; j >= 0; j-- {
			if backups[j].End > target {
				continue // the fuzz window must be wholly inside the replayed prefix
			}
			data, err := blobs.Get(backups[j].Name)
			if err != nil {
				return BackupInfo{}, nil, err
			}
			info, pages, err := decodeBackup(backups[j].Name, data)
			if err != nil {
				return BackupInfo{}, nil, err
			}
			info.Gen = gens[i]
			return info, pages, nil
		}
	}
	return BackupInfo{}, nil, fmt.Errorf("%w: target LSN %d", ErrNoBackup, target)
}

// segmentChain returns the contiguous run of backup-generation segments
// covering [backup.RedoStart, …): starting with the segment containing
// RedoStart, each following segment must begin where the previous ended.
func segmentChain(blobs BlobStore, backup BackupInfo, target uint64) ([]SegmentInfo, error) {
	segs, err := ListSegments(blobs, backup.Gen)
	if err != nil {
		return nil, err
	}
	var chain []SegmentInfo
	next := backup.RedoStart
	for _, s := range segs {
		if s.End <= next {
			continue // wholly before the redo horizon
		}
		if s.Start > next {
			break // gap; anything beyond it is unreachable
		}
		chain = append(chain, s)
		next = s.End
		if next >= target {
			break
		}
	}
	if next < backup.End {
		return nil, fmt.Errorf("%w: generation %d archived to %d, backup fuzz window ends at %d",
			ErrArchiveGap, backup.Gen, next, backup.End)
	}
	return chain, nil
}

// chainEnd returns the last LSN the chain can replay to.
func chainEnd(chain []SegmentInfo, backup BackupInfo) uint64 {
	end := backup.End
	if n := len(chain); n > 0 && chain[n-1].End > end {
		end = chain[n-1].End
	}
	return end
}
