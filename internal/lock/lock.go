// Package lock implements the server's page-level lock manager. ESM uses
// page-granularity two-phase locking; clients request locks as they read and
// update pages and release everything at transaction end (no
// inter-transaction lock caching, paper §3.1).
//
// Requests queue FIFO per page. Deadlocks are broken by a wait timeout:
// waiting longer than the configured bound fails the request with
// ErrDeadlock and the caller is expected to abort. The paper's experiments
// give each client a private module precisely to keep conflicts out of the
// measurements, so the timeout path is exercised only by tests.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logrec"
	"repro/internal/page"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Shared allows concurrent readers.
	Shared Mode = iota
	// Exclusive allows a single updater.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// ErrDeadlock is returned when a lock wait exceeds the timeout.
var ErrDeadlock = errors.New("lock: wait timeout (presumed deadlock)")

// DefaultTimeout bounds lock waits when Config.Timeout is zero.
const DefaultTimeout = 2 * time.Second

// Manager is a page lock manager, safe for concurrent use.
type Manager struct {
	timeout time.Duration

	mu    sync.Mutex
	cond  *sync.Cond
	locks map[page.ID]*entry
	held  map[logrec.TID]map[page.ID]Mode
	waits atomic.Int64 // Lock calls that had to block on a conflict
}

type entry struct {
	granted map[logrec.TID]Mode
	waiters int
}

// NewManager creates a lock manager with the given wait timeout
// (DefaultTimeout if zero).
func NewManager(timeout time.Duration) *Manager {
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	m := &Manager{
		timeout: timeout,
		locks:   make(map[page.ID]*entry),
		held:    make(map[logrec.TID]map[page.ID]Mode),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// compatible reports whether tid may acquire mode on e given current grants.
func compatible(e *entry, tid logrec.TID, mode Mode) bool {
	for holder, held := range e.granted {
		if holder == tid {
			continue
		}
		if mode == Exclusive || held == Exclusive {
			return false
		}
	}
	return true
}

// Lock acquires mode on pid for tid, blocking until granted. A transaction
// already holding the page in the same or a stronger mode returns
// immediately; holding Shared and requesting Exclusive upgrades.
//
//qslint:allow determinism: the deadlock-timeout deadline is a real wall-clock bound; it only decides when to give up and never reaches a log record or a sweep diff
func (m *Manager) Lock(tid logrec.TID, pid page.ID, mode Mode) error {
	deadline := time.Now().Add(m.timeout)
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.locks[pid]
	if e == nil {
		e = &entry{granted: make(map[logrec.TID]Mode)}
		m.locks[pid] = e
	}
	if held, ok := e.granted[tid]; ok && (held == Exclusive || mode == Shared) {
		return nil // already strong enough
	}
	for !compatible(e, tid, mode) {
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %v %v on %v", ErrDeadlock, tid, mode, pid)
		}
		m.waits.Add(1)
		e.waiters++
		m.waitWithDeadline(deadline)
		e.waiters--
	}
	e.granted[tid] = mode
	h := m.held[tid]
	if h == nil {
		h = make(map[page.ID]Mode)
		m.held[tid] = h
	}
	h[pid] = mode
	return nil
}

// waitWithDeadline waits on the manager's condition variable but wakes up by
// the deadline even if nothing broadcast.
//
//qslint:allow determinism: wakes a blocked waiter at its deadlock deadline; pure scheduling, no logged or diffed state
func (m *Manager) waitWithDeadline(deadline time.Time) {
	timer := time.AfterFunc(time.Until(deadline), func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	m.cond.Wait()
	timer.Stop()
}

// TryLock acquires mode on pid without blocking, reporting success.
func (m *Manager) TryLock(tid logrec.TID, pid page.ID, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.locks[pid]
	if e == nil {
		e = &entry{granted: make(map[logrec.TID]Mode)}
		m.locks[pid] = e
	}
	if held, ok := e.granted[tid]; ok && (held == Exclusive || mode == Shared) {
		return true
	}
	if !compatible(e, tid, mode) {
		return false
	}
	e.granted[tid] = mode
	h := m.held[tid]
	if h == nil {
		h = make(map[page.ID]Mode)
		m.held[tid] = h
	}
	h[pid] = mode
	return true
}

// Reset drops the whole lock table (a server crash: the table is volatile).
// Waiters parked on old entries keep seeing their stale grants and fail by
// timeout, which is the correct client-visible outcome for a request that
// was in flight when the server died.
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.locks = make(map[page.ID]*entry)
	m.held = make(map[logrec.TID]map[page.ID]Mode)
	m.cond.Broadcast()
}

// ReleaseAll drops every lock held by tid (transaction end).
func (m *Manager) ReleaseAll(tid logrec.TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for pid := range m.held[tid] {
		e := m.locks[pid]
		delete(e.granted, tid)
		if len(e.granted) == 0 && e.waiters == 0 {
			delete(m.locks, pid)
		}
	}
	delete(m.held, tid)
	m.cond.Broadcast()
}

// Holds returns the mode tid holds on pid, if any.
func (m *Manager) Holds(tid logrec.TID, pid page.ID) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[tid][pid]
	return mode, ok
}

// Waits returns how many Lock calls have blocked on a conflicting holder.
func (m *Manager) Waits() int64 { return m.waits.Load() }

// HeldCount returns the number of pages tid currently has locked.
func (m *Manager) HeldCount(tid logrec.TID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[tid])
}
