package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/logrec"
	"repro/internal/page"
)

func TestSharedCompatible(t *testing.T) {
	m := NewManager(time.Second)
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if n := m.HeldCount(1); n != 1 {
		t.Fatalf("HeldCount = %d", n)
	}
}

func TestExclusiveBlocksAndHandsOver(t *testing.T) {
	m := NewManager(5 * time.Second)
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- m.Lock(2, 10, Exclusive)
	}()
	select {
	case <-acquired:
		t.Fatal("second X granted while first held")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken")
	}
	if mode, ok := m.Holds(2, 10); !ok || mode != Exclusive {
		t.Fatal("lock not transferred")
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := NewManager(time.Second)
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(1, 10); mode != Exclusive {
		t.Fatalf("mode = %v after upgrade", mode)
	}
	// X then S keeps X.
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(1, 10); mode != Exclusive {
		t.Fatal("S request downgraded an X lock")
	}
}

func TestUpgradeBlockedByReader(t *testing.T) {
	m := NewManager(100 * time.Millisecond)
	m.Lock(1, 10, Shared)
	m.Lock(2, 10, Shared)
	// 1's upgrade cannot proceed while 2 reads; with a short timeout this
	// reports deadlock.
	err := m.Lock(1, 10, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestDeadlockTimeout(t *testing.T) {
	m := NewManager(80 * time.Millisecond)
	m.Lock(1, 10, Exclusive)
	m.Lock(2, 20, Exclusive)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = m.Lock(1, 20, Exclusive) }()
	go func() { defer wg.Done(); errs[1] = m.Lock(2, 10, Exclusive) }()
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestTryLock(t *testing.T) {
	m := NewManager(time.Second)
	if !m.TryLock(1, 10, Exclusive) {
		t.Fatal("TryLock on free page failed")
	}
	if m.TryLock(2, 10, Shared) {
		t.Fatal("TryLock granted S under X")
	}
	if !m.TryLock(1, 10, Shared) {
		t.Fatal("reentrant TryLock failed")
	}
	m.ReleaseAll(1)
	if !m.TryLock(2, 10, Shared) {
		t.Fatal("TryLock after release failed")
	}
}

func TestReleaseAllDropsEverything(t *testing.T) {
	m := NewManager(time.Second)
	for pid := 1; pid <= 5; pid++ {
		m.Lock(1, pageID(pid), Exclusive)
	}
	if m.HeldCount(1) != 5 {
		t.Fatalf("HeldCount = %d", m.HeldCount(1))
	}
	m.ReleaseAll(1)
	if m.HeldCount(1) != 0 {
		t.Fatal("locks survive ReleaseAll")
	}
	for pid := 1; pid <= 5; pid++ {
		if err := m.Lock(2, pageID(pid), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
}

func TestManyConcurrentDisjointLockers(t *testing.T) {
	m := NewManager(5 * time.Second)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid := tid(c + 1)
			for i := 0; i < 200; i++ {
				pid := pageID(c*1000 + i)
				if err := m.Lock(tid, pid, Exclusive); err != nil {
					t.Error(err)
					return
				}
			}
			m.ReleaseAll(tid)
		}()
	}
	wg.Wait()
}

func TestContendedPageSerializes(t *testing.T) {
	m := NewManager(10 * time.Second)
	counter := 0
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := tid(c + 1)
			for i := 0; i < 50; i++ {
				if err := m.Lock(id, 99, Exclusive); err != nil {
					t.Error(err)
					return
				}
				counter++ // protected by the X lock
				m.ReleaseAll(id)
			}
		}()
	}
	wg.Wait()
	if counter != 300 {
		t.Fatalf("counter = %d, want 300 (lost updates under X lock)", counter)
	}
}

func pageID(n int) page.ID { return page.ID(n) }
func tid(n int) logrec.TID { return logrec.TID(n) }
