// Package shard scales QuickStore out: N independent quickstored shards —
// each with its own volume, WAL, buffer pool, and any of the five recovery
// schemes — behind a deterministic page-partitioning router. Cross-shard
// transactions are made atomic by presumed-abort two-phase commit
// (DESIGN.md §16): every participant forces a PREPARE record before voting,
// the coordinator's forced DECIDE record is the commit point, and branches
// that crash between the two restart in doubt, holding their locks until the
// router's recovery-resolution driver (Recover) asks the coordinator for the
// outcome.
//
// Partitioning is by residue class: shard i of N allocates page ids and
// transaction ids ≡ i+1 (mod N) (server.Config.ShardID/ShardCount), so
// ownership of any page or transaction is computable from the id alone —
// the shard map is a pure function, never a lookup table that could itself
// need recovering.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/wire"
)

// Backend is one shard's transport: the ordinary client↔server surface plus
// the two-phase-commit surface. wire.Direct, wire.TCPClient, and the retry
// wrapper all satisfy it.
type Backend interface {
	wire.Service
	wire.TwoPC
}

// Map is the deterministic shard map over N shards.
type Map struct {
	N int
}

// ShardOf returns the shard owning pid. Page ids start at 1 (page 0 is the
// superblock, owned by no shard); shard i allocates ids ≡ i+1 (mod N).
func (m Map) ShardOf(pid page.ID) int {
	if m.N <= 1 {
		return 0
	}
	return (int(pid) - 1 + m.N) % m.N
}

// CoordinatorOf returns the shard that issued (and therefore coordinates)
// tid. Transaction ids follow the same residue classes as page ids.
func (m Map) CoordinatorOf(tid logrec.TID) int {
	if m.N <= 1 {
		return 0
	}
	return (int(tid) - 1 + m.N) % m.N
}

// gtxn is the router's bookkeeping for one distributed transaction.
type gtxn struct {
	// joined marks the shards holding a branch of this transaction.
	joined map[int]bool
	// wrote marks the joined shards that received mutations (page allocation,
	// shipped log records or pages). Branches outside this set are read-only
	// or empty, and Commit needs no durable decision for them.
	wrote map[int]bool
	// uncertain is set when a coordinator Decide failed in transit: the
	// commit point may or may not be on record, so a later Abort must resolve
	// through the coordinator instead of aborting unilaterally.
	uncertain bool
}

// Router implements wire.Service over N shards, so client.New drives a
// sharded store through the unchanged single-server interface. Not safe for
// concurrent use by multiple transactions of one client (the client is
// single-threaded, like the paper's workstations), but internal state is
// mutex-guarded so a management goroutine may call Recover concurrently.
type Router struct {
	// mu is a leaf mutex: never held across a Backend call.
	mu         sync.Mutex
	m          Map
	svcs       []Backend
	rr         int
	allocShard int
	txns       map[logrec.TID]*gtxn
}

// NewRouter builds a router over the given shard backends (shard i at index
// i). At least one backend is required.
func NewRouter(svcs []Backend) *Router {
	if len(svcs) == 0 {
		panic("shard: NewRouter with no backends")
	}
	return &Router{
		m:          Map{N: len(svcs)},
		svcs:       svcs,
		allocShard: -1,
		txns:       make(map[logrec.TID]*gtxn),
	}
}

// Map returns the router's shard map.
func (r *Router) Map() Map { return r.m }

// SetAllocShard pins AllocPage to one shard (workload placement control for
// the harness and benchmarks); -1 restores the default, the transaction's
// coordinator shard.
func (r *Router) SetAllocShard(s int) {
	r.mu.Lock()
	r.allocShard = s
	r.mu.Unlock()
}

// lookup returns tid's bookkeeping, creating it if the router has never seen
// the id (a router restarted mid-transaction learns memberships lazily).
func (r *Router) lookup(tid logrec.TID) *gtxn {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.txns[tid]
	if g == nil {
		g = &gtxn{joined: map[int]bool{r.m.CoordinatorOf(tid): true}}
		r.txns[tid] = g
	}
	return g
}

// ensureJoined lazily adopts tid onto shard s the first time an operation
// routes there. Adopt is idempotent server-side, so a lost ack costs one
// duplicate message, nothing more.
func (r *Router) ensureJoined(tid logrec.TID, s int) error {
	g := r.lookup(tid)
	r.mu.Lock()
	joined := g.joined[s]
	r.mu.Unlock()
	if joined {
		return nil
	}
	if err := r.svcs[s].Adopt(tid); err != nil {
		return err
	}
	r.mu.Lock()
	g.joined[s] = true
	r.mu.Unlock()
	return nil
}

// participants returns tid's joined shards, sorted for deterministic message
// order (the crash sweep's replay depends on it).
func (r *Router) participants(tid logrec.TID) []int {
	g := r.lookup(tid)
	r.mu.Lock()
	out := make([]int, 0, len(g.joined))
	for s := range g.joined {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Ints(out)
	return out
}

// markWrote records that shard s received mutations for tid.
func (r *Router) markWrote(tid logrec.TID, s int) {
	g := r.lookup(tid)
	r.mu.Lock()
	if g.wrote == nil {
		g.wrote = make(map[int]bool)
	}
	g.wrote[s] = true
	r.mu.Unlock()
}

// writers returns tid's mutated shards, sorted.
func (r *Router) writers(tid logrec.TID) []int {
	g := r.lookup(tid)
	r.mu.Lock()
	out := make([]int, 0, len(g.wrote))
	for s := range g.wrote {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Ints(out)
	return out
}

// drop retires tid's bookkeeping once its outcome is settled.
func (r *Router) drop(tid logrec.TID) {
	r.mu.Lock()
	delete(r.txns, tid)
	r.mu.Unlock()
}

// Begin implements wire.Service: the transaction starts on the next shard in
// round-robin order, which becomes its coordinator. The returned tid's
// residue class encodes that choice, so coordination survives router loss.
func (r *Router) Begin() (logrec.TID, error) {
	r.mu.Lock()
	s := r.rr
	r.rr = (r.rr + 1) % r.m.N
	r.mu.Unlock()
	tid, err := r.svcs[s].Begin()
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.txns[tid] = &gtxn{joined: map[int]bool{s: true}}
	r.mu.Unlock()
	return tid, nil
}

// Lock implements wire.Service, routing by page ownership.
func (r *Router) Lock(tid logrec.TID, pid page.ID, mode lock.Mode) error {
	s := r.m.ShardOf(pid)
	if err := r.ensureJoined(tid, s); err != nil {
		return err
	}
	return r.svcs[s].Lock(tid, pid, mode)
}

// AllocPage implements wire.Service: new pages are placed on the pinned
// allocation shard, defaulting to the transaction's coordinator.
func (r *Router) AllocPage(tid logrec.TID) (page.ID, error) {
	r.mu.Lock()
	s := r.allocShard
	r.mu.Unlock()
	if s < 0 {
		s = r.m.CoordinatorOf(tid)
	}
	return r.AllocPageOn(tid, s)
}

// AllocPageOn reserves a fresh page on a specific shard — explicit placement
// for loaders that control clustering across the partition boundary.
func (r *Router) AllocPageOn(tid logrec.TID, s int) (page.ID, error) {
	if s < 0 || s >= r.m.N {
		return 0, fmt.Errorf("shard: AllocPageOn shard %d of %d", s, r.m.N)
	}
	if err := r.ensureJoined(tid, s); err != nil {
		return 0, err
	}
	r.markWrote(tid, s)
	return r.svcs[s].AllocPage(tid)
}

// ReadPage implements wire.Service, routing by page ownership.
func (r *Router) ReadPage(tid logrec.TID, pid page.ID, mode lock.Mode) ([]byte, error) {
	s := r.m.ShardOf(pid)
	if err := r.ensureJoined(tid, s); err != nil {
		return nil, err
	}
	return r.svcs[s].ReadPage(tid, pid, mode)
}

// ShipLog implements wire.Service: the batch is split by each record's page
// owner and re-encoded per shard, preserving record order within a shard.
// Shards are shipped in index order for deterministic replay.
func (r *Router) ShipLog(tid logrec.TID, data []byte) error {
	if r.m.N == 1 {
		return r.svcs[0].ShipLog(tid, data)
	}
	recs, err := logrec.DecodeAll(data)
	if err != nil {
		return fmt.Errorf("shard: splitting log batch: %w", err)
	}
	batches := make([][]byte, r.m.N)
	for _, rec := range recs {
		s := r.m.ShardOf(rec.Page)
		batches[s] = rec.Encode(batches[s])
	}
	for s, b := range batches {
		if len(b) == 0 {
			continue
		}
		if err := r.ensureJoined(tid, s); err != nil {
			return err
		}
		r.markWrote(tid, s)
		if err := r.svcs[s].ShipLog(tid, b); err != nil {
			return err
		}
	}
	return nil
}

// ShipPage implements wire.Service, routing by page ownership.
func (r *Router) ShipPage(tid logrec.TID, pid page.ID, data []byte) error {
	s := r.m.ShardOf(pid)
	if err := r.ensureJoined(tid, s); err != nil {
		return err
	}
	r.markWrote(tid, s)
	return r.svcs[s].ShipPage(tid, pid, data)
}

// Commit implements wire.Service. A transaction with writes on at most one
// shard commits in one phase — the mutated branch (or the coordinator's, if
// nothing wrote) commits exactly as on an unsharded store, and the remaining
// read-only or empty branches just release their locks; atomicity is trivial
// with a single durable participant, so the protocol overhead would buy
// nothing. A transaction with writes on two or more shards runs
// presumed-abort 2PC:
//
//	phase 1: Prepare on every participant, coordinator included, in shard
//	         order — each forces a PREPARE before voting yes.
//	phase 2: Decide(commit) on the coordinator first; its forced DECIDE is
//	         the commit point. Then Decide(commit) on the rest, then Forget.
//
// A prepare failure aborts everywhere (no decision was logged, so presumed
// abort already covers any shard the messages missed). A coordinator Decide
// that fails in transit leaves the outcome genuinely unknown —
// wire.ErrCommitOutcomeUnknown — and marks the transaction so a later Abort
// resolves through the coordinator instead of aborting unilaterally. A
// participant Decide that fails after the commit point is NOT an error: the
// transaction is committed, and the unreached branch sits in doubt (locks
// held) until Recover delivers the outcome.
func (r *Router) Commit(tid logrec.TID) error {
	coord := r.m.CoordinatorOf(tid)
	parts := r.participants(tid)
	writers := r.writers(tid)
	if len(writers) <= 1 {
		w := coord
		if len(writers) == 1 {
			w = writers[0]
		}
		err := r.svcs[w].Commit(tid)
		for _, s := range parts {
			if s != w {
				r.svcs[s].Decide(tid, false) // read-only/empty branch: release locks
			}
		}
		if err == nil {
			r.drop(tid)
		}
		return err
	}
	for _, s := range parts {
		if err := r.svcs[s].Prepare(tid, coord, parts); err != nil {
			for _, a := range parts {
				r.svcs[a].Decide(tid, false) // best effort; crash recovery presumes abort
			}
			r.drop(tid)
			return fmt.Errorf("shard: prepare on shard %d: %w", s, err)
		}
	}
	if err := r.svcs[coord].Decide(tid, true); err != nil {
		g := r.lookup(tid)
		r.mu.Lock()
		g.uncertain = true
		r.mu.Unlock()
		return fmt.Errorf("%w: coordinator shard %d decide: %v", wire.ErrCommitOutcomeUnknown, coord, err)
	}
	undelivered := false
	for _, s := range parts {
		if s == coord {
			continue
		}
		if err := r.svcs[s].Decide(tid, true); err != nil {
			undelivered = true // the branch stays in doubt; Recover finishes it
		}
	}
	if !undelivered {
		r.svcs[coord].Forget(tid) // best effort; a lost Forget is re-retired later
	}
	r.drop(tid)
	return nil
}

// Abort implements wire.Service: the abort decision is delivered to every
// joined shard (nothing is logged for it — presumed abort). A transaction
// whose commit point is uncertain is resolved through its coordinator first,
// so the router never contradicts a decision that did reach the log.
func (r *Router) Abort(tid logrec.TID) error {
	g := r.lookup(tid)
	r.mu.Lock()
	uncertain := g.uncertain
	r.mu.Unlock()
	if uncertain {
		_, err := r.resolve(tid, r.m.CoordinatorOf(tid), -1)
		if err == nil {
			r.drop(tid)
		}
		return err
	}
	parts := r.participants(tid)
	var first error
	for _, s := range parts {
		if err := r.svcs[s].Decide(tid, false); err != nil && first == nil {
			first = fmt.Errorf("shard: abort on shard %d: %w", s, err)
		}
	}
	if first == nil {
		r.drop(tid)
	}
	return first
}

// Resolved describes one in-doubt branch settled by Recover.
type Resolved struct {
	TID    logrec.TID
	Shard  int
	Commit bool
}

// Recover is the recovery-resolution driver, run after shard restarts: every
// shard's in-doubt branches are resolved against their coordinators —
// commit if the DECIDE is on record, presumed abort otherwise — and the
// outcome is delivered so locks release. Every step is idempotent, so
// Recover may be re-run after its own partial failures.
func (r *Router) Recover() ([]Resolved, error) {
	var out []Resolved
	for s := range r.svcs {
		list, err := r.svcs[s].InDoubt()
		if err != nil {
			return out, fmt.Errorf("shard: listing in-doubt on shard %d: %w", s, err)
		}
		for _, idt := range list {
			if idt.Coordinator < 0 || idt.Coordinator >= r.m.N {
				return out, fmt.Errorf("shard: in-doubt %v names coordinator %d of %d", idt.TID, idt.Coordinator, r.m.N)
			}
			commit, err := r.resolve(idt.TID, idt.Coordinator, s)
			if err != nil {
				return out, err
			}
			out = append(out, Resolved{TID: idt.TID, Shard: s, Commit: commit})
		}
	}
	return out, nil
}

// resolve settles one transaction through its coordinator and delivers the
// outcome. On commit, the decision goes to the recorded participant set
// (coordinator first) and the decided entry is then retired; on presumed
// abort, every joined shard — plus indoubtShard, the shard whose in-doubt
// listing surfaced the transaction, which a freshly restarted router does
// not yet know as joined — rolls its branch back. indoubtShard -1 means
// none.
func (r *Router) resolve(tid logrec.TID, coord, indoubtShard int) (bool, error) {
	commit, parts, err := r.svcs[coord].Resolve(tid)
	if err != nil {
		return false, fmt.Errorf("shard: resolving %v on coordinator %d: %w", tid, coord, err)
	}
	if commit {
		if err := r.svcs[coord].Decide(tid, true); err != nil {
			return true, fmt.Errorf("shard: delivering commit of %v to coordinator %d: %w", tid, coord, err)
		}
		for _, p := range parts {
			if p == coord {
				continue
			}
			if p < 0 || p >= r.m.N {
				return true, fmt.Errorf("shard: decision for %v names participant %d of %d", tid, p, r.m.N)
			}
			if err := r.svcs[p].Decide(tid, true); err != nil {
				return true, fmt.Errorf("shard: delivering commit of %v to shard %d: %w", tid, p, err)
			}
		}
		if err := r.svcs[coord].Forget(tid); err != nil {
			return true, fmt.Errorf("shard: forgetting %v on coordinator %d: %w", tid, coord, err)
		}
		return true, nil
	}
	targets := r.participants(tid)
	if indoubtShard >= 0 {
		found := false
		for _, s := range targets {
			found = found || s == indoubtShard
		}
		if !found {
			targets = append(targets, indoubtShard)
			sort.Ints(targets)
		}
	}
	for _, s := range targets {
		if err := r.svcs[s].Decide(tid, false); err != nil {
			return false, fmt.Errorf("shard: delivering abort of %v to shard %d: %w", tid, s, err)
		}
	}
	return false, nil
}

var _ wire.Service = (*Router)(nil)
