package shard_test

import (
	"testing"

	"repro/internal/client"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wire"
)

func newCluster(t *testing.T, n int) (*client.Client, *shard.Router, []*server.Server) {
	t.Helper()
	srvs := make([]*server.Server, n)
	backends := make([]shard.Backend, n)
	for s := 0; s < n; s++ {
		srvs[s] = server.New(server.Config{
			Mode:        server.ModeESM,
			PoolPages:   64,
			LogCapacity: 8 << 20,
			ShardID:     s,
			ShardCount:  n,
		})
		backends[s] = wire.NewDirect(srvs[s], nil, nil)
	}
	cli, router, err := client.NewSharded(client.Config{
		Scheme:         client.PD,
		PoolPages:      32,
		ShipDirtyPages: true,
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	return cli, router, srvs
}

// TestMapResidueClasses pins the pure-function shard map: page ids and TIDs
// allocated by shard i must map back to shard i for every shard count.
func TestMapResidueClasses(t *testing.T) {
	for n := 1; n <= 4; n++ {
		m := shard.Map{N: n}
		for s := 0; s < n; s++ {
			// Shard s allocates ids ≡ s+1 (mod n): s+1, s+1+n, s+1+2n, ...
			for k := 0; k < 3; k++ {
				id := uint32(s + 1 + k*n)
				if got := m.ShardOf(page.ID(id)); got != s {
					t.Errorf("n=%d: ShardOf(%d) = %d, want %d", n, id, got, s)
				}
				if got := m.CoordinatorOf(logrec.TID(id)); got != s {
					t.Errorf("n=%d: CoordinatorOf(%d) = %d, want %d", n, id, got, s)
				}
			}
		}
	}
}

// TestCrossShardCommitAndAbort drives a cross-shard transaction through the
// router: a commit must land both halves, an abort must land neither, and a
// single-shard transaction must keep working alongside.
func TestCrossShardCommitAndAbort(t *testing.T) {
	cli, router, srvs := newCluster(t, 2)

	// Build: one object on each shard.
	tx, err := cli.Begin()
	if err != nil {
		t.Fatal(err)
	}
	var objs [2]page.OID
	for s := 0; s < 2; s++ {
		router.SetAllocShard(s)
		if _, err := tx.NewPage(); err != nil {
			t.Fatalf("new page on shard %d: %v", s, err)
		}
		oid, err := tx.Allocate(4)
		if err != nil {
			t.Fatal(err)
		}
		objs[s] = oid
		if err := tx.Write(oid, 0, []byte{byte(s), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	router.SetAllocShard(-1)
	if err := tx.Commit(); err != nil {
		t.Fatalf("cross-shard build commit: %v", err)
	}
	if m := router.Map(); m.ShardOf(objs[0].Page) == m.ShardOf(objs[1].Page) {
		t.Fatalf("objects %v and %v landed on the same shard", objs[0], objs[1])
	}

	// Cross-shard update, committed: both halves visible.
	tx, err = cli.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tx.Write(o, 0, []byte{42, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("cross-shard commit: %v", err)
	}

	// Cross-shard update, aborted: neither half visible.
	tx, err = cli.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tx.Write(o, 0, []byte{99, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("cross-shard abort: %v", err)
	}

	tx, err = cli.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		var buf [4]byte
		if err := tx.Read(o, 0, buf[:]); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 42 {
			t.Errorf("object %v = %d after abort, want 42", o, buf[0])
		}
	}
	tx.Abort()

	// Each shard saw 2PC work: the two cross-shard commits forced prepares.
	var prepares int64
	for _, srv := range srvs {
		prepares += srv.Stats().TwoPCPrepares
	}
	if prepares < 4 {
		t.Errorf("cluster logged %d prepares, want >= 4 (two cross-shard commits, two shards)", prepares)
	}
}

// TestRecoverWithNothingInDoubt pins the no-op path: Recover on a healthy
// cluster settles nothing.
func TestRecoverWithNothingInDoubt(t *testing.T) {
	_, router, _ := newCluster(t, 2)
	res, err := router.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("Recover settled %d branches on a healthy cluster", len(res))
	}
}
