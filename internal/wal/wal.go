// Package wal implements the server's transaction log: a circular,
// append-only log on a dedicated disk, as in ESM (paper §3.1).
//
// LSNs are byte offsets into the conceptually infinite log stream; the
// physical location of LSN l is l modulo the log capacity. Appended records
// are volatile until Force is called (write-ahead logging); a simulated
// crash discards the unforced tail. The log can be scanned forward from any
// record boundary (ARIES redo), read at a specific LSN (WPL page reload),
// and truncated from the head as space is reclaimed.
//
// The log has no notion of why a force happens. Commit forces, two-phase
// commit's forced PREPARE and DECIDE records (a prepared participant's vote
// and the coordinator's commit point both require stability before the
// message that reveals them), and checkpoint forces all funnel through the
// same Force/CommitWait path, so 2PC forces batch into group-commit flushes
// exactly like ordinary commits.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/logrec"
	"repro/internal/page"
)

// Errors returned by the log manager.
var (
	ErrFull      = errors.New("wal: log full")
	ErrTruncated = errors.New("wal: LSN already reclaimed")
	ErrBeyondEnd = errors.New("wal: LSN beyond stable end")
	// ErrTorn marks a record only partially stable when a crash hit —
	// page-grained flushing (ForceFull) can split a record across the
	// durability boundary. Scans treat it as end of log; such a record
	// belongs to an uncommitted transaction by WAL rules.
	ErrTorn = errors.New("wal: torn record at end of log")
)

// Log is the server's log manager. It is safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	capacity uint64
	ring     []byte
	head     uint64 // oldest LSN still needed; space below is reclaimed
	flushed  uint64 // stable up to here; [flushed, next) is volatile
	next     uint64 // next LSN to assign
	forces   int64
	pages    int64 // cumulative 8 KB log pages physically written
	// limiter, when set, intercepts every flush (fault injection): it may
	// clamp how far the stable end actually advances, down to not at all.
	limiter   func(proposed uint64) uint64
	truncGate func() bool
	archGate  func(newHead uint64) bool
	shipGate  func(newHead uint64) bool
	// floor, when non-zero, bounds how far Truncate may advance the head:
	// records at or above floor are still needed (fuzzy checkpoints keep the
	// oldest dirty-page recLSN here, since restart redo must scan from it).
	floor uint64

	// Group commit. Committers park in CommitWait until a flush attempt has
	// covered their commit LSN; a one-shot flusher goroutine performs one
	// stable write per group. attempt tracks how far flushes have been
	// *attempted* (the flush limiter may have clamped the actual stable end):
	// under fault injection a swallowed flush models a crash, and the commit
	// call — like the old inline Force — returns rather than hanging.
	gcCond        *sync.Cond
	gcDelay       time.Duration // extra wait for a group to form before flushing
	writeDelay    time.Duration // modeled log-device latency per stable write
	attempt       uint64        // highest LSN any flush has attempted to make stable
	gcWaiters     int64
	flusherOn     bool
	epoch         uint64 // bumped by Crash so parked committers drain
	pendingCharge int    // flushed pages not yet charged to a committer's meter
	gcStats       GroupCommitStats
}

// GroupCommitStats counts group-commit activity for observability
// (qsctl stats, the commit-throughput benchmark).
type GroupCommitStats struct {
	Commits        int64     // commit waits served
	Batches        int64     // group flushes performed
	PagesWritten   int64     // log pages written by group flushes
	FlushesAvoided int64     // commits that did not need their own stable write
	BatchSizes     [16]int64 // histogram: group flushes by committer count (last bucket = 15+)
}

// DefaultCapacity is the log size used when Config.Capacity is zero: 256 MB,
// comfortably larger than the paper's workloads generate between
// checkpoints.
const DefaultCapacity = 256 << 20

// FirstLSN is the LSN of the first record ever appended. LSNs start one log
// page in so that 0 can mean "no LSN" in page headers (a freshly formatted
// page has page LSN 0).
const FirstLSN = uint64(page.Size)

// New creates a log with the given capacity in bytes (DefaultCapacity if 0).
func New(capacity int) *Log {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	l := &Log{
		capacity: uint64(capacity),
		ring:     make([]byte, capacity),
		head:     FirstLSN,
		flushed:  FirstLSN,
		next:     FirstLSN,
		attempt:  FirstLSN,
	}
	l.gcCond = sync.NewCond(&l.mu)
	return l
}

// NewAt creates an empty log whose first LSN is start instead of FirstLSN.
// Media restore uses this to rebuild an archived log stream at its original
// LSNs: records appended in archive order are contiguous from start, so each
// is reassigned exactly the LSN it had when first logged, and every LSN
// recorded elsewhere (page headers, checkpoint payloads, the superblock's
// master record) resolves against the rebuilt log unchanged.
func NewAt(capacity int, start uint64) *Log {
	l := New(capacity)
	l.head, l.flushed, l.next, l.attempt = start, start, start, start
	return l
}

// encPool recycles Append's staging buffers. Every append encodes into a
// scratch slice before copying into the ring; without pooling that is one
// allocation per log record on the commit path (BenchmarkAppend reports the
// difference). Buffers grow to the largest record seen (a whole-page image
// under WPL) and are reused at that size.
var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// Append assigns the next LSN to r and stores its encoding in the volatile
// tail. It returns the assigned LSN. The caller is responsible for setting
// PrevLSN and the transaction fields before appending.
func (l *Log) Append(r *logrec.Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := uint64(r.EncodedSize())
	if l.next+size-l.head > l.capacity {
		return 0, fmt.Errorf("%w: need %d bytes, %d in use of %d",
			ErrFull, size, l.next-l.head, l.capacity)
	}
	r.LSN = l.next
	bp := encPool.Get().(*[]byte)
	buf := r.Encode((*bp)[:0])
	l.writeRing(l.next, buf)
	*bp = buf[:0]
	encPool.Put(bp)
	l.next += size
	return r.LSN, nil
}

func (l *Log) writeRing(at uint64, b []byte) {
	pos := at % l.capacity
	n := copy(l.ring[pos:], b)
	if n < len(b) {
		copy(l.ring, b[n:])
	}
}

func (l *Log) readRing(at uint64, b []byte) {
	pos := at % l.capacity
	n := copy(b, l.ring[pos:])
	if n < len(b) {
		copy(b[n:], l.ring[:len(b)-n])
	}
}

// SetFlushLimiter installs fn, called (with the log lock held) on every
// flush that would advance the stable end; the proposed new stable end is
// passed in and the value fn returns — clamped to [flushed, proposed] —
// becomes the actual stable end. The crash-point sweep uses this both to
// enumerate WAL-flush boundaries and to freeze the log at a chosen crash
// instant; returning a value mid-record injects a partial (torn) WAL-sector
// write. A nil fn removes the limiter.
func (l *Log) SetFlushLimiter(fn func(proposed uint64) uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.limiter = fn
}

// advanceFlushed moves the stable end toward proposed, consulting the flush
// limiter, and returns the number of 8 KB log pages written. Caller holds
// l.mu.
func (l *Log) advanceFlushed(proposed uint64) int {
	if proposed > l.attempt {
		l.attempt = proposed
	}
	if proposed <= l.flushed {
		return 0
	}
	if l.limiter != nil {
		p := l.limiter(proposed)
		if p < l.flushed {
			p = l.flushed
		}
		if p > proposed {
			p = proposed
		}
		proposed = p
		if proposed == l.flushed {
			return 0
		}
	}
	first := l.flushed / page.Size
	last := (proposed - 1) / page.Size
	l.flushed = proposed
	return int(last - first + 1)
}

// Force makes every appended record stable and returns the number of 8 KB
// log pages physically written, so callers can charge the log disk. A force
// that has nothing to flush writes no pages. When a write delay is
// configured (SetWriteDelay) the caller blocks for one device write.
func (l *Log) Force() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writeDelay > 0 && l.next > l.flushed {
		e := l.epoch
		l.mu.Unlock()
		time.Sleep(l.writeDelay)
		l.mu.Lock()
		if l.epoch != e {
			return 0 // crashed while the write was in flight
		}
	}
	n := l.advanceFlushed(l.next)
	if n > 0 {
		l.forces++
		l.pages += int64(n)
	}
	return n
}

// SetGroupCommitDelay sets the extra time a group flush waits for more
// committers to join before writing (0 = flush as soon as the flusher runs,
// which still batches every committer already parked).
func (l *Log) SetGroupCommitDelay(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gcDelay = d
}

// SetWriteDelay models the latency of one stable log write (the device the
// paper's dedicated log disk would be). Force and group flushes block for
// this long per write; ForceFull (asynchronous full-page writes) does not.
// The commit-throughput benchmark uses this so group commit shows its real
// effect — amortizing the device write across a group — even on a machine
// whose in-memory "log disk" is otherwise free.
func (l *Log) SetWriteDelay(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writeDelay = d
}

// CommitWait makes the record ending at lsn stable via group commit and
// returns the number of log pages charged to this committer (the whole
// group's write is charged to the first committer it wakes; the rest charge
// zero, conserving total pages). The caller must have appended its commit
// record (so lsn ≤ End()).
//
// The commit is satisfied as soon as a flush ATTEMPT covers lsn. Normally
// the attempt succeeds and the record is stable; under the crash-point
// sweep's flush limiter the attempt may be swallowed, which models the
// server dying mid-write — the call returns, exactly as the old inline
// Force did, and the sweep's recovery invariants treat the transaction by
// where the durability boundary actually froze.
func (l *Log) CommitWait(lsn uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gcStats.Commits++
	if l.flushed >= lsn || l.attempt >= lsn {
		// Already stable (or already attempted): no write needed at all.
		l.gcStats.FlushesAvoided++
		charge := l.pendingCharge
		l.pendingCharge = 0
		return charge
	}
	e := l.epoch
	l.gcWaiters++
	for l.flushed < lsn && l.attempt < lsn && l.epoch == e {
		if !l.flusherOn {
			l.flusherOn = true
			go l.flushGroup()
		}
		l.gcCond.Wait()
	}
	l.gcWaiters--
	charge := l.pendingCharge
	l.pendingCharge = 0
	return charge
}

// flushGroup is the dedicated flusher: it performs one stable write covering
// every commit parked at the moment of the write, then exits. A committer
// that arrives mid-flush re-arms it, so there is never more than one flusher
// and never a lost wakeup. Sleeping happens outside the log lock: the
// batching delay and the device write time are exactly the windows in which
// new committers join the group.
func (l *Log) flushGroup() {
	l.mu.Lock()
	gcDelay, writeDelay := l.gcDelay, l.writeDelay
	l.mu.Unlock()
	if gcDelay > 0 {
		time.Sleep(gcDelay)
	}
	if writeDelay > 0 {
		time.Sleep(writeDelay)
	}
	l.mu.Lock()
	batch := l.gcWaiters
	n := l.advanceFlushed(l.next)
	if n > 0 {
		l.forces++
		l.pages += int64(n)
		l.pendingCharge += n
	}
	l.gcStats.Batches++
	idx := batch
	if idx > int64(len(l.gcStats.BatchSizes)-1) {
		idx = int64(len(l.gcStats.BatchSizes) - 1)
	}
	if idx >= 0 {
		l.gcStats.BatchSizes[idx]++
	}
	if batch > 1 {
		l.gcStats.FlushesAvoided += batch - 1
	}
	l.gcStats.PagesWritten += int64(n)
	l.flusherOn = false
	l.gcCond.Broadcast()
	l.mu.Unlock()
}

// GroupStats returns a snapshot of the group-commit counters.
func (l *Log) GroupStats() GroupCommitStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gcStats
}

// ForceFull makes only the complete 8 KB log pages of the volatile tail
// stable, leaving a partially filled tail page buffered in memory. Servers
// call this as client log records arrive so the disk sees full sequential
// pages; Force (at commit) flushes the remainder. Returns pages written.
func (l *Log) ForceFull() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	boundary := l.next / page.Size * page.Size
	if boundary <= l.flushed {
		return 0
	}
	n := l.advanceFlushed(boundary)
	l.pages += int64(n)
	return n
}

// Crash discards the volatile tail, as a server failure would, and then
// repositions the log end at the last whole-record boundary at or below the
// stable end. The trim matters when the durability boundary fell mid-record
// (page-grained flushing, or an injected partial sector write): without it,
// records appended after restart would begin part-way through the torn
// record's surviving prefix, and a scan after a second crash would read that
// stale prefix followed by unrelated bytes — corruption it could not tell
// from the real thing. The torn record may span the circular log's wrap
// point (its prefix at the end of the ring, its lost tail at the start);
// trimming by walking record boundaries from the head handles the linear and
// wrapped cases identically, because LSNs never wrap even though ring
// positions do.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next = l.flushed
	l.trimTornLocked()
	// Wake committers parked in CommitWait: the LSNs they were waiting on no
	// longer exist. The epoch bump (rather than an attempt/flushed comparison,
	// which the trim may have rewound below a waiter's target) is what makes
	// their wait loops exit.
	l.epoch++
	l.attempt = l.flushed
	l.pendingCharge = 0
	l.gcCond.Broadcast()
}

// CrashClone returns an independent copy of the log as a crash with the
// durability boundary frozen at stableEnd would leave it: records wholly at
// or below stableEnd (clamped to [Head, End]) are stable, everything above
// is discarded, and a boundary that falls mid-record is trimmed exactly as
// Crash trims a torn tail. The receiver is not modified. The group-commit
// crash sweep uses this to replay one multi-client run at every candidate
// cut of the volatile region without re-running the workload.
func (l *Log) CrashClone(stableEnd uint64) *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	if stableEnd < l.head {
		stableEnd = l.head
	}
	if stableEnd > l.next {
		stableEnd = l.next
	}
	c := &Log{
		capacity: l.capacity,
		ring:     append([]byte(nil), l.ring...),
		head:     l.head,
		flushed:  stableEnd,
		next:     stableEnd,
	}
	c.gcCond = sync.NewCond(&c.mu)
	c.trimTornLocked()
	c.attempt = c.flushed
	return c
}

// trimTornLocked walks record boundaries from the head and truncates the log
// end at the last record wholly contained in the stable region. Caller holds
// l.mu.
func (l *Log) trimTornLocked() {
	lsn := l.head
	for lsn+logrec.HeaderSize <= l.flushed {
		var hdr [logrec.HeaderSize]byte
		l.readRing(lsn, hdr[:])
		total := uint64(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
		if total < logrec.HeaderSize || lsn+total > l.flushed {
			break
		}
		lsn += total
	}
	l.next, l.flushed = lsn, lsn
}

// SetTruncateGate installs fn, called (with the log lock held) whenever
// Truncate would advance the head. Advancing the head is a stable write in
// its own right — a real log persists its head pointer, or reclamation would
// not survive restart — so the crash-point sweep counts each advance as a
// crash point and, past the chosen point, swallows it: the head stays put,
// exactly as if the process died before the pointer write reached disk.
// Without this, a checkpoint cut by the fuse could reclaim log space its
// never-durable checkpoint record was supposed to cover, and restart would
// find the previous checkpoint truncated away. A nil fn removes the gate.
func (l *Log) SetTruncateGate(fn func() bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.truncGate = fn
}

// SetArchiveGate installs fn, called (with the log lock held) whenever
// Truncate would advance the head, with the proposed new head. Returning
// false defers the truncation: the head stays put and Truncate reports
// success, exactly like a swallowed head-pointer write. The log archiver
// installs a gate refusing any head above its archived-up-to LSN, so log
// records can never be reclaimed before they are safely archived — the same
// choke point (and the same cannot-outrun-stable-state discipline) as the
// checkpoint/truncation ordering gate from the crash-point sweep. The
// archive gate is consulted before the truncate gate: a deferred truncation
// is not a stable-storage event, because the head-pointer write is never
// attempted. A nil fn removes the gate.
func (l *Log) SetArchiveGate(fn func(newHead uint64) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.archGate = fn
}

// SetShipGate installs fn, called (with the log lock held) whenever Truncate
// would advance the head, with the proposed new head. Returning false defers
// the truncation exactly like the archive gate: the head stays put, Truncate
// reports success, and no stable-storage event is counted, because the
// head-pointer write is never attempted. The replication shipper installs a
// gate refusing any head above its shipped-up-to LSN, so the ring can never
// reclaim records a connected standby has not fetched yet — the same
// cannot-outrun-stable-state choke point as the archive gate, with the
// standby's applied LSN standing in for archivedUpTo. Consulted after the
// archive gate and before the truncate gate. A nil fn removes the gate.
func (l *Log) SetShipGate(fn func(newHead uint64) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.shipGate = fn
}

// SetTruncateFloor sets the lowest LSN truncation must retain (0 removes the
// floor). Truncate clamps its head to the floor instead of failing, so a
// caller computing a head from stale state cannot reclaim records restart
// redo still needs: the server keeps the oldest dirty-page recLSN here, the
// redo scan start under fuzzy checkpoints.
func (l *Log) SetTruncateFloor(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.floor = lsn
}

// TruncateFloor returns the current recLSN truncation floor (0 = none).
func (l *Log) TruncateFloor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// Truncate reclaims log space below newHead, which must be a record boundary
// at or below the stable end. The head never advances past the truncation
// floor (SetTruncateFloor); a fully clamped truncation is a no-op, not an
// error, and — like a gate-deferred one — not a stable-storage event.
func (l *Log) Truncate(newHead uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if newHead < l.head {
		return fmt.Errorf("wal: truncate moves head backward (%d < %d)", newHead, l.head)
	}
	if newHead > l.flushed {
		return fmt.Errorf("wal: truncate beyond stable end (%d > %d)", newHead, l.flushed)
	}
	if l.floor > 0 && newHead > l.floor {
		newHead = l.floor
	}
	if newHead <= l.head {
		return nil
	}
	if l.archGate != nil && !l.archGate(newHead) {
		return nil // deferred: the archiver has not drained this span yet
	}
	if l.shipGate != nil && !l.shipGate(newHead) {
		return nil // deferred: a standby has not fetched this span yet
	}
	if l.truncGate != nil && !l.truncGate() {
		return nil // swallowed: the head-pointer write never reached disk
	}
	l.head = newHead
	return nil
}

// Used returns the bytes of log space currently occupied.
func (l *Log) Used() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - l.head
}

// Capacity returns the configured log size in bytes.
func (l *Log) Capacity() uint64 { return l.capacity }

// Head returns the oldest retained LSN.
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// StableEnd returns the LSN just past the last forced record.
func (l *Log) StableEnd() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// End returns the next LSN to be assigned (including volatile records).
func (l *Log) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Forces returns how many Force calls actually wrote.
func (l *Log) Forces() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forces
}

// PagesWritten returns the cumulative count of 8 KB log pages written.
func (l *Log) PagesWritten() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pages
}

// ReadAt decodes the stable record starting at lsn.
func (l *Log) ReadAt(lsn uint64) (*logrec.Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readAtLocked(lsn)
}

func (l *Log) readAtLocked(lsn uint64) (*logrec.Record, error) {
	return l.decodeAt(lsn, nil)
}

// decodeAt decodes the record at lsn. With a nil scratch each call allocates
// a fresh buffer and the record owns its payload. With a non-nil scratch the
// encoded bytes are staged in *scratch (grown as needed and reused), so the
// record's Before/After images alias that buffer and are valid only until
// the next decodeAt against the same scratch — Scan uses this to decode a
// whole restart pass with a single payload allocation. Caller holds l.mu.
func (l *Log) decodeAt(lsn uint64, scratch *[]byte) (*logrec.Record, error) {
	if lsn < l.head {
		return nil, fmt.Errorf("%w: %d < head %d", ErrTruncated, lsn, l.head)
	}
	// Reads may cover the volatile tail: the in-memory log buffer is part of
	// the log manager (WPL re-reads unforced page images, undo walks fresh
	// records). A crash truncates next back to flushed, so post-crash reads
	// see only stable records.
	if lsn+logrec.HeaderSize > l.next {
		return nil, fmt.Errorf("%w: %d", ErrBeyondEnd, lsn)
	}
	var hdr [logrec.HeaderSize]byte
	l.readRing(lsn, hdr[:])
	total := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if total < logrec.HeaderSize {
		return nil, fmt.Errorf("wal: bad record length %d at LSN %d", total, lsn)
	}
	if lsn+uint64(total) > l.next {
		return nil, fmt.Errorf("%w: %d bytes at LSN %d", ErrTorn, total, lsn)
	}
	var buf []byte
	if scratch != nil {
		if cap(*scratch) < total {
			*scratch = make([]byte, total)
		}
		buf = (*scratch)[:total]
	} else {
		buf = make([]byte, total)
	}
	l.readRing(lsn, buf)
	r, _, err := logrec.Decode(buf)
	if err != nil {
		// A record whose extent reaches the stable end and fails its CRC is
		// the surviving prefix of a torn write (possibly spanning the ring's
		// wrap point), not corruption in the middle of the log: report it as
		// a torn tail so scans stop cleanly instead of failing recovery.
		if lsn+uint64(total) >= l.flushed {
			return nil, fmt.Errorf("%w: %v at LSN %d", ErrTorn, err, lsn)
		}
		return nil, fmt.Errorf("wal: record at LSN %d: %w", lsn, err)
	}
	return r, nil
}

// Scan calls fn for every stable record with LSN in [from, StableEnd), in
// LSN order, stopping early if fn returns false. from must be a record
// boundary at or above the head; passing Head() scans the whole retained
// log.
//
// The record passed to fn reuses one decode buffer across the whole scan:
// its Before/After images are valid only for the duration of the callback.
// Callers that retain a record past their callback must Clone it; retaining
// only scalar fields (TID, Page, LSN, Type) is always safe.
func (l *Log) Scan(from uint64, fn func(*logrec.Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.head {
		return fmt.Errorf("%w: scan from %d < head %d", ErrTruncated, from, l.head)
	}
	var scratch []byte
	for lsn := from; lsn < l.next; {
		r, err := l.decodeAt(lsn, &scratch)
		if errors.Is(err, ErrTorn) || errors.Is(err, ErrBeyondEnd) {
			return nil // torn tail after a crash: end of usable log
		}
		if err != nil {
			return err
		}
		if !fn(r) {
			return nil
		}
		lsn += uint64(r.EncodedSize())
	}
	return nil
}

// ScanFrom is the tail-follow scan used by log shipping: it calls fn for
// every record wholly stable in [from, StableEnd), in LSN order, and returns
// the boundary just past the last record delivered — the LSN at which a later
// call resumes once more of the tail has been forced. Unlike Scan it never
// delivers the volatile tail (shipping a record the primary could still lose
// in a crash would let a standby get ahead of its primary), it re-acquires
// the log lock per record so a long catch-up scan never blocks appenders or
// the group-commit flusher, and it stops promptly when cancel is closed.
//
// Each delivered record is staged in a buffer private to this call, so —
// unlike Scan — the record stays valid while fn runs without the log lock
// held; it is still invalidated by the next record, so callers that retain
// one must Clone it (Encode-ing it into an outgoing batch is the typical,
// safe use). fn returning false stops the scan after the current record; the
// returned resume LSN then points just past it, so nothing is skipped or
// redelivered.
//
// If the resume point has been reclaimed under the caller (the truncation
// race: the shipper fell behind and no gate held the head back), ScanFrom
// returns ErrTruncated with the same resume LSN — the caller must
// re-bootstrap from an archive rather than resume.
func (l *Log) ScanFrom(from uint64, cancel <-chan struct{}, fn func(*logrec.Record) bool) (uint64, error) {
	lsn := from
	var scratch []byte
	for {
		select {
		case <-cancel:
			return lsn, nil
		default:
		}
		l.mu.Lock()
		if lsn < l.head {
			head := l.head
			l.mu.Unlock()
			return lsn, fmt.Errorf("%w: scan from %d < head %d", ErrTruncated, lsn, head)
		}
		if lsn+logrec.HeaderSize > l.flushed {
			l.mu.Unlock()
			return lsn, nil // header not fully stable: end of shippable log
		}
		r, err := l.decodeAt(lsn, &scratch)
		if err == nil && lsn+uint64(r.EncodedSize()) > l.flushed {
			// The record decodes (its bytes are in the ring) but its tail is
			// still volatile — a mid-batch cut leaves the durability boundary
			// inside a record. Stop before it; the next call picks it up once
			// a flush covers it.
			err = ErrBeyondEnd
		}
		if errors.Is(err, ErrTorn) || errors.Is(err, ErrBeyondEnd) {
			l.mu.Unlock()
			return lsn, nil
		}
		if err != nil {
			l.mu.Unlock()
			return lsn, err
		}
		l.mu.Unlock()
		cont := fn(r)
		lsn += uint64(r.EncodedSize())
		if !cont {
			return lsn, nil
		}
	}
}

// ScanBackward collects every stable record in [from, StableEnd) and calls
// fn from the newest to the oldest, stopping early if fn returns false. This
// is the access pattern of WPL restart (paper §3.4.3); the caller charges
// the log disk for the pages touched. Records are cloned out of Scan's
// shared decode buffer, so (unlike Scan) they remain valid after fn returns.
func (l *Log) ScanBackward(from uint64, fn func(*logrec.Record) bool) error {
	var recs []*logrec.Record
	if err := l.Scan(from, func(r *logrec.Record) bool {
		recs = append(recs, r.Clone())
		return true
	}); err != nil {
		return err
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if !fn(recs[i]) {
			return nil
		}
	}
	return nil
}

// PagesInRange returns the number of 8 KB log pages overlapping [from, to),
// for disk-cost accounting of scans.
func PagesInRange(from, to uint64) int {
	if to <= from {
		return 0
	}
	return int((to-1)/page.Size - from/page.Size + 1)
}
