package wal

import (
	"bytes"
	"testing"

	"repro/internal/logrec"
	"repro/internal/page"
)

func upd(tid logrec.TID, pg page.ID, n int) *logrec.Record {
	b := bytes.Repeat([]byte{1}, n)
	a := bytes.Repeat([]byte{2}, n)
	return logrec.NewUpdate(tid, pg, 0, b, a)
}

func TestAppendAssignsSequentialLSNs(t *testing.T) {
	l := New(1 << 20)
	r1 := upd(1, 10, 8)
	r2 := upd(1, 11, 8)
	lsn1, err := l.Append(r1)
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(r2)
	if err != nil {
		t.Fatal(err)
	}
	if lsn1 != FirstLSN {
		t.Fatalf("first LSN = %d, want %d", lsn1, FirstLSN)
	}
	if lsn2 != FirstLSN+uint64(r1.EncodedSize()) {
		t.Fatalf("second LSN = %d, want %d", lsn2, r1.EncodedSize())
	}
}

func TestForceAndReadAt(t *testing.T) {
	l := New(1 << 20)
	r := upd(7, 42, 16)
	lsn, _ := l.Append(r)
	// Unforced records are readable (they live in the log buffer) …
	if _, err := l.ReadAt(lsn); err != nil {
		t.Fatalf("read of unforced record: %v", err)
	}
	// … but do not survive a crash (TestCrashDropsVolatileTail).
	if n := l.Force(); n != 1 {
		t.Fatalf("force wrote %d pages, want 1", n)
	}
	got, err := l.ReadAt(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != 7 || got.Page != 42 || !bytes.Equal(got.Before, r.Before) {
		t.Fatalf("read back %v", got)
	}
	if n := l.Force(); n != 0 {
		t.Fatalf("idle force wrote %d pages", n)
	}
}

func TestCrashDropsVolatileTail(t *testing.T) {
	l := New(1 << 20)
	l.Append(upd(1, 1, 8))
	l.Force()
	stable := l.StableEnd()
	l.Append(upd(1, 2, 8))
	l.Crash()
	if l.End() != stable {
		t.Fatalf("end %d after crash, want %d", l.End(), stable)
	}
	count := 0
	l.Scan(l.Head(), func(*logrec.Record) bool { count++; return true })
	if count != 1 {
		t.Fatalf("%d records survive crash, want 1", count)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	l := New(1 << 20)
	var lsns []uint64
	for i := 0; i < 10; i++ {
		lsn, _ := l.Append(upd(logrec.TID(i), page.ID(i), 8))
		lsns = append(lsns, lsn)
	}
	l.Force()
	var seen []uint64
	l.Scan(l.Head(), func(r *logrec.Record) bool {
		seen = append(seen, r.LSN)
		return true
	})
	if len(seen) != 10 {
		t.Fatalf("scanned %d records", len(seen))
	}
	for i := range seen {
		if seen[i] != lsns[i] {
			t.Fatalf("scan order: %v vs %v", seen, lsns)
		}
	}
	// Scan from the middle.
	var tail []uint64
	l.Scan(lsns[5], func(r *logrec.Record) bool {
		tail = append(tail, r.LSN)
		return true
	})
	if len(tail) != 5 || tail[0] != lsns[5] {
		t.Fatalf("mid scan: %v", tail)
	}
	// Early stop.
	n := 0
	l.Scan(l.Head(), func(r *logrec.Record) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestScanBackward(t *testing.T) {
	l := New(1 << 20)
	for i := 0; i < 5; i++ {
		l.Append(upd(logrec.TID(i), 1, 8))
	}
	l.Force()
	var tids []logrec.TID
	l.ScanBackward(l.Head(), func(r *logrec.Record) bool {
		tids = append(tids, r.TID)
		return true
	})
	want := []logrec.TID{4, 3, 2, 1, 0}
	for i := range want {
		if tids[i] != want[i] {
			t.Fatalf("backward order %v", tids)
		}
	}
}

func TestTruncateReclaimsSpace(t *testing.T) {
	l := New(8192) // fits three ~2 KB records
	var lsns []uint64
	// Fill close to capacity.
	for i := 0; ; i++ {
		lsn, err := l.Append(upd(1, page.ID(i), 1000))
		if err != nil {
			break
		}
		lsns = append(lsns, lsn)
	}
	if len(lsns) < 2 {
		t.Fatalf("only %d records fit", len(lsns))
	}
	l.Force()
	if _, err := l.Append(upd(1, 99, 1000)); err == nil {
		t.Fatal("append into full log succeeded")
	}
	if err := l.Truncate(lsns[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(upd(1, 99, 1000)); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	// The reclaimed record is no longer readable.
	if _, err := l.ReadAt(lsns[0]); err == nil {
		t.Fatal("read of truncated record succeeded")
	}
}

func TestWrapAround(t *testing.T) {
	// Capacity fits ~3 records; repeatedly append+truncate to force the ring
	// to wrap and verify data integrity across the boundary.
	l := New(1024)
	var prev uint64
	for i := 0; i < 100; i++ {
		r := upd(logrec.TID(i), page.ID(i), 100)
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		l.Force()
		got, err := l.ReadAt(lsn)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got.TID != logrec.TID(i) || !bytes.Equal(got.After, r.After) {
			t.Fatalf("iteration %d: corrupt read across wrap", i)
		}
		if i > 0 {
			l.Truncate(prev)
		}
		prev = lsn
	}
}

func TestForcePageAccounting(t *testing.T) {
	l := New(1 << 20)
	// ~52+2048*2 = 4148 bytes: two of them span pages 0 and 1.
	l.Append(upd(1, 1, 2048))
	l.Append(upd(1, 2, 2048))
	n := l.Force()
	if n != 2 {
		t.Fatalf("first force wrote %d pages, want 2", n)
	}
	// A tiny record on the already partially-written page 1 rewrites it.
	l.Append(logrec.NewCommit(1))
	if n := l.Force(); n != 1 {
		t.Fatalf("tail force wrote %d pages, want 1", n)
	}
	if l.PagesWritten() != 3 {
		t.Fatalf("cumulative pages = %d", l.PagesWritten())
	}
	if l.Forces() != 2 {
		t.Fatalf("forces = %d", l.Forces())
	}
}

func TestPagesInRange(t *testing.T) {
	cases := []struct {
		from, to uint64
		want     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, page.Size, 1},
		{0, page.Size + 1, 2},
		{page.Size - 1, page.Size + 1, 2},
		{page.Size, 2 * page.Size, 1},
		{10, 10, 0},
	}
	for _, c := range cases {
		if got := PagesInRange(c.from, c.to); got != c.want {
			t.Errorf("PagesInRange(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestTruncateValidation(t *testing.T) {
	l := New(1 << 20)
	l.Append(upd(1, 1, 8))
	l.Force()
	end := l.StableEnd()
	if err := l.Truncate(end); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(end - 1); err == nil {
		t.Fatal("backward truncate succeeded")
	}
	l.Append(upd(1, 2, 8))
	if err := l.Truncate(l.End()); err == nil {
		t.Fatal("truncate past stable end succeeded")
	}
}

// TestTruncateFloorClampsHead: the recLSN floor bounds reclamation — a
// truncation above it is clamped down (not an error), a truncation below it
// proceeds, and clearing the floor restores full reclamation.
func TestTruncateFloorClampsHead(t *testing.T) {
	l := New(1 << 20)
	var lsns []uint64
	for i := 0; i < 4; i++ {
		lsn, err := l.Append(upd(1, page.ID(i+1), 64))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	l.Force()
	l.SetTruncateFloor(lsns[1])
	if got := l.TruncateFloor(); got != lsns[1] {
		t.Fatalf("floor = %d, want %d", got, lsns[1])
	}
	// Head may advance up to the floor, never past it.
	if err := l.Truncate(lsns[3]); err != nil {
		t.Fatal(err)
	}
	if l.Head() != lsns[1] {
		t.Fatalf("head = %d, want clamped to floor %d", l.Head(), lsns[1])
	}
	// The record at the floor is still readable; the one below is reclaimed.
	if _, err := l.ReadAt(lsns[1]); err != nil {
		t.Fatalf("record at floor unreadable: %v", err)
	}
	if _, err := l.ReadAt(lsns[0]); err == nil {
		t.Fatal("record below clamped head still readable")
	}
	// A fully clamped truncation is a no-op, not an error.
	if err := l.Truncate(lsns[2]); err != nil {
		t.Fatalf("clamped truncate errored: %v", err)
	}
	if l.Head() != lsns[1] {
		t.Fatalf("head moved past floor to %d", l.Head())
	}
	l.SetTruncateFloor(0)
	if err := l.Truncate(lsns[3]); err != nil {
		t.Fatal(err)
	}
	if l.Head() != lsns[3] {
		t.Fatalf("head = %d after floor cleared, want %d", l.Head(), lsns[3])
	}
}

// BenchmarkAppend reports per-record allocations on the append path — the
// sync.Pool of encode buffers is what keeps allocs/op flat (the staging
// buffer is recycled instead of allocated per record).
func BenchmarkAppend(b *testing.B) {
	l := New(64 << 20)
	r := upd(1, 1, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(r); err != nil {
			// Ring full: reclaim everything stable and continue.
			b.StopTimer()
			l.Force()
			if terr := l.Truncate(l.StableEnd()); terr != nil {
				b.Fatal(terr)
			}
			b.StartTimer()
			if _, err := l.Append(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestForceFullLeavesPartialTail(t *testing.T) {
	l := New(1 << 20)
	// ~4148-byte record: less than half a log page.
	l.Append(upd(1, 1, 2048))
	if n := l.ForceFull(); n != 0 {
		t.Fatalf("ForceFull flushed %d pages with only a partial page pending", n)
	}
	// Second record crosses the first page boundary.
	l.Append(upd(1, 2, 2048))
	if n := l.ForceFull(); n != 1 {
		t.Fatalf("ForceFull flushed %d pages, want 1", n)
	}
	// The remainder flushes with a normal force.
	if n := l.Force(); n != 1 {
		t.Fatalf("Force flushed %d pages, want the partial tail (1)", n)
	}
}

func TestTornRecordStopsScanAfterCrash(t *testing.T) {
	l := New(1 << 20)
	lsn1, _ := l.Append(upd(1, 1, 5000)) // spans into page 1... (record > 8 KB with header+images)
	l.ForceFull()                        // flushes only the full pages: tears the record
	l.Crash()                            // drops the rest
	count := 0
	if err := l.Scan(l.Head(), func(r *logrec.Record) bool {
		count++
		return true
	}); err != nil {
		t.Fatalf("scan over torn tail errored: %v", err)
	}
	if count != 0 {
		t.Fatalf("scanned %d records from a torn log", count)
	}
	// ReadAt of the torn record reports ErrTorn (or beyond-end).
	if _, err := l.ReadAt(lsn1); err == nil {
		t.Fatal("read of torn record succeeded")
	}
}

func TestUsedAndCapacity(t *testing.T) {
	l := New(1 << 20)
	if l.Used() != 0 {
		t.Fatalf("fresh log used = %d", l.Used())
	}
	if l.Capacity() != 1<<20 {
		t.Fatalf("capacity = %d", l.Capacity())
	}
	r := upd(1, 1, 100)
	l.Append(r)
	if l.Used() != uint64(r.EncodedSize()) {
		t.Fatalf("used = %d, want %d", l.Used(), r.EncodedSize())
	}
	l.Force()
	l.Truncate(l.StableEnd())
	if l.Used() != 0 {
		t.Fatalf("used after truncate = %d", l.Used())
	}
}

// TestFlushLimiterClampsStableEnd exercises the fault-injection hook: a
// limiter can hold the stable end back entirely, and removing it restores
// normal flushing.
func TestFlushLimiterClampsStableEnd(t *testing.T) {
	l := New(1 << 20)
	l.SetFlushLimiter(func(proposed uint64) uint64 { return 0 }) // clamped up to flushed
	lsn, _ := l.Append(upd(1, 1, 64))
	if n := l.Force(); n != 0 {
		t.Fatalf("frozen force wrote %d pages", n)
	}
	if l.StableEnd() != lsn {
		t.Fatalf("stable end moved to %d under frozen limiter", l.StableEnd())
	}
	l.SetFlushLimiter(nil)
	if n := l.Force(); n != 1 {
		t.Fatalf("force after limiter removal wrote %d pages, want 1", n)
	}
	if l.StableEnd() != l.End() {
		t.Fatalf("stable end %d != end %d after force", l.StableEnd(), l.End())
	}
}

// TestTornRecordAcrossWrapPoint is the regression test for a torn record
// spanning the circular log's wrap point: its surviving prefix sits at the
// end of the ring and its lost tail would have landed at the start. Crash
// must seal the log at the record's start so that (a) the scan sees a clean
// end of log and (b) post-restart appends begin on a whole-record boundary —
// previously a second crash left a stale header followed by new bytes, which
// a scan read as mid-log corruption.
func TestTornRecordAcrossWrapPoint(t *testing.T) {
	const cap = 4 * page.Size
	l := New(cap)

	// March the log end toward the wrap point, reclaiming as we go.
	filler := upd(1, 1, 700)
	wrap := upd(2, 2, 1000)
	wrapSize := uint64(wrap.EncodedSize())
	for l.End()%cap+wrapSize <= cap {
		if _, err := l.Append(filler); err != nil {
			t.Fatal(err)
		}
		l.Force()
		if err := l.Truncate(l.StableEnd()); err != nil {
			t.Fatal(err)
		}
	}

	lsn, err := l.Append(wrap)
	if err != nil {
		t.Fatal(err)
	}
	if lsn%cap+wrapSize <= cap {
		t.Fatalf("test construction: record at %d (ring %d, %d bytes) does not wrap",
			lsn, lsn%cap, wrapSize)
	}

	// Injected partial write: the flush stops mid-record, past the header.
	cut := lsn + logrec.HeaderSize + 100
	l.SetFlushLimiter(func(proposed uint64) uint64 { return cut })
	l.Force()
	l.SetFlushLimiter(nil)
	if l.StableEnd() != cut {
		t.Fatalf("stable end = %d, want cut %d", l.StableEnd(), cut)
	}

	l.Crash()
	if l.End() != lsn || l.StableEnd() != lsn {
		t.Fatalf("crash sealed log at end=%d stable=%d, want torn record start %d",
			l.End(), l.StableEnd(), lsn)
	}
	count := 0
	if err := l.Scan(l.Head(), func(*logrec.Record) bool { count++; return true }); err != nil {
		t.Fatalf("scan over wrapped torn tail errored: %v", err)
	}
	if count != 0 {
		t.Fatalf("scanned %d records past a wrapped torn tail", count)
	}

	// Appends after restart reuse the reclaimed space from a record boundary;
	// a second crash must leave a scannable log containing the new record.
	r2 := upd(3, 3, 16)
	lsn2, err := l.Append(r2)
	if err != nil {
		t.Fatal(err)
	}
	if lsn2 != lsn {
		t.Fatalf("post-crash append at %d, want sealed boundary %d", lsn2, lsn)
	}
	l.Force()
	l.Crash()
	var got []*logrec.Record
	if err := l.Scan(l.Head(), func(r *logrec.Record) bool { got = append(got, r); return true }); err != nil {
		t.Fatalf("scan after second crash errored: %v", err)
	}
	if len(got) != 1 || got[0].TID != 3 || got[0].Page != 3 {
		t.Fatalf("scan after second crash read %d records %v, want the one post-crash record", len(got), got)
	}
}
