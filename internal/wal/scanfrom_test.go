package wal

import (
	"errors"
	"testing"

	"repro/internal/logrec"
)

// TestScanFromResumesAtStableEnd: ScanFrom delivers only records wholly
// stable, returns the boundary to resume at, and a later call from that
// boundary picks up exactly the records forced since.
func TestScanFromResumesAtStableEnd(t *testing.T) {
	l := New(1 << 20)
	var lsns []uint64
	for i := 0; i < 3; i++ {
		lsn, err := l.Append(upd(1, 1, 16))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	l.Force()
	stable := l.StableEnd()
	// A volatile record past the stable end must not be shipped.
	l.Append(upd(1, 2, 16))

	var got []uint64
	resume, err := l.ScanFrom(FirstLSN, nil, func(r *logrec.Record) bool {
		got = append(got, r.LSN)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != lsns[0] || got[2] != lsns[2] {
		t.Fatalf("delivered %v, want %v", got, lsns)
	}
	if resume != stable {
		t.Fatalf("resume = %d, want stable end %d", resume, stable)
	}

	// Force the tail; resuming from the returned LSN delivers just it.
	l.Force()
	got = got[:0]
	resume2, err := l.ScanFrom(resume, nil, func(r *logrec.Record) bool {
		got = append(got, r.LSN)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != stable {
		t.Fatalf("resumed delivery %v, want [%d]", got, stable)
	}
	if resume2 != l.StableEnd() {
		t.Fatalf("resume2 = %d, want %d", resume2, l.StableEnd())
	}
}

// TestScanFromAcrossWrap: a shipper following the tail keeps working as the
// circular log wraps, because LSNs never wrap even though ring positions do.
func TestScanFromAcrossWrap(t *testing.T) {
	const capacity = 64 << 10
	l := New(capacity)
	cursor := FirstLSN
	var shipped []uint64
	drain := func() {
		resume, err := l.ScanFrom(cursor, nil, func(r *logrec.Record) bool {
			shipped = append(shipped, r.LSN)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		cursor = resume
	}
	var appended []uint64
	for i := 0; i < 200; i++ { // ~200 * ~550 bytes >> capacity: several wraps
		lsn, err := l.Append(upd(1, 1, 256))
		if err != nil {
			t.Fatal(err)
		}
		appended = append(appended, lsn)
		l.Force()
		drain()
		// Reclaim behind the shipper so the ring never fills.
		if err := l.Truncate(cursor); err != nil {
			t.Fatal(err)
		}
	}
	if len(shipped) != len(appended) {
		t.Fatalf("shipped %d records, want %d", len(shipped), len(appended))
	}
	for i := range shipped {
		if shipped[i] != appended[i] {
			t.Fatalf("record %d shipped at LSN %d, want %d", i, shipped[i], appended[i])
		}
	}
	if cursor <= uint64(capacity) {
		t.Fatalf("cursor %d never wrapped the %d-byte ring", cursor, capacity)
	}
}

// TestScanFromTruncationRace: if the head passes the shipper's cursor (no
// gate held it back), resuming reports ErrTruncated instead of silently
// skipping records — the caller must re-bootstrap from the archive.
func TestScanFromTruncationRace(t *testing.T) {
	l := New(1 << 20)
	var lsns []uint64
	for i := 0; i < 4; i++ {
		lsn, _ := l.Append(upd(1, 1, 16))
		lsns = append(lsns, lsn)
	}
	l.Force()
	// Truncate mid-scan, from inside the callback: ScanFrom holds no lock
	// while fn runs, which is exactly the window the race needs.
	calls := 0
	resume, err := l.ScanFrom(FirstLSN, nil, func(r *logrec.Record) bool {
		calls++
		if calls == 1 {
			if terr := l.Truncate(lsns[3]); terr != nil {
				t.Fatal(terr)
			}
		}
		return true
	})
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if calls != 1 {
		t.Fatalf("%d callbacks before the race was detected, want 1", calls)
	}
	if resume != lsns[1] {
		t.Fatalf("resume = %d, want %d", resume, lsns[1])
	}
	// A fresh call below the head reports the same thing immediately.
	if _, err := l.ScanFrom(lsns[1], nil, func(*logrec.Record) bool { return true }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("resumed scan err = %v, want ErrTruncated", err)
	}
}

// TestScanFromMidBatchCut: when the durability boundary falls inside a record
// (a clamped group flush — the mid-batch cut), ScanFrom stops before the
// partial record and resumes cleanly once a later flush completes it.
func TestScanFromMidBatchCut(t *testing.T) {
	l := New(1 << 20)
	lsn1, _ := l.Append(upd(1, 1, 16))
	r2 := upd(1, 2, 16)
	lsn2, _ := l.Append(r2)

	for _, cut := range []uint64{
		lsn2 + 4,                     // inside the second record's header
		lsn2 + logrec.HeaderSize + 1, // header stable, payload torn
	} {
		cut := cut
		l.SetFlushLimiter(func(proposed uint64) uint64 { return cut })
		l.Force()
		var got []uint64
		resume, err := l.ScanFrom(lsn1, nil, func(r *logrec.Record) bool {
			got = append(got, r.LSN)
			return true
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 1 || got[0] != lsn1 {
			t.Fatalf("cut %d: delivered %v, want [%d]", cut, got, lsn1)
		}
		if resume != lsn2 {
			t.Fatalf("cut %d: resume = %d, want %d", cut, resume, lsn2)
		}
	}

	l.SetFlushLimiter(nil)
	l.Force()
	var got []uint64
	resume, err := l.ScanFrom(lsn2, nil, func(r *logrec.Record) bool {
		got = append(got, r.LSN)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != lsn2 {
		t.Fatalf("after full flush delivered %v, want [%d]", got, lsn2)
	}
	if want := lsn2 + uint64(r2.EncodedSize()); resume != want {
		t.Fatalf("resume = %d, want %d", resume, want)
	}
}

// TestScanFromCancel: a closed cancel channel stops the scan before any
// callback; the resume LSN marks where it stopped so nothing is lost.
func TestScanFromCancel(t *testing.T) {
	l := New(1 << 20)
	l.Append(upd(1, 1, 16))
	l.Force()
	cancel := make(chan struct{})
	close(cancel)
	resume, err := l.ScanFrom(FirstLSN, cancel, func(*logrec.Record) bool {
		t.Fatal("callback ran after cancel")
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if resume != FirstLSN {
		t.Fatalf("resume = %d, want %d", resume, FirstLSN)
	}
}

// TestScanFromEarlyStop: fn returning false stops after the current record
// and the resume LSN points just past it — stop-and-resume loses nothing.
func TestScanFromEarlyStop(t *testing.T) {
	l := New(1 << 20)
	r1 := upd(1, 1, 16)
	lsn1, _ := l.Append(r1)
	lsn2, _ := l.Append(upd(1, 2, 16))
	l.Force()
	calls := 0
	resume, err := l.ScanFrom(lsn1, nil, func(*logrec.Record) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("%d callbacks, want 1", calls)
	}
	if resume != lsn2 {
		t.Fatalf("resume = %d, want %d", resume, lsn2)
	}
}

// TestShipGateDefersTruncation: a ship gate refusing the new head leaves the
// head in place without error (a deferred truncation, not a stable-storage
// event), and removing the gate lets the same truncation proceed.
func TestShipGateDefersTruncation(t *testing.T) {
	l := New(1 << 20)
	l.Append(upd(1, 1, 16))
	lsn2, _ := l.Append(upd(1, 2, 16))
	l.Force()

	shipped := uint64(FirstLSN) // nothing fetched yet
	l.SetShipGate(func(newHead uint64) bool { return newHead <= shipped })
	if err := l.Truncate(lsn2); err != nil {
		t.Fatal(err)
	}
	if l.Head() != FirstLSN {
		t.Fatalf("head advanced to %d past the ship gate", l.Head())
	}

	shipped = lsn2 // the standby caught up
	if err := l.Truncate(lsn2); err != nil {
		t.Fatal(err)
	}
	if l.Head() != lsn2 {
		t.Fatalf("head = %d after gate admitted, want %d", l.Head(), lsn2)
	}

	l.SetShipGate(nil)
	if err := l.Truncate(lsn2); err != nil {
		t.Fatal(err)
	}
}
