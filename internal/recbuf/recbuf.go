// Package recbuf implements the client's recovery buffer (paper §3.2.1): a
// fixed-size memory area holding before-images that the diffing schemes
// compare against the buffer pool at log-generation time.
//
// Page differencing stores whole-page copies; sub-page differencing stores
// copies of the fixed-size blocks that have been updated. Space is managed
// with the paper's simple FIFO policy over pages: when the buffer cannot
// hold a new copy, the client generates log records for the page that
// entered the buffer first and drops its images.
package recbuf

import (
	"fmt"

	"repro/internal/page"
)

// Buffer is a recovery buffer with a byte-capacity budget. It is not safe
// for concurrent use; each client owns one.
type Buffer struct {
	capBytes int
	used     int
	entries  map[page.ID]*Entry
	fifo     []page.ID
	spills   int64 // pages dropped to make room
}

// Entry holds the before-images captured for one page.
type Entry struct {
	// Image is the whole-page before-image (page differencing), nil when
	// block copies are used instead.
	Image []byte
	// Blocks maps block index to block before-image (sub-page schemes).
	Blocks map[int][]byte
	bytes  int
}

// Bytes returns the space the entry occupies.
func (e *Entry) Bytes() int { return e.bytes }

// New creates a buffer holding at most capBytes of copies. Capacity must be
// at least one page, matching the paper's 1 <= M <= N constraint.
func New(capBytes int) *Buffer {
	if capBytes < page.Size {
		panic(fmt.Sprintf("recbuf: capacity %d below one page", capBytes))
	}
	return &Buffer{capBytes: capBytes, entries: make(map[page.ID]*Entry)}
}

// Cap returns the configured capacity in bytes.
func (b *Buffer) Cap() int { return b.capBytes }

// SetCap changes the capacity. Shrinking below the bytes in use is allowed;
// the buffer simply reports not fitting anything new until the caller spills
// or clears. Capacity never drops below one page.
func (b *Buffer) SetCap(n int) {
	if n < page.Size {
		n = page.Size
	}
	b.capBytes = n
}

// Used returns the bytes currently occupied.
func (b *Buffer) Used() int { return b.used }

// Len returns the number of pages with copies in the buffer.
func (b *Buffer) Len() int { return len(b.entries) }

// Spills returns how many pages have been force-dropped via Oldest/Drop to
// make room. The caller increments it by calling NoteSpill.
func (b *Buffer) Spills() int64 { return b.spills }

// NoteSpill records that a page was dropped due to space pressure rather
// than commit.
func (b *Buffer) NoteSpill() { b.spills++ }

// Fits reports whether n more bytes can be stored.
func (b *Buffer) Fits(n int) bool { return b.used+n <= b.capBytes }

// Entry returns the entry for pid, or nil.
func (b *Buffer) Entry(pid page.ID) *Entry { return b.entries[pid] }

// HasPage reports whether pid has any copy in the buffer.
func (b *Buffer) HasPage(pid page.ID) bool { return b.entries[pid] != nil }

// PutPage stores a whole-page before-image for pid. The image is copied.
// The caller must ensure Fits(page.Size) first, spilling the Oldest page as
// needed.
func (b *Buffer) PutPage(pid page.ID, img []byte) {
	if len(img) != page.Size {
		panic("recbuf: image must be one page")
	}
	if !b.Fits(page.Size) {
		panic("recbuf: PutPage without room (caller must spill first)")
	}
	if b.entries[pid] != nil {
		panic(fmt.Sprintf("recbuf: %v already present", pid))
	}
	cp := make([]byte, page.Size)
	copy(cp, img)
	b.entries[pid] = &Entry{Image: cp, bytes: page.Size}
	b.fifo = append(b.fifo, pid)
	b.used += page.Size
}

// PutBlock stores the before-image of one block of pid. The data is copied.
// The caller must ensure Fits(len(data)) first. Re-copying a block that is
// already present is an error; callers check HasBlock.
func (b *Buffer) PutBlock(pid page.ID, idx int, data []byte) {
	if !b.Fits(len(data)) {
		panic("recbuf: PutBlock without room (caller must spill first)")
	}
	e := b.entries[pid]
	if e == nil {
		e = &Entry{Blocks: make(map[int][]byte)}
		b.entries[pid] = e
		b.fifo = append(b.fifo, pid)
	}
	if e.Blocks == nil {
		panic("recbuf: mixing page and block copies for one page")
	}
	if _, dup := e.Blocks[idx]; dup {
		panic(fmt.Sprintf("recbuf: block %d of %v already copied", idx, pid))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	e.Blocks[idx] = cp
	e.bytes += len(data)
	b.used += len(data)
}

// HasBlock reports whether block idx of pid has been copied.
func (b *Buffer) HasBlock(pid page.ID, idx int) bool {
	e := b.entries[pid]
	if e == nil || e.Blocks == nil {
		return false
	}
	_, ok := e.Blocks[idx]
	return ok
}

// Oldest returns the page that has been in the buffer longest (the FIFO
// spill victim), or false if empty.
func (b *Buffer) Oldest() (page.ID, bool) {
	if len(b.fifo) == 0 {
		return 0, false
	}
	return b.fifo[0], true
}

// Drop removes pid's entry, freeing its space.
func (b *Buffer) Drop(pid page.ID) {
	e := b.entries[pid]
	if e == nil {
		return
	}
	b.used -= e.bytes
	delete(b.entries, pid)
	for i, p := range b.fifo {
		if p == pid {
			b.fifo = append(b.fifo[:i], b.fifo[i+1:]...)
			break
		}
	}
}

// Pages returns the buffered page ids in FIFO order.
func (b *Buffer) Pages() []page.ID {
	out := make([]page.ID, len(b.fifo))
	copy(out, b.fifo)
	return out
}

// Clear drops everything (end of transaction).
func (b *Buffer) Clear() {
	b.entries = make(map[page.ID]*Entry)
	b.fifo = b.fifo[:0]
	b.used = 0
}
