package recbuf

import (
	"bytes"
	"testing"

	"repro/internal/page"
)

func img(b byte) []byte { return bytes.Repeat([]byte{b}, page.Size) }

func TestPutPageAndRetrieve(t *testing.T) {
	b := New(4 * page.Size)
	b.PutPage(1, img(0xaa))
	if !b.HasPage(1) {
		t.Fatal("page not present")
	}
	e := b.Entry(1)
	if !bytes.Equal(e.Image, img(0xaa)) {
		t.Fatal("image mismatch")
	}
	if b.Used() != page.Size || b.Len() != 1 {
		t.Fatalf("used=%d len=%d", b.Used(), b.Len())
	}
}

func TestPutPageCopies(t *testing.T) {
	b := New(2 * page.Size)
	src := img(1)
	b.PutPage(1, src)
	src[0] = 99
	if b.Entry(1).Image[0] != 1 {
		t.Fatal("entry aliases source")
	}
}

func TestFIFOOrder(t *testing.T) {
	b := New(4 * page.Size)
	for i := 1; i <= 3; i++ {
		b.PutPage(page.ID(i), img(byte(i)))
	}
	if oldest, ok := b.Oldest(); !ok || oldest != 1 {
		t.Fatalf("oldest = %v", oldest)
	}
	b.Drop(1)
	if oldest, _ := b.Oldest(); oldest != 2 {
		t.Fatalf("oldest after drop = %v", oldest)
	}
	got := b.Pages()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Pages = %v", got)
	}
}

func TestSpillProtocol(t *testing.T) {
	b := New(2 * page.Size)
	b.PutPage(1, img(1))
	b.PutPage(2, img(2))
	if b.Fits(page.Size) {
		t.Fatal("full buffer claims to fit another page")
	}
	// Caller spills oldest, then fits.
	victim, _ := b.Oldest()
	b.Drop(victim)
	b.NoteSpill()
	if !b.Fits(page.Size) {
		t.Fatal("room not reclaimed")
	}
	b.PutPage(3, img(3))
	if b.Spills() != 1 {
		t.Fatalf("spills = %d", b.Spills())
	}
}

func TestPutWithoutRoomPanics(t *testing.T) {
	b := New(page.Size)
	b.PutPage(1, img(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.PutPage(2, img(2))
}

func TestBlocks(t *testing.T) {
	b := New(page.Size)
	blk := []byte{1, 2, 3, 4}
	b.PutBlock(7, 0, blk)
	b.PutBlock(7, 5, []byte{9, 9, 9, 9})
	if !b.HasBlock(7, 0) || !b.HasBlock(7, 5) || b.HasBlock(7, 1) {
		t.Fatal("block presence wrong")
	}
	if b.Used() != 8 {
		t.Fatalf("used = %d", b.Used())
	}
	e := b.Entry(7)
	if !bytes.Equal(e.Blocks[0], blk) {
		t.Fatal("block image mismatch")
	}
	// Block copies must not alias.
	blk[0] = 42
	if e.Blocks[0][0] != 1 {
		t.Fatal("block aliases source")
	}
	b.Drop(7)
	if b.Used() != 0 || b.HasBlock(7, 0) {
		t.Fatal("drop did not free blocks")
	}
}

func TestDuplicateBlockPanics(t *testing.T) {
	b := New(page.Size)
	b.PutBlock(1, 3, []byte{1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.PutBlock(1, 3, []byte{2})
}

func TestMixedGranularityPanics(t *testing.T) {
	b := New(2 * page.Size)
	b.PutPage(1, img(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.PutBlock(1, 0, []byte{1})
}

func TestClear(t *testing.T) {
	b := New(2 * page.Size)
	b.PutPage(1, img(1))
	b.PutBlock(2, 0, []byte{1, 2})
	b.Clear()
	if b.Used() != 0 || b.Len() != 0 {
		t.Fatal("clear incomplete")
	}
	if _, ok := b.Oldest(); ok {
		t.Fatal("oldest after clear")
	}
	b.PutPage(1, img(2)) // reusable after clear
}

func TestTinyCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(100)
}
