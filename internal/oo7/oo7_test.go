package oo7

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wire"
)

// testConfig is a shrunken small configuration: full graph shape, fewer
// composite parts and levels so tests run fast.
func testConfig() Config {
	c := SmallConfig()
	c.NumCompPerModule = 12
	c.NumAssmLevels = 3
	c.NumModules = 2
	c.ManualSize = 10000
	return c
}

func newRig(t *testing.T, scheme client.Scheme, mode server.Mode) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(server.Config{
		Mode:            mode,
		PoolPages:       512,
		LogCapacity:     64 << 20,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	})
	cli := client.New(client.Config{
		Scheme:         scheme,
		PoolPages:      256,
		RecoveryBytes:  1 << 20,
		ShipDirtyPages: mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))
	return srv, cli
}

func TestTable1Parameters(t *testing.T) {
	s := SmallConfig()
	if s.NumAtomicPerComp != 20 || s.NumConnPerAtomic != 3 || s.DocumentSize != 2000 ||
		s.ManualSize != 100<<10 || s.NumCompPerModule != 500 || s.NumAssmPerAssm != 3 ||
		s.NumAssmLevels != 7 || s.NumCompPerAssm != 3 || s.NumModules != 5 {
		t.Fatalf("small config diverges from Table 1: %+v", s)
	}
	b := BigConfig()
	if b.NumCompPerModule != 2000 || b.NumAssmLevels != 8 || b.NumModules != 5 {
		t.Fatalf("big config diverges from Table 1: %+v", b)
	}
	if s.BaseAssemblies() != 729 { // 3^6
		t.Fatalf("small base assemblies = %d", s.BaseAssemblies())
	}
	if b.BaseAssemblies() != 2187 { // 3^7
		t.Fatalf("big base assemblies = %d", b.BaseAssemblies())
	}
}

func TestBuildShape(t *testing.T) {
	cfg := testConfig()
	_, cli := newRig(t, client.PD, server.ModeESM)
	db, err := Build(cli, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Modules) != cfg.NumModules {
		t.Fatalf("%d modules", len(db.Modules))
	}
	for _, m := range db.Modules {
		if len(m.CompParts) != cfg.NumCompPerModule {
			t.Fatalf("%d composite parts", len(m.CompParts))
		}
		if m.Self.IsNil() || m.Root.IsNil() || m.Manual.IsNil() {
			t.Fatal("nil module handles")
		}
	}
	// Composite parts must be clustered: each part's atomic parts live on
	// the same page run, distinct from other parts'.
	tx, _ := cli.Begin()
	defer tx.Commit()
	seen := map[page.ID]int{}
	for _, cp := range db.Modules[0].CompParts {
		seen[cp.Page]++
	}
	for pid, n := range seen {
		if n > 2 {
			t.Fatalf("%d composite part headers share page %v: clustering broken", n, pid)
		}
	}
	// The assembly hierarchy has the right shape: walking it visits
	// 3^(levels-1) base assemblies.
	var res Result
	m := costmodel.NopMeter{}
	p := costmodel.Default1995()
	if err := visitAssembly(tx, db.Modules[0].Root, T2A, m, p, &res); err != nil {
		t.Fatal(err)
	}
	wantComp := cfg.BaseAssemblies() * cfg.NumCompPerAssm
	if res.CompVisits != wantComp {
		t.Fatalf("comp visits = %d, want %d", res.CompVisits, wantComp)
	}
}

func TestTraversalCounts(t *testing.T) {
	cfg := testConfig()
	_, cli := newRig(t, client.PD, server.ModeESM)
	db, err := Build(cli, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.NopMeter{}
	p := costmodel.Default1995()
	visits := cfg.BaseAssemblies() * cfg.NumCompPerAssm
	for _, tc := range []struct {
		tr   Traversal
		want int
	}{
		{T2A, visits},                            // one update per composite visit
		{T2B, visits * cfg.NumAtomicPerComp},     // every atomic part
		{T2C, visits * cfg.NumAtomicPerComp * 4}, // every atomic part, 4 times
	} {
		res, err := Run(cli, &db.Modules[0], tc.tr, m, p)
		if err != nil {
			t.Fatalf("%v: %v", tc.tr, err)
		}
		if res.Updates != tc.want {
			t.Fatalf("%v updates = %d, want %d", tc.tr, res.Updates, tc.want)
		}
		// The DFS must reach every atomic part of every visited composite
		// part (the ring connection guarantees reachability).
		if res.AtomicVisits != visits*cfg.NumAtomicPerComp {
			t.Fatalf("%v atomic visits = %d, want %d", tc.tr, res.AtomicVisits, visits*cfg.NumAtomicPerComp)
		}
	}
}

func TestTraversalUpdatesPersistAcrossCrash(t *testing.T) {
	cfg := testConfig()
	cfg.NumModules = 1
	srv, cli := newRig(t, client.PD, server.ModeESM)
	db, err := Build(cli, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	mod := &db.Modules[0]
	// Record an atomic part's x before.
	tx, _ := cli.Begin()
	cpBuf, _ := tx.ReadObject(mod.CompParts[0])
	root := rdOID(cpBuf, cpRootPart)
	partBuf, _ := tx.ReadObject(root)
	xBefore := rd32(partBuf, apX)
	tx.Commit()

	if _, err := Run(cli, mod, T2B, costmodel.NopMeter{}, costmodel.Default1995()); err != nil {
		t.Fatal(err)
	}
	srv.Crash()
	if err := srv.NewSession(nil, nil).Restart(); err != nil {
		t.Fatal(err)
	}
	// Fresh client: read x after.
	cli2 := client.New(client.Config{Scheme: client.PD, PoolPages: 256, ShipDirtyPages: true},
		wire.NewDirect(srv, nil, nil))
	tx2, _ := cli2.Begin()
	partBuf2, err := tx2.ReadObject(root)
	if err != nil {
		t.Fatal(err)
	}
	xAfter := rd32(partBuf2, apX)
	tx2.Commit()
	// T2B visits the root part once per composite-part visit of this part;
	// it is updated at least once.
	if xAfter <= xBefore {
		t.Fatalf("x not incremented durably: %d → %d", xBefore, xAfter)
	}
}

func TestTraversalDeterministicAcrossSchemes(t *testing.T) {
	// All five software versions perform the identical logical traversal:
	// same visit and update counts.
	cfg := testConfig()
	cfg.NumModules = 1
	type verdict struct{ res Result }
	var results []Result
	for _, v := range []struct {
		scheme client.Scheme
		mode   server.Mode
	}{
		{client.PD, server.ModeESM},
		{client.SD, server.ModeESM},
		{client.SL, server.ModeESM},
		{client.PD, server.ModeREDO},
		{client.WPL, server.ModeWPL},
	} {
		_, cli := newRig(t, v.scheme, v.mode)
		db, err := Build(cli, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cli, &db.Modules[0], T2B, costmodel.NopMeter{}, costmodel.Default1995())
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("traversal diverges across schemes: %+v vs %+v", results[i], results[0])
		}
	}
	_ = verdict{}
}

func TestModuleSizeBallpark(t *testing.T) {
	// A full small module should occupy roughly the paper's 6.6 MB — we
	// accept 4–8 MB, recorded precisely in EXPERIMENTS.md via Table 2.
	if testing.Short() {
		t.Skip("full small module build")
	}
	cfg := SmallConfig()
	cfg.NumModules = 1
	store := disk.NewMemStore()
	srv := server.New(server.Config{
		Mode:            server.ModeESM,
		Store:           store,
		PoolPages:       512,
		LogCapacity:     256 << 20,
		CheckpointEvery: 1 << 30,
	})
	cli := client.New(client.Config{Scheme: client.PD, PoolPages: 1024, ShipDirtyPages: true},
		wire.NewDirect(srv, nil, nil))
	if _, err := Build(cli, cfg, 5); err != nil {
		t.Fatal(err)
	}
	if err := srv.NewSession(nil, nil).Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mb := float64(int64(store.Pages())*page.Size) / (1 << 20)
	if mb < 4 || mb > 9 {
		t.Fatalf("small module ≈ %.1f MB, outside 4–9 MB ballpark", mb)
	}
	t.Logf("small module = %.2f MB (paper: 6.6 MB)", mb)
}

// TestT1ReadOnlyHasNoRecoveryOverhead reproduces the paper's §6 claim: under
// QuickStore's in-place, page-at-a-time scheme a page's protection is only
// manipulated when the first object on it is updated, so read-only
// transactions trigger no faults, no copies, and no log records.
func TestT1ReadOnlyHasNoRecoveryOverhead(t *testing.T) {
	cfg := testConfig()
	cfg.NumModules = 1
	for _, scheme := range []client.Scheme{client.PD, client.SD, client.WPL} {
		_, cli := newRig(t, scheme, server.ModeESM)
		if scheme == client.WPL {
			_, cli = newRig(t, scheme, server.ModeWPL)
		}
		db, err := Build(cli, cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		before := cli.Stats()
		res, err := Run(cli, &db.Modules[0], T1, costmodel.NopMeter{}, costmodel.Default1995())
		if err != nil {
			t.Fatal(err)
		}
		after := cli.Stats()
		if res.Updates != 0 {
			t.Fatalf("%v: T1 performed %d updates", scheme, res.Updates)
		}
		if res.AtomicVisits == 0 {
			t.Fatalf("%v: T1 visited nothing", scheme)
		}
		if d := after.Faults - before.Faults; d != 0 {
			t.Errorf("%v: read-only traversal faulted %d times", scheme, d)
		}
		if d := after.PageCopies - before.PageCopies + after.BlockCopies - before.BlockCopies; d != 0 {
			t.Errorf("%v: read-only traversal made %d recovery copies", scheme, d)
		}
		if d := after.LogRecords - before.LogRecords; d != 0 {
			t.Errorf("%v: read-only traversal generated %d log records", scheme, d)
		}
		if d := after.DirtyPagesShipped - before.DirtyPagesShipped; d != 0 {
			t.Errorf("%v: read-only traversal shipped %d dirty pages", scheme, d)
		}
	}
}

// TestDocumentsAndManualIntact verifies the generator's secondary objects:
// every composite part's document is readable with the expected prefix, and
// the manual chunk chain has the configured total size.
func TestDocumentsAndManualIntact(t *testing.T) {
	cfg := testConfig()
	cfg.NumModules = 1
	_, cli := newRig(t, client.PD, server.ModeESM)
	db, err := Build(cli, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := cli.Begin()
	defer tx.Commit()
	mod := db.Modules[0]
	for i, cp := range mod.CompParts {
		hdr, err := tx.ReadObject(cp)
		if err != nil {
			t.Fatal(err)
		}
		doc := rdOID(hdr, cpDocument)
		if doc.IsNil() {
			t.Fatalf("composite part %d has no document", i)
		}
		data, err := tx.ReadObject(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != cfg.DocumentSize {
			t.Fatalf("document size %d, want %d", len(data), cfg.DocumentSize)
		}
		want := []byte("Composite part")
		for j := range want {
			if data[j] != want[j] {
				t.Fatalf("document %d prefix %q", i, data[:20])
			}
		}
	}
	// Walk the manual chain.
	total := 0
	for oid := mod.Manual; !oid.IsNil(); {
		data, err := tx.ReadObject(oid)
		if err != nil {
			t.Fatal(err)
		}
		total += len(data)
		if len(data) < page.OIDSize {
			break
		}
		next := page.DecodeOID(data)
		oid = next
	}
	if total < cfg.ManualSize || total > cfg.ManualSize+ManualChunk {
		t.Fatalf("manual totals %d bytes, want ≈%d", total, cfg.ManualSize)
	}
}
